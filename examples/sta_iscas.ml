(* Static timing analysis over the ISCAS85-style benchmark suite with both
   window-capable models — the paper's Table 2 workload — plus a
   required-time / violation check on c17.

     dune exec examples/sta_iscas.exe *)

module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module DM = Ssd_core.Delay_model
module Charlib = Ssd_cell.Charlib
module Texttab = Ssd_util.Texttab

let () =
  let library = Charlib.default () in
  let t = Texttab.create
      ~header:[ "circuit"; "model"; "min (ns)"; "max (ns)"; "gates" ]
  in
  List.iter
    (fun nl ->
      let prim = Ck.Decompose.to_primitive nl in
      List.iter
        (fun model ->
          let sta = Sta.analyze ~library ~model prim in
          Texttab.add_row t
            [
              Ck.Netlist.name nl;
              model.DM.name;
              Printf.sprintf "%.3f" (Sta.min_delay sta *. 1e9);
              Printf.sprintf "%.3f" (Sta.max_delay sta *. 1e9);
              string_of_int (Ck.Netlist.gate_count prim);
            ])
        [ DM.pin_to_pin; DM.proposed ];
      Texttab.add_separator t)
    (Ck.Benchmarks.table2_suite ());
  Texttab.print t;

  (* required times and hold/setup violations on c17 *)
  let c17 = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let sta = Sta.analyze ~library ~model:DM.proposed c17 in
  let clock = 0.9 *. Sta.max_delay sta in
  let required = Sta.compute_required sta ~clock_period:clock in
  let violations = Sta.violations sta required in
  Printf.printf "\nc17 at clock %.3f ns: %d violation(s)\n" (clock *. 1e9)
    (List.length violations);
  List.iter (fun (_, msg) -> Printf.printf "  %s\n" msg) violations
