(* Quickstart: characterize a NAND2 against the analog simulator, query the
   proposed simultaneous-switching delay model, and compare both.

     dune exec examples/quickstart.exe

   (set SSD_FAST=1 for a coarse, faster characterization) *)

module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Vshape = Ssd_core.Vshape
module Types = Ssd_core.Types

let () =
  (* 1. Get the characterized cell library.  The first run simulates the
     transistor-level gates and fits the paper's empirical forms; the result
     is cached on disk, so subsequent runs are instant. *)
  let library = Charlib.default () in
  let nand2 = Charlib.find library Sweep.Nand 2 in
  Format.printf "characterized: %a@." Charlib.pp_cell_summary nand2;

  (* 2. The V-shape anchors for a pair of 0.5 ns input transitions:
     (SYR, DYR) — left saturation, (0, D0R) — the speed-up valley,
     (SR, DR) — right saturation (paper Figure 2). *)
  let (syr, dyr), (_, d0), (sr, dr) =
    Vshape.v_points nand2 ~fanout:1 ~pos_a:0 ~pos_b:1 ~t_a:0.5e-9 ~t_b:0.5e-9
  in
  Printf.printf "V anchors: (%.0f ps, %.1f ps) (0, %.1f ps) (%.0f ps, %.1f ps)\n"
    (syr *. 1e12) (dyr *. 1e12) (d0 *. 1e12) (sr *. 1e12) (dr *. 1e12);

  (* 3. Query the model across the skew range and compare with a fresh
     transistor-level simulation at each point. *)
  Printf.printf "\n%8s %12s %12s\n" "skew(ps)" "model(ps)" "spice(ps)";
  List.iter
    (fun skew ->
      let a = { Types.pos = 0; arrival = 0.; t_tr = 0.5e-9 } in
      let b = { Types.pos = 1; arrival = skew; t_tr = 0.5e-9 } in
      let model = Vshape.pair_delay nand2 ~fanout:1 ~a ~b in
      let spice =
        (Sweep.pair Ssd_spice.Tech.default Sweep.Nand ~n:2 ~fanout:1 ~pos_a:0
           ~pos_b:1 ~t_a:0.5e-9 ~t_b:0.5e-9 ~skew)
          .Sweep.m_delay
      in
      Printf.printf "%+8.0f %12.1f %12.1f\n" (skew *. 1e12) (model *. 1e12)
        (spice *. 1e12))
    [ -0.6e-9; -0.2e-9; 0.; 0.2e-9; 0.6e-9 ];

  (* 4. A full gate event: both inputs switching 100 ps apart. *)
  let e =
    Vshape.ctl_event nand2 ~fanout:2
      [
        { Types.pos = 0; arrival = 1.0e-9; t_tr = 0.4e-9 };
        { Types.pos = 1; arrival = 1.1e-9; t_tr = 0.6e-9 };
      ]
  in
  Printf.printf "\noutput event: arrival %.1f ps, transition %.1f ps\n"
    (e.Types.e_arr *. 1e12) (e.Types.e_tt *. 1e12)
