(* Compare all four delay models (proposed V-shape, SDF-style pin-to-pin,
   Jun-style and Nabavi-style equivalent-inverter baselines) against the
   transistor-level simulator — the workload behind the paper's Figures
   11 and 12.

     dune exec examples/model_comparison.exe *)

module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Texttab = Ssd_util.Texttab
module Stats = Ssd_util.Stats
module Rng = Ssd_util.Rng

let tech = Ssd_spice.Tech.default

let () =
  let library = Charlib.default () in
  let cell = Charlib.find library Sweep.Nand 2 in
  let spice ~t_a ~t_b ~skew =
    (Sweep.pair tech Sweep.Nand ~n:2 ~fanout:1 ~pos_a:0 ~pos_b:1 ~t_a ~t_b
       ~skew)
      .Sweep.m_delay
  in
  let model m ~t_a ~t_b ~skew =
    m.DM.pair_delay cell ~fanout:1
      ~a:{ Types.pos = 0; arrival = 0.; t_tr = t_a }
      ~b:{ Types.pos = 1; arrival = skew; t_tr = t_b }
  in

  (* skew sweep at fixed transition times (Figure 12) *)
  print_endline "delay vs. skew, T_X = T_Y = 0.5 ns:";
  let t = Texttab.create
      ~header:("skew (ps)" :: "SPICE" :: List.map (fun m -> m.DM.name) DM.all)
  in
  List.iter
    (fun skew ->
      let row =
        (spice ~t_a:0.5e-9 ~t_b:0.5e-9 ~skew *. 1e12)
        :: List.map (fun m -> model m ~t_a:0.5e-9 ~t_b:0.5e-9 ~skew *. 1e12)
             DM.all
      in
      Texttab.add_row_f ~prec:1 t (Printf.sprintf "%+.0f" (skew *. 1e12)) row)
    [ -0.8e-9; -0.4e-9; -0.15e-9; 0.; 0.15e-9; 0.4e-9; 0.8e-9 ];
  Texttab.print t;

  (* aggregate accuracy over random operating points *)
  print_endline "\nmean |error| over 30 random (T_X, T_Y, skew) points:";
  let rng = Rng.create 7L in
  let pts =
    List.init 30 (fun _ ->
        ( Rng.float_range rng 0.15e-9 2.2e-9,
          Rng.float_range rng 0.15e-9 2.2e-9,
          Rng.float_range rng (-1e-9) 1e-9 ))
  in
  let reference =
    List.map (fun (t_a, t_b, skew) -> spice ~t_a ~t_b ~skew) pts
  in
  let t2 = Texttab.create ~header:[ "model"; "mean |err| %" ] in
  List.iter
    (fun m ->
      let preds = List.map (fun (t_a, t_b, skew) -> model m ~t_a ~t_b ~skew) pts in
      Texttab.add_row_f ~prec:1 t2 m.DM.name
        [ Stats.mean_abs_pct_error ~reference preds ])
    DM.all;
  Texttab.print t2
