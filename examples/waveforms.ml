(* Tooling tour: simulate a simultaneous-switching NAND2 transient and dump
   the analog waveforms to VCD, then export the c17 pin-to-pin delays as an
   SDF file and re-read them with the annotated analyzer.

     dune exec examples/waveforms.exe
   Outputs: nand2_simultaneous.vcd, c17.sdf (in the current directory). *)

module S = Ssd_spice
module Ck = Ssd_circuit
module Sdf = Ssd_sta.Sdf
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval

let tech = S.Tech.default

let () =
  (* --- VCD: both NAND2 inputs falling 100 ps apart --- *)
  let c = S.Circuit.create tech in
  let g = S.Gates.nand c ~name:"g" ~n:2 in
  S.Gates.attach_inverter_load c g.S.Gates.output;
  S.Circuit.drive c g.S.Gates.inputs.(0)
    (S.Gates.falling_input tech ~arrival:1.0e-9 ~t_transition:0.5e-9);
  S.Circuit.drive c g.S.Gates.inputs.(1)
    (S.Gates.falling_input tech ~arrival:1.1e-9 ~t_transition:0.5e-9);
  let fz = S.Circuit.freeze c in
  let result =
    S.Transient.simulate
      ~options:{ S.Transient.default_options with S.Transient.t_stop = 4e-9 }
      fz
  in
  let nodes = [ g.S.Gates.inputs.(0); g.S.Gates.inputs.(1); g.S.Gates.output ] in
  S.Vcd.write_file fz result ~nodes "nand2_simultaneous.vcd";
  Printf.printf "wrote nand2_simultaneous.vcd (%d timesteps)\n"
    (S.Transient.step_count result);
  (let w = S.Transient.waveform result g.S.Gates.output in
   match S.Measure.edge tech w ~rising:true with
   | Some e ->
     Printf.printf "output rises at %.3f ns (delay %.1f ps from first input)\n"
       (e.S.Measure.e_arrival *. 1e9)
       ((e.S.Measure.e_arrival -. 1.0e-9) *. 1e12)
   | None -> print_endline "output did not rise?");

  (* --- SDF: export c17, read it back, run the annotated sweep --- *)
  let library = Charlib.default () in
  let c17 = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let sdf =
    Sdf.of_netlist ~library ~tt_range:(Interval.make 0.15e-9 0.5e-9) c17
  in
  Sdf.write_file sdf "c17.sdf";
  Printf.printf "\nwrote c17.sdf (%d cells)\n" (List.length sdf.Sdf.cells);
  let back = Sdf.parse_file "c17.sdf" in
  let ann = Sdf.Annotated.create back c17 in
  Printf.printf "SDF-annotated STA: min %.3f ns, max %.3f ns\n"
    (Sdf.Annotated.min_delay ann *. 1e9)
    (Sdf.Annotated.max_delay ann *. 1e9);
  print_endline
    "note: the SDF file cannot express the simultaneous-switching speed-up —\n\
     that is the limitation the paper's model removes"
