(* Crosstalk-delay-fault test generation (the paper's Section 7 flow):
   extract coupled line pairs, generate two-pattern tests with the
   implication + ITR search, and independently verify every generated test
   by timing simulation.

     dune exec examples/atpg_crosstalk.exe *)

module Ck = Ssd_circuit
module A = Ssd_atpg
module Sta = Ssd_sta.Sta
module DM = Ssd_core.Delay_model
module Charlib = Ssd_cell.Charlib

let () =
  let library = Charlib.default () in
  let nl =
    Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s"))
  in
  let sta = Sta.analyze ~library ~model:DM.proposed nl in
  let clock = Sta.max_delay sta in
  Printf.printf "%s, clock period %.3f ns\n%!" (Ck.Netlist.stats nl)
    (clock *. 1e9);

  let sites =
    A.Fault.extract_screened ~count:10 ~seed:99L ~library ~model:DM.proposed nl
  in
  Printf.printf "extracted %d crosstalk fault sites\n%!" (List.length sites);

  let cfg = A.Atpg.default_config ~clock_period:clock in
  let results, stats = A.Atpg.run cfg ~library ~model:DM.proposed nl sites in
  List.iter
    (fun r ->
      Printf.printf "%-55s " (A.Fault.describe nl r.A.Atpg.site);
      match r.A.Atpg.outcome with
      | A.Atpg.Detected vector ->
        let ok =
          A.Atpg.verify_detection cfg ~library ~model:DM.proposed nl
            r.A.Atpg.site vector
        in
        Printf.printf "DETECTED (re-verified: %b)\n" ok
      | A.Atpg.Undetectable -> print_endline "undetectable (proven)"
      | A.Atpg.Aborted -> print_endline "aborted (budget)")
    results;
  Printf.printf "\nefficiency: %.2f%% (detected %d + undetectable %d of %d)\n"
    (A.Atpg.efficiency stats) stats.A.Atpg.detected stats.A.Atpg.undetectable
    stats.A.Atpg.total
