(* Smoke test for the bench harness's engine-comparison loop: runs the
   same sequential / cached / parallel STA configurations parsta times,
   on a circuit small enough for `dune runtest`, and checks the
   bit-identical contract.  Catches wiring regressions (pool lifecycle,
   cache threading) without the cost of the full experiment run. *)

module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval

let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let wins_equal nl a b =
  let ok = ref true in
  for i = 0 to Ck.Netlist.size nl - 1 do
    let x = Sta.timing a i and y = Sta.timing b i in
    let w (lt : Sta.line_timing) =
      [ lt.Sta.rise.Types.w_arr; lt.Sta.rise.Types.w_tt;
        lt.Sta.fall.Types.w_arr; lt.Sta.fall.Types.w_tt ]
    in
    List.iter2
      (fun u v ->
        if not (beq (Interval.lo u) (Interval.lo v)
                && beq (Interval.hi u) (Interval.hi v))
        then ok := false)
      (w x) (w y)
  done;
  !ok

let () =
  let lib = Charlib.default ~profile:Charlib.coarse () in
  let nl = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let run ~jobs ~cache =
    Sta.analyze ~jobs ~cache ~library:lib ~model:DM.proposed nl
  in
  let base = run ~jobs:1 ~cache:false in
  let configs =
    [ ("cached", run ~jobs:1 ~cache:true);
      ("par", run ~jobs:4 ~cache:false);
      ("par+cached", run ~jobs:4 ~cache:true) ]
  in
  List.iter
    (fun (tag, t) ->
      if not (wins_equal nl base t) then begin
        Printf.eprintf "bench smoke: %s differs from sequential baseline\n" tag;
        exit 1
      end)
    configs;
  if not (Sta.max_delay base > 0.) then begin
    Printf.eprintf "bench smoke: non-positive max delay\n";
    exit 1
  end;
  print_endline "bench smoke: ok"
