(* Smoke test for the bench harness's engine-comparison loops: runs the
   same sequential / cached / parallel STA configurations parsta times,
   and the full / cone / parallel fault-simulation configurations
   faultsim times, on a circuit small enough for `dune runtest`, and
   checks the bit-identical contracts.  Catches wiring regressions (pool
   lifecycle, cache threading, cone cache) without the cost of the full
   experiment run. *)

module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module A = Ssd_atpg
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval
module Json = Ssd_util.Json
module Obs = Ssd_obs.Obs

let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let wins_equal nl a b =
  let ok = ref true in
  for i = 0 to Ck.Netlist.size nl - 1 do
    let x = Sta.timing a i and y = Sta.timing b i in
    let w (lt : Sta.line_timing) =
      [ lt.Sta.rise.Types.w_arr; lt.Sta.rise.Types.w_tt;
        lt.Sta.fall.Types.w_arr; lt.Sta.fall.Types.w_tt ]
    in
    List.iter2
      (fun u v ->
        if not (beq (Interval.lo u) (Interval.lo v)
                && beq (Interval.hi u) (Interval.hi v))
        then ok := false)
      (w x) (w y)
  done;
  !ok

let () =
  let lib = Charlib.default ~profile:Charlib.coarse () in
  let nl = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let run ~jobs ~cache =
    Sta.analyze ~jobs ~cache ~library:lib ~model:DM.proposed nl
  in
  let base = run ~jobs:1 ~cache:false in
  let configs =
    [ ("cached", run ~jobs:1 ~cache:true);
      ("par", run ~jobs:4 ~cache:false);
      ("par+cached", run ~jobs:4 ~cache:true) ]
  in
  List.iter
    (fun (tag, t) ->
      if not (wins_equal nl base t) then begin
        Printf.eprintf "bench smoke: %s differs from sequential baseline\n" tag;
        exit 1
      end)
    configs;
  if not (Sta.max_delay base > 0.) then begin
    Printf.eprintf "bench smoke: non-positive max delay\n";
    exit 1
  end;
  (* faultsim loop: full-resimulation vs cone-restricted (and parallel)
     detection sets must be bit-identical on c17 *)
  let sites =
    A.Fault.extract ~count:16 ~delta:60e-12 ~align_window:2500e-12
      ~seed:7L nl
  in
  let vectors = A.Fault_sim.random_vectors ~seed:3L ~count:32 nl in
  let fs ~jobs ~engine =
    A.Fault_sim.simulate ~jobs ~engine ~library:lib ~model:DM.proposed
      ~clock_period:(Sta.max_delay base) nl sites vectors
  in
  let fbase = fs ~jobs:1 ~engine:A.Fault_sim.Full in
  List.iter
    (fun (tag, r) ->
      if
        r.A.Fault_sim.detected <> fbase.A.Fault_sim.detected
        || r.A.Fault_sim.undetected <> fbase.A.Fault_sim.undetected
        || r.A.Fault_sim.coverage <> fbase.A.Fault_sim.coverage
      then begin
        Printf.eprintf
          "bench smoke: faultsim %s differs from full baseline\n" tag;
        exit 1
      end)
    [ ("cone j1", fs ~jobs:1 ~engine:A.Fault_sim.Cone);
      ("cone j4", fs ~jobs:4 ~engine:A.Fault_sim.Cone);
      ("full j4", fs ~jobs:4 ~engine:A.Fault_sim.Full) ];
  if sites <> [] && fbase.A.Fault_sim.detected = [] then
    (* not fatal — random vectors may miss every site — but the identity
       check above would then be vacuous, so surface it *)
    Printf.eprintf "bench smoke: note: no site detected on c17\n";
  (* window screen: the STA-window pre-screen discards sites on windows
     alone; by its soundness argument it must never change the result *)
  let fscreen ~window_screen =
    A.Fault_sim.simulate_with ~window_screen
      (Ssd_sta.Run_opts.make ())
      ~library:lib ~model:DM.proposed ~clock_period:(Sta.max_delay base) nl
      sites vectors
  in
  let f_on = fscreen ~window_screen:true
  and f_off = fscreen ~window_screen:false in
  if
    f_on.A.Fault_sim.detected <> fbase.A.Fault_sim.detected
    || f_off.A.Fault_sim.detected <> fbase.A.Fault_sim.detected
    || f_on.A.Fault_sim.undetected <> fbase.A.Fault_sim.undetected
  then begin
    Printf.eprintf
      "bench smoke: window screen on/off changes the detection result\n";
    exit 1
  end;
  (* eco engine loop: every edit kind on c17, each checked bit-identical
     to a fresh analysis of the edited circuit, then a checkpointed
     revert back to the bit-exact base *)
  let module E = Ssd_sta.Engine in
  E.with_engine ~library:lib ~model:DM.proposed nl (fun eng ->
      let engine_equals_reference tag =
        let reference = E.reanalyze eng in
        let ok = ref true in
        for i = 0 to Ck.Netlist.size nl - 1 do
          let w (lt : Sta.line_timing) =
            [ lt.Sta.rise.Types.w_arr; lt.Sta.rise.Types.w_tt;
              lt.Sta.fall.Types.w_arr; lt.Sta.fall.Types.w_tt ]
          in
          List.iter2
            (fun u v ->
              if not (beq (Interval.lo u) (Interval.lo v)
                      && beq (Interval.hi u) (Interval.hi v))
              then ok := false)
            (w (E.timing eng i)) (w (Sta.timing reference i))
        done;
        if not !ok then begin
          Printf.eprintf
            "bench smoke: engine differs from re-analysis after %s\n" tag;
          exit 1
        end
      in
      let some_pi = List.hd (Ck.Netlist.inputs nl) in
      let some_gate =
        List.find
          (fun i ->
            match Ck.Netlist.node nl i with
            | Ck.Netlist.Gate { fanin; _ } -> Array.length fanin = 2
            | Ck.Netlist.Pi -> false)
          (List.init (Ck.Netlist.size nl) Fun.id)
      in
      let cp = E.checkpoint eng in
      List.iter
        (fun (tag, edit) ->
          E.apply eng edit;
          engine_equals_reference tag)
        [
          ("set_extra_delay",
           E.Set_extra_delay { line = some_gate; delta = 40e-12 });
          ("swap_gate", E.Swap_gate { node = some_gate; kind = Ck.Gate.Nor });
          ("set_pi_spec",
           E.Set_pi_spec
             {
               pi = some_pi;
               spec =
                 {
                   Ssd_sta.Run_opts.pi_arrival = Interval.make 0. 0.1e-9;
                   pi_tt = Interval.make 0.2e-9 0.4e-9;
                 };
             });
          ("set_model", E.Set_model DM.pin_to_pin);
        ];
      E.revert eng cp;
      engine_equals_reference "revert";
      if not (wins_equal nl base (E.reanalyze eng)) then begin
        Printf.eprintf "bench smoke: reverted engine is not the base\n";
        exit 1
      end);
  (* scale loop, downsized: the packed structure-of-arrays STA path must
     reproduce the seed record-array oracle bit for bit — sequentially
     and in parallel — on a layered generated circuit, and a cached cone
     must cost bitset bytes (size/8), not a byte per node *)
  let scale_nl =
    Ck.Decompose.to_primitive
      (Ck.Generator.generate
         {
           Ck.Generator.default_params with
           Ck.Generator.g_name = "smoke-scale";
           n_inputs = 32;
           n_outputs = 16;
           n_gates = 3_000;
           locality = 256;
           seed = 11L;
           shape = Ck.Generator.Layered { layers = 30 };
         })
  in
  let oracle = Sta.analyze_ref ~library:lib ~model:DM.proposed scale_nl in
  List.iter
    (fun jobs ->
      let t = Sta.analyze ~jobs ~library:lib ~model:DM.proposed scale_nl in
      let w = Sta.windows t in
      for i = 0 to Ck.Netlist.size scale_nl - 1 do
        if
          not
            (Ssd_sta.Windows.eq w i ~rise:oracle.(i).Sta.rise
               ~fall:oracle.(i).Sta.fall)
        then begin
          Printf.eprintf
            "bench smoke: scale jobs=%d node %d differs from the oracle\n"
            jobs i;
          exit 1
        end
      done)
    [ 1; 4 ];
  let scale_root = List.hd (Ck.Netlist.inputs scale_nl) in
  let scale_cone = Ck.Netlist.fanout_cone scale_nl scale_root in
  let scale_n = Ck.Netlist.size scale_nl in
  let cone_budget =
    (scale_n / 8) + (8 * Array.length scale_cone.Ck.Netlist.cone_nodes) + 128
  in
  if Ck.Netlist.cone_cache_bytes scale_nl > cone_budget then begin
    Printf.eprintf "bench smoke: cached cone costs %d bytes, budget %d\n"
      (Ck.Netlist.cone_cache_bytes scale_nl)
      cone_budget;
    exit 1
  end;
  (* corners loop, downsized: every plane of one batched K-corner sweep
     must equal an independent scalar analysis over that corner's
     derated library, bit for bit, sequentially and in parallel (K=3
     exercises a partial chunk of the corner-chunked parallel path) *)
  let module CS = Ssd_sta.Corner_sta in
  let module Corners = Ssd_cell.Corners in
  let ck = 3 in
  let table = Corners.build ~specs:(Corners.default_specs ck) lib in
  List.iter
    (fun jobs ->
      let batched =
        CS.analyze ~opts:(Ssd_sta.Run_opts.make ~jobs ()) ~table scale_nl
      in
      for c = 0 to ck - 1 do
        let scalar =
          Sta.analyze_with
            (Ssd_sta.Run_opts.make ())
            ~library:(Corners.library table c) ~model:DM.proposed scale_nl
        in
        if not (CS.plane_matches batched ~corner:c scalar) then begin
          Printf.eprintf
            "bench smoke: corners jobs=%d plane %d differs from its scalar \
             analysis\n"
            jobs c;
          exit 1
        end
      done)
    [ 1; 4 ];
  (* monte-carlo loop, downsized: the chunked batched-kernel sampler must
     reproduce the scalar resident-engine oracle bit for bit, sequentially
     and in parallel (samples=7 with batch=3 exercises a tail chunk) *)
  let mc_samples = 7 and mc_seed = 4242L in
  let mc_oracle =
    CS.monte_carlo_scalar
      ~opts:(Ssd_sta.Run_opts.make ~cache:true ())
      ~samples:mc_samples ~seed:mc_seed ~library:lib scale_nl
  in
  List.iter
    (fun jobs ->
      let mc =
        CS.monte_carlo
          ~opts:(Ssd_sta.Run_opts.make ~jobs ~mc_batch:3 ())
          ~samples:mc_samples ~seed:mc_seed ~library:lib scale_nl
      in
      let bad = ref false in
      Array.iteri
        (fun pi row ->
          Array.iteri
            (fun s d ->
              if not (beq d mc_oracle.CS.mc_delays.(pi).(s)) then bad := true)
            row)
        mc.CS.mc_delays;
      Array.iteri
        (fun s m ->
          if not (beq m mc_oracle.CS.mc_max.(s)) then bad := true)
        mc.CS.mc_max;
      if !bad then begin
        Printf.eprintf
          "bench smoke: monte-carlo jobs=%d differs from the scalar oracle\n"
          jobs;
        exit 1
      end)
    [ 1; 4 ];
  (* telemetry loop: run one instrumented --stats/--trace style pass,
     write the Chrome trace, parse it back, and check the span tree
     covers every STA level exactly once (one "sta.level.<l>" complete
     event per level) — the contract `ssd sta --trace` exposes *)
  let obs = Obs.create ~trace:true () in
  let traced = Sta.analyze ~jobs:4 ~obs ~library:lib ~model:DM.proposed nl in
  if not (wins_equal nl base traced) then begin
    Printf.eprintf "bench smoke: instrumented run differs from baseline\n";
    exit 1
  end;
  if Obs.report obs = "" then begin
    Printf.eprintf "bench smoke: empty telemetry report\n";
    exit 1
  end;
  let path = Filename.temp_file "ssd_smoke_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.write_trace obs path;
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.parse contents with
      | Error msg ->
        Printf.eprintf "bench smoke: trace is not valid JSON: %s\n" msg;
        exit 1
      | Ok json ->
        let events =
          match Json.member "traceEvents" json with
          | Some evs -> Json.to_list evs
          | None ->
            Printf.eprintf "bench smoke: trace lacks traceEvents\n";
            exit 1
        in
        let name_of e =
          match Json.member "name" e with
          | Some n -> Json.string_value n
          | None -> None
        in
        let complete_named n =
          List.length
            (List.filter
               (fun e ->
                 (match Json.member "ph" e with
                 | Some p -> Json.string_value p = Some "X"
                 | None -> false)
                 && name_of e = Some n)
               events)
        in
        let levels = Array.length (Ck.Netlist.levels nl) in
        for l = 0 to levels - 1 do
          let n = complete_named (Printf.sprintf "sta.level.%d" l) in
          if n <> 1 then begin
            Printf.eprintf
              "bench smoke: level %d has %d trace span(s), want exactly 1\n"
              l n;
            exit 1
          end
        done);
  (* snapshot surface: the same instrumented run exports a typed
     snapshot with a span forest, whose JSON serialisation parses back
     and whose Prometheus exposition names the gate counter *)
  let sn = Obs.snapshot obs in
  if sn.Obs.sn_spans = [] then begin
    Printf.eprintf "bench smoke: snapshot has no span forest\n";
    exit 1
  end;
  (match Json.parse (Json.to_string (Obs.snapshot_to_json sn)) with
  | Error msg ->
    Printf.eprintf "bench smoke: snapshot JSON does not parse: %s\n" msg;
    exit 1
  | Ok _ -> ());
  let prom = Obs.to_prometheus sn in
  let contains r s =
    let nr = String.length r and ns = String.length s in
    let rec go i = i + ns <= nr && (String.sub r i ns = s || go (i + 1)) in
    go 0
  in
  if not (contains prom "ssd_sta_gates_total") then begin
    Printf.eprintf "bench smoke: exposition lacks ssd_sta_gates_total\n";
    exit 1
  end;
  (* serve loop: the daemon dispatcher must produce byte-identical
     response streams whether cross-session batches run on one lane or
     four — the wiring contract behind `ssd serve --jobs` (the protocol
     and session semantics themselves are covered by test_serve) *)
  let module Server = Ssd_serve.Server in
  let module P = Ssd_serve.Protocol in
  let script =
    [
      {|{"v":1,"id":1,"op":"open","session":"a","circuit":"c17"}|};
      {|{"v":1,"id":2,"op":"open","session":"b","circuit":"c17"}|};
      {|{"v":1,"id":3,"op":"checkpoint","session":"a"}|};
      {|{"v":1,"id":4,"op":"edit","session":"a","edits":[{"op":"extra","signal":"11","delta":3e-11}]}|};
      {|{"v":1,"id":5,"op":"query","session":"b","what":"po_window"}|};
      {|{"v":1,"id":6,"op":"query","session":"a","what":"po_window"}|};
      {|{"v":1,"id":7,"op":"query","session":"a","what":"timing","signal":"22"}|};
      {|{"v":1,"id":8,"op":"revert","checkpoint":1,"session":"a"}|};
      {|{"v":1,"id":9,"op":"query","session":"a","what":"po_window"}|};
      {|{"v":1,"id":10,"op":"ping"}|};
    ]
  in
  let run_script jobs =
    let sv =
      Server.create
        { (Server.default_config ~library:lib) with Server.sv_jobs = jobs }
    in
    Fun.protect
      ~finally:(fun () -> Server.close sv)
      (fun () -> Server.dispatch_batch sv script)
  in
  let serve_seq = run_script 1 and serve_par = run_script 4 in
  if serve_seq <> serve_par then begin
    Printf.eprintf
      "bench smoke: serve responses differ between jobs 1 and jobs 4\n";
    exit 1
  end;
  List.iter2
    (fun req resp ->
      match Json.parse resp with
      | Ok j when P.response_ok j -> ()
      | _ ->
        Printf.eprintf "bench smoke: serve request failed: %s -> %s\n" req
          resp;
        exit 1)
    script serve_seq;
  (* the two sessions hold independent engines: a's edit must move a's
     PO windows away from b's shared baseline, and a's revert must put
     them back (ids differ, so compare the parsed ok bodies) *)
  let ok_body i =
    match Json.parse (List.nth serve_seq i) with
    | Ok j -> Json.member "ok" j
    | Error _ ->
      Printf.eprintf "bench smoke: serve response %d does not parse\n" i;
      exit 1
  in
  let b_base = ok_body 4 and a_edited = ok_body 5 and a_reverted = ok_body 8 in
  if b_base = a_edited then begin
    Printf.eprintf "bench smoke: serve edit did not move session a\n";
    exit 1
  end;
  if a_reverted <> b_base then begin
    Printf.eprintf
      "bench smoke: serve revert did not restore the baseline windows\n";
    exit 1
  end;
  print_endline "bench smoke: ok"
