(* Experiment harness: regenerates every figure and table of the paper's
   evaluation section (see DESIGN.md for the experiment index), then runs a
   Bechamel performance suite.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig2 table2
     SSD_FAST=1 dune exec bench/main.exe # coarse characterization

   Absolute numbers differ from the paper (our oracle is a level-1
   transistor simulator, not the authors' HSPICE setup); the comparisons
   the paper draws are what must — and do — hold.  EXPERIMENTS.md records
   paper-vs-measured per experiment. *)

module S = Ssd_spice
module C = Ssd_cell
module Charlib = C.Charlib
module Sweep = C.Sweep
module Fit = C.Fit
module Core = Ssd_core
module DM = Core.Delay_model
module Types = Core.Types
module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module TS = Ssd_sta.Timing_sim
module A = Ssd_atpg
module Interval = Ssd_util.Interval
module Rng = Ssd_util.Rng
module Texttab = Ssd_util.Texttab
module Stats = Ssd_util.Stats
module Json = Ssd_util.Json
module Obs = Ssd_obs.Obs

(* one shared sink for the whole harness: the identity-check passes of
   [parsta] / [faultsim] run instrumented against it (they are not the
   timed runs, so the <=2%% bench-overhead budget is untouched) and the
   aggregated counters are embedded in the --json output next to the
   wall times *)
let bench_obs = Obs.create ()

let tech = S.Tech.default
let ps v = v *. 1e12
let ns v = v *. 1e9

let library = lazy (Charlib.default ())

let nand2 () = Charlib.find (Lazy.force library) Sweep.Nand 2

let header title =
  Printf.printf "\n==== %s ====\n%!" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n%!" s) fmt

let tr pos arrival t_tr = { Types.pos; arrival; t_tr }

(* shared simulator probes *)
let sim_pair ?(n = 2) ?(pos_a = 0) ?(pos_b = 1) ~t_a ~t_b ~skew () =
  Sweep.pair tech Sweep.Nand ~n ~fanout:1 ~pos_a ~pos_b ~t_a ~t_b ~skew

let sim_single ?(n = 2) ~pos ~t_in () =
  Sweep.single tech Sweep.Nand ~n ~fanout:1 ~pos ~to_controlling:true ~t_in

(* ------------------------------------------------------------------ *)
(* Figure 1: single vs. two simultaneous to-controlling transitions    *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header "Figure 1 — single vs. simultaneous to-controlling transitions (NAND2)";
  let t_in = 0.5e-9 in
  let single = (sim_single ~pos:0 ~t_in ()).Sweep.m_delay in
  let both = (sim_pair ~t_a:t_in ~t_b:t_in ~skew:0. ()).Sweep.m_delay in
  let t = Texttab.create ~header:[ "stimulus"; "delay (ps)" ] in
  Texttab.add_row_f ~prec:1 t "single falling input" [ ps single ];
  Texttab.add_row_f ~prec:1 t "both inputs fall together" [ ps both ];
  Texttab.print t;
  note "ratio simultaneous/single = %.2f (paper: 0.17ns/0.31ns = 0.55)"
    (both /. single)

(* ------------------------------------------------------------------ *)
(* Figure 2: delay vs. skew with the V-shape approximation             *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header "Figure 2 — rising delay of NAND2 vs. skew and its V approximation";
  let cell = nand2 () in
  let t_in = 0.5e-9 in
  let (syr, dyr), (s0, d0), (sr, dr) =
    Core.Vshape.v_points cell ~fanout:1 ~pos_a:0 ~pos_b:1 ~t_a:t_in ~t_b:t_in
  in
  note "V anchors: (SYR=%.0fps, DYR=%.1fps) (S0R=%.0fps, D0R=%.1fps) (SR=%.0fps, DR=%.1fps)"
    (ps syr) (ps dyr) (ps s0) (ps d0) (ps sr) (ps dr);
  let t = Texttab.create ~header:[ "skew (ps)"; "simulator (ps)"; "model V (ps)" ] in
  List.iter
    (fun skew ->
      let sim = (sim_pair ~t_a:t_in ~t_b:t_in ~skew ()).Sweep.m_delay in
      let m =
        Core.Vshape.pair_delay cell ~fanout:1 ~a:(tr 0 0. t_in)
          ~b:(tr 1 skew t_in)
      in
      Texttab.add_row_f ~prec:1 t (Printf.sprintf "%+.0f" (ps skew))
        [ ps sim; ps m ])
    [ -0.9e-9; -0.6e-9; -0.4e-9; -0.25e-9; -0.15e-9; -0.08e-9; 0.; 0.08e-9;
      0.15e-9; 0.25e-9; 0.4e-9; 0.6e-9; 0.9e-9 ];
  Texttab.print t;
  note "shape check: minimum at zero skew, saturation to the pin-to-pin arms"

(* ------------------------------------------------------------------ *)
(* Figure 5: trends of the timing functions vs. single variables       *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header "Figure 5 — timing-function trends (NAND2)";
  let ts = [ 0.15e-9; 0.4e-9; 0.8e-9; 1.4e-9; 2.2e-9; 3.2e-9; 4.5e-9 ] in
  let d_rows = List.map (fun t -> (t, (sim_single ~pos:0 ~t_in:t ()).Sweep.m_delay)) ts in
  let tt_rows = List.map (fun t -> (t, (sim_single ~pos:0 ~t_in:t ()).Sweep.m_out_tt)) ts in
  let t = Texttab.create ~header:[ "T_X (ns)"; "d (ps)"; "t_out (ps)" ] in
  List.iter2
    (fun (tx, d) (_, tt) ->
      Texttab.add_row_f ~prec:1 t (Printf.sprintf "%.2f" (ns tx)) [ ps d; ps tt ])
    d_rows tt_rows;
  Texttab.print t;
  let bitonic = Ssd_util.Func1d.is_bitonic_up_down ~eps:1e-12 d_rows in
  let tt_monotone = Ssd_util.Func1d.is_monotonic_nondecreasing ~eps:1e-12 tt_rows in
  note "d(T) monotone-then-falling (case 2 of Fig. 5a/b): %b" bitonic;
  note "t_out(T) monotonically increasing (Fig. 5d/e): %b" tt_monotone;
  (* skew dependence of the output transition time: V with possibly
     non-zero vertex (Fig. 5f) *)
  let skews = [ -0.5e-9; -0.25e-9; -0.1e-9; 0.; 0.1e-9; 0.25e-9; 0.5e-9 ] in
  let tt_sk =
    List.map
      (fun sk -> (sk, (sim_pair ~t_a:0.5e-9 ~t_b:0.5e-9 ~skew:sk ()).Sweep.m_out_tt))
      skews
  in
  let best = List.fold_left (fun (bs, bv) (s, v) -> if v < bv then (s, v) else (bs, bv))
      (List.hd tt_sk) (List.tl tt_sk) in
  note "t_out(skew) minimum at %.0fps (need not be zero — Fig. 5f): %.1fps"
    (ps (fst best)) (ps (snd best))

(* ------------------------------------------------------------------ *)
(* Figure 10: input position — single transition at position 4, NAND5  *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Figure 10 — single transition at position 4 of NAND5";
  (* pin-only characterization of the 5-input NAND (not in the default
     library; pairs are unnecessary for single-input delays) *)
  let profile =
    if Sys.getenv_opt "SSD_FAST" <> None then Charlib.coarse else Charlib.fine
  in
  let cell5 = Charlib.characterize_cell ~with_pairs:false profile tech Sweep.Nand ~n:5 in
  let t = Texttab.create
      ~header:[ "T (ns)"; "SPICE (ps)"; "proposed (ps)"; "jun (ps)"; "nabavi (ps)" ]
  in
  List.iter
    (fun t_in ->
      let sim = (sim_single ~n:5 ~pos:4 ~t_in ()).Sweep.m_delay in
      let f m = m.DM.single_delay cell5 ~fanout:1 ~pos:4 ~t_in in
      Texttab.add_row_f ~prec:1 t (Printf.sprintf "%.2f" (ns t_in))
        [ ps sim; ps (f DM.proposed); ps (f DM.jun); ps (f DM.nabavi) ])
    [ 0.15e-9; 0.3e-9; 0.5e-9; 0.8e-9; 1.2e-9; 1.8e-9; 2.6e-9 ];
  Texttab.print t;
  let sim0 = (sim_single ~n:5 ~pos:0 ~t_in:0.5e-9 ()).Sweep.m_delay in
  let sim4 = (sim_single ~n:5 ~pos:4 ~t_in:0.5e-9 ()).Sweep.m_delay in
  note "position effect at T=0.5ns: d(p4)/d(p0) = %.2f (paper: up to 1.5)"
    (sim4 /. sim0);
  note "inverter-collapsing baselines are position-blind; the proposed model tracks SPICE"

(* ------------------------------------------------------------------ *)
(* Figure 11: simultaneous switching, vary one transition time         *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "Figure 11 — simultaneous switching on NAND2, T_X = 0.5 ns, vary T_Y";
  let cell = nand2 () in
  let t_x = 0.5e-9 in
  let t = Texttab.create
      ~header:[ "T_Y (ns)"; "SPICE (ps)"; "proposed (ps)"; "jun (ps)"; "nabavi (ps)" ]
  in
  List.iter
    (fun t_y ->
      let sim = (sim_pair ~t_a:t_x ~t_b:t_y ~skew:0. ()).Sweep.m_delay in
      let f m =
        m.DM.pair_delay cell ~fanout:1 ~a:(tr 0 0. t_x) ~b:(tr 1 0. t_y)
      in
      Texttab.add_row_f ~prec:1 t (Printf.sprintf "%.2f" (ns t_y))
        [ ps sim; ps (f DM.proposed); ps (f DM.jun); ps (f DM.nabavi) ])
    [ 0.15e-9; 0.3e-9; 0.5e-9; 0.8e-9; 1.2e-9; 1.7e-9; 2.3e-9 ];
  Texttab.print t;
  note "paper: proposed and Jun track HSPICE; Nabavi holds only near T_Y = T_X"

(* ------------------------------------------------------------------ *)
(* Figure 12: delay vs. skew for all four models                       *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  header "Figure 12 — vary the skew on NAND2 (T_X = T_Y = 0.5 ns)";
  let cell = nand2 () in
  let t_in = 0.5e-9 in
  let t = Texttab.create
      ~header:
        [ "skew (ps)"; "SPICE (ps)"; "proposed (ps)"; "pin-to-pin (ps)";
          "jun (ps)"; "nabavi (ps)" ]
  in
  List.iter
    (fun skew ->
      let sim = (sim_pair ~t_a:t_in ~t_b:t_in ~skew ()).Sweep.m_delay in
      let f m =
        m.DM.pair_delay cell ~fanout:1 ~a:(tr 0 0. t_in) ~b:(tr 1 skew t_in)
      in
      Texttab.add_row_f ~prec:1 t (Printf.sprintf "%+.0f" (ps skew))
        [ ps sim; ps (f DM.proposed); ps (f DM.pin_to_pin); ps (f DM.jun);
          ps (f DM.nabavi) ])
    [ -1.2e-9; -0.8e-9; -0.5e-9; -0.3e-9; -0.15e-9; 0.; 0.15e-9; 0.3e-9;
      0.5e-9; 0.8e-9; 1.2e-9 ];
  Texttab.print t;
  note "paper: proposed matches HSPICE; Jun misses the large-skew saturation;";
  note "Nabavi (aligned-start assumption) is skew-insensitive and least accurate"

(* ------------------------------------------------------------------ *)
(* Section 6.1 summary: accuracy over random (T_X, T_Y, skew) samples  *)
(* ------------------------------------------------------------------ *)

let accuracy () =
  header "Section 6.1 — model error vs. simulator over random (T_X, T_Y, skew)";
  let cell = nand2 () in
  let rng = Rng.create 2001L in
  let samples =
    List.init 48 (fun _ ->
        let t_a = Rng.float_range rng 0.15e-9 2.4e-9 in
        let t_b = Rng.float_range rng 0.15e-9 2.4e-9 in
        let skew = Rng.float_range rng (-1.2e-9) 1.2e-9 in
        (t_a, t_b, skew))
  in
  let sims =
    List.map
      (fun (t_a, t_b, skew) -> (sim_pair ~t_a ~t_b ~skew ()).Sweep.m_delay)
      samples
  in
  let t = Texttab.create
      ~header:[ "model"; "mean |err| %"; "max |err| %"; "rms err (ps)" ]
  in
  List.iter
    (fun m ->
      let preds =
        List.map
          (fun (t_a, t_b, skew) ->
            m.DM.pair_delay cell ~fanout:1 ~a:(tr 0 0. t_a) ~b:(tr 1 skew t_b))
          samples
      in
      let errs = List.map2 (fun p s -> p -. s) preds sims in
      Texttab.add_row_f ~prec:1 t m.DM.name
        [
          Stats.mean_abs_pct_error ~reference:sims preds;
          Stats.max_abs_pct_error ~reference:sims preds;
          ps (Stats.rms errs);
        ])
    DM.all;
  Texttab.print t;
  note "paper: the proposed model 'works for more general cases' than either baseline"

(* ------------------------------------------------------------------ *)
(* Table 2: STA min-delay at the POs of the benchmark suite            *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2 — STA min-delay at primary outputs (pin-to-pin vs proposed)";
  let lib = Lazy.force library in
  let t = Texttab.create
      ~header:
        [ "circuit"; "pin-to-pin min (ns)"; "proposed min (ns)"; "ratio";
          "max (ns, both)" ]
  in
  List.iter
    (fun nl ->
      let prim = Ck.Decompose.to_primitive nl in
      let p2p = Sta.analyze ~library:lib ~model:DM.pin_to_pin prim in
      let prop = Sta.analyze ~library:lib ~model:DM.proposed prim in
      let ratio = Sta.min_delay p2p /. Sta.min_delay prop in
      Texttab.add_row t
        [
          Ck.Netlist.name nl;
          Printf.sprintf "%.3f" (ns (Sta.min_delay p2p));
          Printf.sprintf "%.3f" (ns (Sta.min_delay prop));
          Printf.sprintf "%.3f" ratio;
          Printf.sprintf "%.3f" (ns (Sta.max_delay prop));
        ])
    (Ck.Benchmarks.table2_suite ());
  Texttab.print t;
  note "paper: identical max-delay; pin-to-pin overestimates min-delay by 5-31%%";
  note "on six of nine circuits (the others tie).  c880s..c7552s are synthetic";
  note "stand-ins with the real circuits' PI/PO/gate counts (DESIGN.md)."

(* ------------------------------------------------------------------ *)
(* Section 5: ITR window shrinkage as values are specified             *)
(* ------------------------------------------------------------------ *)

let itrshrink () =
  header "Section 5 — ITR arrival-window shrinkage during value assignment";
  let lib = Lazy.force library in
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let itr = Ssd_itr.Itr.create ~library:lib ~model:DM.proposed nl in
  let rng = Rng.create 31L in
  let pis = Array.of_list (Ck.Netlist.inputs nl) in
  Rng.shuffle rng pis;
  let total = Array.length pis in
  let t = Texttab.create
      ~header:[ "PIs assigned"; "Σ window width (ns)"; "vs STA" ]
  in
  let initial = Ssd_itr.Itr.window_width_sum itr in
  Texttab.add_row t [ "0 (= STA)"; Printf.sprintf "%.2f" (ns initial); "100.0%" ];
  Array.iteri
    (fun k pi ->
      let choice =
        match Rng.int rng 4 with
        | 0 -> "01" | 1 -> "10" | 2 -> "11" | _ -> "00"
      in
      ignore
        (Ssd_itr.Itr.assign itr pi
           (Option.get (Ssd_itr.Value2f.of_string choice)));
      let q = k + 1 in
      if q * 4 mod total < 4 || q = total then begin
        let width = Ssd_itr.Itr.window_width_sum itr in
        Texttab.add_row t
          [
            Printf.sprintf "%d/%d" q total;
            Printf.sprintf "%.2f" (ns width);
            Printf.sprintf "%.1f%%" (100. *. width /. initial);
          ]
      end)
    pis;
  Texttab.print t;
  note "timing ranges shrink monotonically as the vector pair is specified,";
  note "which is what lets ITR prune choices a vector-independent STA cannot"

(* ------------------------------------------------------------------ *)
(* Section 7: crosstalk ATPG efficiency without / with ITR             *)
(* ------------------------------------------------------------------ *)

let atpg () =
  header "Section 7 — crosstalk-delay-fault ATPG efficiency";
  let lib = Lazy.force library in
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let sta = Sta.analyze ~library:lib ~model:DM.proposed nl in
  let clock = Sta.max_delay sta in
  let screened =
    A.Fault.extract_screened ~count:14 ~align_window:120e-12 ~seed:99L
      ~library:lib ~model:DM.proposed nl
  in
  let blind = A.Fault.extract ~count:10 ~align_window:120e-12 ~seed:7L nl in
  let sites = screened @ blind in
  note "circuit: %s; %d fault sites (%d co-excitability screened + %d blind)"
    (Ck.Netlist.name nl) (List.length sites) (List.length screened)
    (List.length blind);
  let t = Texttab.create
      ~header:
        [ "mode"; "detected"; "undetectable"; "aborted"; "efficiency %";
          "expansions"; "wall (s)" ]
  in
  let seeds = [ 1L; 2L; 3L ] in
  let run_mode name use_itr =
    let totals = ref (0, 0, 0, 0, 0.) in
    List.iter
      (fun seed ->
        let cfg =
          { (A.Atpg.default_config ~clock_period:clock) with
            A.Atpg.use_itr; max_expansions = 1000; seed }
        in
        let _, s = A.Atpg.run cfg ~library:lib ~model:DM.proposed nl sites in
        let d, u, a, e, w = !totals in
        totals :=
          ( d + s.A.Atpg.detected,
            u + s.A.Atpg.undetectable,
            a + s.A.Atpg.aborted,
            e + s.A.Atpg.total_expansions,
            w +. s.A.Atpg.total_wall ))
      seeds;
    let d, u, a, e, w = !totals in
    Texttab.add_row t
      [
        name;
        string_of_int d;
        string_of_int u;
        string_of_int a;
        Printf.sprintf "%.2f" (100. *. float_of_int (d + u) /. float_of_int (d + u + a));
        string_of_int e;
        Printf.sprintf "%.1f" w;
      ]
  in
  note "aggregated over %d ATPG seeds" (List.length seeds);
  run_mode "without ITR" false;
  run_mode "with ITR" true;
  Texttab.print t;
  note "paper: efficiency 39.63%% -> 82.75%% with ITR in the authors' crosstalk";
  note "ATPG.  Our framework reproduces the machinery (windows, refinement,";
  note "sound alignment pruning); see EXPERIMENTS.md for the gap analysis on";
  note "this synthetic circuit population."

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md                   *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablation 1 — D0R fitting basis (paper's cube-root form vs adaptive)";
  let grid = [ 0.15e-9; 0.4e-9; 0.8e-9; 1.5e-9; 2.4e-9 ] in
  let samples =
    List.concat_map
      (fun ta ->
        List.map
          (fun tb ->
            ((ta, tb), (sim_pair ~t_a:ta ~t_b:tb ~skew:0. ()).Sweep.m_delay))
          grid)
      grid
  in
  let t = Texttab.create ~header:[ "basis"; "rms (ps)" ] in
  List.iter
    (fun (name, basis) ->
      let f = Fit.fit2_of_samples ~basis ~range:(0.15e-9, 2.4e-9) samples in
      Texttab.add_row_f ~prec:2 t name [ ps f.Fit.rms2 ])
    [ ("cube-root product (paper)", Fit.Cuberoot2); ("quadratic", Fit.Quad2);
      ("cubic", Fit.Cubic2) ];
  let best = Fit.fit2_best ~range:(0.15e-9, 2.4e-9) samples in
  Texttab.add_row_f ~prec:2 t "best-of (used)" [ ps best.Fit.rms2 ];
  Texttab.print t;
  note "our technology's D0R surface is bi-tonic in each transition time, which";
  note "the paper's cube-root product cannot express — the flow picks per surface";

  header "Ablation 2 — V-shape model vs table lookup";
  let cell = nand2 () in
  let lut =
    C.Lookup.build tech Sweep.Nand ~n:2 ~pos_a:0 ~pos_b:1
  in
  let rng = Rng.create 77L in
  let pts =
    List.init 40 (fun _ ->
        ( Rng.float_range rng 0.2e-9 2.2e-9,
          Rng.float_range rng 0.2e-9 2.2e-9,
          Rng.float_range rng (-1e-9) 1e-9 ))
  in
  let sims =
    List.map (fun (ta, tb, sk) -> (sim_pair ~t_a:ta ~t_b:tb ~skew:sk ()).Sweep.m_delay) pts
  in
  let err preds =
    Stats.mean_abs_pct_error ~reference:sims preds
  in
  let v_preds =
    List.map
      (fun (ta, tb, sk) ->
        Core.Vshape.pair_delay cell ~fanout:1 ~a:(tr 0 0. ta) ~b:(tr 1 sk tb))
      pts
  in
  let l_preds =
    List.map (fun (ta, tb, sk) -> C.Lookup.pair_delay lut ~t_a:ta ~t_b:tb ~skew:sk) pts
  in
  let t2 = Texttab.create ~header:[ "model"; "mean |err| %"; "stored values" ] in
  Texttab.add_row t2
    [ "V-shape (3 fitted surfaces)"; Printf.sprintf "%.1f" (err v_preds); "16 coefficients" ];
  Texttab.add_row t2
    [ "table lookup (trilinear)"; Printf.sprintf "%.1f" (err l_preds);
      Printf.sprintf "%d entries" (C.Lookup.entries lut) ];
  Texttab.print t2;
  note "comparable accuracy, but only the analytic V carries the shape metadata";
  note "(monotone / bi-tonic, saturation points) STA needs to pick worst-case corners";

  header "Ablation 3 — >2-simultaneous extension (tied-k refinement)";
  let cell3 = Charlib.find (Lazy.force library) Sweep.Nand 3 in
  let rng = Rng.create 91L in
  let pts3 = List.init 16 (fun _ -> Rng.float_range rng 0.2e-9 1.5e-9) in
  let sim3 t_in =
    (Sweep.tied tech Sweep.Nand ~n:3 ~fanout:1 ~k:3 ~t_in).Sweep.m_delay
  in
  let with_ref t_in =
    (Core.Vshape.ctl_event cell3 ~fanout:1
       [ tr 0 0. t_in; tr 1 0. t_in; tr 2 0. t_in ])
      .Types.e_arr
  in
  let pairs_only t_in =
    (* best pair without the tied-k candidate *)
    List.fold_left Float.min infinity
      (List.map
         (fun (a, b) ->
           Core.Vshape.pair_delay cell3 ~fanout:1 ~a:(tr a 0. t_in)
             ~b:(tr b 0. t_in))
         [ (0, 1); (0, 2); (1, 2) ])
  in
  let sims3 = List.map sim3 pts3 in
  let t3 = Texttab.create ~header:[ "variant"; "mean |err| %" ] in
  Texttab.add_row_f ~prec:1 t3 "pairs only"
    [ Stats.mean_abs_pct_error ~reference:sims3 (List.map pairs_only pts3) ];
  Texttab.add_row_f ~prec:1 t3 "with tied-k refinement (used)"
    [ Stats.mean_abs_pct_error ~reference:sims3 (List.map with_ref pts3) ];
  Texttab.print t3;
  note "three δ-simultaneous transitions are faster than any pair's V predicts;";
  note "the tied-k characterization recovers the missing speed-up"

(* ------------------------------------------------------------------ *)
(* Parallel / cached STA engine comparison                             *)
(* ------------------------------------------------------------------ *)

let parsta () =
  header "Parallel & memoized STA — sequential vs cached vs level-parallel";
  let lib = Lazy.force library in
  let lanes = Ssd_sta.Par.default_jobs () in
  let par_jobs = max 2 lanes in
  note "host recommends %d domain(s); parallel runs use %d lanes" lanes par_jobs;
  if lanes <= 1 then begin
    note "single-core host: extra domains bring scheduling overhead but no";
    note "extra CPUs, so the parallel column measures pool overhead here; on";
    note "a multicore host each level fans its gates across the cores."
  end;
  let time f =
    (* best of 5: wall-clock floor is the least noisy single-thread metric *)
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let t = Texttab.create
      ~header:
        [ "circuit"; "levels"; "seq (ms)"; "cached (ms)"; "par (ms)";
          "cache speedup"; "par speedup"; "identical" ]
  in
  List.iter
    (fun name ->
      let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name name)) in
      let run ?(obs = Obs.disabled) ~jobs ~cache () =
        Sta.analyze ~jobs ~cache ~obs ~library:lib ~model:DM.proposed nl
      in
      let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
      let wins_equal a b =
        let ok = ref true in
        for i = 0 to Ck.Netlist.size nl - 1 do
          let x = Sta.timing a i and y = Sta.timing b i in
          let w (lt : Sta.line_timing) =
            [ lt.Sta.rise.Types.w_arr; lt.Sta.rise.Types.w_tt;
              lt.Sta.fall.Types.w_arr; lt.Sta.fall.Types.w_tt ]
          in
          List.iter2
            (fun u v ->
              if not (beq (Interval.lo u) (Interval.lo v)
                      && beq (Interval.hi u) (Interval.hi v))
              then ok := false)
            (w x) (w y)
        done;
        !ok
      in
      let base = run ~jobs:1 ~cache:false () in
      let cached = run ~obs:bench_obs ~jobs:1 ~cache:true () in
      let identical =
        wins_equal base cached
        && wins_equal base (run ~jobs:par_jobs ~cache:false ())
        && wins_equal base (run ~jobs:par_jobs ~cache:true ())
      in
      Option.iter
        (fun s -> note "%s %s" name (Ssd_core.Eval_cache.to_string s))
        (Sta.cache_stats cached);
      let t_seq = time (run ~jobs:1 ~cache:false) in
      let t_cache = time (run ~jobs:1 ~cache:true) in
      let t_par = time (run ~jobs:par_jobs ~cache:false) in
      Texttab.add_row t
        [
          name;
          string_of_int (Ck.Netlist.depth nl);
          Printf.sprintf "%.1f" (t_seq *. 1e3);
          Printf.sprintf "%.1f" (t_cache *. 1e3);
          Printf.sprintf "%.1f" (t_par *. 1e3);
          Printf.sprintf "%.2fx" (t_seq /. t_cache);
          Printf.sprintf "%.2fx" (t_seq /. t_par);
          (if identical then "yes" else "NO");
        ])
    [ "c880s"; "c3540s"; "c7552s" ];
  Texttab.print t;
  note "'identical' asserts bit-equal windows on every line across all four";
  note "engine configurations (exact-key memoization + level barriers make";
  note "the evaluation schedule irrelevant to the result).";
  note "cache speedup < 1x is expected on the bundled analytic library: a";
  note "corner search is ~0.1 us of polynomial evaluation, cheaper than a";
  note "thread-safe memo hit (~0.3 us measured here) — the cache pays off";
  note "only when per-cell kernels are expensive (table-driven or";
  note "re-simulated characterizations), which is why Sta.analyze defaults";
  note "to cache:false."

(* ------------------------------------------------------------------ *)
(* Incremental fault simulation: full vs cone vs cone+parallel         *)
(* ------------------------------------------------------------------ *)

let faultsim () =
  header "Fault simulation — full resimulation vs cone-restricted vs cone+parallel";
  let lib = Lazy.force library in
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let sta = Sta.analyze ~library:lib ~model:DM.proposed nl in
  let clock = Sta.max_delay sta in
  (* a generous alignment window and a small delta keep many sites
     excited yet rarely detected — the realistic hard case where the
     simulator spends its time on faulty evaluations of live faults *)
  let sites =
    A.Fault.extract ~count:768 ~delta:60e-12 ~align_window:2500e-12
      ~seed:2025L nl
  in
  let vectors = A.Fault_sim.random_vectors ~seed:11L ~count:96 nl in
  (* the timed parallel row uses jobs = 0 (recommended domain count):
     on a single-core host the pool degrades to the sequential walk
     instead of paying stop-the-world synchronization for cores that do
     not exist; forced multi-lane pools are still asserted bit-identical
     below *)
  let auto_lanes = Ssd_sta.Par.default_jobs () in
  note "circuit: %s; %d fault sites, %d two-pattern vectors, clock %.3f ns"
    (Ck.Netlist.name nl) (List.length sites) (List.length vectors) (ns clock);
  note "cone sizes: %s (circuit has %d lines)"
    (let szs =
       List.map
         (fun (s : A.Fault.site) ->
           Array.length (Ck.Netlist.fanout_cone nl s.A.Fault.victim)
             .Ck.Netlist.cone_nodes)
         sites
     in
     Printf.sprintf "min %d / mean %.0f / max %d"
       (List.fold_left min max_int szs)
       (float_of_int (List.fold_left ( + ) 0 szs)
       /. float_of_int (List.length szs))
       (List.fold_left max 0 szs))
    (Ck.Netlist.size nl);
  (* window_screen off throughout: this experiment isolates the
     resimulation engines (full vs cone vs parallel), and the per-site
     STA-window pre-screen would add the same ~30 us/site constant to
     every configuration, diluting exactly the ratio asserted below.
     The screen's own cost and soundness are covered by the [eco] bench
     and [bench/smoke]'s on/off identity check. *)
  let run ?(obs = Obs.disabled) ~jobs ~engine () =
    A.Fault_sim.simulate_with ~engine ~window_screen:false
      (Ssd_sta.Run_opts.make ~jobs ~obs ())
      ~library:lib ~model:DM.proposed ~clock_period:clock nl sites vectors
  in
  let time f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let base = run ~jobs:1 ~engine:A.Fault_sim.Full () in
  let configs =
    [
      ("cone j1", fun () -> run ~jobs:1 ~engine:A.Fault_sim.Cone ());
      ("cone j4", fun () -> run ~jobs:4 ~engine:A.Fault_sim.Cone ());
      ( "cone auto",
        fun () -> run ~obs:bench_obs ~jobs:0 ~engine:A.Fault_sim.Cone () );
      ("full j4", fun () -> run ~jobs:4 ~engine:A.Fault_sim.Full ());
    ]
  in
  List.iter
    (fun (tag, f) ->
      let r = f () in
      if
        r.A.Fault_sim.detected <> base.A.Fault_sim.detected
        || r.A.Fault_sim.undetected <> base.A.Fault_sim.undetected
        || r.A.Fault_sim.coverage <> base.A.Fault_sim.coverage
      then begin
        Printf.eprintf
          "faultsim: %s differs from the sequential full baseline\n" tag;
        exit 1
      end)
    configs;
  note "detection sets bit-identical across {full, cone} x {jobs 1, 4, auto}";
  (let cv n = Option.value ~default:0 (List.assoc_opt n (Obs.counters bench_obs)) in
   note "screening economics (instrumented cone-auto pass): %d pairs \
         resimulated, %d screened out, %d dropped, %d fault-free sims"
     (cv "faultsim.resim") (cv "faultsim.screened_out")
     (cv "faultsim.dropped") (cv "faultsim.ff_sims"));
  let t_full = time (run ~jobs:1 ~engine:A.Fault_sim.Full) in
  let t_cone = time (run ~jobs:1 ~engine:A.Fault_sim.Cone) in
  let t_par = time (run ~jobs:0 ~engine:A.Fault_sim.Cone) in
  let t = Texttab.create
      ~header:[ "engine"; "wall (ms)"; "speedup vs full" ]
  in
  let row name w =
    Texttab.add_row t
      [ name; Printf.sprintf "%.1f" (w *. 1e3);
        Printf.sprintf "%.2fx" (t_full /. w) ]
  in
  row "full resimulation (j1)" t_full;
  row "cone-restricted (j1)" t_cone;
  row (Printf.sprintf "cone + parallel (auto: %d lane%s)" auto_lanes
         (if auto_lanes = 1 then "" else "s"))
    t_par;
  Texttab.print t;
  note "detected %d / %d sites (%.1f%% coverage), %d undetected"
    (List.length base.A.Fault_sim.detected)
    (List.length sites) base.A.Fault_sim.coverage
    (List.length base.A.Fault_sim.undetected);
  note "cone restriction pays on every excited pair (deep victims have";
  note "small fanout cones); the domain pool additionally spreads the";
  note "per-vector fault-free simulations and the surviving faulty";
  note "evaluations across lanes on multicore hosts (jobs = 0 resolves";
  note "to the recommended domain count, so a 1-core host keeps the";
  note "sequential schedule instead of paying stop-the-world syncs).";
  if t_full /. t_par < 3. then begin
    Printf.eprintf
      "faultsim: cone+parallel speedup %.2fx below the 3x target\n"
      (t_full /. t_par);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Incremental ECO re-timing: engine edit vs full re-analysis          *)
(* ------------------------------------------------------------------ *)

let eco () =
  header "ECO re-timing — incremental engine edit vs full Sta.analyze";
  let module E = Ssd_sta.Engine in
  let lib = Lazy.force library in
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let n = Ck.Netlist.size nl in
  (* deterministic victim lines: every k-th gate output, spread across
     the whole depth range so cone sizes vary from PO-adjacent (tiny)
     to PI-adjacent (large) *)
  let gates =
    List.filter
      (fun i -> match Ck.Netlist.node nl i with
        | Ck.Netlist.Gate _ -> true | Ck.Netlist.Pi -> false)
      (List.init n Fun.id)
  in
  let victims =
    let g = Array.of_list gates in
    let want = 48 in
    let stride = max 1 (Array.length g / want) in
    List.filteri (fun k _ -> k mod stride = 0) (Array.to_list g)
    |> List.filteri (fun k _ -> k < want)
  in
  let delta = 75e-12 in
  note "circuit: %s (%d lines, depth %d); %d victim lines, +%.0f ps each"
    (Ck.Netlist.name nl) n (Ck.Netlist.depth nl) (List.length victims)
    (delta *. 1e12);
  let opts = Ssd_sta.Run_opts.make ~obs:bench_obs () in
  let eng = E.create ~opts ~library:lib ~model:DM.proposed nl in
  let base = Sta.analyze ~library:lib ~model:DM.proposed nl in
  let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let wins_equal get_a get_b =
    let ok = ref true in
    for i = 0 to n - 1 do
      let w (lt : Sta.line_timing) =
        [ lt.Sta.rise.Types.w_arr; lt.Sta.rise.Types.w_tt;
          lt.Sta.fall.Types.w_arr; lt.Sta.fall.Types.w_tt ]
      in
      List.iter2
        (fun u v ->
          if not (beq (Interval.lo u) (Interval.lo v)
                  && beq (Interval.hi u) (Interval.hi v))
          then ok := false)
        (w (get_a i)) (w (get_b i))
    done;
    !ok
  in
  (* correctness: every edit bit-identical to a fresh full analysis of
     the edited circuit, and every revert bit-identical to the base *)
  List.iter
    (fun v ->
      let cp = E.checkpoint eng in
      E.apply eng (E.Set_extra_delay { line = v; delta });
      let reference = E.reanalyze eng in
      if not (wins_equal (E.timing eng) (Sta.timing reference)) then begin
        Printf.eprintf "eco: edit on line %d differs from full re-analysis\n" v;
        exit 1
      end;
      E.revert eng cp;
      if not (wins_equal (E.timing eng) (Sta.timing base)) then begin
        Printf.eprintf "eco: revert of line %d does not restore the base\n" v;
        exit 1
      end)
    victims;
  note "all %d edits bit-identical to full re-analysis; all reverts \
        restore the base windows exactly" (List.length victims);
  let s = E.stats eng in
  note "engine work: %d nodes recomputed, %d skipped, %d cutoffs (%.0f%% \
        of recomputed)" s.E.nodes_recomputed s.E.nodes_skipped s.E.cutoffs
    (100. *. E.cutoff_ratio s);
  (* timing: mean per-edit cycle (apply + revert; the revert restores
     journaled windows without recomputation, so the cycle pays one cone
     propagation) vs one full Sta.analyze.  The asserted workload is the
     engine's production one — single-line extra delays at extracted
     crosstalk fault sites, exactly what Fault_sim's window screen
     replays per fault; those victims sit deep in the circuit, where
     cone restriction pays most.  The uniform sweep over every gate
     output is reported alongside: it includes the near-PI lines whose
     cones span most of the circuit, so its mean is pinned near the
     eval-count ceiling (total gates / mean cone size) rather than the
     10x contract. *)
  let time f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let site_delta = 60e-12 in
  let site_victims =
    List.sort_uniq compare
      (List.map
         (fun (s : A.Fault.site) -> s.A.Fault.victim)
         (A.Fault.extract ~count:768 ~delta:site_delta
            ~align_window:2500e-12 ~seed:2025L nl))
  in
  let t_full = time (fun () -> Sta.analyze ~library:lib ~model:DM.proposed nl) in
  (* the timed engine runs with telemetry disabled, like the timed
     Sta.analyze baseline — the instrumented session above keeps the
     work counters *)
  let quiet = E.create ~library:lib ~model:DM.proposed nl in
  let cycle_mean vs d =
    let nv = List.length vs in
    let t =
      time (fun () ->
          List.iter
            (fun v ->
              let cp = E.checkpoint quiet in
              E.apply quiet (E.Set_extra_delay { line = v; delta = d });
              E.revert quiet cp)
            vs)
    in
    t /. float_of_int nv
  in
  let t_site = cycle_mean site_victims site_delta in
  let t_uniform = cycle_mean victims delta in
  E.close quiet;
  let t = Texttab.create ~header:[ "operation"; "wall (us)"; "speedup" ] in
  Texttab.add_row t
    [ "full Sta.analyze"; Printf.sprintf "%.1f" (t_full *. 1e6); "1.00x" ];
  Texttab.add_row t
    [ Printf.sprintf "edit at fault site (mean of %d)"
        (List.length site_victims);
      Printf.sprintf "%.1f" (t_site *. 1e6);
      Printf.sprintf "%.2fx" (t_full /. t_site) ];
  Texttab.add_row t
    [ Printf.sprintf "edit anywhere (mean of %d)" (List.length victims);
      Printf.sprintf "%.1f" (t_uniform *. 1e6);
      Printf.sprintf "%.2fx" (t_full /. t_uniform) ];
  Texttab.print t;
  note "an edit re-times only the victim's fanout cone and stops early";
  note "behind bit-identical windows; a revert replays the undo journal";
  note "without touching the kernel at all.";
  E.close eng;
  if t_full /. t_site < 10. then begin
    Printf.eprintf "eco: fault-site edit speedup %.2fx below the 10x target\n"
      (t_full /. t_site);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Corner-batched sweep: K planes in one pass vs K scalar analyses     *)
(* ------------------------------------------------------------------ *)

(* metrics exported into the --json report (per-K speedups, MC rate) *)
let corner_metrics : (string * float) list ref = ref []

let corners () =
  header "Corners — batched K-plane sweep vs K independent scalar analyses";
  let module CS = Ssd_sta.Corner_sta in
  let module Corners = C.Corners in
  let lib = Lazy.force library in
  let gates =
    (* SSD_CORNERS downsizes the run for smoke checks / CI, like
       SSD_SCALE_GATES does for the scale experiment *)
    match Sys.getenv_opt "SSD_CORNERS" with
    | Some s -> (try max 500 (int_of_string s) with Failure _ -> 40_000)
    | None -> 40_000
  in
  let layers = max 16 (gates / 400) in
  let nl =
    Ck.Decompose.to_primitive
      (Ck.Generator.generate
         {
           Ck.Generator.default_params with
           Ck.Generator.g_name = Printf.sprintf "corner%dk" (gates / 1000);
           n_inputs = 128;
           n_outputs = 64;
           n_gates = gates;
           locality = 512;
           seed = 2025L;
           shape = Ck.Generator.Layered { layers };
         })
  in
  note "%s" (Ck.Netlist.stats nl);
  let time f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let t = Texttab.create
      ~header:
        [ "K"; "K scalar (ms)"; "batched (ms)"; "speedup"; "target";
          "identical" ]
  in
  corner_metrics := [ ("gates", float_of_int (Ck.Netlist.gate_count nl)) ];
  List.iter
    (fun k ->
      let table = Corners.build ~specs:(Corners.default_specs k) lib in
      (* bit-identity first: every plane of the batched sweep must equal
         an independent single-corner analysis over that corner's
         derated library, bit for bit on every node *)
      let batched = CS.analyze ~table nl in
      let run_scalar c =
        Sta.analyze_with (Ssd_sta.Run_opts.make ())
          ~library:(Corners.library table c) ~model:DM.proposed nl
      in
      let identical = ref true in
      for c = 0 to k - 1 do
        if not (CS.plane_matches batched ~corner:c (run_scalar c)) then
          identical := false
      done;
      if not !identical then begin
        Printf.eprintf
          "corners: K=%d batched plane differs from its scalar analysis\n" k;
        exit 1
      end;
      (* wall clock: all K corners as one batched sweep vs K full scalar
         analyses, both sequential *)
      let t_scalar =
        time (fun () -> for c = 0 to k - 1 do ignore (run_scalar c) done)
      in
      let t_batched = time (fun () -> CS.analyze ~table nl) in
      let speedup = t_scalar /. t_batched in
      (* the K/2 law assumes the corner axis spreads across cores on top
         of the sequential batching gain; a single-core host caps the
         wall-clock ratio at the sequential gain alone (one slot lookup
         and one coefficient stream per node, no per-corner dispatch or
         allocation — measured 4-5x), so the floor is clamped to 3x per
         available core.  K=4 demands the full 2x law everywhere. *)
      let cores = Domain.recommended_domain_count () in
      let target =
        Float.min (float_of_int k /. 2.) (3. *. float_of_int cores)
      in
      Texttab.add_row t
        [
          string_of_int k;
          Printf.sprintf "%.1f" (t_scalar *. 1e3);
          Printf.sprintf "%.1f" (t_batched *. 1e3);
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf ">= %.1fx" target;
          "yes";
        ];
      corner_metrics :=
        !corner_metrics
        @ [ (Printf.sprintf "speedup_k%d" k, speedup) ];
      if speedup < target then begin
        Printf.eprintf
          "corners: K=%d batched speedup %.2fx below the %.1fx target\n" k
          speedup target;
        exit 1
      end)
    [ 4; 16 ];
  Texttab.print t;
  note "the batched sweep walks the netlist once, resolves each gate's";
  note "table slot once, and evaluates all K corners of a node from one";
  note "contiguous coefficient block with no per-corner allocation.";
  (* Monte-Carlo: >= 64 sampled corners through the chunked batched
     kernel (the mc experiment benchmarks it against the scalar oracle) *)
  let samples = 64 in
  let t0 = Unix.gettimeofday () in
  let res =
    CS.monte_carlo
      ~opts:(Ssd_sta.Run_opts.make ())
      ~samples ~seed:4242L ~library:lib nl
  in
  let t_mc = Unix.gettimeofday () -. t0 in
  let rate = float_of_int samples /. t_mc in
  note "Monte-Carlo: %d corner samples in %.2f s (%.1f samples/s, swept \
        16 refitted corner planes per batched-kernel pass)"
    samples t_mc rate;
  let qs = [ 0.05; 0.5; 0.95 ] in
  let mt = Texttab.create
      ~header:[ "quantity"; "q5 (ns)"; "median (ns)"; "q95 (ns)" ]
  in
  let row name quants =
    Texttab.add_row_f ~prec:3 mt name
      (List.map (fun (_, v) -> ns v) quants)
  in
  row "circuit max delay" (CS.mc_max_quantiles res qs);
  let per_po = CS.mc_po_quantiles res qs in
  Array.iteri
    (fun pi po ->
      if pi < 4 then
        row
          (Printf.sprintf "PO %s" (Ck.Netlist.signal_name nl po))
          per_po.(pi))
    res.CS.mc_pos;
  Texttab.print mt;
  note "(first 4 of %d POs shown; every PO's distribution is in --json \
        runs' mc_samples_per_sec context)" (Array.length res.CS.mc_pos);
  corner_metrics :=
    !corner_metrics
    @ [
        ("mc_samples", float_of_int samples);
        ("mc_samples_per_sec", rate);
        ("mc_max_median", snd (List.nth (CS.mc_max_quantiles res qs) 1));
      ]

(* ------------------------------------------------------------------ *)
(* Monte-Carlo: chunked batched-kernel sampling vs the scalar path     *)
(* ------------------------------------------------------------------ *)

(* metrics exported into the --json report (speedup, boxed words/sample) *)
let mc_metrics : (string * float) list ref = ref []

let mc () =
  header "Monte-Carlo — chunked batched-kernel sampling vs the scalar engine";
  let module CS = Ssd_sta.Corner_sta in
  let lib = Lazy.force library in
  let gates =
    (* SSD_MC downsizes the run for smoke checks / CI, like SSD_CORNERS
       does for the corners experiment *)
    match Sys.getenv_opt "SSD_MC" with
    | Some s -> (try max 300 (int_of_string s) with Failure _ -> 4_000)
    | None -> 4_000
  in
  let layers = max 12 (gates / 400) in
  let nl =
    Ck.Decompose.to_primitive
      (Ck.Generator.generate
         {
           Ck.Generator.default_params with
           Ck.Generator.g_name = Printf.sprintf "mc%dk" (gates / 1000);
           n_inputs = 96;
           n_outputs = 48;
           n_gates = gates;
           locality = 256;
           seed = 777L;
           shape = Ck.Generator.Layered { layers };
         })
  in
  note "%s" (Ck.Netlist.stats nl);
  let samples = 256 and seed = 4242L and batch = 16 in
  (* batched path first, single core, with an allocation probe: the
     sweep itself is allocation-free, so the boxed words are the chunk
     bookkeeping (spec slices, refits) plus the per-sample extraction *)
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let batched =
    CS.monte_carlo
      ~opts:(Ssd_sta.Run_opts.make ~mc_batch:batch ())
      ~samples ~seed ~library:lib nl
  in
  let t_batched = Unix.gettimeofday () -. t0 in
  let words_per_sample =
    (Gc.minor_words () -. w0) /. float_of_int samples
  in
  let t1 = Unix.gettimeofday () in
  let scalar =
    CS.monte_carlo_scalar
      ~opts:(Ssd_sta.Run_opts.make ~cache:true ())
      ~samples ~seed ~library:lib nl
  in
  let t_scalar = Unix.gettimeofday () -. t1 in
  (* bit-identity: every per-sample PO delay and circuit max, then the
     quantiles derived from them, must match the scalar oracle exactly *)
  let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  Array.iteri
    (fun pi d ->
      Array.iteri
        (fun s v ->
          if not (beq v scalar.CS.mc_delays.(pi).(s)) then begin
            Printf.eprintf
              "mc: PO %d sample %d: batched differs from the scalar path\n"
              pi s;
            exit 1
          end)
        d)
    batched.CS.mc_delays;
  Array.iteri
    (fun s v ->
      if not (beq v scalar.CS.mc_max.(s)) then begin
        Printf.eprintf
          "mc: sample %d circuit max differs from the scalar path\n" s;
        exit 1
      end)
    batched.CS.mc_max;
  let qs = [ 0.05; 0.5; 0.95 ] in
  List.iter2
    (fun (q, a) (_, b) ->
      if not (beq a b) then begin
        Printf.eprintf "mc: q%.0f quantile differs between paths\n" (q *. 100.);
        exit 1
      end)
    (CS.mc_max_quantiles batched qs)
    (CS.mc_max_quantiles scalar qs);
  let speedup = t_scalar /. t_batched in
  let target = 3.0 in
  let t = Texttab.create ~header:[ "metric"; "value" ] in
  Texttab.add_row t [ "samples"; string_of_int samples ];
  Texttab.add_row t [ "batch K"; string_of_int batch ];
  Texttab.add_row t
    [ "scalar engine path (s)"; Printf.sprintf "%.2f" t_scalar ];
  Texttab.add_row t
    [ "batched kernel path (s)"; Printf.sprintf "%.2f" t_batched ];
  Texttab.add_row t
    [ "speedup (one core)"; Printf.sprintf "%.2fx (>= %.1fx)" speedup target ];
  Texttab.add_row t
    [ "boxed words/sample (batched)"; Printf.sprintf "%.0f" words_per_sample ];
  Texttab.print t;
  let mt =
    Texttab.create ~header:[ "quantity"; "q5 (ns)"; "median (ns)"; "q95 (ns)" ]
  in
  Texttab.add_row_f ~prec:3 mt "circuit max delay"
    (List.map (fun (_, v) -> ns v) (CS.mc_max_quantiles batched qs));
  Texttab.print mt;
  note "every per-sample PO delay, circuit max and quantile is asserted";
  note "bit-identical between the chunked batched-kernel sweep and the";
  note "scalar resident-engine oracle before any speedup is reported.";
  mc_metrics :=
    [
      ("gates", float_of_int (Ck.Netlist.gate_count nl));
      ("samples", float_of_int samples);
      ("batch", float_of_int batch);
      ("scalar_s", t_scalar);
      ("batched_s", t_batched);
      ("speedup", speedup);
      ("boxed_words_per_sample", words_per_sample);
    ];
  if speedup < target then begin
    Printf.eprintf "mc: batched speedup %.2fx below the %.1fx target\n" speedup
      target;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Serve: request throughput of the timing daemon, in-process          *)
(* ------------------------------------------------------------------ *)

(* metrics exported into the --json report (request rate) *)
let serve_metrics : (string * float) list ref = ref []

let serve () =
  header "Serve — session-daemon request throughput (in-process dispatch)";
  let module Server = Ssd_serve.Server in
  let module P = Ssd_serve.Protocol in
  let lib = Lazy.force library in
  let total =
    (* SSD_SERVE_REQS downsizes the run for smoke checks / CI *)
    match Sys.getenv_opt "SSD_SERVE_REQS" with
    | Some s -> (try max 1_000 (int_of_string s) with Failure _ -> 20_000)
    | None -> 20_000
  in
  (* default config: one dispatch lane — the acceptance number is a
     single-core figure; --jobs only buys cross-session parallelism *)
  let sv = Server.create (Server.default_config ~library:lib) in
  Fun.protect ~finally:(fun () -> Server.close sv) @@ fun () ->
  let check tag resp =
    match Json.parse resp with
    | Ok j when P.response_ok j -> ()
    | _ ->
      Printf.eprintf "serve: %s request failed: %s\n" tag resp;
      exit 1
  in
  check "open"
    (Server.dispatch sv
       {|{"v":1,"id":0,"op":"open","session":"s","circuit":"c880s"}|});
  (* the measured workload is what the reader hands the dispatcher on
     stdio traffic: drained batches of cached po_window queries against
     a resident engine — each request costs one parse, one window read
     and one render, no re-timing *)
  let frame i =
    Printf.sprintf
      {|{"v":1,"id":%d,"op":"query","session":"s","what":"po_window"}|} i
  in
  let batch = 256 in
  let batches = (total + batch - 1) / batch in
  let reqs =
    Array.init batches (fun b ->
        List.init
          (min batch (total - (b * batch)))
          (fun k -> frame ((b * batch) + k)))
  in
  List.iter (check "warm-up query") (Server.dispatch_batch sv reqs.(0));
  let t0 = Unix.gettimeofday () in
  let served = ref 0 in
  let replies = ref [] in
  Array.iter
    (fun rs ->
      let out = Server.dispatch_batch sv rs in
      served := !served + List.length out;
      replies := out :: !replies)
    reqs;
  let wall = Unix.gettimeofday () -. t0 in
  List.iter (List.iter (check "query")) !replies;
  let rate = float_of_int !served /. wall in
  (* informational second workload: a full edit/revert re-timing cycle
     per request pair — the expensive path, for scale context *)
  let po =
    let nl =
      Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s"))
    in
    Ck.Netlist.signal_name nl (List.hd (Ck.Netlist.outputs nl))
  in
  let edit_cycles = 200 in
  check "checkpoint"
    (Server.dispatch sv
       {|{"v":1,"id":0,"op":"checkpoint","session":"s"}|});
  let t1 = Unix.gettimeofday () in
  for i = 0 to edit_cycles - 1 do
    List.iter
      (check "edit cycle")
      (Server.dispatch_batch sv
         [
           Printf.sprintf
             {|{"v":1,"id":%d,"op":"edit","session":"s","edits":[{"op":"extra","signal":"%s","delta":5e-12}]}|}
             (2 * i) po;
           Printf.sprintf
             {|{"v":1,"id":%d,"op":"revert","checkpoint":1,"session":"s"}|}
             ((2 * i) + 1);
         ])
  done;
  let edit_rate =
    float_of_int (2 * edit_cycles) /. (Unix.gettimeofday () -. t1)
  in
  let target = 10_000. in
  let t = Texttab.create ~header:[ "metric"; "value" ] in
  Texttab.add_row t [ "requests"; string_of_int !served ];
  Texttab.add_row t [ "batch size"; string_of_int batch ];
  Texttab.add_row t [ "wall (s)"; Printf.sprintf "%.3f" wall ];
  Texttab.add_row t
    [ "cached-query req/s (one core)";
      Printf.sprintf "%.0f (>= %.0f)" rate target ];
  Texttab.add_row t
    [ "edit+revert req/s (re-timing)"; Printf.sprintf "%.0f" edit_rate ];
  Texttab.print t;
  note "every reply of the timed run is checked ok after the clock stops;";
  note "the daemon transports (stdio/TCP) add only kernel I/O on top of";
  note "this dispatch path — tools/verify.sh diffs a live stdio session";
  note "against a golden transcript.";
  serve_metrics :=
    [
      ("requests", float_of_int !served);
      ("batch", float_of_int batch);
      ("req_per_sec", rate);
      ("edit_req_per_sec", edit_rate);
    ];
  if rate < target then begin
    Printf.eprintf "serve: %.0f requests/sec below the %.0f target\n" rate
      target;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel performance suite                                          *)
(* ------------------------------------------------------------------ *)

let perf () =
  header "Performance (Bechamel, monotonic clock)";
  let open Bechamel in
  let lib = Lazy.force library in
  let cell = nand2 () in
  let c880 = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let a = tr 0 0. 0.5e-9 and b = tr 1 0.1e-9 0.7e-9 in
  let vec =
    let rng = Rng.create 9L in
    Array.init (List.length (Ck.Netlist.inputs c880)) (fun _ ->
        (Rng.bool rng, Rng.bool rng))
  in
  let model_tests =
    List.map
      (fun m ->
        Test.make ~name:(Printf.sprintf "pair_delay/%s" m.DM.name)
          (Staged.stage (fun () ->
               ignore (m.DM.pair_delay cell ~fanout:1 ~a ~b))))
      DM.all
  in
  let tests =
    Test.make_grouped ~name:"ssd"
      (model_tests
      @ [
          Test.make ~name:"sta/c880s-proposed"
            (Staged.stage (fun () ->
                 ignore (Sta.analyze ~library:lib ~model:DM.proposed c880)));
          Test.make ~name:"sta/c880s-pin-to-pin"
            (Staged.stage (fun () ->
                 ignore (Sta.analyze ~library:lib ~model:DM.pin_to_pin c880)));
          Test.make ~name:"tsim/c880s"
            (Staged.stage (fun () ->
                 ignore (TS.simulate ~library:lib ~model:DM.proposed c880 vec)));
          Test.make ~name:"spice/nand2-transient"
            (Staged.stage (fun () ->
                 ignore (sim_pair ~t_a:0.5e-9 ~t_b:0.5e-9 ~skew:0. ())));
        ])
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let t = Texttab.create ~header:[ "benchmark"; "time/run" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let pretty =
        if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
        else Printf.sprintf "%.0f ns" est
      in
      Texttab.add_row t [ name; pretty ])
    (List.sort compare rows);
  Texttab.print t

(* ------------------------------------------------------------------ *)
(* Scale: SoA substrate at 100k+ gates                                 *)
(* ------------------------------------------------------------------ *)

(* metrics exported into the --json report (gates/sec, bytes/gate) *)
let scale_metrics : (string * float) list ref = ref []

let scale () =
  header "Scale — structure-of-arrays netlist/STA substrate at 100k+ gates";
  let lib = Lazy.force library in
  let gates =
    (* SSD_SCALE_GATES downsizes the run for smoke checks / CI *)
    match Sys.getenv_opt "SSD_SCALE_GATES" with
    | Some s -> (try max 1_000 (int_of_string s) with Failure _ -> 100_000)
    | None -> 100_000
  in
  let layers = max 32 (gates / 400) in
  note "generating a layered %d-gate circuit (%d levels of gates)" gates layers;
  let t0 = Unix.gettimeofday () in
  let nl =
    Ck.Decompose.to_primitive
      (Ck.Generator.generate
         {
           Ck.Generator.default_params with
           Ck.Generator.g_name = Printf.sprintf "scale%dk" (gates / 1000);
           n_inputs = 256;
           n_outputs = 128;
           n_gates = gates;
           locality = 1024;
           seed = 42L;
           shape = Ck.Generator.Layered { layers };
         })
  in
  let t_gen = Unix.gettimeofday () -. t0 in
  let n = Ck.Netlist.size nl in
  note "%s built in %.2f s" (Ck.Netlist.stats nl) t_gen;
  let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let lt_eq (x : Sta.line_timing) (y : Sta.line_timing) =
    let w (lt : Sta.line_timing) =
      [ lt.Sta.rise.Types.w_arr; lt.Sta.rise.Types.w_tt;
        lt.Sta.fall.Types.w_arr; lt.Sta.fall.Types.w_tt ]
    in
    List.for_all2
      (fun u v ->
        beq (Interval.lo u) (Interval.lo v)
        && beq (Interval.hi u) (Interval.hi v))
      (w x) (w y)
  in
  let identity_check name circuit =
    (* the packed path must reproduce the seed record-array oracle bit
       for bit, sequentially and under every lane count *)
    let oracle = Sta.analyze_ref ~library:lib ~model:DM.proposed circuit in
    List.iter
      (fun jobs ->
        let t = Sta.analyze ~jobs ~library:lib ~model:DM.proposed circuit in
        for i = 0 to Ck.Netlist.size circuit - 1 do
          if not (lt_eq oracle.(i) (Sta.timing t i)) then
            failwith
              (Printf.sprintf
                 "scale: %s jobs=%d: node %d differs from the seed oracle"
                 name jobs i)
        done)
      [ 1; 4; 8 ];
    note "%s: packed path bit-identical to the oracle at jobs 1/4/8" name
  in
  identity_check "c880s"
    (Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")));
  identity_check (Ck.Netlist.name nl) nl;
  (* throughput: best-of-3 sequential full analysis *)
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    last := Some (Sta.analyze ~library:lib ~model:DM.proposed nl);
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  let sta = Option.get !last in
  let gcount = Ck.Netlist.gate_count nl in
  let gates_per_sec = float_of_int gcount /. !best in
  (* steady-state footprint: packed structural arrays + packed windows *)
  let struct_bytes = Ck.Netlist.mem_bytes nl in
  let win_bytes = Ssd_sta.Windows.bytes (Sta.windows sta) in
  let bytes_per_gate =
    float_of_int (struct_bytes + win_bytes) /. float_of_int n
  in
  (* cone cache: membership is one bit per node, not one byte *)
  let pi0 = List.hd (Ck.Netlist.inputs nl) in
  let cone = Ck.Netlist.fanout_cone nl pi0 in
  let cone_bytes = Ck.Netlist.cone_cache_bytes nl in
  let budget =
    (n / 8) + (8 * Array.length cone.Ck.Netlist.cone_nodes) + 128
  in
  if cone_bytes > budget then
    failwith
      (Printf.sprintf "scale: cached cone costs %d bytes, budget %d"
         cone_bytes budget);
  let t = Texttab.create ~header:[ "metric"; "value" ] in
  Texttab.add_row t [ "nodes"; string_of_int n ];
  Texttab.add_row t [ "gates"; string_of_int gcount ];
  Texttab.add_row t [ "levels"; string_of_int (Ck.Netlist.depth nl) ];
  Texttab.add_row t [ "analyze (s, best of 3)"; Printf.sprintf "%.3f" !best ];
  Texttab.add_row t [ "gates/sec"; Printf.sprintf "%.0f" gates_per_sec ];
  Texttab.add_row t
    [ "structural bytes/gate";
      Printf.sprintf "%.1f" (float_of_int struct_bytes /. float_of_int n) ];
  Texttab.add_row t
    [ "window bytes/gate";
      Printf.sprintf "%.1f" (float_of_int win_bytes /. float_of_int n) ];
  Texttab.add_row t [ "bytes/gate (total)"; Printf.sprintf "%.1f" bytes_per_gate ];
  Texttab.add_row t
    [ "cone cache (1 PI cone)"; Printf.sprintf "%d B" cone_bytes ];
  Texttab.print t;
  scale_metrics :=
    [ ("gates", float_of_int gcount);
      ("gates_per_sec", gates_per_sec);
      ("bytes_per_gate", bytes_per_gate) ];
  note "bit-identity, throughput and footprint are asserted, not just";
  note "reported: a mismatch or a cone-cache regression fails the run."

let experiments =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig5", fig5);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("accuracy", accuracy);
    ("table2", table2);
    ("itrshrink", itrshrink);
    ("ablation", ablation);
    ("atpg", atpg);
    ("parsta", parsta);
    ("faultsim", faultsim);
    ("eco", eco);
    ("corners", corners);
    ("mc", mc);
    ("scale", scale);
    ("serve", serve);
    ("perf", perf);
  ]

(* machine-readable per-experiment timings: --json FILE writes
   { "experiments": [ {"name": ..., "wall_s": ...}, ... ], ... } so the
   perf trajectory of successive PRs can be compared mechanically
   (conventionally BENCH_results.json).  The aggregated telemetry
   counters, timers (with self time) and histogram shapes of the
   instrumented identity-check passes ride along, and the file is
   written atomically (sibling temp + rename) so a concurrent reader
   never sees a truncated report. *)
let report_json timings total =
  let sn = Obs.snapshot bench_obs in
  Json.Obj
    [
      ( "experiments",
        Json.List
          (List.map
             (fun (name, wall) ->
               Json.Obj
                 [ ("name", Json.Str name); ("wall_s", Json.Num wall) ])
             timings) );
      ("total_wall_s", Json.Num total);
      ( "scale",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) !scale_metrics) );
      ( "corners",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) !corner_metrics) );
      ( "mc",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) !mc_metrics) );
      ( "serve",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) !serve_metrics) );
      ( "counters",
        Json.Obj
          (List.map
             (fun (n, v) -> (n, Json.Num (float_of_int v)))
             sn.Obs.sn_counters) );
      ( "timers",
        Json.Obj
          (List.map
             (fun (n, st) ->
               ( n,
                 Json.Obj
                   [
                     ("calls", Json.Num (float_of_int st.Obs.st_calls));
                     ("total_s", Json.Num st.Obs.st_total_s);
                     ("self_s", Json.Num st.Obs.st_self_s);
                   ] ))
             sn.Obs.sn_timers) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, hs) ->
               ( n,
                 Json.Obj
                   [
                     ("count", Json.Num (float_of_int hs.Obs.hs_count));
                     ("sum", Json.Num hs.Obs.hs_sum);
                     ( "rows",
                       Json.List
                         (List.map
                            (fun (lo, hi, c) ->
                              Json.List
                                [
                                  Json.Num lo;
                                  Json.Num hi;
                                  Json.Num (float_of_int c);
                                ])
                            hs.Obs.hs_rows) );
                   ] ))
             sn.Obs.sn_histograms) );
    ]

(* ---- bench-regression harness: --baseline FILE [--gate PCT] ----

   A report is flattened to dotted-path numeric leaves; metrics present
   in BOTH reports are compared.  Only the performance groups
   (experiments / total_wall_s / scale / corners / mc) are gated, and
   only when the leaf name classifies a direction (per_sec / speedup =
   higher is better; seconds / wall / bytes / words = lower is better);
   counters, timers and histogram shapes are informational — they shift
   legitimately whenever instrumentation is added.  Sub-10ms timings
   are never gated (pure scheduler noise at that scale). *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with suffix s =
  let ns = String.length s and nx = String.length suffix in
  ns >= nx && String.sub s (ns - nx) nx = suffix

let flatten_report json =
  let out = ref [] in
  let rec go prefix j =
    let sub k = if prefix = "" then k else prefix ^ "." ^ k in
    match j with
    | Json.Num v -> out := (prefix, v) :: !out
    | Json.Obj kvs -> List.iter (fun (k, v) -> go (sub k) v) kvs
    | Json.List xs ->
      List.iteri
        (fun i x ->
          match x with
          | Json.Obj kvs when List.mem_assoc "name" kvs -> (
            match List.assoc "name" kvs with
            | Json.Str n ->
              List.iter
                (fun (k, v) -> if k <> "name" then go (sub (n ^ "." ^ k)) v)
                kvs
            | _ -> go (sub (string_of_int i)) x)
          | _ -> go (sub (string_of_int i)) x)
        xs
    | _ -> ()
  in
  go "" json;
  List.rev !out

type direction = Higher_better | Lower_better | Info_only

let metric_direction path =
  let gated =
    List.exists
      (fun g -> starts_with g path)
      [ "experiments."; "total_wall_s"; "scale."; "corners."; "mc.";
        "serve." ]
  in
  if not gated then Info_only
  else if contains path "per_sec" || contains path "speedup" then
    Higher_better
  else if
    ends_with "_s" path || contains path "wall" || contains path "bytes"
    || contains path "words"
  then Lower_better
  else Info_only

let compare_reports ~gate ~baseline current =
  let b = flatten_report baseline and c = flatten_report current in
  let tb =
    Texttab.create
      ~header:[ "metric"; "baseline"; "current"; "delta"; "status" ]
  in
  let regressions = ref 0 in
  let compared = ref 0 in
  let fmt v = Printf.sprintf "%.6g" v in
  List.iter
    (fun (path, bv) ->
      match List.assoc_opt path c with
      | None -> ()
      | Some cv ->
        incr compared;
        let delta_pct =
          if bv = 0. then if cv = 0. then 0. else Float.infinity
          else (cv -. bv) /. Float.abs bv *. 100.
        in
        let dir = metric_direction path in
        let timing_noise =
          (* anything that measures seconds below 10 ms is noise *)
          (ends_with "_s" path || contains path "wall")
          && Float.abs bv < 1e-2 && Float.abs cv < 1e-2
        in
        let status =
          match dir with
          | Info_only -> "info"
          | _ when timing_noise -> "ok (noise)"
          | Higher_better when delta_pct < -.gate ->
            incr regressions;
            "REGRESSION"
          | Lower_better when delta_pct > gate ->
            incr regressions;
            "REGRESSION"
          | _ -> "ok"
        in
        Texttab.add_row tb
          [ path; fmt bv; fmt cv;
            (if Float.is_finite delta_pct then
               Printf.sprintf "%+.1f%%" delta_pct
             else "new");
            status ])
    b;
  Texttab.print tb;
  note "compared %d metric(s) against baseline (gate %.0f%%), %d regression(s)"
    !compared gate !regressions;
  !regressions

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let rec parse_opts json baseline gate acc = function
    | [] -> (json, baseline, gate, List.rev acc)
    | "--json" :: path :: rest -> parse_opts (Some path) baseline gate acc rest
    | "--baseline" :: path :: rest ->
      parse_opts json (Some path) gate acc rest
    | "--gate" :: pct :: rest -> (
      match float_of_string_opt pct with
      | Some g when g >= 0. -> parse_opts json baseline g acc rest
      | _ ->
        prerr_endline "bench: --gate requires a non-negative percentage";
        exit 2)
    | [ ("--json" | "--baseline" | "--gate") ] ->
      prerr_endline "bench: --json/--baseline/--gate require an argument";
      exit 2
    | a :: rest -> parse_opts json baseline gate (a :: acc) rest
  in
  let json_path, baseline_path, gate, args =
    parse_opts None None 50. [] (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match args with
    | [] -> List.map fst experiments
    | args when List.mem "all" args -> List.map fst experiments
    | args -> args
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf "SSD reproduction harness — %d experiment(s): %s\n%!"
    (List.length requested)
    (String.concat ", " requested);
  let timings =
    List.filter_map
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f ->
          let e0 = Unix.gettimeofday () in
          f ();
          Some (name, Unix.gettimeofday () -. e0)
        | None ->
          Printf.printf "unknown experiment %S (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          None)
      requested
  in
  let total = Unix.gettimeofday () -. t0 in
  let report = report_json timings total in
  Option.iter
    (fun path ->
      Obs.write_file_atomic path ~contents:(Json.to_string report ^ "\n");
      Printf.printf "wrote %s\n" path)
    json_path;
  Printf.printf "\ntotal wall time: %.1f s\n" total;
  match baseline_path with
  | None -> ()
  | Some path -> (
    match Json.parse (read_file path) with
    | Error msg ->
      Printf.eprintf "bench: cannot parse baseline %s: %s\n" path msg;
      exit 2
    | Ok baseline ->
      header (Printf.sprintf "regression check vs %s" path);
      let regressions = compare_reports ~gate ~baseline report in
      if regressions > 0 then exit 1)
