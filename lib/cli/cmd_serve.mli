(** [ssd serve]: the timing-as-a-service daemon (and its replayer). *)

val cmd : int Cmdliner.Cmd.t
