(** [ssd mc]: Monte-Carlo corner sampling. *)

val cmd : int Cmdliner.Cmd.t
