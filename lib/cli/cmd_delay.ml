module S = Ssd_spice
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Texttab = Ssd_util.Texttab

open Cmdliner
open Cli_common

let skew_t =
  Arg.(value & opt float 0.
       & info [ "skew" ] ~docv:"PS" ~doc:"Skew A_Y − A_X in picoseconds.")

let tx_t =
  Arg.(value & opt float 0.5
       & info [ "tx" ] ~docv:"NS" ~doc:"Transition time of input X in ns.")

let ty_t =
  Arg.(value & opt float 0.5
       & info [ "ty" ] ~docv:"NS" ~doc:"Transition time of input Y in ns.")

let run verbose fine skew_ps tx_ns ty_ns =
  setup_logs verbose;
  let lib = library_of fine in
  let cell = Charlib.find lib Sweep.Nand 2 in
  let a = { Types.pos = 0; arrival = 0.; t_tr = tx_ns *. 1e-9 } in
  let b =
    { Types.pos = 1; arrival = skew_ps *. 1e-12; t_tr = ty_ns *. 1e-9 }
  in
  let sim =
    Sweep.pair S.Tech.default Sweep.Nand ~n:2 ~fanout:1 ~pos_a:0 ~pos_b:1
      ~t_a:a.Types.t_tr ~t_b:b.Types.t_tr ~skew:b.Types.arrival
  in
  let t = Texttab.create ~header:[ "source"; "delay (ps)"; "out tt (ps)" ] in
  Texttab.add_row_f ~prec:1 t "simulator"
    [ sim.Sweep.m_delay *. 1e12; sim.Sweep.m_out_tt *. 1e12 ];
  List.iter
    (fun m ->
      Texttab.add_row_f ~prec:1 t m.DM.name
        [
          m.DM.pair_delay cell ~fanout:1 ~a ~b *. 1e12;
          m.DM.pair_out_tt cell ~fanout:1 ~a ~b *. 1e12;
        ])
    DM.all;
  Texttab.print t;
  0

let cmd =
  Cmd.v
    (Cmd.info "delay"
       ~doc:"Query the simultaneous-switching delay of a NAND2 for every \
             model")
    Term.(const run $ verbose_t $ fine_t $ skew_t $ tx_t $ ty_t)
