(** The [ssd] command group. *)

val main : unit -> int
(** Evaluate the CLI; returns the process exit code. *)
