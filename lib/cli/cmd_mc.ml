module Ck = Ssd_circuit
module Corner_sta = Ssd_sta.Corner_sta
module Run_opts = Ssd_sta.Run_opts
module Texttab = Ssd_util.Texttab

open Cmdliner
open Cli_common

let samples_t =
  Arg.(value & opt int 64 & info [ "samples" ] ~docv:"N"
         ~doc:"Number of Monte-Carlo corner samples.")

let seed_t =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Sampling seed.")

let batch_t =
  Arg.(value & opt int 16 & info [ "batch" ] ~docv:"K"
         ~doc:"Samples fitted and swept together per batched-kernel pass \
               (clamped to the sample count; never changes results).")

let check_t =
  Arg.(value & flag & info [ "check" ]
       ~doc:"Replay the sweep through the scalar resident-engine path and \
             verify every per-sample PO delay and circuit max is \
             bit-identical (exit 1 on the first mismatch).")

let run common fine file samples seed batch check =
  let obs = setup_common common in
  if samples < 1 then begin
    Printf.eprintf "ssd: --samples must be at least 1\n";
    exit 2
  end;
  if batch < 1 then begin
    Printf.eprintf "ssd: --batch must be at least 1\n";
    exit 2
  end;
  let lib = library_of fine in
  let nl = Ck.Decompose.to_primitive (load_netlist file) in
  let opts = Run_opts.make ~jobs:common.co_jobs ~obs ~mc_batch:batch () in
  let res =
    Corner_sta.monte_carlo ~opts ~samples ~seed:(Int64.of_int seed)
      ~library:lib nl
  in
  if check then begin
    (* scalar oracle: the eval cache pays off there, every sample
       revisits the same cells through the resident engine session *)
    let oracle =
      Corner_sta.monte_carlo_scalar
        ~opts:(run_opts_of ~cache:true common obs)
        ~samples ~seed:(Int64.of_int seed) ~library:lib nl
    in
    let beq a b =
      Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
    in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          Printf.eprintf "ssd: %s\n" m;
          exit 1)
        fmt
    in
    Array.iteri
      (fun pi d ->
        Array.iteri
          (fun s v ->
            if not (beq v oracle.Corner_sta.mc_delays.(pi).(s)) then
              fail "PO %d sample %d: batched %.17g <> scalar %.17g"
                res.Corner_sta.mc_pos.(pi) s v
                oracle.Corner_sta.mc_delays.(pi).(s))
          d)
      res.Corner_sta.mc_delays;
    Array.iteri
      (fun s v ->
        if not (beq v oracle.Corner_sta.mc_max.(s)) then
          fail "sample %d circuit max: batched %.17g <> scalar %.17g" s v
            oracle.Corner_sta.mc_max.(s))
      res.Corner_sta.mc_max;
    Printf.printf
      "check: %d sample(s) bit-identical to the scalar engine path\n" samples
  end;
  let qs = [ 0.; 0.05; 0.5; 0.95; 1. ] in
  Printf.printf "%s: %d Monte-Carlo corner samples (seed %d)\n"
    (Ck.Netlist.stats nl) samples seed;
  let table =
    Texttab.create
      ~header:[ "PO"; "min (ns)"; "q5"; "median"; "q95"; "max (ns)" ]
  in
  let per_po = Corner_sta.mc_po_quantiles res qs in
  Array.iteri
    (fun pi po ->
      Texttab.add_row table
        (Ck.Netlist.signal_name nl po
        :: List.map
             (fun (_, v) -> Printf.sprintf "%.3f" (v *. 1e9))
             per_po.(pi)))
    res.Corner_sta.mc_pos;
  Texttab.print table;
  print_string "circuit max delay: ";
  List.iter
    (fun (q, v) -> Printf.printf " q%02.0f %.3f ns" (q *. 100.) (v *. 1e9))
    (Corner_sta.mc_max_quantiles res qs);
  print_newline ();
  finish_common common obs;
  0

let cmd =
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Monte-Carlo corner sampling through the batched corner kernel")
    Term.(const run $ common_t $ fine_t $ bench_file_t $ samples_t $ seed_t
          $ batch_t $ check_t)
