module Corners = Ssd_cell.Corners
module DM = Ssd_core.Delay_model
module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module Corner_sta = Ssd_sta.Corner_sta
module Run_opts = Ssd_sta.Run_opts

open Cmdliner
open Cli_common

let k_t =
  Arg.(value & opt int 4 & info [ "corners" ] ~docv:"K"
         ~doc:"Number of process corners to spread across the derating \
               range (delay ±25%, transition ∓10%).")

let check_t =
  Arg.(value & flag & info [ "check" ]
       ~doc:"Re-run every corner as an independent single-corner analysis \
             over its derated library and verify the batched plane is \
             bit-identical (exit 1 on the first mismatch).")

let run common fine file k check =
  let obs = setup_common common in
  if k < 2 then begin
    Printf.eprintf "ssd: --corners must be at least 2\n";
    exit 2
  end;
  let lib = library_of fine in
  let nl = Ck.Decompose.to_primitive (load_netlist file) in
  let table = Corners.build ~specs:(Corners.default_specs k) lib in
  let opts = Run_opts.make ~jobs:common.co_jobs ~obs ~corners:k () in
  let t = Corner_sta.analyze ~opts ~table nl in
  print_endline (Corner_sta.summary t);
  if check then begin
    for c = 0 to k - 1 do
      let scalar =
        Sta.analyze_with (Run_opts.make ())
          ~library:(Corners.library table c) ~model:DM.proposed nl
      in
      if not (Corner_sta.plane_matches t ~corner:c scalar) then begin
        Printf.eprintf
          "ssd: corner %d plane differs from its scalar analysis\n" c;
        exit 1
      end
    done;
    Printf.printf
      "check: %d corner plane(s) bit-identical to independent analyses\n" k
  end;
  finish_common common obs;
  0

let cmd =
  Cmd.v
    (Cmd.info "corners"
       ~doc:"Batched multi-corner timing analysis (one sweep, K planes)")
    Term.(const run $ common_t $ fine_t $ bench_file_t $ k_t $ check_t)
