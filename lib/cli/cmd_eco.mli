(** [ssd eco]: replay an edit script through the incremental engine. *)

val cmd : int Cmdliner.Cmd.t
