module Types = Ssd_core.Types
module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module Interval = Ssd_util.Interval
module Texttab = Ssd_util.Texttab

open Cmdliner
open Cli_common

let clock_t =
  Arg.(value & opt (some float) None
       & info [ "clock" ] ~docv:"NS"
           ~doc:"Clock period in ns for the required-time check.")

let cache_t =
  Arg.(value & flag & info [ "cache" ]
       ~doc:"Memoize the per-cell corner searches across gate instances \
             (never changes results). Implied by $(b,--stats) so the \
             eval-cache hit ratio row is populated.")

let run common fine model file clock cache =
  let obs = setup_common common in
  let lib = library_of fine in
  let nl = Ck.Decompose.to_primitive (load_netlist file) in
  let cache = cache || common.co_stats in
  let t =
    Sta.analyze_with (run_opts_of ~cache common obs) ~library:lib ~model nl
  in
  print_endline (Sta.summary t);
  let table = Texttab.create ~header:[ "PO"; "rise A (ns)"; "fall A (ns)" ] in
  List.iter
    (fun po ->
      let lt = Sta.timing t po in
      Texttab.add_row table
        [
          Ck.Netlist.signal_name nl po;
          Interval.to_string
            (Interval.make
               (Interval.lo lt.Sta.rise.Types.w_arr *. 1e9)
               (Interval.hi lt.Sta.rise.Types.w_arr *. 1e9));
          Interval.to_string
            (Interval.make
               (Interval.lo lt.Sta.fall.Types.w_arr *. 1e9)
               (Interval.hi lt.Sta.fall.Types.w_arr *. 1e9));
        ])
    (Ck.Netlist.outputs nl);
  Texttab.print table;
  (match clock with
  | None -> ()
  | Some ns ->
    let q = Sta.compute_required t ~clock_period:(ns *. 1e-9) in
    let v = Sta.violations t q in
    Printf.printf "%d timing violation(s) at clock %.3f ns\n"
      (List.length v) ns;
    List.iter (fun (_, msg) -> Printf.printf "  %s\n" msg) v);
  finish_common common obs;
  if common.co_stats then
    Option.iter
      (fun s -> print_endline (Ssd_core.Eval_cache.to_string s))
      (Sta.cache_stats t);
  0

let cmd =
  Cmd.v (Cmd.info "sta" ~doc:"Static timing analysis of a netlist")
    Term.(const run $ common_t $ fine_t $ model_t $ bench_file_t $ clock_t
          $ cache_t)
