(** [ssd delay]: query every model's NAND2 simultaneous-switching
    delay. *)

val cmd : int Cmdliner.Cmd.t
