module Charlib = Ssd_cell.Charlib
module DM = Ssd_core.Delay_model
module Ck = Ssd_circuit
module Run_opts = Ssd_sta.Run_opts
module Obs = Ssd_obs.Obs

open Cmdliner

type opt_spec = {
  o_names : string list;
  o_docv : string option;
  o_doc : string;
}

(* the single source of truth: every shared option's names and help
   text.  Terms below are generated from these rows, so the vocabulary
   stays identical across subcommands. *)
let option_table =
  [
    ( "verbose",
      { o_names = [ "v"; "verbose" ]; o_docv = None;
        o_doc = "Verbose logging." } );
    ( "fine",
      { o_names = [ "fine" ]; o_docv = None;
        o_doc =
          "Use the fine characterization profile (default: honour \
           \\$SSD_FAST, else fine)." } );
    ( "jobs",
      { o_names = [ "j"; "jobs" ]; o_docv = Some "N";
        o_doc =
          "Execution lanes for the timing analysis and the fault \
           simulator: 1 is sequential, 0 picks the recommended domain \
           count, N>1 uses N domains. Results are identical for any \
           value." } );
    ( "stats",
      { o_names = [ "stats" ]; o_docv = None;
        o_doc =
          "Print a telemetry summary after the run: counters, per-phase \
           timers and histograms (lane utilization, per-level times, \
           screening economics, ...)." } );
    ( "trace",
      { o_names = [ "trace" ]; o_docv = Some "FILE";
        o_doc =
          "Write a Chrome trace-event JSON file of the run's spans (load \
           in Perfetto or chrome://tracing); one track per execution \
           lane." } );
    ( "stats-json",
      { o_names = [ "stats-json" ]; o_docv = Some "FILE";
        o_doc =
          "Write the full telemetry snapshot as JSON: counters, gauges, \
           timers (total and self seconds), histogram rows and the \
           hierarchical span tree with per-span GC allocation deltas.  \
           This is the serve protocol's stats payload shape." } );
    ( "metrics",
      { o_names = [ "metrics" ]; o_docv = None;
        o_doc =
          "Print the telemetry snapshot in Prometheus text exposition \
           format after the run." } );
    ( "model",
      { o_names = [ "model" ]; o_docv = Some "NAME";
        o_doc = "Delay model: proposed, pin-to-pin, jun or nabavi." } );
  ]

let info_of key =
  let s = List.assoc key option_table in
  Arg.info s.o_names ?docv:s.o_docv ~doc:s.o_doc

let verbose_t = Arg.(value & flag & info_of "verbose")
let fine_t = Arg.(value & flag & info_of "fine")
let jobs_t = Arg.(value & opt int 1 & info_of "jobs")
let stats_t = Arg.(value & flag & info_of "stats")
let trace_t = Arg.(value & opt (some string) None & info_of "trace")
let stats_json_t = Arg.(value & opt (some string) None & info_of "stats-json")
let metrics_t = Arg.(value & flag & info_of "metrics")

let model_t =
  let parse s =
    match DM.find s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown model %S (try: %s)" s
             (String.concat ", " (List.map (fun m -> m.DM.name) DM.all))))
  in
  let print ppf m = Format.pp_print_string ppf m.DM.name in
  Arg.(value & opt (conv (parse, print)) DM.proposed & info_of "model")

let bench_file_t =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE.bench"
           ~doc:"ISCAS85-format netlist, or a suite name (c17, c880s, ...).")

type common = {
  co_verbose : bool;
  co_jobs : int;
  co_stats : bool;
  co_trace : string option;
  co_stats_json : string option;
  co_metrics : bool;
}

let common_t =
  let mk co_verbose co_jobs co_stats co_trace co_stats_json co_metrics =
    { co_verbose; co_jobs; co_stats; co_trace; co_stats_json; co_metrics }
  in
  Term.(const mk $ verbose_t $ jobs_t $ stats_t $ trace_t $ stats_json_t
        $ metrics_t)

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let library_of fine =
  if fine then Charlib.default ~profile:Charlib.fine ()
  else Charlib.default ()

(* one sink per invocation: enabled only when the user asked for output,
   so the default path keeps the no-op sink's near-zero overhead.  A
   snapshot request turns span recording on too — the span tree (and its
   GC attribution) is part of the snapshot. *)
let make_obs ~stats ~trace ~stats_json ~metrics =
  let tracing = trace <> None || stats_json <> None in
  if stats || metrics || tracing then Obs.create ~trace:tracing ()
  else Obs.disabled

let emit_obs obs ~stats ~trace ~stats_json ~metrics =
  (match trace with
  | Some path ->
    Obs.write_trace obs path;
    Printf.printf "wrote trace to %s\n" path
  | None -> ());
  (match stats_json with
  | Some path ->
    Obs.write_snapshot obs path;
    Printf.printf "wrote stats to %s\n" path
  | None -> ());
  if metrics then print_string (Obs.to_prometheus (Obs.snapshot obs));
  if stats then print_string (Obs.report obs)

let setup_common c =
  setup_logs c.co_verbose;
  make_obs ~stats:c.co_stats ~trace:c.co_trace ~stats_json:c.co_stats_json
    ~metrics:c.co_metrics

let finish_common c obs =
  emit_obs obs ~stats:c.co_stats ~trace:c.co_trace
    ~stats_json:c.co_stats_json ~metrics:c.co_metrics

let run_opts_of ?(cache = false) c obs =
  Run_opts.make ~jobs:c.co_jobs ~cache ~obs ()

let load_netlist path =
  match Ck.Benchmarks.by_name path with
  | Some nl -> nl
  | None ->
    if Sys.file_exists path then
      try Ck.Bench_io.parse_file path
      with Ck.Bench_io.Parse_error { line; message } ->
        Printf.eprintf "ssd: %s:%d: %s\n" path line message;
        exit 2
    else begin
      Printf.eprintf
        "ssd: %S is neither a suite name (%s) nor an existing file\n" path
        (String.concat ", " Ck.Benchmarks.names);
      exit 2
    end
