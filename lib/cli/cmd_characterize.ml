module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Fit = Ssd_cell.Fit

open Cmdliner
open Cli_common

let run verbose fine =
  setup_logs verbose;
  let lib = library_of fine in
  List.iter
    (fun cell ->
      Format.printf "%a@." Charlib.pp_cell_summary cell;
      let kname =
        match cell.Charlib.kind with Sweep.Nand -> "NAND" | Sweep.Nor -> "NOR"
      in
      Array.iteri
        (fun pos ec ->
          let k = ec.Charlib.delay.Fit.k in
          Printf.printf
            "  %s%d pin %d to-ctl: DR(T) = %.3e T^2 + %.3e T + %.3e  \
             (rms %.1f ps%s)\n"
            kname cell.Charlib.n pos k.(0) k.(1) k.(2)
            (ec.Charlib.delay.Fit.rms *. 1e12)
            (match ec.Charlib.delay.Fit.peak with
            | Some p -> Printf.sprintf ", peak at %.2f ns" (p *. 1e9)
            | None -> ""))
        cell.Charlib.to_ctl)
    lib.Charlib.cells;
  0

let cmd =
  Cmd.v (Cmd.info "characterize" ~doc:"Build and print the cell library")
    Term.(const run $ verbose_t $ fine_t)
