open Cmdliner

let main () =
  let doc =
    "simultaneous-switching gate delay model toolkit (DAC 2001 repro)"
  in
  let info = Cmd.info "ssd" ~version:"1.0.0" ~doc in
  Cmd.eval'
    (Cmd.group info
       [
         Cmd_characterize.cmd;
         Cmd_sta.cmd;
         Cmd_atpg.cmd;
         Cmd_eco.cmd;
         Cmd_gen.cmd;
         Cmd_delay.cmd;
         Cmd_corners.cmd;
         Cmd_mc.cmd;
         Cmd_serve.cmd;
       ])
