module Server = Ssd_serve.Server
module Run_opts = Ssd_sta.Run_opts

open Cmdliner
open Cli_common

let port_t =
  Arg.(value & opt int 7373 & info [ "port" ] ~docv:"PORT"
         ~doc:"TCP port to listen on (0 picks a free port, printed on \
               startup).")

let host_t =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")

let stdio_t =
  Arg.(value & flag & info [ "stdio" ]
       ~doc:"Serve one client over stdin/stdout instead of TCP (the test \
             and script transport).")

let max_sessions_t =
  Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N"
         ~doc:"Admission control: maximum concurrently open sessions.")

let max_frame_t =
  Arg.(value & opt int (1 lsl 20) & info [ "max-frame-bytes" ] ~docv:"N"
         ~doc:"Admission control: requests larger than this many bytes \
               are rejected unparsed.")

let record_t =
  Arg.(value & opt (some string) None
       & info [ "record" ] ~docv:"FILE"
           ~doc:"Append every (request, response) pair to FILE as JSON \
                 lines; $(b,ssd serve --replay) FILE feeds it back.")

let replay_t =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Instead of serving a transport, replay a recorded \
                 request log through a fresh server and exit.")

let check_t =
  Arg.(value & flag & info [ "check" ]
       ~doc:"With $(b,--replay): verify every response is byte-identical \
             to the recorded one (stats responses compare by status \
             only); exit 1 on the first divergence.")

let run common fine port host stdio max_sessions max_frame record replay
    check =
  let obs = setup_common common in
  let lib = library_of fine in
  (* the daemon's own counters must be visible through the `stats`
     request even without --stats/--trace, so a disabled sink is
     upgraded to a live one (sessions already always get their own) *)
  let sv_obs =
    if Ssd_obs.Obs.enabled obs then obs else Ssd_obs.Obs.create ()
  in
  let cfg =
    {
      (Server.default_config ~library:lib) with
      (* engines stay sequential; --jobs buys cross-session batch lanes *)
      Server.sv_engine_opts = Run_opts.default;
      sv_jobs = common.co_jobs;
      sv_max_sessions = max_sessions;
      sv_max_frame_bytes = max_frame;
      sv_record = (if replay = None then record else None);
      sv_obs;
    }
  in
  let sv = Server.create cfg in
  let code =
    Fun.protect
      ~finally:(fun () -> Server.close sv)
      (fun () ->
        match replay with
        | Some path -> (
          match Server.replay sv ~path ~check with
          | Error m ->
            Printf.eprintf "ssd: replay: %s\n" m;
            2
          | Ok (n, []) ->
            if check then
              Printf.printf "replay: %d request(s) bit-identical\n" n
            else Printf.printf "replay: %d request(s) served\n" n;
            0
          | Ok (n, ((line, expected, got) :: _ as mismatches)) ->
            Printf.eprintf
              "ssd: replay diverged at line %d\n  expected: %s\n  got:      \
               %s\n(%d mismatch(es) in %d request(s))\n"
              line expected got
              (List.length mismatches)
              n;
            1)
        | None ->
          if stdio then Server.serve_stdio sv else Server.serve_tcp ~host sv ~port;
          0)
  in
  finish_common common obs;
  code

let cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve persistent timing sessions over a line-delimited JSON \
             protocol")
    Term.(const run $ common_t $ fine_t $ port_t $ host_t $ stdio_t
          $ max_sessions_t $ max_frame_t $ record_t $ replay_t $ check_t)
