(** [ssd corners]: batched multi-corner timing analysis. *)

val cmd : int Cmdliner.Cmd.t
