(** [ssd characterize]: build and print the cell library. *)

val cmd : int Cmdliner.Cmd.t
