module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module A = Ssd_atpg

open Cmdliner
open Cli_common

let faults_t =
  Arg.(value & opt int 16 & info [ "faults" ] ~docv:"N"
         ~doc:"Number of crosstalk fault sites to target.")

let no_itr_t =
  Arg.(value & flag
       & info [ "no-itr" ]
           ~doc:"Disable incremental timing refinement pruning.")

let budget_t =
  Arg.(value & opt int 1000 & info [ "budget" ] ~docv:"N"
         ~doc:"Search budget in decision-node expansions per fault.")

let seed_t =
  Arg.(value & opt int 99 & info [ "seed" ] ~docv:"N" ~doc:"Extraction seed.")

let run common fine model file faults no_itr budget seed =
  let obs = setup_common common in
  let lib = library_of fine in
  let nl = Ck.Decompose.to_primitive (load_netlist file) in
  let opts = run_opts_of common obs in
  let sta = Sta.analyze_with opts ~library:lib ~model nl in
  let sites =
    A.Fault.extract_screened ~count:faults ~seed:(Int64.of_int seed)
      ~library:lib ~model nl
  in
  Printf.printf "%s: %d fault sites, clock %.3f ns, ITR %s\n%!"
    (Ck.Netlist.name nl) (List.length sites)
    (Sta.max_delay sta *. 1e9)
    (if no_itr then "off" else "on");
  let cfg =
    { (A.Atpg.default_config ~clock_period:(Sta.max_delay sta)) with
      A.Atpg.use_itr = not no_itr; max_expansions = budget }
  in
  let results, run_stats =
    A.Atpg.run_with opts cfg ~library:lib ~model nl sites
  in
  List.iter
    (fun r ->
      Printf.printf "  %-50s %s (%d expansions)\n"
        (A.Fault.describe nl r.A.Atpg.site)
        (match r.A.Atpg.outcome with
        | A.Atpg.Detected _ -> "DETECTED"
        | A.Atpg.Undetectable -> "undetectable"
        | A.Atpg.Aborted -> "aborted")
        r.A.Atpg.expansions)
    results;
  Printf.printf
    "detected %d, undetectable %d, aborted %d -> efficiency %.2f%%\n"
    run_stats.A.Atpg.detected run_stats.A.Atpg.undetectable
    run_stats.A.Atpg.aborted
    (A.Atpg.efficiency run_stats);
  (* fault-simulate the generated test set over the whole fault list:
     [--jobs] threads through to the incremental fault simulator *)
  let tests =
    List.filter_map
      (fun r ->
        match r.A.Atpg.outcome with
        | A.Atpg.Detected v -> Some v
        | A.Atpg.Undetectable | A.Atpg.Aborted -> None)
      results
  in
  (match tests with
  | [] -> ()
  | _ ->
    let fs =
      A.Fault_sim.simulate_with opts ~library:lib ~model
        ~clock_period:(Sta.max_delay sta) nl sites tests
    in
    Printf.printf
      "fault simulation of the %d generated test(s): %d/%d sites \
       detected, coverage %.2f%%\n"
      (List.length tests)
      (List.length fs.A.Fault_sim.detected)
      (List.length sites) fs.A.Fault_sim.coverage);
  finish_common common obs;
  0

let cmd =
  Cmd.v (Cmd.info "atpg" ~doc:"Crosstalk delay-fault test generation")
    Term.(const run $ common_t $ fine_t $ model_t $ bench_file_t $ faults_t
          $ no_itr_t $ budget_t $ seed_t)
