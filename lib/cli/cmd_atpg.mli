(** [ssd atpg]: crosstalk delay-fault test generation. *)

val cmd : int Cmdliner.Cmd.t
