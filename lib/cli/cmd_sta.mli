(** [ssd sta]: static timing analysis of a netlist. *)

val cmd : int Cmdliner.Cmd.t
