(** The shared option vocabulary of every [ssd] subcommand.

    All flag names, metavariables and help strings live in one
    {!option_table}; the cmdliner terms (and therefore every
    subcommand's [--help]) are generated from it, so [--jobs],
    [--stats], [--trace], [--stats-json] and [--metrics] cannot drift
    apart between subcommands. *)

(** One row of the option table. *)
type opt_spec = {
  o_names : string list;  (** cmdliner name set, short first *)
  o_docv : string option;  (** metavariable for valued options *)
  o_doc : string;  (** help string *)
}

val option_table : (string * opt_spec) list
(** Key → spec for every shared option ([verbose], [fine], [jobs],
    [stats], [trace], [stats-json], [metrics], [model]). *)

val info_of : string -> Cmdliner.Arg.info
(** The {!Cmdliner.Arg.info} generated from {!option_table}.
    @raise Not_found on an unknown key. *)

(** {2 Shared terms} *)

val verbose_t : bool Cmdliner.Term.t
val fine_t : bool Cmdliner.Term.t
val model_t : Ssd_core.Delay_model.t Cmdliner.Term.t
val bench_file_t : string Cmdliner.Term.t
(** Required positional netlist argument (file path or suite name). *)

(** The common option block every worker subcommand shares. *)
type common = {
  co_verbose : bool;
  co_jobs : int;
  co_stats : bool;
  co_trace : string option;
  co_stats_json : string option;
  co_metrics : bool;
}

val common_t : common Cmdliner.Term.t

(** {2 Runtime helpers} *)

val setup_logs : bool -> unit
val library_of : bool -> Ssd_cell.Charlib.t
(** [library_of fine]: the default library, fine profile when asked. *)

val setup_common : common -> Ssd_obs.Obs.t
(** Configure logging and build the run's telemetry sink (enabled only
    when some output was requested — the default path keeps the no-op
    sink). *)

val finish_common : common -> Ssd_obs.Obs.t -> unit
(** Emit whatever telemetry outputs the options requested. *)

val run_opts_of : ?cache:bool -> common -> Ssd_obs.Obs.t -> Ssd_sta.Run_opts.t

val load_netlist : string -> Ssd_circuit.Netlist.t
(** Resolve a suite name or parse a [.bench] file; exits with code 2
    (after a diagnostic) when neither works. *)
