module Ck = Ssd_circuit

open Cmdliner
open Cli_common

let gates_t =
  Arg.(required & opt (some int) None
       & info [ "gates" ] ~docv:"N" ~doc:"Gate count.")

let inputs_t =
  Arg.(value & opt int 16 & info [ "inputs" ] ~docv:"N" ~doc:"PI count.")

let outputs_t =
  Arg.(value & opt int 8 & info [ "outputs" ] ~docv:"N" ~doc:"PO count.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let out_t =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the netlist here (default: stdout).")

(* generation is single-threaded; the common block is still accepted
   so --jobs/--stats/--trace mean the same thing on every subcommand *)
let run common gates inputs outputs seed out =
  let obs = setup_common common in
  let nl =
    Ck.Generator.generate ~obs
      {
        Ck.Generator.default_params with
        Ck.Generator.g_name = "synth";
        n_inputs = inputs;
        n_outputs = outputs;
        n_gates = gates;
        seed = Int64.of_int seed;
      }
  in
  (match out with
  | Some path ->
    Ck.Bench_io.write_file nl path;
    Printf.printf "wrote %s (%s)\n" path (Ck.Netlist.stats nl)
  | None -> print_string (Ck.Bench_io.to_string nl));
  finish_common common obs;
  0

let cmd =
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic benchmark netlist")
    Term.(const run $ common_t $ gates_t $ inputs_t $ outputs_t $ seed_t
          $ out_t)
