(** [ssd gen]: generate a synthetic benchmark netlist. *)

val cmd : int Cmdliner.Cmd.t
