module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module Engine = Ssd_sta.Engine
module Interval = Ssd_util.Interval

open Cmdliner
open Cli_common

(* Edit-script interpreter for the incremental {!Ssd_sta.Engine}.  The
   line grammar lives with the engine ({!Engine.script_op_of_line}) —
   the same serializable edits the serve protocol speaks — so this
   command only sequences directives, checkpoints and bit-identity
   checks. *)

let script_t =
  Arg.(required & pos 1 (some string) None
       & info [] ~docv:"SCRIPT"
           ~doc:"Edit script: one directive per line — $(b,extra SIG PS), \
                 $(b,swap SIG KIND), $(b,pi SIG ALO AHI TLO THI) (ns), \
                 $(b,model NAME), $(b,checkpoint), $(b,revert), \
                 $(b,commit); '#' starts a comment.")

let check_t =
  Arg.(value & flag & info [ "check" ]
       ~doc:"After every edit, re-analyze the edited circuit from scratch \
             and verify the engine's PO window is bit-identical (exit 1 \
             on the first mismatch).")

let run common fine model file script check =
  let obs = setup_common common in
  let lib = library_of fine in
  let nl = Ck.Decompose.to_primitive (load_netlist file) in
  let opts = run_opts_of common obs in
  let fail ln fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "ssd: %s:%d: %s\n" script ln msg;
        exit 2)
      fmt
  in
  let lines =
    if not (Sys.file_exists script) then begin
      Printf.eprintf "ssd: script %S does not exist\n" script;
      exit 2
    end
    else begin
      let ic = open_in script in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc n =
            match input_line ic with
            | l -> go ((n, l) :: acc) (n + 1)
            | exception End_of_file -> List.rev acc
          in
          go [] 1)
    end
  in
  let eng = Engine.create ~opts ~library:lib ~model nl in
  let marks = ref [] in
  let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  let nedits = ref 0 in
  let show ln what =
    let w = Engine.po_window eng in
    Printf.printf "%4d  %-30s ->  PO [%.3f, %.3f] ns\n" ln what
      (Interval.lo w *. 1e9) (Interval.hi w *. 1e9)
  in
  let apply ln edit =
    (try Engine.apply eng edit with
    | Invalid_argument msg | Sta.Unsupported_gate msg -> fail ln "%s" msg);
    incr nedits;
    show ln (Engine.describe_edit nl edit);
    if check then begin
      let reference = Engine.reanalyze eng in
      let we = Engine.po_window eng and wr = Sta.po_window reference in
      if
        not
          (beq (Interval.lo we) (Interval.lo wr)
          && beq (Interval.hi we) (Interval.hi wr))
      then begin
        Printf.eprintf
          "ssd: %s:%d: engine PO window [%.6f, %.6f] ns differs from full \
           re-analysis [%.6f, %.6f] ns\n"
          script ln
          (Interval.lo we *. 1e9) (Interval.hi we *. 1e9)
          (Interval.lo wr *. 1e9) (Interval.hi wr *. 1e9);
        exit 1
      end
    end
  in
  List.iter
    (fun (ln, raw) ->
      match Engine.script_op_of_line nl raw with
      | Error msg -> fail ln "%s" msg
      | Ok None -> ()
      | Ok (Some (Engine.S_edit edit)) -> apply ln edit
      | Ok (Some Engine.S_checkpoint) ->
        marks := Engine.checkpoint eng :: !marks;
        Printf.printf "%4d  checkpoint (depth %d)\n" ln (Engine.depth eng)
      | Ok (Some Engine.S_revert) -> (
        match !marks with
        | [] -> fail ln "revert without a preceding checkpoint"
        | cp :: rest ->
          Engine.revert eng cp;
          marks := rest;
          show ln "revert")
      | Ok (Some Engine.S_commit) ->
        Engine.commit eng;
        marks := [];
        Printf.printf "%4d  commit\n" ln)
    lines;
  print_endline (Engine.summary eng);
  if check then
    Printf.printf "check: %d edit(s) bit-identical to full re-analysis\n"
      !nedits;
  Engine.close eng;
  finish_common common obs;
  0

let cmd =
  Cmd.v
    (Cmd.info "eco"
       ~doc:"Replay an edit script through the incremental re-timing engine")
    Term.(const run $ common_t $ fine_t $ model_t $ bench_file_t $ script_t
          $ check_t)
