module Netlist = Ssd_circuit.Netlist
module Timing_sim = Ssd_sta.Timing_sim
module Types = Ssd_core.Types
module Value2f = Ssd_itr.Value2f
module Rng = Ssd_util.Rng

type result = {
  coverage : float;
  detected : (int * int) list;
  undetected : int list;
}

let wants tr line =
  match tr with
  | Value2f.Rise -> Timing_sim.rising line
  | Value2f.Fall -> Timing_sim.falling line

let excited_and_aligned lines (site : Fault.site) =
  let la = lines.(site.Fault.aggressor) in
  let lv = lines.(site.Fault.victim) in
  wants site.Fault.agg_tr la
  && wants site.Fault.vic_tr lv
  &&
  match (la.Timing_sim.event, lv.Timing_sim.event) with
  | Some ea, Some ev ->
    Float.abs (ea.Types.e_arr -. ev.Types.e_arr) <= site.Fault.align_window
  | _, _ -> false

let observable nl (site : Fault.site) faultfree faulty clock =
  List.exists
    (fun po ->
      match
        (faultfree.(po).Timing_sim.event, faulty.(po).Timing_sim.event)
      with
      | Some ff, Some f ->
        ff.Types.e_arr <= clock
        && f.Types.e_arr -. ff.Types.e_arr >= 0.45 *. site.Fault.delta
      | _, _ -> false)
    (Netlist.outputs nl)

let simulate ~library ~model ~clock_period nl sites vectors =
  let sites = Array.of_list sites in
  let alive = Array.make (Array.length sites) true in
  let detected = ref [] in
  List.iteri
    (fun vi vector ->
      if Array.exists Fun.id alive then begin
        let faultfree = Timing_sim.simulate ~library ~model nl vector in
        Array.iteri
          (fun fi site ->
            if alive.(fi) && excited_and_aligned faultfree site then begin
              let faulty =
                Timing_sim.simulate
                  ~extra_delay:(fun i ->
                    if i = site.Fault.victim then site.Fault.delta else 0.)
                  ~library ~model nl vector
              in
              if observable nl site faultfree faulty clock_period then begin
                alive.(fi) <- false;
                detected := (fi, vi) :: !detected
              end
            end)
          sites
      end)
    vectors;
  let undetected = ref [] in
  Array.iteri (fun fi a -> if a then undetected := fi :: !undetected) alive;
  let total = Array.length sites in
  {
    coverage =
      (if total = 0 then 0.
       else 100. *. float_of_int (List.length !detected) /. float_of_int total);
    detected = List.rev !detected;
    undetected = List.rev !undetected;
  }

let random_vectors ~seed ~count nl =
  let rng = Rng.create seed in
  let npi = List.length (Netlist.inputs nl) in
  List.init count (fun _ ->
      Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)))
