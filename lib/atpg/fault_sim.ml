module Netlist = Ssd_circuit.Netlist
module Timing_sim = Ssd_sta.Timing_sim
module Par = Ssd_sta.Par
module Sta = Ssd_sta.Sta
module Engine = Ssd_sta.Engine
module Run_opts = Ssd_sta.Run_opts
module Interval = Ssd_util.Interval
module Types = Ssd_core.Types
module Value2f = Ssd_itr.Value2f
module Rng = Ssd_util.Rng
module Obs = Ssd_obs.Obs

type engine = Full | Cone

type result = {
  coverage : float;
  detected : (int * int) list;
  undetected : int list;
}

let wants tr lines i =
  match tr with
  | Value2f.Rise -> Timing_sim.rising_at lines i
  | Value2f.Fall -> Timing_sim.falling_at lines i

let excited_and_aligned lines (site : Fault.site) =
  let a = site.Fault.aggressor and v = site.Fault.victim in
  wants site.Fault.agg_tr lines a
  && wants site.Fault.vic_tr lines v
  && Timing_sim.has_event lines a
  && Timing_sim.has_event lines v
  && Float.abs (Timing_sim.event_arr lines a -. Timing_sim.event_arr lines v)
     <= site.Fault.align_window

let observable nl (site : Fault.site) faultfree faulty clock =
  List.exists
    (fun po ->
      Timing_sim.has_event faultfree po
      && Timing_sim.has_event faulty po
      &&
      let ff = Timing_sim.event_arr faultfree po in
      ff <= clock
      && Timing_sim.event_arr faulty po -. ff >= 0.45 *. site.Fault.delta)
    (Netlist.outputs nl)

(* Vector-independent necessary conditions per site, decided on STA
   windows served by one incremental {!Ssd_sta.Engine} session: the
   aggressor/victim direction-specific arrival windows must come within
   the alignment window of each other, and — with the victim slowed by
   the site's delta via a [Set_extra_delay] edit (reverted right after) —
   some primary output must be able to both meet the clock fault-free
   and shift by at least 0.45 delta.  Sound because every event
   {!Ssd_sta.Timing_sim} can produce (under its point PI assumptions,
   which lie inside {!Ssd_sta.Run_opts.default_pi_spec} — the spec the
   screen pins regardless of the caller's [pi_spec]) falls inside the
   direction-specific STA window of its line, in the faulty circuit as
   well as the fault-free one.  A screened-out site can therefore be
   detected by no vector at all, so skipping it never changes results. *)
let window_feasible ~opts ~library ~model ~clock_period nl sites =
  let screen_opts =
    Run_opts.make ~cache:opts.Run_opts.cache ~obs:opts.Run_opts.obs ()
  in
  Engine.with_engine ~opts:screen_opts ~library ~model nl (fun eng ->
      let pos = Netlist.outputs nl in
      let arr_of tr i =
        let lt = Engine.timing eng i in
        (match tr with
        | Value2f.Rise -> lt.Sta.rise
        | Value2f.Fall -> lt.Sta.fall)
          .Types.w_arr
      in
      let po_lo i =
        let lt = Engine.timing eng i in
        Float.min
          (Interval.lo lt.Sta.rise.Types.w_arr)
          (Interval.lo lt.Sta.fall.Types.w_arr)
      in
      let po_hi i =
        let lt = Engine.timing eng i in
        Float.max
          (Interval.hi lt.Sta.rise.Types.w_arr)
          (Interval.hi lt.Sta.fall.Types.w_arr)
      in
      (* fault-free earliest PO arrivals, fixed for every site *)
      let ff_lo = List.map po_lo pos in
      Array.map
        (fun (site : Fault.site) ->
          let wa = arr_of site.Fault.agg_tr site.Fault.aggressor in
          let wv = arr_of site.Fault.vic_tr site.Fault.victim in
          let gap =
            Float.max
              (Interval.lo wa -. Interval.hi wv)
              (Interval.lo wv -. Interval.hi wa)
          in
          gap <= site.Fault.align_window
          && begin
               let cp = Engine.checkpoint eng in
               Engine.apply eng
                 (Engine.Set_extra_delay
                    { line = site.Fault.victim; delta = site.Fault.delta });
               let ok =
                 List.exists2
                   (fun po lo ->
                     lo <= clock_period
                     && po_hi po -. lo >= 0.45 *. site.Fault.delta)
                   pos ff_lo
               in
               Engine.revert eng cp;
               ok
             end)
        sites)

(* The simulator screens every (site, vector) pair against the shared
   fault-free simulation of the vector; only pairs whose excitation and
   alignment conditions hold pay for a faulty evaluation, and that
   evaluation re-times only the victim's fanout cone ([Cone], the
   default) instead of the whole circuit ([Full], kept as the
   measurable baseline).  Before any vector runs, [window_screen]
   (default on) discards sites that are infeasible on STA windows alone
   — a per-site engine edit instead of per-(site, vector) simulation.

   Vectors are processed in blocks: within a block the fault-free
   simulations (one full run per vector) and the surviving (site,
   vector) faulty evaluations both fan out across the domain pool.
   Fault dropping is deterministic regardless of lane count or block
   size because a site records the *earliest* vector index that detects
   it — a site evaluated redundantly for several vectors of one block
   (where a strict sequential walk would have dropped it mid-block)
   folds back to the same earliest detection. *)
let simulate_with ?(engine = Cone) ?(window_screen = true)
    (opts : Run_opts.t) ~library ~model ~clock_period nl sites vectors =
  let { Run_opts.jobs; obs; _ } = opts in
  let c_ff = Obs.counter obs "faultsim.ff_sims" in
  let c_screened = Obs.counter obs "faultsim.screened_out" in
  let c_dropped = Obs.counter obs "faultsim.dropped" in
  let c_resim = Obs.counter obs "faultsim.resim" in
  let sites = Array.of_list sites in
  let vectors = Array.of_list vectors in
  let nsites = Array.length sites in
  let nvec = Array.length vectors in
  (* earliest detecting vector index per site; max_int = still alive *)
  let best = Array.make nsites max_int in
  let feasible =
    if window_screen && nsites > 0 then
      window_feasible ~opts ~library ~model ~clock_period nl sites
    else Array.make nsites true
  in
  Obs.add
    (Obs.counter obs "faultsim.window_screened")
    (Array.fold_left (fun a b -> if b then a else a + 1) 0 feasible);
  let extra_of (site : Fault.site) i =
    if i = site.Fault.victim then site.Fault.delta else 0.
  in
  if engine = Cone then
    (* warm the per-netlist cone cache before fanning out, so worker
       domains only ever hit the cached path *)
    Array.iter
      (fun (s : Fault.site) -> ignore (Netlist.fanout_cone nl s.Fault.victim))
      sites;
  Par.with_pool ~obs ~jobs (fun pool ->
      let lanes = Par.jobs pool in
      (* one vector per block on a single lane reproduces the strict
         sequential dropping schedule (no redundant evaluations); wider
         blocks trade a bounded amount of redundant work (a site can be
         evaluated for several vectors of one block before its earliest
         detection folds in) for parallel occupancy and fewer pool
         barriers *)
      let block = if lanes = 1 then 1 else 8 * lanes in
      let vi = ref 0 in
      let any_live () =
        let rec go fi =
          fi < nsites && ((feasible.(fi) && best.(fi) = max_int) || go (fi + 1))
        in
        go 0
      in
      while !vi < nvec && any_live () do
        let bn = min block (nvec - !vi) in
        let base = !vi in
        let ff = Array.make bn Timing_sim.empty in
        Par.parallel_for pool ~chunk:1 ~label:"ff-sim" ~n:bn (fun k ->
            ff.(k) <- Timing_sim.simulate ~library ~model nl vectors.(base + k));
        Obs.add c_ff bn;
        (* screen against the shared fault-free runs: cheap, sequential *)
        let work = ref [] in
        for k = bn - 1 downto 0 do
          for fi = nsites - 1 downto 0 do
            if not feasible.(fi) then ()
            else if best.(fi) <> max_int then Obs.incr c_dropped
            else if excited_and_aligned ff.(k) sites.(fi) then
              work := (fi, k) :: !work
            else Obs.incr c_screened
          done
        done;
        let work = Array.of_list !work in
        Obs.add c_resim (Array.length work);
        let hit = Array.make (Array.length work) false in
        Par.parallel_for pool ~chunk:1 ~label:"faulty-sim" ~n:(Array.length work)
          (fun w ->
            let fi, k = work.(w) in
            let site = sites.(fi) in
            let faulty =
              match engine with
              | Full ->
                Timing_sim.simulate ~extra_delay:(extra_of site) ~library
                  ~model nl vectors.(base + k)
              | Cone ->
                Timing_sim.resimulate_cone ~library ~model nl ~base:ff.(k)
                  ~cone:(Netlist.fanout_cone nl site.Fault.victim)
                  ~extra_delay:(extra_of site)
            in
            hit.(w) <- observable nl site ff.(k) faulty clock_period);
        Array.iteri
          (fun w (fi, k) ->
            if hit.(w) then best.(fi) <- min best.(fi) (base + k))
          work;
        vi := base + bn
      done);
  let detected = ref [] in
  let undetected = ref [] in
  for fi = nsites - 1 downto 0 do
    if best.(fi) = max_int then undetected := fi :: !undetected
    else detected := (fi, best.(fi)) :: !detected
  done;
  (* report in the sequential walk's chronological order: by detecting
     vector, then by site index within one vector *)
  let detected =
    List.sort
      (fun (f1, v1) (f2, v2) -> compare (v1, f1) (v2, f2))
      !detected
  in
  Obs.add (Obs.counter obs "faultsim.detected") (List.length detected);
  Obs.add (Obs.counter obs "faultsim.undetected") (List.length !undetected);
  {
    coverage =
      (if nsites = 0 then 0.
       else
         100. *. float_of_int (List.length detected) /. float_of_int nsites);
    detected;
    undetected = !undetected;
  }

let simulate ?(jobs = 1) ?(engine = Cone) ?(obs = Obs.disabled) ~library
    ~model ~clock_period nl sites vectors =
  simulate_with ~engine
    (Run_opts.make ~jobs ~obs ())
    ~library ~model ~clock_period nl sites vectors

let random_vectors ~seed ~count nl =
  let rng = Rng.create seed in
  let npi = List.length (Netlist.inputs nl) in
  List.init count (fun _ ->
      Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)))
