(** Timing-based ATPG for crosstalk delay faults (paper Section 7).

    The generator realizes the four components the paper prescribes:
    (1) a delay model able to handle min-max ranges (the proposed model,
    via ITR), (2) fault excitation conditions at the site, (3) a
    branch-and-bound search over two-frame PI assignments with
    implication, and (4) ITR re-computation after each assignment, used
    to prune branches whose timing windows can no longer align the
    aggressor and victim transitions — the pruning that lifts ATPG
    efficiency in the paper's experiment.

    Detection criterion: under the generated vector pair, aggressor and
    victim switch in the required directions with arrival times within
    the alignment window; the fault-free circuit meets the clock period,
    and with the victim slowed by the fault's delta the latest
    primary-output arrival shifts by at least δ/2 — i.e. the fault effect
    observably propagates to a primary output (our stand-in for the
    paper's "primary output or flip-flop with setup time violation"). *)

type outcome =
  | Detected of (bool * bool) array  (** PI vector pair, PI rank order *)
  | Undetectable                     (** search space exhausted *)
  | Aborted                          (** backtrack budget exceeded *)

type config = {
  use_itr : bool;
  max_expansions : int;
      (** search-effort budget in decision-node expansions; a pruned
          branch costs only the decisions made before the prune *)
  fill_tries : int;       (** random completions attempted per leaf *)
  clock_period : float;
  seed : int64;
}

val default_config : clock_period:float -> config
(** ITR enabled, 2500 expansions, 3 fills. *)

type fault_result = {
  site : Fault.site;
  outcome : outcome;
  expansions : int;
  descents : int;
  wall : float;
}

type stats = {
  total : int;
  detected : int;
  undetectable : int;
  aborted : int;
  total_expansions : int;
  total_descents : int;
  total_wall : float;
}

val generate :
  config ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  Fault.site ->
  fault_result

val run_with :
  Ssd_sta.Run_opts.t ->
  config ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  Fault.site list ->
  fault_result list * stats
(** Run {!generate} over every site.  [opts.jobs] fans the independent
    per-site searches across a domain pool ([1] keeps the strict
    sequential walk; [<= 0] auto-selects); each site's search is
    deterministic in isolation (its Rng is seeded from the config), so
    results and stats are identical for every lane count — only
    [fault_result.wall] values reflect the actual schedule.

    [opts.obs] (default disabled) records per-fault search effort: each
    generation runs under an [atpg.fault] span (one trace event per
    fault), expansions and restarted descents accumulate into
    [atpg.expansions] / [atpg.descents], per-fault expansion counts feed
    the [atpg.expansions_per_fault] histogram (fixed range
    [0, max_expansions] so runs merge), and outcomes split into
    [atpg.detected] / [atpg.undetectable] / [atpg.aborted].
    [opts.cache] and [opts.pi_spec] are unused here: the search fixes
    the point PI spec test generation requires. *)

val run :
  ?obs:Ssd_obs.Obs.t ->
  config ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  Fault.site list ->
  fault_result list * stats
(** Thin sequential wrapper over {!run_with} kept for source
    compatibility ([obs] is bundled through {!Ssd_sta.Run_opts.make}).
    Deprecated in favour of {!run_with}. *)

val efficiency : stats -> float
(** (detected + undetectable) / total × 100 — the paper's metric. *)

val verify_detection :
  config ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  Fault.site ->
  (bool * bool) array ->
  bool
(** Independent re-check of a generated test (used by the test suite). *)
