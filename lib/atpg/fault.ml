module Netlist = Ssd_circuit.Netlist
module Rng = Ssd_util.Rng
module Value2f = Ssd_itr.Value2f

type site = {
  aggressor : int;
  victim : int;
  agg_tr : Value2f.transition;
  vic_tr : Value2f.transition;
  delta : float;
  align_window : float;
}

let tr_name = function Value2f.Rise -> "rise" | Value2f.Fall -> "fall"

let describe nl s =
  Printf.sprintf "xtalk %s(%s) -> %s(%s), delta=%.0fps, w=%.0fps"
    (Netlist.signal_name nl s.aggressor)
    (tr_name s.agg_tr)
    (Netlist.signal_name nl s.victim)
    (tr_name s.vic_tr)
    (s.delta *. 1e12)
    (s.align_window *. 1e12)

let extract ?(count = 32) ?(delta = 200e-12) ?(align_window = 300e-12)
    ?max_level_diff ~seed nl =
  let rng = Rng.create seed in
  let n = Netlist.size nl in
  let gate_ids =
    List.filter
      (fun i -> match Netlist.node nl i with Netlist.Pi -> false | _ -> true)
      (List.init n Fun.id)
  in
  let gate_arr = Array.of_list gate_ids in
  if Array.length gate_arr < 2 then []
  else begin
    let depth = Netlist.depth nl in
    (* victims biased to the deep quarter of the circuit so their slowed
       transition has a short distance to a primary output *)
    let victims =
      List.filter (fun i -> 4 * Netlist.level nl i >= 3 * depth) gate_ids
      |> Array.of_list
    in
    let victims = if Array.length victims = 0 then gate_arr else victims in
    let in_cone_of a b =
      (* true when a is in b's transitive fan-in or fan-out *)
      List.mem a (Netlist.transitive_fanin nl b)
      || List.mem a (Netlist.transitive_fanout nl b)
    in
    let sites = ref [] in
    let attempts = ref 0 in
    while List.length !sites < count && !attempts < count * 40 do
      incr attempts;
      let victim = Rng.pick rng victims in
      let aggressor = Rng.pick rng gate_arr in
      let level_ok =
        match max_level_diff with
        | None -> true
        | Some d -> abs (Netlist.level nl victim - Netlist.level nl aggressor) <= d
      in
      if
        aggressor <> victim && level_ok
        && (not (in_cone_of aggressor victim))
        && not
             (List.exists
                (fun s -> s.aggressor = aggressor && s.victim = victim)
                !sites)
      then begin
        let vic_tr = if Rng.bool rng then Value2f.Rise else Value2f.Fall in
        let agg_tr =
          match vic_tr with Value2f.Rise -> Value2f.Fall | Value2f.Fall -> Value2f.Rise
        in
        sites :=
          { aggressor; victim; agg_tr; vic_tr; delta; align_window } :: !sites
      end
    done;
    List.rev !sites
  end

module Timing_sim = Ssd_sta.Timing_sim
module Types = Ssd_core.Types

let extract_screened ?(count = 32) ?(delta = 200e-12) ?(align_window = 300e-12)
    ?(samples = 150) ~seed ~library ~model nl =
  let rng = Rng.create seed in
  let npi = List.length (Netlist.inputs nl) in
  let sims =
    List.init samples (fun _ ->
        let vec = Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)) in
        Timing_sim.simulate ~library ~model nl vec)
  in
  let n = Netlist.size nl in
  let gate_ids =
    List.filter
      (fun i -> match Netlist.node nl i with Netlist.Pi -> false | _ -> true)
      (List.init n Fun.id)
  in
  let gate_arr = Array.of_list gate_ids in
  if Array.length gate_arr < 2 then []
  else begin
    let depth = Netlist.depth nl in
    let victims =
      List.filter (fun i -> 4 * Netlist.level nl i >= 3 * depth) gate_ids
      |> Array.of_list
    in
    let victims = if Array.length victims = 0 then gate_arr else victims in
    let in_cone_of a b =
      List.mem a (Netlist.transitive_fanin nl b)
      || List.mem a (Netlist.transitive_fanout nl b)
    in
    (* find a witnessed opposite-direction co-transition of the pair *)
    let witness aggressor victim =
      let rec scan = function
        | [] -> None
        | lines :: rest ->
          let close =
            Timing_sim.has_event lines aggressor
            && Timing_sim.has_event lines victim
            && Float.abs
                 (Timing_sim.event_arr lines aggressor
                 -. Timing_sim.event_arr lines victim)
               <= 1.5 *. align_window
          in
          if
            close
            && Timing_sim.rising_at lines victim
            && Timing_sim.falling_at lines aggressor
          then Some (Value2f.Fall, Value2f.Rise)
          else if
            close
            && Timing_sim.falling_at lines victim
            && Timing_sim.rising_at lines aggressor
          then Some (Value2f.Rise, Value2f.Fall)
          else scan rest
      in
      scan sims
    in
    let sites = ref [] in
    let attempts = ref 0 in
    while List.length !sites < count && !attempts < count * 120 do
      incr attempts;
      let victim = Rng.pick rng victims in
      let aggressor = Rng.pick rng gate_arr in
      if
        aggressor <> victim
        && (not (in_cone_of aggressor victim))
        && not
             (List.exists
                (fun s -> s.aggressor = aggressor && s.victim = victim)
                !sites)
      then begin
        match witness aggressor victim with
        | Some (agg_tr, vic_tr) ->
          sites :=
            { aggressor; victim; agg_tr; vic_tr; delta; align_window }
            :: !sites
        | None -> ()
      end
    done;
    List.rev !sites
  end
