module Interval = Ssd_util.Interval
module Rng = Ssd_util.Rng
module Types = Ssd_core.Types
module Netlist = Ssd_circuit.Netlist
module Timing_sim = Ssd_sta.Timing_sim
module Value2f = Ssd_itr.Value2f
module Implication = Ssd_itr.Implication
module Itr = Ssd_itr.Itr
module Obs = Ssd_obs.Obs

type outcome =
  | Detected of (bool * bool) array
  | Undetectable
  | Aborted

type config = {
  use_itr : bool;
  max_expansions : int;
      (** search-effort budget in decision-node expansions: every PI value
          decision costs one unit, so a branch pruned after k decisions
          costs k while a full descent costs the whole cone — this is what
          makes ITR pruning pay off, as in the paper *)
  fill_tries : int;
  clock_period : float;
  seed : int64;
}

let default_config ~clock_period =
  {
    use_itr = true;
    max_expansions = 2500;
    fill_tries = 3;
    clock_period;
    seed = 20010618L;
  }

type fault_result = {
  site : Fault.site;
  outcome : outcome;
  expansions : int;
  descents : int;
  wall : float;
}

type stats = {
  total : int;
  detected : int;
  undetectable : int;
  aborted : int;
  total_expansions : int;
  total_descents : int;
  total_wall : float;
}

(* search state: with ITR we carry the timing windows, otherwise only the
   logic implication state *)
type search_state =
  | With_itr of Itr.t
  | Logic_only of Implication.t

let state_copy = function
  | With_itr t -> With_itr (Itr.copy t)
  | Logic_only t -> Logic_only (Implication.copy t)

let state_assign st i v =
  match st with
  | With_itr t -> Itr.assign t i v
  | Logic_only t -> Implication.assign_opt t i v <> None

let state_impl = function
  | With_itr t -> Itr.implication t
  | Logic_only t -> t

(* Gap between the aggressor and victim transition windows: negative or
   zero when the windows overlap, [infinity] when either transition has
   become impossible.  The branch is infeasible (sound prune) when the gap
   exceeds the coupling alignment window. *)
let alignment_gap itr (site : Fault.site) =
  let window_of tr i =
    match tr with
    | Value2f.Rise -> Itr.rise_window itr i
    | Value2f.Fall -> Itr.fall_window itr i
  in
  match
    ( window_of site.Fault.agg_tr site.Fault.aggressor,
      window_of site.Fault.vic_tr site.Fault.victim )
  with
  | None, _ | _, None -> infinity
  | Some wa, Some wv ->
    let a = wa.Types.w_arr and v = wv.Types.w_arr in
    Float.max
      (Interval.lo a -. Interval.hi v)
      (Interval.lo v -. Interval.hi a)

let windows_can_align itr site =
  alignment_gap itr site <= site.Fault.align_window

(* guidance heuristic: expected misalignment of the two transitions, taken
   as the distance between the window midpoints (0 when either window is
   missing — such branches are pruned separately) *)
let _expected_misalignment itr (site : Fault.site) =
  let window_of tr i =
    match tr with
    | Value2f.Rise -> Itr.rise_window itr i
    | Value2f.Fall -> Itr.fall_window itr i
  in
  match
    ( window_of site.Fault.agg_tr site.Fault.aggressor,
      window_of site.Fault.vic_tr site.Fault.victim )
  with
  | None, _ | _, None -> infinity
  | Some wa, Some wv ->
    Float.abs
      (Interval.mid wa.Types.w_arr -. Interval.mid wv.Types.w_arr)

let prune_ok st site =
  match st with
  | With_itr itr -> windows_can_align itr site
  | Logic_only _ -> true

exception Budget_exhausted

exception Found of (bool * bool) array

exception Slice_exhausted

(* The fault effect is observable when some primary output's arrival
   shifts by at least half the coupling delta while the fault-free value
   of that output still meets the clock — the delayed victim transition
   reached an output where a tester clocked at the period would catch
   it. *)
let observable_shift nl (site : Fault.site) faultfree faulty clock =
  List.exists
    (fun po ->
      Timing_sim.has_event faultfree po
      && Timing_sim.has_event faulty po
      &&
      let ff = Timing_sim.event_arr faultfree po in
      ff <= clock
      && Timing_sim.event_arr faulty po -. ff >= 0.45 *. site.Fault.delta)
    (Netlist.outputs nl)

(* full-vector evaluation at a search leaf *)
let evaluate_leaf ~library ~model ~cfg nl (site : Fault.site) impl =
  let pis = Netlist.inputs nl in
  let vector =
    List.map
      (fun i ->
        match Implication.value impl i with
        | { Value2f.f1 = Value2f.One; f2 = Value2f.One } -> (true, true)
        | { f1 = Value2f.One; f2 = Value2f.Zero } -> (true, false)
        | { f1 = Value2f.Zero; f2 = Value2f.One } -> (false, true)
        | { f1 = Value2f.Zero; f2 = Value2f.Zero } -> (false, false)
        | _ -> raise Exit)
      pis
  in
  match vector with
  | exception Exit -> None
  | v ->
    let vector = Array.of_list v in
    let lines = Timing_sim.simulate ~library ~model nl vector in
    let want tr i =
      match tr with
      | Value2f.Rise -> Timing_sim.rising_at lines i
      | Value2f.Fall -> Timing_sim.falling_at lines i
    in
    let a = site.Fault.aggressor and v = site.Fault.victim in
    if not (want site.Fault.agg_tr a && want site.Fault.vic_tr v) then None
    else if
      Timing_sim.has_event lines a
      && Timing_sim.has_event lines v
      && Float.abs (Timing_sim.event_arr lines a -. Timing_sim.event_arr lines v)
         <= site.Fault.align_window
    then begin
      let faulty_lines =
        Timing_sim.simulate
          ~extra_delay:(fun i ->
            if i = site.Fault.victim then site.Fault.delta else 0.)
          ~library ~model nl vector
      in
      if observable_shift nl site lines faulty_lines cfg.clock_period then
        Some vector
      else None
    end
    else None

(* Paths from the victim to any primary output, shortest first, capped.
   Sensitizing one of them (side inputs steady at the non-controlling
   value) guarantees the victim's delayed transition propagates: the path
   gates then respond only to the victim's event. *)
let paths_to_po ?(max_paths = 6) nl victim =
  let pos = Netlist.outputs nl in
  let is_po i = List.mem i pos in
  let acc = ref [] in
  let rec dfs node path =
    if List.length !acc >= max_paths then ()
    else begin
      let path = node :: path in
      if is_po node then acc := List.rev path :: !acc
      else
        Array.iter (fun g -> dfs g path) (Netlist.fanout nl node)
    end
  in
  dfs victim [];
  List.sort (fun a b -> compare (List.length a) (List.length b)) !acc

(* Steady side-input objectives along a sensitized path: every fan-in of a
   path gate that is not the incoming path line is held at the gate's
   non-controlling value in both frames. *)
let side_objectives nl path =
  let rec walk acc = function
    | [] | [ _ ] -> acc
    | from_line :: (gate :: _ as rest) ->
      let acc =
        match Netlist.node nl gate with
        | Netlist.Pi -> acc
        | Netlist.Gate { kind; fanin } ->
          let steady =
            match Ssd_circuit.Gate.controlling_value kind with
            | Some cv -> Some (Value2f.steady (not cv))
            | None -> None
          in
          (match steady with
          | None -> acc
          | Some v ->
            Array.fold_left
              (fun acc j -> if j = from_line then acc else (j, v) :: acc)
              acc fanin)
      in
      walk acc rest
  in
  walk [] path

let generate cfg ~library ~model nl (site : Fault.site) =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create cfg.seed in
  let expansions = ref 0 in
  let descents = ref 0 in
  let slice_left = ref 0 in
  let charge () =
    incr expansions;
    if !expansions > cfg.max_expansions then raise Budget_exhausted;
    decr slice_left;
    if !slice_left < 0 then raise Slice_exhausted
  in
  let fanin_pis i =
    List.filter
      (fun j -> Netlist.node nl j = Netlist.Pi)
      (i :: Netlist.transitive_fanin nl i)
  in
  let all_pis = Netlist.inputs nl in
  let full_values =
    [|
      { Value2f.f1 = Value2f.Zero; f2 = Value2f.One };
      { Value2f.f1 = Value2f.One; f2 = Value2f.Zero };
      { Value2f.f1 = Value2f.One; f2 = Value2f.One };
      { Value2f.f1 = Value2f.Zero; f2 = Value2f.Zero };
    |]
  in
  (* test generation knows the tester's launch time and slew exactly, so
     the PI windows are points (matching Timing_sim's defaults); all
     remaining window width comes from the unresolved logic *)
  let pi_spec =
    {
      Ssd_sta.Sta.pi_arrival = Interval.point 0.;
      pi_tt = Interval.point 0.25e-9;
    }
  in
  let init_state () =
    if cfg.use_itr then
      With_itr
        (Itr.create ~pi_spec
           ~focus:[ site.Fault.aggressor; site.Fault.victim ]
           ~library ~model nl)
    else Logic_only (Implication.create nl)
  in
  (* Set up the excitation + sensitization objectives for one victim->PO
     path.  None when the objectives are contradictory (a sound
     undetectability argument for this path). *)
  let setup_path path =
    let st0 = init_state () in
    let ok =
      state_assign st0 site.Fault.victim (Value2f.requires site.Fault.vic_tr)
      && state_assign st0 site.Fault.aggressor
           (Value2f.requires site.Fault.agg_tr)
      && List.for_all
           (fun (line, v) -> state_assign st0 line v)
           (side_objectives nl path)
    in
    if not ok then None
    else if not (prune_ok st0 site) then None
    else begin
      let cone =
        List.sort_uniq compare
          (fanin_pis site.Fault.aggressor
          @ fanin_pis site.Fault.victim
          @ List.concat_map
              (fun (line, _) -> fanin_pis line)
              (side_objectives nl path))
      in
      let others = List.filter (fun i -> not (List.mem i cone)) all_pis in
      Some (st0, cone, others)
    end
  in
  (* Depth-first search over the decision PIs.  At every node the
     consistent values are expanded (one expansion charge); with ITR the
     branches whose fault-site windows can no longer align are pruned —
     cutting the whole subtree, which is where the refinement pays — and
     the surviving children are visited in order of expected
     misalignment.  Without ITR the order is random. *)
  let dfs_path (st0, cone, others) =
    let complete_and_evaluate st =
      let rec fills k =
        if k >= max 1 cfg.fill_tries then None
        else begin
          let impl = Implication.copy (state_impl st) in
          let ok =
            List.for_all
              (fun pi ->
                let cur = Implication.value impl pi in
                if Value2f.is_fully_specified cur then true
                else begin
                  let order = Array.copy full_values in
                  Rng.shuffle rng order;
                  Array.exists
                    (fun v ->
                      match Value2f.meet cur v with
                      | None -> false
                      | Some _ -> Implication.assign_opt impl pi v <> None)
                    order
                end)
              others
          in
          if ok then begin
            match evaluate_leaf ~library ~model ~cfg nl site impl with
            | Some vector -> Some vector
            | None -> fills (k + 1)
          end
          else fills (k + 1)
        end
      in
      fills 0
    in
    let rec walk st = function
      | [] -> (
        match complete_and_evaluate st with
        | Some vector -> raise (Found vector)
        | None -> ())
      | pi :: rest ->
        let current = Implication.value (state_impl st) pi in
        if Value2f.is_fully_specified current then walk st rest
        else begin
          charge ();
          let order = Array.copy full_values in
          Rng.shuffle rng order;
          let children = ref [] in
          Array.iter
            (fun v ->
              match Value2f.meet current v with
              | None -> ()
              | Some _ ->
                let st' = state_copy st in
                if state_assign st' pi v then begin
                  match st' with
                  | With_itr itr ->
                    (* sound subtree prune: no completion can align the
                       aggressor and victim transitions any more *)
                    if alignment_gap itr site <= site.Fault.align_window then
                      children := st' :: !children
                  | Logic_only _ -> children := st' :: !children
                end)
            order;
          List.iter (fun st' -> walk st' rest) (List.rev !children)
        end
    in
    walk (state_copy st0) cone
  in
  let result = ref None in
  let paths = paths_to_po nl site.Fault.victim in
  (match paths with
  | [] -> result := Some Undetectable
  | _ ->
    let setups = List.filter_map setup_path paths in
    if setups = [] then
      (* every sensitizable path is contradictory (logically or by the ITR
         alignment windows): proven undetectable *)
      result := Some Undetectable
    else begin
      let n_setups = List.length setups in
      let setups = Array.of_list setups in
      (* Restarted DFS: each slice runs a depth-first search with subtree
         pruning under a fresh random value order; the restarts provide
         the diversity a single DFS lacks, the DFS inside a slice lets a
         prune cut a whole subtree. *)
      (try
         let slice = 100 in
         while !result = None do
           if !expansions >= cfg.max_expansions then raise Budget_exhausted;
           let setup = setups.(Rng.int rng n_setups) in
           incr descents;
           slice_left := slice;
           (try dfs_path setup with
           | Found vector -> result := Some (Detected vector)
           | Slice_exhausted -> ())
         done
       with Budget_exhausted -> result := Some Aborted)
    end);
  {
    site;
    outcome = Option.value !result ~default:Aborted;
    expansions = !expansions;
    descents = !descents;
    wall = Unix.gettimeofday () -. t0;
  }

(* Per-site generation is independent — each site search carries its own
   Rng (seeded from the config) and implication state, and only reads the
   shared netlist/library — so sites can fan out across the domain pool.
   Results land in a per-site slot and telemetry is recorded afterwards
   in site order, making the output independent of the lane schedule. *)
let run_with (opts : Ssd_sta.Run_opts.t) cfg ~library ~model nl sites =
  let obs = opts.Ssd_sta.Run_opts.obs in
  let tm_fault = Obs.timer obs "atpg.fault" in
  let h_exp =
    Obs.histogram ~bins:16 ~lo:0.
      ~hi:(float_of_int (max 1 cfg.max_expansions))
      obs "atpg.expansions_per_fault"
  in
  let sites_a = Array.of_list sites in
  let slots = Array.make (Array.length sites_a) None in
  let eval i =
    slots.(i) <-
      Some
        (Obs.span obs tm_fault (fun () ->
             generate cfg ~library ~model nl sites_a.(i)))
  in
  (if opts.Ssd_sta.Run_opts.jobs = 1 then
     Array.iteri (fun i _ -> eval i) sites_a
   else
     Ssd_sta.Par.with_pool ~obs ~jobs:opts.Ssd_sta.Run_opts.jobs (fun pool ->
         Ssd_sta.Par.parallel_for pool ~chunk:1 ~label:"atpg"
           ~n:(Array.length sites_a) eval));
  let results =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false)
         slots)
  in
  List.iter
    (fun r ->
      Obs.add (Obs.counter obs "atpg.expansions") r.expansions;
      Obs.add (Obs.counter obs "atpg.descents") r.descents;
      Obs.observe h_exp (float_of_int r.expansions);
      Obs.incr
        (Obs.counter obs
           (match r.outcome with
           | Detected _ -> "atpg.detected"
           | Undetectable -> "atpg.undetectable"
           | Aborted -> "atpg.aborted")))
    results;
  let stats =
    List.fold_left
      (fun s r ->
        {
          total = s.total + 1;
          detected =
            (s.detected + match r.outcome with Detected _ -> 1 | _ -> 0);
          undetectable =
            (s.undetectable
            + match r.outcome with Undetectable -> 1 | _ -> 0);
          aborted = (s.aborted + match r.outcome with Aborted -> 1 | _ -> 0);
          total_expansions = s.total_expansions + r.expansions;
          total_descents = s.total_descents + r.descents;
          total_wall = s.total_wall +. r.wall;
        })
      {
        total = 0;
        detected = 0;
        undetectable = 0;
        aborted = 0;
        total_expansions = 0;
        total_descents = 0;
        total_wall = 0.;
      }
      results
  in
  (results, stats)

let run ?(obs = Obs.disabled) cfg ~library ~model nl sites =
  run_with (Ssd_sta.Run_opts.make ~obs ()) cfg ~library ~model nl sites

let efficiency s =
  if s.total = 0 then 0.
  else 100. *. float_of_int (s.detected + s.undetectable) /. float_of_int s.total

let verify_detection cfg ~library ~model nl (site : Fault.site) vector =
  let lines = Timing_sim.simulate ~library ~model nl vector in
  let want tr i =
    match tr with
    | Value2f.Rise -> Timing_sim.rising_at lines i
    | Value2f.Fall -> Timing_sim.falling_at lines i
  in
  let a = site.Fault.aggressor and v = site.Fault.victim in
  want site.Fault.agg_tr a && want site.Fault.vic_tr v
  && Timing_sim.has_event lines a
  && Timing_sim.has_event lines v
  && Float.abs (Timing_sim.event_arr lines a -. Timing_sim.event_arr lines v)
     <= site.Fault.align_window
  &&
  let faulty =
    Timing_sim.simulate
      ~extra_delay:(fun i ->
        if i = site.Fault.victim then site.Fault.delta else 0.)
      ~library ~model nl vector
  in
  observable_shift nl site lines faulty cfg.clock_period
