(** Crosstalk delay fault simulation.

    Given a set of two-pattern vectors (e.g. a generated test set, or
    random patterns for comparison), determine which faults of a list each
    vector detects, with fault dropping.  The expensive faulty-circuit
    timing evaluation runs only for faults whose excitation and alignment
    conditions already hold under the shared fault-free simulation of the
    vector — and, with the default {!Cone} engine, re-times only the
    victim's transitive fanout cone instead of the whole circuit
    ({!Ssd_sta.Timing_sim.resimulate_cone}).  Surviving (site, vector)
    evaluations fan out across an {!Ssd_sta.Par} domain pool. *)

type engine =
  | Full  (** re-simulate the entire circuit per faulty evaluation — the
              pre-incremental baseline, kept for the [faultsim] bench *)
  | Cone  (** cone-restricted incremental re-simulation (default) *)

type result = {
  coverage : float;             (** detected / total, percent *)
  detected : (int * int) list;  (** (fault index, detecting vector index) *)
  undetected : int list;        (** fault indices left undetected *)
}

val simulate :
  ?jobs:int ->
  ?engine:engine ->
  ?obs:Ssd_obs.Obs.t ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  clock_period:float ->
  Ssd_circuit.Netlist.t ->
  Fault.site list ->
  (bool * bool) array list ->
  result
(** [jobs] (default 1: sequential) is the lane count of the domain pool
    the fault-free simulations and the surviving faulty evaluations are
    fanned across; [jobs <= 0] picks the recommended domain count.
    Results are identical for every [jobs] and [engine] combination:
    fault dropping records each site's {e earliest} detecting vector
    index, so the parallel block schedule folds back to exactly the
    sequential walk's [detected] / [coverage] / [undetected].

    [obs] (default disabled) counts the screening economics per (site,
    vector) pair — [faultsim.screened_out] (excitation/alignment failed
    under the fault-free run), [faultsim.dropped] (site already
    detected), [faultsim.resim] (survivors that paid for a faulty
    evaluation) — plus [faultsim.ff_sims] fault-free runs and the final
    [faultsim.detected] / [faultsim.undetected] split; the pool adds
    its lane-utilization counters.  Telemetry never changes results. *)

val random_vectors :
  seed:int64 -> count:int -> Ssd_circuit.Netlist.t -> (bool * bool) array list
(** Deterministic random two-pattern vectors (for coverage baselines). *)
