(** Crosstalk delay fault simulation.

    Given a set of two-pattern vectors (e.g. a generated test set, or
    random patterns for comparison), determine which faults of a list each
    vector detects, with fault dropping.  The expensive faulty-circuit
    timing simulation runs only for faults whose excitation and alignment
    conditions already hold under the fault-free simulation of the
    vector. *)

type result = {
  coverage : float;             (** detected / total, percent *)
  detected : (int * int) list;  (** (fault index, detecting vector index) *)
  undetected : int list;        (** fault indices left undetected *)
}

val simulate :
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  clock_period:float ->
  Ssd_circuit.Netlist.t ->
  Fault.site list ->
  (bool * bool) array list ->
  result

val random_vectors :
  seed:int64 -> count:int -> Ssd_circuit.Netlist.t -> (bool * bool) array list
(** Deterministic random two-pattern vectors (for coverage baselines). *)
