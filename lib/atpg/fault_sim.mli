(** Crosstalk delay fault simulation.

    Given a set of two-pattern vectors (e.g. a generated test set, or
    random patterns for comparison), determine which faults of a list each
    vector detects, with fault dropping.  The expensive faulty-circuit
    timing evaluation runs only for faults whose excitation and alignment
    conditions already hold under the shared fault-free simulation of the
    vector — and, with the default {!Cone} engine, re-times only the
    victim's transitive fanout cone instead of the whole circuit
    ({!Ssd_sta.Timing_sim.resimulate_cone}).  Surviving (site, vector)
    evaluations fan out across an {!Ssd_sta.Par} domain pool. *)

type engine =
  | Full  (** re-simulate the entire circuit per faulty evaluation — the
              pre-incremental baseline, kept for the [faultsim] bench *)
  | Cone  (** cone-restricted incremental re-simulation (default) *)

type result = {
  coverage : float;             (** detected / total, percent *)
  detected : (int * int) list;  (** (fault index, detecting vector index) *)
  undetected : int list;        (** fault indices left undetected *)
}

val simulate_with :
  ?engine:engine ->
  ?window_screen:bool ->
  Ssd_sta.Run_opts.t ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  clock_period:float ->
  Ssd_circuit.Netlist.t ->
  Fault.site list ->
  (bool * bool) array list ->
  result
(** [opts.jobs] (default 1: sequential) is the lane count of the domain
    pool the fault-free simulations and the surviving faulty evaluations
    are fanned across; [jobs <= 0] picks the recommended domain count.
    Results are identical for every [jobs], [engine] and [window_screen]
    combination: fault dropping records each site's {e earliest}
    detecting vector index, so the parallel block schedule folds back to
    exactly the sequential walk's [detected] / [coverage] /
    [undetected].

    [window_screen] (default on) first discards sites that no vector can
    detect, decided on STA windows alone through one incremental
    {!Ssd_sta.Engine} session: per site, a [Set_extra_delay] edit slows
    the victim by the site's delta, the alignment and observability
    conditions are checked on the resulting windows, and the edit is
    reverted — no per-vector work.  The screen is sound (every
    {!Ssd_sta.Timing_sim} event lies inside its line's direction-specific
    STA window, with or without the fault, under the point PI assumptions
    of the simulator — which is why the screen pins
    {!Ssd_sta.Run_opts.default_pi_spec} rather than [opts.pi_spec]), so
    it never changes the result, only the number of sites that pay for
    vector evaluation.  [opts.pi_spec] is otherwise unused: vector
    simulation runs at {!Ssd_sta.Timing_sim.simulate}'s point defaults.

    [opts.obs] (default disabled) counts the screening economics —
    [faultsim.window_screened] sites discarded up front, then per (site,
    vector) pair [faultsim.screened_out] (excitation/alignment failed
    under the fault-free run), [faultsim.dropped] (site already
    detected), [faultsim.resim] (survivors that paid for a faulty
    evaluation) — plus [faultsim.ff_sims] fault-free runs and the final
    [faultsim.detected] / [faultsim.undetected] split; the pool and the
    screening engine add their own counters.  Telemetry never changes
    results. *)

val simulate :
  ?jobs:int ->
  ?engine:engine ->
  ?obs:Ssd_obs.Obs.t ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  clock_period:float ->
  Ssd_circuit.Netlist.t ->
  Fault.site list ->
  (bool * bool) array list ->
  result
(** Thin wrapper over {!simulate_with} kept for source compatibility:
    the optional arguments are bundled through
    {!Ssd_sta.Run_opts.make}.  Deprecated in favour of
    {!simulate_with}. *)

val random_vectors :
  seed:int64 -> count:int -> Ssd_circuit.Netlist.t -> (bool * bool) array list
(** Deterministic random two-pattern vectors (for coverage baselines). *)
