(** Crosstalk delay faults (paper Section 7).

    A fault site couples an aggressor line to a victim line: when both
    carry transitions in opposite directions whose arrival times align
    within [align_window], the victim's transition is slowed by [delta].
    Real flows obtain sites from layout extraction; with no layout in this
    reproduction, sites are synthesized from topologically compatible line
    pairs (neither line in the other's cone, similar logic levels — the
    geometry-free analogue of routed neighbours). *)

type site = {
  aggressor : int;
  victim : int;
  agg_tr : Ssd_itr.Value2f.transition;
  vic_tr : Ssd_itr.Value2f.transition;  (** opposite of [agg_tr] *)
  delta : float;                        (** induced victim delay, s *)
  align_window : float;                 (** max |A_agg − A_vic|, s *)
}

val describe : Ssd_circuit.Netlist.t -> site -> string

val extract :
  ?count:int ->
  ?delta:float ->
  ?align_window:float ->
  ?max_level_diff:int ->
  seed:int64 ->
  Ssd_circuit.Netlist.t ->
  site list
(** Deterministic site selection ([count] defaults to 32, [delta] to
    200 ps, [align_window] to 300 ps).  Victims are biased toward deep
    (near-output) lines so a reasonable fraction of faults is
    detectable. *)

val extract_screened :
  ?count:int ->
  ?delta:float ->
  ?align_window:float ->
  ?samples:int ->
  seed:int64 ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  site list
(** Like {!extract} but keeps only pairs whose opposite transitions
    co-occur within 1.5× the alignment window in at least one of
    [samples] (default 150) random vector pairs — the timing-plausible
    pairs a layout extractor would report as coupled neighbours.  The
    transition directions of each site are taken from an observed
    co-occurrence. *)
