(** Analog circuit under construction: nodes, devices, sources.

    Node 0 is ground.  Nodes driven by a voltage source ("driven" nodes)
    have their voltage imposed by a PWL waveform; all remaining nodes are
    "free" and solved by the transient engine.  The builder is mutable;
    {!freeze} produces the immutable description consumed by
    {!Transient.simulate}. *)

type node = int

type element =
  | Mosfet of Device.params * node * node * node
      (** params, drain, gate, source *)
  | Cap of node * node * float  (** n1, n2, capacitance in F *)
  | Res of node * node * float  (** n1, n2, resistance in Ω *)

type t

val create : Tech.t -> t

val tech : t -> Tech.t

val ground : node
(** Always node 0. *)

val node : t -> string -> node
(** [node c name] returns the node registered under [name], creating it on
    first use.  Names are unique handles; "gnd" maps to ground. *)

val fresh_node : t -> string -> node
(** Create an anonymous internal node; [name] is a prefix for debugging. *)

val node_name : t -> node -> string

val vdd_node : t -> node
(** The supply node; created and driven at Vdd on first access. *)

val add_element : t -> element -> unit

val add_mosfet : t -> Device.params -> d:node -> g:node -> s:node -> unit
(** Adds the transistor plus its parasitic capacitances derived from
    [Tech]: gate–drain overlap cap, gate-to-ground cap, and junction caps
    at drain and source. *)

val add_cap : t -> node -> node -> float -> unit
val add_res : t -> node -> node -> float -> unit

val drive : t -> node -> Ssd_util.Pwl.t -> unit
(** Impose a waveform on a node.  Re-driving a node replaces its waveform. *)

val drive_dc : t -> node -> float -> unit

type frozen = {
  f_tech : Tech.t;
  n_nodes : int;
  elements : element list;
  driven : (node * Ssd_util.Pwl.t) list;
  names : string array;  (** index = node id *)
}

val freeze : t -> frozen

val node_count : t -> int
val element_count : t -> int
