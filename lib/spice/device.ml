type kind = Nmos | Pmos

type params = { kind : kind; w : float; l : float }

type eval = { id : float; gm : float; gds : float; gms : float }

let beta tech p =
  let k = match p.kind with Nmos -> tech.Tech.kn | Pmos -> tech.Tech.kp in
  k *. p.w /. p.l

(* Core level-1 equations for an N-type device with vds >= 0.
   Returns (id, gm, gds) w.r.t. the *local* (possibly swapped) terminals. *)
let eval_n beta vt lambda ~vgs ~vds =
  if vgs <= vt then (0., 0., 0.)
  else begin
    let vov = vgs -. vt in
    let clm = 1. +. (lambda *. vds) in
    if vds < vov then begin
      (* triode *)
      let id = beta *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. clm in
      let gm = beta *. vds *. clm in
      let gds =
        (beta *. (vov -. vds) *. clm)
        +. (beta *. ((vov *. vds) -. (0.5 *. vds *. vds)) *. lambda)
      in
      (id, gm, gds)
    end
    else begin
      (* saturation *)
      let id = 0.5 *. beta *. vov *. vov *. clm in
      let gm = beta *. vov *. clm in
      let gds = 0.5 *. beta *. vov *. vov *. lambda in
      (id, gm, gds)
    end
  end

let eval tech p ~vg ~vd ~vs =
  let b = beta tech p in
  match p.kind with
  | Nmos ->
    let lambda = tech.Tech.lambda_n and vt = tech.Tech.vtn in
    if vd >= vs then begin
      let id, gm, gds = eval_n b vt lambda ~vgs:(vg -. vs) ~vds:(vd -. vs) in
      { id; gm; gds; gms = -.gm -. gds }
    end
    else begin
      (* swapped: local drain = s, local source = d; current local-d→local-s
         is s→d, i.e. −(d→s). *)
      let id, gm, gds = eval_n b vt lambda ~vgs:(vg -. vd) ~vds:(vs -. vd) in
      (* id_nominal = −id_local; derivatives follow from the chain rule:
         vd appears as local source, vs as local drain. *)
      { id = -.id; gm = -.gm; gds = gm +. gds; gms = -.gds }
    end
  | Pmos ->
    (* Mirror through sign flips: treat (−v) as an N device with vt = −vtp. *)
    let lambda = tech.Tech.lambda_p and vt = -.tech.Tech.vtp in
    if vd <= vs then begin
      (* "on" orientation: source is the higher terminal *)
      let id, gm, gds = eval_n b vt lambda ~vgs:(vs -. vg) ~vds:(vs -. vd) in
      (* Channel current flows source→drain; nominal drain→source current is
         −id_local... we define id as nominal drain → source, so current
         into the drain node from the source is id_local; drain→source =
         −id_local. *)
      { id = -.id; gm; gds = gds; gms = -.gm -. gds }
    end
    else begin
      (* swapped: the nominal drain sits at the higher potential and acts as
         the source; vgs_eq = vd − vg, vds_eq = vd − vs, current flows
         nominal-drain → nominal-source, i.e. +id_local. *)
      let id, gm, gds = eval_n b vt lambda ~vgs:(vd -. vg) ~vds:(vd -. vs) in
      { id; gm = -.gm; gds = gm +. gds; gms = -.gds }
    end

let saturation_current tech p =
  let b = beta tech p in
  let vov =
    match p.kind with
    | Nmos -> tech.Tech.vdd -. tech.Tech.vtn
    | Pmos -> tech.Tech.vdd +. tech.Tech.vtp
  in
  0.5 *. b *. vov *. vov
