(** Value-change-dump (VCD) export of transient results.

    Node voltages are emitted as [real] variables, which waveform viewers
    (GTKWave and friends) render as analog traces — handy for inspecting
    the simultaneous-switching waveforms the delay model is fitted to. *)

val of_result :
  ?timescale_fs:int ->
  Circuit.frozen ->
  Transient.result ->
  nodes:Circuit.node list ->
  string
(** VCD text for the selected nodes (names from the circuit).
    [timescale_fs] defaults to 100 (0.1 ps resolution). *)

val write_file :
  ?timescale_fs:int ->
  Circuit.frozen ->
  Transient.result ->
  nodes:Circuit.node list ->
  string ->
  unit
