(** MOSFET large-signal model (Shichman–Hodges / SPICE level 1).

    The evaluation returns both the drain current and its partial
    derivatives, which the transient engine stamps into the Newton
    Jacobian.  Devices are treated as symmetric: when the nominal drain
    voltage is below the nominal source voltage the terminals are swapped
    internally so the same equations apply. *)

type kind = Nmos | Pmos

type params = {
  kind : kind;
  w : float;  (** channel width, m *)
  l : float;  (** channel length, m *)
}

type eval = {
  id : float;   (** channel current flowing nominal-drain → nominal-source, A *)
  gm : float;   (** ∂id/∂vg, S *)
  gds : float;  (** ∂id/∂vd, S *)
  gms : float;  (** ∂id/∂vs, S (equals −gm − gds for this model) *)
}

val eval : Tech.t -> params -> vg:float -> vd:float -> vs:float -> eval
(** Evaluate the device at the given absolute node voltages (bulk assumed
    tied to the rail: ground for NMOS, Vdd for PMOS; body effect is not
    modelled). *)

val saturation_current : Tech.t -> params -> float
(** |Id| at Vgs = Vds = full rail — a convenient drive-strength scale used
    by tests and by the equivalent-inverter baselines. *)

val beta : Tech.t -> params -> float
(** k' · W / L for the device. *)
