module Pwl = Ssd_util.Pwl

let arrival tech w ~rising =
  Pwl.first_crossing w ~rising (Tech.v_mid_frac *. tech.Tech.vdd)

let transition_time tech w ~rising =
  match
    Pwl.crossing_pair w ~rising ~low_frac:Tech.v_low_frac
      ~high_frac:Tech.v_high_frac ~v_lo:0. ~v_hi:tech.Tech.vdd
  with
  | None -> None
  | Some (t_first, t_second) -> Some (Float.abs (t_second -. t_first))

let swings_to tech w ~high =
  let v = Pwl.end_value w in
  let vdd = tech.Tech.vdd in
  if high then v > 0.95 *. vdd else v < 0.05 *. vdd

type edge = { e_arrival : float; e_transition : float }

let edge tech w ~rising =
  match (arrival tech w ~rising, transition_time tech w ~rising) with
  | Some a, Some t -> Some { e_arrival = a; e_transition = t }
  | _, _ -> None

let edge_exn tech w ~rising =
  match edge tech w ~rising with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf "Measure.edge_exn: no %s transition found"
         (if rising then "rising" else "falling"))
