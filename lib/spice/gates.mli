(** Transistor-level builders for the primitive gates under study.

    Input position follows the paper's convention: position 0 is the series
    transistor closest to the gate output (Figure 3), so a NAND's input 0
    gates the topmost NMOS of the pull-down stack and a NOR's input 0 gates
    the series PMOS adjacent to the output. *)

type io = {
  inputs : Circuit.node array;  (** index = input position *)
  output : Circuit.node;
}

val inverter : ?wn:float -> ?wp:float -> Circuit.t
  -> input:Circuit.node -> output:Circuit.node -> unit
(** Minimum-size by default. *)

val nand : ?wn:float -> ?wp:float -> Circuit.t -> name:string -> n:int -> io
(** [nand c ~name ~n] builds an [n]-input NAND ([n >= 1]); nodes are named
    ["<name>.in<i>"] and ["<name>.out"].  Internal stack nodes get their
    junction capacitance from the transistor builder, which is what creates
    the input-position delay effect. *)

val nor : ?wn:float -> ?wp:float -> Circuit.t -> name:string -> n:int -> io

val attach_inverter_load : Circuit.t -> ?fanout:int -> ?extra_cap:float
  -> Circuit.node -> unit
(** Attach [fanout] (default 1) minimum-size inverters as a realistic load
    (their gate capacitance plus Miller kickback), each driving its own
    junction-loaded output node, plus [extra_cap] (default 0) of wiring
    capacitance to ground. *)

val falling_input : Tech.t -> arrival:float -> t_transition:float
  -> Ssd_util.Pwl.t
(** A Vdd→0 ramp whose 50 % crossing (the paper's arrival time) is at
    [arrival] and whose 10–90 % transition time is [t_transition].
    @raise Invalid_argument when the ramp would need to start before t = 0. *)

val rising_input : Tech.t -> arrival:float -> t_transition:float
  -> Ssd_util.Pwl.t

val steady : Tech.t -> level:bool -> Ssd_util.Pwl.t
(** Constant rail waveform: [level = true] is Vdd. *)
