(** Technology parameters for the transistor-level simulator.

    A 0.5 µm-flavoured parameter set standing in for the paper's
    "SPICE LEVEL 3 model and 0.5 µm technology".  The exact constants are
    not calibrated to any foundry; they are chosen so gate delays land in
    the paper's few-hundred-picosecond regime and so all the qualitative
    phenomena the delay model targets are present. *)

type t = {
  vdd : float;          (** supply voltage, V *)
  vtn : float;          (** NMOS threshold, V (positive) *)
  vtp : float;          (** PMOS threshold, V (negative) *)
  kn : float;           (** NMOS transconductance k' = µnCox, A/V² *)
  kp : float;           (** PMOS transconductance k' = µpCox, A/V² *)
  lambda_n : float;     (** NMOS channel-length modulation, 1/V *)
  lambda_p : float;     (** PMOS channel-length modulation, 1/V *)
  l_min : float;        (** drawn channel length, m *)
  wn_min : float;       (** minimum NMOS width, m *)
  wp_min : float;       (** minimum PMOS width, m *)
  cg_per_w : float;     (** gate capacitance per unit width (to bulk), F/m *)
  cgd_per_w : float;    (** gate–drain overlap (Miller) cap per width, F/m *)
  cj_per_w : float;     (** source/drain junction cap per width, F/m *)
  gmin : float;         (** convergence-aid conductance to ground, S *)
}

val default : t
(** The parameter set used by every experiment in this repository. *)

val v_low_frac : float
(** Fraction of Vdd defining the low measurement level (0.1). *)

val v_high_frac : float
(** Fraction of Vdd defining the high measurement level (0.9). *)

val v_mid_frac : float
(** Fraction of Vdd defining arrival times (0.5). *)
