(** Transient and DC analysis engine.

    Backward-Euler integration with a damped Newton–Raphson solve at every
    time step (dense Gaussian elimination; the gate circuits characterized
    here have at most a handful of free nodes).  DC operating points are
    found by the same Newton loop with capacitor currents suppressed and a
    gmin-stepping continuation for robustness. *)

exception Convergence_failure of string

type options = {
  h : float;            (** nominal time step, s *)
  t_stop : float;       (** simulation end time, s *)
  newton_tol : float;   (** convergence threshold on ‖Δv‖∞, V *)
  max_newton : int;     (** Newton iterations per step before subdividing *)
  dv_limit : float;     (** per-iteration voltage damping limit, V *)
  settle_window : float;
      (** stop early once all inputs are past their final breakpoint by this
          margin and the solution moves less than [settle_dv] per step;
          non-positive disables early exit *)
  settle_dv : float;
}

val default_options : options
(** h = 2 ps, t_stop = 5 ns, tol = 1 µV-scale, early settling enabled. *)

type result

val simulate : ?options:options -> Circuit.frozen -> result
(** Run from t = 0 with driven nodes following their waveforms and free
    nodes starting from the DC operating point of the t = 0 source values.
    @raise Convergence_failure if Newton diverges even after step
    subdivision. *)

val dc_operating_point : Circuit.frozen -> float array
(** Voltages (indexed by node id) with all sources at their t = 0 values. *)

val times : result -> float array
val voltage_at : result -> Circuit.node -> int -> float
val final_voltages : result -> float array
val waveform : result -> Circuit.node -> Ssd_util.Pwl.t
(** The simulated voltage waveform of any node (driven or free). *)

val step_count : result -> int
