(** Waveform post-processing: the paper's timing measurements.

    Arrival time A is the 50 % Vdd crossing; transition time T is the
    10 %–90 % span (Section 3, definitions). *)

val arrival : Tech.t -> Ssd_util.Pwl.t -> rising:bool -> float option
(** First 50 % crossing in the requested direction. *)

val transition_time : Tech.t -> Ssd_util.Pwl.t -> rising:bool -> float option
(** 10–90 % (rising) or 90–10 % (falling) span of the first full swing. *)

val swings_to : Tech.t -> Ssd_util.Pwl.t -> high:bool -> bool
(** True when the waveform's final value is within 5 % of the requested
    rail — used to validate that a stimulus actually produced the expected
    response before measuring it. *)

type edge = {
  e_arrival : float;         (** 50 % crossing, s *)
  e_transition : float;      (** 10–90 % span, s *)
}

val edge : Tech.t -> Ssd_util.Pwl.t -> rising:bool -> edge option
(** Both measurements, [None] when the waveform does not complete the
    requested transition. *)

val edge_exn : Tech.t -> Ssd_util.Pwl.t -> rising:bool -> edge
(** @raise Failure when the transition is absent. *)
