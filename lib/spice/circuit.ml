type node = int

type element =
  | Mosfet of Device.params * node * node * node
  | Cap of node * node * float
  | Res of node * node * float

type t = {
  c_tech : Tech.t;
  mutable next : int;
  mutable elements : element list;
  driven : (node, Ssd_util.Pwl.t) Hashtbl.t;
  by_name : (string, node) Hashtbl.t;
  mutable names_rev : (node * string) list;
  mutable vdd : node option;
}

let ground = 0

let create c_tech =
  let c =
    {
      c_tech;
      next = 1;
      elements = [];
      driven = Hashtbl.create 16;
      by_name = Hashtbl.create 16;
      names_rev = [ (0, "gnd") ];
      vdd = None;
    }
  in
  Hashtbl.replace c.by_name "gnd" 0;
  c

let tech c = c.c_tech

let alloc c name =
  let id = c.next in
  c.next <- c.next + 1;
  c.names_rev <- (id, name) :: c.names_rev;
  id

let node c name =
  match Hashtbl.find_opt c.by_name name with
  | Some n -> n
  | None ->
    let id = alloc c name in
    Hashtbl.replace c.by_name name id;
    id

let fresh_node c prefix = alloc c (Printf.sprintf "%s#%d" prefix c.next)

let node_name c n =
  match List.assoc_opt n c.names_rev with
  | Some s -> s
  | None -> Printf.sprintf "n%d" n

let drive c n w =
  if n = ground then invalid_arg "Circuit.drive: cannot drive ground";
  Hashtbl.replace c.driven n w

let drive_dc c n v = drive c n (Ssd_util.Pwl.constant v)

let vdd_node c =
  match c.vdd with
  | Some n -> n
  | None ->
    let n = node c "vdd" in
    drive_dc c n c.c_tech.Tech.vdd;
    c.vdd <- Some n;
    n

let add_element c e = c.elements <- e :: c.elements

let add_cap c n1 n2 v =
  if v < 0. then invalid_arg "Circuit.add_cap: negative capacitance";
  if n1 <> n2 && v > 0. then add_element c (Cap (n1, n2, v))

let add_res c n1 n2 v =
  if v <= 0. then invalid_arg "Circuit.add_res: non-positive resistance";
  if n1 <> n2 then add_element c (Res (n1, n2, v))

let add_mosfet c (p : Device.params) ~d ~g ~s =
  let t = c.c_tech in
  add_element c (Mosfet (p, d, g, s));
  (* Parasitics: overlap cap couples gate and drain (Miller); the remaining
     gate capacitance and the junction caps go to ground.  Widths scale all
     of them. *)
  add_cap c g d (t.Tech.cgd_per_w *. p.Device.w);
  add_cap c g ground (t.Tech.cg_per_w *. p.Device.w);
  add_cap c d ground (t.Tech.cj_per_w *. p.Device.w);
  add_cap c s ground (t.Tech.cj_per_w *. p.Device.w)

type frozen = {
  f_tech : Tech.t;
  n_nodes : int;
  elements : element list;
  driven : (node * Ssd_util.Pwl.t) list;
  names : string array;
}

let freeze c =
  let names = Array.make c.next "?" in
  List.iter
    (fun (n, s) -> if n < c.next then names.(n) <- s)
    c.names_rev;
  {
    f_tech = c.c_tech;
    n_nodes = c.next;
    elements = List.rev c.elements;
    driven = Hashtbl.fold (fun n w acc -> (n, w) :: acc) c.driven [];
    names;
  }

let node_count (c : t) = c.next
let element_count (c : t) = List.length c.elements
