module Pwl = Ssd_util.Pwl
module Linalg = Ssd_util.Linalg

exception Convergence_failure of string

type options = {
  h : float;
  t_stop : float;
  newton_tol : float;
  max_newton : int;
  dv_limit : float;
  settle_window : float;
  settle_dv : float;
}

let default_options =
  {
    h = 2e-12;
    t_stop = 5e-9;
    newton_tol = 1e-6;
    max_newton = 60;
    dv_limit = 0.6;
    settle_window = 0.2e-9;
    settle_dv = 1e-5;
  }

type result = {
  r_times : float array;
  (* r_volt.(step).(node) *)
  r_volt : float array array;
}

(* Workspace shared by DC and transient solves. *)
type ws = {
  frozen : Circuit.frozen;
  free_of_node : int array;  (* -1 when driven or ground *)
  node_of_free : int array;
  nf : int;
  jac : float array array;
  res : float array;
}

let make_ws (fz : Circuit.frozen) =
  let driven = Array.make fz.Circuit.n_nodes false in
  driven.(Circuit.ground) <- true;
  List.iter (fun (n, _) -> driven.(n) <- true) fz.Circuit.driven;
  let free_of_node = Array.make fz.Circuit.n_nodes (-1) in
  let node_of_free = ref [] in
  let nf = ref 0 in
  for n = 0 to fz.Circuit.n_nodes - 1 do
    if not driven.(n) then begin
      free_of_node.(n) <- !nf;
      node_of_free := n :: !node_of_free;
      incr nf
    end
  done;
  {
    frozen = fz;
    free_of_node;
    node_of_free = Array.of_list (List.rev !node_of_free);
    nf = !nf;
    jac = Linalg.zeros !nf !nf;
    res = Array.make !nf 0.;
  }

(* Assemble the residual (sum of currents leaving each free node) and its
   Jacobian at voltages [v].  When [h_inv] is 0 the capacitor currents are
   suppressed, which turns the system into the DC equations.  [gmin] is the
   convergence-aid conductance to ground on every free node. *)
let assemble ws ~v ~v_prev ~h_inv ~gmin =
  let fz = ws.frozen in
  let nf = ws.nf in
  for i = 0 to nf - 1 do
    ws.res.(i) <- 0.;
    Array.fill ws.jac.(i) 0 nf 0.
  done;
  let fmap = ws.free_of_node in
  let stamp_current n i = if fmap.(n) >= 0 then
      ws.res.(fmap.(n)) <- ws.res.(fmap.(n)) +. i
  in
  let stamp_jac n m g =
    if fmap.(n) >= 0 && fmap.(m) >= 0 then begin
      let i = fmap.(n) and j = fmap.(m) in
      ws.jac.(i).(j) <- ws.jac.(i).(j) +. g
    end
  in
  List.iter
    (fun el ->
      match el with
      | Circuit.Mosfet (p, d, g, s) ->
        let e = Device.eval fz.Circuit.f_tech p ~vg:v.(g) ~vd:v.(d) ~vs:v.(s) in
        stamp_current d e.Device.id;
        stamp_current s (-.e.Device.id);
        stamp_jac d d e.Device.gds;
        stamp_jac d g e.Device.gm;
        stamp_jac d s e.Device.gms;
        stamp_jac s d (-.e.Device.gds);
        stamp_jac s g (-.e.Device.gm);
        stamp_jac s s (-.e.Device.gms)
      | Circuit.Cap (n1, n2, c) ->
        if h_inv > 0. then begin
          let dv_now = v.(n1) -. v.(n2) in
          let dv_prev = v_prev.(n1) -. v_prev.(n2) in
          let i = c *. h_inv *. (dv_now -. dv_prev) in
          stamp_current n1 i;
          stamp_current n2 (-.i);
          let g = c *. h_inv in
          stamp_jac n1 n1 g;
          stamp_jac n1 n2 (-.g);
          stamp_jac n2 n1 (-.g);
          stamp_jac n2 n2 g
        end
      | Circuit.Res (n1, n2, r) ->
        let g = 1. /. r in
        let i = g *. (v.(n1) -. v.(n2)) in
        stamp_current n1 i;
        stamp_current n2 (-.i);
        stamp_jac n1 n1 g;
        stamp_jac n1 n2 (-.g);
        stamp_jac n2 n1 (-.g);
        stamp_jac n2 n2 g)
    fz.Circuit.elements;
  for i = 0 to nf - 1 do
    let n = ws.node_of_free.(i) in
    ws.res.(i) <- ws.res.(i) +. (gmin *. v.(n));
    ws.jac.(i).(i) <- ws.jac.(i).(i) +. gmin
  done

(* One Newton solve to convergence at fixed sources.  Mutates [v] in place
   on the free nodes.  Returns true on convergence. *)
let newton ws ~v ~v_prev ~h_inv ~gmin ~tol ~max_iter ~dv_limit =
  let nf = ws.nf in
  if nf = 0 then true
  else begin
    let rec iterate k =
      assemble ws ~v ~v_prev ~h_inv ~gmin;
      let rhs = Array.map (fun r -> -.r) ws.res in
      (match Linalg.solve_in_place ws.jac rhs with
      | () -> ()
      | exception Linalg.Singular ->
        raise (Convergence_failure "singular Jacobian"));
      let dmax = ref 0. in
      for i = 0 to nf - 1 do
        let d = rhs.(i) in
        let d =
          if d > dv_limit then dv_limit
          else if d < -.dv_limit then -.dv_limit
          else d
        in
        dmax := Float.max !dmax (Float.abs d);
        let n = ws.node_of_free.(i) in
        v.(n) <- v.(n) +. d
      done;
      if !dmax < tol then true
      else if k >= max_iter then false
      else iterate (k + 1)
    in
    iterate 1
  end

let set_sources fz v t =
  List.iter (fun (n, w) -> v.(n) <- Pwl.value_at w t) fz.Circuit.driven

let dc_operating_point (fz : Circuit.frozen) =
  let ws = make_ws fz in
  let tech = fz.Circuit.f_tech in
  let v = Array.make fz.Circuit.n_nodes (0.5 *. tech.Tech.vdd) in
  v.(Circuit.ground) <- 0.;
  set_sources fz v 0.;
  (* gmin stepping: start with a strong conductance to ground and relax it,
     warm-starting each stage from the previous solution. *)
  let stages = [ 1e-3; 1e-5; 1e-7; 1e-9; tech.Tech.gmin ] in
  List.iter
    (fun gmin ->
      let ok =
        newton ws ~v ~v_prev:v ~h_inv:0. ~gmin ~tol:1e-7 ~max_iter:200
          ~dv_limit:0.3
      in
      if not ok then
        raise
          (Convergence_failure
             (Printf.sprintf "DC gmin stage %.1e did not converge" gmin)))
    stages;
  v

let last_source_event fz =
  List.fold_left
    (fun acc (_, w) -> Float.max acc (Pwl.end_time w))
    0. fz.Circuit.driven

let simulate ?(options = default_options) (fz : Circuit.frozen) =
  let ws = make_ws fz in
  let tech = fz.Circuit.f_tech in
  let gmin = tech.Tech.gmin in
  let v = dc_operating_point fz in
  let n_nodes = fz.Circuit.n_nodes in
  let times = ref [ 0. ] in
  let snaps = ref [ Array.copy v ] in
  let last_event = last_source_event fz in
  (* Advance from [v_prev] at time [t] by [h], subdividing on Newton
     failure. *)
  let rec advance v_prev t h depth =
    let v_new = Array.copy v_prev in
    set_sources fz v_new (t +. h);
    let ok =
      newton ws ~v:v_new ~v_prev ~h_inv:(1. /. h) ~gmin
        ~tol:options.newton_tol ~max_iter:options.max_newton
        ~dv_limit:options.dv_limit
    in
    if ok then v_new
    else if depth >= 8 then
      raise
        (Convergence_failure
           (Printf.sprintf "transient step at t=%.3e did not converge" t))
    else begin
      let half = advance v_prev t (0.5 *. h) (depth + 1) in
      advance half (t +. (0.5 *. h)) (0.5 *. h) (depth + 1)
    end
  in
  let rec loop v_prev t =
    if t >= options.t_stop -. (0.5 *. options.h) then ()
    else begin
      let h = Float.min options.h (options.t_stop -. t) in
      let v_new = advance v_prev t h 0 in
      let t' = t +. h in
      times := t' :: !times;
      snaps := v_new :: !snaps;
      let settled =
        options.settle_window > 0.
        && t' > last_event +. options.settle_window
        &&
        let moved = ref 0. in
        for n = 0 to n_nodes - 1 do
          moved := Float.max !moved (Float.abs (v_new.(n) -. v_prev.(n)))
        done;
        !moved < options.settle_dv
      in
      if not settled then loop v_new t'
    end
  in
  loop v 0.;
  {
    r_times = Array.of_list (List.rev !times);
    r_volt = Array.of_list (List.rev !snaps);
  }

let times r = r.r_times
let voltage_at r n step = r.r_volt.(step).(n)
let final_voltages r = r.r_volt.(Array.length r.r_volt - 1)
let step_count r = Array.length r.r_times

let waveform r n =
  Pwl.of_points
    (Array.to_list (Array.mapi (fun i t -> (t, r.r_volt.(i).(n))) r.r_times))
