type t = {
  vdd : float;
  vtn : float;
  vtp : float;
  kn : float;
  kp : float;
  lambda_n : float;
  lambda_p : float;
  l_min : float;
  wn_min : float;
  wp_min : float;
  cg_per_w : float;
  cgd_per_w : float;
  cj_per_w : float;
  gmin : float;
}

let default =
  {
    vdd = 3.3;
    vtn = 0.7;
    vtp = -0.8;
    kn = 45e-6;
    kp = 100e-6;
    lambda_n = 0.05;
    lambda_p = 0.05;
    l_min = 0.5e-6;
    wn_min = 2.0e-6;
    wp_min = 1.6e-6;
    cg_per_w = 2.0e-9;
    cgd_per_w = 0.4e-9;
    cj_per_w = 3.5e-9;
    gmin = 1e-12;
  }

let v_low_frac = 0.1
let v_high_frac = 0.9
let v_mid_frac = 0.5
