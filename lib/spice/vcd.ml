let identifier k =
  (* printable VCD id codes: '!' .. '~' base-94 *)
  let rec go k acc =
    let c = Char.chr (33 + (k mod 94)) in
    let acc = String.make 1 c ^ acc in
    if k < 94 then acc else go ((k / 94) - 1) acc
  in
  go k ""

let of_result ?(timescale_fs = 100) (fz : Circuit.frozen) result ~nodes =
  if timescale_fs <= 0 then invalid_arg "Vcd.of_result: bad timescale";
  let b = Buffer.create 4096 in
  Printf.bprintf b "$date repro $end\n$version ssd-spice $end\n";
  Printf.bprintf b "$timescale %d fs $end\n" timescale_fs;
  Buffer.add_string b "$scope module dut $end\n";
  let ids = List.mapi (fun k n -> (n, identifier k)) nodes in
  List.iter
    (fun (n, id) ->
      Printf.bprintf b "$var real 64 %s %s $end\n" id
        (String.map
           (fun c -> if c = ' ' then '_' else c)
           fz.Circuit.names.(n)))
    ids;
  Buffer.add_string b "$upscope $end\n$enddefinitions $end\n";
  let times = Transient.times result in
  let scale = 1e-15 *. float_of_int timescale_fs in
  Array.iteri
    (fun step t ->
      Printf.bprintf b "#%Ld\n" (Int64.of_float (t /. scale));
      List.iter
        (fun (n, id) ->
          Printf.bprintf b "r%.6g %s\n" (Transient.voltage_at result n step) id)
        ids)
    times;
  Buffer.contents b

let write_file ?timescale_fs fz result ~nodes path =
  let oc = open_out path in
  output_string oc (of_result ?timescale_fs fz result ~nodes);
  close_out oc
