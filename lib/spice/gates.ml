module Pwl = Ssd_util.Pwl

type io = { inputs : Circuit.node array; output : Circuit.node }

let default_widths c wn wp =
  let t = Circuit.tech c in
  let wn = match wn with Some w -> w | None -> t.Tech.wn_min in
  let wp = match wp with Some w -> w | None -> t.Tech.wp_min in
  (wn, wp)

let inverter ?wn ?wp c ~input ~output =
  let wn, wp = default_widths c wn wp in
  let t = Circuit.tech c in
  let vdd = Circuit.vdd_node c in
  Circuit.add_mosfet c
    { Device.kind = Device.Pmos; w = wp; l = t.Tech.l_min }
    ~d:output ~g:input ~s:vdd;
  Circuit.add_mosfet c
    { Device.kind = Device.Nmos; w = wn; l = t.Tech.l_min }
    ~d:output ~g:input ~s:Circuit.ground

let nand ?wn ?wp c ~name ~n =
  if n < 1 then invalid_arg "Gates.nand: need n >= 1";
  let wn, wp = default_widths c wn wp in
  let t = Circuit.tech c in
  let vdd = Circuit.vdd_node c in
  let inputs =
    Array.init n (fun i -> Circuit.node c (Printf.sprintf "%s.in%d" name i))
  in
  let output = Circuit.node c (Printf.sprintf "%s.out" name) in
  (* Parallel PMOS pull-ups, one per input. *)
  Array.iter
    (fun g ->
      Circuit.add_mosfet c
        { Device.kind = Device.Pmos; w = wp; l = t.Tech.l_min }
        ~d:output ~g ~s:vdd)
    inputs;
  (* Series NMOS pull-down: input 0 adjacent to the output. *)
  let upper = ref output in
  for i = 0 to n - 1 do
    let lower =
      if i = n - 1 then Circuit.ground
      else Circuit.fresh_node c (Printf.sprintf "%s.stk%d" name i)
    in
    Circuit.add_mosfet c
      { Device.kind = Device.Nmos; w = wn; l = t.Tech.l_min }
      ~d:!upper ~g:inputs.(i) ~s:lower;
    upper := lower
  done;
  { inputs; output }

let nor ?wn ?wp c ~name ~n =
  if n < 1 then invalid_arg "Gates.nor: need n >= 1";
  let wn, wp = default_widths c wn wp in
  let t = Circuit.tech c in
  let vdd = Circuit.vdd_node c in
  let inputs =
    Array.init n (fun i -> Circuit.node c (Printf.sprintf "%s.in%d" name i))
  in
  let output = Circuit.node c (Printf.sprintf "%s.out" name) in
  (* Parallel NMOS pull-downs. *)
  Array.iter
    (fun g ->
      Circuit.add_mosfet c
        { Device.kind = Device.Nmos; w = wn; l = t.Tech.l_min }
        ~d:output ~g ~s:Circuit.ground)
    inputs;
  (* Series PMOS pull-up: input 0 adjacent to the output. *)
  let lower = ref output in
  for i = 0 to n - 1 do
    let upper =
      if i = n - 1 then vdd
      else Circuit.fresh_node c (Printf.sprintf "%s.stk%d" name i)
    in
    Circuit.add_mosfet c
      { Device.kind = Device.Pmos; w = wp; l = t.Tech.l_min }
      ~d:!lower ~g:inputs.(i) ~s:upper;
    lower := upper
  done;
  { inputs; output }

let attach_inverter_load c ?(fanout = 1) ?(extra_cap = 0.) node =
  for k = 0 to fanout - 1 do
    let out = Circuit.fresh_node c (Printf.sprintf "load%d" k) in
    inverter c ~input:node ~output:out
  done;
  if extra_cap > 0. then Circuit.add_cap c node Circuit.ground extra_cap

(* A ramp's 50 % crossing sits at its midpoint, so the start time is the
   arrival minus half the full (0 %–100 %) span. *)
let ramp_start ~arrival ~t_transition =
  let full = t_transition /. 0.8 in
  let t0 = arrival -. (0.5 *. full) in
  if t0 < 0. then
    invalid_arg
      (Printf.sprintf
         "Gates: input ramp with arrival %.3e and transition %.3e starts \
          before t=0"
         arrival t_transition);
  t0

let falling_input tech ~arrival ~t_transition =
  let t0 = ramp_start ~arrival ~t_transition in
  Pwl.falling_ramp ~t0 ~t_transition ~v_lo:0. ~v_hi:tech.Tech.vdd

let rising_input tech ~arrival ~t_transition =
  let t0 = ramp_start ~arrival ~t_transition in
  Pwl.rising_ramp ~t0 ~t_transition ~v_lo:0. ~v_hi:tech.Tech.vdd

let steady tech ~level = Pwl.constant (if level then tech.Tech.vdd else 0.)
