module Interval = Ssd_util.Interval
module Types = Ssd_core.Types

(* Eight float64 slots per node, in one contiguous off-heap Bigarray:

     0 rise arrival lo   1 rise arrival hi
     2 rise tt lo        3 rise tt hi
     4 fall arrival lo   5 fall arrival hi
     6 fall tt lo        7 fall tt hi

   A store can carry several timing planes — one per process corner —
   laid out plane-major: plane [p] occupies the contiguous slice
   [[p*n*8, (p+1)*n*8)], so the batched corner sweep streams one
   corner's windows sequentially and the plane-0 addressing is the
   legacy single-plane addressing unchanged.

   Float load/store through the Bigarray is bit-preserving, so packing
   and re-materializing a window round-trips every IEEE-754 payload
   (negative zeros, subnormals) exactly — the property the SoA/seed
   bit-identity contract rests on. *)

type t = {
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  n : int;
  planes : int;
}

let slots = 8

let create ?(planes = 1) n =
  if n < 0 then invalid_arg "Windows.create: negative size";
  if planes < 1 then invalid_arg "Windows.create: planes < 1";
  {
    data =
      Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
        (planes * n * slots);
    n;
    planes;
  }

let length t = t.n
let planes t = t.planes
let data t = t.data

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg
      (Printf.sprintf "Windows: node id %d out of range [0, %d)" i t.n)

let check_plane t p =
  if p < 0 || p >= t.planes then
    invalid_arg
      (Printf.sprintf "Windows: plane %d out of range [0, %d)" p t.planes)

let base t ~plane i = ((plane * t.n) + i) * slots

let set_at t b ~(rise : Types.win) ~(fall : Types.win) =
  let d = t.data in
  Bigarray.Array1.unsafe_set d b (Interval.lo rise.Types.w_arr);
  Bigarray.Array1.unsafe_set d (b + 1) (Interval.hi rise.Types.w_arr);
  Bigarray.Array1.unsafe_set d (b + 2) (Interval.lo rise.Types.w_tt);
  Bigarray.Array1.unsafe_set d (b + 3) (Interval.hi rise.Types.w_tt);
  Bigarray.Array1.unsafe_set d (b + 4) (Interval.lo fall.Types.w_arr);
  Bigarray.Array1.unsafe_set d (b + 5) (Interval.hi fall.Types.w_arr);
  Bigarray.Array1.unsafe_set d (b + 6) (Interval.lo fall.Types.w_tt);
  Bigarray.Array1.unsafe_set d (b + 7) (Interval.hi fall.Types.w_tt)

let set t i ~rise ~fall =
  check t i;
  set_at t (i * slots) ~rise ~fall

let set_plane t ~plane i ~rise ~fall =
  check t i;
  check_plane t plane;
  set_at t (base t ~plane i) ~rise ~fall

let win t b =
  let d = t.data in
  {
    Types.w_arr =
      Interval.make
        (Bigarray.Array1.unsafe_get d b)
        (Bigarray.Array1.unsafe_get d (b + 1));
    w_tt =
      Interval.make
        (Bigarray.Array1.unsafe_get d (b + 2))
        (Bigarray.Array1.unsafe_get d (b + 3));
  }

let rise t i =
  check t i;
  win t (i * slots)

let fall t i =
  check t i;
  win t ((i * slots) + 4)

let rise_plane t ~plane i =
  check t i;
  check_plane t plane;
  win t (base t ~plane i)

let fall_plane t ~plane i =
  check t i;
  check_plane t plane;
  win t (base t ~plane i + 4)

let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* bitwise equality of the stored slots against a candidate, without
   materializing the stored window *)
let eq t i ~(rise : Types.win) ~(fall : Types.win) =
  check t i;
  let b = i * slots in
  let d = t.data in
  beq (Bigarray.Array1.unsafe_get d b) (Interval.lo rise.Types.w_arr)
  && beq (Bigarray.Array1.unsafe_get d (b + 1)) (Interval.hi rise.Types.w_arr)
  && beq (Bigarray.Array1.unsafe_get d (b + 2)) (Interval.lo rise.Types.w_tt)
  && beq (Bigarray.Array1.unsafe_get d (b + 3)) (Interval.hi rise.Types.w_tt)
  && beq (Bigarray.Array1.unsafe_get d (b + 4)) (Interval.lo fall.Types.w_arr)
  && beq (Bigarray.Array1.unsafe_get d (b + 5)) (Interval.hi fall.Types.w_arr)
  && beq (Bigarray.Array1.unsafe_get d (b + 6)) (Interval.lo fall.Types.w_tt)
  && beq (Bigarray.Array1.unsafe_get d (b + 7)) (Interval.hi fall.Types.w_tt)

(* bitwise equality of one plane against another store's plane *)
let plane_eq a ~plane:pa b ~plane:pb =
  check_plane a pa;
  check_plane b pb;
  a.n = b.n
  && begin
       let ba = pa * a.n * slots and bb = pb * b.n * slots in
       let rec go i =
         i >= a.n * slots
         || beq
              (Bigarray.Array1.unsafe_get a.data (ba + i))
              (Bigarray.Array1.unsafe_get b.data (bb + i))
            && go (i + 1)
       in
       go 0
     end

let bytes t = t.planes * t.n * slots * 8
