(* Fixed pool of worker domains executing indexed parallel-for jobs.

   The pool is built once per analysis and reused for every level of the
   netlist, so worker domains survive across levels and the spawn cost is
   paid once.  Jobs are distributed by an atomic chunk counter (dynamic
   self-scheduling): workers — the caller participates as one of them —
   repeatedly grab the next chunk of indices until the range is drained.
   Completion is a generation-stamped barrier on a mutex/condvar pair;
   the mutex hand-off also publishes every write a worker made (e.g. the
   timing array slots) to whoever observes the job's completion, which is
   what makes the level-by-level propagation well-synchronized. *)

type job = {
  fn : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;          (* next unclaimed index *)
  mutable pending : int;        (* workers still running; under [mutex] *)
  mutable failure : exn option; (* first exception raised; under [mutex] *)
}

type t = {
  lanes : int; (* total execution lanes, caller included *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable current : job option;
  mutable epoch : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs jobs = if jobs <= 0 then default_jobs () else jobs

let run_chunks t job =
  let rec loop () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < job.n then begin
      let stop = min job.n (start + job.chunk) in
      (try
         for i = start to stop - 1 do
           job.fn i
         done
       with e ->
         Mutex.lock t.mutex;
         if job.failure = None then job.failure <- Some e;
         Mutex.unlock t.mutex;
         (* drain the remaining chunks so every lane finishes promptly *)
         Atomic.set job.next job.n);
      loop ()
    end
  in
  loop ()

let rec worker t my_epoch =
  Mutex.lock t.mutex;
  while t.epoch = my_epoch && not t.stopping do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let job = Option.get t.current in
    Mutex.unlock t.mutex;
    run_chunks t job;
    Mutex.lock t.mutex;
    job.pending <- job.pending - 1;
    if job.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    worker t epoch
  end

let create ~jobs =
  let lanes = max 1 (resolve_jobs jobs) in
  let t =
    {
      lanes;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      epoch = 0;
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init (lanes - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let jobs t = t.lanes

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Below this many items the fan-out cost outweighs the work; measured on
   the bundled netlists where a typical level holds tens of gates. *)
let min_parallel = 4

let parallel_for t ?chunk ~n fn =
  if n > 0 then begin
    if t.lanes = 1 || n < min_parallel then
      for i = 0 to n - 1 do
        fn i
      done
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Par.parallel_for: chunk < 1"
        | None -> max 1 (n / (t.lanes * 4))
      in
      let job =
        { fn; n; chunk; next = Atomic.make 0; pending = t.lanes - 1;
          failure = None }
      in
      Mutex.lock t.mutex;
      t.current <- Some job;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* the caller is a lane too *)
      run_chunks t job;
      Mutex.lock t.mutex;
      while job.pending > 0 do
        Condition.wait t.work_done t.mutex
      done;
      t.current <- None;
      let failure = job.failure in
      Mutex.unlock t.mutex;
      match failure with Some e -> raise e | None -> ()
    end
  end
