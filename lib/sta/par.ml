(* Fixed pool of worker domains executing indexed parallel-for jobs.

   The pool is built once per analysis and reused for every level of the
   netlist, so worker domains survive across levels and the spawn cost is
   paid once.  Jobs are distributed by an atomic chunk counter (dynamic
   self-scheduling): workers — the caller participates as one of them —
   repeatedly grab the next chunk of indices until the range is drained.
   Completion is a generation-stamped barrier on a mutex/condvar pair;
   the mutex hand-off also publishes every write a worker made (e.g. the
   timing array slots) to whoever observes the job's completion, which is
   what makes the level-by-level propagation well-synchronized.

   Telemetry (optional [?obs]): each lane counts the tasks and chunks it
   executed in a slot of its own (published to the sink's counters when
   the pool shuts down, giving the per-lane utilization picture), lanes
   record their per-job participation as spans on their own trace track,
   and the caller times its barrier wait.  All of it is per-lane state or
   an atomic — no lock is ever taken while work is in flight — and with
   the disabled sink every probe is a single branch. *)

module Obs = Ssd_obs.Obs

type job = {
  fn : int -> unit;
  n : int;
  chunk : int;
  label : string option;        (* trace-event name for lane spans *)
  next : int Atomic.t;          (* next unclaimed index *)
  mutable pending : int;        (* workers still running; under [mutex] *)
  mutable failure : exn option; (* first exception raised; under [mutex] *)
}

type t = {
  lanes : int; (* total execution lanes, caller included *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable current : job option;
  mutable epoch : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  obs : Obs.t;
  busy : Obs.timer;             (* per-lane participation in jobs *)
  barrier : Obs.timer;          (* caller wait for the job barrier *)
  barrier_hist : Obs.histogram; (* distribution of those waits, in us *)
  c_jobs : Obs.counter;
  lane_tasks : int array;       (* slot i written only by lane i *)
  lane_chunks : int array;
  lane_busy_ns : int array;     (* wall time lane i spent inside jobs *)
  mutable published : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs jobs = if jobs <= 0 then default_jobs () else jobs

let run_chunks t ~lane job =
  let tasks = ref 0 and chunks = ref 0 in
  let rec loop () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < job.n then begin
      let stop = min job.n (start + job.chunk) in
      (try
         for i = start to stop - 1 do
           job.fn i
         done;
         tasks := !tasks + (stop - start);
         incr chunks
       with e ->
         Mutex.lock t.mutex;
         if job.failure = None then job.failure <- Some e;
         Mutex.unlock t.mutex;
         (* drain the remaining chunks so every lane finishes promptly *)
         Atomic.set job.next job.n);
      loop ()
    end
  in
  loop ();
  t.lane_tasks.(lane) <- t.lane_tasks.(lane) + !tasks;
  t.lane_chunks.(lane) <- t.lane_chunks.(lane) + !chunks

(* a lane's participation in one job, as a span on its own track; the
   busy-time slot is written only by lane [lane]'s domain, like the
   task/chunk slots, and surfaces as a [par.lane<i>.busy_ns] gauge *)
let participate t ~lane job =
  if Obs.enabled t.obs then begin
    let t0 = Obs.now () in
    Fun.protect
      ~finally:(fun () ->
        t.lane_busy_ns.(lane) <-
          t.lane_busy_ns.(lane) + int_of_float ((Obs.now () -. t0) *. 1e9))
      (fun () ->
        Obs.span t.obs ?event:job.label t.busy (fun () ->
            run_chunks t ~lane job))
  end
  else run_chunks t ~lane job

let rec worker t ~lane my_epoch =
  Mutex.lock t.mutex;
  while t.epoch = my_epoch && not t.stopping do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let job = Option.get t.current in
    Mutex.unlock t.mutex;
    participate t ~lane job;
    Mutex.lock t.mutex;
    job.pending <- job.pending - 1;
    if job.pending = 0 then Condition.broadcast t.work_done;
    Mutex.unlock t.mutex;
    worker t ~lane epoch
  end

let create ?(obs = Obs.disabled) ~jobs () =
  let lanes = max 1 (resolve_jobs jobs) in
  let t =
    {
      lanes;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      epoch = 0;
      stopping = false;
      domains = [];
      obs;
      busy = Obs.timer obs "par.lane_busy";
      barrier = Obs.timer obs "par.barrier_wait";
      barrier_hist =
        Obs.histogram ~bins:16 ~lo:0. ~hi:1000. obs "par.barrier_wait_us";
      c_jobs = Obs.counter obs "par.jobs";
      lane_tasks = Array.make lanes 0;
      lane_chunks = Array.make lanes 0;
      lane_busy_ns = Array.make lanes 0;
      published = false;
    }
  in
  t.domains <-
    List.init (lanes - 1) (fun i ->
        Domain.spawn (fun () -> worker t ~lane:(i + 1) 0));
  if Obs.enabled obs then begin
    Obs.set_track_name obs
      ~tid:(Domain.self () :> int)
      "lane 0 (caller)";
    List.iteri
      (fun i d ->
        Obs.set_track_name obs
          ~tid:(Domain.get_id d :> int)
          (Printf.sprintf "lane %d" (i + 1)))
      t.domains
  end;
  t

let jobs t = t.lanes

(* lane counters are exact at this point: workers publish their slots
   through the job barrier's mutex hand-off, and shutdown additionally
   joins them *)
let publish_stats t =
  if Obs.enabled t.obs && not t.published then begin
    t.published <- true;
    for i = 0 to t.lanes - 1 do
      Obs.add
        (Obs.counter t.obs (Printf.sprintf "par.lane%d.tasks" i))
        t.lane_tasks.(i);
      Obs.add
        (Obs.counter t.obs (Printf.sprintf "par.lane%d.chunks" i))
        t.lane_chunks.(i);
      Obs.set_gauge
        (Obs.gauge t.obs (Printf.sprintf "par.lane%d.busy_ns" i))
        (float_of_int t.lane_busy_ns.(i))
    done
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- [];
  publish_stats t

let with_pool ?obs ~jobs f =
  let t = create ?obs ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Below this many items the fan-out cost outweighs the work; measured on
   the bundled netlists where a typical level holds tens of gates. *)
let min_parallel = 4

let parallel_for t ?chunk ?label ~n fn =
  if n > 0 then begin
    if t.lanes = 1 || n < min_parallel then begin
      if Obs.enabled t.obs then begin
        Obs.incr t.c_jobs;
        let job =
          { fn; n; chunk = n; label; next = Atomic.make 0; pending = 0;
            failure = None }
        in
        participate t ~lane:0 job;
        match job.failure with Some e -> raise e | None -> ()
      end
      else
        for i = 0 to n - 1 do
          fn i
        done
    end
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Par.parallel_for: chunk < 1"
        | None -> max 1 (n / (t.lanes * 4))
      in
      Obs.incr t.c_jobs;
      let job =
        { fn; n; chunk; label; next = Atomic.make 0; pending = t.lanes - 1;
          failure = None }
      in
      Mutex.lock t.mutex;
      t.current <- Some job;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* the caller is a lane too *)
      participate t ~lane:0 job;
      let wait () =
        Mutex.lock t.mutex;
        while job.pending > 0 do
          Condition.wait t.work_done t.mutex
        done;
        t.current <- None;
        let failure = job.failure in
        Mutex.unlock t.mutex;
        failure
      in
      let failure =
        if Obs.enabled t.obs then begin
          let t0 = Obs.now () in
          let r = wait () in
          let dt = Obs.now () -. t0 in
          Obs.add_ns t.barrier (int_of_float (dt *. 1e9));
          Obs.observe t.barrier_hist (dt *. 1e6);
          r
        end
        else wait ()
      in
      match failure with Some e -> raise e | None -> ()
    end
  end
