(** Named {!Engine} sessions for the timing server.

    A manager owns up to [max_sessions] long-lived engine sessions, each
    addressed by a client-chosen name and carrying its own telemetry
    sink (so one session's counters never mix with another's — the
    per-session scoping behind the serve protocol's [stats] request).

    {2 Concurrency}

    Per-session ordering is a mutex: every engine operation goes
    through {!with_session}, which serializes requests against that
    session.  Requests against {e different} sessions are independent —
    {!run_batch} fans one thunk per session across the manager's
    {!Par} domain pool, so a batch of requests naming distinct sessions
    executes concurrently while each session still sees its own
    requests in order.  Results are bit-identical for any lane count:
    the engines guarantee it per session, and sessions share no mutable
    state.

    The manager itself must be driven from one orchestrating thread
    (the dispatch loop); the name-table mutex only protects the session
    table against the engines running inside {!run_batch}. *)

type t
(** A session manager. *)

type session
(** One named engine session. *)

type error =
  | Too_many_sessions of int  (** the admission cap that was hit *)
  | Duplicate_session of string
  | Unknown_session of string

val error_message : error -> string

val create :
  ?max_sessions:int ->
  ?jobs:int ->
  ?opts:Run_opts.t ->
  library:Ssd_cell.Charlib.t ->
  unit ->
  t
(** [max_sessions] (default 64) caps concurrently open sessions
    (admission control).  [jobs] (default 1) sets the lane count of the
    batch pool {!run_batch} fans over.  [opts] (default
    {!Run_opts.default}) is the template for per-session engines; each
    session replaces its [obs] with a fresh private sink.
    @raise Invalid_argument on [max_sessions < 1]. *)

val max_sessions : t -> int
val count : t -> int

val names : t -> string list
(** Open session names in creation order. *)

val open_session :
  t ->
  name:string ->
  ?model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  (session, error) result
(** Create a session (one full {!Engine.create} forward pass) under the
    manager's option template.  [model] defaults to
    {!Ssd_core.Delay_model.proposed}.  @raise Sta.Unsupported_gate or
    [Invalid_argument] as {!Engine.create}. *)

val find : t -> string -> (session, error) result
val close_session : t -> string -> (unit, error) result

val close_all : t -> unit
(** Close every session and the batch pool.  The manager stays usable
    (new sessions re-create the pool on demand). *)

val session_name : session -> string

val obs : session -> Ssd_obs.Obs.t
(** The session's private telemetry sink (engine counters, edit
    latency histograms, ...). *)

val with_session : session -> (Engine.t -> 'a) -> 'a
(** Run under the session mutex — the only sanctioned engine access. *)

(** {2 Checkpoints}

    Wire-friendly checkpoint handles: dense integer ids, assigned in
    order, so a recorded session replays to identical ids. *)

val checkpoint : session -> int
val revert : session -> int -> (unit, string) result
(** Unknown, already-invalidated or pre-commit ids are [Error];
    reverting drops the ids taken after the restored mark. *)

val commit : session -> unit
(** {!Engine.commit}; every outstanding checkpoint id is invalidated. *)

val depth : session -> int

val run_batch : t -> (unit -> unit) array -> unit
(** Execute the thunks — one per distinct session — concurrently on the
    manager's pool (sequentially on a 1-lane pool).  Thunks must touch
    disjoint sessions; each should wrap its engine work in
    {!with_session}. *)
