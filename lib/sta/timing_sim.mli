(** Two-pattern timing simulation: point timing for a fully specified
    vector pair.

    Logic values are evaluated frame-wise; every line whose two frames
    differ carries one transition event (arrival + transition time)
    computed with the selected delay model — so the simultaneous-switching
    speed-up applies wherever several gate inputs actually switch.
    Hazards (multiple events per line) are not modelled, matching the
    paper's timing-simulation framework.

    Results are stored structure-of-arrays ({!lines}): one flag byte per
    line plus two flat float arrays for the event slots — ~17 bytes/line
    in three allocations instead of a record (and an event box) per line,
    which is what keeps fault simulation over 100k–1M-line circuits off
    the allocator.  {!get} materializes the per-line {!line} record view
    on demand; hot loops should use the flat accessors ({!v1}, {!v2},
    {!has_event}, {!event_arr}, ...).

    [extra_delay] injects additional delay on chosen lines (the crosstalk
    ATPG's fault effect); it is applied to the line's own event and hence
    propagates downstream. *)

type line = {
  v1 : bool;
  v2 : bool;
  event : Ssd_core.Types.event option;  (** present iff v1 <> v2 *)
}
(** Materialized view of one line (see {!get}). *)

type lines
(** Packed per-line simulation result over all node ids of one netlist. *)

val length : lines -> int
val empty : lines
(** Zero-length placeholder (for slots filled in later). *)

(** {2 Flat accessors} — allocation-free reads by node id. *)

val v1 : lines -> int -> bool
val v2 : lines -> int -> bool
val has_event : lines -> int -> bool

val event_arr : lines -> int -> float
(** Event arrival; meaningful only when {!has_event}. *)

val event_tt : lines -> int -> float
(** Event transition time; meaningful only when {!has_event}. *)

val rising_at : lines -> int -> bool
val falling_at : lines -> int -> bool

val event : lines -> int -> Ssd_core.Types.event option
val get : lines -> int -> line
(** Materialize one line's record view. *)

val lines_bytes : lines -> int
(** Approximate payload footprint in bytes (~17 per line). *)

val rising : line -> bool
val falling : line -> bool

val simulate :
  ?pi_arrival:float ->
  ?pi_tt:float ->
  ?extra_delay:(int -> float) ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  (bool * bool) array ->
  lines
(** The vector pair is indexed by PI rank ({!Ssd_circuit.Netlist.inputs}
    order).  @raise Sta.Unsupported_gate on non-primitive gates. *)

val resimulate_cone :
  ?pi_arrival:float ->
  ?pi_tt:float ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  base:lines ->
  cone:Ssd_circuit.Netlist.cone ->
  extra_delay:(int -> float) ->
  lines
(** Incremental re-simulation: [base] is a fault-free {!simulate} result
    and [cone] the {!Ssd_circuit.Netlist.fanout_cone} of the line whose
    delay [extra_delay] perturbs.  Only lines inside the cone are
    re-evaluated (logic frames cannot change — an extra delay shifts
    events, not values); every line outside the cone — in particular any
    primary output the fault cannot reach — keeps the fault-free value,
    copied into a fresh scratch store, so [base] is never mutated.  With
    the same [pi_arrival]/[pi_tt] the result is bit-identical to
    [simulate ~extra_delay] on the same vector pair (property-tested in
    [test/test_sta.ml]).  [extra_delay] must be zero outside the cone for
    that equivalence to hold. *)

val po_latest : Ssd_circuit.Netlist.t -> lines -> float option
(** Latest PO event arrival, [None] when no PO switches. *)
