(** Two-pattern timing simulation: point timing for a fully specified
    vector pair.

    Logic values are evaluated frame-wise; every line whose two frames
    differ carries one transition event (arrival + transition time)
    computed with the selected delay model — so the simultaneous-switching
    speed-up applies wherever several gate inputs actually switch.
    Hazards (multiple events per line) are not modelled, matching the
    paper's timing-simulation framework.

    [extra_delay] injects additional delay on chosen lines (the crosstalk
    ATPG's fault effect); it is applied to the line's own event and hence
    propagates downstream. *)

type line = {
  v1 : bool;
  v2 : bool;
  event : Ssd_core.Types.event option;  (** present iff v1 <> v2 *)
}

val simulate :
  ?pi_arrival:float ->
  ?pi_tt:float ->
  ?extra_delay:(int -> float) ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  (bool * bool) array ->
  line array
(** The vector pair is indexed by PI rank ({!Ssd_circuit.Netlist.inputs}
    order).  @raise Sta.Unsupported_gate on non-primitive gates. *)

val po_latest : Ssd_circuit.Netlist.t -> line array -> float option
(** Latest PO event arrival, [None] when no PO switches. *)

val rising : line -> bool
val falling : line -> bool
