(** Two-pattern timing simulation: point timing for a fully specified
    vector pair.

    Logic values are evaluated frame-wise; every line whose two frames
    differ carries one transition event (arrival + transition time)
    computed with the selected delay model — so the simultaneous-switching
    speed-up applies wherever several gate inputs actually switch.
    Hazards (multiple events per line) are not modelled, matching the
    paper's timing-simulation framework.

    [extra_delay] injects additional delay on chosen lines (the crosstalk
    ATPG's fault effect); it is applied to the line's own event and hence
    propagates downstream. *)

type line = {
  v1 : bool;
  v2 : bool;
  event : Ssd_core.Types.event option;  (** present iff v1 <> v2 *)
}

val simulate :
  ?pi_arrival:float ->
  ?pi_tt:float ->
  ?extra_delay:(int -> float) ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  (bool * bool) array ->
  line array
(** The vector pair is indexed by PI rank ({!Ssd_circuit.Netlist.inputs}
    order).  @raise Sta.Unsupported_gate on non-primitive gates. *)

val resimulate_cone :
  ?pi_arrival:float ->
  ?pi_tt:float ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  base:line array ->
  cone:Ssd_circuit.Netlist.cone ->
  extra_delay:(int -> float) ->
  line array
(** Incremental re-simulation: [base] is a fault-free {!simulate} result
    and [cone] the {!Ssd_circuit.Netlist.fanout_cone} of the line whose
    delay [extra_delay] perturbs.  Only lines inside the cone are
    re-evaluated (logic frames cannot change — an extra delay shifts
    events, not values), written copy-on-write into a fresh scratch
    array; every line outside the cone aliases the fault-free record, so
    [base] is never mutated and unreachable primary outputs cost
    nothing.  With the same [pi_arrival]/[pi_tt] the result is
    bit-identical to [simulate ~extra_delay] on the same vector pair
    (property-tested in [test/test_sta.ml]).  [extra_delay] must be zero
    outside the cone for that equivalence to hold. *)

val po_latest : Ssd_circuit.Netlist.t -> line array -> float option
(** Latest PO event arrival, [None] when no PO switches. *)

val rising : line -> bool
val falling : line -> bool
