module Obs = Ssd_obs.Obs
module Delay_model = Ssd_core.Delay_model

type session = {
  s_name : string;
  s_engine : Engine.t;
  s_mutex : Mutex.t;
  s_obs : Obs.t;
  (* dense wire-friendly checkpoint ids, newest first; replay of a
     recorded session reassigns identical ids *)
  mutable s_cps : (int * Engine.checkpoint) list;
  mutable s_next_cp : int;
}

type t = {
  m_library : Ssd_cell.Charlib.t;
  m_opts : Run_opts.t;
  m_max : int;
  m_jobs : int;
  m_mutex : Mutex.t;  (* guards the table; engine work is per-session *)
  mutable m_sessions : (string * session) list;  (* creation order *)
  mutable m_pool : Par.t option;  (* batch pool, created on demand *)
}

type error =
  | Too_many_sessions of int
  | Duplicate_session of string
  | Unknown_session of string

let error_message = function
  | Too_many_sessions n ->
    Printf.sprintf "session limit reached (%d open)" n
  | Duplicate_session n -> Printf.sprintf "session %S is already open" n
  | Unknown_session n -> Printf.sprintf "no session named %S" n

let create ?(max_sessions = 64) ?(jobs = 1) ?(opts = Run_opts.default)
    ~library () =
  if max_sessions < 1 then invalid_arg "Session.create: max_sessions < 1";
  {
    m_library = library;
    m_opts = opts;
    m_max = max_sessions;
    m_jobs = jobs;
    m_mutex = Mutex.create ();
    m_sessions = [];
    m_pool = None;
  }

let max_sessions t = t.m_max

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let count t = locked t.m_mutex (fun () -> List.length t.m_sessions)
let names t = locked t.m_mutex (fun () -> List.map fst t.m_sessions)

let open_session t ~name ?(model = Delay_model.proposed) nl =
  (* build the engine outside the table lock (the forward pass can be
     milliseconds); the slot is re-checked under the lock on insert *)
  let admit () =
    locked t.m_mutex (fun () ->
        if List.mem_assoc name t.m_sessions then
          Error (Duplicate_session name)
        else if List.length t.m_sessions >= t.m_max then
          Error (Too_many_sessions t.m_max)
        else Ok ())
  in
  match admit () with
  | Error e -> Error e
  | Ok () -> (
    let obs = Obs.create () in
    let opts = Run_opts.with_obs obs t.m_opts in
    let engine = Engine.create ~opts ~library:t.m_library ~model nl in
    let s =
      {
        s_name = name;
        s_engine = engine;
        s_mutex = Mutex.create ();
        s_obs = obs;
        s_cps = [];
        s_next_cp = 1;
      }
    in
    match
      locked t.m_mutex (fun () ->
          if List.mem_assoc name t.m_sessions then
            Error (Duplicate_session name)
          else if List.length t.m_sessions >= t.m_max then
            Error (Too_many_sessions t.m_max)
          else begin
            t.m_sessions <- t.m_sessions @ [ (name, s) ];
            Ok s
          end)
    with
    | Ok s -> Ok s
    | Error e ->
      Engine.close engine;
      Error e)

let find t name =
  locked t.m_mutex (fun () ->
      match List.assoc_opt name t.m_sessions with
      | Some s -> Ok s
      | None -> Error (Unknown_session name))

let close_session t name =
  match
    locked t.m_mutex (fun () ->
        match List.assoc_opt name t.m_sessions with
        | Some s ->
          t.m_sessions <- List.filter (fun (n, _) -> n <> name) t.m_sessions;
          Ok s
        | None -> Error (Unknown_session name))
  with
  | Error e -> Error e
  | Ok s ->
    locked s.s_mutex (fun () -> Engine.close s.s_engine);
    Ok ()

let close_all t =
  let ss =
    locked t.m_mutex (fun () ->
        let ss = t.m_sessions in
        t.m_sessions <- [];
        ss)
  in
  List.iter
    (fun (_, s) -> locked s.s_mutex (fun () -> Engine.close s.s_engine))
    ss;
  match t.m_pool with
  | Some p ->
    Par.shutdown p;
    t.m_pool <- None
  | None -> ()

let session_name s = s.s_name
let obs s = s.s_obs
let with_session s f = locked s.s_mutex (fun () -> f s.s_engine)

let checkpoint s =
  locked s.s_mutex (fun () ->
      let id = s.s_next_cp in
      s.s_next_cp <- id + 1;
      s.s_cps <- (id, Engine.checkpoint s.s_engine) :: s.s_cps;
      id)

let revert s id =
  locked s.s_mutex (fun () ->
      match List.assoc_opt id s.s_cps with
      | None -> Error (Printf.sprintf "unknown checkpoint %d" id)
      | Some cp -> (
        match Engine.revert s.s_engine cp with
        | () ->
          (* marks taken after the restored one are now ahead of the
             engine's history; drop them so their ids fail cleanly *)
          s.s_cps <- List.filter (fun (i, _) -> i <= id) s.s_cps;
          Ok ()
        | exception Invalid_argument msg -> Error msg))

let commit s =
  locked s.s_mutex (fun () ->
      Engine.commit s.s_engine;
      s.s_cps <- [])

let depth s = locked s.s_mutex (fun () -> Engine.depth s.s_engine)

let pool_of t =
  match t.m_pool with
  | Some p -> p
  | None ->
    let p = Par.create ~jobs:t.m_jobs () in
    t.m_pool <- Some p;
    p

let run_batch t thunks =
  match Array.length thunks with
  | 0 -> ()
  | 1 -> thunks.(0) ()
  | n ->
    if t.m_jobs <= 1 then Array.iter (fun f -> f ()) thunks
    else
      Par.parallel_for (pool_of t) ~chunk:1 ~n (fun i -> thunks.(i) ())
