module Interval = Ssd_util.Interval
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Types = Ssd_core.Types
module Cellfn = Ssd_core.Cellfn
module Netlist = Ssd_circuit.Netlist

type transition = Rise | Fall

type stage = {
  node : int;
  s_transition : transition;
  at : float;
  simultaneous : bool;
}

type path = { stages : stage list; endpoint : int; p_delay : float }

let window_of lt = function
  | Rise -> lt.Sta.rise
  | Fall -> lt.Sta.fall

let eps = 1e-13

(* For a given gate-output transition, every fan-in arc is either the
   to-controlling response (input switches the opposite way for
   NAND/NOT, the same way for NOR... derived from the cell kind) or the
   to-non-controlling one. *)
let arc_info library nl i kind fanin out_tr =
  let cell = Sta.cell_of_gate library kind (Array.length fanin) in
  let ctl_in_is_fall =
    match cell.Charlib.kind with Sweep.Nand -> true | Sweep.Nor -> false
  in
  let out_rise_is_ctl = ctl_in_is_fall in
  (* all primitives invert, so the causal input transition is the
     opposite of the output's; whether that is the to-controlling or the
     to-non-controlling response depends on the cell kind *)
  let resp =
    match out_tr with
    | Rise -> if out_rise_is_ctl then Cellfn.Ctl else Cellfn.Non
    | Fall -> if out_rise_is_ctl then Cellfn.Non else Cellfn.Ctl
  in
  let in_tr = match out_tr with Rise -> Fall | Fall -> Rise in
  (cell, Netlist.load_of nl i, resp, in_tr)

(* trace one step backward: pick the fan-in attaining the bound *)
let step ~late sta library nl i out_tr =
  match Netlist.node nl i with
  | Netlist.Pi -> None
  | Netlist.Gate { kind; fanin } ->
    let cell, load, resp, in_tr = arc_info library nl i kind fanin out_tr in
    let lt_out = window_of (Sta.timing sta i) out_tr in
    let bound =
      if late then Interval.hi lt_out.Types.w_arr
      else Interval.lo lt_out.Types.w_arr
    in
    let best = ref None in
    Array.iteri
      (fun pin j ->
        let w_in = window_of (Sta.timing sta j) in_tr in
        let contrib =
          if late then
            Interval.hi w_in.Types.w_arr
            +. snd (Cellfn.max_delay_over cell ~fanout:load resp ~pos:pin w_in.Types.w_tt)
          else
            Interval.lo w_in.Types.w_arr
            +. snd (Cellfn.min_delay_over cell ~fanout:load resp ~pos:pin w_in.Types.w_tt)
        in
        match !best with
        | Some (_, c) when (late && c >= contrib) || ((not late) && c <= contrib) ->
          ()
        | _ -> best := Some (j, contrib))
      fanin;
    (match !best with
    | None -> None
    | Some (j, contrib) ->
      (* when even the best single-pin composition cannot reach the bound
         on the early side, the simultaneous speed-up produced it *)
      let simultaneous = (not late) && contrib > bound +. eps in
      Some (j, in_tr, simultaneous))

let trace ~late sta ~endpoint out_tr =
  let nl = Sta.netlist sta in
  let library = Sta.library sta in
  let rec walk i tr acc =
    let w = window_of (Sta.timing sta i) tr in
    let at =
      if late then Interval.hi w.Types.w_arr else Interval.lo w.Types.w_arr
    in
    match step ~late sta library nl i tr with
    | None ->
      { node = i; s_transition = tr; at; simultaneous = false } :: acc
    | Some (j, in_tr, simultaneous) ->
      walk j in_tr ({ node = i; s_transition = tr; at; simultaneous } :: acc)
  in
  let stages = walk endpoint out_tr [] in
  let w = window_of (Sta.timing sta endpoint) out_tr in
  {
    stages;
    endpoint;
    p_delay =
      (if late then Interval.hi w.Types.w_arr else Interval.lo w.Types.w_arr);
  }

let longest_path sta ~endpoint tr = trace ~late:true sta ~endpoint tr
let shortest_path sta ~endpoint tr = trace ~late:false sta ~endpoint tr

let candidates sta =
  let nl = Sta.netlist sta in
  List.concat_map
    (fun po -> [ (po, Rise); (po, Fall) ])
    (Netlist.outputs nl)

let critical_paths sta ~k =
  candidates sta
  |> List.map (fun (po, tr) -> longest_path sta ~endpoint:po tr)
  |> List.sort (fun a b -> Float.compare b.p_delay a.p_delay)
  |> List.filteri (fun i _ -> i < k)

let min_paths sta ~k =
  candidates sta
  |> List.map (fun (po, tr) -> shortest_path sta ~endpoint:po tr)
  |> List.sort (fun a b -> Float.compare a.p_delay b.p_delay)
  |> List.filteri (fun i _ -> i < k)

let to_string sta path =
  let nl = Sta.netlist sta in
  let b = Buffer.create 256 in
  Printf.bprintf b "path to %s: %.3f ns\n"
    (Netlist.signal_name nl path.endpoint)
    (path.p_delay *. 1e9);
  List.iter
    (fun s ->
      Printf.bprintf b "  %-20s %s @ %8.3f ns%s\n"
        (Netlist.signal_name nl s.node)
        (match s.s_transition with Rise -> "rise" | Fall -> "fall")
        (s.at *. 1e9)
        (if s.simultaneous then "   [simultaneous switching]" else ""))
    path.stages;
  Buffer.contents b
