module Interval = Ssd_util.Interval
module Obs = Ssd_obs.Obs

type pi_spec = { pi_arrival : Interval.t; pi_tt : Interval.t }

let default_pi_spec =
  {
    pi_arrival = Interval.point 0.;
    pi_tt = Interval.make 0.15e-9 0.5e-9;
  }

type t = {
  jobs : int;
  cache : bool;
  obs : Obs.t;
  pi_spec : pi_spec;
  corners : int;
  mc_batch : int;
}

let default =
  {
    jobs = 1;
    cache = false;
    obs = Obs.disabled;
    pi_spec = default_pi_spec;
    corners = 1;
    mc_batch = 16;
  }

(* ---- builder ----

   New call sites grow a record from [default] through [with_*] and
   funnel it through [validate]; the field checks live in exactly one
   place, shared by [make] (which raises) and the serve daemon (which
   turns the [Error] into a protocol error response). *)

let with_jobs jobs t = { t with jobs }
let with_cache cache t = { t with cache }
let with_obs obs t = { t with obs }
let with_pi_spec pi_spec t = { t with pi_spec }
let with_corners corners t = { t with corners }
let with_mc_batch mc_batch t = { t with mc_batch }

let validate t =
  let finite_iv iv = Float.is_finite (Interval.lo iv) && Float.is_finite (Interval.hi iv) in
  if t.corners < 1 then Error "corners < 1"
  else if t.mc_batch < 1 then Error "mc_batch < 1"
  else if not (finite_iv t.pi_spec.pi_arrival && finite_iv t.pi_spec.pi_tt)
  then Error "pi_spec windows must be finite"
  else if Interval.lo t.pi_spec.pi_tt < 0. then
    Error "pi_spec transition-time window must be non-negative"
  else Ok t

let make ?(jobs = 1) ?(cache = false) ?(obs = Obs.disabled)
    ?(pi_spec = default_pi_spec) ?(corners = 1) ?(mc_batch = 16) () =
  match validate { jobs; cache; obs; pi_spec; corners; mc_batch } with
  | Ok t -> t
  | Error msg -> invalid_arg ("Run_opts.make: " ^ msg)
