module Interval = Ssd_util.Interval
module Obs = Ssd_obs.Obs

type pi_spec = { pi_arrival : Interval.t; pi_tt : Interval.t }

let default_pi_spec =
  {
    pi_arrival = Interval.point 0.;
    pi_tt = Interval.make 0.15e-9 0.5e-9;
  }

type t = {
  jobs : int;
  cache : bool;
  obs : Obs.t;
  pi_spec : pi_spec;
}

let default =
  { jobs = 1; cache = false; obs = Obs.disabled; pi_spec = default_pi_spec }

let make ?(jobs = 1) ?(cache = false) ?(obs = Obs.disabled)
    ?(pi_spec = default_pi_spec) () =
  { jobs; cache; obs; pi_spec }
