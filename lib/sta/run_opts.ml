module Interval = Ssd_util.Interval
module Obs = Ssd_obs.Obs

type pi_spec = { pi_arrival : Interval.t; pi_tt : Interval.t }

let default_pi_spec =
  {
    pi_arrival = Interval.point 0.;
    pi_tt = Interval.make 0.15e-9 0.5e-9;
  }

type t = {
  jobs : int;
  cache : bool;
  obs : Obs.t;
  pi_spec : pi_spec;
  corners : int;
  mc_batch : int;
}

let default =
  {
    jobs = 1;
    cache = false;
    obs = Obs.disabled;
    pi_spec = default_pi_spec;
    corners = 1;
    mc_batch = 16;
  }

let make ?(jobs = 1) ?(cache = false) ?(obs = Obs.disabled)
    ?(pi_spec = default_pi_spec) ?(corners = 1) ?(mc_batch = 16) () =
  if corners < 1 then invalid_arg "Run_opts.make: corners < 1";
  if mc_batch < 1 then invalid_arg "Run_opts.make: mc_batch < 1";
  { jobs; cache; obs; pi_spec; corners; mc_batch }
