module Interval = Ssd_util.Interval
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Types = Ssd_core.Types
module Delay_model = Ssd_core.Delay_model
module Cellfn = Ssd_core.Cellfn
module Netlist = Ssd_circuit.Netlist
module Gate = Ssd_circuit.Gate
module Obs = Ssd_obs.Obs

type line_timing = { rise : Types.win; fall : Types.win }

type required = {
  q_rise : Interval.t;
  q_fall : Interval.t;
}

type pi_spec = Run_opts.pi_spec = {
  pi_arrival : Interval.t;
  pi_tt : Interval.t;
}

let default_pi_spec = Run_opts.default_pi_spec

type t = {
  st_netlist : Netlist.t;
  st_library : Charlib.t;
  st_model : Delay_model.t;
  st_timing : Windows.t;
  st_cache : Ssd_core.Eval_cache.t option;
}

exception Unsupported_gate of string

let cell_of_gate library kind n_in =
  let lookup k n =
    try Charlib.find library k n
    with Not_found ->
      raise
        (Unsupported_gate
           (Printf.sprintf "no characterized cell for %s with %d inputs"
              (Gate.to_string kind) n_in))
  in
  match kind with
  | Gate.Not -> lookup Sweep.Nand 1
  | Gate.Nand -> lookup Sweep.Nand n_in
  | Gate.Nor -> lookup Sweep.Nor n_in
  | Gate.And | Gate.Or | Gate.Xor | Gate.Xnor | Gate.Buf ->
    raise
      (Unsupported_gate
         (Printf.sprintf
            "gate type %s is not primitive; decompose the netlist first"
            (Gate.to_string kind)))

(* Output windows of one gate given its fan-in windows.  The fan-in array
   order defines input positions (index 0 = closest to the output).
   For NAND/NOT the controlling input transition is the fall, and the
   to-controlling response is the output rise; for NOR it is the dual. *)
let gate_windows ?cache ~windowing ~cell ~load fanin_timings =
  let wins_of sel =
    List.mapi
      (fun idx lt -> { Types.wpos = idx; window = sel lt })
      fanin_timings
  in
  let ctl_in_is_fall =
    match cell.Charlib.kind with Sweep.Nand -> true | Sweep.Nor -> false
  in
  let ctl_wins = wins_of (fun lt -> if ctl_in_is_fall then lt.fall else lt.rise) in
  let non_wins = wins_of (fun lt -> if ctl_in_is_fall then lt.rise else lt.fall) in
  let ctl_out =
    windowing.Delay_model.ctl_window ?cache cell ~fanout:load ctl_wins
  in
  let non_out =
    windowing.Delay_model.non_window ?cache cell ~fanout:load non_wins
  in
  if ctl_in_is_fall then { rise = ctl_out; fall = non_out }
  else { rise = non_out; fall = ctl_out }

let windowing_of model =
  match model.Delay_model.windowing with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "Sta: model %S has no window transfer functions"
         model.Delay_model.name)

let pi_window (spec : pi_spec) =
  { Types.w_arr = spec.pi_arrival; w_tt = spec.pi_tt }

(* Translate both transitions' arrival windows by a line's extra delay
   (the crosstalk-fault primitive).  Guarded so the common extra = 0 case
   is the identity — not merely numerically but bit-for-bit ([x +. 0.]
   can flip the sign of a negative zero). *)
let shift_timing lt extra =
  if extra = 0. then lt
  else
    let sh (w : Types.win) =
      { w with Types.w_arr = Interval.shift w.Types.w_arr extra }
    in
    { rise = sh lt.rise; fall = sh lt.fall }

(* The forward pass's per-node kernel, shared by [analyze_with], the
   record-array oracle [analyze_ref] and the incremental {!Engine}: a
   pure function of the fan-in entries read through [timing] (for a PI,
   of [pi_win]), so recomputing any node whose inputs are bit-identical
   reproduces its windows bit-identically.  [timing] abstracts the
   storage — the packed {!Windows} store and the seed's record array
   feed the identical float values through the identical operations. *)
let eval_node ?cache ~windowing ~library nl timing ~pi_win ~extra i =
  let lt =
    if Netlist.is_pi nl i then { rise = pi_win; fall = pi_win }
    else begin
      let kind = Netlist.gate_kind nl i in
      let n_in = Netlist.fanin_count nl i in
      let cell = cell_of_gate library kind n_in in
      let fanin_timings = ref [] in
      for p = n_in - 1 downto 0 do
        fanin_timings := timing (Netlist.fanin_nth nl i p) :: !fanin_timings
      done;
      let load = Netlist.load_of nl i in
      gate_windows ?cache ~windowing ~cell ~load !fanin_timings
    end
  in
  shift_timing lt extra

let analyze_with ?(extra_delay = fun _ -> 0.) ?(pi_override = fun _ -> None)
    (opts : Run_opts.t) ~library ~model nl =
  let { Run_opts.jobs; cache; obs; pi_spec; corners; mc_batch = _ } = opts in
  if corners <> 1 then
    invalid_arg
      "Sta.analyze_with: corners > 1 is the batched sweep (Corner_sta.analyze)";
  let windowing = windowing_of model in
  let n = Netlist.size nl in
  let pi_win = pi_window pi_spec in
  let pi_win_of i =
    match pi_override i with None -> pi_win | Some spec -> pi_window spec
  in
  let timing = Windows.create n in
  let get j = { rise = Windows.rise timing j; fall = Windows.fall timing j } in
  let ecache =
    if cache then Some (Ssd_core.Eval_cache.create ()) else None
  in
  let c_gates = Obs.counter obs "sta.gates" in
  let eval i =
    if not (Netlist.is_pi nl i) then Obs.incr c_gates;
    let lt =
      eval_node ?cache:ecache ~windowing ~library nl get
        ~pi_win:(pi_win_of i) ~extra:(extra_delay i) i
    in
    Windows.set timing i ~rise:lt.rise ~fall:lt.fall
  in
  (* gates of one topological level are independent; the per-gate window
     computation is a pure function of the fan-in windows (and the memo
     cache stores bit-exact replays), so the parallel schedule produces
     bit-identical results to the sequential walk.  An instrumented run
     always walks level-by-level — also for [jobs = 1] — so the spans
     line up with the parallel schedule; the levelized order is a
     topological order, so the windows stay bit-identical either way. *)
  let jobs = if jobs <= 0 then Par.default_jobs () else jobs in
  if jobs <= 1 && not (Obs.enabled obs) then
    Array.iter eval (Netlist.topo_order nl)
  else
    Par.with_pool ~obs ~jobs (fun pool ->
        let nlevels = Netlist.level_count nl in
        if not (Obs.enabled obs) then
          for l = 0 to nlevels - 1 do
            Par.parallel_for pool ~n:(Netlist.level_width nl l) (fun k ->
                eval (Netlist.level_node nl l k))
          done
        else begin
          (* one caller-side span per level (named "sta.level.<l>",
             appearing exactly once per level in the trace) wrapping the
             fan-out; the lanes' own participation spans are labelled
             "L<l>" on their per-lane tracks *)
          Obs.add (Obs.counter obs "sta.levels") nlevels;
          let widest = ref 1 in
          for l = 0 to nlevels - 1 do
            widest := max !widest (Netlist.level_width nl l)
          done;
          let h_gates =
            Obs.histogram ~bins:16 ~lo:0. ~hi:(float_of_int !widest) obs
              "sta.level_gates"
          in
          for l = 0 to nlevels - 1 do
            let width = Netlist.level_width nl l in
            let tm = Obs.timer obs (Printf.sprintf "sta.level.%d" l) in
            Obs.observe h_gates (float_of_int width);
            Obs.span obs tm (fun () ->
                Par.parallel_for pool
                  ~label:(Printf.sprintf "L%d" l)
                  ~n:width
                  (fun k -> eval (Netlist.level_node nl l k)))
          done
        end);
  Option.iter
    (fun ec ->
      let s = Ssd_core.Eval_cache.stats ec in
      Obs.add (Obs.counter obs "sta.cache.hits") s.Ssd_core.Eval_cache.s_hits;
      Obs.add (Obs.counter obs "sta.cache.misses") s.Ssd_core.Eval_cache.s_misses;
      Obs.add (Obs.counter obs "sta.cache.entries") s.Ssd_core.Eval_cache.s_entries)
    ecache;
  { st_netlist = nl; st_library = library; st_model = model;
    st_timing = timing; st_cache = ecache }

let analyze ?(pi_spec = default_pi_spec) ?(jobs = 1) ?(cache = false)
    ?(obs = Obs.disabled) ~library ~model nl =
  analyze_with (Run_opts.make ~jobs ~cache ~obs ~pi_spec ()) ~library ~model nl

(* The seed representation, kept as the bit-identity oracle: a plain
   sequential topological walk over a per-node record array.  Same
   kernel, same schedule, different storage — the scale bench and the
   property tests assert the packed path reproduces this array bit for
   bit. *)
let analyze_ref ?(pi_spec = default_pi_spec) ~library ~model nl =
  let windowing = windowing_of model in
  let n = Netlist.size nl in
  let pi_win = pi_window pi_spec in
  let timing = Array.make n { rise = pi_win; fall = pi_win } in
  Array.iter
    (fun i ->
      timing.(i) <-
        eval_node ~windowing ~library nl
          (fun j -> timing.(j))
          ~pi_win ~extra:0. i)
    (Netlist.topo_order nl);
  timing

let netlist t = t.st_netlist
let library t = t.st_library

let timing t i =
  { rise = Windows.rise t.st_timing i; fall = Windows.fall t.st_timing i }

let windows t = t.st_timing
let cache_stats t = Option.map Ssd_core.Eval_cache.stats t.st_cache

let po_window t =
  let pos = Netlist.outputs t.st_netlist in
  match pos with
  | [] -> invalid_arg "Sta.po_window: netlist has no outputs"
  | first :: rest ->
    let win_of i =
      let lt = timing t i in
      Interval.hull lt.rise.Types.w_arr lt.fall.Types.w_arr
    in
    List.fold_left (fun acc i -> Interval.hull acc (win_of i)) (win_of first)
      rest

let min_delay t = Interval.lo (po_window t)
let max_delay t = Interval.hi (po_window t)

(* Backward required-time propagation.  For each gate, a required window on
   an output transition imposes windows on the input transitions that can
   cause it, offset by the pin delay bounds over the input's transition-time
   window. *)
let compute_required t ~clock_period =
  let nl = t.st_netlist in
  let n = Netlist.size nl in
  let top = Interval.make 0. clock_period in
  let none = Interval.make neg_infinity infinity in
  let q = Array.make n { q_rise = none; q_fall = none } in
  let is_po =
    let arr = Array.make n false in
    List.iter (fun i -> arr.(i) <- true) (Netlist.outputs nl);
    arr
  in
  for i = 0 to n - 1 do
    if is_po.(i) then q.(i) <- { q_rise = top; q_fall = top }
  done;
  let tighten idx ~rise iv =
    let cur = q.(idx) in
    let merge a b =
      (* the line must satisfy every sink: latest-allowed shrinks to the
         min, earliest-allowed grows to the max *)
      let lo = Float.max (Interval.lo a) (Interval.lo b) in
      let hi = Float.min (Interval.hi a) (Interval.hi b) in
      (* a crossed requirement stays representable as an empty-ish window:
         collapse to [lo, lo] so violation checks still fire via A_L > Q_L *)
      if lo <= hi then Interval.make lo hi else Interval.make lo lo
    in
    if rise then q.(idx) <- { cur with q_rise = merge cur.q_rise iv }
    else q.(idx) <- { cur with q_fall = merge cur.q_fall iv }
  in
  (* walk gates in reverse topological order *)
  let order = Netlist.topo_order nl in
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    if not (Netlist.is_pi nl i) then begin
      let kind = Netlist.gate_kind nl i in
      let n_in = Netlist.fanin_count nl i in
      let cell = cell_of_gate t.st_library kind n_in in
      let load = Netlist.load_of nl i in
      let ctl_in_is_fall =
        match cell.Charlib.kind with Sweep.Nand -> true | Sweep.Nor -> false
      in
      let qi = q.(i) in
      for pos = 0 to n_in - 1 do
        let j = Netlist.fanin_nth nl i pos in
        let in_lt = timing t j in
        let propagate resp ~out_iv ~in_rise =
          let tt_win =
            if in_rise then in_lt.rise.Types.w_tt else in_lt.fall.Types.w_tt
          in
          let _, d_min = Cellfn.min_delay_over cell ~fanout:load resp ~pos tt_win in
          let _, d_max = Cellfn.max_delay_over cell ~fanout:load resp ~pos tt_win in
          let lo = Interval.lo out_iv -. d_min in
          let hi = Interval.hi out_iv -. d_max in
          let iv = if lo <= hi then Interval.make lo hi else Interval.make lo lo in
          tighten j ~rise:in_rise iv
        in
        (* to-controlling response *)
        let ctl_out = if ctl_in_is_fall then qi.q_rise else qi.q_fall in
        propagate Cellfn.Ctl ~out_iv:ctl_out ~in_rise:(not ctl_in_is_fall);
        (* to-non-controlling response *)
        let non_out = if ctl_in_is_fall then qi.q_fall else qi.q_rise in
        propagate Cellfn.Non ~out_iv:non_out ~in_rise:ctl_in_is_fall
      done
    end
  done;
  q

let violations t required =
  let nl = t.st_netlist in
  let issues = ref [] in
  for i = Netlist.size nl - 1 downto 0 do
    let lt = timing t i in
    let r = required.(i) in
    let check label (w : Types.win) q =
      if Interval.hi w.Types.w_arr > Interval.hi q +. 1e-15 then
        issues :=
          ( i,
            Printf.sprintf "%s %s: arrives by %.3f ns but required by %.3f ns"
              (Netlist.signal_name nl i) label
              (Interval.hi w.Types.w_arr *. 1e9)
              (Interval.hi q *. 1e9) )
          :: !issues
      else if Interval.lo w.Types.w_arr < Interval.lo q -. 1e-15 then
        issues :=
          ( i,
            Printf.sprintf
              "%s %s: can arrive at %.3f ns but not allowed before %.3f ns"
              (Netlist.signal_name nl i) label
              (Interval.lo w.Types.w_arr *. 1e9)
              (Interval.lo q *. 1e9) )
          :: !issues
    in
    if Float.is_finite (Interval.hi r.q_rise) then check "rise" lt.rise r.q_rise;
    if Float.is_finite (Interval.hi r.q_fall) then check "fall" lt.fall r.q_fall
  done;
  !issues

let summary t =
  let w = po_window t in
  Printf.sprintf "%s [%s]: PO delay window [%.3f ns, %.3f ns]"
    (Netlist.stats t.st_netlist) t.st_model.Delay_model.name
    (Interval.lo w *. 1e9) (Interval.hi w *. 1e9)
