(** Critical-path extraction and reporting on top of {!Sta}.

    Paths are traced back from a primary output through the fan-in arc
    that attains the window bound at every gate.  For latest-arrival
    (setup) paths the proposed model's bound coincides with a single-pin
    composition, so the trace is exact; for earliest-arrival (hold) paths
    the simultaneous-switching speed-up can beat every single-pin
    composition, in which case the stage is attributed to its
    earliest-arriving input and flagged [simultaneous] — those flags mark
    exactly the stages where the pin-to-pin model loses accuracy. *)

type transition = Rise | Fall

type stage = {
  node : int;
  s_transition : transition;
  at : float;            (** the traced window bound at this node, s *)
  simultaneous : bool;   (** speed-up beat every single-pin composition *)
}

type path = {
  stages : stage list;   (** PI first, PO last *)
  endpoint : int;
  p_delay : float;       (** bound at the endpoint *)
}

val longest_path : Sta.t -> endpoint:int -> transition -> path
(** Setup-critical path to one PO for the given output transition. *)

val shortest_path : Sta.t -> endpoint:int -> transition -> path
(** Hold-critical path (the Table 2 min-delay witness). *)

val critical_paths : Sta.t -> k:int -> path list
(** The [k] latest-arriving (endpoint, transition) paths over all POs. *)

val min_paths : Sta.t -> k:int -> path list
(** The [k] earliest-arriving paths over all POs. *)

val to_string : Sta.t -> path -> string
(** Multi-line report: one stage per line with arrival and flags. *)
