module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Cellfn = Ssd_core.Cellfn
module Netlist = Ssd_circuit.Netlist
module Gate = Ssd_circuit.Gate
module Interval = Ssd_util.Interval

type triple = { d_min : float; d_typ : float; d_max : float }

type iopath = { from_pin : int; rise : triple; fall : triple }

type cell_delays = { instance : string; paths : iopath list }

type t = { design : string; timescale : string; cells : cell_delays list }

(* ---------------- construction from a characterized library ----------- *)

let triple_of cell ~fanout resp ~pos tt_range =
  let _, lo = Cellfn.min_delay_over cell ~fanout resp ~pos tt_range in
  let _, hi = Cellfn.max_delay_over cell ~fanout resp ~pos tt_range in
  let mid = Interval.mid tt_range in
  let typ = Cellfn.pin_delay cell ~fanout resp ~pos ~t_in:mid in
  { d_min = lo; d_typ = typ; d_max = hi }

let of_netlist ~library ~tt_range nl =
  let cells =
    Netlist.fold_gates_topo nl ~init:[] ~f:(fun acc i kind fanin ->
        let cell = Sta.cell_of_gate library kind (Array.length fanin) in
        let fanout = Netlist.load_of nl i in
        let ctl_is_fall =
          match cell.Charlib.kind with Sweep.Nand -> true | Sweep.Nor -> false
        in
        let paths =
          List.init (Array.length fanin) (fun pin ->
              let ctl = triple_of cell ~fanout Cellfn.Ctl ~pos:pin tt_range in
              let non = triple_of cell ~fanout Cellfn.Non ~pos:pin tt_range in
              (* for a NAND, the to-controlling response is the output rise *)
              if ctl_is_fall then { from_pin = pin; rise = ctl; fall = non }
              else { from_pin = pin; rise = non; fall = ctl })
        in
        { instance = Netlist.signal_name nl i; paths } :: acc)
  in
  { design = Netlist.name nl; timescale = "1ns"; cells = List.rev cells }

(* ---------------- printing -------------------------------------------- *)

let pp_rvalue b { d_min; d_typ; d_max } =
  Printf.bprintf b "(%.6f:%.6f:%.6f)" (d_min *. 1e9) (d_typ *. 1e9)
    (d_max *. 1e9)

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "(DELAYFILE\n";
  Printf.bprintf b "  (SDFVERSION \"3.0\")\n  (DESIGN \"%s\")\n" t.design;
  Printf.bprintf b "  (TIMESCALE %s)\n" t.timescale;
  List.iter
    (fun c ->
      Printf.bprintf b "  (CELL (CELLTYPE \"gate\") (INSTANCE %s)\n"
        c.instance;
      Buffer.add_string b "    (DELAY (ABSOLUTE\n";
      List.iter
        (fun p ->
          Printf.bprintf b "      (IOPATH in%d out " p.from_pin;
          pp_rvalue b p.rise;
          Buffer.add_char b ' ';
          pp_rvalue b p.fall;
          Buffer.add_string b ")\n")
        c.paths;
      Buffer.add_string b "    ))\n  )\n")
    t.cells;
  Buffer.add_string b ")\n";
  Buffer.contents b

let write_file t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

(* ---------------- parsing --------------------------------------------- *)

exception Parse_error of { line : int; message : string }

(* a minimal s-expression tokenizer tracking line numbers *)
type token = Lparen | Rparen | Atom of string

let tokenize text =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !i < n do
    (match text.[!i] with
    | '\n' -> incr line
    | '(' -> push Lparen
    | ')' -> push Rparen
    | ' ' | '\t' | '\r' -> ()
    | '"' ->
      let j = ref (!i + 1) in
      while !j < n && text.[!j] <> '"' do
        incr j
      done;
      if !j >= n then
        raise (Parse_error { line = !line; message = "unterminated string" });
      push (Atom (String.sub text (!i + 1) (!j - !i - 1)));
      i := !j
    | _ ->
      let j = ref !i in
      let stop c = c = '(' || c = ')' || c = ' ' || c = '\t' || c = '\n' || c = '\r' in
      while !j < n && not (stop text.[!j]) do
        incr j
      done;
      push (Atom (String.sub text !i (!j - !i)));
      i := !j - 1);
    incr i
  done;
  List.rev !tokens

type sexp = A of string | L of sexp list

let parse_sexp tokens =
  let rec parse = function
    | (Lparen, _) :: rest ->
      let items, rest = parse_list [] rest in
      (L items, rest)
    | (Atom a, _) :: rest -> (A a, rest)
    | (Rparen, line) :: _ ->
      raise (Parse_error { line; message = "unexpected ')'" })
    | [] -> raise (Parse_error { line = 0; message = "unexpected end of file" })
  and parse_list acc = function
    | (Rparen, _) :: rest -> (List.rev acc, rest)
    | [] -> raise (Parse_error { line = 0; message = "missing ')'" })
    | toks ->
      let item, rest = parse toks in
      parse_list (item :: acc) rest
  in
  let sexp, rest = parse tokens in
  (match rest with
  | [] -> ()
  | (_, line) :: _ ->
    raise (Parse_error { line; message = "trailing tokens after DELAYFILE" }));
  sexp

let fail_at message = raise (Parse_error { line = 0; message })

let parse_triple s =
  (* "(a:b:c)" arrives as an atom list or combined atom depending on
     spacing; we print without spaces so it is one atom *)
  match s with
  | A a ->
    let a =
      if String.length a >= 2 && a.[0] = '(' then
        String.sub a 1 (String.length a - 2)
      else a
    in
    (match String.split_on_char ':' a with
    | [ x; y; z ] -> (
      try
        {
          d_min = float_of_string x *. 1e-9;
          d_typ = float_of_string y *. 1e-9;
          d_max = float_of_string z *. 1e-9;
        }
      with Failure _ -> fail_at ("bad rvalue " ^ a))
    | _ -> fail_at ("bad rvalue " ^ a))
  | L _ -> fail_at "expected an rvalue triple"

let pin_index name =
  (* "in3" -> 3 *)
  if String.length name > 2 && String.sub name 0 2 = "in" then
    match int_of_string_opt (String.sub name 2 (String.length name - 2)) with
    | Some i -> i
    | None -> fail_at ("bad pin name " ^ name)
  else fail_at ("bad pin name " ^ name)

let parse_string text =
  (* The tokenizer splits "(a:b:c)" into Lparen, atom, Rparen when the
     parens are separate characters; normalize by re-joining during the
     IOPATH walk instead: we printed triples without inner spaces, so they
     tokenize as Lparen Atom(a:b:c) Rparen — i.e. an L [A "a:b:c"]. *)
  let sexp = parse_sexp (tokenize text) in
  let design = ref "" and timescale = ref "1ns" and cells = ref [] in
  let as_triple = function
    | L [ A a ] -> parse_triple (A a)
    | A a -> parse_triple (A a)
    | _ -> fail_at "expected rvalue"
  in
  (match sexp with
  | L (A "DELAYFILE" :: entries) ->
    List.iter
      (fun entry ->
        match entry with
        | L [ A "SDFVERSION"; A _ ] -> ()
        | L [ A "DESIGN"; A d ] -> design := d
        | L [ A "TIMESCALE"; A ts ] -> timescale := ts
        | L (A "CELL" :: cell_entries) ->
          let instance = ref "" and paths = ref [] in
          List.iter
            (fun ce ->
              match ce with
              | L [ A "CELLTYPE"; A _ ] -> ()
              | L [ A "INSTANCE"; A i ] -> instance := i
              | L (A "DELAY" :: delay_entries) ->
                List.iter
                  (fun de ->
                    match de with
                    | L (A "ABSOLUTE" :: iopaths) ->
                      List.iter
                        (fun io ->
                          match io with
                          | L (A "IOPATH" :: A from :: A _out :: rvs) -> (
                            match rvs with
                            | [ r1; r2 ] ->
                              paths :=
                                {
                                  from_pin = pin_index from;
                                  rise = as_triple r1;
                                  fall = as_triple r2;
                                }
                                :: !paths
                            | _ -> fail_at "IOPATH needs two rvalues")
                          | _ -> fail_at "expected IOPATH")
                        iopaths
                    | _ -> fail_at "expected ABSOLUTE")
                  delay_entries
              | _ -> fail_at "unexpected CELL entry")
            cell_entries;
          cells := { instance = !instance; paths = List.rev !paths } :: !cells
        | _ -> fail_at "unexpected DELAYFILE entry")
      entries
  | _ -> fail_at "expected (DELAYFILE ...)");
  { design = !design; timescale = !timescale; cells = List.rev !cells }

let parse_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse_string text

(* ---------------- annotated analysis ---------------------------------- *)

module Annotated = struct
  type sdf = t

  type t = {
    nl : Netlist.t;
    (* per gate node: pin -> (rise, fall) *)
    arcs : (int, (int * (triple * triple)) list) Hashtbl.t;
  }

  let create (sdf : sdf) nl =
    let arcs = Hashtbl.create 64 in
    List.iter
      (fun c ->
        match Netlist.find nl c.instance with
        | None ->
          invalid_arg
            (Printf.sprintf "Sdf.Annotated.create: instance %S not in netlist"
               c.instance)
        | Some i ->
          Hashtbl.replace arcs i
            (List.map (fun p -> (p.from_pin, (p.rise, p.fall))) c.paths))
      sdf.cells;
    { nl; arcs }

  let iopath t ~gate ~pin ~rising_out =
    match Hashtbl.find_opt t.arcs gate with
    | None -> None
    | Some paths -> (
      match List.assoc_opt pin paths with
      | None -> None
      | Some (rise, fall) -> Some (if rising_out then rise else fall))

  (* classic SDF STA with separate rise/fall tracking: every primitive in
     this library inverts, so an output rise is caused by an input fall and
     vice versa *)
  let sweep t =
    let n = Netlist.size t.nl in
    let early_r = Array.make n 0. and late_r = Array.make n 0. in
    let early_f = Array.make n 0. and late_f = Array.make n 0. in
    Netlist.iter_gates_topo t.nl ~f:(fun i kind fanin ->
        ignore kind;
        let er = ref infinity and lr = ref neg_infinity in
        let ef = ref infinity and lf = ref neg_infinity in
        Array.iteri
          (fun pin j ->
            (match iopath t ~gate:i ~pin ~rising_out:true with
            | Some tri ->
              er := Float.min !er (early_f.(j) +. tri.d_min);
              lr := Float.max !lr (late_f.(j) +. tri.d_max)
            | None -> ());
            match iopath t ~gate:i ~pin ~rising_out:false with
            | Some tri ->
              ef := Float.min !ef (early_r.(j) +. tri.d_min);
              lf := Float.max !lf (late_r.(j) +. tri.d_max)
            | None -> ())
          fanin;
        if Float.is_finite !er then early_r.(i) <- !er;
        if Float.is_finite !lr then late_r.(i) <- !lr;
        if Float.is_finite !ef then early_f.(i) <- !ef;
        if Float.is_finite !lf then late_f.(i) <- !lf);
    (early_r, late_r, early_f, late_f)

  let max_delay t =
    let _, late_r, _, late_f = sweep t in
    List.fold_left
      (fun acc po -> Float.max acc (Float.max late_r.(po) late_f.(po)))
      0. (Netlist.outputs t.nl)

  let min_delay t =
    let early_r, _, early_f, _ = sweep t in
    List.fold_left
      (fun acc po -> Float.min acc (Float.min early_r.(po) early_f.(po)))
      infinity (Netlist.outputs t.nl)
end
