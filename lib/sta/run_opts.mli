(** Shared run options for the timing engines.

    Every analysis entry point — {!Sta.analyze_with}, {!Engine.create},
    {!Ssd_atpg.Fault_sim.simulate_with}, {!Ssd_atpg.Atpg.run_with} — takes
    one {!t} record instead of re-declaring the same optional arguments.
    The legacy per-argument signatures remain as thin wrappers over
    {!make}. *)

type pi_spec = {
  pi_arrival : Ssd_util.Interval.t;
  pi_tt : Ssd_util.Interval.t;
}
(** Arrival-time and transition-time windows assumed at every primary
    input (per-input overrides are an {!Engine} edit). *)

val default_pi_spec : pi_spec
(** Arrival fixed at t = 0; transition time window [0.15 ns, 0.5 ns]. *)

type t = {
  jobs : int;
      (** execution lanes: [1] sequential, [> 1] that many domains,
          [<= 0] auto-selects the recommended domain count *)
  cache : bool;
      (** memoize per-cell corner searches (never changes results) *)
  obs : Ssd_obs.Obs.t;  (** telemetry sink (default: disabled no-op) *)
  pi_spec : pi_spec;  (** windows assumed at the primary inputs *)
  corners : int;
      (** timing planes to evaluate: [1] (default) the nominal corner
          through the scalar path; [> 1] the batched corner sweep
          ({!Corner_sta}), which requires it to match the corner
          table's count *)
  mc_batch : int;
      (** Monte-Carlo chunk size K: samples fitted and swept together
          per batched-kernel pass ({!Corner_sta.monte_carlo}); clamped
          to the sample count, never changes results *)
}

val default : t
(** [jobs = 1], [cache = false], disabled telemetry,
    {!default_pi_spec}, [corners = 1], [mc_batch = 16]. *)

(** {2 Builder}

    Grow a record from {!default} through the [with_*] functions and
    finish with {!validate} (or {!make}, which validates and raises).
    Constructing or updating the record field-by-field with literal
    record syntax is deprecated: it bypasses the field checks and
    breaks silently whenever a field is added.  New call sites should
    read [Run_opts.(default |> with_jobs 4 |> with_cache true)]. *)

val with_jobs : int -> t -> t
val with_cache : bool -> t -> t
val with_obs : Ssd_obs.Obs.t -> t -> t
val with_pi_spec : pi_spec -> t -> t
val with_corners : int -> t -> t
val with_mc_batch : int -> t -> t

val validate : t -> (t, string) result
(** The single authority on field invariants: [corners >= 1],
    [mc_batch >= 1], finite PI windows with a non-negative transition
    floor.  [Ok] returns the record unchanged. *)

val make :
  ?jobs:int ->
  ?cache:bool ->
  ?obs:Ssd_obs.Obs.t ->
  ?pi_spec:pi_spec ->
  ?corners:int ->
  ?mc_batch:int ->
  unit ->
  t
(** {!default} with the given fields replaced, passed through
    {!validate}.  @raise Invalid_argument when validation fails. *)
