(** Work pool over OCaml 5 domains for level-parallel window propagation.

    A pool owns [jobs - 1] worker domains (the caller acts as the last
    lane) and executes indexed parallel-for jobs over them; gates of one
    topological level are independent, so {!Ssd_sta.Sta.analyze} issues
    one job per level.  Chunks are handed out through an atomic counter
    (dynamic self-scheduling) and each job ends in a mutex barrier, which
    both joins the level and publishes every worker's writes before the
    next level starts.

    A pool must be driven from a single orchestrating thread: concurrent
    {!parallel_for} calls on one pool are not supported.  When the pool
    has a single lane — or a job is smaller than the fan-out cost can
    justify — the loop runs sequentially in the caller, so a pool is
    always safe to use regardless of [Domain.recommended_domain_count]. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?obs:Ssd_obs.Obs.t -> jobs:int -> unit -> t
(** Spawn a pool with [jobs] lanes ([jobs - 1] domains); [jobs <= 0]
    means {!default_jobs}.  Call {!shutdown} when done.

    [obs] (default disabled) instruments the pool: each lane counts the
    tasks and chunks it executes and the wall time it spends inside
    jobs (surfaced as [par.lane<i>.tasks] / [.chunks] counters and a
    [par.lane<i>.busy_ns] gauge at {!shutdown} — the lane-utilization
    picture),
    lanes record their per-job participation as spans on their own
    trace track (named [lane <i>] via {!Ssd_obs.Obs.set_track_name}),
    and the caller's barrier waits feed the [par.barrier_wait] timer
    and histogram.  All probes are per-lane slots or atomics: the work
    loop never takes a lock, and results remain bit-identical. *)

val jobs : t -> int
(** Lane count actually in use (>= 1). *)

val parallel_for : t -> ?chunk:int -> ?label:string -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n fn] runs [fn i] for every [0 <= i < n], fanned
    across the pool's lanes, and returns once all calls finished.  The
    function must be safe to call concurrently for distinct indices.
    Falls back to a plain sequential loop on a 1-lane pool or when [n] is
    small.  [chunk] overrides the scheduling granularity (default:
    [n / (lanes * 4)], at least 1).  [label] names the lanes' trace
    spans for this job (e.g. the STA level) when the pool is
    instrumented.  If any [fn] raises, remaining chunks are abandoned
    and the first exception is re-raised in the caller after the
    barrier.  @raise Invalid_argument on [chunk < 1]. *)

val shutdown : t -> unit
(** Join all worker domains and publish the per-lane counters to the
    sink.  Idempotent. *)

val with_pool : ?obs:Ssd_obs.Obs.t -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)
