module Interval = Ssd_util.Interval
module Stats = Ssd_util.Stats
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Corners = Ssd_cell.Corners
module Corner_batch = Ssd_core.Corner_batch
module Delay_model = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Netlist = Ssd_circuit.Netlist
module Gate = Ssd_circuit.Gate
module Obs = Ssd_obs.Obs

type t = {
  ct_netlist : Netlist.t;
  ct_table : Corners.table;
  ct_timing : Windows.t;
}

(* corners evaluated per task: one level×corner-chunk cell of the
   parallel schedule.  Four keeps K = 4 in a single streaming pass and
   splits K = 16 into four independent lanes per node. *)
let corner_chunk = 4

let slot_of_gate table kind n_in =
  let lookup k n =
    match Corners.cell_slot table k n with
    | Some s -> s
    | None ->
      raise
        (Sta.Unsupported_gate
           (Printf.sprintf "no characterized cell for %s with %d inputs"
              (Gate.to_string kind) n_in))
  in
  match kind with
  | Gate.Not -> lookup Sweep.Nand 1
  | Gate.Nand -> lookup Sweep.Nand n_in
  | Gate.Nor -> lookup Sweep.Nor n_in
  | Gate.And | Gate.Or | Gate.Xor | Gate.Xnor | Gate.Buf ->
    raise
      (Sta.Unsupported_gate
         (Printf.sprintf
            "gate type %s is not primitive; decompose the netlist first"
            (Gate.to_string kind)))

(* resolve every gate's table slot up front: one hash lookup per node
   instead of one per (node × corner), and unsupported gates fail
   before any work is done.  Slot indices depend only on the library's
   cell order, so the array can be shared read-only across the lanes of
   a Monte-Carlo fan-out whose tables were built from the same
   library. *)
let resolve_slots table nl =
  let n = Netlist.size nl in
  let slots = Array.make n (-1) in
  let max_fanin = ref 1 in
  for i = 0 to n - 1 do
    if not (Netlist.is_pi nl i) then begin
      let m = Netlist.fanin_count nl i in
      slots.(i) <- slot_of_gate table (Netlist.gate_kind nl i) m;
      if m > !max_fanin then max_fanin := m
    end
  done;
  (slots, !max_fanin)

(* one corner sweep's resolved state: everything [eval_range] touches
   per node, bundled so the analyze and Monte-Carlo paths share the
   same gather/kernel/scatter code (and hence the same float ops) *)
type sweep = {
  sw_nl : Netlist.t;
  sw_cb : Corner_batch.t;
  sw_w : Windows.t;
  sw_data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  sw_nw : int;
  sw_slots : int array;
  sw_pi_win : Types.win;
}

let make_sweep ~pi_spec ~slots ~planes ~cb nl =
  let w = Windows.create ~planes (Netlist.size nl) in
  {
    sw_nl = nl;
    sw_cb = cb;
    sw_w = w;
    sw_data = Windows.data w;
    sw_nw = Windows.length w;
    sw_slots = slots;
    sw_pi_win = Sta.pi_window pi_spec;
  }

let eval_range sw ~inp ~out i c0 c1 =
  let nl = sw.sw_nl in
  if Netlist.is_pi nl i then
    for c = c0 to c1 - 1 do
      Windows.set_plane sw.sw_w ~plane:c i ~rise:sw.sw_pi_win
        ~fall:sw.sw_pi_win
    done
  else begin
    let data = sw.sw_data and nw = sw.sw_nw in
    let m = Netlist.fanin_count nl i in
    (* pin-major gather: the fanin lookup runs once per pin, not once
       per (pin × corner), and the plane base is inlined arithmetic
       ([Windows.base] = ((plane·n)+node)·8) *)
    for p = 0 to m - 1 do
      let j = Netlist.fanin_nth nl i p in
      let d0 = p * 8 in
      for c = c0 to c1 - 1 do
        let src = ((c * nw) + j) * 8 in
        let dst = ((c - c0) * m * 8) + d0 in
        for f = 0 to 7 do
          Array.unsafe_set inp (dst + f)
            (Bigarray.Array1.unsafe_get data (src + f))
        done
      done
    done;
    Corner_batch.eval_node sw.sw_cb ~slot:sw.sw_slots.(i)
      ~fanout:(Netlist.load_of nl i) ~m ~c0 ~c1 ~inputs:inp ~outputs:out;
    for c = c0 to c1 - 1 do
      let dst = ((c * nw) + i) * 8 in
      let ob = (c - c0) * 8 in
      for f = 0 to 7 do
        Bigarray.Array1.unsafe_set data (dst + f) (Array.unsafe_get out (ob + f))
      done
    done
  end

(* one streaming topological pass over corners [0, planes) *)
let sweep_planes sw ~inp ~out planes =
  Array.iter
    (fun i -> eval_range sw ~inp ~out i 0 planes)
    (Netlist.topo_order sw.sw_nl)

let analyze ?(opts = Run_opts.default) ~table nl =
  let k = Corners.k table in
  if opts.Run_opts.corners <> 1 && opts.Run_opts.corners <> k then
    invalid_arg
      (Printf.sprintf
         "Corner_sta.analyze: opts.corners = %d but the table has %d corners"
         opts.Run_opts.corners k);
  let cb = Corner_batch.create table in
  let slots, max_fanin = resolve_slots table nl in
  let sw = make_sweep ~pi_spec:opts.Run_opts.pi_spec ~slots ~planes:k ~cb nl in
  let w = sw.sw_w in
  let jobs =
    if opts.Run_opts.jobs <= 0 then Par.default_jobs () else opts.Run_opts.jobs
  in
  let obs = opts.Run_opts.obs in
  let tm_sweep = Obs.timer obs "corners.sweep" in
  if jobs <= 1 then begin
    (* one streaming pass over all K corners per node *)
    let inp = Array.make (k * max_fanin * 8) 0. in
    let out = Array.make (k * 8) 0. in
    Obs.span obs tm_sweep (fun () -> sweep_planes sw ~inp ~out k)
  end
  else begin
    (* the pool parallelizes over (level slot × corner chunk): a level
       of width W fans out into W × ⌈K/chunk⌉ independent tasks, since
       corner planes never read each other *)
    let nchunks = (k + corner_chunk - 1) / corner_chunk in
    let scratch =
      Domain.DLS.new_key (fun () ->
          ( Array.make (corner_chunk * max_fanin * 8) 0.,
            Array.make (corner_chunk * 8) 0. ))
    in
    Par.with_pool ~obs ~jobs (fun pool ->
        Obs.span obs tm_sweep (fun () ->
            for l = 0 to Netlist.level_count nl - 1 do
              Par.parallel_for pool
                ~label:(Printf.sprintf "L%d" l)
                ~n:(Netlist.level_width nl l * nchunks)
                (fun tsk ->
                  let i = Netlist.level_node nl l (tsk / nchunks) in
                  let c0 = tsk mod nchunks * corner_chunk in
                  let c1 = min k (c0 + corner_chunk) in
                  let inp, out = Domain.DLS.get scratch in
                  eval_range sw ~inp ~out i c0 c1)
            done))
  end;
  { ct_netlist = nl; ct_table = table; ct_timing = w }

let netlist t = t.ct_netlist
let table t = t.ct_table
let corners t = Corners.k t.ct_table
let windows t = t.ct_timing

let timing t ~corner i =
  {
    Sta.rise = Windows.rise_plane t.ct_timing ~plane:corner i;
    fall = Windows.fall_plane t.ct_timing ~plane:corner i;
  }

let po_window t ~corner =
  match Netlist.outputs t.ct_netlist with
  | [] -> invalid_arg "Corner_sta.po_window: netlist has no outputs"
  | first :: rest ->
    let win_of i =
      let lt = timing t ~corner i in
      Interval.hull lt.Sta.rise.Types.w_arr lt.Sta.fall.Types.w_arr
    in
    List.fold_left (fun acc i -> Interval.hull acc (win_of i)) (win_of first)
      rest

let min_delay t ~corner = Interval.lo (po_window t ~corner)
let max_delay t ~corner = Interval.hi (po_window t ~corner)

let plane_matches t ~corner (sta : Sta.t) =
  Windows.plane_eq t.ct_timing ~plane:corner (Sta.windows sta) ~plane:0

let summary t =
  let k = corners t in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s [%d corners]:" (Netlist.stats t.ct_netlist) k);
  for c = 0 to k - 1 do
    let s = Corners.spec t.ct_table c in
    Buffer.add_string buf
      (Printf.sprintf "\n  %-6s (d×%.3f t×%.3f): PO window [%.3f ns, %.3f ns]"
         s.Corners.c_name s.Corners.c_delay s.Corners.c_tt
         (min_delay t ~corner:c *. 1e9)
         (max_delay t ~corner:c *. 1e9))
  done;
  Buffer.contents buf

(* ----- Monte-Carlo parameter sampling ---------------------------------- *)

type mc_result = {
  mc_specs : Corners.spec array;
  mc_pos : int array;
  mc_delays : float array array;
      (* [po][sample]: latest arrival over both transitions *)
  mc_max : float array;  (* [sample]: circuit max delay *)
}

let monte_carlo_scalar ?(opts = Run_opts.default) ?(samples = 64) ~seed
    ~library nl =
  if samples < 1 then
    invalid_arg "Corner_sta.monte_carlo_scalar: samples < 1";
  let specs = Array.of_list (Corners.sample_specs ~seed samples) in
  let pos = Array.of_list (Netlist.outputs nl) in
  let delays = Array.map (fun _ -> Array.make samples 0.) pos in
  let mc_max = Array.make samples 0. in
  let opts = { opts with Run_opts.corners = 1 } in
  Engine.with_engine ~opts ~library ~model:Delay_model.proposed nl (fun eng ->
      Array.iteri
        (fun s spec ->
          (* one Set_model retarget per sample against the resident
             session: netlist, levels, cones, pool and eval cache are
             all reused; only the windows are recomputed *)
          let dlib = Corners.derate_library spec library in
          let m =
            Delay_model.remap_cells
              ~name:("proposed@" ^ spec.Corners.c_name)
              (Corners.remap_of_library dlib)
              Delay_model.proposed
          in
          Engine.apply eng (Engine.Set_model m);
          (* keep the journal from accumulating one frame per sample *)
          Engine.commit eng;
          Array.iteri
            (fun pi po ->
              let lt = Engine.timing eng po in
              delays.(pi).(s) <-
                Float.max
                  (Interval.hi lt.Sta.rise.Types.w_arr)
                  (Interval.hi lt.Sta.fall.Types.w_arr))
            pos;
          mc_max.(s) <- Engine.max_delay eng)
        specs);
  { mc_specs = specs; mc_pos = pos; mc_delays = delays; mc_max }

(* per-lane batched-kernel state: one K-corner table whose layouts are
   fitted once and then only re-coefficiented per chunk, the evaluator
   bound to it, a K-plane scratch window store, and the gather/scatter
   scratch.  Lanes never share mutable state, so sample chunks can fan
   out across the domain pool without contention. *)
type mc_lane = {
  mc_sw : sweep;
  mc_table : Corners.table;
  mc_inp : float array;
  mc_out : float array;
  mutable mc_used : bool;  (* has this lane's table served a chunk yet? *)
}

let monte_carlo ?(opts = Run_opts.default) ?(samples = 64) ~seed ~library nl =
  if samples < 1 then invalid_arg "Corner_sta.monte_carlo: samples < 1";
  if opts.Run_opts.mc_batch < 1 then
    invalid_arg "Corner_sta.monte_carlo: opts.mc_batch < 1";
  let pos = Array.of_list (Netlist.outputs nl) in
  let npos = Array.length pos in
  if npos = 0 then invalid_arg "Corner_sta.monte_carlo: netlist has no outputs";
  (* all samples are drawn from one splitmix stream up front, so the
     spec sequence is invariant under the chunking that follows *)
  let specs = Array.of_list (Corners.sample_specs ~seed samples) in
  let batch = min opts.Run_opts.mc_batch samples in
  let nchunks = (samples + batch - 1) / batch in
  let delays = Array.init npos (fun _ -> Array.make samples 0.) in
  let mc_max = Array.make samples 0. in
  let obs = opts.Run_opts.obs in
  (* counter handles created before any domain is spawned: creation
     takes the registry lock, increments are sharded and lock-free *)
  let c_chunks = Obs.counter obs "mc.chunks" in
  let c_built = Obs.counter obs "mc.tables_built" in
  let c_hits = Obs.counter obs "mc.fit_cache_hits" in
  let c_planes = Obs.counter obs "mc.planes" in
  (* timer handles likewise; the spans nest (chunk > refit/refresh/
     sweep), so each timer's self time isolates its own phase *)
  let tm_chunk = Obs.timer obs "mc.chunk" in
  let tm_refit = Obs.timer obs "corners.refit" in
  let tm_refresh = Obs.timer obs "corner_batch.refresh" in
  let tm_sweep = Obs.timer obs "mc.sweep" in
  let proto_specs = Array.to_list (Array.sub specs 0 batch) in
  let lane_of ~slots ~max_fanin table =
    Obs.incr c_built;
    let cb = Corner_batch.create table in
    {
      mc_sw =
        make_sweep ~pi_spec:opts.Run_opts.pi_spec ~slots ~planes:batch ~cb nl;
      mc_table = table;
      mc_inp = Array.make (batch * max_fanin * 8) 0.;
      mc_out = Array.make (batch * 8) 0.;
      mc_used = false;
    }
  in
  let new_lane ~slots ~max_fanin () =
    lane_of ~slots ~max_fanin (Corners.build ~specs:proto_specs library)
  in
  let run_chunk lane chunk =
    Obs.span obs tm_chunk (fun () ->
    let s0 = chunk * batch in
    let r = min batch (samples - s0) in
    Obs.incr c_chunks;
    if lane.mc_used then Obs.incr c_hits else lane.mc_used <- true;
    Obs.add c_planes r;
    (* retarget the lane's resident table: layouts, index and storage
       are reused, only r corners' coefficient blocks are rewritten *)
    Obs.span obs tm_refit (fun () ->
        Corners.refit lane.mc_table (Array.sub specs s0 r));
    Obs.span obs tm_refresh (fun () ->
        Corner_batch.refresh lane.mc_sw.sw_cb);
    Obs.span obs tm_sweep (fun () ->
        sweep_planes lane.mc_sw ~inp:lane.mc_inp ~out:lane.mc_out r);
    (* stream the per-PO delays and circuit max out of the finished
       planes; the window store is scratch reused by the next chunk.
       Both extractions replicate the scalar path's float expressions
       ([Engine.timing] + Float.max / the [po_window] hull fold), so
       bit-identical windows give bit-identical results.  Writes land
       at disjoint sample indices, hence are safe across lanes. *)
    let w = lane.mc_sw.sw_w in
    for c = 0 to r - 1 do
      let s = s0 + c in
      let win_of po =
        Interval.hull
          (Windows.rise_plane w ~plane:c po).Types.w_arr
          (Windows.fall_plane w ~plane:c po).Types.w_arr
      in
      let acc = ref (win_of pos.(0)) in
      for pi = 0 to npos - 1 do
        let po = pos.(pi) in
        delays.(pi).(s) <-
          Float.max
            (Interval.hi (Windows.rise_plane w ~plane:c po).Types.w_arr)
            (Interval.hi (Windows.fall_plane w ~plane:c po).Types.w_arr);
        if pi > 0 then acc := Interval.hull !acc (win_of po)
      done;
      mc_max.(s) <- Interval.hi !acc
    done)
  in
  (* the prototype lane also resolves the gate → table-slot mapping,
     shared read-only by every other lane *)
  let table0 = Corners.build ~specs:proto_specs library in
  let slots, max_fanin = resolve_slots table0 nl in
  let lane0 = lane_of ~slots ~max_fanin table0 in
  let jobs =
    if opts.Run_opts.jobs <= 0 then Par.default_jobs () else opts.Run_opts.jobs
  in
  (* an instrumented run always goes through the pool, even single-lane
     or single-chunk, so the par.lane<i> utilization probes exist: a
     1-lane pool executes the chunks in ascending order on the caller
     against the same prototype lane as the plain loop, so results stay
     bit-identical whether telemetry is on or off *)
  if (jobs <= 1 || nchunks = 1) && not (Obs.enabled obs) then
    for chunk = 0 to nchunks - 1 do
      run_chunk lane0 chunk
    done
  else begin
    let lane = Domain.DLS.new_key (new_lane ~slots ~max_fanin) in
    (* the caller participates as a pool lane; hand it the prototype *)
    Domain.DLS.set lane lane0;
    Par.with_pool ~obs ~jobs (fun pool ->
        Par.parallel_for pool ~chunk:1 ~label:"mc.chunk" ~n:nchunks
          (fun chunk -> run_chunk (Domain.DLS.get lane) chunk))
  end;
  { mc_specs = specs; mc_pos = pos; mc_delays = delays; mc_max }

let mc_po_quantiles res qs =
  Array.map (fun d -> Stats.quantiles qs (Array.to_list d)) res.mc_delays

let mc_max_quantiles res qs = Stats.quantiles qs (Array.to_list res.mc_max)
