module Interval = Ssd_util.Interval
module Stats = Ssd_util.Stats
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Corners = Ssd_cell.Corners
module Corner_batch = Ssd_core.Corner_batch
module Delay_model = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Netlist = Ssd_circuit.Netlist
module Gate = Ssd_circuit.Gate
module Obs = Ssd_obs.Obs

type t = {
  ct_netlist : Netlist.t;
  ct_table : Corners.table;
  ct_timing : Windows.t;
}

(* corners evaluated per task: one level×corner-chunk cell of the
   parallel schedule.  Four keeps K = 4 in a single streaming pass and
   splits K = 16 into four independent lanes per node. *)
let corner_chunk = 4

let slot_of_gate table kind n_in =
  let lookup k n =
    match Corners.cell_slot table k n with
    | Some s -> s
    | None ->
      raise
        (Sta.Unsupported_gate
           (Printf.sprintf "no characterized cell for %s with %d inputs"
              (Gate.to_string kind) n_in))
  in
  match kind with
  | Gate.Not -> lookup Sweep.Nand 1
  | Gate.Nand -> lookup Sweep.Nand n_in
  | Gate.Nor -> lookup Sweep.Nor n_in
  | Gate.And | Gate.Or | Gate.Xor | Gate.Xnor | Gate.Buf ->
    raise
      (Sta.Unsupported_gate
         (Printf.sprintf
            "gate type %s is not primitive; decompose the netlist first"
            (Gate.to_string kind)))

let analyze ?(opts = Run_opts.default) ~table nl =
  let k = Corners.k table in
  if opts.Run_opts.corners <> 1 && opts.Run_opts.corners <> k then
    invalid_arg
      (Printf.sprintf
         "Corner_sta.analyze: opts.corners = %d but the table has %d corners"
         opts.Run_opts.corners k);
  let cb = Corner_batch.create table in
  let n = Netlist.size nl in
  let w = Windows.create ~planes:k n in
  let data = Windows.data w in
  let pi_win = Sta.pi_window opts.Run_opts.pi_spec in
  (* resolve every gate's table slot up front: one hash lookup per node
     instead of one per (node × corner), and unsupported gates fail
     before any work is done *)
  let slots = Array.make n (-1) in
  let max_fanin = ref 1 in
  for i = 0 to n - 1 do
    if not (Netlist.is_pi nl i) then begin
      let m = Netlist.fanin_count nl i in
      slots.(i) <- slot_of_gate table (Netlist.gate_kind nl i) m;
      if m > !max_fanin then max_fanin := m
    end
  done;
  let max_fanin = !max_fanin in
  let nw = Windows.length w in
  let eval_range ~inp ~out i c0 c1 =
    if Netlist.is_pi nl i then
      for c = c0 to c1 - 1 do
        Windows.set_plane w ~plane:c i ~rise:pi_win ~fall:pi_win
      done
    else begin
      let m = Netlist.fanin_count nl i in
      (* pin-major gather: the fanin lookup runs once per pin, not once
         per (pin × corner), and the plane base is inlined arithmetic
         ([Windows.base] = ((plane·n)+node)·8) *)
      for p = 0 to m - 1 do
        let j = Netlist.fanin_nth nl i p in
        let d0 = p * 8 in
        for c = c0 to c1 - 1 do
          let src = ((c * nw) + j) * 8 in
          let dst = ((c - c0) * m * 8) + d0 in
          for f = 0 to 7 do
            Array.unsafe_set inp (dst + f)
              (Bigarray.Array1.unsafe_get data (src + f))
          done
        done
      done;
      Corner_batch.eval_node cb ~slot:slots.(i) ~fanout:(Netlist.load_of nl i)
        ~m ~c0 ~c1 ~inputs:inp ~outputs:out;
      for c = c0 to c1 - 1 do
        let dst = ((c * nw) + i) * 8 in
        let ob = (c - c0) * 8 in
        for f = 0 to 7 do
          Bigarray.Array1.unsafe_set data (dst + f)
            (Array.unsafe_get out (ob + f))
        done
      done
    end
  in
  let jobs =
    if opts.Run_opts.jobs <= 0 then Par.default_jobs () else opts.Run_opts.jobs
  in
  if jobs <= 1 then begin
    (* one streaming pass over all K corners per node *)
    let inp = Array.make (k * max_fanin * 8) 0. in
    let out = Array.make (k * 8) 0. in
    Array.iter (fun i -> eval_range ~inp ~out i 0 k) (Netlist.topo_order nl)
  end
  else begin
    (* the pool parallelizes over (level slot × corner chunk): a level
       of width W fans out into W × ⌈K/chunk⌉ independent tasks, since
       corner planes never read each other *)
    let nchunks = (k + corner_chunk - 1) / corner_chunk in
    let scratch =
      Domain.DLS.new_key (fun () ->
          ( Array.make (corner_chunk * max_fanin * 8) 0.,
            Array.make (corner_chunk * 8) 0. ))
    in
    Par.with_pool ~obs:opts.Run_opts.obs ~jobs (fun pool ->
        for l = 0 to Netlist.level_count nl - 1 do
          Par.parallel_for pool ~n:(Netlist.level_width nl l * nchunks)
            (fun tsk ->
              let i = Netlist.level_node nl l (tsk / nchunks) in
              let c0 = tsk mod nchunks * corner_chunk in
              let c1 = min k (c0 + corner_chunk) in
              let inp, out = Domain.DLS.get scratch in
              eval_range ~inp ~out i c0 c1)
        done)
  end;
  { ct_netlist = nl; ct_table = table; ct_timing = w }

let netlist t = t.ct_netlist
let table t = t.ct_table
let corners t = Corners.k t.ct_table
let windows t = t.ct_timing

let timing t ~corner i =
  {
    Sta.rise = Windows.rise_plane t.ct_timing ~plane:corner i;
    fall = Windows.fall_plane t.ct_timing ~plane:corner i;
  }

let po_window t ~corner =
  match Netlist.outputs t.ct_netlist with
  | [] -> invalid_arg "Corner_sta.po_window: netlist has no outputs"
  | first :: rest ->
    let win_of i =
      let lt = timing t ~corner i in
      Interval.hull lt.Sta.rise.Types.w_arr lt.Sta.fall.Types.w_arr
    in
    List.fold_left (fun acc i -> Interval.hull acc (win_of i)) (win_of first)
      rest

let min_delay t ~corner = Interval.lo (po_window t ~corner)
let max_delay t ~corner = Interval.hi (po_window t ~corner)

let plane_matches t ~corner (sta : Sta.t) =
  Windows.plane_eq t.ct_timing ~plane:corner (Sta.windows sta) ~plane:0

let summary t =
  let k = corners t in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s [%d corners]:" (Netlist.stats t.ct_netlist) k);
  for c = 0 to k - 1 do
    let s = Corners.spec t.ct_table c in
    Buffer.add_string buf
      (Printf.sprintf "\n  %-6s (d×%.3f t×%.3f): PO window [%.3f ns, %.3f ns]"
         s.Corners.c_name s.Corners.c_delay s.Corners.c_tt
         (min_delay t ~corner:c *. 1e9)
         (max_delay t ~corner:c *. 1e9))
  done;
  Buffer.contents buf

(* ----- Monte-Carlo parameter sampling over a resident session ---------- *)

type mc_result = {
  mc_specs : Corners.spec array;
  mc_pos : int array;
  mc_delays : float array array;
      (* [po][sample]: latest arrival over both transitions *)
  mc_max : float array;  (* [sample]: circuit max delay *)
}

let monte_carlo ?(opts = Run_opts.default) ?(samples = 64) ~seed ~library nl =
  if samples < 1 then invalid_arg "Corner_sta.monte_carlo: samples < 1";
  let specs = Array.of_list (Corners.sample_specs ~seed samples) in
  let pos = Array.of_list (Netlist.outputs nl) in
  let delays = Array.map (fun _ -> Array.make samples 0.) pos in
  let mc_max = Array.make samples 0. in
  let opts = { opts with Run_opts.corners = 1 } in
  Engine.with_engine ~opts ~library ~model:Delay_model.proposed nl (fun eng ->
      Array.iteri
        (fun s spec ->
          (* one Set_model retarget per sample against the resident
             session: netlist, levels, cones, pool and eval cache are
             all reused; only the windows are recomputed *)
          let dlib = Corners.derate_library spec library in
          let m =
            Delay_model.remap_cells
              ~name:("proposed@" ^ spec.Corners.c_name)
              (Corners.remap_of_library dlib)
              Delay_model.proposed
          in
          Engine.apply eng (Engine.Set_model m);
          (* keep the journal from accumulating one frame per sample *)
          Engine.commit eng;
          Array.iteri
            (fun pi po ->
              let lt = Engine.timing eng po in
              delays.(pi).(s) <-
                Float.max
                  (Interval.hi lt.Sta.rise.Types.w_arr)
                  (Interval.hi lt.Sta.fall.Types.w_arr))
            pos;
          mc_max.(s) <- Engine.max_delay eng)
        specs);
  { mc_specs = specs; mc_pos = pos; mc_delays = delays; mc_max }

let mc_po_quantiles res qs =
  Array.map (fun d -> Stats.quantiles qs (Array.to_list d)) res.mc_delays

let mc_max_quantiles res qs = Stats.quantiles qs (Array.to_list res.mc_max)
