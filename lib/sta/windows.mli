(** Packed per-node rise/fall timing windows.

    One contiguous float64 Bigarray holds eight slots per node (rise and
    fall, arrival and transition-time, lo and hi bounds) instead of a
    per-node tree of records — 64 bytes per node, off the OCaml heap
    (neither scanned nor moved by the GC), walked sequentially by the
    levelized STA forward pass and the incremental engine.

    Loads and stores are bit-preserving, so a window materialized by
    {!rise}/{!fall} is bit-identical to the one {!set} packed — the
    invariant that keeps the packed path bit-identical to the
    record-array seed representation ({!Sta.analyze_ref}).

    Concurrent {!set} on distinct node ids from several domains is safe
    (disjoint plain float writes, no OCaml-heap mutation); the level
    barrier of the parallel schedule orders writers before readers. *)

type t

val create : int -> t
(** [create n] allocates windows for [n] nodes, uninitialized — write
    every node before reading it. *)

val length : t -> int

val set : t -> int -> rise:Ssd_core.Types.win -> fall:Ssd_core.Types.win -> unit
(** @raise Invalid_argument on an out-of-range node id. *)

val rise : t -> int -> Ssd_core.Types.win
val fall : t -> int -> Ssd_core.Types.win
(** Materialize one transition's window.
    @raise Invalid_argument on an out-of-range node id. *)

val eq : t -> int -> rise:Ssd_core.Types.win -> fall:Ssd_core.Types.win -> bool
(** Bitwise ([Int64.bits_of_float]) comparison of the stored slots
    against a candidate, without materializing the stored window — the
    incremental engine's cutoff test. *)

val bytes : t -> int
(** Payload footprint in bytes: [64 * length]. *)
