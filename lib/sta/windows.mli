(** Packed per-node rise/fall timing windows, one or more corner planes.

    One contiguous float64 Bigarray holds eight slots per node (rise and
    fall, arrival and transition-time, lo and hi bounds) instead of a
    per-node tree of records — 64 bytes per node per plane, off the
    OCaml heap (neither scanned nor moved by the GC), walked
    sequentially by the levelized STA forward pass and the incremental
    engine.

    A store created with [planes = K] carries K independent timing
    planes — one per process corner — laid out plane-major so each
    corner's windows are contiguous.  The legacy accessors ({!set},
    {!rise}, {!fall}, {!eq}) address plane 0, keeping every single-plane
    call site unchanged.

    Loads and stores are bit-preserving, so a window materialized by
    {!rise}/{!fall} is bit-identical to the one {!set} packed — the
    invariant that keeps the packed path bit-identical to the
    record-array seed representation ({!Sta.analyze_ref}).

    Concurrent {!set}/{!set_plane} on distinct (plane, node) slots from
    several domains is safe (disjoint plain float writes, no OCaml-heap
    mutation); the level barrier of the parallel schedule orders writers
    before readers. *)

type t

val create : ?planes:int -> int -> t
(** [create n] allocates windows for [n] nodes and [planes] corner
    planes (default 1), uninitialized — write every slot before reading
    it.  @raise Invalid_argument on a negative size or [planes < 1]. *)

val length : t -> int
val planes : t -> int

val set : t -> int -> rise:Ssd_core.Types.win -> fall:Ssd_core.Types.win -> unit
(** Plane-0 store.  @raise Invalid_argument on an out-of-range node id. *)

val set_plane :
  t -> plane:int -> int
  -> rise:Ssd_core.Types.win -> fall:Ssd_core.Types.win -> unit
(** @raise Invalid_argument on an out-of-range node id or plane. *)

val rise : t -> int -> Ssd_core.Types.win
val fall : t -> int -> Ssd_core.Types.win
(** Materialize one transition's plane-0 window.
    @raise Invalid_argument on an out-of-range node id. *)

val rise_plane : t -> plane:int -> int -> Ssd_core.Types.win
val fall_plane : t -> plane:int -> int -> Ssd_core.Types.win
(** Plane-addressed variants.
    @raise Invalid_argument on an out-of-range node id or plane. *)

val eq : t -> int -> rise:Ssd_core.Types.win -> fall:Ssd_core.Types.win -> bool
(** Bitwise ([Int64.bits_of_float]) comparison of the stored plane-0
    slots against a candidate, without materializing the stored window —
    the incremental engine's cutoff test. *)

val plane_eq : t -> plane:int -> t -> plane:int -> bool
(** Bitwise equality of one whole plane against a plane of another store
    (false when the node counts differ) — the batched-vs-scalar
    bit-identity check.  @raise Invalid_argument on an out-of-range
    plane. *)

val data : t -> (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The raw backing array, for alloc-free bulk readers (the batched
    corner sweep's gather loop).  Slot order per node: rise arrival
    lo/hi, rise tt lo/hi, fall arrival lo/hi, fall tt lo/hi. *)

val base : t -> plane:int -> int -> int
(** [base t ~plane i] is the flat index of node [i]'s first slot in
    [plane] — unchecked; callers validate ids once outside their bulk
    loop. *)

val bytes : t -> int
(** Payload footprint in bytes: [64 * planes * length]. *)
