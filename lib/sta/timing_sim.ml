module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Types = Ssd_core.Types
module Delay_model = Ssd_core.Delay_model
module Netlist = Ssd_circuit.Netlist

type line = { v1 : bool; v2 : bool; event : Types.event option }

let rising l = (not l.v1) && l.v2
let falling l = l.v1 && not l.v2

let simulate ?(pi_arrival = 0.) ?(pi_tt = 0.25e-9) ?(extra_delay = fun _ -> 0.)
    ~library ~model nl vectors =
  let pis = Netlist.inputs nl in
  if Array.length vectors <> List.length pis then
    invalid_arg "Timing_sim.simulate: PI vector arity mismatch";
  let n = Netlist.size nl in
  let lines = Array.make n { v1 = false; v2 = false; event = None } in
  List.iteri
    (fun rank i ->
      let v1, v2 = vectors.(rank) in
      let event =
        if v1 <> v2 then
          Some
            {
              Types.e_arr = pi_arrival +. extra_delay i;
              e_tt = pi_tt;
            }
        else None
      in
      lines.(i) <- { v1; v2; event })
    pis;
  Netlist.iter_gates_topo nl ~f:(fun i kind fanin ->
      let cell =
        (* reuse the STA cell lookup (including its unsupported-gate
           error reporting) *)
        Sta.cell_of_gate library kind (Array.length fanin)
      in
      let ins = Array.map (fun j -> lines.(j)) fanin in
      let frame sel =
        Ssd_circuit.Gate.eval kind
          (Array.to_list (Array.map sel ins))
      in
      let v1 = frame (fun l -> l.v1) in
      let v2 = frame (fun l -> l.v2) in
      let event =
        if v1 = v2 then None
        else begin
          let load = Netlist.load_of nl i in
          let ctl_in_is_fall =
            match cell.Charlib.kind with
            | Sweep.Nand -> true
            | Sweep.Nor -> false
          in
          let out_rises = (not v1) && v2 in
          (* which input transition direction caused this response *)
          let causal_is_ctl = out_rises = ctl_in_is_fall in
          let wanted l =
            if causal_is_ctl then
              if ctl_in_is_fall then falling l else rising l
            else if ctl_in_is_fall then rising l
            else falling l
          in
          let transitions =
            Array.to_list ins
            |> List.mapi (fun pos l -> (pos, l))
            |> List.filter_map (fun (pos, l) ->
                   match l.event with
                   | Some e when wanted l ->
                     Some
                       {
                         Types.pos;
                         arrival = e.Types.e_arr;
                         t_tr = e.Types.e_tt;
                       }
                   | Some _ | None -> None)
          in
          match transitions with
          | [] ->
            (* a static output change without a causal input event can
               only arise from a hazard we do not model; treat as
               instantaneous inheritance of the latest input event *)
            let latest =
              Array.fold_left
                (fun acc l ->
                  match l.event with
                  | Some e -> Float.max acc e.Types.e_arr
                  | None -> acc)
                0. ins
            in
            Some { Types.e_arr = latest +. extra_delay i; e_tt = pi_tt }
          | _ ->
            let e =
              if causal_is_ctl then
                model.Delay_model.ctl_event cell ~fanout:load transitions
              else model.Delay_model.non_event cell ~fanout:load transitions
            in
            Some { e with Types.e_arr = e.Types.e_arr +. extra_delay i }
        end
      in
      lines.(i) <- { v1; v2; event });
  lines

let po_latest nl lines =
  List.fold_left
    (fun acc i ->
      match lines.(i).event with
      | Some e -> (
        match acc with
        | Some best -> Some (Float.max best e.Types.e_arr)
        | None -> Some e.Types.e_arr)
      | None -> acc)
    None (Netlist.outputs nl)
