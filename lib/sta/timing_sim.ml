module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Types = Ssd_core.Types
module Delay_model = Ssd_core.Delay_model
module Netlist = Ssd_circuit.Netlist

type line = { v1 : bool; v2 : bool; event : Types.event option }

let rising l = (not l.v1) && l.v2
let falling l = l.v1 && not l.v2

(* Event computation for one gate, shared by the full simulation and the
   cone resimulation.  [get] reads the line of a fan-in id; both callers
   perform the same floating-point operations in the same order, which is
   what makes cone resimulation bit-identical to a full run. *)
let gate_event ~library ~model ~pi_tt ~extra_delay nl ~get i kind fanin v1 v2 =
  let cell =
    (* reuse the STA cell lookup (including its unsupported-gate error
       reporting); looked up even for a static output so non-primitive
       gates are always rejected *)
    Sta.cell_of_gate library kind (Array.length fanin)
  in
  if v1 = v2 then None
  else begin
    let load = Netlist.load_of nl i in
    let ctl_in_is_fall =
      match cell.Charlib.kind with
      | Sweep.Nand -> true
      | Sweep.Nor -> false
    in
    let out_rises = (not v1) && v2 in
    (* which input transition direction caused this response *)
    let causal_is_ctl = out_rises = ctl_in_is_fall in
    let wanted l =
      if causal_is_ctl then
        if ctl_in_is_fall then falling l else rising l
      else if ctl_in_is_fall then rising l
      else falling l
    in
    let transitions =
      let acc = ref [] in
      for pos = Array.length fanin - 1 downto 0 do
        let l = get fanin.(pos) in
        match l.event with
        | Some e when wanted l ->
          acc :=
            { Types.pos; arrival = e.Types.e_arr; t_tr = e.Types.e_tt }
            :: !acc
        | Some _ | None -> ()
      done;
      !acc
    in
    match transitions with
    | [] ->
      (* a static output change without a causal input event can only
         arise from a hazard we do not model; treat as instantaneous
         inheritance of the latest input event *)
      let latest =
        Array.fold_left
          (fun acc j ->
            match (get j).event with
            | Some e -> Float.max acc e.Types.e_arr
            | None -> acc)
          0. fanin
      in
      Some { Types.e_arr = latest +. extra_delay i; e_tt = pi_tt }
    | _ ->
      let e =
        if causal_is_ctl then
          model.Delay_model.ctl_event cell ~fanout:load transitions
        else model.Delay_model.non_event cell ~fanout:load transitions
      in
      Some { e with Types.e_arr = e.Types.e_arr +. extra_delay i }
  end

let simulate ?(pi_arrival = 0.) ?(pi_tt = 0.25e-9) ?(extra_delay = fun _ -> 0.)
    ~library ~model nl vectors =
  let pis = Netlist.inputs nl in
  if Array.length vectors <> List.length pis then
    invalid_arg "Timing_sim.simulate: PI vector arity mismatch";
  let n = Netlist.size nl in
  let lines = Array.make n { v1 = false; v2 = false; event = None } in
  List.iteri
    (fun rank i ->
      let v1, v2 = vectors.(rank) in
      let event =
        if v1 <> v2 then
          Some
            {
              Types.e_arr = pi_arrival +. extra_delay i;
              e_tt = pi_tt;
            }
        else None
      in
      lines.(i) <- { v1; v2; event })
    pis;
  let get j = lines.(j) in
  Netlist.iter_gates_topo nl ~f:(fun i kind fanin ->
      let n_in = Array.length fanin in
      let v1 = Ssd_circuit.Gate.eval_fanin kind (fun p -> lines.(fanin.(p)).v1) n_in in
      let v2 = Ssd_circuit.Gate.eval_fanin kind (fun p -> lines.(fanin.(p)).v2) n_in in
      let event =
        gate_event ~library ~model ~pi_tt ~extra_delay nl ~get i kind fanin v1 v2
      in
      lines.(i) <- { v1; v2; event });
  lines

let resimulate_cone ?(pi_arrival = 0.) ?(pi_tt = 0.25e-9) ~library ~model nl
    ~base ~cone ~extra_delay =
  if Array.length base <> Netlist.size nl then
    invalid_arg "Timing_sim.resimulate_cone: line array size mismatch";
  (* copy-on-write scratch: every line outside the cone — in particular
     any primary output the fault cannot reach — keeps the fault-free
     record; only cone lines are re-evaluated, in topological order *)
  let out = Array.copy base in
  Array.iter
    (fun i ->
      match Netlist.node nl i with
      | Netlist.Pi ->
        let l = base.(i) in
        let event =
          if l.v1 <> l.v2 then
            Some { Types.e_arr = pi_arrival +. extra_delay i; e_tt = pi_tt }
          else None
        in
        out.(i) <- { l with event }
      | Netlist.Gate { kind; fanin } ->
        let l = base.(i) in
        let event =
          gate_event ~library ~model ~pi_tt ~extra_delay nl
            ~get:(fun j -> out.(j))
            i kind fanin l.v1 l.v2
        in
        out.(i) <- { l with event })
    cone.Netlist.cone_nodes;
  out

let po_latest nl lines =
  List.fold_left
    (fun acc i ->
      match lines.(i).event with
      | Some e -> (
        match acc with
        | Some best -> Some (Float.max best e.Types.e_arr)
        | None -> Some e.Types.e_arr)
      | None -> acc)
    None (Netlist.outputs nl)
