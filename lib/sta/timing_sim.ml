module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Types = Ssd_core.Types
module Delay_model = Ssd_core.Delay_model
module Netlist = Ssd_circuit.Netlist

type line = { v1 : bool; v2 : bool; event : Types.event option }

let rising l = (not l.v1) && l.v2
let falling l = l.v1 && not l.v2

(* Structure-of-arrays line store: one flag byte per line (bit 0 = frame-1
   value, bit 1 = frame-2 value, bit 2 = event present) plus two flat
   float arrays for the event's arrival and transition time.  A 100k-line
   result costs ~17 bytes/line in three allocations instead of a record
   (plus an event box) per line, and the simulation inner loop reads the
   fan-in events without chasing per-line pointers. *)
type lines = {
  ln_flags : Bytes.t;
  ln_arr : float array;
  ln_tt : float array;
}

let f_v1 = 1
let f_v2 = 2
let f_event = 4

let create n =
  { ln_flags = Bytes.make n '\000';
    ln_arr = Array.make n 0.;
    ln_tt = Array.make n 0. }

let empty = create 0

let length t = Bytes.length t.ln_flags

let copy t =
  { ln_flags = Bytes.copy t.ln_flags;
    ln_arr = Array.copy t.ln_arr;
    ln_tt = Array.copy t.ln_tt }

let flags t i = Char.code (Bytes.get t.ln_flags i)
let v1 t i = flags t i land f_v1 <> 0
let v2 t i = flags t i land f_v2 <> 0
let has_event t i = flags t i land f_event <> 0

let rising_at t i =
  let f = flags t i in
  f land f_v1 = 0 && f land f_v2 <> 0

let falling_at t i =
  let f = flags t i in
  f land f_v1 <> 0 && f land f_v2 = 0

let event_arr t i = t.ln_arr.(i)
let event_tt t i = t.ln_tt.(i)

let event t i =
  if has_event t i then Some { Types.e_arr = t.ln_arr.(i); e_tt = t.ln_tt.(i) }
  else None

let get t i = { v1 = v1 t i; v2 = v2 t i; event = event t i }

let set t i ~v1 ~v2 ~event =
  let f =
    (if v1 then f_v1 else 0)
    lor (if v2 then f_v2 else 0)
    lor (match event with Some _ -> f_event | None -> 0)
  in
  Bytes.set t.ln_flags i (Char.chr f);
  match event with
  | Some e ->
    t.ln_arr.(i) <- e.Types.e_arr;
    t.ln_tt.(i) <- e.Types.e_tt
  | None ->
    t.ln_arr.(i) <- 0.;
    t.ln_tt.(i) <- 0.

let lines_bytes t =
  (* flags payload + two float-array payloads, headers ignored *)
  length t * (1 + 16)

(* Event computation for one gate, shared by the full simulation and the
   cone resimulation.  [src] is the line store the fan-in events are read
   from; both callers perform the same floating-point operations in the
   same order, which is what makes cone resimulation bit-identical to a
   full run. *)
let gate_event ~library ~model ~pi_tt ~extra_delay nl ~src i kind out1 out2 =
  let n_in = Netlist.fanin_count nl i in
  let cell =
    (* reuse the STA cell lookup (including its unsupported-gate error
       reporting); looked up even for a static output so non-primitive
       gates are always rejected *)
    Sta.cell_of_gate library kind n_in
  in
  if out1 = out2 then None
  else begin
    let load = Netlist.load_of nl i in
    let ctl_in_is_fall =
      match cell.Charlib.kind with
      | Sweep.Nand -> true
      | Sweep.Nor -> false
    in
    let out_rises = (not out1) && out2 in
    (* which input transition direction caused this response *)
    let causal_is_ctl = out_rises = ctl_in_is_fall in
    let wanted j =
      if causal_is_ctl then
        if ctl_in_is_fall then falling_at src j else rising_at src j
      else if ctl_in_is_fall then rising_at src j
      else falling_at src j
    in
    let transitions =
      let acc = ref [] in
      for pos = n_in - 1 downto 0 do
        let j = Netlist.fanin_nth nl i pos in
        if has_event src j && wanted j then
          acc :=
            { Types.pos; arrival = event_arr src j; t_tr = event_tt src j }
            :: !acc
      done;
      !acc
    in
    match transitions with
    | [] ->
      (* a static output change without a causal input event can only
         arise from a hazard we do not model; treat as instantaneous
         inheritance of the latest input event *)
      let latest = ref 0. in
      for pos = 0 to n_in - 1 do
        let j = Netlist.fanin_nth nl i pos in
        if has_event src j then latest := Float.max !latest (event_arr src j)
      done;
      Some { Types.e_arr = !latest +. extra_delay i; e_tt = pi_tt }
    | _ ->
      let e =
        if causal_is_ctl then
          model.Delay_model.ctl_event cell ~fanout:load transitions
        else model.Delay_model.non_event cell ~fanout:load transitions
      in
      Some { e with Types.e_arr = e.Types.e_arr +. extra_delay i }
  end

let simulate ?(pi_arrival = 0.) ?(pi_tt = 0.25e-9) ?(extra_delay = fun _ -> 0.)
    ~library ~model nl vectors =
  let pis = Netlist.inputs nl in
  if Array.length vectors <> List.length pis then
    invalid_arg "Timing_sim.simulate: PI vector arity mismatch";
  let n = Netlist.size nl in
  let out = create n in
  List.iteri
    (fun rank i ->
      let a1, a2 = vectors.(rank) in
      let event =
        if a1 <> a2 then
          Some
            {
              Types.e_arr = pi_arrival +. extra_delay i;
              e_tt = pi_tt;
            }
        else None
      in
      set out i ~v1:a1 ~v2:a2 ~event)
    pis;
  Array.iter
    (fun i ->
      if not (Netlist.is_pi nl i) then begin
        let kind = Netlist.gate_kind nl i in
        let n_in = Netlist.fanin_count nl i in
        let a1 =
          Ssd_circuit.Gate.eval_fanin kind
            (fun p -> v1 out (Netlist.fanin_nth nl i p))
            n_in
        in
        let a2 =
          Ssd_circuit.Gate.eval_fanin kind
            (fun p -> v2 out (Netlist.fanin_nth nl i p))
            n_in
        in
        let event =
          gate_event ~library ~model ~pi_tt ~extra_delay nl ~src:out i kind a1
            a2
        in
        set out i ~v1:a1 ~v2:a2 ~event
      end)
    (Netlist.topo_order nl);
  out

let resimulate_cone ?(pi_arrival = 0.) ?(pi_tt = 0.25e-9) ~library ~model nl
    ~base ~cone ~extra_delay =
  if length base <> Netlist.size nl then
    invalid_arg "Timing_sim.resimulate_cone: line store size mismatch";
  (* scratch initialized from the fault-free run: every line outside the
     cone — in particular any primary output the fault cannot reach —
     keeps the fault-free value verbatim; only cone lines are
     re-evaluated, in topological order.  Logic frames cannot change (an
     extra delay shifts events, not values), so only the event slots of
     cone lines are rewritten. *)
  let out = copy base in
  Array.iter
    (fun i ->
      if Netlist.is_pi nl i then begin
        let a1 = v1 base i and a2 = v2 base i in
        let event =
          if a1 <> a2 then
            Some { Types.e_arr = pi_arrival +. extra_delay i; e_tt = pi_tt }
          else None
        in
        set out i ~v1:a1 ~v2:a2 ~event
      end
      else begin
        let kind = Netlist.gate_kind nl i in
        let a1 = v1 base i and a2 = v2 base i in
        let event =
          gate_event ~library ~model ~pi_tt ~extra_delay nl ~src:out i kind a1
            a2
        in
        set out i ~v1:a1 ~v2:a2 ~event
      end)
    cone.Netlist.cone_nodes;
  out

let po_latest nl lines =
  List.fold_left
    (fun acc i ->
      if has_event lines i then
        let a = event_arr lines i in
        match acc with
        | Some best -> Some (Float.max best a)
        | None -> Some a
      else acc)
    None (Netlist.outputs nl)
