(** Static timing analysis with min-max timing windows (paper Section 4).

    Arrival and transition-time windows propagate forward in topological
    order; required-time windows propagate backward from the primary
    outputs.  The analysis is parametric in the delay model — any
    {!Ssd_core.Delay_model.t} carrying window transfer functions (the
    proposed V-shape model or the pin-to-pin baseline). *)

type line_timing = {
  rise : Ssd_core.Types.win;
  fall : Ssd_core.Types.win;
}

type required = {
  q_rise : Ssd_util.Interval.t;
  q_fall : Ssd_util.Interval.t;
}

type pi_spec = Run_opts.pi_spec = {
  pi_arrival : Ssd_util.Interval.t;
  pi_tt : Ssd_util.Interval.t;
}

val default_pi_spec : pi_spec
(** Arrival fixed at t = 0; transition time window [0.15 ns, 0.5 ns]. *)

type t

exception Unsupported_gate of string
(** Raised when the netlist contains a gate the characterized library
    cannot time (run {!Ssd_circuit.Decompose.to_primitive} first). *)

val cell_of_gate :
  Ssd_cell.Charlib.t -> Ssd_circuit.Gate.kind -> int -> Ssd_cell.Charlib.cell
(** Map a primitive gate (NAND/NOR/NOT) with the given fan-in count to its
    characterized cell.  @raise Unsupported_gate *)

val windowing_of : Ssd_core.Delay_model.t -> Ssd_core.Delay_model.windowing
(** The model's window transfer functions.
    @raise Invalid_argument when the model carries none. *)

val pi_window : pi_spec -> Ssd_core.Types.win
(** The window a PI spec induces on both transitions of the input. *)

val gate_windows :
  ?cache:Ssd_core.Eval_cache.t ->
  windowing:Ssd_core.Delay_model.windowing ->
  cell:Ssd_cell.Charlib.cell ->
  load:int ->
  line_timing list ->
  line_timing
(** Output windows of one gate given its fan-in windows (list order =
    input positions, index 0 closest to the output).  The gate branch of
    {!eval_node}, exposed so the {!Engine} can evaluate through per-node
    cached cell/load slots without repeating the library lookup. *)

val shift_timing : line_timing -> float -> line_timing
(** Translate both transitions' arrival windows by a line's extra delay;
    [0.] is the bit-exact identity (never flips a negative zero). *)

val eval_node :
  ?cache:Ssd_core.Eval_cache.t ->
  windowing:Ssd_core.Delay_model.windowing ->
  library:Ssd_cell.Charlib.t ->
  Ssd_circuit.Netlist.t ->
  (int -> line_timing) ->
  pi_win:Ssd_core.Types.win ->
  extra:float ->
  int ->
  line_timing
(** The forward pass's per-node kernel: the windows of node [i] given the
    already-computed fan-in entries read through the timing getter
    ([pi_win] for a PI), with the line's arrival windows translated by
    [extra] (the crosstalk-fault primitive; [0.] is the bit-exact
    identity).  A pure function of those inputs — the contract that makes
    the sequential, levelized-parallel and incremental ({!Engine})
    schedules bit-identical.  The getter abstracts the storage: the
    packed {!Windows} store and {!analyze_ref}'s record array feed the
    identical float values through the identical operations.  Shared by
    {!analyze_with}, {!analyze_ref} and {!Engine}; reads only fan-in
    entries, so concurrent calls for distinct nodes of one logic level
    are safe.  @raise Unsupported_gate *)

val analyze_with :
  ?extra_delay:(int -> float) ->
  ?pi_override:(int -> Run_opts.pi_spec option) ->
  Run_opts.t ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  t
(** Forward pass only, under one {!Run_opts.t} record.

    [opts.jobs] is the number of execution lanes: [1] walks the netlist
    sequentially in topological order, [> 1] fans each logic level's
    nodes across that many domains (see {!Par}), and [<= 0] auto-selects
    [Domain.recommended_domain_count ()].  Results are bit-identical
    regardless of [jobs].

    [opts.obs] (default disabled) wires the analysis into a telemetry
    sink: gate evaluations count into [sta.gates], each level runs under
    a span [sta.level.<l>] (per-level wall time in the report, one trace
    event per level), level widths feed the [sta.level_gates] histogram,
    the {!Par} pool reports lane utilization and barrier waits, and —
    when [opts.cache] is on — the memo statistics land in
    [sta.cache.hits] / [sta.cache.misses] / [sta.cache.entries].
    Instrumented runs walk level-by-level even at [jobs = 1]; results
    stay bit-identical to the uninstrumented engine in every combination.

    [opts.cache] (default [false]) memoizes the per-cell corner searches
    across gate instances (see {!Ssd_core.Eval_cache}); it never changes
    the results, only the work done to reach them.  It is off by default
    because on the bundled analytic library a corner search is a handful
    of polynomial evaluations (~0.1 us) — cheaper than any thread-safe
    table hit — so memoization only pays when the per-cell kernels are
    expensive (table-driven or re-simulated characterizations).

    [extra_delay] (default: constant [0.]) translates a line's arrival
    windows by that amount — the window-level image of
    {!Timing_sim.simulate}'s fault-injection hook.  [pi_override]
    (default: [None] everywhere) replaces [opts.pi_spec] on individual
    primary inputs.  Both default to bit-exact no-ops.

    @raise Unsupported_gate, or [Invalid_argument] when the model has no
    window transfer functions. *)

val analyze :
  ?pi_spec:pi_spec ->
  ?jobs:int ->
  ?cache:bool ->
  ?obs:Ssd_obs.Obs.t ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  t
(** Thin wrapper over {!analyze_with} kept for source compatibility: the
    optional arguments are bundled through {!Run_opts.make}.  Deprecated
    in favour of {!analyze_with}; new call sites should build a
    {!Run_opts.t}. *)

val analyze_ref :
  ?pi_spec:pi_spec ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  line_timing array
(** The seed representation, kept as the bit-identity oracle: a plain
    sequential topological walk storing per-node [line_timing] records in
    an array.  Same kernel and schedule as [analyze ~jobs:1], different
    storage — the scale bench and the property tests assert the packed
    {!Windows} path reproduces this array bit for bit.
    @raise Unsupported_gate *)

val netlist : t -> Ssd_circuit.Netlist.t
val library : t -> Ssd_cell.Charlib.t
val timing : t -> int -> line_timing
(** Windows of any node id (materialized from the packed store). *)

val windows : t -> Windows.t
(** The packed per-node window store itself — allocation-free bitwise
    comparisons via {!Windows.eq}. *)

val cache_stats : t -> Ssd_core.Eval_cache.stats option
(** Structured {!Ssd_core.Eval_cache.stats} snapshot of the memo table
    used by the analysis ([Ssd_core.Eval_cache.to_string] renders the
    legacy one-liner); [None] when it ran with [cache:false]. *)

val po_window : t -> Ssd_util.Interval.t
(** Union of both transitions' arrival windows over all primary outputs:
    [lo] is the circuit min-delay, [hi] the max-delay (Table 2's metric). *)

val min_delay : t -> float
val max_delay : t -> float

val compute_required : t -> clock_period:float -> required array
(** Backward pass: required windows per node, [A_S >= Q_S] (hold side,
    here 0) and [A_L <= Q_L] (setup side, the clock period) at the POs. *)

val violations : t -> required array -> (int * string) list
(** Lines whose arrival window leaves its required window, with a
    human-readable description. *)

val summary : t -> string
