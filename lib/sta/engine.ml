module Interval = Ssd_util.Interval
module Types = Ssd_core.Types
module Delay_model = Ssd_core.Delay_model
module Netlist = Ssd_circuit.Netlist
module Gate = Ssd_circuit.Gate
module Charlib = Ssd_cell.Charlib
module Obs = Ssd_obs.Obs
module Json = Ssd_util.Json

type edit =
  | Set_pi_spec of { pi : int; spec : Run_opts.pi_spec }
  | Swap_gate of { node : int; kind : Gate.kind }
  | Set_extra_delay of { line : int; delta : float }
  | Set_model of Delay_model.t

(* One journal entry: the previous value of a single overlay slot or
   timing entry.  A frame (one edit's patch list) touches each location
   at most once, so restoring a frame is order-insensitive. *)
type patch =
  | P_timing of int * Sta.line_timing
  | P_kind of int * Gate.kind option
  | P_extra of int * float
  | P_pi of int * Run_opts.pi_spec option
  | P_model of Delay_model.t * Delay_model.windowing

type stats = {
  edits : int;
  reverts : int;
  nodes_recomputed : int;
  nodes_skipped : int;
  cutoffs : int;
}

type checkpoint = { cp_depth : int }

type t = {
  e_netlist : Netlist.t;
  e_library : Charlib.t;
  e_opts : Run_opts.t;
  e_jobs : int;
  mutable e_model : Delay_model.t;
  mutable e_windowing : Delay_model.windowing;
  e_cache : Ssd_core.Eval_cache.t option;
  e_timing : Windows.t;
  (* per-node evaluation slots: the resolved cell and electrical load are
     fixed per node (a kind swap refreshes its slot), so the hot path
     skips the library lookup of the generic kernel; [None] marks a PI *)
  e_cells : Charlib.cell option array;
  e_loads : int array;
  e_pi_win : Types.win;  (* window of the session-default PI spec *)
  (* edit overlays over the immutable base netlist; [None] / [0.] means
     "as built" *)
  e_kind_ov : Gate.kind option array;
  e_extra : float array;
  e_pi_ov : Run_opts.pi_spec option array;
  mutable e_journal : patch list list;  (* newest frame first *)
  mutable e_depth : int;
  mutable e_base_depth : int;  (* journal reaches back to this depth *)
  mutable e_pool : Par.t option;  (* created on first parallel edit *)
  mutable e_closed : bool;
  mutable e_stats : stats;
  c_edits : Obs.counter;
  c_reverts : Obs.counter;
  c_recomputed : Obs.counter;
  c_skipped : Obs.counter;
  c_cutoffs : Obs.counter;
  c_cone : Obs.counter;
  tm_edit : Obs.timer;
  h_cone : Obs.histogram;     (* dirty-cone sizes, in nodes *)
  h_edit_us : Obs.histogram;  (* per-edit latency, in us *)
}

let check_open t ctx =
  if t.e_closed then invalid_arg (ctx ^ ": engine is closed")

(* The node as currently edited: a swapped gate keeps its fan-in. *)
let node_view t i =
  match t.e_kind_ov.(i) with
  | None -> Netlist.node t.e_netlist i
  | Some kind -> (
    match Netlist.node t.e_netlist i with
    | Netlist.Gate { fanin; _ } -> Netlist.Gate { kind; fanin }
    | Netlist.Pi -> assert false)

let pi_spec_of t i =
  match t.e_pi_ov.(i) with
  | Some s -> s
  | None -> t.e_opts.Run_opts.pi_spec

let extra_delay_of t i = t.e_extra.(i)

(* materialize one node's committed windows from the packed store *)
let get t j =
  { Sta.rise = Windows.rise t.e_timing j; fall = Windows.fall t.e_timing j }

(* Exactly {!Sta.eval_node}'s computation, routed through the per-node
   cell/load slots: same cell, same load, same fan-in list, so the
   windows come back bit-identical to the generic kernel's. *)
let eval_one t i =
  match t.e_cells.(i) with
  | None ->
    let pi_win =
      match t.e_pi_ov.(i) with
      | Some s -> Sta.pi_window s
      | None -> t.e_pi_win
    in
    Sta.shift_timing { Sta.rise = pi_win; fall = pi_win } t.e_extra.(i)
  | Some cell ->
    let nl = t.e_netlist in
    let n_in = Netlist.fanin_count nl i in
    let fanin_timings = ref [] in
    for p = n_in - 1 downto 0 do
      fanin_timings := get t (Netlist.fanin_nth nl i p) :: !fanin_timings
    done;
    Sta.shift_timing
      (Sta.gate_windows ?cache:t.e_cache ~windowing:t.e_windowing ~cell
         ~load:t.e_loads.(i) !fanin_timings)
      t.e_extra.(i)

(* Re-resolve a node's cell slot from its current (overlaid) kind. *)
let refresh_cell t i =
  match node_view t i with
  | Netlist.Pi -> ()
  | Netlist.Gate { kind; fanin } ->
    t.e_cells.(i) <- Some (Sta.cell_of_gate t.e_library kind (Array.length fanin))

let pool_of t =
  match t.e_pool with
  | Some p -> p
  | None ->
    let p = Par.create ~obs:t.e_opts.Run_opts.obs ~jobs:t.e_jobs () in
    t.e_pool <- Some p;
    p

(* Re-evaluate the dirty part of [nodes] (a topologically ordered slice —
   a fanout cone, or the whole netlist for a model retarget).  A node is
   dirty when it is a root of the edit or some fan-in's windows changed;
   a recomputed node whose windows come back bit-identical is a cutoff —
   it does not dirty its own fanout, which is what keeps a single-line
   edit local even inside a wide cone.  Values never depend on the visit
   schedule (the kernel is a pure function of committed fan-in entries),
   so the sequential topological walk and the level-parallel walk are
   bit-identical. *)
let propagate t ~is_root ~root_eval ~nodes ~frame =
  let nl = t.e_netlist in
  (* push-based dirtying: a node is visited dirty when it is a root or a
     changed node marked it through its fanout edges, so a clean cone
     member costs one flag read instead of a fan-in scan *)
  let dirty = Array.make (Netlist.size nl) false in
  Array.iter (fun i -> if is_root i then dirty.(i) <- true) nodes;
  let recomputed = ref 0 and skipped = ref 0 and cutoffs = ref 0 in
  let eval i =
    match root_eval with
    | Some f when is_root i -> f ()
    | _ -> eval_one t i
  in
  let commit i nv =
    incr recomputed;
    (* the cutoff test compares against the packed slots bitwise, without
       materializing the stored windows *)
    if Windows.eq t.e_timing i ~rise:nv.Sta.rise ~fall:nv.Sta.fall then
      incr cutoffs
    else begin
      frame := P_timing (i, get t i) :: !frame;
      Windows.set t.e_timing i ~rise:nv.Sta.rise ~fall:nv.Sta.fall;
      Netlist.iter_fanout nl i ~f:(fun j -> dirty.(j) <- true)
    end
  in
  if t.e_jobs <= 1 then
    Array.iter
      (fun i -> if dirty.(i) then commit i (eval i) else incr skipped)
      nodes
  else begin
    (* Bucket the slice by logic level (a topological order need not be
       level-sorted); nodes of one level are independent, so each bucket
       fans out across the pool while dirty-filtering, the cutoff
       comparison and journaling stay in the orchestrator. *)
    let pool = pool_of t in
    let by_level = Array.make (Netlist.depth nl + 1) [] in
    Array.iter
      (fun i ->
        let l = Netlist.level nl i in
        by_level.(l) <- i :: by_level.(l))
      nodes;
    Array.iter
      (fun bucket ->
        match List.rev bucket with
        | [] -> ()
        | bucket ->
          let cand =
            Array.of_list
              (List.filter
                 (fun i ->
                   if not dirty.(i) then incr skipped;
                   dirty.(i))
                 bucket)
          in
          let nc = Array.length cand in
          if nc > 0 then begin
            let news = Array.make nc (get t cand.(0)) in
            Par.parallel_for pool ~chunk:1 ~label:"eco" ~n:nc (fun k ->
                news.(k) <- eval cand.(k));
            Array.iteri (fun k i -> commit i news.(k)) cand
          end)
      by_level
  end;
  Obs.add t.c_recomputed !recomputed;
  Obs.add t.c_skipped !skipped;
  Obs.add t.c_cutoffs !cutoffs;
  t.e_stats <-
    {
      t.e_stats with
      nodes_recomputed = t.e_stats.nodes_recomputed + !recomputed;
      nodes_skipped = t.e_stats.nodes_skipped + !skipped;
      cutoffs = t.e_stats.cutoffs + !cutoffs;
    }

let propagate_cone t ~root_eval ~root ~frame =
  let cone = Netlist.fanout_cone t.e_netlist root in
  Obs.add t.c_cone (Array.length cone.Netlist.cone_nodes);
  Obs.observe t.h_cone (float_of_int (Array.length cone.Netlist.cone_nodes));
  propagate t ~is_root:(fun i -> i = root) ~root_eval
    ~nodes:cone.Netlist.cone_nodes ~frame

let create ?(opts = Run_opts.default) ~library ~model nl =
  let windowing = Sta.windowing_of model in
  let jobs =
    if opts.Run_opts.jobs <= 0 then Par.default_jobs ()
    else opts.Run_opts.jobs
  in
  let obs = opts.Run_opts.obs in
  let n = Netlist.size nl in
  let pi_win = Sta.pi_window opts.Run_opts.pi_spec in
  let t =
    {
      e_netlist = nl;
      e_library = library;
      e_opts = opts;
      e_jobs = jobs;
      e_model = model;
      e_windowing = windowing;
      e_cache =
        (if opts.Run_opts.cache then Some (Ssd_core.Eval_cache.create ())
         else None);
      e_timing = Windows.create n;
      e_cells =
        Array.init n (fun i ->
            match Netlist.node nl i with
            | Netlist.Pi -> None
            | Netlist.Gate { kind; fanin } ->
              Some (Sta.cell_of_gate library kind (Array.length fanin)));
      e_loads = Array.init n (Netlist.load_of nl);
      e_pi_win = pi_win;
      e_kind_ov = Array.make n None;
      e_extra = Array.make n 0.;
      e_pi_ov = Array.make n None;
      e_journal = [];
      e_depth = 0;
      e_base_depth = 0;
      e_pool = None;
      e_closed = false;
      e_stats =
        { edits = 0; reverts = 0; nodes_recomputed = 0; nodes_skipped = 0;
          cutoffs = 0 };
      c_edits = Obs.counter obs "engine.edits";
      c_reverts = Obs.counter obs "engine.reverts";
      c_recomputed = Obs.counter obs "engine.nodes_recomputed";
      c_skipped = Obs.counter obs "engine.nodes_skipped";
      c_cutoffs = Obs.counter obs "engine.cutoffs";
      c_cone = Obs.counter obs "engine.cone_nodes";
      tm_edit = Obs.timer obs "engine.edit";
      (* fixed edges so observations from parallel edits merge bin-wise;
         cone sizes are bounded by the netlist, latencies clip into the
         top bin beyond 10 ms *)
      h_cone =
        Obs.histogram ~bins:20 ~lo:0.
          ~hi:(float_of_int (max 16 n))
          obs "engine.cone_size";
      h_edit_us =
        Obs.histogram ~bins:20 ~lo:0. ~hi:10_000. obs "engine.edit_us";
    }
  in
  (* initial full forward pass: a plain sequential topological walk (the
     session's baseline, not counted as edit work) *)
  Array.iter
    (fun i ->
      let lt = eval_one t i in
      Windows.set t.e_timing i ~rise:lt.Sta.rise ~fall:lt.Sta.fall)
    (Netlist.topo_order nl);
  t

let close t =
  if not t.e_closed then begin
    t.e_closed <- true;
    (match t.e_pool with Some p -> Par.shutdown p | None -> ());
    t.e_pool <- None
  end

let with_engine ?opts ~library ~model nl f =
  let t = create ?opts ~library ~model nl in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let edit_name = function
  | Set_pi_spec _ -> "set_pi_spec"
  | Swap_gate _ -> "swap_gate"
  | Set_extra_delay _ -> "set_extra_delay"
  | Set_model _ -> "set_model"

(* ---- serializable edit codec ----

   One wire format shared by the eco script interpreter and the serve
   protocol: signals travel by name (ids are a per-netlist artifact),
   times in seconds, models by registry name.  [edit_of_json] only
   resolves shape and names; semantic validation (PI vs gate, primitive
   kind, finite delta) stays in {!apply}, so the two paths cannot
   drift. *)

let iv_json iv = Json.List [ Json.Num (Interval.lo iv); Json.Num (Interval.hi iv) ]

let edit_to_json nl = function
  | Set_pi_spec { pi; spec } ->
    Json.Obj
      [
        ("op", Json.Str "pi");
        ("signal", Json.Str (Netlist.signal_name nl pi));
        ("arrival", iv_json spec.Run_opts.pi_arrival);
        ("tt", iv_json spec.Run_opts.pi_tt);
      ]
  | Swap_gate { node; kind } ->
    Json.Obj
      [
        ("op", Json.Str "swap");
        ("signal", Json.Str (Netlist.signal_name nl node));
        ("kind", Json.Str (String.lowercase_ascii (Gate.to_string kind)));
      ]
  | Set_extra_delay { line; delta } ->
    Json.Obj
      [
        ("op", Json.Str "extra");
        ("signal", Json.Str (Netlist.signal_name nl line));
        ("delta", Json.Num delta);
      ]
  | Set_model m ->
    Json.Obj [ ("op", Json.Str "model"); ("name", Json.Str m.Delay_model.name) ]

let model_names () =
  String.concat ", " (List.map (fun m -> m.Delay_model.name) Delay_model.all)

let edit_of_json nl j =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let signal () =
    match Json.member_string "signal" j with
    | None -> err "missing \"signal\""
    | Some s -> (
      match Netlist.find nl s with
      | Some i -> Ok i
      | None -> err "unknown signal %S" s)
  in
  let interval key =
    match Json.member key j with
    | Some (Json.List [ a; b ]) -> (
      match (Json.number_value a, Json.number_value b) with
      | Some lo, Some hi -> (
        try Ok (Interval.make lo hi)
        with Invalid_argument m -> Error m)
      | _ -> err "%S must be a [lo, hi] number pair" key)
    | _ -> err "missing or malformed %S (want [lo, hi])" key
  in
  match Json.member_string "op" j with
  | Some "pi" ->
    let* pi = signal () in
    let* pi_arrival = interval "arrival" in
    let* pi_tt = interval "tt" in
    Ok (Set_pi_spec { pi; spec = { Run_opts.pi_arrival; pi_tt } })
  | Some "swap" -> (
    let* node = signal () in
    match Json.member_string "kind" j with
    | None -> err "missing \"kind\""
    | Some k -> (
      match Gate.of_string k with
      | Some kind -> Ok (Swap_gate { node; kind })
      | None -> err "unknown gate kind %S" k))
  | Some "extra" -> (
    let* line = signal () in
    match Json.member_number "delta" j with
    | Some delta -> Ok (Set_extra_delay { line; delta })
    | None -> err "missing or non-numeric \"delta\"")
  | Some "model" -> (
    match Json.member_string "name" j with
    | None -> err "missing \"name\""
    | Some name -> (
      match Delay_model.find name with
      | Some m -> Ok (Set_model m)
      | None -> err "unknown model %S (try: %s)" name (model_names ())))
  | Some op -> err "unknown edit op %S" op
  | None -> err "edit has no \"op\" field"

let edit_equal a b =
  let beq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  let iv_eq x y =
    beq (Interval.lo x) (Interval.lo y) && beq (Interval.hi x) (Interval.hi y)
  in
  match (a, b) with
  | Set_pi_spec x, Set_pi_spec y ->
    x.pi = y.pi
    && iv_eq x.spec.Run_opts.pi_arrival y.spec.Run_opts.pi_arrival
    && iv_eq x.spec.Run_opts.pi_tt y.spec.Run_opts.pi_tt
  | Swap_gate x, Swap_gate y -> x.node = y.node && x.kind = y.kind
  | Set_extra_delay x, Set_extra_delay y -> x.line = y.line && beq x.delta y.delta
  | Set_model x, Set_model y ->
    String.equal x.Delay_model.name y.Delay_model.name
  | (Set_pi_spec _ | Swap_gate _ | Set_extra_delay _ | Set_model _), _ -> false

let describe_edit nl = function
  | Set_extra_delay { line; delta } ->
    Printf.sprintf "extra %s %+g ps" (Netlist.signal_name nl line)
      (delta *. 1e12)
  | Swap_gate { node; kind } ->
    Printf.sprintf "swap %s %s" (Netlist.signal_name nl node)
      (Gate.to_string kind)
  | Set_pi_spec { pi; spec } ->
    Printf.sprintf "pi %s [%g, %g] tt [%g, %g] ns"
      (Netlist.signal_name nl pi)
      (Interval.lo spec.Run_opts.pi_arrival *. 1e9)
      (Interval.hi spec.Run_opts.pi_arrival *. 1e9)
      (Interval.lo spec.Run_opts.pi_tt *. 1e9)
      (Interval.hi spec.Run_opts.pi_tt *. 1e9)
  | Set_model m -> "model " ^ m.Delay_model.name

(* ---- eco script directives ----

   The text format `ssd eco` replays, one directive per line, in the
   units engineers write (ps for coupling deltas, ns for PI windows);
   the JSON codec above carries seconds.  Both produce the same [edit]
   values, so `ssd eco` and the serve protocol drive {!apply}
   identically. *)

type script_op =
  | S_edit of edit
  | S_checkpoint
  | S_revert
  | S_commit

let script_op_of_line nl raw =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let line =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let toks =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let resolve name =
    match Netlist.find nl name with
    | Some i -> Ok i
    | None -> err "unknown signal %S" name
  in
  let num s =
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> err "not a number: %S" s
  in
  match toks with
  | [] -> Ok None
  | [ "extra"; sg; ps ] ->
    let* line = resolve sg in
    let* d = num ps in
    Ok (Some (S_edit (Set_extra_delay { line; delta = d *. 1e-12 })))
  | [ "swap"; sg; kind ] ->
    let* node = resolve sg in
    let* kind =
      match String.lowercase_ascii kind with
      | "nand" -> Ok Gate.Nand
      | "nor" -> Ok Gate.Nor
      | "not" -> Ok Gate.Not
      | k -> err "unknown gate kind %S (nand, nor or not)" k
    in
    Ok (Some (S_edit (Swap_gate { node; kind })))
  | [ "pi"; sg; alo; ahi; tlo; thi ] ->
    let* pi = resolve sg in
    let* alo = num alo in
    let* ahi = num ahi in
    let* tlo = num tlo in
    let* thi = num thi in
    let iv lo hi =
      try Ok (Interval.make (lo *. 1e-9) (hi *. 1e-9))
      with Invalid_argument m -> Error m
    in
    let* pi_arrival = iv alo ahi in
    let* pi_tt = iv tlo thi in
    Ok (Some (S_edit (Set_pi_spec { pi; spec = { Run_opts.pi_arrival; pi_tt } })))
  | [ "model"; name ] -> (
    match Delay_model.find name with
    | Some m -> Ok (Some (S_edit (Set_model m)))
    | None -> err "unknown model %S (try: %s)" name (model_names ()))
  | [ "checkpoint" ] -> Ok (Some S_checkpoint)
  | [ "revert" ] -> Ok (Some S_revert)
  | [ "commit" ] -> Ok (Some S_commit)
  | cmd :: _ -> err "unknown or malformed directive %S" cmd

let apply t edit =
  check_open t "Engine.apply";
  let nl = t.e_netlist in
  let n = Netlist.size nl in
  let bad fmt = Printf.ksprintf invalid_arg ("Engine.apply: " ^^ fmt) in
  let check_range what i =
    if i < 0 || i >= n then bad "%s id %d out of range [0, %d)" what i n
  in
  (* validate fully before mutating anything: a rejected edit leaves the
     engine exactly as it was *)
  let run =
    match edit with
    | Set_pi_spec { pi; spec } ->
      check_range "PI" pi;
      (match Netlist.node nl pi with
      | Netlist.Pi -> ()
      | Netlist.Gate _ ->
        bad "%s is a gate output, not a primary input"
          (Netlist.signal_name nl pi));
      fun frame ->
        frame := P_pi (pi, t.e_pi_ov.(pi)) :: !frame;
        t.e_pi_ov.(pi) <- Some spec;
        propagate_cone t ~root_eval:None ~root:pi ~frame
    | Swap_gate { node; kind } ->
      check_range "gate" node;
      let arity =
        match Netlist.node nl node with
        | Netlist.Pi ->
          bad "%s is a primary input, not a gate" (Netlist.signal_name nl node)
        | Netlist.Gate { fanin; _ } -> Array.length fanin
      in
      (match kind with
      | Gate.Not when arity <> 1 ->
        bad "cannot swap %d-input gate %s to NOT" arity
          (Netlist.signal_name nl node)
      | Gate.Not | Gate.Nand | Gate.Nor -> ()
      | Gate.And | Gate.Or | Gate.Xor | Gate.Xnor | Gate.Buf ->
        bad "%s is not a primitive kind (NAND/NOR/NOT)" (Gate.to_string kind));
      (* reject uncharacterized arities up front *)
      ignore (Sta.cell_of_gate t.e_library kind arity : Charlib.cell);
      fun frame ->
        frame := P_kind (node, t.e_kind_ov.(node)) :: !frame;
        t.e_kind_ov.(node) <- Some kind;
        refresh_cell t node;
        propagate_cone t ~root_eval:None ~root:node ~frame
    | Set_extra_delay { line; delta } ->
      check_range "line" line;
      if not (Float.is_finite delta) then
        bad "extra delay %g on %s is not finite" delta
          (Netlist.signal_name nl line);
      fun frame ->
        let old = t.e_extra.(line) in
        frame := P_extra (line, old) :: !frame;
        t.e_extra.(line) <- delta;
        (* a line that carried no extra delay stores exactly the kernel
           output, so the root's new windows are a pure translation of
           the stored ones — same expression the kernel would compute,
           without paying its corner searches *)
        let root_eval =
          if old = 0. then
            Some (fun () -> Sta.shift_timing (get t line) delta)
          else None
        in
        propagate_cone t ~root_eval ~root:line ~frame
    | Set_model model ->
      let windowing = Sta.windowing_of model in
      fun frame ->
        frame := P_model (t.e_model, t.e_windowing) :: !frame;
        t.e_model <- model;
        t.e_windowing <- windowing;
        propagate t ~is_root:(fun _ -> true) ~root_eval:None ~nodes:(Netlist.topo_order nl)
          ~frame
  in
  let frame = ref [] in
  let obs = t.e_opts.Run_opts.obs in
  let t0 = if Obs.enabled obs then Obs.now () else 0. in
  Obs.span obs
    ~event:("engine.edit." ^ edit_name edit)
    t.tm_edit
    (fun () -> run frame);
  if Obs.enabled obs then
    Obs.observe t.h_edit_us ((Obs.now () -. t0) *. 1e6);
  t.e_journal <- !frame :: t.e_journal;
  t.e_depth <- t.e_depth + 1;
  Obs.incr t.c_edits;
  t.e_stats <- { t.e_stats with edits = t.e_stats.edits + 1 }

(* One-call corner retarget: derate the session's library and swap in a
   cell-remapped model — the Monte-Carlo sweep's per-sample edit.  [base]
   is the model the remap wraps (default: the paper's proposed model);
   passing the session's current model after a previous retarget would
   chain remaps, so the base is taken explicitly. *)
let retarget_corner ?(base = Delay_model.proposed) t spec =
  check_open t "Engine.retarget_corner";
  let dlib = Ssd_cell.Corners.derate_library spec t.e_library in
  let m =
    Delay_model.remap_cells
      ~name:(base.Delay_model.name ^ "@" ^ spec.Ssd_cell.Corners.c_name)
      (Ssd_cell.Corners.remap_of_library dlib)
      base
  in
  apply t (Set_model m)

let checkpoint t =
  check_open t "Engine.checkpoint";
  { cp_depth = t.e_depth }

let restore t = function
  | P_timing (i, v) -> Windows.set t.e_timing i ~rise:v.Sta.rise ~fall:v.Sta.fall
  | P_kind (i, k) ->
    t.e_kind_ov.(i) <- k;
    refresh_cell t i
  | P_extra (i, x) -> t.e_extra.(i) <- x
  | P_pi (i, s) -> t.e_pi_ov.(i) <- s
  | P_model (m, w) ->
    t.e_model <- m;
    t.e_windowing <- w

let revert t cp =
  check_open t "Engine.revert";
  if cp.cp_depth > t.e_depth then
    invalid_arg
      "Engine.revert: checkpoint is ahead of this engine's history (taken \
       on another engine, or already reverted past)";
  if cp.cp_depth < t.e_base_depth then
    invalid_arg "Engine.revert: checkpoint precedes the last Engine.commit";
  while t.e_depth > cp.cp_depth do
    match t.e_journal with
    | [] -> assert false
    | frame :: rest ->
      List.iter (restore t) frame;
      t.e_journal <- rest;
      t.e_depth <- t.e_depth - 1;
      Obs.incr t.c_reverts;
      t.e_stats <- { t.e_stats with reverts = t.e_stats.reverts + 1 }
  done

let commit t =
  check_open t "Engine.commit";
  t.e_journal <- [];
  t.e_base_depth <- t.e_depth

let netlist t = t.e_netlist
let model t = t.e_model
let opts t = t.e_opts
let depth t = t.e_depth
let stats t = t.e_stats

let cutoff_ratio s =
  if s.nodes_recomputed = 0 then 0.
  else float_of_int s.cutoffs /. float_of_int s.nodes_recomputed

let timing t i =
  check_open t "Engine.timing";
  get t i

let po_window t =
  check_open t "Engine.po_window";
  let pos = Netlist.outputs t.e_netlist in
  match pos with
  | [] -> invalid_arg "Engine.po_window: netlist has no outputs"
  | first :: rest ->
    let win_of i =
      let lt = get t i in
      Interval.hull lt.Sta.rise.Types.w_arr lt.Sta.fall.Types.w_arr
    in
    List.fold_left
      (fun acc i -> Interval.hull acc (win_of i))
      (win_of first) rest

let min_delay t = Interval.lo (po_window t)
let max_delay t = Interval.hi (po_window t)

let edited_netlist t =
  let nl = t.e_netlist in
  if not (Array.exists Option.is_some t.e_kind_ov) then nl
  else
    let n = Netlist.size nl in
    (* same signal names in the same declaration order: the rebuilt
       netlist assigns every line its original id, so overlay indices
       (extra delays, PI specs) remain valid against it *)
    let signals =
      List.init n (fun i -> (Netlist.signal_name nl i, node_view t i))
    in
    let outputs = List.map (Netlist.signal_name nl) (Netlist.outputs nl) in
    Netlist.build ~name:(Netlist.name nl) ~signals ~outputs

let reanalyze t =
  check_open t "Engine.reanalyze";
  Sta.analyze_with
    ~extra_delay:(fun i -> t.e_extra.(i))
    ~pi_override:(fun i -> t.e_pi_ov.(i))
    { t.e_opts with Run_opts.jobs = 1; obs = Obs.disabled }
    ~library:t.e_library ~model:t.e_model (edited_netlist t)

let summary t =
  let w = po_window t in
  let s = t.e_stats in
  Printf.sprintf
    "%s [%s]: PO delay window [%.3f ns, %.3f ns] after %d edit(s) (%d \
     nodes recomputed, %d skipped, %.0f%% cutoff)"
    (Netlist.stats t.e_netlist)
    t.e_model.Delay_model.name
    (Interval.lo w *. 1e9) (Interval.hi w *. 1e9)
    s.edits s.nodes_recomputed s.nodes_skipped
    (100. *. cutoff_ratio s)
