(** Incremental ECO re-timing engine.

    A mutable timing session over one netlist + characterized library:
    created with a full {!Sta}-equivalent forward pass, it then serves
    window queries and accepts {e edits} — per-PI spec changes, gate kind
    swaps, per-line extra delays (the crosstalk-fault primitive) and
    delay-model retargets — re-propagating only the edited line's
    transitive fanout cone ({!Ssd_circuit.Netlist.fanout_cone}) with an
    early cutoff wherever a recomputed node's rise/fall windows come back
    bit-identical.

    {2 Contract}

    After any sequence of edits the engine's windows are bit-identical to
    a fresh {!Sta.analyze_with} of the edited circuit ({!reanalyze} runs
    exactly that reference analysis).  This holds because the per-node
    kernel {!Sta.eval_node} is a pure function of the fan-in windows: a
    node outside every dirty cone — or cut off behind bit-identical
    recomputed windows — already holds the value the full pass would
    recompute.  The guarantee covers any [jobs] lane count and an enabled
    {!Ssd_core.Eval_cache} alike.

    {2 History}

    Every {!apply} pushes an undo frame (previous overlay slots and
    overwritten windows); {!checkpoint} marks a depth and {!revert}
    restores to it in O(windows changed since) without recomputation.
    {!commit} discards accumulated history — bounding memory in
    long-running sessions — after which earlier checkpoints are invalid.

    A session holding [jobs > 1] lazily spawns a persistent {!Par} pool
    on its first parallel propagation; call {!close} (or use
    {!with_engine}) to join the worker domains. *)

type t
(** A timing session.  Not thread-safe: drive each engine from a single
    orchestrating thread (its internal pool parallelizes safely under
    it). *)

type edit =
  | Set_pi_spec of { pi : int; spec : Run_opts.pi_spec }
      (** Override the arrival/transition windows of one primary input. *)
  | Swap_gate of { node : int; kind : Ssd_circuit.Gate.kind }
      (** Re-type a gate to another primitive kind (NAND/NOR, or NOT for
          a 1-input gate); its fan-in is kept. *)
  | Set_extra_delay of { line : int; delta : float }
      (** Translate one line's arrival windows by [delta] seconds — the
          window-level crosstalk-fault primitive ([0.] removes it). *)
  | Set_model of Ssd_core.Delay_model.t
      (** Retarget the delay model; recomputes every node (cutoffs still
          limit journal growth to windows that actually moved). *)

(** {2 Edit codec}

    One serializable form shared by the [ssd eco] script interpreter
    and the serve protocol: signals by name, times in seconds, models
    by registry name.  Decoding resolves names and shape only;
    semantic validation stays in {!apply}. *)

val edit_to_json : Ssd_circuit.Netlist.t -> edit -> Ssd_util.Json.t
(** [{"op":"pi"|"swap"|"extra"|"model", ...}]; intervals as [[lo, hi]]
    number pairs in seconds.  Inverse of {!edit_of_json} (a
    {!Set_model} survives only when its name is in
    {!Ssd_core.Delay_model.all}). *)

val edit_of_json :
  Ssd_circuit.Netlist.t -> Ssd_util.Json.t -> (edit, string) result
(** Decode one edit against the given netlist's signal names.  [Error]
    carries a human-readable reason (unknown signal/model/op, malformed
    interval, missing field). *)

val edit_equal : edit -> edit -> bool
(** Structural equality with bitwise float comparison (models compare
    by name) — the round-trip oracle for the codec property tests. *)

val describe_edit : Ssd_circuit.Netlist.t -> edit -> string
(** One-line human description in script units (ps/ns), as the eco
    replay log prints. *)

(** {2 Script directives}

    The [ssd eco] text format: one directive per line ([extra SIG PS],
    [swap SIG KIND], [pi SIG ALO AHI TLO THI] in ns, [model NAME],
    [checkpoint], [revert], [commit]; ['#'] starts a comment). *)

type script_op =
  | S_edit of edit
  | S_checkpoint
  | S_revert
  | S_commit

val script_op_of_line :
  Ssd_circuit.Netlist.t -> string -> (script_op option, string) result
(** Parse one script line; [Ok None] for a blank or comment line. *)

type checkpoint
(** A history mark.  Only meaningful for the engine it was taken from. *)

type stats = {
  edits : int;  (** edits applied (reverted ones included) *)
  reverts : int;  (** frames undone by {!revert} *)
  nodes_recomputed : int;  (** kernel evaluations paid across all edits *)
  nodes_skipped : int;
      (** cone members never re-evaluated because no fan-in changed *)
  cutoffs : int;
      (** recomputed nodes whose windows came back bit-identical *)
}
(** Lifetime work counters (also emitted on the session's telemetry sink
    as [engine.*] counters). *)

val create :
  ?opts:Run_opts.t ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  t
(** Open a session: one full forward pass under [opts] (default
    {!Run_opts.default}).  [opts.jobs] sets the session's lane count for
    subsequent propagations, [opts.cache] memoizes corner searches across
    the session's whole lifetime (it pays off far more here than in
    one-shot analyses, since edits revisit the same cells), and
    [opts.obs] receives per-edit spans ([engine.edit.<kind>]) and the
    [engine.*] counters.  @raise Sta.Unsupported_gate or
    [Invalid_argument] as {!Sta.analyze_with}. *)

val close : t -> unit
(** Join the session's worker domains (if any).  Idempotent; any further
    operation on the engine raises [Invalid_argument]. *)

val with_engine :
  ?opts:Run_opts.t ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  (t -> 'a) ->
  'a
(** {!create}, run, then {!close} (also on exception). *)

val apply : t -> edit -> unit
(** Apply one edit and re-propagate its dirty cone.  Atomic: the edit is
    validated first, and a rejected edit ([Invalid_argument] on an
    out-of-range id, a non-PI in {!Set_pi_spec}, a non-gate or
    non-primitive kind in {!Swap_gate}, a non-finite delta;
    {!Sta.Unsupported_gate} on an uncharacterized arity) leaves the
    engine untouched. *)

val retarget_corner : ?base:Ssd_core.Delay_model.t -> t -> Ssd_cell.Corners.spec -> unit
(** [retarget_corner t spec] applies one {!Set_model} edit that rebinds
    every evaluation to the session library derated by [spec]
    ({!Ssd_core.Delay_model.remap_cells} over
    {!Ssd_cell.Corners.derate_library}).  [base] is the model being
    remapped — default {!Ssd_core.Delay_model.proposed}; it is taken
    explicitly rather than from the session so repeated retargets
    replace instead of chaining.  Undo/revert behave as for any other
    edit.  @raise Invalid_argument as {!apply}. *)

val checkpoint : t -> checkpoint
(** Mark the current history depth. *)

val revert : t -> checkpoint -> unit
(** Undo every edit applied after the checkpoint by restoring journaled
    windows and overlay slots — no recomputation.  Reverting to the
    current depth is a no-op.  @raise Invalid_argument when the
    checkpoint is ahead of the engine's history (wrong engine, or itself
    already reverted past) or predates the last {!commit}. *)

val commit : t -> unit
(** Drop all undo history (the edits stay applied).  Checkpoints taken
    before the commit become invalid. *)

(** {2 Queries} *)

val timing : t -> int -> Sta.line_timing
(** Current windows of any node id. *)

val po_window : t -> Ssd_util.Interval.t
(** Union of both transitions' arrival windows over all primary
    outputs, as {!Sta.po_window}. *)

val min_delay : t -> float
val max_delay : t -> float

val netlist : t -> Ssd_circuit.Netlist.t
(** The base (unedited) netlist the session was created on. *)

val edited_netlist : t -> Ssd_circuit.Netlist.t
(** The netlist as currently edited: gate-kind swaps materialized, same
    signal names in the same declaration order — so every line keeps its
    id and the per-line overlays ({!extra_delay_of}, {!pi_spec_of})
    remain valid against it.  Returns the base netlist unchanged when no
    kind swap is live. *)

val model : t -> Ssd_core.Delay_model.t
(** The currently targeted delay model. *)

val opts : t -> Run_opts.t
val pi_spec_of : t -> int -> Run_opts.pi_spec
(** Effective spec of a PI (the session default unless overridden). *)

val extra_delay_of : t -> int -> float
(** Current extra delay on a line ([0.] unless edited). *)

val depth : t -> int
(** Number of applied-and-not-reverted edits. *)

val reanalyze : t -> Sta.t
(** The reference analysis of the current edited state: a fresh
    sequential {!Sta.analyze_with} over {!edited_netlist} with the
    session's overlays threaded through [extra_delay] / [pi_override].
    Bit-identical to the engine's own windows — this is the oracle the
    tests, the [eco] bench and [ssd eco --check] compare against. *)

val stats : t -> stats
val cutoff_ratio : stats -> float
(** [cutoffs / nodes_recomputed] ([0.] before any recomputation). *)

val summary : t -> string
