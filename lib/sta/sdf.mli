(** Standard Delay Format (SDF) export and import.

    The paper's baseline is exactly what SDF can express: per-cell
    IOPATH (pin-to-pin) min:typ:max delays, with no way to describe the
    simultaneous-switching speed-up — which is why an SDF-annotated STA
    misses it (Section 3.1).  This module writes an SDF 3.0 file for a
    netlist from a characterized library (min/typ/max taken over a
    transition-time range) and reads such files back into a delay
    annotation usable by {!Annotated} below.

    The subset supported: DELAYFILE header, one CELL per gate instance,
    ABSOLUTE / IOPATH entries with (min:typ:max) rvalue triples in
    nanoseconds. *)

type triple = { d_min : float; d_typ : float; d_max : float }  (** seconds *)

type iopath = {
  from_pin : int;        (** input position *)
  rise : triple;         (** delay to an output rise *)
  fall : triple;
}

type cell_delays = {
  instance : string;     (** output signal name of the gate *)
  paths : iopath list;
}

type t = {
  design : string;
  timescale : string;
  cells : cell_delays list;
}

val of_netlist :
  library:Ssd_cell.Charlib.t ->
  tt_range:Ssd_util.Interval.t ->
  Ssd_circuit.Netlist.t ->
  t
(** Pin-to-pin delays per gate: min/max over the transition-time range
    (honouring bi-tonic peaks), typ at the range midpoint; loads from the
    netlist fanout.  @raise Sta.Unsupported_gate on non-primitive gates. *)

val to_string : t -> string
val write_file : t -> string -> unit

exception Parse_error of { line : int; message : string }

val parse_string : string -> t
(** @raise Parse_error *)

val parse_file : string -> t

(** {2 Using an SDF annotation as a delay oracle} *)

module Annotated : sig
  type sdf = t
  type t

  val create : sdf -> Ssd_circuit.Netlist.t -> t
  (** Bind the annotation to a netlist by instance names.
      @raise Invalid_argument when an annotated instance is missing. *)

  val iopath : t -> gate:int -> pin:int -> rising_out:bool -> triple option
  (** The annotated delay of one pin-to-output arc. *)

  val max_delay : t -> float
  (** Longest path by the annotated max delays (topological sweep) —
      a classic SDF-based STA, for comparison against the library STA. *)

  val min_delay : t -> float
end
