(** Batched multi-corner STA and Monte-Carlo parameter sampling.

    {!analyze} runs the forward window pass for all K corners of a
    {!Ssd_cell.Corners.table} in one sweep: every gate is evaluated for
    a whole corner range per task through the allocation-free
    {!Ssd_core.Corner_batch} kernel, writing K timing planes of one
    plane-major {!Windows} store.  With [jobs > 1] the pool
    parallelizes over (level slot × corner chunk).

    Each corner plane is bit-identical to an independent scalar
    {!Sta.analyze_with} over that corner's derated library
    ({!plane_matches} is the check the corners bench asserts).

    {!monte_carlo} routes statistical sampling through the same batched
    kernel: sampled derating specs are fitted in chunks of K into a
    per-lane resident corner table ({!Ssd_cell.Corners.refit} rewrites
    coefficients only, reusing the fitted layouts) and swept K planes
    at a time, with independent sample chunks fanned across the {!Par}
    domain pool.  The pre-existing scalar resident-{!Engine} path
    remains as {!monte_carlo_scalar}, the bit-identity oracle;
    {!mc_po_quantiles} reports per-PO delay distributions. *)

type t
(** A completed K-corner analysis. *)

val analyze : ?opts:Run_opts.t -> table:Ssd_cell.Corners.table -> Ssd_circuit.Netlist.t -> t
(** Forward pass over all corners of [table].  [opts.corners] must be 1
    (unset) or equal the table's corner count; [opts.jobs] and
    [opts.pi_spec] behave as in {!Sta.analyze_with} ([opts.cache] is
    irrelevant — the batched kernel does not search through the memo
    cache).  @raise Sta.Unsupported_gate on an uncharacterized gate
    arity, [Invalid_argument] on a corner-count mismatch. *)

val netlist : t -> Ssd_circuit.Netlist.t
val table : t -> Ssd_cell.Corners.table
val corners : t -> int
val windows : t -> Windows.t
(** The K-plane store (plane [c] = corner [c]). *)

val timing : t -> corner:int -> int -> Sta.line_timing
(** Windows of one node under one corner.
    @raise Invalid_argument on an out-of-range id or corner. *)

val po_window : t -> corner:int -> Ssd_util.Interval.t
(** Union of both transitions' arrival windows over all primary
    outputs, per corner.  @raise Invalid_argument on a netlist without
    outputs. *)

val min_delay : t -> corner:int -> float
val max_delay : t -> corner:int -> float

val plane_matches : t -> corner:int -> Sta.t -> bool
(** Bitwise comparison of one corner plane against a scalar analysis
    (expected: [Sta.analyze_with] over [Corners.library table corner]). *)

val summary : t -> string
(** Multi-line per-corner PO window report. *)

(** {1 Monte-Carlo corner sampling} *)

type mc_result = {
  mc_specs : Ssd_cell.Corners.spec array;  (** the sampled corners *)
  mc_pos : int array;  (** primary-output node ids *)
  mc_delays : float array array;
      (** [(po, sample)]: latest arrival over both transitions *)
  mc_max : float array;  (** per-sample circuit max delay *)
}

val monte_carlo :
  ?opts:Run_opts.t ->
  ?samples:int ->
  seed:int64 ->
  library:Ssd_cell.Charlib.t ->
  Ssd_circuit.Netlist.t ->
  mc_result
(** Sample [samples] (default 64) Gaussian corners
    ({!Ssd_cell.Corners.sample_specs}) and evaluate them through the
    batched kernel, [opts.mc_batch] planes per sweep (clamped to the
    sample count; the tail chunk refits and sweeps only the remaining
    specs).  Each lane of the [opts.jobs]-wide pool owns a resident
    corner table — fitted once, retargeted per chunk by
    {!Ssd_cell.Corners.refit} — plus its own scratch {!Windows} planes;
    per-PO delays and circuit max stream out of each finished chunk, so
    memory stays O(lanes × K × nodes), never O(samples).  All specs are
    drawn before chunking, so results are bit-identical to
    {!monte_carlo_scalar} for every ([opts.jobs], [opts.mc_batch])
    setting.  Telemetry ([opts.obs]): [mc.chunks], [mc.tables_built],
    [mc.fit_cache_hits] (chunks served by an already-fitted lane
    table), [mc.planes].  [opts.corners] and [opts.cache] are ignored.
    @raise Invalid_argument on [samples < 1], [opts.mc_batch < 1] or a
    netlist without outputs. *)

val monte_carlo_scalar :
  ?opts:Run_opts.t ->
  ?samples:int ->
  seed:int64 ->
  library:Ssd_cell.Charlib.t ->
  Ssd_circuit.Netlist.t ->
  mc_result
(** The pre-batching Monte-Carlo path, kept as the bit-identity oracle
    behind [ssd mc --check]: analyze each sampled corner by retargeting
    one resident {!Engine} session via [Set_model] +
    {!Ssd_core.Delay_model.remap_cells}; the history is committed after
    every sample so journal memory stays bounded.  [opts.jobs] sets the
    session's lane count and [opts.cache] its corner-search memo cache
    (safe across retargets: the cache keys on physical cell identity).
    @raise Invalid_argument on [samples < 1]. *)

val mc_po_quantiles : mc_result -> float list -> (float * float) list array
(** Per PO (aligned with [mc_pos]), the requested quantiles of its
    delay samples. *)

val mc_max_quantiles : mc_result -> float list -> (float * float) list
(** Quantiles of the per-sample circuit max delay. *)
