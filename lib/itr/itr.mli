(** Incremental timing refinement (paper Section 5).

    Couples the two-frame implication state with the timing windows: as
    logic values are specified, transition states S ∈ {−1, 0, 1} restrict
    which gate inputs can or must switch, and the recomputed windows
    shrink.  The zero-state settings of the paper's Table 1 are realized
    as follows for each optimization target:

    - earliest to-controlling arrival: every input that {e may} switch is
      allowed to participate (simultaneous switching speeds the output up);
    - latest to-controlling arrival: potential switchers are assumed
      absent, but every {e definite} switcher upper-bounds the response
      ([A_L ≤ min over definite i of (A_i,L + d_i,max)]), which is where
      ITR beats STA;
    - earliest to-non-controlling arrival: definite switchers lower-bound
      it ([A_S ≥ max over definite i]);
    - latest to-non-controlling arrival: all potential switchers at their
      latest.

    STA is the special case where every line has state 0 for every
    transition (value xx everywhere). *)

type t

val create :
  ?pi_spec:Ssd_sta.Sta.pi_spec ->
  ?focus:int list ->
  library:Ssd_cell.Charlib.t ->
  model:Ssd_core.Delay_model.t ->
  Ssd_circuit.Netlist.t ->
  t
(** Initial state: all values xx; windows equal the STA windows.
    [focus] restricts window maintenance to the given lines and their
    transitive fan-in (the ATPG only consults the fault site's windows;
    skipping the rest makes refinement much cheaper).  Windows of
    out-of-focus lines are unspecified.
    @raise Invalid_argument when the model cannot identify worst-case
    corners (no window functions). *)

val copy : t -> t
(** Snapshot for backtracking search. *)

val implication : t -> Implication.t

val assign : t -> int -> Value2f.t -> bool
(** Narrow a line's logic value, propagate implications and recompute the
    affected timing windows.  Returns false (state unspecified-safe: use
    {!copy} beforehand) on logic conflict. *)

val rise_window : t -> int -> Ssd_core.Types.win option
(** [None] when the line definitely has no rising transition (S = −1). *)

val fall_window : t -> int -> Ssd_core.Types.win option

val state : t -> int -> Value2f.transition -> int
(** The paper's S value for a line. *)

val window_width_sum : t -> float
(** Total arrival-window width over all live transitions — the shrink
    metric reported by the ITR experiments. *)

val refresh_all : t -> unit
(** Recompute every window from the current logic state (used by tests). *)
