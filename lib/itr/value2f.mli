(** Nine-value two-frame logic (paper Section 5.1).

    A line's value is a pair of three-valued frames (v1, v2) ∈ {0, 1, x}²,
    where x is the unspecified/unknown value.  01 is a rising transition;
    0x, x1 and xx are potential rising transitions, etc. *)

type v1 = Zero | One | X

type t = { f1 : v1; f2 : v1 }

val xx : t
val of_string : string -> t option
(** "01", "x1", ... *)

val to_string : t -> string

val of_bools : bool -> bool -> t
(** Fully specified value from two Booleans. *)

val is_fully_specified : t -> bool

type transition = Rise | Fall

val state : t -> transition -> int
(** The paper's S value: 1 when the line definitely has the transition,
    0 when it potentially has it, −1 when it definitely does not. *)

val requires : transition -> t
(** The value demanding the transition (Rise ↦ 01). *)

val steady : bool -> t
(** 00 or 11. *)

val meet : t -> t -> t option
(** Intersection of the two value sets per frame: x meets anything;
    conflicting constants yield [None]. *)

val narrower_or_equal : t -> t -> bool
(** [narrower_or_equal a b]: every concrete behaviour of [a] is allowed by
    [b]. *)

val forward : Ssd_circuit.Gate.kind -> t list -> t
(** Frame-wise three-valued gate evaluation. *)

val backward :
  Ssd_circuit.Gate.kind -> out:t -> t list -> t list option
(** Backward implication: given the (possibly narrowed) output value and
    current input values, returns narrowed input values, or [None] on
    conflict.  Sound but not complete (standard direct implications:
    forced-controlling, last-free-input). *)

val v1_meet : v1 -> v1 -> v1 option
val pp : Format.formatter -> t -> unit
