module Gate = Ssd_circuit.Gate

type v1 = Zero | One | X

type t = { f1 : v1; f2 : v1 }

let xx = { f1 = X; f2 = X }

let v1_of_char = function
  | '0' -> Some Zero
  | '1' -> Some One
  | 'x' | 'X' -> Some X
  | _ -> None

let of_string s =
  if String.length s <> 2 then None
  else
    match (v1_of_char s.[0], v1_of_char s.[1]) with
    | Some f1, Some f2 -> Some { f1; f2 }
    | _, _ -> None

let char_of_v1 = function Zero -> '0' | One -> '1' | X -> 'x'

let to_string v = Printf.sprintf "%c%c" (char_of_v1 v.f1) (char_of_v1 v.f2)

let of_bools b1 b2 =
  {
    f1 = (if b1 then One else Zero);
    f2 = (if b2 then One else Zero);
  }

let is_fully_specified v = v.f1 <> X && v.f2 <> X

type transition = Rise | Fall

let state v tr =
  let before, after = match tr with Rise -> (Zero, One) | Fall -> (One, Zero) in
  let ok1 = v.f1 = before || v.f1 = X in
  let ok2 = v.f2 = after || v.f2 = X in
  if not (ok1 && ok2) then -1
  else if v.f1 = before && v.f2 = after then 1
  else 0

let requires = function
  | Rise -> { f1 = Zero; f2 = One }
  | Fall -> { f1 = One; f2 = Zero }

let steady b = if b then { f1 = One; f2 = One } else { f1 = Zero; f2 = Zero }

let v1_meet a b =
  match (a, b) with
  | X, v | v, X -> Some v
  | Zero, Zero -> Some Zero
  | One, One -> Some One
  | Zero, One | One, Zero -> None

let meet a b =
  match (v1_meet a.f1 b.f1, v1_meet a.f2 b.f2) with
  | Some f1, Some f2 -> Some { f1; f2 }
  | _, _ -> None

let v1_narrower a b = b = X || a = b

let narrower_or_equal a b = v1_narrower a.f1 b.f1 && v1_narrower a.f2 b.f2

(* three-valued frame evaluation *)
let v1_not = function Zero -> One | One -> Zero | X -> X

let v1_and vs =
  if List.exists (fun v -> v = Zero) vs then Zero
  else if List.for_all (fun v -> v = One) vs then One
  else X

let v1_or vs =
  if List.exists (fun v -> v = One) vs then One
  else if List.for_all (fun v -> v = Zero) vs then Zero
  else X

let v1_xor vs =
  if List.exists (fun v -> v = X) vs then X
  else if
    List.fold_left (fun acc v -> if v = One then not acc else acc) false vs
  then One
  else Zero

let eval_frame kind vs =
  match kind with
  | Gate.And -> v1_and vs
  | Gate.Nand -> v1_not (v1_and vs)
  | Gate.Or -> v1_or vs
  | Gate.Nor -> v1_not (v1_or vs)
  | Gate.Xor -> v1_xor vs
  | Gate.Xnor -> v1_not (v1_xor vs)
  | Gate.Not -> (
    match vs with
    | [ v ] -> v1_not v
    | _ -> invalid_arg "Value2f: NOT arity")
  | Gate.Buf -> (
    match vs with
    | [ v ] -> v
    | _ -> invalid_arg "Value2f: BUF arity")

let forward kind inputs =
  {
    f1 = eval_frame kind (List.map (fun v -> v.f1) inputs);
    f2 = eval_frame kind (List.map (fun v -> v.f2) inputs);
  }

(* Backward implication for one frame of an AND/OR-family gate.
   [inv] whether the gate inverts; [cv] the controlling input value. *)
let backward_frame ~inv ~cv out_v ins =
  let ncv = v1_not cv in
  let out_ctl = if inv then v1_not cv else cv in
  (* output at the controlled level: at least one input = cv.
     output at the other level: all inputs = non-controlling. *)
  match out_v with
  | X -> Some ins
  | v when v = v1_not out_ctl ->
    (* all inputs forced to the non-controlling value *)
    let rec narrow acc = function
      | [] -> Some (List.rev acc)
      | i :: rest -> (
        match v1_meet i ncv with
        | Some n -> narrow (n :: acc) rest
        | None -> None)
    in
    narrow [] ins
  | _ ->
    (* some input must hold cv: if exactly one input can still be cv, force
       it; if none can, conflict *)
    let can_be_cv v = v = cv || v = X in
    let holders = List.filter can_be_cv ins in
    (match holders with
    | [] -> None
    | [ _ ] when not (List.exists (fun v -> v = cv) ins) ->
      (* a single candidate and nobody already holds cv: force it *)
      Some
        (List.map (fun v -> if can_be_cv v && v = X then cv else v) ins)
    | _ -> Some ins)

let backward kind ~out ins =
  match kind with
  | Gate.Not | Gate.Buf -> (
    let flip v = if kind = Gate.Not then v1_not v else v in
    match ins with
    | [ i ] -> (
      match
        ( v1_meet i.f1 (flip out.f1),
          v1_meet i.f2 (flip out.f2) )
      with
      | Some f1, Some f2 -> Some [ { f1; f2 } ]
      | _, _ -> None)
    | _ -> invalid_arg "Value2f.backward: NOT/BUF arity")
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
    let inv = Gate.inverting kind in
    let cv =
      match Gate.controlling_value kind with
      | Some true -> One
      | Some false -> Zero
      | None -> assert false
    in
    let frame sel_out sel_in rebuild =
      match
        backward_frame ~inv ~cv (sel_out out) (List.map sel_in ins)
      with
      | None -> None
      | Some narrowed -> Some (rebuild narrowed)
    in
    (match
       frame (fun v -> v.f1) (fun v -> v.f1) (fun n1 ->
           List.map2 (fun i f1 -> { i with f1 }) ins n1)
     with
    | None -> None
    | Some ins1 ->
      frame (fun v -> v.f2) (fun v -> v.f2) (fun n2 ->
          List.map2 (fun i f2 -> { i with f2 }) ins1 n2))
  | Gate.Xor | Gate.Xnor ->
    (* forward-only for XOR family *)
    Some ins

let pp ppf v = Format.pp_print_string ppf (to_string v)
