module Interval = Ssd_util.Interval
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Types = Ssd_core.Types
module Delay_model = Ssd_core.Delay_model
module Cellfn = Ssd_core.Cellfn
module Netlist = Ssd_circuit.Netlist
module Gate = Ssd_circuit.Gate
module Sta = Ssd_sta.Sta

type line_windows = {
  rise : Types.win option;
  fall : Types.win option;
}

type t = {
  it_library : Charlib.t;
  it_model : Delay_model.t;
  it_windowing : Delay_model.windowing;
  it_pi_spec : Sta.pi_spec;
  it_impl : Implication.t;
  it_windows : line_windows array;
  it_in_focus : bool array;  (* lines whose windows are maintained *)
}

let implication t = t.it_impl

let state t i tr = Value2f.state (Implication.value t.it_impl i) tr

let cell_of_gate library kind n_in =
  match kind with
  | Gate.Not -> Charlib.find library Sweep.Nand 1
  | Gate.Nand -> Charlib.find library Sweep.Nand n_in
  | Gate.Nor -> Charlib.find library Sweep.Nor n_in
  | Gate.And | Gate.Or | Gate.Xor | Gate.Xnor | Gate.Buf ->
    raise (Sta.Unsupported_gate (Gate.to_string kind))

(* One gate-output transition window under transition states.
   [ins] lists, per input position, the state and (optional) window of the
   causal input transition. *)
let ctl_window_refined ~windowing ~cell ~load ins =
  let present =
    List.filter_map
      (fun (pos, st, w) ->
        match (st, w) with
        | -1, _ | _, None -> None
        | _, Some window -> Some (pos, st, window))
      ins
  in
  if present = [] then None
  else begin
    let win_ins =
      List.map (fun (pos, _, w) -> { Types.wpos = pos; window = w }) present
    in
    (* the model's ctl_window gives the correct earliest side (all possible
       switchers participate) and the pin-to-pin latest side *)
    let base = windowing.Delay_model.ctl_window cell ~fanout:load win_ins in
    (* Table-1 refinement of the latest arrival: every definite switcher i
       bounds the response by A_i,L + d_i,max, because additional
       simultaneous transitions can only speed a to-controlling response
       up. *)
    let definite = List.filter (fun (_, st, _) -> st = 1) present in
    let a_l_refined =
      List.fold_left
        (fun acc (pos, _, w) ->
          let _, d_max =
            Cellfn.max_delay_over cell ~fanout:load Cellfn.Ctl ~pos
              w.Types.w_tt
          in
          Float.min acc (Interval.hi w.Types.w_arr +. d_max))
        infinity definite
    in
    let a_s = Interval.lo base.Types.w_arr in
    let a_l = Float.max a_s (Float.min (Interval.hi base.Types.w_arr) a_l_refined) in
    Some
      {
        Types.w_arr = Interval.make a_s a_l;
        w_tt = base.Types.w_tt;
      }
  end

let non_window_refined ~windowing ~cell ~load ins =
  let present =
    List.filter_map
      (fun (pos, st, w) ->
        match (st, w) with
        | -1, _ | _, None -> None
        | _, Some window -> Some (pos, st, window))
      ins
  in
  if present = [] then None
  else begin
    let win_ins =
      List.map (fun (pos, _, w) -> { Types.wpos = pos; window = w }) present
    in
    let base = windowing.Delay_model.non_window cell ~fanout:load win_ins in
    (* refinement of the earliest arrival: the response cannot precede any
       definite switcher's earliest contribution *)
    let definite = List.filter (fun (_, st, _) -> st = 1) present in
    let a_s_refined =
      List.fold_left
        (fun acc (pos, _, w) ->
          let _, d_min =
            Cellfn.min_delay_over cell ~fanout:load Cellfn.Non ~pos
              w.Types.w_tt
          in
          Float.max acc (Interval.lo w.Types.w_arr +. d_min))
        neg_infinity definite
    in
    let a_l = Interval.hi base.Types.w_arr in
    let a_s = Float.min a_l (Float.max (Interval.lo base.Types.w_arr) a_s_refined) in
    Some
      {
        Types.w_arr = Interval.make a_s a_l;
        w_tt = base.Types.w_tt;
      }
  end

let gate_windows t i kind fanin =
  let nl = Implication.netlist t.it_impl in
  let cell = cell_of_gate t.it_library kind (Array.length fanin) in
  let load = Netlist.load_of nl i in
  let ctl_in_is_fall =
    match cell.Charlib.kind with Sweep.Nand -> true | Sweep.Nor -> false
  in
  let input_info tr sel =
    Array.to_list
      (Array.mapi
         (fun pos j ->
           let st = state t j tr in
           (pos, st, sel t.it_windows.(j)))
         fanin)
  in
  (* to-controlling: NAND needs falling inputs and produces a rise *)
  let ctl_tr = if ctl_in_is_fall then Value2f.Fall else Value2f.Rise in
  let non_tr = if ctl_in_is_fall then Value2f.Rise else Value2f.Fall in
  let ctl_ins = input_info ctl_tr (fun w -> if ctl_in_is_fall then w.fall else w.rise) in
  let non_ins = input_info non_tr (fun w -> if ctl_in_is_fall then w.rise else w.fall) in
  let out_ctl_tr = if ctl_in_is_fall then Value2f.Rise else Value2f.Fall in
  let windowing = t.it_windowing in
  let out_ctl =
    if state t i out_ctl_tr = -1 then None
    else ctl_window_refined ~windowing ~cell ~load ctl_ins
  in
  let out_non =
    let non_out_tr =
      match out_ctl_tr with Value2f.Rise -> Value2f.Fall | Value2f.Fall -> Value2f.Rise
    in
    if state t i non_out_tr = -1 then None
    else non_window_refined ~windowing ~cell ~load non_ins
  in
  ignore non_tr;
  if ctl_in_is_fall then { rise = out_ctl; fall = out_non }
  else { rise = out_non; fall = out_ctl }

let refresh_from t roots =
  (* recompute windows of all gates downstream of the changed nodes, in
     topological order *)
  let nl = Implication.netlist t.it_impl in
  let dirty = Array.make (Netlist.size nl) false in
  let mark = Array.make (Netlist.size nl) false in
  List.iter (fun i -> mark.(i) <- true) roots;
  Array.iter
    (fun i ->
      let self_changed = mark.(i) in
      let upstream_dirty =
        match Netlist.node nl i with
        | Netlist.Pi -> false
        | Netlist.Gate { fanin; _ } ->
          Array.exists (fun j -> dirty.(j) || mark.(j)) fanin
      in
      if (self_changed || upstream_dirty) && t.it_in_focus.(i) then begin
        dirty.(i) <- true;
        match Netlist.node nl i with
        | Netlist.Pi ->
          (* PI windows shrink only via state (value) changes *)
          let pi_win =
            {
              Types.w_arr = t.it_pi_spec.Sta.pi_arrival;
              w_tt = t.it_pi_spec.Sta.pi_tt;
            }
          in
          let w tr = if state t i tr = -1 then None else Some pi_win in
          t.it_windows.(i) <-
            { rise = w Value2f.Rise; fall = w Value2f.Fall }
        | Netlist.Gate { kind; fanin } ->
          t.it_windows.(i) <- gate_windows t i kind fanin
      end)
    (Netlist.topo_order nl)

let refresh_all t =
  let nl = Implication.netlist t.it_impl in
  refresh_from t (List.init (Netlist.size nl) Fun.id)

let create ?(pi_spec = Sta.default_pi_spec) ?focus ~library ~model nl =
  let windowing =
    match model.Delay_model.windowing with
    | Some w -> w
    | None ->
      invalid_arg
        (Printf.sprintf "Itr.create: model %S cannot identify corners"
           model.Delay_model.name)
  in
  let n = Netlist.size nl in
  let it_in_focus =
    match focus with
    | None -> Array.make n true
    | Some lines ->
      let mask = Array.make n false in
      List.iter
        (fun i ->
          mask.(i) <- true;
          List.iter (fun j -> mask.(j) <- true) (Netlist.transitive_fanin nl i))
        lines;
      mask
  in
  let t =
    {
      it_library = library;
      it_model = model;
      it_windowing = windowing;
      it_pi_spec = pi_spec;
      it_impl = Implication.create nl;
      it_windows = Array.make n { rise = None; fall = None };
      it_in_focus;
    }
  in
  refresh_all t;
  t

let copy t =
  {
    t with
    it_impl = Implication.copy t.it_impl;
    it_windows = Array.copy t.it_windows;
  }

let assign t i v =
  match Implication.assign_opt t.it_impl i v with
  | None -> false
  | Some changed ->
    refresh_from t changed;
    true

let rise_window t i = t.it_windows.(i).rise
let fall_window t i = t.it_windows.(i).fall

let window_width_sum t =
  Array.fold_left
    (fun acc w ->
      let add acc = function
        | None -> acc
        | Some win -> acc +. Interval.width win.Types.w_arr
      in
      add (add acc w.rise) w.fall)
    0. t.it_windows
