module Netlist = Ssd_circuit.Netlist

type t = { nl : Netlist.t; values : Value2f.t array }

let create nl = { nl; values = Array.make (Netlist.size nl) Value2f.xx }

let copy t = { t with values = Array.copy t.values }

let value t i = t.values.(i)

let netlist t = t.nl

exception Conflict of int

let narrow t changed i v =
  match Value2f.meet t.values.(i) v with
  | None -> raise (Conflict i)
  | Some m ->
    if m <> t.values.(i) then begin
      t.values.(i) <- m;
      changed := i :: !changed;
      true
    end
    else false

(* Fixpoint over a work queue of *gates*: whenever any node's value
   narrows, every gate touching that node (its readers and its own
   driver) is re-processed, running both the forward evaluation and the
   backward direct implications.  This is what lets a narrowed *input*
   trigger deductions about its siblings (e.g. NAND out = 1 with all but
   one input at 1 forces the last input to 0). *)
let assign t root v =
  let changed = ref [] in
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let push g =
    if not (Hashtbl.mem queued g) then begin
      Hashtbl.replace queued g ();
      Queue.add g queue
    end
  in
  let touch i =
    Array.iter push (Netlist.fanout t.nl i);
    match Netlist.node t.nl i with
    | Netlist.Pi -> ()
    | Netlist.Gate _ -> push i
  in
  if narrow t changed root v then touch root;
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    Hashtbl.remove queued g;
    match Netlist.node t.nl g with
    | Netlist.Pi -> ()
    | Netlist.Gate { kind; fanin } ->
      let ins = Array.to_list (Array.map (fun j -> t.values.(j)) fanin) in
      let out = Value2f.forward kind ins in
      if narrow t changed g out then touch g;
      (match Value2f.backward kind ~out:t.values.(g) ins with
      | None -> raise (Conflict g)
      | Some narrowed ->
        List.iteri
          (fun idx nv ->
            let j = fanin.(idx) in
            if narrow t changed j nv then touch j)
          narrowed)
  done;
  !changed

let assign_opt t i v =
  match assign t i v with
  | changed -> Some changed
  | exception Conflict _ -> None

let is_consistent_with t i v =
  match Value2f.meet t.values.(i) v with Some _ -> true | None -> false

let specified_count t =
  Array.fold_left
    (fun acc v -> if Value2f.is_fully_specified v then acc + 1 else acc)
    0 t.values
