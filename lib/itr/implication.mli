(** Two-frame logic implication over a netlist.

    Maintains one nine-valued assignment per line and propagates every
    narrowing forward (gate evaluation) and backward (direct implications)
    to a fixpoint, as required for ITR and test generation (an extension
    of the basic implication method of Abramovici et al. to two
    time-frames). *)

type t

val create : Ssd_circuit.Netlist.t -> t
(** All lines at xx. *)

val copy : t -> t

val value : t -> int -> Value2f.t

val netlist : t -> Ssd_circuit.Netlist.t

exception Conflict of int
(** Carries the node id where the conflict surfaced. *)

val assign : t -> int -> Value2f.t -> int list
(** [assign t node v] narrows [node] with [v] and propagates to a
    fixpoint; returns the list of nodes whose values changed.
    @raise Conflict (state is left partially updated — callers keep a
    {!copy} for backtracking). *)

val assign_opt : t -> int -> Value2f.t -> int list option
(** Like {!assign} but returns [None] on conflict. *)

val is_consistent_with : t -> int -> Value2f.t -> bool
(** Whether narrowing would not immediately conflict (no propagation). *)

val specified_count : t -> int
(** Number of fully specified lines — a progress metric. *)
