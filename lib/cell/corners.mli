(** Process corners as derated views of one characterized library, plus
    the flat corner-major coefficient table behind the batched K-corner
    analysis of [Ssd_sta].

    A corner scales every delay-axis coefficient of the nominal library
    by [c_delay] and every output-transition coefficient by [c_tt].
    Since all fitted forms are linear in their coefficients, the derated
    surfaces are {e exactly} the nominal surfaces scaled — so a derated
    cell is an ordinary {!Charlib.cell} that the scalar kernels evaluate
    unchanged, and the batched path can be validated bit-for-bit against
    K independent single-corner analyses.

    {!build} packs all K derated coefficient sets into one contiguous
    [float64] Bigarray with the corner as the contiguous axis (see the
    layout comment in the implementation): the batched kernels of
    [Ssd_core.Corner_batch] stream it without allocating per corner. *)

type spec = {
  c_name : string;
  c_delay : float;  (** delay-axis derate factor, positive finite *)
  c_tt : float;  (** transition-time derate factor, positive finite *)
}

val default_specs : int -> spec list
(** [k] corners spread evenly over ±25 % delay / ∓10 % transition
    derates ([k = 1] is the nominal corner).
    @raise Invalid_argument on [k < 1]. *)

val sample_specs : seed:int64 -> int -> spec list
(** [n] Monte-Carlo corners: Gaussian derates (σ = 8 % delay, 5 % tt)
    truncated to [0.6, 1.4], drawn from a deterministic splitmix64
    stream.  @raise Invalid_argument on [n < 1]. *)

val derate_cell : spec -> Charlib.cell -> Charlib.cell
(** Scale the cell's fit coefficients, load slopes and rms residuals;
    ranges and bases are untouched.
    @raise Invalid_argument on a non-positive or non-finite factor. *)

val derate_library : spec -> Charlib.t -> Charlib.t
(** {!derate_cell} over every cell; the tag gains an ["@name"] suffix. *)

val remap_of_library : Charlib.t -> Charlib.cell -> Charlib.cell
(** Find the (kind, n) twin of a cell in another library.
    @raise Not_found if the library holds no such cell. *)

(** {1 Flat corner-major coefficient table} *)

(** Per-cell geometry of the packed table — offsets are relative to the
    corner block start [l_base + corner * l_stride]. *)
type layout = {
  l_kind : Sweep.gate_kind;
  l_n : int;
  l_ref_fanout : int;
  l_t_lo : float;
  l_t_hi : float;  (** shared [fit1] clamp range *)
  l_p_lo : float;
  l_p_hi : float;  (** shared [fit2] clamp range *)
  l_base : int;
  l_stride : int;  (** floats per corner block *)
  l_npairs : int;
  l_pair_slot : int array;  (** [n·n] row-major [(a·n + b)]; -1 = absent *)
  l_pair_direct : bool array;  (** stored orientation is (a, b) *)
  l_surf_basis : int array;  (** [npairs·5] tags: 0 Quad2, 1 Cuberoot2, 2 Cubic2 *)
}

(** Offset constants for indexing a corner block. *)

val group_ctl : int
val group_non : int
val group_tied : int
val fit_delay : int
val fit_tt : int
val surf_d0 : int
val surf_sr : int
val surf_syr : int
val surf_tts : int
val surf_ttm : int

val edge_off : layout -> group:int -> pos:int -> fit:int -> int
(** Start of a 4-float fit1 block (k0, k1, k2, peak-or-NaN). *)

val loads_off : layout -> int
(** Start of the 4 load slopes (d_ctl, t_ctl, d_non, t_non). *)

val pair_off : layout -> slot:int -> surf:int -> int
(** Start of a 10-float zero-padded fit2 block. *)

type coeffs =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type table

val build : ?specs:spec list -> Charlib.t -> table
(** Lay out the library's cells once and pack the derated coefficient
    set of every corner ([default_specs 4] when omitted) directly from
    the nominal fits — bit-identical to packing {!derate_cell} results.
    @raise Invalid_argument on an empty spec list, a bad factor, or a
    library whose fits violate the uniform per-cell range assumption. *)

val refit : table -> spec array -> unit
(** [refit t specs] retargets corners [0 .. n-1] of the table to the
    given [n] specs in place: the per-cell layout records, the index
    and the coefficient storage are all reused, only the [n] corners'
    coefficient blocks are rewritten (and their cached derated
    libraries dropped).  Corners [>= n] keep their previous specs and
    coefficients — the Monte-Carlo tail chunk refits fewer specs than
    the table holds and sweeps only the refreshed planes.
    @raise Invalid_argument when [n] is 0 or exceeds {!k}, or on a bad
    factor. *)

val k : table -> int
(** Number of corners. *)

val spec : table -> int -> spec
val nominal : table -> Charlib.t
val library : table -> int -> Charlib.t
(** The full derated library of one corner — drives the scalar oracle
    path and {!remap}.  Materialized on first request and cached until
    the next {!refit}; the batched kernel itself never touches it. *)

val coeffs : table -> coeffs
val layouts : table -> layout array
val layout : table -> int -> layout

val cell_slot : table -> Sweep.gate_kind -> int -> int option
(** Layout index for a (kind, n) cell shape, if packed. *)

val remap : table -> int -> Charlib.cell -> Charlib.cell
(** [remap t corner cell] is the corner-derated twin of [cell].
    @raise Not_found if the shape is absent from the table. *)

val bytes : table -> int
(** Size of the packed coefficient array. *)
