type t = {
  t_grid : float array;
  skew_grid : float array;
  (* delay.(ia).(ib).(is) *)
  table : float array array array;
}

let default_t_grid = [ 0.15e-9; 0.6e-9; 1.4e-9; 2.4e-9 ]

let default_skew_grid =
  [ -1.2e-9; -0.6e-9; -0.3e-9; -0.1e-9; 0.; 0.1e-9; 0.3e-9; 0.6e-9; 1.2e-9 ]

let build ?(t_grid = default_t_grid) ?(skew_grid = default_skew_grid) tech kind
    ~n ~pos_a ~pos_b =
  let tg = Array.of_list t_grid and sg = Array.of_list skew_grid in
  let table =
    Array.map
      (fun t_a ->
        Array.map
          (fun t_b ->
            Array.map
              (fun skew ->
                (Sweep.pair tech kind ~n ~fanout:1 ~pos_a ~pos_b ~t_a ~t_b
                   ~skew)
                  .Sweep.m_delay)
              sg)
          tg)
      tg
  in
  { t_grid = tg; skew_grid = sg; table }

(* locate x on a grid: returns (index, fraction) with both clamped *)
let locate grid x =
  let n = Array.length grid in
  if x <= grid.(0) then (0, 0.)
  else if x >= grid.(n - 1) then (n - 2, 1.)
  else begin
    let rec find i = if grid.(i + 1) >= x then i else find (i + 1) in
    let i = find 0 in
    (i, (x -. grid.(i)) /. (grid.(i + 1) -. grid.(i)))
  end

let pair_delay t ~t_a ~t_b ~skew =
  let ia, fa = locate t.t_grid t_a in
  let ib, fb = locate t.t_grid t_b in
  let is, fs = locate t.skew_grid skew in
  let v da db ds = t.table.(ia + da).(ib + db).(is + ds) in
  let lerp f a b = a +. (f *. (b -. a)) in
  lerp fa
    (lerp fb (lerp fs (v 0 0 0) (v 0 0 1)) (lerp fs (v 0 1 0) (v 0 1 1)))
    (lerp fb (lerp fs (v 1 0 0) (v 1 0 1)) (lerp fs (v 1 1 0) (v 1 1 1)))

let entries t =
  Array.length t.t_grid * Array.length t.t_grid * Array.length t.skew_grid

let sample_count = entries
