(** Fitted empirical timing functions (the paper's Section 3.4 forms).

    [fit1] is the quadratic used for pin-to-pin quantities,
    DR(T) = K10·T² + K11·T + K12, carrying the abscissa of its interior
    extremum when one exists inside the characterized range (the paper's
    bi-tonic peak, needed for worst-case corner identification).
    [fit2] covers the two-variable forms: the full quadratic (SR) and the
    expanded cube-root bilinear (D0R). *)

type fit1 = {
  k : float array;          (** 3 coefficients for {!Ssd_util.Lsq.quadratic_1d} *)
  range : float * float;    (** characterized T range *)
  peak : float option;      (** interior extremum abscissa, if any *)
  rms : float;              (** fit residual (same unit as the output) *)
}

type basis2 = Quad2 | Cuberoot2 | Cubic2

type fit2 = {
  k2 : float array;
  basis : basis2;
  range2 : float * float;   (** shared characterized range of both inputs *)
  rms2 : float;
}

val fit1_of_samples : range:float * float -> (float * float) list -> fit1
(** Least-squares quadratic over [(T, value)] samples. *)

val eval1 : fit1 -> float -> float
(** Evaluation with the argument clamped into the characterized range —
    the model never extrapolates the quadratic beyond its data. *)

val eval1_raw : fit1 -> float -> float
(** Unclamped evaluation (used by tests). *)

val fit2_of_samples : basis:basis2 -> range:float * float
  -> ((float * float) * float) list -> fit2

val fit2_best : range:float * float -> ((float * float) * float) list -> fit2
(** Fits both candidate bases and keeps the lower-residual one.  The paper
    derives its D0R form from its own experimental data; our technology's
    D0R surface is bi-tonic in each transition time, which the cube-root
    product cannot express, so the flow selects per surface. *)

val eval2 : fit2 -> float -> float -> float

val shape1 : fit1 -> Ssd_util.Func1d.shape
(** [Monotonic] when no interior extremum, otherwise [Bitonic peak] — the
    description consumed by the STA corner search. *)
