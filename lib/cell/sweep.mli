(** Simulation sweeps: the bridge between the analog oracle and the
    characterization fits.

    Every function builds a transistor-level gate with an inverter-fanout
    load, drives the requested stimulus, simulates, and measures the
    paper's quantities (arrival at 50 % Vdd, transition time 10–90 %).
    Delays follow the paper's definitions: the to-controlling gate delay is
    measured from the {e earliest} switching input's arrival; pin-to-pin
    delays from the switching pin's arrival. *)

type gate_kind = Nand | Nor

val controlling_value : gate_kind -> bool
(** NAND: false (logic 0); NOR: true. *)

val output_rises_on_controlling : gate_kind -> bool
(** NAND: true (output rises when an input goes to 0); NOR: false. *)

type stimulus =
  | Steady of bool  (** held at a rail for the whole run *)
  | To_controlling of { arrival : float; t_tr : float }
      (** transition toward the gate's controlling value *)
  | To_non_controlling of { arrival : float; t_tr : float }

type meas = {
  m_delay : float;
      (** output arrival − reference input arrival (earliest switching
          input for to-controlling, latest for to-non-controlling) *)
  m_out_tt : float;  (** output transition time *)
}

val run : ?sim_h:float -> Ssd_spice.Tech.t -> gate_kind -> n:int
  -> fanout:int -> stimulus array -> meas
(** General entry point; [stimulus] is indexed by input position and must
    contain at least one transition, all in the same direction.  Arrivals
    are relative (the sweep shifts them to fit the simulation window).
    @raise Failure when the output never completes the implied transition
    (e.g. a non-sensitized stimulus). *)

(** Convenience wrappers used by the characterization loops and benches. *)

val single : ?sim_h:float -> Ssd_spice.Tech.t -> gate_kind -> n:int
  -> fanout:int -> pos:int -> to_controlling:bool -> t_in:float -> meas
(** One input switches; all others held at the non-controlling value. *)

val pair : ?sim_h:float -> Ssd_spice.Tech.t -> gate_kind -> n:int
  -> fanout:int -> pos_a:int -> pos_b:int -> t_a:float -> t_b:float
  -> skew:float -> meas
(** Two to-controlling transitions with [skew = A_b − A_a]; delay is
    measured from min(A_a, A_b). *)

val tied : ?sim_h:float -> Ssd_spice.Tech.t -> gate_kind -> n:int
  -> fanout:int -> k:int -> t_in:float -> meas
(** The first [k] positions switch to-controlling simultaneously with a
    common transition time; the rest held non-controlling. *)
