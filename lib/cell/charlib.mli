(** Characterized cell library (the paper's Section 3.7 one-time effort).

    For every gate in the library and every input position the flow fits
    the pin-to-pin quadratics (delay and output transition time, both
    response directions); for every input pair it fits the simultaneous
    switching surfaces D0R, SR, SYR plus the output-transition V-shape
    minimum; it also fits the k-inputs-tied curves used by the >2
    simultaneous extension and the linear load dependence.

    Characterization runs against the analog simulator, takes seconds to a
    minute, and is cached on disk keyed by a digest of (profile, tech,
    spec). *)

type profile = {
  t_grid : float list;     (** transition-time sample points, s *)
  pair_grid : float list;  (** (T_a, T_b) grid for pair surfaces, s *)
  sim_h : float;           (** simulator time step, s *)
  sr_rel_tol : float;      (** saturation threshold as a fraction of DR−D0R *)
  sr_iters : int;          (** bisection refinement steps for SR / SYR *)
  tmin_iters : int;        (** golden-section steps for the t-V-shape vertex *)
  fanouts : int list;      (** load sweep points *)
  ref_fanout : int;        (** fanout at which everything else is measured *)
}

val fine : profile
(** Benchmark-quality grids (used by [bench/] and the CLI tools). *)

val coarse : profile
(** Small grids for the test suite. *)

type edge_char = {
  delay : Fit.fit1;   (** gate delay vs input transition time *)
  out_tt : Fit.fit1;  (** output transition time vs input transition time *)
}

type pair_char = {
  pos_a : int;
  pos_b : int;
  d0 : Fit.fit2;           (** D0R(T_a, T_b): delay at zero skew *)
  sr : Fit.fit2;           (** SR(T_a, T_b): right saturation skew, > 0 *)
  syr : Fit.fit2;          (** |SYR|(T_a, T_b): left saturation skew, > 0 *)
  tt_min_skew : Fit.fit2;  (** SK_{t,min}(T_a, T_b) *)
  tt_min : Fit.fit2;       (** minimal output transition time *)
}

type cell = {
  kind : Sweep.gate_kind;
  n : int;
  t_range : float * float;
  ref_fanout : int;
  to_ctl : edge_char array;   (** per position: to-controlling response *)
  to_non : edge_char array;   (** per position: to-non-controlling response *)
  tied_ctl : edge_char array; (** index k−1: first k inputs tied together *)
  pairs : pair_char list;
  load_d_ctl : float;  (** delay increase per extra fanout unit, s *)
  load_t_ctl : float;
  load_d_non : float;
  load_t_non : float;
}

type t = { cells : cell list; tag : string }

val characterize_cell : ?with_pairs:bool -> profile -> Ssd_spice.Tech.t
  -> Sweep.gate_kind -> n:int -> cell
(** [with_pairs] defaults to true; pass false for a cheap pin-to-pin-only
    characterization (used e.g. for the NAND5 of Figure 10). *)

val default_spec : (Sweep.gate_kind * int) list
(** INV (1-input NAND), NAND2–4, NOR2–4 — the cells used by the gate-level
    experiments. *)

val characterize : profile -> Ssd_spice.Tech.t
  -> (Sweep.gate_kind * int) list -> t

val load_or_characterize : ?cache_dir:string -> profile -> Ssd_spice.Tech.t
  -> (Sweep.gate_kind * int) list -> t
(** Disk-cached {!characterize}.  Default cache directory:
    [$SSD_CACHE_DIR], else [$HOME/.cache/ssd-repro], else ["."]. *)

val default : ?profile:profile -> unit -> t
(** Memoized [load_or_characterize] of {!default_spec} with
    {!Ssd_spice.Tech.default}; [profile] defaults to {!fine} unless the
    environment variable [SSD_FAST] is set, in which case {!coarse}. *)

val find : t -> Sweep.gate_kind -> int -> cell
(** @raise Not_found *)

val find_pair : cell -> int -> int -> (pair_char * bool) option
(** [find_pair cell a b] returns the characterized pair together with a
    flag that is true when the pair is stored as (a, b) and false when the
    stored order is (b, a) (the caller must mirror the skew). *)

val pp_cell_summary : Format.formatter -> cell -> unit
