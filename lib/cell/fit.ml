module Lsq = Ssd_util.Lsq
module Func1d = Ssd_util.Func1d

type fit1 = {
  k : float array;
  range : float * float;
  peak : float option;
  rms : float;
}

type basis2 = Quad2 | Cuberoot2 | Cubic2

type fit2 = {
  k2 : float array;
  basis : basis2;
  range2 : float * float;
  rms2 : float;
}

let fit1_of_samples ~range samples =
  let pts = List.map (fun (x, y) -> ([| x |], y)) samples in
  let k = Lsq.fit Lsq.quadratic_1d pts in
  let lo, hi = range in
  let peak =
    (* interior extremum of k0·T² + k1·T + k2 at T = −k1 / 2k0 *)
    if k.(0) = 0. then None
    else begin
      let p = -.k.(1) /. (2. *. k.(0)) in
      if p > lo && p < hi then Some p else None
    end
  in
  { k; range; peak; rms = Lsq.rms_error Lsq.quadratic_1d k pts }

let clamp (lo, hi) x = Float.max lo (Float.min hi x)

let eval1_raw f t = Lsq.predict Lsq.quadratic_1d f.k [| t |]
let eval1 f t = eval1_raw f (clamp f.range t)

let basis_fn = function
  | Quad2 -> Lsq.quadratic_2d
  | Cuberoot2 -> Lsq.bilinear_cuberoot_2d
  | Cubic2 -> Lsq.cubic_2d

let fit2_of_samples ~basis ~range samples =
  let pts = List.map (fun ((x, y), v) -> ([| x; y |], v)) samples in
  let b = basis_fn basis in
  let k2 = Lsq.fit b pts in
  { k2; basis; range2 = range; rms2 = Lsq.rms_error b k2 pts }

let fit2_best ~range samples =
  let candidates =
    List.map
      (fun basis -> fit2_of_samples ~basis ~range samples)
      [ Cuberoot2; Quad2; Cubic2 ]
  in
  match candidates with
  | [] -> assert false
  | c :: rest ->
    List.fold_left (fun best f -> if f.rms2 < best.rms2 then f else best) c rest

let eval2 f x y =
  let x = clamp f.range2 x and y = clamp f.range2 y in
  Lsq.predict (basis_fn f.basis) f.k2 [| x; y |]

let shape1 f =
  match f.peak with
  | None -> Func1d.Monotonic
  | Some p -> Func1d.Bitonic p
