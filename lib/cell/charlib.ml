module Func1d = Ssd_util.Func1d

let src = Logs.Src.create "ssd.cell" ~doc:"cell characterization"

module Log = (val Logs.src_log src : Logs.LOG)

type profile = {
  t_grid : float list;
  pair_grid : float list;
  sim_h : float;
  sr_rel_tol : float;
  sr_iters : int;
  tmin_iters : int;
  fanouts : int list;
  ref_fanout : int;
}

let fine =
  {
    t_grid = [ 0.1e-9; 0.3e-9; 0.6e-9; 1.0e-9; 1.5e-9; 2.2e-9; 3.0e-9 ];
    pair_grid = [ 0.12e-9; 0.3e-9; 0.55e-9; 0.9e-9; 1.5e-9; 2.4e-9 ];
    sim_h = 2e-12;
    sr_rel_tol = 0.05;
    sr_iters = 10;
    tmin_iters = 10;
    fanouts = [ 1; 2; 4 ];
    ref_fanout = 1;
  }

let coarse =
  {
    t_grid = [ 0.15e-9; 0.6e-9; 1.5e-9; 3.0e-9 ];
    pair_grid = [ 0.2e-9; 0.8e-9; 2.0e-9 ];
    sim_h = 4e-12;
    sr_rel_tol = 0.08;
    sr_iters = 6;
    tmin_iters = 6;
    fanouts = [ 1; 4 ];
    ref_fanout = 1;
  }

type edge_char = { delay : Fit.fit1; out_tt : Fit.fit1 }

type pair_char = {
  pos_a : int;
  pos_b : int;
  d0 : Fit.fit2;
  sr : Fit.fit2;
  syr : Fit.fit2;
  tt_min_skew : Fit.fit2;
  tt_min : Fit.fit2;
}

type cell = {
  kind : Sweep.gate_kind;
  n : int;
  t_range : float * float;
  ref_fanout : int;
  to_ctl : edge_char array;
  to_non : edge_char array;
  tied_ctl : edge_char array;
  pairs : pair_char list;
  load_d_ctl : float;
  load_t_ctl : float;
  load_d_non : float;
  load_t_non : float;
}

type t = { cells : cell list; tag : string }

let range_of grid =
  match (grid : float list) with
  | [] -> invalid_arg "Charlib: empty grid"
  | x :: rest ->
    List.fold_left
      (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
      (x, x) rest

(* --- pin-to-pin characterization ------------------------------------- *)

let edge_of_sweep (profile : profile) measure =
  let range = range_of profile.t_grid in
  let rows = List.map (fun t -> (t, measure t)) profile.t_grid in
  let delay =
    Fit.fit1_of_samples ~range
      (List.map (fun (t, m) -> (t, m.Sweep.m_delay)) rows)
  in
  let out_tt =
    Fit.fit1_of_samples ~range
      (List.map (fun (t, m) -> (t, m.Sweep.m_out_tt)) rows)
  in
  { delay; out_tt }

(* --- pair characterization ------------------------------------------- *)

(* Find the saturation skew on one side of the V: the smallest |skew| at
   which the pair delay reaches the corresponding pin-to-pin delay.  The
   delay is monotonic in |skew| between 0 and saturation, so a doubling
   bracket followed by bisection converges quickly. *)
let saturation_skew (profile : profile) ~pair_delay ~d_pin ~d0 =
  let tol = Float.max (profile.sr_rel_tol *. (d_pin -. d0)) 1e-12 in
  let threshold = d_pin -. tol in
  if d0 >= threshold then 0.
  else begin
    let rec bracket s k =
      if k > 8 then s
      else if pair_delay s >= threshold then s
      else bracket (2. *. s) (k + 1)
    in
    let hi = bracket 0.15e-9 0 in
    if pair_delay hi < threshold then hi
    else
      Func1d.bisect
        ~tol:(Float.max (hi /. 200.) 1e-12)
        ~iters:profile.sr_iters
        (fun s -> pair_delay s -. threshold)
        0. hi
  end

let pair_of_sweep (profile : profile) ~single_a ~single_b ~pair_meas ~pos_a ~pos_b =
  let range = range_of profile.pair_grid in
  let d0_rows = ref [] in
  let sr_rows = ref [] in
  let syr_rows = ref [] in
  let tmin_sk_rows = ref [] in
  let tmin_rows = ref [] in
  List.iter
    (fun t_a ->
      List.iter
        (fun t_b ->
          let m0 = pair_meas ~t_a ~t_b ~skew:0. in
          let d0 = m0.Sweep.m_delay in
          let da = (single_a t_a).Sweep.m_delay in
          let db = (single_b t_b).Sweep.m_delay in
          let delay_right s = (pair_meas ~t_a ~t_b ~skew:s).Sweep.m_delay in
          let delay_left s =
            (pair_meas ~t_a ~t_b ~skew:(-.s)).Sweep.m_delay
          in
          let sr = saturation_skew profile ~pair_delay:delay_right ~d_pin:da ~d0 in
          let syr =
            saturation_skew profile ~pair_delay:delay_left ~d_pin:db ~d0
          in
          (* Output-transition V-shape vertex: minimize over the skew span
             where simultaneity matters. *)
          let lo = -.syr -. 0.05e-9 and hi = sr +. 0.05e-9 in
          let sk_min, tt_min =
            Func1d.golden_min ~iters:profile.tmin_iters
              (fun s -> (pair_meas ~t_a ~t_b ~skew:s).Sweep.m_out_tt)
              lo hi
          in
          let key = (t_a, t_b) in
          d0_rows := (key, d0) :: !d0_rows;
          sr_rows := (key, sr) :: !sr_rows;
          syr_rows := (key, syr) :: !syr_rows;
          tmin_sk_rows := (key, sk_min) :: !tmin_sk_rows;
          tmin_rows := (key, tt_min) :: !tmin_rows)
        profile.pair_grid)
    profile.pair_grid;
  {
    pos_a;
    pos_b;
    d0 = Fit.fit2_best ~range !d0_rows;
    sr = Fit.fit2_of_samples ~basis:Fit.Quad2 ~range !sr_rows;
    syr = Fit.fit2_of_samples ~basis:Fit.Quad2 ~range !syr_rows;
    tt_min_skew = Fit.fit2_of_samples ~basis:Fit.Quad2 ~range !tmin_sk_rows;
    tt_min = Fit.fit2_best ~range !tmin_rows;
  }

(* --- load characterization ------------------------------------------- *)

let load_slopes (profile : profile) tech kind ~n =
  let lo, hi = range_of profile.t_grid in
  let t_ref = sqrt (lo *. hi) in
  let slope measure =
    let rows =
      List.map
        (fun f -> ([| float_of_int f |], measure f))
        profile.fanouts
    in
    let k = Ssd_util.Lsq.fit Ssd_util.Lsq.linear_1d rows in
    Float.max k.(0) 0.
  in
  let meas_ctl f =
    Sweep.single ~sim_h:profile.sim_h tech kind ~n ~fanout:f ~pos:0
      ~to_controlling:true ~t_in:t_ref
  in
  let meas_non f =
    Sweep.single ~sim_h:profile.sim_h tech kind ~n ~fanout:f ~pos:0
      ~to_controlling:false ~t_in:t_ref
  in
  let ctl = List.map (fun f -> (f, meas_ctl f)) profile.fanouts in
  let non = List.map (fun f -> (f, meas_non f)) profile.fanouts in
  let get rows sel f = sel (List.assoc f rows) in
  ( slope (get ctl (fun m -> m.Sweep.m_delay)),
    slope (get ctl (fun m -> m.Sweep.m_out_tt)),
    slope (get non (fun m -> m.Sweep.m_delay)),
    slope (get non (fun m -> m.Sweep.m_out_tt)) )

(* --- cell characterization ------------------------------------------- *)

let characterize_cell ?(with_pairs = true) (profile : profile) tech kind ~n =
  let fanout = profile.ref_fanout in
  let sim_h = profile.sim_h in
  Log.info (fun m ->
      m "characterizing %s%d (pairs=%b)"
        (match kind with Sweep.Nand -> "nand" | Sweep.Nor -> "nor")
        n with_pairs);
  (* memoize single-input measurements: the pair loop re-uses them *)
  let single_cache : (int * bool * float, Sweep.meas) Hashtbl.t =
    Hashtbl.create 64
  in
  let single ~pos ~to_controlling ~t_in =
    let key = (pos, to_controlling, t_in) in
    match Hashtbl.find_opt single_cache key with
    | Some m -> m
    | None ->
      let m =
        Sweep.single ~sim_h tech kind ~n ~fanout ~pos ~to_controlling ~t_in
      in
      Hashtbl.add single_cache key m;
      m
  in
  let to_ctl =
    Array.init n (fun pos ->
        edge_of_sweep profile (fun t_in ->
            single ~pos ~to_controlling:true ~t_in))
  in
  let to_non =
    Array.init n (fun pos ->
        edge_of_sweep profile (fun t_in ->
            single ~pos ~to_controlling:false ~t_in))
  in
  let tied_ctl =
    Array.init n (fun i ->
        let k = i + 1 in
        if k = 1 then to_ctl.(0)
        else
          edge_of_sweep profile (fun t_in ->
              Sweep.tied ~sim_h tech kind ~n ~fanout ~k ~t_in))
  in
  let pairs =
    if not with_pairs || n < 2 then []
    else begin
      let acc = ref [] in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          let pc =
            pair_of_sweep profile
              ~single_a:(fun t -> single ~pos:a ~to_controlling:true ~t_in:t)
              ~single_b:(fun t -> single ~pos:b ~to_controlling:true ~t_in:t)
              ~pair_meas:(fun ~t_a ~t_b ~skew ->
                Sweep.pair ~sim_h tech kind ~n ~fanout ~pos_a:a ~pos_b:b ~t_a
                  ~t_b ~skew)
              ~pos_a:a ~pos_b:b
          in
          acc := pc :: !acc
        done
      done;
      List.rev !acc
    end
  in
  let load_d_ctl, load_t_ctl, load_d_non, load_t_non =
    load_slopes profile tech kind ~n
  in
  {
    kind;
    n;
    t_range = range_of profile.t_grid;
    ref_fanout = fanout;
    to_ctl;
    to_non;
    tied_ctl;
    pairs;
    load_d_ctl;
    load_t_ctl;
    load_d_non;
    load_t_non;
  }

let default_spec =
  [
    (Sweep.Nand, 1);
    (Sweep.Nand, 2);
    (Sweep.Nand, 3);
    (Sweep.Nand, 4);
    (Sweep.Nor, 2);
    (Sweep.Nor, 3);
    (Sweep.Nor, 4);
  ]

let spec_tag spec =
  String.concat "+"
    (List.map
       (fun (k, n) ->
         Printf.sprintf "%s%d"
           (match k with Sweep.Nand -> "nand" | Sweep.Nor -> "nor")
           n)
       spec)

let characterize profile tech spec =
  let cells =
    List.map (fun (kind, n) -> characterize_cell profile tech kind ~n) spec
  in
  { cells; tag = spec_tag spec }

(* --- disk cache -------------------------------------------------------- *)

let cache_version = 3

let cache_dir () =
  match Sys.getenv_opt "SSD_CACHE_DIR" with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "HOME" with
    | Some h -> Filename.concat h ".cache/ssd-repro"
    | None -> ".")

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let cache_key profile tech spec =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (cache_version, profile, tech, spec) []))

let load_or_characterize ?cache_dir:dir profile tech spec =
  let dir = match dir with Some d -> d | None -> cache_dir () in
  let path =
    Filename.concat dir
      (Printf.sprintf "ssdchar-%s.bin" (cache_key profile tech spec))
  in
  let load () =
    if Sys.file_exists path then begin
      try
        let ic = open_in_bin path in
        let lib : t = Marshal.from_channel ic in
        close_in ic;
        Some lib
      with _ -> None
    end
    else None
  in
  match load () with
  | Some lib ->
    Log.info (fun m -> m "loaded characterization cache %s" path);
    lib
  | None ->
    let lib = characterize profile tech spec in
    (try
       mkdir_p dir;
       let oc = open_out_bin path in
       Marshal.to_channel oc lib [];
       close_out oc;
       Log.info (fun m -> m "saved characterization cache %s" path)
     with Sys_error e ->
       Log.warn (fun m -> m "could not save characterization cache: %s" e));
    lib

let memo : (string, t) Hashtbl.t = Hashtbl.create 4

let default ?profile () =
  let profile =
    match profile with
    | Some p -> p
    | None -> if Sys.getenv_opt "SSD_FAST" <> None then coarse else fine
  in
  let key = cache_key profile Ssd_spice.Tech.default default_spec in
  match Hashtbl.find_opt memo key with
  | Some lib -> lib
  | None ->
    let lib =
      load_or_characterize profile Ssd_spice.Tech.default default_spec
    in
    Hashtbl.replace memo key lib;
    lib

let find lib kind n =
  match
    List.find_opt (fun c -> c.kind = kind && c.n = n) lib.cells
  with
  | Some c -> c
  | None -> raise Not_found

let find_pair cell a b =
  let direct =
    List.find_opt (fun p -> p.pos_a = a && p.pos_b = b) cell.pairs
  in
  match direct with
  | Some p -> Some (p, true)
  | None -> (
    match
      List.find_opt (fun p -> p.pos_a = b && p.pos_b = a) cell.pairs
    with
    | Some p -> Some (p, false)
    | None -> None)

let pp_cell_summary ppf c =
  Format.fprintf ppf "%s%d: %d pin chars, %d pairs, load slope %.1f ps/fo"
    (match c.kind with Sweep.Nand -> "nand" | Sweep.Nor -> "nor")
    c.n (2 * c.n) (List.length c.pairs)
    (c.load_d_ctl *. 1e12)
