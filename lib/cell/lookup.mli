(** Table-lookup delay model — the comparator class the paper dismisses.

    Lookup methods ([14]–[17] in the paper) store measured delays in a
    grid and interpolate.  They can be made accurate with enough entries,
    but they carry no shape information: identifying the input
    combinations that produce a timing-range extreme requires scanning
    the table, which is why the paper's STA/ITR cannot adopt them
    ("it is difficult to identify the combinations ... unless all
    possible pairs of vectors are simulated").

    This implementation samples the analog simulator on a
    (T_a, T_b, skew) grid for the simultaneous to-controlling delay of a
    gate pair and answers queries by trilinear interpolation.  It exists
    for the ablation study: accuracy and cost versus the paper's
    three-coefficient V-shape. *)

type t

val build :
  ?t_grid:float list ->
  ?skew_grid:float list ->
  Ssd_spice.Tech.t ->
  Sweep.gate_kind ->
  n:int ->
  pos_a:int ->
  pos_b:int ->
  t
(** Samples |t_grid|² × |skew_grid| simulator runs (defaults: 4 × 4 × 9). *)

val pair_delay : t -> t_a:float -> t_b:float -> skew:float -> float
(** Trilinear interpolation; arguments clamped to the grid span. *)

val entries : t -> int
(** Table size — the memory-cost side of the ablation. *)

val sample_count : t -> int
(** Simulator runs spent building the table — the characterization-cost
    side (the V-shape needs a comparable number but compresses them into
    a handful of coefficients). *)
