module S = Ssd_spice

type gate_kind = Nand | Nor

let controlling_value = function Nand -> false | Nor -> true
let output_rises_on_controlling = function Nand -> true | Nor -> false

type stimulus =
  | Steady of bool
  | To_controlling of { arrival : float; t_tr : float }
  | To_non_controlling of { arrival : float; t_tr : float }

type meas = { m_delay : float; m_out_tt : float }

let ramp_lead t_tr = 0.5 *. (t_tr /. 0.8)

let run ?(sim_h = 2e-12) tech kind ~n ~fanout stimuli =
  if Array.length stimuli <> n then
    invalid_arg "Sweep.run: stimulus arity mismatch";
  let cv = controlling_value kind in
  let to_ctl_dir = cv in
  (* Shift all arrivals so every ramp starts after a small settling margin. *)
  let margin = 0.3e-9 in
  let min_start =
    Array.fold_left
      (fun acc s ->
        match s with
        | Steady _ -> acc
        | To_controlling { arrival; t_tr } | To_non_controlling { arrival; t_tr }
          ->
          Float.min acc (arrival -. ramp_lead t_tr))
      infinity stimuli
  in
  if min_start = infinity then
    invalid_arg "Sweep.run: no transition in stimulus";
  let shift = margin -. min_start in
  let c = S.Circuit.create tech in
  let io =
    match kind with
    | Nand -> S.Gates.nand c ~name:"dut" ~n
    | Nor -> S.Gates.nor c ~name:"dut" ~n
  in
  S.Gates.attach_inverter_load c ~fanout io.S.Gates.output;
  let latest_end = ref 0. in
  let ctl_arrivals = ref [] in
  let non_arrivals = ref [] in
  let any_to_controlling = ref false in
  let any_to_non = ref false in
  Array.iteri
    (fun pos stim ->
      let node = io.S.Gates.inputs.(pos) in
      match stim with
      | Steady level -> S.Circuit.drive c node (S.Gates.steady tech ~level)
      | To_controlling { arrival; t_tr } ->
        any_to_controlling := true;
        let arrival = arrival +. shift in
        ctl_arrivals := arrival :: !ctl_arrivals;
        latest_end := Float.max !latest_end (arrival +. ramp_lead t_tr);
        let w =
          (* the controlling value decides the ramp direction: toward 0 for
             NAND, toward Vdd for NOR *)
          if to_ctl_dir then S.Gates.rising_input tech ~arrival ~t_transition:t_tr
          else S.Gates.falling_input tech ~arrival ~t_transition:t_tr
        in
        S.Circuit.drive c node w
      | To_non_controlling { arrival; t_tr } ->
        any_to_non := true;
        let arrival = arrival +. shift in
        non_arrivals := arrival :: !non_arrivals;
        latest_end := Float.max !latest_end (arrival +. ramp_lead t_tr);
        let w =
          if to_ctl_dir then S.Gates.falling_input tech ~arrival ~t_transition:t_tr
          else S.Gates.rising_input tech ~arrival ~t_transition:t_tr
        in
        S.Circuit.drive c node w)
    stimuli;
  if !any_to_controlling && !any_to_non then
    invalid_arg "Sweep.run: mixed transition directions are not supported";
  (* Steady sides: to-controlling experiments hold the other inputs at the
     non-controlling value so the switching inputs sensitize the output;
     the caller passes Steady explicitly, so just validate nothing here. *)
  let output_rising =
    if !any_to_controlling then output_rises_on_controlling kind
    else not (output_rises_on_controlling kind)
  in
  let t_stop = !latest_end +. 4.0e-9 in
  let options =
    { S.Transient.default_options with S.Transient.h = sim_h; t_stop }
  in
  let result = S.Transient.simulate ~options (S.Circuit.freeze c) in
  let w = S.Transient.waveform result io.S.Gates.output in
  let edge = S.Measure.edge_exn tech w ~rising:output_rising in
  let reference =
    if !any_to_controlling then
      List.fold_left Float.min infinity !ctl_arrivals
    else List.fold_left Float.max neg_infinity !non_arrivals
  in
  {
    m_delay = edge.S.Measure.e_arrival -. reference;
    m_out_tt = edge.S.Measure.e_transition;
  }

let single ?sim_h tech kind ~n ~fanout ~pos ~to_controlling ~t_in =
  let non_cv = not (controlling_value kind) in
  let stimuli =
    Array.init n (fun i ->
        if i = pos then
          if to_controlling then To_controlling { arrival = 0.; t_tr = t_in }
          else To_non_controlling { arrival = 0.; t_tr = t_in }
        else Steady non_cv)
  in
  run ?sim_h tech kind ~n ~fanout stimuli

let pair ?sim_h tech kind ~n ~fanout ~pos_a ~pos_b ~t_a ~t_b ~skew =
  if pos_a = pos_b then invalid_arg "Sweep.pair: identical positions";
  let non_cv = not (controlling_value kind) in
  let stimuli =
    Array.init n (fun i ->
        if i = pos_a then To_controlling { arrival = 0.; t_tr = t_a }
        else if i = pos_b then To_controlling { arrival = skew; t_tr = t_b }
        else Steady non_cv)
  in
  run ?sim_h tech kind ~n ~fanout stimuli

let tied ?sim_h tech kind ~n ~fanout ~k ~t_in =
  if k < 1 || k > n then invalid_arg "Sweep.tied: bad k";
  let non_cv = not (controlling_value kind) in
  let stimuli =
    Array.init n (fun i ->
        if i < k then To_controlling { arrival = 0.; t_tr = t_in }
        else Steady non_cv)
  in
  run ?sim_h tech kind ~n ~fanout stimuli
