module Rng = Ssd_util.Rng

(* A corner is a pair of positive derate factors applied to a nominal
   characterized library: delays (and the skew-axis surfaces derived from
   them) scale by [c_delay], output transition times by [c_tt].  Every
   fitted form is linear in its coefficients, so scaling the coefficient
   vectors scales the fitted surfaces exactly — a derated cell is a real
   [Charlib.cell] that evaluates through the unchanged scalar kernels,
   which is what lets the batched corner path be checked bit-for-bit
   against K independent single-corner analyses. *)

type spec = { c_name : string; c_delay : float; c_tt : float }

let check_spec s =
  let ok v = Float.is_finite v && v > 0. in
  if not (ok s.c_delay && ok s.c_tt) then
    invalid_arg
      (Printf.sprintf "Corners: spec %s has non-positive derate (%g, %g)"
         s.c_name s.c_delay s.c_tt)

let default_specs k =
  if k < 1 then invalid_arg "Corners.default_specs: k < 1";
  List.init k (fun i ->
      (* evenly spread over [-1, 1]; delay and transition-time factors
         anti-correlated so the corner set is not a single scaled axis *)
      let u =
        if k = 1 then 0.
        else (2. *. float_of_int i /. float_of_int (k - 1)) -. 1.
      in
      {
        c_name = Printf.sprintf "c%02d" i;
        c_delay = 1. +. (0.25 *. u);
        c_tt = 1. -. (0.10 *. u);
      })

let sample_specs ~seed n =
  if n < 1 then invalid_arg "Corners.sample_specs: n < 1";
  let rng = Rng.create seed in
  let gauss () =
    (* Box–Muller on the deterministic splitmix stream *)
    let u1 = Float.max (Rng.float rng 1.) 1e-12 in
    let u2 = Rng.float rng 1. in
    sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
  in
  let clampf lo hi v = Float.max lo (Float.min hi v) in
  List.init n (fun i ->
      {
        c_name = Printf.sprintf "s%04d" i;
        c_delay = clampf 0.6 1.4 (1. +. (0.08 *. gauss ()));
        c_tt = clampf 0.6 1.4 (1. +. (0.05 *. gauss ()));
      })

(* --- coefficient derating ---------------------------------------------- *)

let scale1 s (f : Fit.fit1) =
  let k = Array.map (fun c -> s *. c) f.Fit.k in
  let lo, hi = f.Fit.range in
  (* same interior-extremum rule as [Fit.fit1_of_samples], re-derived from
     the scaled coefficients so the record is self-consistent *)
  let peak =
    if k.(0) = 0. then None
    else begin
      let p = -.k.(1) /. (2. *. k.(0)) in
      if p > lo && p < hi then Some p else None
    end
  in
  { Fit.k; range = f.Fit.range; peak; rms = s *. f.Fit.rms }

let scale2 s (f : Fit.fit2) =
  {
    f with
    Fit.k2 = Array.map (fun c -> s *. c) f.Fit.k2;
    rms2 = s *. f.Fit.rms2;
  }

let derate_edge ~sd ~st (e : Charlib.edge_char) =
  {
    Charlib.delay = scale1 sd e.Charlib.delay;
    out_tt = scale1 st e.Charlib.out_tt;
  }

let derate_cell spec (c : Charlib.cell) =
  check_spec spec;
  let sd = spec.c_delay and st = spec.c_tt in
  {
    c with
    Charlib.to_ctl = Array.map (derate_edge ~sd ~st) c.Charlib.to_ctl;
    to_non = Array.map (derate_edge ~sd ~st) c.Charlib.to_non;
    tied_ctl = Array.map (derate_edge ~sd ~st) c.Charlib.tied_ctl;
    pairs =
      List.map
        (fun (p : Charlib.pair_char) ->
          {
            p with
            Charlib.d0 = scale2 sd p.Charlib.d0;
            (* the saturation skews and the t-V vertex abscissa live on
               the skew axis, which tracks the delay scale *)
            sr = scale2 sd p.Charlib.sr;
            syr = scale2 sd p.Charlib.syr;
            tt_min_skew = scale2 sd p.Charlib.tt_min_skew;
            tt_min = scale2 st p.Charlib.tt_min;
          })
        c.Charlib.pairs;
    load_d_ctl = sd *. c.Charlib.load_d_ctl;
    load_t_ctl = st *. c.Charlib.load_t_ctl;
    load_d_non = sd *. c.Charlib.load_d_non;
    load_t_non = st *. c.Charlib.load_t_non;
  }

let derate_library spec (lib : Charlib.t) =
  {
    Charlib.cells = List.map (derate_cell spec) lib.Charlib.cells;
    tag = lib.Charlib.tag ^ "@" ^ spec.c_name;
  }

let remap_of_library (lib : Charlib.t) (cell : Charlib.cell) =
  Charlib.find lib cell.Charlib.kind cell.Charlib.n

(* --- flat corner-major coefficient table ------------------------------- *)

(* Per cell the table holds one contiguous block of [K * stride] floats:
   corner k's coefficients live at [l_base + k * stride, ... + stride) —
   the corner is the contiguous axis, mirroring the K-plane layout of
   [Ssd_sta.Windows].  Within a corner block:

     fit1 blocks (4 floats: k0 k1 k2 peak-or-NaN), for each of the three
     edge groups (to_ctl, to_non, tied_ctl) × position × (delay, out_tt):
       edge_off = ((group·n + pos)·2 + fit)·4          — 24·n floats
     load slopes (d_ctl, t_ctl, d_non, t_non) at 24·n  —    4 floats
     fit2 blocks (10 floats, zero-padded) for each pair slot × surface
     (d0, sr, syr, tt_min_skew, tt_min):
       pair_off = 24·n + 4 + (slot·5 + surf)·10        — 50·P floats

   Ranges and the fit2 basis selectors cannot vary across corners
   (derating rescales coefficients only), so they live once in the
   per-cell layout rather than per corner. *)

type layout = {
  l_kind : Sweep.gate_kind;
  l_n : int;
  l_ref_fanout : int;
  l_t_lo : float;
  l_t_hi : float;  (** shared [fit1] clamp range *)
  l_p_lo : float;
  l_p_hi : float;  (** shared [fit2] clamp range *)
  l_base : int;
  l_stride : int;
  l_npairs : int;
  l_pair_slot : int array;  (** [n·n] row-major [(a·n + b)]; -1 = absent *)
  l_pair_direct : bool array;  (** stored orientation is (a, b) *)
  l_surf_basis : int array;  (** [npairs·5] basis tags, see {!basis_tag} *)
}

let fit1_floats = 4
let fit2_floats = 10
let n_surfaces = 5

let group_ctl = 0
let group_non = 1
let group_tied = 2
let fit_delay = 0
let fit_tt = 1
let surf_d0 = 0
let surf_sr = 1
let surf_syr = 2
let surf_tts = 3
let surf_ttm = 4

let edge_off l ~group ~pos ~fit =
  (((group * l.l_n) + pos) * 2 + fit) * fit1_floats

let loads_off l = 3 * l.l_n * 2 * fit1_floats

let pair_off l ~slot ~surf =
  loads_off l + 4 + (((slot * n_surfaces) + surf) * fit2_floats)

let stride_of ~n ~npairs =
  (3 * n * 2 * fit1_floats) + 4 + (npairs * n_surfaces * fit2_floats)

let basis_tag = function Fit.Quad2 -> 0 | Fit.Cuberoot2 -> 1 | Fit.Cubic2 -> 2

type coeffs =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type table = {
  t_specs : spec array;  (* elements overwritten in place by [refit] *)
  t_nominal : Charlib.t;
  t_libs : Charlib.t option array;
      (* per-corner derated libraries, materialized on first [library]
         request and invalidated by [refit]: the batched kernel never
         needs them, only the scalar oracle / remap paths do *)
  t_layouts : layout array;
  t_coeffs : coeffs;
  t_cells : Charlib.cell array;  (* nominal cells, aligned with layouts *)
  t_index : (Sweep.gate_kind * int, int) Hashtbl.t;
}

let layout_of_cell ~base (c : Charlib.cell) =
  let n = c.Charlib.n in
  let t_lo, t_hi = c.Charlib.t_range in
  let pairs = Array.of_list c.Charlib.pairs in
  let npairs = Array.length pairs in
  let p_lo, p_hi =
    if npairs = 0 then (0., 0.) else pairs.(0).Charlib.d0.Fit.range2
  in
  let pair_slot = Array.make (n * n) (-1) in
  let pair_direct = Array.make (n * n) false in
  let surf_basis = Array.make (npairs * n_surfaces) 0 in
  Array.iteri
    (fun j (p : Charlib.pair_char) ->
      let a = p.Charlib.pos_a and b = p.Charlib.pos_b in
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Corners.build: pair position out of range";
      pair_slot.((a * n) + b) <- j;
      pair_direct.((a * n) + b) <- true;
      if pair_slot.((b * n) + a) < 0 then begin
        pair_slot.((b * n) + a) <- j;
        pair_direct.((b * n) + a) <- false
      end;
      surf_basis.((j * n_surfaces) + surf_d0) <- basis_tag p.Charlib.d0.Fit.basis;
      surf_basis.((j * n_surfaces) + surf_sr) <- basis_tag p.Charlib.sr.Fit.basis;
      surf_basis.((j * n_surfaces) + surf_syr) <- basis_tag p.Charlib.syr.Fit.basis;
      surf_basis.((j * n_surfaces) + surf_tts) <-
        basis_tag p.Charlib.tt_min_skew.Fit.basis;
      surf_basis.((j * n_surfaces) + surf_ttm) <-
        basis_tag p.Charlib.tt_min.Fit.basis)
    pairs;
  {
    l_kind = c.Charlib.kind;
    l_n = n;
    l_ref_fanout = c.Charlib.ref_fanout;
    l_t_lo = t_lo;
    l_t_hi = t_hi;
    l_p_lo = p_lo;
    l_p_hi = p_hi;
    l_base = base;
    l_stride = stride_of ~n ~npairs;
    l_npairs = npairs;
    l_pair_slot = pair_slot;
    l_pair_direct = pair_direct;
    l_surf_basis = surf_basis;
  }

(* Coefficient fill writes the {e derated} values directly from the
   nominal fits: [s *. c] per coefficient, exactly the float operations
   {!scale1}/{!scale2} perform — so the packed block is bit-identical to
   packing a [derate_cell] result, without materializing derated cell
   records.  This is what makes {!refit} cheap enough to run once per
   Monte-Carlo chunk. *)

let put1 co ~off ~s (f : Fit.fit1) ~range =
  if f.Fit.range <> range then
    invalid_arg "Corners: fit1 range differs from the cell range";
  if Array.length f.Fit.k <> 3 then
    invalid_arg "Corners: fit1 coefficient count <> 3";
  let k0 = s *. f.Fit.k.(0) in
  let k1 = s *. f.Fit.k.(1) in
  Bigarray.Array1.set co off k0;
  Bigarray.Array1.set co (off + 1) k1;
  Bigarray.Array1.set co (off + 2) (s *. f.Fit.k.(2));
  (* same interior-extremum rule as [scale1], from the scaled coefficients *)
  let lo, hi = f.Fit.range in
  let peak =
    if k0 = 0. then Float.nan
    else begin
      let p = -.k1 /. (2. *. k0) in
      if p > lo && p < hi then p else Float.nan
    end
  in
  Bigarray.Array1.set co (off + 3) peak

let put2 co ~off ~s (f : Fit.fit2) ~range =
  if f.Fit.range2 <> range then
    invalid_arg "Corners: fit2 range differs from the cell pair range";
  let nk = Array.length f.Fit.k2 in
  if nk > fit2_floats then invalid_arg "Corners: fit2 coefficient count > 10";
  for i = 0 to fit2_floats - 1 do
    Bigarray.Array1.set co (off + i) (if i < nk then s *. f.Fit.k2.(i) else 0.)
  done

let fill_corner co (l : layout) ~corner spec (c : Charlib.cell) =
  let b = l.l_base + (corner * l.l_stride) in
  let sd = spec.c_delay and st = spec.c_tt in
  let range = (l.l_t_lo, l.l_t_hi) in
  let edge ~group ~pos (e : Charlib.edge_char) =
    put1 co ~off:(b + edge_off l ~group ~pos ~fit:fit_delay) ~s:sd
      e.Charlib.delay ~range;
    put1 co ~off:(b + edge_off l ~group ~pos ~fit:fit_tt) ~s:st e.Charlib.out_tt
      ~range
  in
  Array.iteri (fun pos e -> edge ~group:group_ctl ~pos e) c.Charlib.to_ctl;
  Array.iteri (fun pos e -> edge ~group:group_non ~pos e) c.Charlib.to_non;
  Array.iteri (fun pos e -> edge ~group:group_tied ~pos e) c.Charlib.tied_ctl;
  let lo = b + loads_off l in
  Bigarray.Array1.set co lo (sd *. c.Charlib.load_d_ctl);
  Bigarray.Array1.set co (lo + 1) (st *. c.Charlib.load_t_ctl);
  Bigarray.Array1.set co (lo + 2) (sd *. c.Charlib.load_d_non);
  Bigarray.Array1.set co (lo + 3) (st *. c.Charlib.load_t_non);
  let prange = (l.l_p_lo, l.l_p_hi) in
  List.iteri
    (fun slot (p : Charlib.pair_char) ->
      let put surf s f =
        put2 co ~off:(b + pair_off l ~slot ~surf) ~s f ~range:prange
      in
      put surf_d0 sd p.Charlib.d0;
      (* skew-axis surfaces track the delay scale, as in [derate_cell] *)
      put surf_sr sd p.Charlib.sr;
      put surf_syr sd p.Charlib.syr;
      put surf_tts sd p.Charlib.tt_min_skew;
      put surf_ttm st p.Charlib.tt_min)
    c.Charlib.pairs

let build ?specs (lib : Charlib.t) =
  let specs =
    Array.of_list (match specs with Some s -> s | None -> default_specs 4)
  in
  if Array.length specs = 0 then invalid_arg "Corners.build: no corner specs";
  Array.iter check_spec specs;
  let k = Array.length specs in
  let cells = Array.of_list lib.Charlib.cells in
  let base = ref 0 in
  let layouts =
    Array.map
      (fun c ->
        let l = layout_of_cell ~base:!base c in
        base := !base + (k * l.l_stride);
        l)
      cells
  in
  let coeffs =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout !base
  in
  Array.iteri
    (fun ci l ->
      for corner = 0 to k - 1 do
        fill_corner coeffs l ~corner specs.(corner) cells.(ci)
      done)
    layouts;
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun ci (c : Charlib.cell) ->
      if not (Hashtbl.mem index (c.Charlib.kind, c.Charlib.n)) then
        Hashtbl.add index (c.Charlib.kind, c.Charlib.n) ci)
    cells;
  {
    t_specs = specs;
    t_nominal = lib;
    t_libs = Array.make k None;
    t_layouts = layouts;
    t_coeffs = coeffs;
    t_cells = cells;
    t_index = index;
  }

let k t = Array.length t.t_specs
let spec t i = t.t_specs.(i)
let nominal t = t.t_nominal

let library t i =
  match t.t_libs.(i) with
  | Some lib -> lib
  | None ->
    let lib = derate_library t.t_specs.(i) t.t_nominal in
    t.t_libs.(i) <- Some lib;
    lib

let coeffs t = t.t_coeffs
let layouts t = t.t_layouts
let layout t i = t.t_layouts.(i)

let cell_slot t kind n = Hashtbl.find_opt t.t_index (kind, n)

let remap t corner (cell : Charlib.cell) =
  Charlib.find (library t corner) cell.Charlib.kind cell.Charlib.n

let refit t specs =
  let n = Array.length specs in
  let kk = k t in
  if n < 1 || n > kk then
    invalid_arg
      (Printf.sprintf "Corners.refit: %d specs for a %d-corner table" n kk);
  Array.iter check_spec specs;
  for c = 0 to n - 1 do
    t.t_specs.(c) <- specs.(c);
    t.t_libs.(c) <- None
  done;
  Array.iteri
    (fun ci l ->
      for corner = 0 to n - 1 do
        fill_corner t.t_coeffs l ~corner specs.(corner) t.t_cells.(ci)
      done)
    t.t_layouts

let bytes t = 8 * Bigarray.Array1.dim t.t_coeffs
