/* Monotonic clock for Obs spans and timers.
 *
 * CLOCK_MONOTONIC never steps (NTP slews it at most), so span durations
 * are non-negative and per-track trace timestamps are monotone even if
 * the wall clock jumps mid-run.  Exposed unboxed + noalloc so a clock
 * read from the hot path costs a C call and nothing else.
 */
#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

int64_t ssd_obs_monotonic_ns_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

value ssd_obs_monotonic_ns(value unit)
{
  return caml_copy_int64(ssd_obs_monotonic_ns_unboxed(unit));
}
