module Texttab = Ssd_util.Texttab
module Stats = Ssd_util.Stats
module Json = Ssd_util.Json

(* Shard count is a power of two so the domain-id index is a mask.
   Domain ids are assigned densely from 0, so with the handful of lanes
   a pool spawns each domain effectively owns a shard and updates are
   uncontended; a collision (two domains sharing a shard) only costs
   atomic contention, never correctness. *)
let shard_count = 64

let shard_index () = (Domain.self () :> int) land (shard_count - 1)

type counter =
  | C_off
  | C_on of { c_name : string; c_shards : int Atomic.t array }

type timer =
  | T_off
  | T_on of {
      t_name : string;
      t_ns : int Atomic.t array;
      t_calls : int Atomic.t array;
    }

type histogram =
  | H_off
  | H_on of {
      h_name : string;
      h_bins : int;
      h_lo : float option;
      h_hi : float option;
      h_shards : float list Atomic.t array;
    }

type event = {
  ev_name : string;
  ev_tid : int;
  ev_ts : float;
  ev_dur : float;
}

type metric =
  | Counter of counter
  | Timer of timer
  | Histogram of histogram

type state = {
  s_epoch : float;
  s_trace : bool;
  s_mutex : Mutex.t;  (* guards s_metrics and s_tracks, never the updates *)
  mutable s_metrics : (string * metric) list;  (* creation order *)
  mutable s_tracks : (int * string) list;
  s_events : event list Atomic.t;
}

type t = Off | On of state

let disabled = Off

let create ?(trace = false) () =
  On
    {
      s_epoch = Unix.gettimeofday ();
      s_trace = trace;
      s_mutex = Mutex.create ();
      s_metrics = [];
      s_tracks = [];
      s_events = Atomic.make [];
    }

let enabled = function Off -> false | On _ -> true
let tracing = function Off -> false | On s -> s.s_trace

let now () = Unix.gettimeofday ()

let atomic_shards () = Array.init shard_count (fun _ -> Atomic.make 0)

(* find-or-create under the registry mutex; creation is setup-time only *)
let register s name make =
  Mutex.lock s.s_mutex;
  let m =
    match List.assoc_opt name s.s_metrics with
    | Some m -> m
    | None ->
      let m = make () in
      s.s_metrics <- s.s_metrics @ [ (name, m) ];
      m
  in
  Mutex.unlock s.s_mutex;
  m

(* ---- counters ---- *)

let counter t name =
  match t with
  | Off -> C_off
  | On s -> (
    match
      register s name (fun () ->
          Counter (C_on { c_name = name; c_shards = atomic_shards () }))
    with
    | Counter c -> c
    | _ -> invalid_arg ("Obs.counter: " ^ name ^ " is not a counter"))

let incr = function
  | C_off -> ()
  | C_on c -> Atomic.incr c.c_shards.(shard_index ())

let add c n =
  match c with
  | C_off -> ()
  | C_on c -> ignore (Atomic.fetch_and_add c.c_shards.(shard_index ()) n)

let counter_value = function
  | C_off -> 0
  | C_on c -> Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards

(* ---- timers ---- *)

let timer t name =
  match t with
  | Off -> T_off
  | On s -> (
    match
      register s name (fun () ->
          Timer
            (T_on
               {
                 t_name = name;
                 t_ns = atomic_shards ();
                 t_calls = atomic_shards ();
               }))
    with
    | Timer tm -> tm
    | _ -> invalid_arg ("Obs.timer: " ^ name ^ " is not a timer"))

let add_ns tm ns =
  match tm with
  | T_off -> ()
  | T_on t ->
    let i = shard_index () in
    ignore (Atomic.fetch_and_add t.t_ns.(i) ns);
    Atomic.incr t.t_calls.(i)

let sum_shards a = Array.fold_left (fun acc x -> acc + Atomic.get x) 0 a
let timer_ns = function T_off -> 0 | T_on t -> sum_shards t.t_ns
let timer_calls = function T_off -> 0 | T_on t -> sum_shards t.t_calls

let ns_of_s dt = int_of_float (dt *. 1e9)

let time tm f =
  match tm with
  | T_off -> f ()
  | T_on _ ->
    let t0 = now () in
    Fun.protect ~finally:(fun () -> add_ns tm (ns_of_s (now () -. t0))) f

(* ---- histograms ---- *)

let histogram ?(bins = 20) ?lo ?hi t name =
  if bins <= 0 then invalid_arg "Obs.histogram: bins <= 0";
  match t with
  | Off -> H_off
  | On s -> (
    match
      register s name (fun () ->
          Histogram
            (H_on
               {
                 h_name = name;
                 h_bins = bins;
                 h_lo = lo;
                 h_hi = hi;
                 h_shards = Array.init shard_count (fun _ -> Atomic.make []);
               }))
    with
    | Histogram h -> h
    | _ -> invalid_arg ("Obs.histogram: " ^ name ^ " is not a histogram"))

let rec push_sample a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (x :: cur)) then push_sample a x

let observe h x =
  match h with
  | H_off -> ()
  | H_on h -> push_sample h.h_shards.(shard_index ()) x

let samples = function
  | H_off -> []
  | H_on h ->
    Array.fold_left (fun acc a -> List.rev_append (Atomic.get a) acc) []
      h.h_shards

let histogram_count h = List.length (samples h)

let histogram_rows h =
  match h with
  | H_off -> []
  | H_on r ->
    Stats.histogram ?lo:r.h_lo ?hi:r.h_hi ~bins:r.h_bins (samples h)

(* ---- spans and trace events ---- *)

let rec push_event a ev =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (ev :: cur)) then push_event a ev

let timer_name = function T_off -> "" | T_on t -> t.t_name

let span t ?event tm f =
  match t with
  | Off -> f ()
  | On s ->
    let t0 = now () in
    let finish () =
      let t1 = now () in
      add_ns tm (ns_of_s (t1 -. t0));
      if s.s_trace then
        push_event s.s_events
          {
            ev_name =
              (match event with Some e -> e | None -> timer_name tm);
            ev_tid = (Domain.self () :> int);
            ev_ts = t0 -. s.s_epoch;
            ev_dur = t1 -. t0;
          }
    in
    Fun.protect ~finally:finish f

let trace_events = function
  | Off -> []
  | On s ->
    List.sort
      (fun a b -> compare (a.ev_tid, a.ev_ts) (b.ev_tid, b.ev_ts))
      (Atomic.get s.s_events)

let set_track_name t ~tid name =
  match t with
  | Off -> ()
  | On s ->
    Mutex.lock s.s_mutex;
    s.s_tracks <- (tid, name) :: List.remove_assoc tid s.s_tracks;
    Mutex.unlock s.s_mutex

(* ---- aggregated views ---- *)

let metrics = function
  | Off -> []
  | On s ->
    Mutex.lock s.s_mutex;
    let m = s.s_metrics in
    Mutex.unlock s.s_mutex;
    m

let counters t =
  List.filter_map
    (function
      | name, Counter c -> Some (name, counter_value c)
      | _ -> None)
    (metrics t)

let timers t =
  List.filter_map
    (function
      | name, Timer tm ->
        Some (name, timer_calls tm, float_of_int (timer_ns tm) *. 1e-9)
      | _ -> None)
    (metrics t)

let report t =
  match t with
  | Off -> ""
  | On _ ->
    let ms = metrics t in
    let buf = Buffer.create 512 in
    let cs =
      List.filter_map
        (function n, Counter c -> Some (n, c) | _ -> None)
        ms
    in
    if cs <> [] then begin
      let tb = Texttab.create ~header:[ "counter"; "value" ] in
      List.iter
        (fun (n, c) ->
          Texttab.add_row tb [ n; string_of_int (counter_value c) ])
        cs;
      Buffer.add_string buf (Texttab.render tb);
      Buffer.add_char buf '\n'
    end;
    let ts =
      List.filter_map (function n, Timer tm -> Some (n, tm) | _ -> None) ms
    in
    if ts <> [] then begin
      let tb =
        Texttab.create
          ~header:[ "timer"; "calls"; "total (ms)"; "mean (us)" ]
      in
      List.iter
        (fun (n, tm) ->
          let calls = timer_calls tm and ns = timer_ns tm in
          Texttab.add_row tb
            [
              n;
              string_of_int calls;
              Printf.sprintf "%.3f" (float_of_int ns *. 1e-6);
              (if calls = 0 then "-"
               else
                 Printf.sprintf "%.2f"
                   (float_of_int ns *. 1e-3 /. float_of_int calls));
            ])
        ts;
      Buffer.add_string buf (Texttab.render tb);
      Buffer.add_char buf '\n'
    end;
    let hs =
      List.filter_map
        (function n, Histogram h -> Some (n, h) | _ -> None)
        ms
    in
    if hs <> [] then begin
      let tb =
        Texttab.create
          ~header:[ "histogram"; "count"; "mean"; "min"; "max"; "bins" ]
      in
      List.iter
        (fun (n, h) ->
          let xs = samples h in
          let lo, hi =
            match Stats.min_max xs with Some r -> r | None -> (0., 0.)
          in
          Texttab.add_row tb
            [
              n;
              string_of_int (List.length xs);
              Printf.sprintf "%.4g" (Stats.mean xs);
              Printf.sprintf "%.4g" lo;
              Printf.sprintf "%.4g" hi;
              String.concat "/"
                (List.map
                   (fun (_, _, c) -> string_of_int c)
                   (histogram_rows h));
            ])
        hs;
      Buffer.add_string buf (Texttab.render tb);
      Buffer.add_char buf '\n'
    end;
    Buffer.contents buf

(* ---- Chrome trace-event export ---- *)

let trace_json t =
  let tracks =
    match t with
    | Off -> []
    | On s ->
      Mutex.lock s.s_mutex;
      let tr = s.s_tracks in
      Mutex.unlock s.s_mutex;
      tr
  in
  let meta =
    List.rev_map
      (fun (tid, name) ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int tid));
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ])
      tracks
  in
  let evs =
    List.map
      (fun ev ->
        Json.Obj
          [
            ("name", Json.Str ev.ev_name);
            ("cat", Json.Str "ssd");
            ("ph", Json.Str "X");
            ("ts", Json.Num (ev.ev_ts *. 1e6));
            ("dur", Json.Num (ev.ev_dur *. 1e6));
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int ev.ev_tid));
          ])
      (trace_events t)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (meta @ evs));
         ("displayTimeUnit", Json.Str "ms");
       ])

let write_file_atomic path ~contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (match
     output_string oc contents;
     close_out oc
   with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let write_trace t path =
  write_file_atomic path ~contents:(trace_json t ^ "\n")
