module Texttab = Ssd_util.Texttab
module Stats = Ssd_util.Stats
module Json = Ssd_util.Json

(* Shard count is a power of two so the domain-id index is a mask.
   Domain ids are assigned densely from 0, so with the handful of lanes
   a pool spawns each domain effectively owns a shard and updates are
   uncontended; a collision (two domains sharing a shard) only costs
   atomic contention, never correctness. *)
let shard_count = 64

let shard_index () = (Domain.self () :> int) land (shard_count - 1)

(* ---- monotonic clock ---- *)

external monotonic_ns : unit -> (int64[@unboxed])
  = "ssd_obs_monotonic_ns" "ssd_obs_monotonic_ns_unboxed"
[@@noalloc]

let now () = Int64.to_float (monotonic_ns ()) *. 1e-9

type counter =
  | C_off
  | C_on of { c_name : string; c_shards : int Atomic.t array }

type gauge = G_off | G_on of { g_name : string; g_cell : float Atomic.t }

type timer =
  | T_off
  | T_on of {
      t_name : string;
      t_ns : int Atomic.t array;
      t_self_ns : int Atomic.t array;
      t_calls : int Atomic.t array;
    }

type histogram =
  | H_off
  | H_on of {
      h_name : string;
      h_bins : int;
      h_lo : float option;
      h_hi : float option;
      h_shards : float list Atomic.t array;
    }

type event = {
  ev_name : string;
  ev_id : int;
  ev_parent : int;
  ev_tid : int;
  ev_ts : float;
  ev_dur : float;
  ev_self : float;
  ev_minor_words : float;
  ev_self_minor_words : float;
  ev_promoted_words : float;
}

(* An open span.  Frames live on the recording domain's stack, so only
   that domain ever reads or writes them — no atomics needed. *)
type frame = {
  fr_id : int;
  fr_parent : int;  (* -1 for a root span *)
  fr_name : string;
  mutable fr_t0 : float;
  mutable fr_minor0 : float;
  mutable fr_promoted0 : float;
  mutable fr_child_ns : int;
  mutable fr_child_minor : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Timer of timer
  | Histogram of histogram

type state = {
  s_epoch : float;
  s_trace : bool;
  s_mutex : Mutex.t;  (* guards s_metrics and s_tracks, never the updates *)
  mutable s_metrics : (string * metric) list;  (* creation order *)
  mutable s_tracks : (int * string) list;
  s_events : event list Atomic.t;
  s_next_span : int Atomic.t;
  s_stack : frame list ref Domain.DLS.key;
      (* open-span stack, per domain (DLS, not the shard array: shards
         may collide mod [shard_count], which is harmless for atomic
         counters but would race the stack) *)
}

type t = Off | On of state

let disabled = Off

let create ?(trace = false) () =
  On
    {
      s_epoch = now ();
      s_trace = trace;
      s_mutex = Mutex.create ();
      s_metrics = [];
      s_tracks = [];
      s_events = Atomic.make [];
      s_next_span = Atomic.make 0;
      s_stack = Domain.DLS.new_key (fun () -> ref []);
    }

let enabled = function Off -> false | On _ -> true
let tracing = function Off -> false | On s -> s.s_trace

let atomic_shards () = Array.init shard_count (fun _ -> Atomic.make 0)

(* find-or-create under the registry mutex; creation is setup-time only *)
let register s name make =
  Mutex.lock s.s_mutex;
  let m =
    match List.assoc_opt name s.s_metrics with
    | Some m -> m
    | None ->
      let m = make () in
      s.s_metrics <- s.s_metrics @ [ (name, m) ];
      m
  in
  Mutex.unlock s.s_mutex;
  m

(* ---- counters ---- *)

let counter t name =
  match t with
  | Off -> C_off
  | On s -> (
    match
      register s name (fun () ->
          Counter (C_on { c_name = name; c_shards = atomic_shards () }))
    with
    | Counter c -> c
    | _ -> invalid_arg ("Obs.counter: " ^ name ^ " is not a counter"))

let incr = function
  | C_off -> ()
  | C_on c -> Atomic.incr c.c_shards.(shard_index ())

let add c n =
  match c with
  | C_off -> ()
  | C_on c -> ignore (Atomic.fetch_and_add c.c_shards.(shard_index ()) n)

let counter_value = function
  | C_off -> 0
  | C_on c -> Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards

(* ---- gauges ---- *)

let gauge t name =
  match t with
  | Off -> G_off
  | On s -> (
    match
      register s name (fun () ->
          Gauge (G_on { g_name = name; g_cell = Atomic.make 0. }))
    with
    | Gauge g -> g
    | _ -> invalid_arg ("Obs.gauge: " ^ name ^ " is not a gauge"))

let set_gauge g v =
  match g with G_off -> () | G_on g -> Atomic.set g.g_cell v

let gauge_value = function G_off -> 0. | G_on g -> Atomic.get g.g_cell

(* ---- timers ---- *)

let timer t name =
  match t with
  | Off -> T_off
  | On s -> (
    match
      register s name (fun () ->
          Timer
            (T_on
               {
                 t_name = name;
                 t_ns = atomic_shards ();
                 t_self_ns = atomic_shards ();
                 t_calls = atomic_shards ();
               }))
    with
    | Timer tm -> tm
    | _ -> invalid_arg ("Obs.timer: " ^ name ^ " is not a timer"))

(* A direct credit is all self time; spans split total vs self below. *)
let add_ns tm ns =
  match tm with
  | T_off -> ()
  | T_on t ->
    let i = shard_index () in
    ignore (Atomic.fetch_and_add t.t_ns.(i) ns);
    ignore (Atomic.fetch_and_add t.t_self_ns.(i) ns);
    Atomic.incr t.t_calls.(i)

let credit_span tm ~total_ns ~self_ns =
  match tm with
  | T_off -> ()
  | T_on t ->
    let i = shard_index () in
    ignore (Atomic.fetch_and_add t.t_ns.(i) total_ns);
    ignore (Atomic.fetch_and_add t.t_self_ns.(i) self_ns);
    Atomic.incr t.t_calls.(i)

let sum_shards a = Array.fold_left (fun acc x -> acc + Atomic.get x) 0 a
let timer_ns = function T_off -> 0 | T_on t -> sum_shards t.t_ns
let timer_self_ns = function T_off -> 0 | T_on t -> sum_shards t.t_self_ns
let timer_calls = function T_off -> 0 | T_on t -> sum_shards t.t_calls

let ns_of_s dt = int_of_float (dt *. 1e9)

let time tm f =
  match tm with
  | T_off -> f ()
  | T_on _ ->
    let t0 = now () in
    Fun.protect ~finally:(fun () -> add_ns tm (ns_of_s (now () -. t0))) f

(* ---- histograms ---- *)

let histogram ?(bins = 20) ?lo ?hi t name =
  if bins <= 0 then invalid_arg "Obs.histogram: bins <= 0";
  match t with
  | Off -> H_off
  | On s -> (
    match
      register s name (fun () ->
          Histogram
            (H_on
               {
                 h_name = name;
                 h_bins = bins;
                 h_lo = lo;
                 h_hi = hi;
                 h_shards = Array.init shard_count (fun _ -> Atomic.make []);
               }))
    with
    | Histogram h -> h
    | _ -> invalid_arg ("Obs.histogram: " ^ name ^ " is not a histogram"))

let rec push_sample a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (x :: cur)) then push_sample a x

let observe h x =
  match h with
  | H_off -> ()
  | H_on h -> push_sample h.h_shards.(shard_index ()) x

let samples = function
  | H_off -> []
  | H_on h ->
    Array.fold_left (fun acc a -> List.rev_append (Atomic.get a) acc) []
      h.h_shards

let histogram_count h = List.length (samples h)

let histogram_rows h =
  match h with
  | H_off -> []
  | H_on r ->
    Stats.histogram ?lo:r.h_lo ?hi:r.h_hi ~bins:r.h_bins (samples h)

(* ---- spans and trace events ---- *)

let rec push_event a ev =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (ev :: cur)) then push_event a ev

let timer_name = function T_off -> "" | T_on t -> t.t_name

(* The span stack runs whenever the sink is enabled — self-time in the
   timers needs the parent/child links even when tracing (event
   recording) is off.  Gc counters are read after the frame is pushed
   and re-read before any event allocation, so the span's own
   bookkeeping words are excluded from its GC delta. *)
let span t ?event tm f =
  match t with
  | Off -> f ()
  | On s ->
    let stack = Domain.DLS.get s.s_stack in
    let parent_id = match !stack with [] -> -1 | p :: _ -> p.fr_id in
    let name = match event with Some e -> e | None -> timer_name tm in
    let fr =
      {
        fr_id = Atomic.fetch_and_add s.s_next_span 1;
        fr_parent = parent_id;
        fr_name = name;
        fr_t0 = 0.;
        fr_minor0 = 0.;
        fr_promoted0 = 0.;
        fr_child_ns = 0;
        fr_child_minor = 0.;
      }
    in
    stack := fr :: !stack;
    (* Gc.minor_words, not Gc.counters: on OCaml 5.x the latter reads
       per-domain counters that are only refreshed at GC events and so
       misses allocation since the last collection.  Promoted words only
       advance at minor collections, so the quick_stat value is exact. *)
    fr.fr_minor0 <- Gc.minor_words ();
    fr.fr_promoted0 <- (Gc.quick_stat ()).Gc.promoted_words;
    fr.fr_t0 <- now ();
    let finish () =
      let t1 = now () in
      let minor1 = Gc.minor_words () in
      let promoted1 = (Gc.quick_stat ()).Gc.promoted_words in
      (match !stack with
      | top :: rest when top == fr -> stack := rest
      | other ->
        (* unbalanced close (an inner finish was skipped); drop to fr *)
        let rec drop = function
          | top :: rest when top == fr -> rest
          | _ :: rest -> drop rest
          | [] -> []
        in
        stack := drop other);
      let dur = t1 -. fr.fr_t0 in
      let dur_ns = ns_of_s dur in
      let self_ns = if fr.fr_child_ns > dur_ns then 0 else dur_ns - fr.fr_child_ns in
      let minor = minor1 -. fr.fr_minor0 in
      let promoted = promoted1 -. fr.fr_promoted0 in
      let self_minor = Float.max 0. (minor -. fr.fr_child_minor) in
      credit_span tm ~total_ns:dur_ns ~self_ns;
      (match !stack with
      | p :: _ when p.fr_id = fr.fr_parent ->
        p.fr_child_ns <- p.fr_child_ns + dur_ns;
        p.fr_child_minor <- p.fr_child_minor +. minor
      | _ -> ());
      if s.s_trace then
        push_event s.s_events
          {
            ev_name = name;
            ev_id = fr.fr_id;
            ev_parent = fr.fr_parent;
            ev_tid = (Domain.self () :> int);
            ev_ts = fr.fr_t0 -. s.s_epoch;
            ev_dur = dur;
            ev_self = float_of_int self_ns *. 1e-9;
            ev_minor_words = minor;
            ev_self_minor_words = self_minor;
            ev_promoted_words = promoted;
          }
    in
    Fun.protect ~finally:finish f

let trace_events = function
  | Off -> []
  | On s ->
    List.sort
      (fun a b -> compare (a.ev_tid, a.ev_ts) (b.ev_tid, b.ev_ts))
      (Atomic.get s.s_events)

let set_track_name t ~tid name =
  match t with
  | Off -> ()
  | On s ->
    Mutex.lock s.s_mutex;
    s.s_tracks <- (tid, name) :: List.remove_assoc tid s.s_tracks;
    Mutex.unlock s.s_mutex

(* ---- aggregated views ---- *)

let metrics = function
  | Off -> []
  | On s ->
    Mutex.lock s.s_mutex;
    let m = s.s_metrics in
    Mutex.unlock s.s_mutex;
    m

let counters t =
  List.filter_map
    (function
      | name, Counter c -> Some (name, counter_value c)
      | _ -> None)
    (metrics t)

let gauges t =
  List.filter_map
    (function name, Gauge g -> Some (name, gauge_value g) | _ -> None)
    (metrics t)

let timers t =
  List.filter_map
    (function
      | name, Timer tm ->
        Some
          ( name,
            timer_calls tm,
            float_of_int (timer_ns tm) *. 1e-9,
            float_of_int (timer_self_ns tm) *. 1e-9 )
      | _ -> None)
    (metrics t)

(* ---- typed snapshot ---- *)

type timer_stat = { st_calls : int; st_total_s : float; st_self_s : float }

type hist_stat = {
  hs_count : int;
  hs_sum : float;
  hs_rows : (float * float * int) list;
}

type span_node = {
  sp_name : string;
  sp_tid : int;
  sp_start_s : float;
  sp_total_s : float;
  sp_self_s : float;
  sp_minor_words : float;
  sp_self_minor_words : float;
  sp_promoted_words : float;
  sp_children : span_node list;
}

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_timers : (string * timer_stat) list;
  sn_histograms : (string * hist_stat) list;
  sn_spans : span_node list;
}

let empty_snapshot =
  {
    sn_counters = [];
    sn_gauges = [];
    sn_timers = [];
    sn_histograms = [];
    sn_spans = [];
  }

(* Rebuild the span forest from the flat event list via parent ids.  An
   event whose parent was still open (or from another sink) when the
   snapshot was taken becomes a root. *)
let span_tree events =
  let ids = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace ids e.ev_id ()) events;
  let by_parent = Hashtbl.create 64 in
  let key e =
    if e.ev_parent >= 0 && Hashtbl.mem ids e.ev_parent then e.ev_parent
    else -1
  in
  List.iter (fun e -> Hashtbl.add by_parent (key e) e) events;
  (* find_all returns most-recently-added first; events arrive sorted by
     (tid, ts), so reversing restores that order per parent *)
  let rec node e =
    {
      sp_name = e.ev_name;
      sp_tid = e.ev_tid;
      sp_start_s = e.ev_ts;
      sp_total_s = e.ev_dur;
      sp_self_s = e.ev_self;
      sp_minor_words = e.ev_minor_words;
      sp_self_minor_words = e.ev_self_minor_words;
      sp_promoted_words = e.ev_promoted_words;
      sp_children = List.rev_map node (Hashtbl.find_all by_parent e.ev_id);
    }
  in
  List.rev_map node (Hashtbl.find_all by_parent (-1))

let snapshot t =
  match t with
  | Off -> empty_snapshot
  | On _ ->
    let ms = metrics t in
    {
      sn_counters =
        List.filter_map
          (function n, Counter c -> Some (n, counter_value c) | _ -> None)
          ms;
      sn_gauges =
        List.filter_map
          (function n, Gauge g -> Some (n, gauge_value g) | _ -> None)
          ms;
      sn_timers =
        List.filter_map
          (function
            | n, Timer tm ->
              Some
                ( n,
                  {
                    st_calls = timer_calls tm;
                    st_total_s = float_of_int (timer_ns tm) *. 1e-9;
                    st_self_s = float_of_int (timer_self_ns tm) *. 1e-9;
                  } )
            | _ -> None)
          ms;
      sn_histograms =
        List.filter_map
          (function
            | n, Histogram h ->
              let xs = samples h in
              Some
                ( n,
                  {
                    hs_count = List.length xs;
                    hs_sum = List.fold_left ( +. ) 0. xs;
                    hs_rows = histogram_rows h;
                  } )
            | _ -> None)
          ms;
      sn_spans = span_tree (trace_events t);
    }

(* ---- snapshot scoping ----

   The serve daemon gives every session its own sink (isolation: one
   session's counters never mix with another's) and still wants one
   global exposition; namespacing the per-session snapshots and
   concatenating them is how the two views compose. *)

let prefix_snapshot prefix sn =
  let p n = prefix ^ "." ^ n in
  let rec pspan s = { s with sp_name = p s.sp_name;
                             sp_children = List.map pspan s.sp_children } in
  {
    sn_counters = List.map (fun (n, v) -> (p n, v)) sn.sn_counters;
    sn_gauges = List.map (fun (n, v) -> (p n, v)) sn.sn_gauges;
    sn_timers = List.map (fun (n, v) -> (p n, v)) sn.sn_timers;
    sn_histograms = List.map (fun (n, v) -> (p n, v)) sn.sn_histograms;
    sn_spans = List.map pspan sn.sn_spans;
  }

let merge_snapshots sns =
  List.fold_right
    (fun sn acc ->
      {
        sn_counters = sn.sn_counters @ acc.sn_counters;
        sn_gauges = sn.sn_gauges @ acc.sn_gauges;
        sn_timers = sn.sn_timers @ acc.sn_timers;
        sn_histograms = sn.sn_histograms @ acc.sn_histograms;
        sn_spans = sn.sn_spans @ acc.sn_spans;
      })
    sns empty_snapshot

let rec span_node_json n =
  Json.Obj
    [
      ("name", Json.Str n.sp_name);
      ("tid", Json.Num (float_of_int n.sp_tid));
      ("start_s", Json.Num n.sp_start_s);
      ("total_s", Json.Num n.sp_total_s);
      ("self_s", Json.Num n.sp_self_s);
      ("minor_words", Json.Num n.sp_minor_words);
      ("self_minor_words", Json.Num n.sp_self_minor_words);
      ("promoted_words", Json.Num n.sp_promoted_words);
      ("children", Json.List (List.map span_node_json n.sp_children));
    ]

let snapshot_to_json sn =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map
             (fun (n, v) -> (n, Json.Num (float_of_int v)))
             sn.sn_counters) );
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Num v)) sn.sn_gauges) );
      ( "timers",
        Json.Obj
          (List.map
             (fun (n, st) ->
               ( n,
                 Json.Obj
                   [
                     ("calls", Json.Num (float_of_int st.st_calls));
                     ("total_s", Json.Num st.st_total_s);
                     ("self_s", Json.Num st.st_self_s);
                   ] ))
             sn.sn_timers) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, hs) ->
               ( n,
                 Json.Obj
                   [
                     ("count", Json.Num (float_of_int hs.hs_count));
                     ("sum", Json.Num hs.hs_sum);
                     ( "rows",
                       Json.List
                         (List.map
                            (fun (lo, hi, c) ->
                              Json.List
                                [
                                  Json.Num lo;
                                  Json.Num hi;
                                  Json.Num (float_of_int c);
                                ])
                            hs.hs_rows) );
                   ] ))
             sn.sn_histograms) );
      ("spans", Json.List (List.map span_node_json sn.sn_spans));
    ]

(* ---- Prometheus text exposition ---- *)

let prom_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "ssd_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus sn =
  let b = Buffer.create 1024 in
  let header name kind help =
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name (prom_escape help)
         name kind)
  in
  List.iter
    (fun (n, v) ->
      let m = prom_name n ^ "_total" in
      header m "counter" ("counter " ^ n);
      Buffer.add_string b (Printf.sprintf "%s %d\n" m v))
    sn.sn_counters;
  List.iter
    (fun (n, v) ->
      let m = prom_name n in
      header m "gauge" ("gauge " ^ n);
      Buffer.add_string b (Printf.sprintf "%s %s\n" m (prom_num v)))
    sn.sn_gauges;
  List.iter
    (fun (n, st) ->
      let base = prom_name n in
      let calls = base ^ "_calls_total" in
      header calls "counter" ("timer " ^ n ^ " calls");
      Buffer.add_string b (Printf.sprintf "%s %d\n" calls st.st_calls);
      let total = base ^ "_seconds_total" in
      header total "counter" ("timer " ^ n ^ " total seconds");
      Buffer.add_string b
        (Printf.sprintf "%s %s\n" total (prom_num st.st_total_s));
      let self = base ^ "_self_seconds_total" in
      header self "counter" ("timer " ^ n ^ " self seconds");
      Buffer.add_string b
        (Printf.sprintf "%s %s\n" self (prom_num st.st_self_s)))
    sn.sn_timers;
  List.iter
    (fun (n, hs) ->
      let base = prom_name n in
      header base "histogram" ("histogram " ^ n);
      let cum = ref 0 in
      List.iter
        (fun (_, hi, c) ->
          cum := !cum + c;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" base (prom_num hi)
               !cum))
        hs.hs_rows;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" base hs.hs_count);
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" base (prom_num hs.hs_sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" base hs.hs_count))
    sn.sn_histograms;
  Buffer.contents b

(* ---- human-readable report ---- *)

let report t =
  match t with
  | Off -> ""
  | On _ ->
    let ms = metrics t in
    let buf = Buffer.create 512 in
    let cs =
      List.filter_map
        (function n, Counter c -> Some (n, c) | _ -> None)
        ms
    in
    if cs <> [] then begin
      let tb = Texttab.create ~header:[ "counter"; "value" ] in
      List.iter
        (fun (n, c) ->
          Texttab.add_row tb [ n; string_of_int (counter_value c) ])
        cs;
      Buffer.add_string buf (Texttab.render tb);
      Buffer.add_char buf '\n'
    end;
    let gs =
      List.filter_map (function n, Gauge g -> Some (n, g) | _ -> None) ms
    in
    if gs <> [] then begin
      let tb = Texttab.create ~header:[ "gauge"; "value" ] in
      List.iter
        (fun (n, g) ->
          Texttab.add_row tb [ n; Printf.sprintf "%.6g" (gauge_value g) ])
        gs;
      Buffer.add_string buf (Texttab.render tb);
      Buffer.add_char buf '\n'
    end;
    let ts =
      List.filter_map (function n, Timer tm -> Some (n, tm) | _ -> None) ms
    in
    if ts <> [] then begin
      let tb =
        Texttab.create
          ~header:
            [ "timer"; "calls"; "total (ms)"; "self (ms)"; "mean (us)" ]
      in
      List.iter
        (fun (n, tm) ->
          let calls = timer_calls tm
          and ns = timer_ns tm
          and self = timer_self_ns tm in
          Texttab.add_row tb
            [
              n;
              string_of_int calls;
              Printf.sprintf "%.3f" (float_of_int ns *. 1e-6);
              Printf.sprintf "%.3f" (float_of_int self *. 1e-6);
              (if calls = 0 then "-"
               else
                 Printf.sprintf "%.2f"
                   (float_of_int ns *. 1e-3 /. float_of_int calls));
            ])
        ts;
      Buffer.add_string buf (Texttab.render tb);
      Buffer.add_char buf '\n'
    end;
    let hs =
      List.filter_map
        (function n, Histogram h -> Some (n, h) | _ -> None)
        ms
    in
    if hs <> [] then begin
      let tb =
        Texttab.create
          ~header:[ "histogram"; "count"; "mean"; "min"; "max"; "bins" ]
      in
      List.iter
        (fun (n, h) ->
          let xs = samples h in
          let lo, hi =
            match Stats.min_max xs with Some r -> r | None -> (0., 0.)
          in
          Texttab.add_row tb
            [
              n;
              string_of_int (List.length xs);
              Printf.sprintf "%.4g" (Stats.mean xs);
              Printf.sprintf "%.4g" lo;
              Printf.sprintf "%.4g" hi;
              String.concat "/"
                (List.map
                   (fun (_, _, c) -> string_of_int c)
                   (histogram_rows h));
            ])
        hs;
      Buffer.add_string buf (Texttab.render tb);
      Buffer.add_char buf '\n'
    end;
    Buffer.contents buf

(* ---- Chrome trace-event export ---- *)

let trace_json t =
  let tracks =
    match t with
    | Off -> []
    | On s ->
      Mutex.lock s.s_mutex;
      let tr = s.s_tracks in
      Mutex.unlock s.s_mutex;
      tr
  in
  let meta =
    List.rev_map
      (fun (tid, name) ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int tid));
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ])
      tracks
  in
  let evs =
    List.map
      (fun ev ->
        Json.Obj
          [
            ("name", Json.Str ev.ev_name);
            ("cat", Json.Str "ssd");
            ("ph", Json.Str "X");
            ("ts", Json.Num (ev.ev_ts *. 1e6));
            ("dur", Json.Num (ev.ev_dur *. 1e6));
            ("pid", Json.Num 1.);
            ("tid", Json.Num (float_of_int ev.ev_tid));
            ( "args",
              Json.Obj
                [
                  ("id", Json.Num (float_of_int ev.ev_id));
                  ("parent", Json.Num (float_of_int ev.ev_parent));
                  ("self_us", Json.Num (ev.ev_self *. 1e6));
                  ("minor_words", Json.Num ev.ev_minor_words);
                  ("self_minor_words", Json.Num ev.ev_self_minor_words);
                  ("promoted_words", Json.Num ev.ev_promoted_words);
                ] );
          ])
      (trace_events t)
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (meta @ evs));
         ("displayTimeUnit", Json.Str "ms");
       ])

let write_file_atomic path ~contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (match
     output_string oc contents;
     close_out oc
   with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let write_trace t path =
  write_file_atomic path ~contents:(trace_json t ^ "\n")

let write_snapshot t path =
  write_file_atomic path
    ~contents:(Json.to_string (snapshot_to_json (snapshot t)) ^ "\n")
