(** Low-overhead telemetry: counters, gauges, timers, histograms and
    hierarchical span tracing for the STA / fault-simulation / ATPG
    engines, with typed snapshots and JSON / Prometheus exports.

    {2 Design}

    A sink is either {!disabled} — every instrument made from it is a
    shared immediate no-op whose operations cost one branch, allocate
    nothing and change no state — or enabled, in which case each
    instrument shards its state per domain: an update touches only the
    shard indexed by the running domain's id (an uncontended atomic),
    so instrumented code inside the {!Ssd_sta.Par} pool never takes a
    lock on the hot path and never perturbs the engines' bit-identical
    results.  Aggregation happens on read ({!counter_value},
    {!report}, {!snapshot}, …), which sums the shards; atomic updates
    make the aggregate exact for any lane count.

    {2 Spans}

    Span bookkeeping (per STA level, per pool job, per MC chunk — not
    per gate) maintains a per-domain stack of open spans: each span
    knows its parent, splits its duration into total vs self (total
    minus directly-enclosed child spans), and carries GC allocation
    deltas ([Gc.counters] minor/promoted words) so allocation is
    attributed to the phase that caused it.  Self time feeds the span's
    timer ({!timer_self_ns}); when the sink is tracing, one event per
    span lands on a lock-free list.  Instrument {e creation} takes a
    registry mutex and belongs in setup code, not inner loops.

    All clock reads use a monotonic source ({!now}, backed by
    [clock_gettime(CLOCK_MONOTONIC)]), so durations are non-negative
    and per-track timestamps monotone even across NTP steps; exported
    timestamps stay relative to the sink's creation epoch.

    {2 Exports}

    {!trace_json} renders the recorded spans as Chrome trace-event JSON
    (the [traceEvents] format), loadable in Perfetto or
    [chrome://tracing]; span hierarchy and GC deltas ride in each
    event's [args].  {!snapshot} captures every instrument plus the
    reconstructed span forest as one typed value, serializable with
    {!snapshot_to_json} (the future [/stats] payload) or
    {!to_prometheus} (text exposition format). *)

type t
(** A telemetry sink. *)

val disabled : t
(** The shared no-op sink: instruments made from it do nothing. *)

val create : ?trace:bool -> unit -> t
(** A fresh enabled sink.  [trace] (default [false]) additionally
    records span events for {!trace_json} / {!write_trace} /
    {!snapshot}; metric aggregation (including span self-time) is
    always on for an enabled sink. *)

val enabled : t -> bool
val tracing : t -> bool

val now : unit -> float
(** Monotonic clock in seconds (arbitrary epoch — differences only). *)

val monotonic_ns : unit -> int64
(** The raw monotonic clock in nanoseconds. *)

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Find-or-create by name (creation takes the registry lock; hold the
    handle rather than re-looking it up in a loop).
    @raise Invalid_argument if the name is registered as another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
(** Sum over all shards: exact, since every update is atomic. *)

(** {2 Gauges} *)

type gauge

val gauge : t -> string -> gauge
(** A last-write-wins instantaneous value (lane utilization, resident
    table sizes, …).  Find-or-create by name, like {!counter}. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Timers} *)

type timer

val timer : t -> string -> timer

val add_ns : timer -> int -> unit
(** Credit a duration (nanoseconds) and one call; a direct credit
    counts entirely as self time. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, crediting its duration (also on exception).  Unlike
    {!span} this does not touch the span stack. *)

val timer_ns : timer -> int
val timer_self_ns : timer -> int
(** Total minus time spent in directly-enclosed child spans. *)

val timer_calls : timer -> int

(** {2 Histograms} *)

type histogram

val histogram : ?bins:int -> ?lo:float -> ?hi:float -> t -> string -> histogram
(** [bins] defaults to 20.  [lo]/[hi] pin the bin range (recommended:
    fixed edges are what let observations from different lanes merge —
    see {!Ssd_util.Stats.histogram}); either defaults to the observed
    data extreme at render time. *)

val observe : histogram -> float -> unit
(** Record one sample (lock-free push onto the domain's shard). *)

val histogram_count : histogram -> int
val histogram_rows : histogram -> (float * float * int) list
(** Merged samples binned through {!Ssd_util.Stats.histogram}. *)

(** {2 Spans} *)

val span : t -> ?event:string -> timer -> (unit -> 'a) -> 'a
(** Run the thunk as a span: it is pushed on the current domain's span
    stack (so nested spans know their parent), its total duration and
    self time are credited to the timer, its GC allocation delta is
    measured, and when the sink is tracing an event named [event]
    (default: the timer's name) is recorded on the current domain's
    track.  On the disabled sink this is exactly [f ()]. *)

type event = {
  ev_name : string;
  ev_id : int;  (** unique per sink *)
  ev_parent : int;  (** enclosing span's id, [-1] for a root span *)
  ev_tid : int;  (** recording domain's id = trace track *)
  ev_ts : float;  (** start, seconds since the sink was created *)
  ev_dur : float;  (** duration in seconds *)
  ev_self : float;  (** duration minus directly-enclosed child spans *)
  ev_minor_words : float;  (** minor-heap words allocated in the span *)
  ev_self_minor_words : float;  (** minus words allocated in children *)
  ev_promoted_words : float;  (** words promoted to the major heap *)
}

val trace_events : t -> event list
(** All recorded events, sorted by track then start time; [] when the
    sink is disabled or not tracing. *)

val set_track_name : t -> tid:int -> string -> unit
(** Name a trace track (thread_name metadata in the export). *)

(** {2 Aggregated views} *)

val counters : t -> (string * int) list
(** Registered counters in creation order with their aggregate value. *)

val gauges : t -> (string * float) list

val timers : t -> (string * int * float * float) list
(** [(name, calls, total seconds, self seconds)] in creation order. *)

val report : t -> string
(** Human-readable {!Ssd_util.Texttab} summary of every registered
    counter, gauge, timer (total and self) and histogram; [""] for a
    disabled sink. *)

(** {2 Typed snapshot} *)

type timer_stat = { st_calls : int; st_total_s : float; st_self_s : float }

type hist_stat = {
  hs_count : int;
  hs_sum : float;
  hs_rows : (float * float * int) list;
}

type span_node = {
  sp_name : string;
  sp_tid : int;
  sp_start_s : float;
  sp_total_s : float;
  sp_self_s : float;
  sp_minor_words : float;
  sp_self_minor_words : float;
  sp_promoted_words : float;
  sp_children : span_node list;  (** in start-time order *)
}

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_timers : (string * timer_stat) list;
  sn_histograms : (string * hist_stat) list;
  sn_spans : span_node list;  (** span forest, roots by (track, start) *)
}

val snapshot : t -> snapshot
(** Capture every registered instrument plus the span forest (rebuilt
    from recorded events via parent ids; empty unless tracing).  On the
    disabled sink returns a shared empty snapshot without allocating. *)

val prefix_snapshot : string -> snapshot -> snapshot
(** Namespace every instrument and span name with [prefix ^ "."] —
    how per-session sinks (one {!t} per serve session, so sessions
    never share shards) compose into one global view. *)

val merge_snapshots : snapshot list -> snapshot
(** Concatenate snapshots field-wise, preserving order.  Callers keep
    names disjoint (e.g. via {!prefix_snapshot}); duplicate names are
    kept as-is, not summed. *)

val snapshot_to_json : snapshot -> Ssd_util.Json.t
(** Stable JSON shape: [{counters:{}, gauges:{}, timers:{name:{calls,
    total_s, self_s}}, histograms:{name:{count, sum, rows:[[lo,hi,n]]}},
    spans:[{name, tid, start_s, total_s, self_s, minor_words,
    self_minor_words, promoted_words, children:[…]}]}]. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition: metric names are prefixed [ssd_] and
    sanitized to [[a-zA-Z0-9_:]]; counters become [_total], timers
    [_calls_total] / [_seconds_total] / [_self_seconds_total], gauges
    bare, histograms cumulative [_bucket{le=…}] / [_sum] / [_count]. *)

val write_snapshot : t -> string -> unit
(** {!snapshot_to_json} written atomically (temp file + rename). *)

(** {2 Exports} *)

val trace_json : t -> string
(** Chrome trace-event JSON: an object with a [traceEvents] array of
    complete ("ph":"X") events plus thread-name metadata, timestamps in
    microseconds; each event's [args] carries [id] / [parent] /
    [self_us] and the GC word deltas. *)

val write_trace : t -> string -> unit
(** {!trace_json} written atomically (temp file + rename). *)

val write_file_atomic : string -> contents:string -> unit
(** Write [contents] to a sibling temp file and [Sys.rename] it over
    the target, so readers never observe a truncated file. *)
