(** Low-overhead telemetry: counters, timers, histograms and span
    tracing for the STA / fault-simulation / ATPG engines.

    {2 Design}

    A sink is either {!disabled} — every instrument made from it is a
    shared immediate no-op whose operations cost one branch, allocate
    nothing and change no state — or enabled, in which case each
    instrument shards its state per domain: an update touches only the
    shard indexed by the running domain's id (an uncontended atomic),
    so instrumented code inside the {!Ssd_sta.Par} pool never takes a
    lock on the hot path and never perturbs the engines' bit-identical
    results.  Aggregation happens on read ({!counter_value},
    {!report}, …), which sums the shards; atomic updates make the
    aggregate exact for any lane count.

    Span bookkeeping (per STA level, per pool job, per ATPG fault — not
    per gate) records into a pre-created timer and, when tracing is on,
    pushes one event onto a lock-free list; instrument {e creation}
    takes a registry mutex and belongs in setup code, not inner loops.

    {2 Tracing}

    {!trace_json} renders the recorded spans as Chrome trace-event JSON
    (the [traceEvents] format), loadable in Perfetto or
    [chrome://tracing].  Each event lands on the track of the domain
    that recorded it — one track per pool lane — and tracks are named
    via {!set_track_name} (the {!Ssd_sta.Par} pool names its lanes on
    creation).  Timestamps come from one wall clock read per span edge;
    within a track they are monotone because a single domain records
    its events sequentially. *)

type t
(** A telemetry sink. *)

val disabled : t
(** The shared no-op sink: instruments made from it do nothing. *)

val create : ?trace:bool -> unit -> t
(** A fresh enabled sink.  [trace] (default [false]) additionally
    records span events for {!trace_json} / {!write_trace}; metric
    aggregation is always on for an enabled sink. *)

val enabled : t -> bool
val tracing : t -> bool

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Find-or-create by name (creation takes the registry lock; hold the
    handle rather than re-looking it up in a loop).
    @raise Invalid_argument if the name is registered as another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
(** Sum over all shards: exact, since every update is atomic. *)

(** {2 Timers} *)

type timer

val timer : t -> string -> timer

val add_ns : timer -> int -> unit
(** Credit a duration (nanoseconds) and one call. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, crediting its duration (also on exception). *)

val timer_ns : timer -> int
val timer_calls : timer -> int

(** {2 Histograms} *)

type histogram

val histogram : ?bins:int -> ?lo:float -> ?hi:float -> t -> string -> histogram
(** [bins] defaults to 20.  [lo]/[hi] pin the bin range (recommended:
    fixed edges are what let observations from different lanes merge —
    see {!Ssd_util.Stats.histogram}); either defaults to the observed
    data extreme at render time. *)

val observe : histogram -> float -> unit
(** Record one sample (lock-free push onto the domain's shard). *)

val histogram_count : histogram -> int
val histogram_rows : histogram -> (float * float * int) list
(** Merged samples binned through {!Ssd_util.Stats.histogram}. *)

(** {2 Spans} *)

val span : t -> ?event:string -> timer -> (unit -> 'a) -> 'a
(** Run the thunk as a span: its duration is credited to the timer,
    and when the sink is tracing an event named [event] (default: the
    timer's name) is recorded on the current domain's track.  On the
    disabled sink this is exactly [f ()]. *)

type event = {
  ev_name : string;
  ev_tid : int;  (** recording domain's id = trace track *)
  ev_ts : float;  (** start, seconds since the sink was created *)
  ev_dur : float;  (** duration in seconds *)
}

val trace_events : t -> event list
(** All recorded events, sorted by track then start time; [] when the
    sink is disabled or not tracing. *)

val set_track_name : t -> tid:int -> string -> unit
(** Name a trace track (thread_name metadata in the export). *)

(** {2 Aggregated views} *)

val counters : t -> (string * int) list
(** Registered counters in creation order with their aggregate value. *)

val timers : t -> (string * int * float) list
(** [(name, calls, total seconds)] in creation order. *)

val report : t -> string
(** Human-readable {!Ssd_util.Texttab} summary of every registered
    counter, timer and histogram; [""] for a disabled sink. *)

val trace_json : t -> string
(** Chrome trace-event JSON: an object with a [traceEvents] array of
    complete ("ph":"X") events plus thread-name metadata, timestamps in
    microseconds. *)

val write_trace : t -> string -> unit
(** {!trace_json} written atomically (temp file + rename). *)

val write_file_atomic : string -> contents:string -> unit
(** Write [contents] to a sibling temp file and [Sys.rename] it over
    the target, so readers never observe a truncated file. *)
