type shape = Monotonic | Bitonic of float

let candidates shape iv =
  let lo = Interval.lo iv and hi = Interval.hi iv in
  match shape with
  | Monotonic -> [ lo; hi ]
  | Bitonic p -> if Interval.contains iv p then [ lo; p; hi ] else [ lo; hi ]

let extremum better shape f iv =
  match candidates shape iv with
  | [] -> assert false
  | x0 :: rest ->
    List.fold_left
      (fun (bx, bv) x ->
        let v = f x in
        if better v bv then (x, v) else (bx, bv))
      (x0, f x0) rest

let max_over shape f iv = extremum ( > ) shape f iv
let min_over shape f iv = extremum ( < ) shape f iv

let phi = (sqrt 5. -. 1.) /. 2.

let golden better ?tol ?(iters = 200) f a b =
  if a > b then invalid_arg "Func1d.golden: a > b";
  let tol =
    match tol with
    | Some t -> t
    | None -> Float.max (1e-4 *. (b -. a)) 1e-15
  in
  let rec loop a b x1 x2 f1 f2 k =
    if b -. a <= tol || k >= iters then begin
      let x = 0.5 *. (a +. b) in
      (x, f x)
    end
    else if better f1 f2 then begin
      (* keep [a, x2] *)
      let b' = x2 in
      let x2' = x1 in
      let x1' = b' -. (phi *. (b' -. a)) in
      loop a b' x1' x2' (f x1') f1 (k + 1)
    end
    else begin
      let a' = x1 in
      let x1' = x2 in
      let x2' = a' +. (phi *. (b -. a')) in
      loop a' b x1' x2' f2 (f x2') (k + 1)
    end
  in
  let x1 = b -. (phi *. (b -. a)) in
  let x2 = a +. (phi *. (b -. a)) in
  loop a b x1 x2 (f x1) (f x2) 0

let golden_max ?tol ?iters f a b = golden ( > ) ?tol ?iters f a b
let golden_min ?tol ?iters f a b = golden ( < ) ?tol ?iters f a b

let bisect ?tol ?(iters = 200) f a b =
  if a > b then invalid_arg "Func1d.bisect: a > b";
  let tol =
    match tol with
    | Some t -> t
    | None -> Float.max (1e-9 *. (b -. a)) 1e-18
  in
  let fa = f a and fb = f b in
  if fa = 0. then a
  else if fb = 0. then b
  else if fa *. fb > 0. then
    invalid_arg "Func1d.bisect: no sign change on the bracket"
  else begin
    let rec loop a b fa k =
      let m = 0.5 *. (a +. b) in
      if b -. a <= tol || k >= iters then m
      else begin
        let fm = f m in
        if fm = 0. then m
        else if fa *. fm < 0. then loop a m fa (k + 1)
        else loop m b fm (k + 1)
      end
    in
    loop a b fa 0
  end

let sample f a b n =
  if n < 2 then invalid_arg "Func1d.sample: need n >= 2";
  List.init n (fun i ->
      let x = a +. ((b -. a) *. float_of_int i /. float_of_int (n - 1)) in
      (x, f x))

let is_monotonic_nondecreasing ?(eps = 0.) pts =
  let rec loop = function
    | (_, y1) :: ((_, y2) :: _ as rest) ->
      if y2 < y1 -. eps then false else loop rest
    | [ _ ] | [] -> true
  in
  loop pts

let is_bitonic_up_down ?(eps = 0.) pts =
  (* A rise phase (possibly empty) followed by a fall phase (possibly
     empty); once the data has started to fall it must never rise again by
     more than [eps]. *)
  let rec falling = function
    | (_, y1) :: ((_, y2) :: _ as rest) ->
      if y2 > y1 +. eps then false else falling rest
    | [ _ ] | [] -> true
  in
  let rec rising = function
    | (_, y1) :: ((_, y2) :: _ as rest) as all ->
      if y2 >= y1 -. eps then rising rest else falling all
    | [ _ ] | [] -> true
  in
  rising pts
