type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN bound";
  if lo > hi then
    invalid_arg
      (Printf.sprintf "Interval.make: lo (%g) > hi (%g)" lo hi);
  { lo; hi }

let point v = make v v
let lo i = i.lo
let hi i = i.hi
let width i = i.hi -. i.lo
let mid i = 0.5 *. (i.lo +. i.hi)
let contains i x = i.lo <= x && x <= i.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let intersect a b =
  if overlaps a b then Some (make (Float.max a.lo b.lo) (Float.min a.hi b.hi))
  else None

let hull a b = make (Float.min a.lo b.lo) (Float.max a.hi b.hi)
let add a b = make (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = make (a.lo -. b.hi) (a.hi -. b.lo)
let shift i d = make (i.lo +. d) (i.hi +. d)
let neg i = make (-.i.hi) (-.i.lo)
let clamp i x = Float.max i.lo (Float.min i.hi x)
let subset a b = b.lo <= a.lo && a.hi <= b.hi

let equal ?(eps = 0.) a b =
  Float.abs (a.lo -. b.lo) <= eps && Float.abs (a.hi -. b.hi) <= eps

let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi
let to_string i = Format.asprintf "%a" pp i
