(** Tools for one-dimensional functions that are monotonic or bi-tonic.

    The paper's sufficient condition for worst-case corner identification in
    STA/ITR is that every timing function is monotonic or bi-tonic in each
    input variable (Section 6.1).  This module provides:
    - extremization of a function over a closed interval given an optional
      interior peak/valley location (the paper's Fig. 9 case analysis), and
    - numeric peak search (golden section) used during characterization to
      find e.g. the transition time that maximizes a pin-to-pin delay, or the
      skew minimizing an output transition time. *)

type shape =
  | Monotonic
      (** Increasing or decreasing over the whole domain of interest. *)
  | Bitonic of float
      (** Rises then falls (or falls then rises) with the turning point at
          the carried abscissa. *)

val max_over : shape -> (float -> float) -> Interval.t -> float * float
(** [max_over shape f iv] returns [(x_best, f x_best)] maximizing [f] over [iv],
    evaluating [f] only at the interval endpoints plus — for [Bitonic p]
    with [p] inside [iv] — the turning point.  This is exact when [shape]
    correctly describes [f] and the turning point is a maximum. *)

val min_over : shape -> (float -> float) -> Interval.t -> float * float
(** Dual of {!max_over} (turning point treated as a potential minimum). *)

val golden_max : ?tol:float -> ?iters:int -> (float -> float)
  -> float -> float -> float * float
(** [golden_max f a b] locates a maximum of a unimodal [f] on [a, b] by
    golden-section search; returns [(x_best, f x_best)].  [tol] is on the abscissa
    (default 1e-4 of the interval width, floor 1e-15). *)

val golden_min : ?tol:float -> ?iters:int -> (float -> float)
  -> float -> float -> float * float

val bisect : ?tol:float -> ?iters:int -> (float -> float)
  -> float -> float -> float
(** [bisect f a b] finds a root of [f] on [a, b] assuming [f a] and [f b]
    have opposite signs (one of them may be zero).  @raise Invalid_argument
    when the signs agree. *)

val sample : (float -> float) -> float -> float -> int -> (float * float) list
(** [sample f a b n] evaluates [f] at [n] evenly spaced points inclusive of
    both ends ([n >= 2]). *)

val is_monotonic_nondecreasing : ?eps:float -> (float * float) list -> bool
val is_bitonic_up_down : ?eps:float -> (float * float) list -> bool
(** Checks on sampled data used by validation tests: [is_bitonic_up_down]
    accepts a rise followed by a fall where either phase may be empty
    (so monotonic data passes too). *)
