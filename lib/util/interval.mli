(** Closed floating-point intervals [lo, hi].

    Used throughout the timing analysis as min-max ranges of arrival times,
    transition times and required times.  An interval is well formed when
    [lo <= hi]; constructors enforce this. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi] builds the interval.  @raise Invalid_argument if [lo > hi]
    or either bound is NaN. *)

val point : float -> t
(** Degenerate interval [v, v]. *)

val lo : t -> float
val hi : t -> float

val width : t -> float
(** [hi - lo]. *)

val mid : t -> float

val contains : t -> float -> bool
(** [contains i x] is true when [lo <= x <= hi]. *)

val overlaps : t -> t -> bool
(** True when the intersection is non-empty. *)

val intersect : t -> t -> t option
(** Intersection, or [None] when disjoint. *)

val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val add : t -> t -> t
(** Interval sum: [lo1+lo2, hi1+hi2]. *)

val sub : t -> t -> t
(** Interval difference: [lo1-hi2, hi1-lo2]. *)

val shift : t -> float -> t
(** [shift i d] translates both bounds by [d]. *)

val neg : t -> t

val clamp : t -> float -> float
(** [clamp i x] projects [x] onto the interval. *)

val subset : t -> t -> bool
(** [subset a b] is true when [a] lies inside [b]. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
