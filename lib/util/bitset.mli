(** Packed bitset: one bit per entry, backed by [Bytes].

    Replaces [bool array] membership flags where the set is cached and
    long-lived — at one million entries a [bool array] costs 1 MB where
    the bitset costs 128 kB.  Not thread-safe for concurrent writes;
    build the set single-threaded, then share it read-only (reads are
    plain byte loads). *)

type t

val create : int -> t
(** [create len] is the empty set over [0 .. len-1]. *)

val length : t -> int

val set : t -> int -> unit
(** @raise Invalid_argument on an out-of-range index. *)

val get : t -> int -> bool
(** @raise Invalid_argument on an out-of-range index. *)

val mem : t -> int -> bool
(** Alias of {!get}. *)

val cardinal : t -> int
(** Number of set bits. *)

val bytes : t -> int
(** Heap footprint of the bit payload in bytes: [ceil (length / 8)]. *)
