(** Deterministic pseudo-random generator (splitmix64).

    Every stochastic component of the reproduction (synthetic benchmark
    generation, accuracy sampling, ATPG fault selection, random vectors)
    draws from this generator with an explicit fixed seed so results are
    bit-reproducible across runs and machines. *)

type t

val create : int64 -> t
(** Independent stream seeded by the argument. *)

val copy : t -> t

val next_int64 : t -> int64

val float : t -> float -> float
(** [float r bound] draws uniformly from [0, bound). *)

val float_range : t -> float -> float -> float
(** Uniform in [lo, hi). *)

val int : t -> int -> int
(** [int r bound] draws uniformly from [0, bound).  [bound > 0]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent child stream (advances the parent). *)
