let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let rms = function
  | [] -> 0.
  | xs ->
    sqrt
      (List.fold_left (fun a x -> a +. (x *. x)) 0. xs
      /. float_of_int (List.length xs))

let max_abs xs = List.fold_left (fun a x -> Float.max a (Float.abs x)) 0. xs

let min_max = function
  | [] -> None
  | x :: xs ->
    Some
      (List.fold_left
         (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
         (x, x) xs)

(* Sorted-array quantile with linear interpolation between order
   statistics (the "type 7" estimator): q = 0 is the minimum, q = 1 the
   maximum, q = 0.5 the median. *)
let quantile_sorted a q =
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let h = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor h) in
    let i = if i < 0 then 0 else if i > n - 2 then n - 2 else i in
    let f = h -. float_of_int i in
    a.(i) +. (f *. (a.(i + 1) -. a.(i)))
  end

let check_q q =
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg (Printf.sprintf "Stats.quantile: q = %g outside [0, 1]" q)

let quantile q xs =
  check_q q;
  match xs with
  | [] -> invalid_arg "Stats.quantile: empty sample list"
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    quantile_sorted a q

let quantiles qs xs =
  match xs with
  | [] -> invalid_arg "Stats.quantiles: empty sample list"
  | xs ->
    List.iter check_q qs;
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    List.map (fun q -> (q, quantile_sorted a q)) qs

let pct_errors ~reference values =
  if List.length reference <> List.length values then
    invalid_arg "Stats: length mismatch";
  List.filter_map
    (fun (r, v) ->
      if r = 0. then None
      else Some (100. *. Float.abs (v -. r) /. Float.abs r))
    (List.combine reference values)

let mean_abs_pct_error ~reference values = mean (pct_errors ~reference values)
let max_abs_pct_error ~reference values = max_abs (pct_errors ~reference values)

let histogram ?lo ?hi ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  (match (lo, hi) with
  | Some l, Some h when h <= l -> invalid_arg "Stats.histogram: hi <= lo"
  | _ -> ());
  (* a fully fixed range makes the bin edges data-independent, so
     histograms built by different producers (e.g. per-lane telemetry
     shards) add bin-by-bin; out-of-range samples clamp to the edge
     bins.  Missing endpoints fall back to the data extremes. *)
  let range =
    match (min_max xs, lo, hi) with
    | None, Some l, Some h -> Some (l, h)
    | None, _, _ -> None
    | Some (dlo, dhi), l, h ->
      let l = Option.value l ~default:dlo and h = Option.value h ~default:dhi in
      Some (Float.min l h, Float.max l h)
  in
  match range with
  | None -> []
  | Some (lo, hi) ->
    let span = if hi > lo then hi -. lo else 1. in
    let counts = Array.make bins 0 in
    List.iter
      (fun x ->
        let i = int_of_float (float_of_int bins *. (x -. lo) /. span) in
        let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
        counts.(i) <- counts.(i) + 1)
      xs;
    List.init bins (fun i ->
        let w = span /. float_of_int bins in
        (lo +. (w *. float_of_int i), lo +. (w *. float_of_int (i + 1)),
         counts.(i)))
