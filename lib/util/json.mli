(** Minimal JSON tree, parser and printer.

    Used by the telemetry trace export ({!Ssd_obs.Obs}) and the bench
    harness's machine-readable results, and by the tests that read those
    files back.  Covers the full JSON grammar (objects, arrays, strings
    with escapes, numbers, booleans, null) without any external
    dependency; numbers are carried as [float], so integers above 2^53
    lose precision — far beyond anything the telemetry emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization.  Strings are escaped per RFC 8259; integral
    numbers print without a decimal point; non-finite numbers (which JSON
    cannot represent) print as [null]. *)

val parse : string -> (t, string) result
(** Parse one JSON document; [Error] carries a message with the byte
    offset of the failure.  Trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list
(** Elements of a [List]; [] for any other constructor. *)

val string_value : t -> string option
val number_value : t -> float option

val bool_value : t -> bool option

val int_value : t -> int option
(** [Some n] only for a [Num] that is finite, integral and inside the
    native [int] range — the request-parsing accessor (counts, seeds,
    ids), where [3.5] or [1e300] must be rejected rather than
    truncated. *)

val member_string : string -> t -> string option
(** [member_string k j] = [member k j |> string_value] — field lookup
    composed with the string accessor, the common protocol-decoding
    step. *)

val member_int : string -> t -> int option
val member_number : string -> t -> float option
