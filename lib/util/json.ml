type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> Buffer.add_string buf (number_to_string x)
    | Str s -> escape_string buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---- parsing: plain recursive descent over a byte cursor ---- *)

exception Fail of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  (* encode one Unicode scalar value as UTF-8 *)
  let add_uchar buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let u = try hex4 () with _ -> fail "bad \\u escape" in
           (* combine a surrogate pair when one follows *)
           if u >= 0xD800 && u <= 0xDBFF && !pos + 6 <= n
              && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
             pos := !pos + 2;
             let lo = try hex4 () with _ -> fail "bad \\u escape" in
             if lo >= 0xDC00 && lo <= 0xDFFF then
               add_uchar buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
             else begin
               add_uchar buf u;
               add_uchar buf lo
             end
           end
           else add_uchar buf u
         | _ -> fail "unknown escape"));
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some v -> Num v
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Fail (msg, off) ->
    Error (Printf.sprintf "%s at offset %d" msg off)

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> xs | _ -> []
let string_value = function Str s -> Some s | _ -> None
let number_value = function Num x -> Some x | _ -> None
let bool_value = function Bool b -> Some b | _ -> None

let int_value = function
  | Num x
    when Float.is_integer x
         && x >= Float.of_int min_int
         && x <= Float.of_int max_int ->
    Some (int_of_float x)
  | _ -> None

let member_string k j = Option.bind (member k j) string_value
let member_int k j = Option.bind (member k j) int_value
let member_number k j = Option.bind (member k j) number_value
