type t = { mutable state : int64 }

let create seed = { state = seed }
let copy r = { state = r.state }

(* splitmix64: Steele, Lea & Flood (2014). *)
let next_int64 r =
  let open Int64 in
  r.state <- add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let float r bound =
  (* 53 high bits → uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 r) 11 in
  let unit = Int64.to_float bits /. 9007199254740992. in
  unit *. bound

let float_range r lo hi = lo +. float r (hi -. lo)

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let v = Int64.shift_right_logical (next_int64 r) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int bound))

let bool r = Int64.logand (next_int64 r) 1L = 1L

let pick r arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int r (Array.length arr))

let shuffle r arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split r = create (next_int64 r)
