(** Linear least-squares fitting via normal equations.

    The characterization flow fits the paper's empirical forms
    (DR, D0R, SR, ...) which are all linear in their coefficients once the
    basis functions (powers, cube roots, cross terms) are fixed. *)

type basis = float array -> float array
(** A basis maps an input point (e.g. [| t_x; t_y |]) to the vector of basis
    function values (e.g. [| tx**2.; ty**2.; tx*.ty; tx; ty; 1. |]). *)

val fit : basis -> (float array * float) list -> float array
(** [fit basis samples] returns coefficients [c] minimizing
    [sum_i (dot c (basis x_i) - y_i)^2] over samples [(x_i, y_i)].
    Solves the normal equations with a small Tikhonov ridge (1e-12 relative)
    for robustness.  @raise Invalid_argument on an empty sample list, and —
    naming the basis family and the sample count — when the ridge-regularized
    normal equations are still singular or produce non-finite coefficients
    (e.g. NaN observations): a corner table must never be populated from a
    silently failed fit. *)

val basis_name : basis -> string
(** The exported basis families by physical identity ("quadratic_1d", ...);
    ["custom"] for anything else.  Used in {!fit} diagnostics. *)

val residuals : basis -> float array -> (float array * float) list
  -> float list
(** Per-sample signed error [predicted - observed]. *)

val rms_error : basis -> float array -> (float array * float) list -> float
val max_abs_error : basis -> float array -> (float array * float) list -> float

val predict : basis -> float array -> float array -> float
(** [predict basis coeffs x]. *)

(** Ready-made bases used by the characterization fits. *)

val quadratic_1d : basis
(** x ↦ [| x²; x; 1 |] — the paper's DR(T) form. *)

val quadratic_2d : basis
(** (x,y) ↦ [| x²; y²; xy; x; y; 1 |] — the paper's SR(T_X,T_Y) form. *)

val bilinear_cuberoot_2d : basis
(** (x,y) ↦ [| x^⅓·y^⅓; x^⅓; y^⅓; 1 |] — the paper's D0R form
    [(K20·x^⅓+K21)(K22·y^⅓+K23)+K24] expanded into a form linear in
    its coefficients. *)

val linear_1d : basis
(** x ↦ [| x; 1 |]. *)

val cubic_2d : basis
(** Full bivariate cubic (10 terms) — used when the quadratic surface
    underfits strongly bi-tonic characterization data. *)
