(** Aligned ASCII table rendering for benchmark and CLI reports. *)

type align = Left | Right

type t

val create : header:string list -> t
(** A table whose width is fixed by the header; numeric columns default to
    right alignment when rows are added with {!add_row_f}. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val add_row_f : ?prec:int -> t -> string -> float list -> unit
(** Convenience: a label column followed by formatted floats. *)

val add_separator : t -> unit

val render : ?align:align list -> t -> string
(** Rendered with column separators and a header rule.  [align] overrides
    per-column alignment (default: first column left, rest right). *)

val print : ?align:align list -> t -> unit
(** [render] to stdout followed by a newline. *)
