type basis = float array -> float array

(* --- basis families ---------------------------------------------------- *)

let quadratic_1d x = [| x.(0) *. x.(0); x.(0); 1. |]

let quadratic_2d x =
  let a = x.(0) and b = x.(1) in
  [| a *. a; b *. b; a *. b; a; b; 1. |]

let cbrt v = Float.pow v (1. /. 3.)

let bilinear_cuberoot_2d x =
  let a = cbrt x.(0) and b = cbrt x.(1) in
  [| a *. b; a; b; 1. |]

let linear_1d x = [| x.(0); 1. |]

let cubic_2d x =
  let a = x.(0) and b = x.(1) in
  [|
    a *. a *. a; b *. b *. b; a *. a *. b; a *. b *. b;
    a *. a; b *. b; a *. b; a; b; 1.;
  |]

(* Name the exported basis families by physical identity so a failed fit
   can say which family it was building (corner tables are assembled from
   many fits; "Lsq.fit failed" alone does not localize anything). *)
let basis_name (b : basis) =
  if b == quadratic_1d then "quadratic_1d"
  else if b == quadratic_2d then "quadratic_2d"
  else if b == bilinear_cuberoot_2d then "bilinear_cuberoot_2d"
  else if b == linear_1d then "linear_1d"
  else if b == cubic_2d then "cubic_2d"
  else "custom"

(* --- least squares ----------------------------------------------------- *)

let fit basis samples =
  match samples with
  | [] -> invalid_arg "Lsq.fit: empty sample list"
  | (x0, _) :: _ ->
    let k = Array.length (basis x0) in
    let n = List.length samples in
    let fail reason =
      invalid_arg
        (Printf.sprintf
           "Lsq.fit: %s normal equations for basis %s (%d coefficient(s), %d \
            sample(s))"
           reason (basis_name basis) k n)
    in
    if k = 0 then fail "empty";
    (* Column normalization: basis values can span tens of orders of
       magnitude (e.g. T² with T ~ 1e-9 s), which would make the normal
       equations hopeless in double precision.  Each column is scaled to
       unit RMS before solving and the coefficients are unscaled after. *)
    let scale = Array.make k 0. in
    List.iter
      (fun (x, _) ->
        let phi = basis x in
        if Array.length phi <> k then
          invalid_arg "Lsq.fit: inconsistent basis dimension";
        for j = 0 to k - 1 do
          scale.(j) <- scale.(j) +. (phi.(j) *. phi.(j))
        done)
      samples;
    for j = 0 to k - 1 do
      let s = sqrt (scale.(j) /. float_of_int n) in
      scale.(j) <- (if s > 0. then s else 1.)
    done;
    let ata = Linalg.zeros k k in
    let atb = Array.make k 0. in
    List.iter
      (fun (x, y) ->
        let phi = basis x in
        for i = 0 to k - 1 do
          let pi = phi.(i) /. scale.(i) in
          atb.(i) <- atb.(i) +. (pi *. y);
          for j = 0 to k - 1 do
            ata.(i).(j) <- ata.(i).(j) +. (pi *. phi.(j) /. scale.(j))
          done
        done)
      samples;
    (* A tiny ridge keeps degenerate sweeps (duplicated columns) and
       underdetermined grids (fewer samples than coefficients) solvable;
       with unit-RMS columns its size is meaningful. *)
    for i = 0 to k - 1 do
      ata.(i).(i) <- ata.(i).(i) +. (1e-10 *. float_of_int n)
    done;
    let c =
      (* singular even with the ridge: non-finite sample data collapsed
         the pivot column(s) *)
      try Linalg.solve ata atb
      with Linalg.Singular -> fail "singular"
    in
    let c = Array.mapi (fun j cj -> cj /. scale.(j)) c in
    (* NaN/inf coefficients would silently poison every downstream
       evaluation (fitted cells, derated corner tables); fail here where
       the offending fit is still identifiable. *)
    if not (Array.for_all Float.is_finite c) then
      fail "singular/underdetermined";
    c

let predict basis coeffs x = Linalg.dot coeffs (basis x)

let residuals basis coeffs samples =
  List.map (fun (x, y) -> predict basis coeffs x -. y) samples

let rms_error basis coeffs samples =
  let rs = residuals basis coeffs samples in
  let n = List.length rs in
  if n = 0 then 0.
  else sqrt (List.fold_left (fun a r -> a +. (r *. r)) 0. rs /. float_of_int n)

let max_abs_error basis coeffs samples =
  List.fold_left
    (fun m r -> Float.max m (Float.abs r))
    0.
    (residuals basis coeffs samples)
