type t = { bits : Bytes.t; len : int }

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { bits = Bytes.make ((len + 7) / 8) '\000'; len }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0, %d)" i t.len)

let set t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let mem = get

let cardinal t =
  let c = ref 0 in
  for b = 0 to Bytes.length t.bits - 1 do
    let v = ref (Char.code (Bytes.unsafe_get t.bits b)) in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr c
    done
  done;
  !c

(* heap footprint of the payload: one byte per 8 entries, rounded up *)
let bytes t = Bytes.length t.bits
