type mat = float array array
type vec = float array

let zeros r c = Array.make_matrix r c 0.

let identity n =
  let m = zeros n n in
  for i = 0 to n - 1 do
    m.(i).(i) <- 1.
  done;
  m

let copy_mat a = Array.map Array.copy a

let dims a =
  let r = Array.length a in
  if r = 0 then (0, 0)
  else begin
    let c = Array.length a.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then invalid_arg "Linalg.dims: ragged matrix")
      a;
    (r, c)
  end

let mat_vec a x =
  let r, c = dims a in
  if Array.length x <> c then invalid_arg "Linalg.mat_vec: size mismatch";
  Array.init r (fun i ->
      let row = a.(i) in
      let s = ref 0. in
      for j = 0 to c - 1 do
        s := !s +. (row.(j) *. x.(j))
      done;
      !s)

let mat_mul a b =
  let ra, ca = dims a in
  let rb, cb = dims b in
  if ca <> rb then invalid_arg "Linalg.mat_mul: size mismatch";
  let m = zeros ra cb in
  for i = 0 to ra - 1 do
    for k = 0 to ca - 1 do
      let aik = a.(i).(k) in
      if aik <> 0. then
        for j = 0 to cb - 1 do
          m.(i).(j) <- m.(i).(j) +. (aik *. b.(k).(j))
        done
    done
  done;
  m

let transpose a =
  let r, c = dims a in
  Array.init c (fun j -> Array.init r (fun i -> a.(i).(j)))

let dot x y =
  if Array.length x <> Array.length y then
    invalid_arg "Linalg.dot: size mismatch";
  let s = ref 0. in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let axpy a x y =
  if Array.length x <> Array.length y then
    invalid_arg "Linalg.axpy: size mismatch";
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let norm_inf x = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0. x
let norm2 x = sqrt (dot x x)

exception Singular

(* Gaussian elimination with partial pivoting, operating destructively on
   [a] and [b].  The forward sweep keeps the multipliers implicit (classic
   in-place schoolbook form); back-substitution writes the answer into [b]. *)
let solve_in_place a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Linalg.solve: size mismatch";
  for k = 0 to n - 1 do
    (* pivot search *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!piv).(k) then piv := i
    done;
    if Float.abs a.(!piv).(k) < 1e-300 then raise Singular;
    if !piv <> k then begin
      let tmp = a.(k) in
      a.(k) <- a.(!piv);
      a.(!piv) <- tmp;
      let tb = b.(k) in
      b.(k) <- b.(!piv);
      b.(!piv) <- tb
    end;
    let akk = a.(k).(k) in
    for i = k + 1 to n - 1 do
      let f = a.(i).(k) /. akk in
      if f <> 0. then begin
        let ai = a.(i) and ak = a.(k) in
        for j = k to n - 1 do
          ai.(j) <- ai.(j) -. (f *. ak.(j))
        done;
        b.(i) <- b.(i) -. (f *. b.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    let ai = a.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (ai.(j) *. b.(j))
    done;
    b.(i) <- !s /. ai.(i)
  done

let solve a b =
  let a = copy_mat a and b = Array.copy b in
  solve_in_place a b;
  b

let lu_solve_many a rhss = List.map (fun b -> solve a b) rhss
