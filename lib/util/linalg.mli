(** Small dense linear algebra: vectors and square-matrix solves.

    Sized for the circuit simulator (node counts below a few dozen) and the
    least-squares fitter (normal equations of at most ~10 unknowns).  Matrices
    are row-major [float array array]; all operations are fresh-allocating
    unless suffixed [_in_place]. *)

type mat = float array array
type vec = float array

val zeros : int -> int -> mat
val identity : int -> mat
val copy_mat : mat -> mat

val dims : mat -> int * int
(** (rows, cols). @raise Invalid_argument on a ragged matrix. *)

val mat_vec : mat -> vec -> vec
val mat_mul : mat -> mat -> mat
val transpose : mat -> mat

val dot : vec -> vec -> float
val axpy : float -> vec -> vec -> vec
(** [axpy a x y] is [a*x + y]. *)

val norm_inf : vec -> float
val norm2 : vec -> float

exception Singular
(** Raised by solvers when pivoting finds no usable pivot. *)

val solve : mat -> vec -> vec
(** [solve a b] returns [x] with [a x = b] by Gaussian elimination with
    partial pivoting.  [a] and [b] are not modified.  @raise Singular *)

val solve_in_place : mat -> vec -> unit
(** Destructive variant: on return [b] holds the solution and [a] is
    overwritten with elimination garbage.  Used on the simulator's hot
    path to avoid allocation.  @raise Singular *)

val lu_solve_many : mat -> vec list -> vec list
(** Solve the same system for several right-hand sides (one factorization). *)
