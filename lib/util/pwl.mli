(** Piecewise-linear waveforms v(t).

    Used both to describe simulator input stimuli (voltage ramps) and to
    post-process simulated node voltages (crossing times, 10–90 % transition
    times).  A waveform is a non-empty sequence of (time, value) breakpoints
    with strictly increasing times; the value is held constant before the
    first and after the last breakpoint. *)

type t

val of_points : (float * float) list -> t
(** @raise Invalid_argument on an empty list or non-increasing times. *)

val constant : float -> t

val points : t -> (float * float) list

val value_at : t -> float -> float
(** Linear interpolation between breakpoints; clamped outside the span. *)

val start_time : t -> float
val end_time : t -> float
val start_value : t -> float
val end_value : t -> float

val rising_ramp : t0:float -> t_transition:float -> v_lo:float -> v_hi:float -> t
(** A ramp from [v_lo] to [v_hi] whose 10 %–90 % transition time is
    [t_transition]; the full ramp therefore spans [t_transition /. 0.8] and
    is positioned so the ramp *starts* at [t0].  [t_transition] must be
    positive. *)

val falling_ramp : t0:float -> t_transition:float -> v_lo:float -> v_hi:float -> t
(** Mirror image of {!rising_ramp}. *)

val first_crossing : t -> ?after:float -> rising:bool -> float -> float option
(** [first_crossing w ~after ~rising level] is the earliest time [>= after]
    (default: the waveform start) at which the waveform crosses [level] in
    the requested direction, by linear interpolation between samples. *)

val last_crossing : t -> rising:bool -> float -> float option

val shift_time : t -> float -> t

val map_value : (float -> float) -> t -> t

val crossing_pair : t -> rising:bool -> low_frac:float -> high_frac:float
  -> v_lo:float -> v_hi:float -> (float * float) option
(** For a rising output, [crossing_pair w ~rising:true ~low_frac:0.1
    ~high_frac:0.9 ~v_lo ~v_hi] returns the (10 %, 90 %) crossing times, i.e.
    the pair used to define transition times; for a falling output the 90 %
    crossing comes first.  [None] when either crossing is absent. *)
