type t = { times : float array; values : float array }

let of_points pts =
  match pts with
  | [] -> invalid_arg "Pwl.of_points: empty"
  | _ ->
    let times = Array.of_list (List.map fst pts) in
    let values = Array.of_list (List.map snd pts) in
    for i = 1 to Array.length times - 1 do
      if times.(i) <= times.(i - 1) then
        invalid_arg "Pwl.of_points: times must be strictly increasing"
    done;
    { times; values }

let constant v = { times = [| 0. |]; values = [| v |] }

let points w =
  Array.to_list (Array.mapi (fun i t -> (t, w.values.(i))) w.times)

let n w = Array.length w.times
let start_time w = w.times.(0)
let end_time w = w.times.(n w - 1)
let start_value w = w.values.(0)
let end_value w = w.values.(n w - 1)

let value_at w t =
  let m = n w in
  if t <= w.times.(0) then w.values.(0)
  else if t >= w.times.(m - 1) then w.values.(m - 1)
  else begin
    (* binary search for the segment containing t *)
    let lo = ref 0 and hi = ref (m - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if w.times.(mid) <= t then lo := mid else hi := mid
    done;
    let t0 = w.times.(!lo) and t1 = w.times.(!hi) in
    let v0 = w.values.(!lo) and v1 = w.values.(!hi) in
    v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
  end

let rising_ramp ~t0 ~t_transition ~v_lo ~v_hi =
  if t_transition <= 0. then invalid_arg "Pwl.rising_ramp: t_transition <= 0";
  let full = t_transition /. 0.8 in
  of_points [ (t0, v_lo); (t0 +. full, v_hi) ]

let falling_ramp ~t0 ~t_transition ~v_lo ~v_hi =
  if t_transition <= 0. then invalid_arg "Pwl.falling_ramp: t_transition <= 0";
  let full = t_transition /. 0.8 in
  of_points [ (t0, v_hi); (t0 +. full, v_lo) ]

let segment_crossing t0 v0 t1 v1 ~rising level =
  let crosses =
    if rising then v0 <= level && v1 >= level && v1 > v0
    else v0 >= level && v1 <= level && v1 < v0
  in
  if not crosses then None
  else if v1 = v0 then Some t0
  else Some (t0 +. ((level -. v0) *. (t1 -. t0) /. (v1 -. v0)))

let first_crossing w ?after ~rising level =
  let after = match after with Some a -> a | None -> start_time w in
  let m = n w in
  let rec loop i =
    if i >= m - 1 then None
    else begin
      let t0 = w.times.(i) and t1 = w.times.(i + 1) in
      if t1 < after then loop (i + 1)
      else begin
        match
          segment_crossing t0 w.values.(i) t1 w.values.(i + 1) ~rising level
        with
        | Some tc when tc >= after -> Some tc
        | Some _ | None -> loop (i + 1)
      end
    end
  in
  loop 0

let last_crossing w ~rising level =
  let m = n w in
  let rec loop i best =
    if i >= m - 1 then best
    else begin
      let cand =
        segment_crossing w.times.(i) w.values.(i) w.times.(i + 1)
          w.values.(i + 1) ~rising level
      in
      let best = match cand with Some _ -> cand | None -> best in
      loop (i + 1) best
    end
  in
  loop 0 None

let shift_time w d =
  { w with times = Array.map (fun t -> t +. d) w.times }

let map_value f w = { w with values = Array.map f w.values }

let crossing_pair w ~rising ~low_frac ~high_frac ~v_lo ~v_hi =
  let span = v_hi -. v_lo in
  let level_low = v_lo +. (low_frac *. span) in
  let level_high = v_lo +. (high_frac *. span) in
  if rising then begin
    match first_crossing w ~rising:true level_low with
    | None -> None
    | Some t_low -> (
      match first_crossing w ~after:t_low ~rising:true level_high with
      | None -> None
      | Some t_high -> Some (t_low, t_high))
  end
  else begin
    match first_crossing w ~rising:false level_high with
    | None -> None
    | Some t_high -> (
      match first_crossing w ~after:t_high ~rising:false level_low with
      | None -> None
      | Some t_low -> Some (t_high, t_low))
  end
