(** Small descriptive-statistics helpers for error reporting. *)

val mean : float list -> float
(** 0 for the empty list. *)

val rms : float list -> float
val max_abs : float list -> float
val min_max : float list -> (float * float) option

val quantile : float -> float list -> float
(** [quantile q xs] is the [q]-quantile of [xs] (linear interpolation
    between order statistics; [q = 0] minimum, [0.5] median, [1] maximum).
    @raise Invalid_argument on an empty list or [q] outside [0, 1]. *)

val quantiles : float list -> float list -> (float * float) list
(** [(q, quantile q xs)] for each requested [q], sorting [xs] once.
    @raise Invalid_argument on an empty list or any [q] outside [0, 1]. *)

val mean_abs_pct_error : reference:float list -> float list -> float
(** Mean of |model − reference| / |reference| over positions where the
    reference is non-zero, in percent.  Lists must have equal length. *)

val max_abs_pct_error : reference:float list -> float list -> float

val histogram :
  ?lo:float -> ?hi:float -> bins:int -> float list -> (float * float * int) list
(** [(lo, hi, count)] rows.  By default the range is the data span and
    empty input yields [].  [?lo]/[?hi] pin either end of the range
    instead, making the bin edges data-independent so histograms over
    different sample sets (telemetry shards from different lanes) merge
    by adding counts bin-by-bin; out-of-range samples land in the edge
    bins.  With both ends pinned, empty input yields [bins] zero-count
    rows.  @raise Invalid_argument on [bins <= 0] or [hi <= lo]. *)
