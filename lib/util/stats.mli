(** Small descriptive-statistics helpers for error reporting. *)

val mean : float list -> float
(** 0 for the empty list. *)

val rms : float list -> float
val max_abs : float list -> float
val min_max : float list -> (float * float) option

val mean_abs_pct_error : reference:float list -> float list -> float
(** Mean of |model − reference| / |reference| over positions where the
    reference is non-zero, in percent.  Lists must have equal length. *)

val max_abs_pct_error : reference:float list -> float list -> float

val histogram : bins:int -> float list -> (float * float * int) list
(** [(lo, hi, count)] rows covering the data span; empty input → []. *)
