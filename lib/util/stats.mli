(** Small descriptive-statistics helpers for error reporting. *)

val mean : float list -> float
(** 0 for the empty list. *)

val rms : float list -> float
val max_abs : float list -> float
val min_max : float list -> (float * float) option

val mean_abs_pct_error : reference:float list -> float list -> float
(** Mean of |model − reference| / |reference| over positions where the
    reference is non-zero, in percent.  Lists must have equal length. *)

val max_abs_pct_error : reference:float list -> float list -> float

val histogram :
  ?lo:float -> ?hi:float -> bins:int -> float list -> (float * float * int) list
(** [(lo, hi, count)] rows.  By default the range is the data span and
    empty input yields [].  [?lo]/[?hi] pin either end of the range
    instead, making the bin edges data-independent so histograms over
    different sample sets (telemetry shards from different lanes) merge
    by adding counts bin-by-bin; out-of-range samples land in the edge
    bins.  With both ends pinned, empty input yields [bins] zero-count
    rows.  @raise Invalid_argument on [bins <= 0] or [hi <= lo]. *)
