type align = Left | Right

type row = Cells of string list | Separator

type t = { header : string list; mutable rows : row list }

let create ~header = { header; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Texttab.add_row: arity mismatch with header";
  t.rows <- Cells cells :: t.rows

let add_row_f ?(prec = 4) t label values =
  add_row t (label :: List.map (fun v -> Printf.sprintf "%.*f" prec v) values)

let add_separator t = t.rows <- Separator :: t.rows

let render ?align t =
  let rows = List.rev t.rows in
  let ncols = List.length t.header in
  let align =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ -> invalid_arg "Texttab.render: align arity mismatch"
    | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.of_list (List.map String.length t.header) in
  List.iter
    (function
      | Separator -> ()
      | Cells cs ->
        List.iteri
          (fun i c -> widths.(i) <- max widths.(i) (String.length c))
          cs)
    rows;
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s
    else begin
      match List.nth align i with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
    end
  in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let rule =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let body =
    List.map
      (function Separator -> rule | Cells cs -> line cs)
      rows
  in
  String.concat "\n" ((line t.header :: rule :: body))

let print ?align t = print_endline (render ?align t)
