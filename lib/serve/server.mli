(** The timing server: dispatch over a {!Ssd_sta.Session} manager,
    line-framed transports, and a replayable request log.

    {2 Dispatch}

    {!dispatch_batch} is the deterministic core: it takes the raw
    frames of one batch in arrival order and returns one response line
    per frame, in the same order.  Within a batch, runs of consecutive
    per-session operations ([edit], [checkpoint], [revert], [commit],
    [query], [corners], [mc]) are grouped by session and the groups
    execute concurrently on the manager's domain pool — per-session
    order is preserved, and since sessions share no mutable state the
    responses are bit-identical for any lane count.  Lifecycle
    operations ([open], [close], [stats], [ping], [shutdown]) act as
    barriers inside the batch.

    {2 Admission control}

    [max_sessions] bounds open sessions, [max_frame_bytes] rejects
    oversized frames before parsing, and [max_batch_requests] /
    [max_batch_bytes] cap how much a transport pulls in flight per
    batch.

    {2 Record / replay}

    With [record] set, every (request, response) pair is appended to
    the log as one JSON line [{"req": "...", "resp": "..."}].
    {!replay} feeds a log back through a fresh server; with
    [check = true] every replayed response must be byte-identical to
    the recorded one — the serve-level image of [ssd eco --check].
    The only exemption is [stats] (wall-clock timers are not
    replayable); there only the ok/error status is compared. *)

type config = {
  sv_library : Ssd_cell.Charlib.t;
  sv_engine_opts : Ssd_sta.Run_opts.t;
      (** template for per-session engines (its [obs] is replaced by
          each session's private sink) *)
  sv_jobs : int;  (** lanes of the cross-session batch pool *)
  sv_max_sessions : int;
  sv_max_frame_bytes : int;
  sv_max_batch_requests : int;
  sv_max_batch_bytes : int;
  sv_record : string option;  (** request-log path *)
  sv_obs : Ssd_obs.Obs.t;  (** server-global sink ([serve.*] metrics) *)
}

val default_config : library:Ssd_cell.Charlib.t -> config
(** 64 sessions, 1 MiB frames, 256-request / 4 MiB batches, 1 job, no
    record, disabled telemetry. *)

type t

val create : config -> t
(** Opens (truncates) the record file when configured.
    @raise Sys_error when the record path cannot be opened. *)

val close : t -> unit
(** Close every session, the batch pool and the record log.
    Idempotent. *)

val sessions : t -> Ssd_sta.Session.t

val shutting_down : t -> bool
(** Set once a [shutdown] request was served; transports stop reading
    after the current batch. *)

val dispatch : t -> string -> string
(** One frame in, one response line out (no trailing newline).  Never
    raises: every failure maps to an error envelope.  Appends to the
    record log when configured. *)

val dispatch_batch : t -> string list -> string list
(** The batched core (see above).  Appends to the record log when
    configured. *)

(** {2 Transports} *)

val serve_fd : t -> in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> unit
(** Line-framed serve loop over raw descriptors: blocks for the first
    frame, then drains whatever further frames are already readable
    (up to the batch caps) into one {!dispatch_batch}.  Returns on EOF
    or after a [shutdown] request. *)

val serve_stdio : t -> unit
(** {!serve_fd} over stdin/stdout — the test and bench transport. *)

val serve_tcp : ?host:string -> t -> port:int -> unit
(** Listen on [host] (default 127.0.0.1) : [port] ([0] picks a free
    port, printed on stdout) and serve accepted connections with
    {!serve_fd}, one client at a time; named sessions persist across
    connections.  Returns after a [shutdown] request. *)

(** {2 Replay} *)

val replay :
  t ->
  path:string ->
  check:bool ->
  (int * (int * string * string) list, string) result
(** Feed a recorded log through this server.  [Ok (n, mismatches)]:
    [n] requests replayed; with [check], [mismatches] lists
    [(line, expected, got)] response divergences (empty means the
    replay was bit-identical).  [Error] on an unreadable or malformed
    log. *)
