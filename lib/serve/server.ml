module Json = Ssd_util.Json
module Interval = Ssd_util.Interval
module Obs = Ssd_obs.Obs
module Delay_model = Ssd_core.Delay_model
module Netlist = Ssd_circuit.Netlist
module Benchmarks = Ssd_circuit.Benchmarks
module Bench_io = Ssd_circuit.Bench_io
module Generator = Ssd_circuit.Generator
module Decompose = Ssd_circuit.Decompose
module Corners = Ssd_cell.Corners
module Run_opts = Ssd_sta.Run_opts
module Engine = Ssd_sta.Engine
module Session = Ssd_sta.Session
module Sta = Ssd_sta.Sta
module Corner_sta = Ssd_sta.Corner_sta
module Path_report = Ssd_sta.Path_report
module P = Protocol

type config = {
  sv_library : Ssd_cell.Charlib.t;
  sv_engine_opts : Run_opts.t;
  sv_jobs : int;
  sv_max_sessions : int;
  sv_max_frame_bytes : int;
  sv_max_batch_requests : int;
  sv_max_batch_bytes : int;
  sv_record : string option;
  sv_obs : Obs.t;
}

let default_config ~library =
  {
    sv_library = library;
    sv_engine_opts = Run_opts.default;
    sv_jobs = 1;
    sv_max_sessions = 64;
    sv_max_frame_bytes = 1 lsl 20;
    sv_max_batch_requests = 256;
    sv_max_batch_bytes = 4 lsl 20;
    sv_record = None;
    sv_obs = Obs.disabled;
  }

type t = {
  cfg : config;
  st_sessions : Session.t;
  mutable st_shutdown : bool;
  mutable st_record : out_channel option;
  c_requests : Obs.counter;
  c_errors : Obs.counter;
  c_batches : Obs.counter;
  c_bytes_in : Obs.counter;
  c_bytes_out : Obs.counter;
  h_batch : Obs.histogram;
  tm_dispatch : Obs.timer;
}

let create cfg =
  let sessions =
    Session.create ~max_sessions:cfg.sv_max_sessions ~jobs:cfg.sv_jobs
      ~opts:cfg.sv_engine_opts ~library:cfg.sv_library ()
  in
  let o = cfg.sv_obs in
  {
    cfg;
    st_sessions = sessions;
    st_shutdown = false;
    st_record = Option.map open_out cfg.sv_record;
    c_requests = Obs.counter o "serve.requests";
    c_errors = Obs.counter o "serve.errors";
    c_batches = Obs.counter o "serve.batches";
    c_bytes_in = Obs.counter o "serve.bytes_in";
    c_bytes_out = Obs.counter o "serve.bytes_out";
    h_batch = Obs.histogram o "serve.batch_size";
    tm_dispatch = Obs.timer o "serve.dispatch";
  }

let close t =
  Session.close_all t.st_sessions;
  match t.st_record with
  | Some oc ->
    close_out oc;
    t.st_record <- None
  | None -> ()

let sessions t = t.st_sessions
let shutting_down t = t.st_shutdown

(* ------------------------------------------------------------------ *)
(* Response helpers                                                    *)

let error t ~id code msg =
  Obs.incr t.c_errors;
  P.error_json ~id code msg

let num f = Json.Num f
let int i = Json.Num (float_of_int i)
let iv_json iv = Json.List [ num (Interval.lo iv); num (Interval.hi iv) ]

let win_json (w : Ssd_core.Types.win) =
  Json.Obj [ ("arr", iv_json w.Ssd_core.Types.w_arr);
             ("tt", iv_json w.Ssd_core.Types.w_tt) ]

let member_int_default name default body =
  Option.value ~default (Json.member_int name body)

(* ------------------------------------------------------------------ *)
(* Per-session (engine) operations                                     *)

let engine_ops =
  [ "edit"; "checkpoint"; "revert"; "commit"; "query"; "corners"; "mc" ]

let is_engine_op op = List.mem op engine_ops

let op_edit t s (req : P.request) =
  let id = req.rq_id in
  match Json.member "edits" req.rq_body with
  | Some (Json.List (_ :: _ as items)) -> (
    let nl = Session.with_session s Engine.netlist in
    let rec decode k acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> (
        match Engine.edit_of_json nl j with
        | Ok e -> decode (k + 1) (e :: acc) rest
        | Error m -> Error (Printf.sprintf "edit %d: %s" k m))
    in
    match decode 0 [] items with
    | Error m -> error t ~id P.Bad_edit m
    | Ok edits ->
      Session.with_session s (fun eng ->
          (* transactional: an unregistered mark, so a failed batch rolls
             back without burning a wire-visible checkpoint id *)
          let cp = Engine.checkpoint eng in
          match List.iter (Engine.apply eng) edits with
          | () ->
            P.ok_json ~id
              (Json.Obj
                 [ ("applied", int (List.length edits));
                   ("depth", int (Engine.depth eng));
                   ("po", iv_json (Engine.po_window eng)) ])
          | exception e ->
            Engine.revert eng cp;
            let msg =
              match e with
              | Invalid_argument m -> m
              | e -> Printexc.to_string e
            in
            error t ~id P.Bad_edit ("batch rolled back: " ^ msg)))
  | Some _ -> error t ~id P.Bad_params "\"edits\" must be a non-empty array"
  | None -> error t ~id P.Bad_params "request carries no \"edits\" array"

let op_revert t s (req : P.request) =
  let id = req.rq_id in
  match Json.member_int "checkpoint" req.rq_body with
  | None -> error t ~id P.Bad_params "request carries no integer \"checkpoint\""
  | Some cp -> (
    match Session.revert s cp with
    | Error m -> error t ~id P.Bad_checkpoint m
    | Ok () ->
      P.ok_json ~id
        (Json.Obj
           [ ("depth", int (Session.depth s));
             ("po", iv_json (Session.with_session s Engine.po_window)) ]))

let op_query t s (req : P.request) =
  let id = req.rq_id in
  let body = req.rq_body in
  match Option.value ~default:"po_window" (Json.member_string "what" body) with
  | "po_window" ->
    Session.with_session s (fun eng ->
        P.ok_json ~id
          (Json.Obj
             [ ("po", iv_json (Engine.po_window eng));
               ("min", num (Engine.min_delay eng));
               ("max", num (Engine.max_delay eng)) ]))
  | "po_delays" ->
    Session.with_session s (fun eng ->
        let nl = Engine.netlist eng in
        let entry po =
          let lt = Engine.timing eng po in
          Json.Obj
            [ ("signal", Json.Str (Netlist.signal_name nl po));
              ("rise", win_json lt.Sta.rise);
              ("fall", win_json lt.Sta.fall) ]
        in
        P.ok_json ~id
          (Json.Obj
             [ ("pos", Json.List (List.map entry (Netlist.outputs nl))) ]))
  | "timing" -> (
    match Json.member_string "signal" body with
    | None -> error t ~id P.Bad_params "query \"timing\" needs a \"signal\""
    | Some sig_name ->
      Session.with_session s (fun eng ->
          let nl = Engine.netlist eng in
          match Netlist.find nl sig_name with
          | None ->
            error t ~id P.Unknown_signal
              (Printf.sprintf "no signal %S" sig_name)
          | Some node ->
            let lt = Engine.timing eng node in
            P.ok_json ~id
              (Json.Obj
                 [ ("signal", Json.Str sig_name);
                   ("rise", win_json lt.Sta.rise);
                   ("fall", win_json lt.Sta.fall) ])))
  | "path" -> (
    let k = member_int_default "k" 1 body in
    let dir = Option.value ~default:"max" (Json.member_string "dir" body) in
    if k < 1 then error t ~id P.Bad_params "\"k\" must be >= 1"
    else
      match dir with
      | "max" | "min" ->
        Session.with_session s (fun eng ->
            let sta = Engine.reanalyze eng in
            let nl = Engine.netlist eng in
            let paths =
              if dir = "max" then Path_report.critical_paths sta ~k
              else Path_report.min_paths sta ~k
            in
            let stage_json (st : Path_report.stage) =
              Json.Obj
                [ ("signal", Json.Str (Netlist.signal_name nl st.node));
                  ( "transition",
                    Json.Str
                      (match st.s_transition with
                      | Path_report.Rise -> "rise"
                      | Path_report.Fall -> "fall") );
                  ("at", num st.at);
                  ("simultaneous", Json.Bool st.simultaneous) ]
            in
            let path_json (p : Path_report.path) =
              Json.Obj
                [ ("endpoint", Json.Str (Netlist.signal_name nl p.endpoint));
                  ("delay", num p.p_delay);
                  ("stages", Json.List (List.map stage_json p.stages)) ]
            in
            P.ok_json ~id
              (Json.Obj [ ("paths", Json.List (List.map path_json paths)) ]))
      | d ->
        error t ~id P.Bad_params
          (Printf.sprintf "\"dir\" must be \"max\" or \"min\", not %S" d))
  | what -> error t ~id P.Bad_params (Printf.sprintf "unknown query %S" what)

let op_corners t s (req : P.request) =
  let id = req.rq_id in
  let k = member_int_default "corners" 4 req.rq_body in
  if k < 2 then error t ~id P.Bad_params "\"corners\" must be >= 2"
  else
    Session.with_session s (fun eng ->
        let nl = Engine.edited_netlist eng in
        let specs = Corners.default_specs k in
        let table = Corners.build ~specs t.cfg.sv_library in
        let opts =
          Run_opts.(
            t.cfg.sv_engine_opts |> with_corners k
            |> with_obs (Session.obs s))
        in
        let ct = Corner_sta.analyze ~opts ~table nl in
        let entry c (spec : Corners.spec) =
          Json.Obj
            [ ("corner", Json.Str spec.Corners.c_name);
              ("po", iv_json (Corner_sta.po_window ct ~corner:c));
              ("max", num (Corner_sta.max_delay ct ~corner:c)) ]
        in
        P.ok_json ~id
          (Json.Obj
             [ ("corners", int k);
               ("results", Json.List (List.mapi entry specs)) ]))

let mc_quantiles = [ 0.; 0.05; 0.5; 0.95; 1.0 ]

let op_mc t s (req : P.request) =
  let id = req.rq_id in
  let body = req.rq_body in
  let samples = member_int_default "samples" 64 body in
  let seed = member_int_default "seed" 7 body in
  let batch =
    member_int_default "batch" t.cfg.sv_engine_opts.Run_opts.mc_batch body
  in
  if samples < 1 then error t ~id P.Bad_params "\"samples\" must be >= 1"
  else if batch < 1 then error t ~id P.Bad_params "\"batch\" must be >= 1"
  else
    Session.with_session s (fun eng ->
        let nl = Engine.edited_netlist eng in
        let opts =
          Run_opts.(
            t.cfg.sv_engine_opts |> with_mc_batch batch
            |> with_obs (Session.obs s))
        in
        let r =
          Corner_sta.monte_carlo ~opts ~samples ~seed:(Int64.of_int seed)
            ~library:t.cfg.sv_library nl
        in
        let qj l =
          Json.List (List.map (fun (q, v) -> Json.List [ num q; num v ]) l)
        in
        let poq = Corner_sta.mc_po_quantiles r mc_quantiles in
        let po_entry i qs =
          Json.Obj
            [ ( "signal",
                Json.Str
                  (Netlist.signal_name nl r.Corner_sta.mc_pos.(i)) );
              ("q", qj qs) ]
        in
        P.ok_json ~id
          (Json.Obj
             [ ("samples", int samples);
               ("seed", int seed);
               ("max", qj (Corner_sta.mc_max_quantiles r mc_quantiles));
               ( "pos",
                 Json.List (Array.to_list (Array.mapi po_entry poq)) ) ]))

let handle_engine t s (req : P.request) =
  let id = req.rq_id in
  try
    match req.rq_op with
    | "edit" -> op_edit t s req
    | "checkpoint" ->
      P.ok_json ~id
        (Json.Obj [ ("checkpoint", int (Session.checkpoint s)) ])
    | "revert" -> op_revert t s req
    | "commit" ->
      Session.commit s;
      P.ok_json ~id (Json.Obj [ ("depth", int (Session.depth s)) ])
    | "query" -> op_query t s req
    | "corners" -> op_corners t s req
    | "mc" -> op_mc t s req
    | op -> error t ~id P.Unknown_op (Printf.sprintf "unknown op %S" op)
  with
  | Sta.Unsupported_gate m -> error t ~id P.Engine_error ("unsupported gate: " ^ m)
  | Invalid_argument m -> error t ~id P.Bad_params m
  | e -> error t ~id P.Engine_error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Lifecycle (barrier) operations                                      *)

let load_circuit body =
  match (Json.member_string "circuit" body, Json.member "gen" body) with
  | Some _, Some _ ->
    Error (P.Bad_params, "give either \"circuit\" or \"gen\", not both")
  | None, None ->
    Error (P.Bad_params, "request carries neither \"circuit\" nor \"gen\"")
  | Some spec, None -> (
    match Benchmarks.by_name spec with
    | Some nl -> Ok nl
    | None ->
      if Sys.file_exists spec then (
        try Ok (Bench_io.parse_file spec) with
        | Failure m | Invalid_argument m | Sys_error m -> Error (P.Bad_params, m))
      else
        Error
          ( P.Bad_params,
            Printf.sprintf "unknown circuit %S (not a benchmark name or a file)"
              spec ))
  | None, Some g -> (
    match Json.member_int "gates" g with
    | None -> Error (P.Bad_params, "\"gen\" needs an integer \"gates\"")
    | Some gates -> (
      let gi name default = member_int_default name default g in
      let p =
        {
          Generator.default_params with
          g_name = Option.value ~default:"synth" (Json.member_string "name" g);
          n_inputs = gi "inputs" 16;
          n_outputs = gi "outputs" 8;
          n_gates = gates;
          seed = Int64.of_int (gi "seed" 1);
        }
      in
      try Ok (Generator.generate p)
      with Invalid_argument m -> Error (P.Bad_params, m)))

let op_open t (req : P.request) =
  let id = req.rq_id in
  let body = req.rq_body in
  match Json.member_string "session" body with
  | None -> error t ~id P.Bad_request "request carries no \"session\" string"
  | Some name -> (
    match load_circuit body with
    | Error (c, m) -> error t ~id c m
    | Ok nl -> (
      let model =
        match Json.member_string "model" body with
        | None -> Ok Delay_model.proposed
        | Some m -> (
          match Delay_model.find m with
          | Some dm -> Ok dm
          | None ->
            Error
              (Printf.sprintf "unknown delay model %S (know: %s)" m
                 (String.concat ", "
                    (List.map
                       (fun (dm : Delay_model.t) -> dm.Delay_model.name)
                       Delay_model.all))))
      in
      match model with
      | Error m -> error t ~id P.Bad_params m
      | Ok model -> (
        let nl = Decompose.to_primitive nl in
        match Session.open_session t.st_sessions ~name ~model nl with
        | Error (Session.Duplicate_session _ as e) ->
          error t ~id P.Session_exists (Session.error_message e)
        | Error (Session.Too_many_sessions _ as e) ->
          error t ~id P.Too_many_sessions (Session.error_message e)
        | Error (Session.Unknown_session _ as e) ->
          error t ~id P.Unknown_session (Session.error_message e)
        | Ok s ->
          Session.with_session s (fun eng ->
              let nl = Engine.netlist eng in
              P.ok_json ~id
                (Json.Obj
                   [ ("session", Json.Str name);
                     ("nodes", int (Netlist.size nl));
                     ("gates", int (Netlist.gate_count nl));
                     ("pis", int (Netlist.pi_count nl));
                     ("pos", int (List.length (Netlist.outputs nl)));
                     ("levels", int (Netlist.depth nl));
                     ("po", iv_json (Engine.po_window eng)) ])))))

let op_stats t (req : P.request) =
  let id = req.rq_id in
  match Json.member_string "session" req.rq_body with
  | Some name -> (
    match Session.find t.st_sessions name with
    | Error e -> error t ~id P.Unknown_session (Session.error_message e)
    | Ok s ->
      P.ok_json ~id
        (Json.Obj
           [ ("session", Json.Str name);
             ("stats", Obs.snapshot_to_json (Obs.snapshot (Session.obs s)))
           ]))
  | None ->
    let names = Session.names t.st_sessions in
    let per =
      List.filter_map
        (fun name ->
          match Session.find t.st_sessions name with
          | Ok s ->
            Some
              (Obs.prefix_snapshot ("session." ^ name)
                 (Obs.snapshot (Session.obs s)))
          | Error _ -> None)
        names
    in
    let merged = Obs.merge_snapshots (Obs.snapshot t.cfg.sv_obs :: per) in
    P.ok_json ~id
      (Json.Obj
         [ ("sessions", Json.List (List.map (fun n -> Json.Str n) names));
           ("stats", Obs.snapshot_to_json merged) ])

let handle_control t (req : P.request) =
  let id = req.rq_id in
  try
    match req.rq_op with
    | "open" -> op_open t req
    | "close" -> (
      match Json.member_string "session" req.rq_body with
      | None ->
        error t ~id P.Bad_request "request carries no \"session\" string"
      | Some name -> (
        match Session.close_session t.st_sessions name with
        | Ok () -> P.ok_json ~id (Json.Obj [ ("closed", Json.Str name) ])
        | Error e -> error t ~id P.Unknown_session (Session.error_message e)))
    | "stats" -> op_stats t req
    | "ping" -> P.ok_json ~id (Json.Obj [ ("pong", Json.Bool true) ])
    | "shutdown" ->
      t.st_shutdown <- true;
      P.ok_json ~id (Json.Obj [ ("stopping", Json.Bool true) ])
    | op -> error t ~id P.Unknown_op (Printf.sprintf "unknown op %S" op)
  with
  | Sta.Unsupported_gate m ->
    error t ~id P.Engine_error ("unsupported gate: " ^ m)
  | Invalid_argument m -> error t ~id P.Bad_params m
  | e -> error t ~id P.Engine_error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Batched dispatch                                                    *)

(* one thunk per distinct session; items stay in arrival order *)
let run_engine_ops t (out : string array) items =
  let groups : (string, (int * P.request) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let order = ref [] in
  List.iter
    (fun ((_, req) as item) ->
      let name =
        Option.get (Json.member_string "session" req.P.rq_body)
      in
      match Hashtbl.find_opt groups name with
      | Some l -> l := item :: !l
      | None ->
        Hashtbl.add groups name (ref [ item ]);
        order := name :: !order)
    items;
  let thunk name () =
    let items = List.rev !(Hashtbl.find groups name) in
    match Session.find t.st_sessions name with
    | Error e ->
      List.iter
        (fun (i, (req : P.request)) ->
          out.(i) <-
            P.render
              (error t ~id:req.rq_id P.Unknown_session
                 (Session.error_message e)))
        items
    | Ok s ->
      List.iter
        (fun (i, req) -> out.(i) <- P.render (handle_engine t s req))
        items
  in
  Session.run_batch t.st_sessions
    (Array.of_list (List.rev_map (fun n -> thunk n) !order))

let record_pairs t frames resps =
  match t.st_record with
  | None -> ()
  | Some oc ->
    List.iter2
      (fun req resp ->
        output_string oc
          (Json.to_string
             (Json.Obj [ ("req", Json.Str req); ("resp", Json.Str resp) ]));
        output_char oc '\n')
      frames resps;
    flush oc

let dispatch_batch t frames =
  Obs.incr t.c_batches;
  Obs.observe t.h_batch (float_of_int (List.length frames));
  Obs.time t.tm_dispatch (fun () ->
      let fr = Array.of_list frames in
      let n = Array.length fr in
      (* arrivals are counted before dispatch so a stats request inside
         the batch sees the batch it rode in on *)
      Obs.add t.c_requests n;
      List.iter (fun f -> Obs.add t.c_bytes_in (String.length f)) frames;
      let out = Array.make n "" in
      let pending = ref [] in
      let flush_pending () =
        match List.rev !pending with
        | [] -> ()
        | items ->
          pending := [];
          run_engine_ops t out items
      in
      Array.iteri
        (fun i frame ->
          match P.parse_request ~max_bytes:t.cfg.sv_max_frame_bytes frame with
          | Error (id, c, m) -> out.(i) <- P.render (error t ~id c m)
          | Ok req ->
            if t.st_shutdown then
              out.(i) <-
                P.render
                  (error t ~id:req.rq_id P.Shutting_down
                     "server is shutting down")
            else if is_engine_op req.rq_op then
              match Json.member_string "session" req.rq_body with
              | None ->
                out.(i) <-
                  P.render
                    (error t ~id:req.rq_id P.Bad_request
                       "request carries no \"session\" string")
              | Some _ -> pending := (i, req) :: !pending
            else begin
              (* lifecycle ops are barriers: everything queued so far
                 must land before the session table changes *)
              flush_pending ();
              out.(i) <- P.render (handle_control t req)
            end)
        fr;
      flush_pending ();
      let resps = Array.to_list out in
      List.iter (fun r -> Obs.add t.c_bytes_out (String.length r + 1)) resps;
      record_pairs t frames resps;
      resps)

let dispatch t frame =
  match dispatch_batch t [ frame ] with
  | [ r ] -> r
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Line framing over raw descriptors                                   *)

type reader = {
  r_fd : Unix.file_descr;
  mutable r_pending : string;
  r_bytes : Bytes.t;
  mutable r_eof : bool;
}

let reader fd =
  { r_fd = fd; r_pending = ""; r_bytes = Bytes.create 65536; r_eof = false }

let read_more r ~block =
  if r.r_eof then false
  else
    let ready =
      block
      ||
      match Unix.select [ r.r_fd ] [] [] 0.0 with
      | [ _ ], _, _ -> true
      | _ -> false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not ready then false
    else
      match Unix.read r.r_fd r.r_bytes 0 (Bytes.length r.r_bytes) with
      | 0 ->
        r.r_eof <- true;
        false
      | n ->
        r.r_pending <- r.r_pending ^ Bytes.sub_string r.r_bytes 0 n;
        true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> not block

let rec take_line r ~block =
  match String.index_opt r.r_pending '\n' with
  | Some i ->
    let line = String.sub r.r_pending 0 i in
    r.r_pending <-
      String.sub r.r_pending (i + 1) (String.length r.r_pending - i - 1);
    let line =
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    Some line
  | None ->
    if read_more r ~block then take_line r ~block
    else if block && not r.r_eof then take_line r ~block
    else if r.r_eof && r.r_pending <> "" then begin
      let l = r.r_pending in
      r.r_pending <- "";
      Some l
    end
    else None

let read_batch t r =
  match take_line r ~block:true with
  | None -> None
  | Some first ->
    let acc = ref [ first ] in
    let bytes = ref (String.length first) in
    let count = ref 1 in
    let rec drain () =
      if
        !count < t.cfg.sv_max_batch_requests
        && !bytes < t.cfg.sv_max_batch_bytes
      then
        match take_line r ~block:false with
        | Some l ->
          acc := l :: !acc;
          bytes := !bytes + String.length l;
          incr count;
          drain ()
        | None -> ()
    in
    drain ();
    Some (List.rev !acc)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let serve_fd t ~in_fd ~out_fd =
  let r = reader in_fd in
  let rec loop () =
    if not t.st_shutdown then
      match read_batch t r with
      | None -> ()
      | Some frames ->
        let resps = dispatch_batch t frames in
        write_all out_fd (String.concat "" (List.map (fun x -> x ^ "\n") resps));
        loop ()
  in
  loop ()

let serve_stdio t = serve_fd t ~in_fd:Unix.stdin ~out_fd:Unix.stdout

let serve_tcp ?(host = "127.0.0.1") t ~port =
  let addr = Unix.inet_addr_of_string host in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (addr, port));
  Unix.listen sock 16;
  let actual =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  Printf.printf "serve: listening on %s:%d\n%!" host actual;
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      let rec accept_loop () =
        if not t.st_shutdown then (
          match Unix.accept sock with
          | client, _ ->
            Fun.protect
              ~finally:(fun () ->
                try Unix.close client with Unix.Unix_error _ -> ())
              (fun () -> serve_fd t ~in_fd:client ~out_fd:client);
            accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ())
      in
      accept_loop ())

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let response_status r =
  match Json.parse r with
  | Ok j -> Some (P.response_ok j, P.response_error_code j)
  | Error _ -> None

let replay t ~path ~check =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = ref 0 in
        let mismatches = ref [] in
        let lineno = ref 0 in
        let bad = ref None in
        (try
           while !bad = None do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match Json.parse line with
               | Error m ->
                 bad := Some (Printf.sprintf "line %d: %s" !lineno m)
               | Ok j -> (
                 match
                   (Json.member_string "req" j, Json.member_string "resp" j)
                 with
                 | Some req, Some expected ->
                   incr n;
                   let got = dispatch t req in
                   if check && got <> expected then begin
                     (* stats responses carry wall-clock timers; only
                        their ok/error status has to reproduce *)
                     let is_stats =
                       match
                         P.parse_request
                           ~max_bytes:t.cfg.sv_max_frame_bytes req
                       with
                       | Ok r -> r.P.rq_op = "stats"
                       | Error _ -> false
                     in
                     let lenient =
                       is_stats
                       && response_status got <> None
                       && response_status got = response_status expected
                     in
                     if not lenient then
                       mismatches := (!lineno, expected, got) :: !mismatches
                   end
                 | _ ->
                   bad :=
                     Some
                       (Printf.sprintf
                          "line %d: not a {\"req\": ..., \"resp\": ...} record"
                          !lineno))
           done
         with End_of_file -> ());
        match !bad with
        | Some m -> Error m
        | None -> Ok (!n, List.rev !mismatches))
