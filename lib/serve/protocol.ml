module Json = Ssd_util.Json

let version = 1

type error_code =
  | Bad_frame
  | Bad_version
  | Bad_request
  | Unknown_op
  | Bad_params
  | Unknown_session
  | Session_exists
  | Too_many_sessions
  | Frame_too_large
  | Unknown_signal
  | Bad_edit
  | Bad_checkpoint
  | Engine_error
  | Shutting_down

let codes =
  [
    (Bad_frame, "bad-frame");
    (Bad_version, "bad-version");
    (Bad_request, "bad-request");
    (Unknown_op, "unknown-op");
    (Bad_params, "bad-params");
    (Unknown_session, "unknown-session");
    (Session_exists, "session-exists");
    (Too_many_sessions, "too-many-sessions");
    (Frame_too_large, "frame-too-large");
    (Unknown_signal, "unknown-signal");
    (Bad_edit, "bad-edit");
    (Bad_checkpoint, "bad-checkpoint");
    (Engine_error, "engine-error");
    (Shutting_down, "shutting-down");
  ]

let code_string c = List.assoc c codes
let code_of_string s =
  List.find_map (fun (c, n) -> if n = s then Some c else None) codes

type request = { rq_id : Json.t; rq_op : string; rq_body : Json.t }

let parse_request ~max_bytes frame =
  if String.length frame > max_bytes then
    Error
      ( Json.Null,
        Frame_too_large,
        Printf.sprintf "frame is %d bytes, cap %d" (String.length frame)
          max_bytes )
  else
    match Json.parse frame with
    | Error msg -> Error (Json.Null, Bad_frame, msg)
    | Ok (Json.Obj _ as body) -> (
      let id = Option.value ~default:Json.Null (Json.member "id" body) in
      match Json.member "v" body with
      | None -> Error (id, Bad_version, "request carries no \"v\" field")
      | Some v when Json.int_value v <> Some version ->
        Error
          ( id,
            Bad_version,
            Printf.sprintf "unsupported protocol version %s (serve speaks %d)"
              (Json.to_string v) version )
      | Some _ -> (
        match Json.member_string "op" body with
        | Some op when op <> "" -> Ok { rq_id = id; rq_op = op; rq_body = body }
        | Some _ -> Error (id, Bad_request, "\"op\" is empty")
        | None -> Error (id, Bad_request, "request carries no \"op\" string")))
    | Ok _ -> Error (Json.Null, Bad_request, "request is not a JSON object")

(* fixed field order: v, id, then ok/error — byte-stable for replay *)
let ok_json ~id body =
  Json.Obj
    [ ("v", Json.Num (float_of_int version)); ("id", id); ("ok", body) ]

let error_json ~id code message =
  Json.Obj
    [
      ("v", Json.Num (float_of_int version));
      ("id", id);
      ( "error",
        Json.Obj
          [ ("code", Json.Str (code_string code));
            ("message", Json.Str message) ] );
    ]

let render = Json.to_string

let response_ok j = Json.member "ok" j <> None

let response_error_code j =
  Option.bind (Json.member "error" j) (Json.member_string "code")
