(** The serve wire protocol: versioned line-delimited JSON envelopes.

    {2 Framing}

    One request per line ([\n]-terminated UTF-8 JSON, no embedded
    newlines — {!Ssd_util.Json.to_string} never emits raw control
    characters), one response line per request, in request order.
    Frames larger than the server's admission cap are rejected with
    {!Frame_too_large} without being parsed.

    {2 Envelopes}

    Request: [{"v": 1, "id": <any>, "op": "<name>", ...params}].
    [v] must equal {!version}; [id] is echoed verbatim in the response
    (clients use it to correlate; it defaults to [null]).

    Response: [{"v": 1, "id": <echo>, "ok": {...}}] on success,
    [{"v": 1, "id": <echo>, "error": {"code": "<code>", "message":
    "..."}}] on failure.  Exactly one of [ok] / [error] is present.
    Responses are rendered with a fixed field order, so a replayed
    session reproduces them byte for byte. *)

val version : int
(** Current protocol version: 1. *)

(** Structured error codes, stable across releases (the [code] field
    of an error response). *)
type error_code =
  | Bad_frame  (** the line is not valid JSON *)
  | Bad_version  (** missing [v], or an unsupported version *)
  | Bad_request  (** envelope shape errors (no [op], non-object, ...) *)
  | Unknown_op
  | Bad_params  (** a parameter is missing, mistyped or out of range *)
  | Unknown_session
  | Session_exists
  | Too_many_sessions  (** admission control: session cap reached *)
  | Frame_too_large  (** admission control: in-flight byte cap *)
  | Unknown_signal
  | Bad_edit  (** an edit failed to decode or validate *)
  | Bad_checkpoint
  | Engine_error  (** the engine rejected an operation *)
  | Shutting_down

val code_string : error_code -> string
(** Stable kebab-case wire spelling, e.g. ["too-many-sessions"]. *)

val code_of_string : string -> error_code option

type request = {
  rq_id : Ssd_util.Json.t;  (** echoed verbatim; [Null] when absent *)
  rq_op : string;
  rq_body : Ssd_util.Json.t;  (** the whole request object *)
}

val parse_request :
  max_bytes:int ->
  string ->
  (request, Ssd_util.Json.t * error_code * string) result
(** Parse one frame: byte cap, JSON well-formedness, envelope shape
    and protocol version, in that order.  The [Error] triple carries
    the request id when the frame at least parsed to an object
    ([Null] otherwise) plus exactly what {!error_json} wants. *)

val ok_json : id:Ssd_util.Json.t -> Ssd_util.Json.t -> Ssd_util.Json.t
val error_json :
  id:Ssd_util.Json.t -> error_code -> string -> Ssd_util.Json.t

val render : Ssd_util.Json.t -> string
(** One response line (no trailing newline). *)

val response_ok : Ssd_util.Json.t -> bool
(** Whether a parsed response carries [ok] (vs [error]). *)

val response_error_code : Ssd_util.Json.t -> string option
(** The [error.code] of a parsed error response. *)
