let default_max_fanin = 4

(* Accumulating builder with fresh intermediate names.  Indices are
   assigned in emission order. *)
type builder = {
  mutable acc : (string * Netlist.node) list;  (* reversed *)
  mutable count : int;
  used : (string, unit) Hashtbl.t;
  mutable counter : int;
}

let add b name node =
  Hashtbl.replace b.used name ();
  b.acc <- (name, node) :: b.acc;
  b.count <- b.count + 1

let fresh b base =
  let rec try_name k =
    let cand = Printf.sprintf "%s$%d" base k in
    if Hashtbl.mem b.used cand then try_name (k + 1)
    else begin
      b.counter <- k + 1;
      cand
    end
  in
  try_name b.counter

let emit_fresh b base kind fanin =
  let idx = b.count in
  add b (fresh b base)
    (Netlist.Gate { kind; fanin = Array.of_list fanin });
  idx

(* The specification of a gate yet to be emitted (so the caller can attach
   the original signal name to the network's final node). *)
type spec = Gate.kind * int list

let emit_spec b base (kind, fanin) = emit_fresh b base kind fanin

(* NAND(xs) = NAND(AND(g1), AND(g2), …) for any grouping of xs, and dually
   for NOR, so a wide inverting gate reduces to a tree whose internal
   groups use the non-inverting composition (inverting gate + NOT). *)
let rec reduce_wide b base ~max_fanin ~kind inputs : spec =
  if List.length inputs <= max_fanin then (kind, inputs)
  else begin
    let rec split groups current count = function
      | [] ->
        let groups =
          if current = [] then groups else List.rev current :: groups
        in
        List.rev groups
      | x :: rest ->
        if count = max_fanin then
          split (List.rev current :: groups) [ x ] 1 rest
        else split groups (x :: current) (count + 1) rest
    in
    let groups = split [] [] 0 inputs in
    let reduced =
      List.map
        (function
          | [ single ] -> single
          | g ->
            let inv = emit_fresh b base kind g in
            emit_fresh b base Gate.Not [ inv ])
        groups
    in
    reduce_wide b base ~max_fanin ~kind reduced
  end

(* Classic 4-NAND XOR; returns the spec of the final NAND. *)
let xor2 b base a c : spec =
  let n1 = emit_fresh b base Gate.Nand [ a; c ] in
  let n2 = emit_fresh b base Gate.Nand [ a; n1 ] in
  let n3 = emit_fresh b base Gate.Nand [ c; n1 ] in
  (Gate.Nand, [ n2; n3 ])

let to_primitive ?(max_fanin = default_max_fanin) nl =
  if max_fanin < 2 then invalid_arg "Decompose.to_primitive: max_fanin < 2";
  let b = { acc = []; count = 0; used = Hashtbl.create 64; counter = 0 } in
  let mapping = Array.make (Netlist.size nl) (-1) in
  Array.iter
    (fun i ->
      let name = Netlist.signal_name nl i in
      match Netlist.node nl i with
      | Netlist.Pi ->
        mapping.(i) <- b.count;
        add b name Netlist.Pi
      | Netlist.Gate { kind; fanin } ->
        let ins = Array.to_list (Array.map (fun j -> mapping.(j)) fanin) in
        if ins = [] then invalid_arg "Decompose: gate with no inputs";
        let final : spec =
          match (kind, ins) with
          | (Gate.Not | Gate.Buf), [ a ] -> (
            match kind with
            | Gate.Not -> (Gate.Not, [ a ])
            | _ ->
              let inv = emit_fresh b name Gate.Not [ a ] in
              (Gate.Not, [ inv ]))
          | (Gate.Not | Gate.Buf), _ -> invalid_arg "Decompose: NOT/BUF arity"
          | (Gate.Nand | Gate.Nor), [ a ] -> (Gate.Not, [ a ])
          | Gate.Nand, _ -> reduce_wide b name ~max_fanin ~kind:Gate.Nand ins
          | Gate.Nor, _ -> reduce_wide b name ~max_fanin ~kind:Gate.Nor ins
          | (Gate.And | Gate.Or), [ a ] ->
            let inv = emit_fresh b name Gate.Not [ a ] in
            (Gate.Not, [ inv ])
          | Gate.And, _ ->
            let g =
              emit_spec b name (reduce_wide b name ~max_fanin ~kind:Gate.Nand ins)
            in
            (Gate.Not, [ g ])
          | Gate.Or, _ ->
            let g =
              emit_spec b name (reduce_wide b name ~max_fanin ~kind:Gate.Nor ins)
            in
            (Gate.Not, [ g ])
          | (Gate.Xor | Gate.Xnor), [ a ] -> (
            (* degenerate: single-input XOR is a buffer, XNOR an inverter *)
            match kind with
            | Gate.Xnor -> (Gate.Not, [ a ])
            | _ ->
              let inv = emit_fresh b name Gate.Not [ a ] in
              (Gate.Not, [ inv ]))
          | Gate.Xor, first :: rest ->
            let rec fold acc = function
              | [] -> assert false (* rest is non-empty *)
              | [ last ] -> xor2 b name acc last
              | x :: more -> fold (emit_spec b name (xor2 b name acc x)) more
            in
            fold first rest
          | Gate.Xnor, first :: rest ->
            let rec fold acc = function
              | [] -> acc
              | x :: more -> fold (emit_spec b name (xor2 b name acc x)) more
            in
            let x = fold first rest in
            (Gate.Not, [ x ])
          | (Gate.Xor | Gate.Xnor), [] -> assert false (* guarded above *)
        in
        let kind, fanin = final in
        mapping.(i) <- b.count;
        add b name (Netlist.Gate { kind; fanin = Array.of_list fanin }))
    (Netlist.topo_order nl);
  let signals = List.rev b.acc in
  let outputs = List.map (Netlist.signal_name nl) (Netlist.outputs nl) in
  Netlist.build ~name:(Netlist.name nl ^ ".prim") ~signals ~outputs

let is_primitive ?(max_fanin = default_max_fanin) nl =
  Netlist.fold_gates_topo nl ~init:true ~f:(fun acc _ kind fanin ->
      acc
      &&
      match kind with
      | Gate.Not -> true
      | Gate.Nand | Gate.Nor -> Array.length fanin <= max_fanin
      | Gate.And | Gate.Or | Gate.Xor | Gate.Xnor | Gate.Buf -> false)
