module Bitset = Ssd_util.Bitset

type node = Pi | Gate of { kind : Gate.kind; fanin : int array }

type cone = {
  cone_nodes : int array;
  cone_member : Bitset.t;
}

(* Structure-of-arrays storage: node kinds in one flat int array (-1 for
   a PI, else the dense {!Gate.to_int} tag) and the fan-in / fan-out /
   level adjacency in CSR offset+data pairs.  Hot paths (STA forward
   pass, ECO propagation, timing simulation) walk these contiguous
   arrays; the [node]/[fanout]/[levels] accessors materialize the seed
   representation on demand for cold callers. *)
type t = {
  nl_name : string;
  names : string array;
  by_name : (string, int) Hashtbl.t;
  kinds : int array;
  fanin_off : int array;   (* length n+1 *)
  fanin_dat : int array;
  fanout_off : int array;  (* length n+1 *)
  fanout_dat : int array;
  pis : int list;
  pos : int list;
  topo : int array;
  node_level : int array;
  level_off : int array;   (* length depth+2 *)
  level_dat : int array;   (* node ids grouped by level, topo order *)
  (* lazily materialized [levels] view; benign race: the view is
     immutable and equal across materializations, so a duplicate build
     only wastes one allocation *)
  mutable by_level_view : int array array option;
  cones : (int, cone) Hashtbl.t;
  cone_lock : Mutex.t;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let build ~name ~signals ~outputs =
  let n = List.length signals in
  if n = 0 then invalid "empty netlist";
  let by_name = Hashtbl.create (2 * n) in
  List.iteri
    (fun i (s, _) ->
      if Hashtbl.mem by_name s then invalid "duplicate signal %S" s;
      Hashtbl.replace by_name s i)
    signals;
  let names = Array.of_list (List.map fst signals) in
  let nodes = Array.make n Pi in
  List.iteri (fun i (_, nd) -> nodes.(i) <- nd) signals;
  (* validate fan-ins *)
  Array.iteri
    (fun i nd ->
      match nd with
      | Pi -> ()
      | Gate { kind; fanin } ->
        let arity = Array.length fanin in
        (match kind with
        | Gate.Not | Gate.Buf ->
          if arity <> 1 then
            invalid "%s: %s expects 1 input, got %d" names.(i)
              (Gate.to_string kind) arity
        | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
          if arity < 1 then invalid "%s: gate with no inputs" names.(i));
        Array.iter
          (fun j ->
            if j < 0 || j >= n then
              invalid "%s: fan-in id %d out of range" names.(i) j)
          fanin)
    nodes;
  let pis =
    List.filteri (fun i _ -> nodes.(i) = Pi) (List.init n Fun.id)
  in
  let pos =
    List.map
      (fun s ->
        match Hashtbl.find_opt by_name s with
        | Some i -> i
        | None -> invalid "output %S is not a declared signal" s)
      outputs
  in
  (* pack kinds and the fan-in CSR *)
  let kinds = Array.make n (-1) in
  let fanin_off = Array.make (n + 1) 0 in
  Array.iteri
    (fun i nd ->
      match nd with
      | Pi -> ()
      | Gate { kind; fanin } ->
        kinds.(i) <- Gate.to_int kind;
        fanin_off.(i + 1) <- Array.length fanin)
    nodes;
  for i = 0 to n - 1 do
    fanin_off.(i + 1) <- fanin_off.(i) + fanin_off.(i + 1)
  done;
  let fanin_dat = Array.make fanin_off.(n) 0 in
  Array.iteri
    (fun i nd ->
      match nd with
      | Pi -> ()
      | Gate { fanin; _ } ->
        Array.blit fanin 0 fanin_dat fanin_off.(i) (Array.length fanin))
    nodes;
  (* fan-out CSR: consumers of each node in increasing consumer order *)
  let fanout_off = Array.make (n + 1) 0 in
  Array.iter
    (fun j -> fanout_off.(j + 1) <- fanout_off.(j + 1) + 1)
    fanin_dat;
  for i = 0 to n - 1 do
    fanout_off.(i + 1) <- fanout_off.(i) + fanout_off.(i + 1)
  done;
  let fanout_dat = Array.make fanout_off.(n) 0 in
  let cursor = Array.make n 0 in
  for i = 0 to n - 1 do
    for p = fanin_off.(i) to fanin_off.(i + 1) - 1 do
      let j = fanin_dat.(p) in
      fanout_dat.(fanout_off.(j) + cursor.(j)) <- i;
      cursor.(j) <- cursor.(j) + 1
    done
  done;
  (* topological order by Kahn's algorithm; detects cycles *)
  let indeg = Array.make n 0 in
  for i = 0 to n - 1 do
    indeg.(i) <- fanin_off.(i + 1) - fanin_off.(i)
  done;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let topo = Array.make n (-1) in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    topo.(!count) <- i;
    incr count;
    for p = fanout_off.(i) to fanout_off.(i + 1) - 1 do
      let j = fanout_dat.(p) in
      indeg.(j) <- indeg.(j) - 1;
      if indeg.(j) = 0 then Queue.add j queue
    done
  done;
  if !count <> n then invalid "netlist %S contains a cycle" name;
  let node_level = Array.make n 0 in
  Array.iter
    (fun i ->
      if kinds.(i) >= 0 then begin
        let m = ref (-1) in
        for p = fanin_off.(i) to fanin_off.(i + 1) - 1 do
          m := max !m node_level.(fanin_dat.(p))
        done;
        node_level.(i) <- 1 + !m
      end)
    topo;
  (* level CSR: node ids grouped by level, each group in topological
     order (the walk below follows [topo]) *)
  let depth = Array.fold_left max 0 node_level in
  let level_off = Array.make (depth + 2) 0 in
  Array.iter (fun l -> level_off.(l + 1) <- level_off.(l + 1) + 1) node_level;
  for l = 0 to depth do
    level_off.(l + 1) <- level_off.(l) + level_off.(l + 1)
  done;
  let level_dat = Array.make n 0 in
  let fill = Array.make (depth + 1) 0 in
  Array.iter
    (fun i ->
      let l = node_level.(i) in
      level_dat.(level_off.(l) + fill.(l)) <- i;
      fill.(l) <- fill.(l) + 1)
    topo;
  { nl_name = name; names; by_name; kinds; fanin_off; fanin_dat;
    fanout_off; fanout_dat; pis; pos; topo; node_level; level_off;
    level_dat; by_level_view = None; cones = Hashtbl.create 16;
    cone_lock = Mutex.create () }

let name t = t.nl_name
let size t = Array.length t.kinds

let gate_count t =
  Array.fold_left (fun acc k -> if k >= 0 then acc + 1 else acc) 0 t.kinds

let pi_count t = List.length t.pis

(* ---- flat accessors (the hot-path API) ---- *)

let is_pi t i = t.kinds.(i) < 0
let gate_kind t i = Gate.of_int t.kinds.(i)
let fanin_count t i = t.fanin_off.(i + 1) - t.fanin_off.(i)
let fanin_nth t i p = t.fanin_dat.(t.fanin_off.(i) + p)

let iter_fanin t i ~f =
  for p = t.fanin_off.(i) to t.fanin_off.(i + 1) - 1 do
    f t.fanin_dat.(p)
  done

let fanout_count t i = t.fanout_off.(i + 1) - t.fanout_off.(i)
let fanout_nth t i p = t.fanout_dat.(t.fanout_off.(i) + p)

let iter_fanout t i ~f =
  for p = t.fanout_off.(i) to t.fanout_off.(i + 1) - 1 do
    f t.fanout_dat.(p)
  done

let level_count t = Array.length t.level_off - 1
let level_width t l = t.level_off.(l + 1) - t.level_off.(l)
let level_node t l k = t.level_dat.(t.level_off.(l) + k)

(* ---- seed-representation views (cold callers) ---- *)

let node t i =
  if t.kinds.(i) < 0 then Pi
  else
    Gate
      {
        kind = Gate.of_int t.kinds.(i);
        fanin = Array.sub t.fanin_dat t.fanin_off.(i) (fanin_count t i);
      }

let signal_name t i = t.names.(i)
let find t s = Hashtbl.find_opt t.by_name s
let inputs t = t.pis
let outputs t = t.pos
let fanout t i = Array.sub t.fanout_dat t.fanout_off.(i) (fanout_count t i)
let load_of t i = max 1 (fanout_count t i)
let topo_order t = t.topo
let level t i = t.node_level.(i)

let levels t =
  match t.by_level_view with
  | Some v -> v
  | None ->
    let v =
      Array.init (level_count t) (fun l ->
          Array.sub t.level_dat t.level_off.(l) (level_width t l))
    in
    t.by_level_view <- Some v;
    v

let depth t = Array.length t.level_off - 2

let fold_gates_topo t ~init ~f =
  Array.fold_left
    (fun acc i ->
      match node t i with
      | Pi -> acc
      | Gate { kind; fanin } -> f acc i kind fanin)
    init t.topo

let iter_gates_topo t ~f =
  Array.iter
    (fun i ->
      match node t i with
      | Pi -> ()
      | Gate { kind; fanin } -> f i kind fanin)
    t.topo

let transitive_closure iter_next t i =
  let n = size t in
  let seen = Array.make n false in
  let stack = ref [ i ] in
  (* iterative DFS: the recursion depth would otherwise scale with the
     longest path, which overflows the stack on million-gate chains *)
  seen.(i) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | j :: rest ->
      stack := rest;
      iter_next t j ~f:(fun k ->
          if not seen.(k) then begin
            seen.(k) <- true;
            stack := k :: !stack
          end)
  done;
  seen.(i) <- false;
  let order = ref [] in
  for p = Array.length t.topo - 1 downto 0 do
    let j = t.topo.(p) in
    if seen.(j) then order := j :: !order
  done;
  !order

let transitive_fanin t i = transitive_closure iter_fanin t i
let transitive_fanout t i = transitive_closure iter_fanout t i

let compute_cone t i =
  let member = Bitset.create (size t) in
  let stack = ref [ i ] in
  Bitset.set member i;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | j :: rest ->
      stack := rest;
      iter_fanout t j ~f:(fun k ->
          if not (Bitset.get member k) then begin
            Bitset.set member k;
            stack := k :: !stack
          end)
  done;
  let count = Bitset.cardinal member in
  let nodes = Array.make count (-1) in
  let fill = ref 0 in
  Array.iter
    (fun j ->
      if Bitset.get member j then begin
        nodes.(!fill) <- j;
        incr fill
      end)
    t.topo;
  { cone_nodes = nodes; cone_member = member }

let in_cone cone j = Bitset.get cone.cone_member j

let fanout_cone t i =
  if i < 0 || i >= size t then
    invalid_arg "Netlist.fanout_cone: node id out of range";
  Mutex.lock t.cone_lock;
  match Hashtbl.find_opt t.cones i with
  | Some c ->
    Mutex.unlock t.cone_lock;
    c
  | None ->
    Mutex.unlock t.cone_lock;
    (* compute outside the lock: a racing duplicate computation is
       harmless, and the first insertion wins so callers share one cone *)
    let c = compute_cone t i in
    Mutex.lock t.cone_lock;
    let c =
      match Hashtbl.find_opt t.cones i with
      | Some prior -> prior
      | None ->
        Hashtbl.replace t.cones i c;
        c
    in
    Mutex.unlock t.cone_lock;
    c

let words_of_int_array a = Array.length a + 2  (* payload + header *)

let mem_bytes t =
  8
  * (words_of_int_array t.kinds
    + words_of_int_array t.fanin_off
    + words_of_int_array t.fanin_dat
    + words_of_int_array t.fanout_off
    + words_of_int_array t.fanout_dat
    + words_of_int_array t.topo
    + words_of_int_array t.node_level
    + words_of_int_array t.level_off
    + words_of_int_array t.level_dat)

let cone_cache_bytes t =
  Mutex.lock t.cone_lock;
  let total =
    Hashtbl.fold
      (fun _ c acc ->
        acc + (8 * words_of_int_array c.cone_nodes)
        + Bitset.bytes c.cone_member)
      t.cones 0
  in
  Mutex.unlock t.cone_lock;
  total

let stats t =
  Printf.sprintf "%s: %d PIs, %d POs, %d gates, depth %d" t.nl_name
    (pi_count t) (List.length t.pos) (gate_count t) (depth t)
