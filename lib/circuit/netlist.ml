type node = Pi | Gate of { kind : Gate.kind; fanin : int array }

type cone = {
  cone_nodes : int array;
  cone_member : bool array;
}

type t = {
  nl_name : string;
  names : string array;
  nodes : node array;
  by_name : (string, int) Hashtbl.t;
  pis : int list;
  pos : int list;
  fanouts : int array array;
  topo : int array;
  levels : int array;
  by_level : int array array;
  cones : (int, cone) Hashtbl.t;
  cone_lock : Mutex.t;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let build ~name ~signals ~outputs =
  let n = List.length signals in
  if n = 0 then invalid "empty netlist";
  let by_name = Hashtbl.create (2 * n) in
  List.iteri
    (fun i (s, _) ->
      if Hashtbl.mem by_name s then invalid "duplicate signal %S" s;
      Hashtbl.replace by_name s i)
    signals;
  let names = Array.of_list (List.map fst signals) in
  let resolve_names = Array.make n Pi in
  List.iteri (fun i (_, nd) -> resolve_names.(i) <- nd) signals;
  let nodes = resolve_names in
  (* validate fan-ins *)
  Array.iteri
    (fun i nd ->
      match nd with
      | Pi -> ()
      | Gate { kind; fanin } ->
        let arity = Array.length fanin in
        (match kind with
        | Gate.Not | Gate.Buf ->
          if arity <> 1 then
            invalid "%s: %s expects 1 input, got %d" names.(i)
              (Gate.to_string kind) arity
        | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
          if arity < 1 then invalid "%s: gate with no inputs" names.(i));
        Array.iter
          (fun j ->
            if j < 0 || j >= n then
              invalid "%s: fan-in id %d out of range" names.(i) j)
          fanin)
    nodes;
  let pis =
    List.filteri (fun i _ -> nodes.(i) = Pi) (List.init n Fun.id)
  in
  let pos =
    List.map
      (fun s ->
        match Hashtbl.find_opt by_name s with
        | Some i -> i
        | None -> invalid "output %S is not a declared signal" s)
      outputs
  in
  (* fanouts *)
  let fo = Array.make n [] in
  Array.iteri
    (fun i nd ->
      match nd with
      | Pi -> ()
      | Gate { fanin; _ } -> Array.iter (fun j -> fo.(j) <- i :: fo.(j)) fanin)
    nodes;
  let fanouts = Array.map (fun l -> Array.of_list (List.rev l)) fo in
  (* topological order by Kahn's algorithm; detects cycles *)
  let indeg = Array.make n 0 in
  Array.iteri
    (fun i nd ->
      match nd with
      | Pi -> ()
      | Gate { fanin; _ } -> indeg.(i) <- Array.length fanin)
    nodes;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let topo = Array.make n (-1) in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    topo.(!count) <- i;
    incr count;
    Array.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      fanouts.(i)
  done;
  if !count <> n then invalid "netlist %S contains a cycle" name;
  let levels = Array.make n 0 in
  Array.iter
    (fun i ->
      match nodes.(i) with
      | Pi -> levels.(i) <- 0
      | Gate { fanin; _ } ->
        levels.(i) <-
          1 + Array.fold_left (fun m j -> max m levels.(j)) (-1) fanin)
    topo;
  let by_level =
    let depth = Array.fold_left max 0 levels in
    let counts = Array.make (depth + 1) 0 in
    Array.iter (fun l -> counts.(l) <- counts.(l) + 1) levels;
    let groups = Array.map (fun c -> Array.make c (-1)) counts in
    let fill = Array.make (depth + 1) 0 in
    (* walk in topological order so each group lists its nodes in a
       deterministic order consistent with [topo] *)
    Array.iter
      (fun i ->
        let l = levels.(i) in
        groups.(l).(fill.(l)) <- i;
        fill.(l) <- fill.(l) + 1)
      topo;
    groups
  in
  { nl_name = name; names; nodes; by_name; pis; pos; fanouts; topo; levels;
    by_level; cones = Hashtbl.create 16; cone_lock = Mutex.create () }

let name t = t.nl_name
let size t = Array.length t.nodes

let gate_count t =
  Array.fold_left
    (fun acc nd -> match nd with Pi -> acc | Gate _ -> acc + 1)
    0 t.nodes

let pi_count t = List.length t.pis
let node t i = t.nodes.(i)
let signal_name t i = t.names.(i)
let find t s = Hashtbl.find_opt t.by_name s
let inputs t = t.pis
let outputs t = t.pos
let fanout t i = t.fanouts.(i)
let load_of t i = max 1 (Array.length t.fanouts.(i))
let topo_order t = t.topo
let level t i = t.levels.(i)
let levels t = t.by_level
let depth t = Array.fold_left max 0 t.levels

let fold_gates_topo t ~init ~f =
  Array.fold_left
    (fun acc i ->
      match t.nodes.(i) with
      | Pi -> acc
      | Gate { kind; fanin } -> f acc i kind fanin)
    init t.topo

let iter_gates_topo t ~f =
  Array.iter
    (fun i ->
      match t.nodes.(i) with
      | Pi -> ()
      | Gate { kind; fanin } -> f i kind fanin)
    t.topo

let transitive_closure next t i =
  let n = size t in
  let seen = Array.make n false in
  let rec visit j =
    if not seen.(j) then begin
      seen.(j) <- true;
      List.iter visit (next t j)
    end
  in
  List.iter visit (next t i);
  let order = ref [] in
  Array.iter (fun j -> if seen.(j) then order := j :: !order) t.topo;
  List.rev !order

let transitive_fanin t i =
  transitive_closure
    (fun t j ->
      match t.nodes.(j) with
      | Pi -> []
      | Gate { fanin; _ } -> Array.to_list fanin)
    t i

let transitive_fanout t i =
  transitive_closure (fun t j -> Array.to_list t.fanouts.(j)) t i

let compute_cone t i =
  let n = size t in
  let member = Array.make n false in
  let rec visit j =
    if not member.(j) then begin
      member.(j) <- true;
      Array.iter visit t.fanouts.(j)
    end
  in
  visit i;
  let count = Array.fold_left (fun c m -> if m then c + 1 else c) 0 member in
  let nodes = Array.make count (-1) in
  let fill = ref 0 in
  Array.iter
    (fun j ->
      if member.(j) then begin
        nodes.(!fill) <- j;
        incr fill
      end)
    t.topo;
  { cone_nodes = nodes; cone_member = member }

let fanout_cone t i =
  if i < 0 || i >= size t then
    invalid_arg "Netlist.fanout_cone: node id out of range";
  Mutex.lock t.cone_lock;
  match Hashtbl.find_opt t.cones i with
  | Some c ->
    Mutex.unlock t.cone_lock;
    c
  | None ->
    Mutex.unlock t.cone_lock;
    (* compute outside the lock: a racing duplicate computation is
       harmless, and the first insertion wins so callers share one cone *)
    let c = compute_cone t i in
    Mutex.lock t.cone_lock;
    let c =
      match Hashtbl.find_opt t.cones i with
      | Some prior -> prior
      | None ->
        Hashtbl.replace t.cones i c;
        c
    in
    Mutex.unlock t.cone_lock;
    c

let stats t =
  Printf.sprintf "%s: %d PIs, %d POs, %d gates, depth %d" t.nl_name
    (pi_count t) (List.length t.pos) (gate_count t) (depth t)
