(** Plain Boolean simulation of a netlist. *)

val simulate : Netlist.t -> bool array -> bool array
(** [simulate nl pi_values] evaluates every node; [pi_values] is indexed
    by the PI's rank in [Netlist.inputs] order.  Returns a value per node
    id.  @raise Invalid_argument on an arity mismatch. *)

val outputs_of : Netlist.t -> bool array -> bool list
(** PO values for the given PI vector. *)

val random_vector : Ssd_util.Rng.t -> Netlist.t -> bool array

val equivalent : ?vectors:int -> Ssd_util.Rng.t -> Netlist.t -> Netlist.t
  -> bool
(** Randomized functional equivalence check: both netlists must have the
    same PI names (matched by name, any order) and the same PO names;
    [vectors] (default 256) random stimuli are compared. *)
