(** Immutable combinational gate-level netlist (DAG).

    Every node is a named signal: either a primary input or the output of
    exactly one gate.  The structure is validated at construction time
    (defined-before-use not required, but the graph must be acyclic and
    every fan-in must exist). *)

type node = Pi | Gate of { kind : Gate.kind; fanin : int array }

type t

exception Invalid of string
(** Raised by {!build} on cycles, dangling references, duplicate
    definitions or arity violations. *)

val build :
  name:string ->
  signals:(string * node) list ->
  outputs:string list ->
  t
(** [signals] declares every node; [outputs] names the primary outputs.
    @raise Invalid *)

val name : t -> string
val size : t -> int
(** Total node count (PIs + gates). *)

val gate_count : t -> int
val pi_count : t -> int

val node : t -> int -> node
val signal_name : t -> int -> string
val find : t -> string -> int option

val inputs : t -> int list
(** PI ids in declaration order. *)

val outputs : t -> int list

val fanout : t -> int -> int array
(** Gate ids that consume the given node.  A PO with no readers has an
    empty fanout; its electrical load is still at least one (see
    {!load_of}). *)

val load_of : t -> int -> int
(** Electrical fanout used by the delay models: [max 1 (consumers)]. *)

val topo_order : t -> int array
(** All node ids, PIs first, then gates in topological order. *)

val level : t -> int -> int
(** Logic level: 0 for PIs, 1 + max fan-in level for gates. *)

val levels : t -> int array array
(** Node ids grouped by logic level: element [l] lists every node of
    level [l] in topological order.  Level 0 is the PIs; nodes within a
    level have no dependencies on one another, so each group can be
    processed in parallel once all earlier groups are done. *)

val depth : t -> int
(** Maximum level over all nodes. *)

val fold_gates_topo : t -> init:'a -> f:('a -> int -> Gate.kind -> int array -> 'a) -> 'a

val iter_gates_topo : t -> f:(int -> Gate.kind -> int array -> unit) -> unit

val transitive_fanin : t -> int -> int list
(** All nodes (including PIs) feeding the given node, topologically
    sorted. *)

val transitive_fanout : t -> int -> int list

type cone = {
  cone_nodes : int array;
      (** the root line followed by every node it can reach, listed in
          the netlist's topological order *)
  cone_member : bool array;
      (** size {!size}: [cone_member.(j)] iff [j] is the root or in its
          transitive fanout *)
}
(** Transitive-fanout cone of one line — the set of lines whose timing
    can change when the root line's delay changes.  Treat both arrays as
    read-only: cones are cached and shared between callers. *)

val fanout_cone : t -> int -> cone
(** Cached cone lookup: the first call per root computes and memoizes
    the cone, later calls (from any domain — the cache is
    mutex-protected) return the same structure.
    @raise Invalid_argument on an out-of-range node id. *)

val stats : t -> string
(** One-line human-readable summary. *)
