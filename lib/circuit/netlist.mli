(** Immutable combinational gate-level netlist (DAG).

    Every node is a named signal: either a primary input or the output of
    exactly one gate.  The structure is validated at construction time
    (defined-before-use not required, but the graph must be acyclic and
    every fan-in must exist).

    Storage is structure-of-arrays: node kinds live in one flat int
    array and the fan-in / fan-out / level adjacency in CSR-style
    offset+data pairs, so the analysis hot paths walk contiguous memory
    at 100k–1M-gate scale.  The {!node} / {!fanout} / {!levels}
    accessors materialize the original per-node representation on
    demand; hot paths should use the flat accessors ({!is_pi},
    {!gate_kind}, {!fanin_nth}, {!iter_fanout}, {!level_node}, ...)
    which allocate nothing. *)

type node = Pi | Gate of { kind : Gate.kind; fanin : int array }

type t

exception Invalid of string
(** Raised by {!build} on cycles, dangling references, duplicate
    definitions or arity violations. *)

val build :
  name:string ->
  signals:(string * node) list ->
  outputs:string list ->
  t
(** [signals] declares every node; [outputs] names the primary outputs.
    @raise Invalid *)

val name : t -> string
val size : t -> int
(** Total node count (PIs + gates). *)

val gate_count : t -> int
val pi_count : t -> int

val node : t -> int -> node
(** Materialized view of one node (the [Gate] fan-in array is a fresh
    copy).  Cold-path accessor; hot loops should read {!is_pi} /
    {!gate_kind} / {!fanin_nth} instead. *)

val signal_name : t -> int -> string
val find : t -> string -> int option

val inputs : t -> int list
(** PI ids in declaration order. *)

val outputs : t -> int list

(** {2 Flat structure-of-arrays accessors}

    Allocation-free reads against the packed representation. *)

val is_pi : t -> int -> bool

val gate_kind : t -> int -> Gate.kind
(** @raise Invalid_argument when the node is a PI. *)

val fanin_count : t -> int -> int
(** 0 for a PI. *)

val fanin_nth : t -> int -> int -> int
(** [fanin_nth t i p] is input position [p] of gate [i] (position 0 is
    closest to the output, as everywhere else). *)

val iter_fanin : t -> int -> f:(int -> unit) -> unit

val fanout_count : t -> int -> int
val fanout_nth : t -> int -> int -> int
val iter_fanout : t -> int -> f:(int -> unit) -> unit

val level_count : t -> int
(** Number of logic levels, [depth + 1]. *)

val level_width : t -> int -> int
(** Node count of one level. *)

val level_node : t -> int -> int -> int
(** [level_node t l k] is the [k]-th node of level [l], in topological
    order. *)

val fanout : t -> int -> int array
(** Gate ids that consume the given node, as a fresh array (cold-path
    view of the fan-out CSR row; hot loops use {!iter_fanout}).  A PO
    with no readers has an empty fanout; its electrical load is still at
    least one (see {!load_of}). *)

val load_of : t -> int -> int
(** Electrical fanout used by the delay models: [max 1 (consumers)]. *)

val topo_order : t -> int array
(** All node ids, PIs first, then gates in topological order. *)

val level : t -> int -> int
(** Logic level: 0 for PIs, 1 + max fan-in level for gates. *)

val levels : t -> int array array
(** Node ids grouped by logic level: element [l] lists every node of
    level [l] in topological order.  Level 0 is the PIs; nodes within a
    level have no dependencies on one another, so each group can be
    processed in parallel once all earlier groups are done.  Materialized
    from the level CSR on first use and cached. *)

val depth : t -> int
(** Maximum level over all nodes. *)

val fold_gates_topo : t -> init:'a -> f:('a -> int -> Gate.kind -> int array -> 'a) -> 'a

val iter_gates_topo : t -> f:(int -> Gate.kind -> int array -> unit) -> unit

val transitive_fanin : t -> int -> int list
(** All nodes (including PIs) feeding the given node, topologically
    sorted. *)

val transitive_fanout : t -> int -> int list

type cone = {
  cone_nodes : int array;
      (** the root line followed by every node it can reach, listed in
          the netlist's topological order *)
  cone_member : Ssd_util.Bitset.t;
      (** packed membership flags over all {!size} node ids:
          [Bitset.get cone_member j] iff [j] is the root or in its
          transitive fanout — one bit per node, so a cached cone costs
          [size/8] bytes instead of the [bool array]'s [size] *)
}
(** Transitive-fanout cone of one line — the set of lines whose timing
    can change when the root line's delay changes.  Treat both fields as
    read-only: cones are cached and shared between callers. *)

val in_cone : cone -> int -> bool
(** [in_cone c j] iff [j] is the cone's root or in its transitive
    fanout. *)

val fanout_cone : t -> int -> cone
(** Cached cone lookup: the first call per root computes and memoizes
    the cone, later calls (from any domain — the cache is
    mutex-protected) return the same structure.
    @raise Invalid_argument on an out-of-range node id. *)

val mem_bytes : t -> int
(** Approximate heap footprint of the packed structural arrays (kinds,
    CSR offsets and data, topological and level orders) in bytes,
    headers included; excludes signal names and the cone cache.  The
    scale bench divides this by {!size} to track bytes/gate. *)

val cone_cache_bytes : t -> int
(** Approximate heap footprint of all cached cones in bytes. *)

val stats : t -> string
(** One-line human-readable summary. *)
