let c17_text =
  {|# c17 — ISCAS85 benchmark (smallest member, 6 NAND2 gates)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
|}

let c17 () = Bench_io.parse_string ~name:"c17" c17_text

(* PI/PO/gate counts of the genuine ISCAS85 circuits; the synthetic
   substitutes reproduce the counts and approximate the shape. *)
let synthetic_specs =
  [
    ("c880s", 60, 26, 383, 11L);
    ("c1355s", 41, 32, 546, 13L);
    ("c1908s", 33, 25, 880, 17L);
    ("c3540s", 50, 22, 1669, 19L);
    ("c7552s", 207, 108, 3512, 23L);
  ]

let generate_spec (g_name, n_inputs, n_outputs, n_gates, seed) =
  Generator.generate
    {
      Generator.g_name;
      n_inputs;
      n_outputs;
      n_gates;
      max_fanin = 4;
      locality = max 32 (n_gates / 12);
      seed;
      shape = Generator.Organic;
    }

let synthetic_suite () = List.map generate_spec synthetic_specs

let table2_suite () = c17 () :: synthetic_suite ()

let names = "c17" :: List.map (fun (n, _, _, _, _) -> n) synthetic_specs

let by_name name =
  if name = "c17" then Some (c17 ())
  else
    match
      List.find_opt (fun (n, _, _, _, _) -> n = name) synthetic_specs
    with
    | Some spec -> Some (generate_spec spec)
    | None -> None
