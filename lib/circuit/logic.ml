let simulate nl pi_values =
  let pis = Netlist.inputs nl in
  if Array.length pi_values <> List.length pis then
    invalid_arg "Logic.simulate: PI vector arity mismatch";
  let values = Array.make (Netlist.size nl) false in
  List.iteri (fun rank i -> values.(i) <- pi_values.(rank)) pis;
  Netlist.iter_gates_topo nl ~f:(fun i kind fanin ->
      values.(i) <-
        Gate.eval_fanin kind
          (fun p -> values.(fanin.(p)))
          (Array.length fanin));
  values

let outputs_of nl pi_values =
  let values = simulate nl pi_values in
  List.map (fun i -> values.(i)) (Netlist.outputs nl)

let random_vector rng nl =
  Array.init (List.length (Netlist.inputs nl)) (fun _ -> Ssd_util.Rng.bool rng)

let equivalent ?(vectors = 256) rng a b =
  let names nl =
    List.map (Netlist.signal_name nl) (Netlist.inputs nl)
    |> List.sort String.compare
  in
  let out_names nl = List.map (Netlist.signal_name nl) (Netlist.outputs nl) in
  if names a <> names b || out_names a <> out_names b then false
  else begin
    let pi_names_a = List.map (Netlist.signal_name a) (Netlist.inputs a) in
    (* map a's PI rank to b's PI rank via names; a name absent from b
       means the netlists cannot be matched, never a raised Not_found *)
    let b_rank =
      let tbl = Hashtbl.create 16 in
      List.iteri
        (fun rank i -> Hashtbl.replace tbl (Netlist.signal_name b i) rank)
        (Netlist.inputs b);
      List.fold_right
        (fun nm acc ->
          match (Hashtbl.find_opt tbl nm, acc) with
          | Some r, Some rest -> Some (r :: rest)
          | None, _ | _, None -> None)
        pi_names_a (Some [])
    in
    match b_rank with
    | None -> false
    | Some b_rank ->
      let rec loop k =
        if k >= vectors then true
        else begin
          let va = random_vector rng a in
          let vb = Array.make (Array.length va) false in
          List.iteri (fun ra rb -> vb.(rb) <- va.(ra)) b_rank;
          if outputs_of a va <> outputs_of b vb then false else loop (k + 1)
        end
      in
      loop 0
  end
