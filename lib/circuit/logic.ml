let simulate nl pi_values =
  let pis = Netlist.inputs nl in
  if Array.length pi_values <> List.length pis then
    invalid_arg "Logic.simulate: PI vector arity mismatch";
  let values = Array.make (Netlist.size nl) false in
  List.iteri (fun rank i -> values.(i) <- pi_values.(rank)) pis;
  Netlist.iter_gates_topo nl ~f:(fun i kind fanin ->
      let ins = Array.to_list (Array.map (fun j -> values.(j)) fanin) in
      values.(i) <- Gate.eval kind ins);
  values

let outputs_of nl pi_values =
  let values = simulate nl pi_values in
  List.map (fun i -> values.(i)) (Netlist.outputs nl)

let random_vector rng nl =
  Array.init (List.length (Netlist.inputs nl)) (fun _ -> Ssd_util.Rng.bool rng)

let equivalent ?(vectors = 256) rng a b =
  let names nl =
    List.map (Netlist.signal_name nl) (Netlist.inputs nl)
    |> List.sort String.compare
  in
  let out_names nl = List.map (Netlist.signal_name nl) (Netlist.outputs nl) in
  if names a <> names b || out_names a <> out_names b then false
  else begin
    let pi_names_a = List.map (Netlist.signal_name a) (Netlist.inputs a) in
    (* map a's PI rank to b's PI rank via names *)
    let b_rank =
      let tbl = Hashtbl.create 16 in
      List.iteri
        (fun rank i -> Hashtbl.replace tbl (Netlist.signal_name b i) rank)
        (Netlist.inputs b);
      List.map (fun nm -> Hashtbl.find tbl nm) pi_names_a
    in
    let rec loop k =
      if k >= vectors then true
      else begin
        let va = random_vector rng a in
        let vb = Array.make (Array.length va) false in
        List.iteri (fun ra rb -> vb.(rb) <- va.(ra)) b_rank;
        if outputs_of a va <> outputs_of b vb then false else loop (k + 1)
      end
    in
    loop 0
  end
