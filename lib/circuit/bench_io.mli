(** ISCAS85 ".bench" format reader and writer.

    Supported syntax (case-insensitive gate names, '#' comments):
    {v
      INPUT(a)
      OUTPUT(z)
      z = NAND(a, b)
      w = NOT(z)
    v} *)

exception Parse_error of { line : int; message : string }

val parse_string : name:string -> string -> Netlist.t
(** @raise Parse_error on malformed text — including a signal defined
    more than once or a fan-in that is never defined, both reported with
    the offending line number — and {!Netlist.Invalid} on a structurally
    broken circuit. *)

val parse_file : string -> Netlist.t
(** Netlist name is the file's basename without extension.  The channel
    is closed even when reading or parsing raises. *)

val to_string : Netlist.t -> string
(** Round-trippable ".bench" text. *)

val write_file : Netlist.t -> string -> unit
