(** Gate-level primitives and their logic semantics. *)

type kind = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

val of_string : string -> kind option
(** Case-insensitive; accepts the ISCAS85 spellings (including "BUFF"). *)

val to_string : kind -> string

val eval : kind -> bool list -> bool
(** @raise Invalid_argument on an arity violation (NOT/BUF take exactly
    one input; the others at least one). *)

val controlling_value : kind -> bool option
(** The value that alone determines the output (AND/NAND: false,
    OR/NOR: true); [None] for XOR/XNOR/NOT/BUF. *)

val inverting : kind -> bool
(** Whether the output is the complement of the "dominant" function
    (NAND/NOR/NOT/XNOR). *)

val is_primitive : kind -> bool
(** True for the kinds the characterized library covers directly:
    NAND, NOR, NOT. *)
