(** Gate-level primitives and their logic semantics. *)

type kind = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

val of_string : string -> kind option
(** Case-insensitive; accepts the ISCAS85 spellings (including "BUFF"). *)

val to_string : kind -> string

val to_int : kind -> int
(** Dense tag in [0, 7], for packing kinds into flat int arrays. *)

val of_int : int -> kind
(** Inverse of {!to_int}.  @raise Invalid_argument outside [0, 7]. *)

val eval : kind -> bool list -> bool
(** @raise Invalid_argument on an arity violation (NOT/BUF take exactly
    one input; the others at least one). *)

val eval_fanin : kind -> (int -> bool) -> int -> bool
(** [eval_fanin kind get n] evaluates the gate on the input values
    [get 0 .. get (n - 1)] without building an intermediate list — the
    allocation-free core used by the simulators' inner loops ([get]
    typically indexes straight into a value array through the gate's
    fan-in array).  Short-circuits like {!eval} and raises the same
    arity errors. *)

val controlling_value : kind -> bool option
(** The value that alone determines the output (AND/NAND: false,
    OR/NOR: true); [None] for XOR/XNOR/NOT/BUF. *)

val inverting : kind -> bool
(** Whether the output is the complement of the "dominant" function
    (NAND/NOR/NOT/XNOR). *)

val is_primitive : kind -> bool
(** True for the kinds the characterized library covers directly:
    NAND, NOR, NOT. *)
