(** Deterministic synthetic combinational benchmark generator.

    Stands in for the five larger ISCAS85 netlists (see DESIGN.md): the
    generated circuits match the originals' primary-input / primary-output
    / gate counts and have comparable depth, a NAND/NOR/NOT-dominated gate
    mix, fan-in ≤ 4 and reconvergent fan-out.  Generation is layered: each
    new gate draws its fan-ins from recent layers (locality) with an
    occasional long edge, which yields ISCAS-like level distributions. *)

type params = {
  g_name : string;
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  max_fanin : int;       (** 2..4 typical *)
  locality : int;        (** how many recent nodes fan-ins prefer *)
  seed : int64;
}

val default_params : params

val generate : params -> Netlist.t
(** Every PI reaches some gate and every gate transitively feeds some PO
    (dead nodes are re-wired into the PO selection). *)
