(** Deterministic synthetic combinational benchmark generator.

    Stands in for the five larger ISCAS85 netlists (see DESIGN.md): the
    generated circuits match the originals' primary-input / primary-output
    / gate counts and have comparable depth, a NAND/NOR/NOT-dominated gate
    mix, bounded fan-in and reconvergent fan-out.  Two growth shapes:

    - {!Organic} (the default): each new gate draws its fan-ins from
      recent nodes (locality) with an occasional long edge, which yields
      ISCAS-like level distributions.
    - [Layered]: the gates are spread over a fixed number of layers and
      every gate anchors one fan-in in the preceding layer, pinning both
      the depth and the level widths — the shape the scale bench uses to
      exercise the levelized schedule at 100k–1M gates. *)

type shape =
  | Organic
  | Layered of { layers : int }  (** [layers >= 1] logic levels of gates *)

type params = {
  g_name : string;
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  max_fanin : int;
      (** >= 2; arities are drawn 2-heavy up to this cap (beyond 4, the
          wide tail draws uniformly from [4, max_fanin]) *)
  locality : int;        (** how many recent nodes fan-ins prefer *)
  seed : int64;
  shape : shape;
}

val default_params : params

val generate : ?obs:Ssd_obs.Obs.t -> params -> Netlist.t
(** Every PI reaches some gate and every gate transitively feeds some PO
    (dead nodes are re-wired into the PO selection); the PO count is
    exactly [n_outputs], topped up from the deepest gates when the
    circuit has fewer sinks than requested outputs.

    [obs] (default disabled) counts the build: [gen.gates] / [gen.pis] /
    [gen.pos] totals, [gen.redraws] constant-signature redraw attempts,
    and a [gen.build] span/timer around the whole construction.
    @raise Invalid_argument on non-positive counts, [max_fanin < 2],
    [n_outputs > n_gates] or [Layered] with [layers < 1]. *)
