(** Technology mapping to the characterized primitive cells.

    The timing libraries characterize NAND-n, NOR-n (n ≤ max_fanin) and
    inverters, so AND/OR/XOR/XNOR/BUF gates and over-wide fan-ins are
    rewritten into equivalent primitive networks:
    - AND → NAND + NOT, OR → NOR + NOT, BUF → NOT·NOT
    - XOR(a,b) → the classic 4-NAND network; XNOR adds an inverter;
      wider XOR/XNOR fold pairwise
    - NAND/NOR wider than [max_fanin] split into trees.

    Original signal names are preserved for every original node, so
    primary outputs and fault sites keep their identity. *)

val to_primitive : ?max_fanin:int -> Netlist.t -> Netlist.t
(** [max_fanin] defaults to 4.  The result contains only NAND, NOR and NOT
    gates with fan-in at most [max_fanin]. *)

val is_primitive : ?max_fanin:int -> Netlist.t -> bool
