module Rng = Ssd_util.Rng

type params = {
  g_name : string;
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  max_fanin : int;
  locality : int;
  seed : int64;
}

let default_params =
  {
    g_name = "synth";
    n_inputs = 16;
    n_outputs = 8;
    n_gates = 100;
    max_fanin = 4;
    locality = 48;
    seed = 1L;
  }

let gate_kinds = [| Gate.Nand; Gate.Nand; Gate.Nor; Gate.Nand; Gate.Nor;
                    Gate.Not; Gate.And; Gate.Or |]

let generate p =
  if p.n_inputs < 1 || p.n_outputs < 1 || p.n_gates < 1 then
    invalid_arg "Generator.generate: counts must be positive";
  if p.max_fanin < 2 then invalid_arg "Generator.generate: max_fanin < 2";
  let rng = Rng.create p.seed in
  let total = p.n_inputs + p.n_gates in
  let signals = ref [] in
  for i = 0 to p.n_inputs - 1 do
    signals := (Printf.sprintf "pi%d" i, Netlist.Pi) :: !signals
  done;
  (* Fan-ins prefer recent nodes (locality window) with a 15 % chance of a
     long edge back to anywhere, creating both deep chains and
     reconvergence. *)
  let pick_fanin rng upto =
    if upto <= 0 then 0
    else if Rng.int rng 100 < 15 then Rng.int rng upto
    else begin
      let lo = max 0 (upto - p.locality) in
      lo + Rng.int rng (upto - lo)
    end
  in
  (* Random-simulation signatures (128 vectors as two 64-bit words per
     node) guard against structurally constant lines: deep random DAGs
     otherwise accumulate reconvergent correlations until most of the
     circuit is stuck — unlike any real benchmark.  A gate whose signature
     is constant across all sampled vectors is redrawn. *)
  let words = 2 in
  let sigs = Array.make_matrix total words 0L in
  for i = 0 to p.n_inputs - 1 do
    for w = 0 to words - 1 do
      sigs.(i).(w) <- Rng.next_int64 rng
    done
  done;
  let signature kind fanin =
    let out = Array.make words 0L in
    for w = 0 to words - 1 do
      let ins = List.map (fun j -> sigs.(j).(w)) fanin in
      let all op init = List.fold_left op init ins in
      out.(w) <-
        (match kind with
        | Gate.And -> all Int64.logand Int64.minus_one
        | Gate.Nand -> Int64.lognot (all Int64.logand Int64.minus_one)
        | Gate.Or -> all Int64.logor 0L
        | Gate.Nor -> Int64.lognot (all Int64.logor 0L)
        | Gate.Xor -> all Int64.logxor 0L
        | Gate.Xnor -> Int64.lognot (all Int64.logxor 0L)
        | Gate.Not -> Int64.lognot (List.hd ins)
        | Gate.Buf -> List.hd ins)
    done;
    out
  in
  let is_constant s =
    Array.for_all (fun w -> w = 0L) s
    || Array.for_all (fun w -> w = Int64.minus_one) s
  in
  for g = 0 to p.n_gates - 1 do
    let id = p.n_inputs + g in
    let draw () =
      let kind = Rng.pick rng gate_kinds in
      let arity =
        match kind with
        | Gate.Not -> 1
        | Gate.Nand | Gate.Nor | Gate.And | Gate.Or ->
          (* ISCAS85-like fan-in mix: mostly 2-input, some 3, few wider *)
          let r = Rng.int rng 100 in
          if r < 70 then 2
          else if r < 90 then 3
          else min p.max_fanin 4
        | Gate.Xor | Gate.Xnor | Gate.Buf -> 2
      in
      let chosen = Hashtbl.create 4 in
      let fanin = ref [] in
      let attempts = ref 0 in
      (* the first fan-in may be a long edge; the rest are drawn near it so
         a gate's inputs have correlated depths — in real netlists the
         fan-ins of a gate come from similar logic levels, which is what
         gives short paths overlapping arrival windows *)
      let anchor = ref None in
      while List.length !fanin < arity && !attempts < 50 do
        incr attempts;
        let c =
          match !anchor with
          | None -> pick_fanin rng id
          | Some a ->
            let lo = max 0 (a - p.locality) in
            let hi = min id (a + p.locality) in
            lo + Rng.int rng (max 1 (hi - lo))
        in
        if not (Hashtbl.mem chosen c) then begin
          Hashtbl.replace chosen c ();
          if !anchor = None then anchor := Some c;
          fanin := c :: !fanin
        end
      done;
      let fanin =
        match !fanin with
        | [] -> [ Rng.int rng id ]
        | l -> l
      in
      let kind = if List.length fanin = 1 then Gate.Not else kind in
      (kind, fanin)
    in
    let rec attempt k =
      let kind, fanin = draw () in
      let s = signature kind fanin in
      if not (is_constant s) then (kind, fanin, s)
      else if k >= 20 then begin
        (* a NOT of a non-constant node is never constant *)
        let src = pick_fanin rng id in
        (Gate.Not, [ src ], signature Gate.Not [ src ])
      end
      else attempt (k + 1)
    in
    let kind, fanin, s = attempt 0 in
    sigs.(id) <- s;
    signals :=
      (Printf.sprintf "g%d" id,
       Netlist.Gate { kind; fanin = Array.of_list fanin })
      :: !signals
  done;
  let signals = List.rev !signals in
  (* Outputs: prefer sinks (nodes with no reader) so the whole circuit is
     observable, deepest first — shallow POs would make the circuit's
     min-delay a trivial one-gate path, which no real benchmark has. *)
  let consumed = Array.make total false in
  List.iter
    (fun (_, nd) ->
      match nd with
      | Netlist.Pi -> ()
      | Netlist.Gate { fanin; _ } ->
        Array.iter (fun j -> consumed.(j) <- true) fanin)
    signals;
  let level = Array.make total 0 in
  List.iteri
    (fun id (_, nd) ->
      match nd with
      | Netlist.Pi -> ()
      | Netlist.Gate { fanin; _ } ->
        level.(id) <-
          1 + Array.fold_left (fun m j -> max m level.(j)) (-1) fanin)
    signals;
  let sinks = ref [] in
  for id = total - 1 downto p.n_inputs do
    if not consumed.(id) then sinks := id :: !sinks
  done;
  let sinks =
    List.stable_sort (fun a b -> compare level.(b) level.(a)) !sinks
  in
  let outputs =
    let rec take acc k = function
      | _ when k = 0 -> List.rev acc
      | [] -> List.rev acc
      | x :: rest -> take (x :: acc) (k - 1) rest
    in
    let from_sinks = take [] p.n_outputs sinks in
    let missing = p.n_outputs - List.length from_sinks in
    let extra =
      List.init missing (fun k -> total - 1 - k)
      |> List.filter (fun id -> not (List.mem id from_sinks))
    in
    from_sinks @ extra
  in
  let name_of id =
    if id < p.n_inputs then Printf.sprintf "pi%d" id
    else Printf.sprintf "g%d" id
  in
  Netlist.build ~name:p.g_name ~signals
    ~outputs:(List.map name_of outputs)
