module Rng = Ssd_util.Rng
module Obs = Ssd_obs.Obs

type shape = Organic | Layered of { layers : int }

type params = {
  g_name : string;
  n_inputs : int;
  n_outputs : int;
  n_gates : int;
  max_fanin : int;
  locality : int;
  seed : int64;
  shape : shape;
}

let default_params =
  {
    g_name = "synth";
    n_inputs = 16;
    n_outputs = 8;
    n_gates = 100;
    max_fanin = 4;
    locality = 48;
    seed = 1L;
    shape = Organic;
  }

let gate_kinds = [| Gate.Nand; Gate.Nand; Gate.Nor; Gate.Nand; Gate.Nor;
                    Gate.Not; Gate.And; Gate.Or |]

let check_params p =
  if p.n_inputs < 1 || p.n_outputs < 1 || p.n_gates < 1 then
    invalid_arg "Generator.generate: counts must be positive";
  if p.max_fanin < 2 then invalid_arg "Generator.generate: max_fanin < 2";
  if p.n_outputs > p.n_gates then
    invalid_arg "Generator.generate: n_outputs exceeds n_gates";
  match p.shape with
  | Organic -> ()
  | Layered { layers } ->
    if layers < 1 then invalid_arg "Generator.generate: layers < 1"

(* ISCAS85-like fan-in mix: mostly 2-input, some 3, few at the cap.  The
   wide branch honours [max_fanin] beyond 4 (drawing uniformly from
   [4, max_fanin]) and never exceeds a cap below 4; the extra draw only
   happens for [max_fanin > 4], so the RNG stream — and hence every
   bundled benchmark — is unchanged for the classic 2..4 range. *)
let draw_arity rng p kind =
  match kind with
  | Gate.Not -> 1
  | Gate.Nand | Gate.Nor | Gate.And | Gate.Or ->
    let r = Rng.int rng 100 in
    if r < 70 then 2
    else if r < 90 then min p.max_fanin 3
    else if p.max_fanin <= 4 then min p.max_fanin 4
    else 4 + Rng.int rng (p.max_fanin - 3)
  | Gate.Xor | Gate.Xnor | Gate.Buf -> 2

(* Random-simulation signatures (128 vectors as two 64-bit words per
   node) guard against structurally constant lines: deep random DAGs
   otherwise accumulate reconvergent correlations until most of the
   circuit is stuck — unlike any real benchmark.  A gate whose signature
   is constant across all sampled vectors is redrawn. *)
let sig_words = 2

let signature sigs kind fanin =
  let out = Array.make sig_words 0L in
  for w = 0 to sig_words - 1 do
    let ins = List.map (fun j -> sigs.(j).(w)) fanin in
    let all op init = List.fold_left op init ins in
    out.(w) <-
      (match kind with
      | Gate.And -> all Int64.logand Int64.minus_one
      | Gate.Nand -> Int64.lognot (all Int64.logand Int64.minus_one)
      | Gate.Or -> all Int64.logor 0L
      | Gate.Nor -> Int64.lognot (all Int64.logor 0L)
      | Gate.Xor -> all Int64.logxor 0L
      | Gate.Xnor -> Int64.lognot (all Int64.logxor 0L)
      | Gate.Not -> Int64.lognot (List.hd ins)
      | Gate.Buf -> List.hd ins)
  done;
  out

let is_constant s =
  Array.for_all (fun w -> w = 0L) s
  || Array.for_all (fun w -> w = Int64.minus_one) s

(* Outputs: prefer sinks (nodes with no reader) so the whole circuit is
   observable, deepest first — shallow POs would make the circuit's
   min-delay a trivial one-gate path, which no real benchmark has.  When
   there are fewer sinks than requested outputs, top up deterministically
   from the remaining deepest gates (already-consumed ones), so the PO
   count always comes out exactly [n_outputs]. *)
let select_outputs p ~total ~signals =
  let consumed = Array.make total false in
  List.iter
    (fun (_, nd) ->
      match nd with
      | Netlist.Pi -> ()
      | Netlist.Gate { fanin; _ } ->
        Array.iter (fun j -> consumed.(j) <- true) fanin)
    signals;
  let level = Array.make total 0 in
  List.iteri
    (fun id (_, nd) ->
      match nd with
      | Netlist.Pi -> ()
      | Netlist.Gate { fanin; _ } ->
        level.(id) <-
          1 + Array.fold_left (fun m j -> max m level.(j)) (-1) fanin)
    signals;
  let sinks = ref [] in
  for id = total - 1 downto p.n_inputs do
    if not consumed.(id) then sinks := id :: !sinks
  done;
  let sinks =
    List.stable_sort (fun a b -> compare level.(b) level.(a)) !sinks
  in
  let rec take acc k = function
    | _ when k = 0 -> List.rev acc
    | [] -> List.rev acc
    | x :: rest -> take (x :: acc) (k - 1) rest
  in
  let from_sinks = take [] p.n_outputs sinks in
  let missing = p.n_outputs - List.length from_sinks in
  let outputs =
    if missing = 0 then from_sinks
    else begin
      let in_sel = Array.make total false in
      List.iter (fun id -> in_sel.(id) <- true) from_sinks;
      let rest = ref [] in
      for id = p.n_inputs to total - 1 do
        if not in_sel.(id) then rest := id :: !rest
      done;
      let rest =
        List.stable_sort
          (fun a b -> compare (level.(b), b) (level.(a), a))
          !rest
      in
      from_sinks @ take [] missing rest
    end
  in
  assert (List.length outputs = p.n_outputs);
  outputs

let name_of p id =
  if id < p.n_inputs then Printf.sprintf "pi%d" id
  else Printf.sprintf "g%d" id

let generate_organic ~c_redraw p =
  let rng = Rng.create p.seed in
  let total = p.n_inputs + p.n_gates in
  let signals = ref [] in
  for i = 0 to p.n_inputs - 1 do
    signals := (Printf.sprintf "pi%d" i, Netlist.Pi) :: !signals
  done;
  (* Fan-ins prefer recent nodes (locality window) with a 15 % chance of a
     long edge back to anywhere, creating both deep chains and
     reconvergence. *)
  let pick_fanin rng upto =
    if upto <= 0 then 0
    else if Rng.int rng 100 < 15 then Rng.int rng upto
    else begin
      let lo = max 0 (upto - p.locality) in
      lo + Rng.int rng (upto - lo)
    end
  in
  let sigs = Array.make_matrix total sig_words 0L in
  for i = 0 to p.n_inputs - 1 do
    for w = 0 to sig_words - 1 do
      sigs.(i).(w) <- Rng.next_int64 rng
    done
  done;
  for g = 0 to p.n_gates - 1 do
    let id = p.n_inputs + g in
    let draw () =
      let kind = Rng.pick rng gate_kinds in
      let arity = draw_arity rng p kind in
      let chosen = Hashtbl.create 4 in
      let fanin = ref [] in
      let attempts = ref 0 in
      (* the first fan-in may be a long edge; the rest are drawn near it so
         a gate's inputs have correlated depths — in real netlists the
         fan-ins of a gate come from similar logic levels, which is what
         gives short paths overlapping arrival windows *)
      let anchor = ref None in
      while List.length !fanin < arity && !attempts < 50 do
        incr attempts;
        let c =
          match !anchor with
          | None -> pick_fanin rng id
          | Some a ->
            let lo = max 0 (a - p.locality) in
            let hi = min id (a + p.locality) in
            lo + Rng.int rng (max 1 (hi - lo))
        in
        if not (Hashtbl.mem chosen c) then begin
          Hashtbl.replace chosen c ();
          if !anchor = None then anchor := Some c;
          fanin := c :: !fanin
        end
      done;
      let fanin =
        match !fanin with
        | [] -> [ Rng.int rng id ]
        | l -> l
      in
      let kind = if List.length fanin = 1 then Gate.Not else kind in
      (kind, fanin)
    in
    let rec attempt k =
      let kind, fanin = draw () in
      let s = signature sigs kind fanin in
      if not (is_constant s) then (kind, fanin, s)
      else if k >= 20 then begin
        (* a NOT of a non-constant node is never constant *)
        Obs.incr c_redraw;
        let src = pick_fanin rng id in
        (Gate.Not, [ src ], signature sigs Gate.Not [ src ])
      end
      else begin
        Obs.incr c_redraw;
        attempt (k + 1)
      end
    in
    let kind, fanin, s = attempt 0 in
    sigs.(id) <- s;
    signals :=
      (Printf.sprintf "g%d" id,
       Netlist.Gate { kind; fanin = Array.of_list fanin })
      :: !signals
  done;
  let signals = List.rev !signals in
  let outputs = select_outputs p ~total ~signals in
  Netlist.build ~name:p.g_name ~signals
    ~outputs:(List.map (name_of p) outputs)

(* Layered shape: the gates are spread over a fixed number of layers and
   every gate anchors at least one fan-in in the immediately preceding
   layer (the rest draw from any earlier layer, preferring recent ones),
   so by induction a layer-[l] gate sits at logic level exactly [l].
   This pins the level-width profile — [n_gates / layers] gates per
   level — which is what the scale bench needs to exercise the levelized
   parallel schedule with realistic (wide, shallow) circuits at 100k+
   gates, where the organic preferential growth would produce a long
   thin tail instead. *)
let generate_layered ~c_redraw p ~layers =
  let rng = Rng.create p.seed in
  let total = p.n_inputs + p.n_gates in
  let layers = min layers p.n_gates in
  let signals = ref [] in
  for i = 0 to p.n_inputs - 1 do
    signals := (Printf.sprintf "pi%d" i, Netlist.Pi) :: !signals
  done;
  let sigs = Array.make_matrix total sig_words 0L in
  for i = 0 to p.n_inputs - 1 do
    for w = 0 to sig_words - 1 do
      sigs.(i).(w) <- Rng.next_int64 rng
    done
  done;
  (* layer l (0-based over gate layers) covers ids
     [start.(l), start.(l + 1)); layer -1 is the PIs *)
  let base = p.n_gates / layers and rem = p.n_gates mod layers in
  let start = Array.make (layers + 1) p.n_inputs in
  for l = 0 to layers - 1 do
    start.(l + 1) <- start.(l) + base + (if l < rem then 1 else 0)
  done;
  for l = 0 to layers - 1 do
    let prev_lo = if l = 0 then 0 else start.(l - 1) in
    let prev_hi = start.(l) in
    (* uniform over the previous layer, with locality kept for the
       backward draws so reconvergence stays neighbourhood-biased *)
    let pick_prev () = prev_lo + Rng.int rng (prev_hi - prev_lo) in
    let pick_back () =
      if Rng.int rng 100 < 15 then Rng.int rng prev_hi
      else begin
        let lo = max 0 (prev_hi - p.locality) in
        lo + Rng.int rng (prev_hi - lo)
      end
    in
    for id = start.(l) to start.(l + 1) - 1 do
      let draw () =
        let kind = Rng.pick rng gate_kinds in
        let arity = draw_arity rng p kind in
        let chosen = Hashtbl.create 4 in
        let fanin = ref [] in
        let attempts = ref 0 in
        while List.length !fanin < arity && !attempts < 50 do
          incr attempts;
          let c = if !fanin = [] then pick_prev () else pick_back () in
          if not (Hashtbl.mem chosen c) then begin
            Hashtbl.replace chosen c ();
            (* keep the anchor (previous-layer draw) first in the list:
               [fanin] accumulates by prepending, so append order is
               reversed below *)
            fanin := c :: !fanin
          end
        done;
        let fanin = List.rev !fanin in
        let fanin = match fanin with [] -> [ pick_prev () ] | l -> l in
        let kind = if List.length fanin = 1 then Gate.Not else kind in
        (kind, fanin)
      in
      let rec attempt k =
        let kind, fanin = draw () in
        let s = signature sigs kind fanin in
        if not (is_constant s) then (kind, fanin, s)
        else if k >= 20 then begin
          (* a NOT of a non-constant previous-layer node is never
             constant, and keeps the gate at level l + 1 *)
          Obs.incr c_redraw;
          let src = pick_prev () in
          (Gate.Not, [ src ], signature sigs Gate.Not [ src ])
        end
        else begin
          Obs.incr c_redraw;
          attempt (k + 1)
        end
      in
      let kind, fanin, s = attempt 0 in
      sigs.(id) <- s;
      signals :=
        (Printf.sprintf "g%d" id,
         Netlist.Gate { kind; fanin = Array.of_list fanin })
        :: !signals
    done
  done;
  let signals = List.rev !signals in
  let outputs = select_outputs p ~total ~signals in
  Netlist.build ~name:p.g_name ~signals
    ~outputs:(List.map (name_of p) outputs)

let generate ?(obs = Obs.disabled) p =
  check_params p;
  let c_redraw = Obs.counter obs "gen.redraws" in
  Obs.span obs (Obs.timer obs "gen.build") (fun () ->
      let nl =
        match p.shape with
        | Organic -> generate_organic ~c_redraw p
        | Layered { layers } -> generate_layered ~c_redraw p ~layers
      in
      Obs.add (Obs.counter obs "gen.gates") p.n_gates;
      Obs.add (Obs.counter obs "gen.pis") p.n_inputs;
      Obs.add (Obs.counter obs "gen.pos") p.n_outputs;
      nl)
