exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip s = String.trim s

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* "NAME ( a , b )" -> (NAME, [a; b]) *)
let parse_call lineno s =
  match String.index_opt s '(' with
  | None -> fail lineno "expected '(' in %S" s
  | Some lp ->
    let rp =
      match String.rindex_opt s ')' with
      | None -> fail lineno "missing ')' in %S" s
      | Some i -> i
    in
    if rp < lp then fail lineno "mismatched parentheses in %S" s;
    let fn = strip (String.sub s 0 lp) in
    let args = String.sub s (lp + 1) (rp - lp - 1) in
    let args =
      String.split_on_char ',' args |> List.map strip
      |> List.filter (fun a -> a <> "")
    in
    (fn, args)

let parse_string ~name text =
  let signals = ref [] in
  let gate_defs = ref [] in
  let outputs = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = strip (strip_comment raw) in
      if line <> "" then begin
        match String.index_opt line '=' with
        | Some eq ->
          let lhs = strip (String.sub line 0 eq) in
          let rhs =
            strip (String.sub line (eq + 1) (String.length line - eq - 1))
          in
          if lhs = "" then fail lineno "empty signal name";
          let fn, args = parse_call lineno rhs in
          (match Gate.of_string fn with
          | None -> fail lineno "unknown gate type %S" fn
          | Some kind ->
            if args = [] then fail lineno "gate %S has no inputs" lhs;
            gate_defs := (lineno, lhs, kind, args) :: !gate_defs)
        | None ->
          let fn, args = parse_call lineno line in
          (match (String.uppercase_ascii fn, args) with
          | "INPUT", [ a ] -> signals := (lineno, a) :: !signals
          | "OUTPUT", [ a ] -> outputs := a :: !outputs
          | "INPUT", _ | "OUTPUT", _ ->
            fail lineno "%s takes exactly one signal" fn
          | _ -> fail lineno "unknown directive %S" fn)
      end)
    lines;
  (* assign ids: PIs in order, then gates in order *)
  let pi_list = List.rev !signals in
  let gates = List.rev !gate_defs in
  let all_names =
    List.map (fun (ln, n) -> (ln, n)) pi_list
    @ List.map (fun (ln, n, _, _) -> (ln, n)) gates
  in
  let index = Hashtbl.create 64 in
  List.iteri
    (fun i (lineno, n) ->
      if Hashtbl.mem index n then
        fail lineno "signal %S is defined more than once" n;
      Hashtbl.add index n i)
    all_names;
  let resolve lineno s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None -> fail lineno "undefined signal %S" s
  in
  let signal_nodes =
    List.map (fun (_, n) -> (n, Netlist.Pi)) pi_list
    @ List.map
        (fun (lineno, n, kind, args) ->
          ( n,
            Netlist.Gate
              { kind; fanin = Array.of_list (List.map (resolve lineno) args) }
          ))
        gates
  in
  Netlist.build ~name ~signals:signal_nodes ~outputs:(List.rev !outputs)

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base text

let to_string nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.stats nl));
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "INPUT(%s)\n" (Netlist.signal_name nl i)))
    (Netlist.inputs nl);
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Netlist.signal_name nl i)))
    (Netlist.outputs nl);
  Netlist.iter_gates_topo nl ~f:(fun i kind fanin ->
      let args =
        Array.to_list fanin
        |> List.map (Netlist.signal_name nl)
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n"
           (Netlist.signal_name nl i)
           (Gate.to_string kind) args));
  Buffer.contents buf

let write_file nl path =
  let oc = open_out path in
  output_string oc (to_string nl);
  close_out oc
