type kind = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | _ -> None

let to_string = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUFF"

(* Dense integer tags for the structure-of-arrays netlist: the kind of
   every node packs into one int array entry instead of a boxed variant
   field.  [of_int] must invert [to_int] exactly. *)
let to_int = function
  | And -> 0
  | Nand -> 1
  | Or -> 2
  | Nor -> 3
  | Xor -> 4
  | Xnor -> 5
  | Not -> 6
  | Buf -> 7

let of_int = function
  | 0 -> And
  | 1 -> Nand
  | 2 -> Or
  | 3 -> Nor
  | 4 -> Xor
  | 5 -> Xnor
  | 6 -> Not
  | 7 -> Buf
  | n -> invalid_arg (Printf.sprintf "Gate.of_int: invalid tag %d" n)

let eval_fanin kind get n =
  let arity_one () =
    if n <> 1 then invalid_arg "Gate.eval: NOT/BUF take exactly one input"
  in
  let non_empty () =
    if n < 1 then invalid_arg "Gate.eval: gate with no inputs"
  in
  let rec all i = i >= n || (get i && all (i + 1)) in
  let rec any i = i < n && (get i || any (i + 1)) in
  let rec parity acc i =
    if i >= n then acc else parity (if get i then not acc else acc) (i + 1)
  in
  match kind with
  | Not ->
    arity_one ();
    not (get 0)
  | Buf ->
    arity_one ();
    get 0
  | And ->
    non_empty ();
    all 0
  | Nand ->
    non_empty ();
    not (all 0)
  | Or ->
    non_empty ();
    any 0
  | Nor ->
    non_empty ();
    not (any 0)
  | Xor ->
    non_empty ();
    parity false 0
  | Xnor ->
    non_empty ();
    not (parity false 0)

let eval kind inputs =
  let a = Array.of_list inputs in
  eval_fanin kind (Array.get a) (Array.length a)

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Xor | Xnor | Not | Buf -> None

let inverting = function
  | Nand | Nor | Not | Xnor -> true
  | And | Or | Xor | Buf -> false

let is_primitive = function
  | Nand | Nor | Not -> true
  | And | Or | Xor | Xnor | Buf -> false
