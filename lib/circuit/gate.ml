type kind = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | _ -> None

let to_string = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUFF"

let eval kind inputs =
  let arity_one () =
    match inputs with
    | [ v ] -> v
    | _ -> invalid_arg "Gate.eval: NOT/BUF take exactly one input"
  in
  let non_empty () =
    if inputs = [] then invalid_arg "Gate.eval: gate with no inputs"
  in
  match kind with
  | Not -> not (arity_one ())
  | Buf -> arity_one ()
  | And ->
    non_empty ();
    List.for_all Fun.id inputs
  | Nand ->
    non_empty ();
    not (List.for_all Fun.id inputs)
  | Or ->
    non_empty ();
    List.exists Fun.id inputs
  | Nor ->
    non_empty ();
    not (List.exists Fun.id inputs)
  | Xor ->
    non_empty ();
    List.fold_left (fun acc v -> if v then not acc else acc) false inputs
  | Xnor ->
    non_empty ();
    not (List.fold_left (fun acc v -> if v then not acc else acc) false inputs)

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Xor | Xnor | Not | Buf -> None

let inverting = function
  | Nand | Nor | Not | Xnor -> true
  | And | Or | Xor | Buf -> false

let is_primitive = function
  | Nand | Nor | Not -> true
  | And | Or | Xor | Xnor | Buf -> false
