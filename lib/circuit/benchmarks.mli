(** The benchmark suite used by the paper's Table 2.

    c17 is the genuine ISCAS85 netlist (6 NAND2 gates, embedded below);
    the five larger circuits are deterministic synthetic stand-ins with
    the real circuits' PI/PO/gate counts (see the substitution note in
    DESIGN.md) and carry an "s" suffix to make the substitution explicit. *)

val c17 : unit -> Netlist.t
(** The real ISCAS85 c17. *)

val c17_text : string
(** Embedded ".bench" source of c17. *)

val synthetic_suite : unit -> Netlist.t list
(** c880s, c1355s, c1908s, c3540s, c7552s. *)

val table2_suite : unit -> Netlist.t list
(** c17 followed by {!synthetic_suite} — the circuits evaluated in the
    Table 2 reproduction. *)

val by_name : string -> Netlist.t option
(** Lookup any suite member ("c17", "c880s", ...). *)

val names : string list
