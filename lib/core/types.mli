(** Shared value types for the delay models.

    All times are in seconds.  A [transition_in] describes one switching
    gate input; an [event] is the resulting output switching; a [win] is
    the STA min-max timing window (arrival interval plus transition-time
    interval) of one rise/fall transition on a line. *)

type transition_in = {
  pos : int;       (** input position (0 = closest to the output) *)
  arrival : float; (** 50 % crossing time *)
  t_tr : float;    (** 10–90 % transition time *)
}

type event = {
  e_arr : float;  (** output arrival time *)
  e_tt : float;   (** output transition time *)
}

type win = {
  w_arr : Ssd_util.Interval.t;
  w_tt : Ssd_util.Interval.t;
}

type win_in = {
  wpos : int;
  window : win;
}

val win_point : event -> win
(** Degenerate window at an exact event. *)

val pp_event : Format.formatter -> event -> unit
val pp_win : Format.formatter -> win -> unit
