type windowing = {
  ctl_window :
    ?cache:Eval_cache.t -> Ssd_cell.Charlib.cell -> fanout:int
    -> Types.win_in list -> Types.win;
  non_window :
    ?cache:Eval_cache.t -> Ssd_cell.Charlib.cell -> fanout:int
    -> Types.win_in list -> Types.win;
}

type t = {
  name : string;
  single_delay :
    Ssd_cell.Charlib.cell -> fanout:int -> pos:int -> t_in:float -> float;
  pair_delay :
    Ssd_cell.Charlib.cell -> fanout:int -> a:Types.transition_in
    -> b:Types.transition_in -> float;
  pair_out_tt :
    Ssd_cell.Charlib.cell -> fanout:int -> a:Types.transition_in
    -> b:Types.transition_in -> float;
  ctl_event :
    Ssd_cell.Charlib.cell -> fanout:int -> Types.transition_in list
    -> Types.event;
  non_event :
    Ssd_cell.Charlib.cell -> fanout:int -> Types.transition_in list
    -> Types.event;
  windowing : windowing option;
}

let proposed =
  {
    name = "proposed";
    single_delay =
      (fun cell ~fanout ~pos ~t_in ->
        Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos ~t_in);
    pair_delay = Vshape.pair_delay;
    pair_out_tt = Vshape.pair_out_tt;
    ctl_event = Vshape.ctl_event;
    non_event = Vshape.non_event;
    windowing =
      Some { ctl_window = Vshape.ctl_window; non_window = Vshape.non_window };
  }

let pin_to_pin =
  {
    name = "pin-to-pin";
    single_delay = Pin_to_pin.single_delay;
    pair_delay = Pin_to_pin.pair_delay;
    pair_out_tt = Pin_to_pin.pair_out_tt;
    ctl_event = Pin_to_pin.ctl_event;
    non_event = Pin_to_pin.non_event;
    windowing =
      Some
        {
          ctl_window = Pin_to_pin.ctl_window;
          non_window = Pin_to_pin.non_window;
        };
  }

let jun =
  {
    name = "jun";
    single_delay = Jun.single_delay;
    pair_delay = Jun.pair_delay;
    pair_out_tt = Jun.pair_out_tt;
    ctl_event = Jun.ctl_event;
    non_event = Jun.non_event;
    windowing = None;
  }

let nabavi =
  {
    name = "nabavi";
    single_delay = Nabavi.single_delay;
    pair_delay = Nabavi.pair_delay;
    pair_out_tt = Nabavi.pair_out_tt;
    ctl_event = Nabavi.ctl_event;
    non_event = Nabavi.non_event;
    windowing = None;
  }

let remap_cells ?name f m =
  {
    name = (match name with Some n -> n | None -> m.name);
    single_delay = (fun cell -> m.single_delay (f cell));
    pair_delay = (fun cell -> m.pair_delay (f cell));
    pair_out_tt = (fun cell -> m.pair_out_tt (f cell));
    ctl_event = (fun cell -> m.ctl_event (f cell));
    non_event = (fun cell -> m.non_event (f cell));
    windowing =
      Option.map
        (fun w ->
          {
            ctl_window = (fun ?cache cell -> w.ctl_window ?cache (f cell));
            non_window = (fun ?cache cell -> w.non_window ?cache (f cell));
          })
        m.windowing;
  }

let all = [ proposed; pin_to_pin; jun; nabavi ]

let find name = List.find_opt (fun m -> m.name = name) all
