module Charlib = Ssd_cell.Charlib
module Fit = Ssd_cell.Fit
module Interval = Ssd_util.Interval
open Types

let eps_skew = 1e-15

(* V-shape data in the caller's orientation: skew = A_b − A_a, right arm
   (positive saturation) = input a switching alone.  Returns
   (d0, sr, dr_right, syr, dr_left), all without the load correction. *)
let v_data cell ~pos_a ~pos_b ~t_a ~t_b =
  let pin pos t = Fit.eval1 (Cellfn.pin_edge cell Cellfn.Ctl ~pos).Charlib.delay t in
  let dr_right = pin pos_a t_a in
  let dr_left = pin pos_b t_b in
  match Charlib.find_pair cell pos_a pos_b with
  | None -> None
  | Some (pc, true) ->
    let d0 = Fit.eval2 pc.Charlib.d0 t_a t_b in
    let sr = Float.max (Fit.eval2 pc.Charlib.sr t_a t_b) eps_skew in
    let syr = Float.max (Fit.eval2 pc.Charlib.syr t_a t_b) eps_skew in
    Some (d0, sr, dr_right, syr, dr_left)
  | Some (pc, false) ->
    (* stored orientation is (pos_b, pos_a): the stored positive-skew arm is
       the caller's negative-skew arm *)
    let d0 = Fit.eval2 pc.Charlib.d0 t_b t_a in
    let syr = Float.max (Fit.eval2 pc.Charlib.sr t_b t_a) eps_skew in
    let sr = Float.max (Fit.eval2 pc.Charlib.syr t_b t_a) eps_skew in
    Some (d0, sr, dr_right, syr, dr_left)

let v_eval ~d0 ~sr ~dr_right ~syr ~dr_left skew =
  if skew >= sr then dr_right
  else if skew <= -.syr then dr_left
  else if skew >= 0. then d0 +. ((dr_right -. d0) *. skew /. sr)
  else d0 +. ((dr_left -. d0) *. -.skew /. syr)

let pair_delay_nocheck cell ~fanout ~(a : transition_in) ~(b : transition_in) =
  let skew = b.arrival -. a.arrival in
  match v_data cell ~pos_a:a.pos ~pos_b:b.pos ~t_a:a.t_tr ~t_b:b.t_tr with
  | Some (d0, sr, dr_right, syr, dr_left) ->
    v_eval ~d0 ~sr ~dr_right ~syr ~dr_left skew
    +. Cellfn.load_delta_delay cell ~fanout Cellfn.Ctl
  | None ->
    (* uncharacterized pair: pin-to-pin composition, measured from the
       earliest arrival *)
    let a_min = Float.min a.arrival b.arrival in
    let cand t =
      t.arrival -. a_min
      +. Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos:t.pos ~t_in:t.t_tr
    in
    Float.min (cand a) (cand b)

let pair_delay cell ~fanout ~a ~b =
  if a.pos = b.pos then invalid_arg "Vshape.pair_delay: identical positions";
  pair_delay_nocheck cell ~fanout ~a ~b

(* Output-transition V: vertex (sk_min, tt_min) with arms reaching the
   pin-to-pin transition times at the saturation skews. *)
let tt_v_data cell ~pos_a ~pos_b ~t_a ~t_b =
  let pin pos t =
    Fit.eval1 (Cellfn.pin_edge cell Cellfn.Ctl ~pos).Charlib.out_tt t
  in
  let tr_right = pin pos_a t_a in
  let tr_left = pin pos_b t_b in
  match Charlib.find_pair cell pos_a pos_b with
  | None -> None
  | Some (pc, direct) ->
    let ta, tb = if direct then (t_a, t_b) else (t_b, t_a) in
    let sr0 = Float.max (Fit.eval2 pc.Charlib.sr ta tb) eps_skew in
    let syr0 = Float.max (Fit.eval2 pc.Charlib.syr ta tb) eps_skew in
    let sk0 = Fit.eval2 pc.Charlib.tt_min_skew ta tb in
    let tmin = Fit.eval2 pc.Charlib.tt_min ta tb in
    let sr, syr, sk =
      if direct then (sr0, syr0, sk0) else (syr0, sr0, -.sk0)
    in
    let sk = Float.max (-.syr) (Float.min sr sk) in
    Some (sk, tmin, sr, tr_right, syr, tr_left)

let tt_v_eval ~sk ~tmin ~sr ~tr_right ~syr ~tr_left skew =
  if skew >= sr then tr_right
  else if skew <= -.syr then tr_left
  else if skew >= sk then begin
    let span = sr -. sk in
    if span <= eps_skew then tr_right
    else tmin +. ((tr_right -. tmin) *. (skew -. sk) /. span)
  end
  else begin
    let span = sk +. syr in
    if span <= eps_skew then tr_left
    else tmin +. ((tr_left -. tmin) *. (sk -. skew) /. span)
  end

let pair_out_tt cell ~fanout ~(a : transition_in) ~(b : transition_in) =
  if a.pos = b.pos then invalid_arg "Vshape.pair_out_tt: identical positions";
  let skew = b.arrival -. a.arrival in
  match tt_v_data cell ~pos_a:a.pos ~pos_b:b.pos ~t_a:a.t_tr ~t_b:b.t_tr with
  | Some (sk, tmin, sr, tr_right, syr, tr_left) ->
    tt_v_eval ~sk ~tmin ~sr ~tr_right ~syr ~tr_left skew
    +. Cellfn.load_delta_tt cell ~fanout Cellfn.Ctl
  | None ->
    (* uncharacterized: transition time of the earlier-responding pin *)
    let cand t =
      ( t.arrival
        +. Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos:t.pos ~t_in:t.t_tr,
        Cellfn.pin_out_tt cell ~fanout Cellfn.Ctl ~pos:t.pos ~t_in:t.t_tr )
    in
    let aa, ta = cand a and ab, tb = cand b in
    if aa <= ab then ta else tb

let v_points cell ~fanout ~pos_a ~pos_b ~t_a ~t_b =
  match v_data cell ~pos_a ~pos_b ~t_a ~t_b with
  | None -> invalid_arg "Vshape.v_points: pair not characterized"
  | Some (d0, sr, dr_right, syr, dr_left) ->
    let dl = Cellfn.load_delta_delay cell ~fanout Cellfn.Ctl in
    ((-.syr, dr_left +. dl), (0., d0 +. dl), (sr, dr_right +. dl))

(* ----- point events ---------------------------------------------------- *)

let ctl_event cell ~fanout transitions =
  match transitions with
  | [] -> invalid_arg "Vshape.ctl_event: no transitions"
  | _ ->
    let a_min =
      List.fold_left (fun m t -> Float.min m t.arrival) infinity transitions
    in
    (* single-input candidates *)
    let singles =
      List.map
        (fun t ->
          ( t.arrival
            +. Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos:t.pos
                 ~t_in:t.t_tr,
            Cellfn.pin_out_tt cell ~fanout Cellfn.Ctl ~pos:t.pos ~t_in:t.t_tr
          ))
        transitions
    in
    (* pair candidates *)
    let rec pairs acc = function
      | [] -> acc
      | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              if a.pos = b.pos then acc
              else begin
                let base = Float.min a.arrival b.arrival in
                let arr = base +. pair_delay_nocheck cell ~fanout ~a ~b in
                let tt = pair_out_tt cell ~fanout ~a ~b in
                (arr, tt) :: acc
              end)
            acc rest
        in
        pairs acc rest
    in
    let cands = pairs singles transitions in
    (* k >= 3 refinement via the tied characterization: when at least three
       transitions land within the leading pair's saturation window, the
       extra charge paths speed the gate up beyond any pair's V-shape. *)
    let cands =
      let sorted =
        List.sort (fun x y -> Float.compare x.arrival y.arrival) transitions
      in
      match sorted with
      | t1 :: t2 :: _ :: _ -> (
        match v_data cell ~pos_a:t1.pos ~pos_b:t2.pos ~t_a:t1.t_tr ~t_b:t2.t_tr with
        | None -> cands
        | Some (d0, sr, dr_right, _, _) ->
          let inside =
            List.filter (fun t -> t.arrival -. a_min <= sr) sorted
          in
          let k = List.length inside in
          if k < 3 then cands
          else begin
            let fk = float_of_int k in
            let t_mean =
              List.fold_left (fun s t -> s +. t.t_tr) 0. inside /. fk
            in
            let spread =
              List.fold_left (fun s t -> s +. (t.arrival -. a_min)) 0. inside
              /. fk
            in
            let slope = (dr_right -. d0) /. sr in
            let arr =
              a_min
              +. Cellfn.tied_delay cell ~fanout ~k ~t_in:t_mean
              +. (spread *. slope)
            in
            let tt = Cellfn.tied_out_tt cell ~fanout ~k ~t_in:t_mean in
            (arr, tt) :: cands
          end)
      | _ -> cands
    in
    let e_arr, e_tt =
      List.fold_left
        (fun (ba, bt) (a, t) -> if a < ba then (a, t) else (ba, bt))
        (List.hd cands) (List.tl cands)
    in
    { e_arr; e_tt }

let non_event cell ~fanout transitions =
  match transitions with
  | [] -> invalid_arg "Vshape.non_event: no transitions"
  | _ ->
    List.fold_left
      (fun best t ->
        let arr =
          t.arrival
          +. Cellfn.pin_delay cell ~fanout Cellfn.Non ~pos:t.pos ~t_in:t.t_tr
        in
        let tt =
          Cellfn.pin_out_tt cell ~fanout Cellfn.Non ~pos:t.pos ~t_in:t.t_tr
        in
        match best with
        | Some e when e.e_arr >= arr -> Some e
        | Some _ | None -> Some { e_arr = arr; e_tt = tt })
      None transitions
    |> Option.get

(* ----- window transfer functions (STA, Section 4.2) -------------------- *)

let ctl_window ?cache cell ~fanout wins =
  match wins with
  | [] -> invalid_arg "Vshape.ctl_window: no inputs"
  | _ ->
    let resp = Cellfn.Ctl in
    (* earliest output arrival: singles plus both-earliest pairs, with the
       four {S, L} transition-time corner combinations (paper formula) *)
    let single_min w =
      Interval.lo w.window.w_arr
      +. snd
           (Eval_cache.min_delay_over_opt cache cell ~fanout resp ~pos:w.wpos
              w.window.w_tt)
    in
    let pair_min (wa : win_in) (wb : win_in) =
      let a_s = Interval.lo wa.window.w_arr in
      let b_s = Interval.lo wb.window.w_arr in
      let combos =
        List.concat_map
          (fun ta ->
            List.map
              (fun tb ->
                pair_delay_nocheck cell ~fanout
                  ~a:{ pos = wa.wpos; arrival = a_s; t_tr = ta }
                  ~b:{ pos = wb.wpos; arrival = b_s; t_tr = tb })
              [ Interval.lo wb.window.w_tt; Interval.hi wb.window.w_tt ])
          [ Interval.lo wa.window.w_tt; Interval.hi wa.window.w_tt ]
      in
      Float.min a_s b_s +. List.fold_left Float.min infinity combos
    in
    let rec pair_mins acc = function
      | [] -> acc
      | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              if a.wpos = b.wpos then acc else pair_min a b :: acc)
            acc rest
        in
        pair_mins acc rest
    in
    let a_s_cands = pair_mins (List.map single_min wins) wins in
    let a_s = List.fold_left Float.min infinity a_s_cands in
    (* the >2-simultaneous extension can undercut every pair candidate, so
       the earliest bound must also cover the tied-k floor: all inputs at
       their earliest arrivals with the delay minimized over the combined
       transition-time span *)
    let a_s =
      let n_present = List.length wins in
      if n_present < 3 then a_s
      else begin
        let a_min =
          List.fold_left
            (fun acc w -> Float.min acc (Interval.lo w.Types.window.w_arr))
            infinity wins
        in
        let t_iv =
          List.fold_left
            (fun acc w -> Interval.hull acc w.Types.window.w_tt)
            (List.hd wins).Types.window.w_tt wins
        in
        let rec fold k acc =
          if k > n_present then acc
          else
            fold (k + 1)
              (Float.min acc
                 (a_min
                 +. Eval_cache.min_tied_delay_over_opt cache cell ~fanout ~k
                      t_iv))
        in
        fold 3 a_s
      end
    in
    (* latest output arrival: a lagging δ-simultaneous transition cannot slow
       a to-controlling response, so the worst case is a single switch with
       the delay-maximizing transition time (Figure 9) *)
    let a_l =
      List.fold_left
        (fun acc w ->
          Float.max acc
            (Interval.hi w.window.w_arr
            +. snd
                 (Eval_cache.max_delay_over_opt cache cell ~fanout resp
                    ~pos:w.wpos w.window.w_tt)))
        neg_infinity wins
    in
    let a_l = Float.max a_l a_s in
    (* transition-time extremes *)
    let t_s_single w =
      snd
        (Eval_cache.min_tt_over_opt cache cell ~fanout resp ~pos:w.wpos
           w.window.w_tt)
    in
    let t_s_pair (wa : win_in) (wb : win_in) =
      (* feasible skew interval given both arrival windows *)
      let f_lo =
        Interval.lo wb.window.w_arr -. Interval.hi wa.window.w_arr
      in
      let f_hi =
        Interval.hi wb.window.w_arr -. Interval.lo wa.window.w_arr
      in
      let t_a = Interval.lo wa.window.w_tt in
      let t_b = Interval.lo wb.window.w_tt in
      match
        tt_v_data cell ~pos_a:wa.wpos ~pos_b:wb.wpos ~t_a ~t_b
      with
      | None -> infinity
      | Some (sk, tmin, sr, tr_right, syr, tr_left) ->
        (* the V attains its minimum at the feasible skew closest to the
           vertex (the paper's SK_{t,R,min} rule) *)
        let skew = Float.max f_lo (Float.min f_hi sk) in
        tt_v_eval ~sk ~tmin ~sr ~tr_right ~syr ~tr_left skew
        +. Cellfn.load_delta_tt cell ~fanout resp
    in
    let rec tt_pair_mins acc = function
      | [] -> acc
      | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              if a.wpos = b.wpos then acc else t_s_pair a b :: acc)
            acc rest
        in
        tt_pair_mins acc rest
    in
    let t_s_cands = tt_pair_mins (List.map t_s_single wins) wins in
    let t_s = List.fold_left Float.min infinity t_s_cands in
    (* tied-k floor for the output transition time, mirroring the arrival
       bound above *)
    let t_s =
      let n_present = List.length wins in
      if n_present < 3 then t_s
      else begin
        let t_iv =
          List.fold_left
            (fun acc w -> Interval.hull acc w.Types.window.w_tt)
            (List.hd wins).Types.window.w_tt wins
        in
        let rec fold k acc =
          if k > n_present then acc
          else
            fold (k + 1)
              (Float.min acc
                 (Eval_cache.min_tied_tt_over_opt cache cell ~fanout ~k t_iv))
        in
        fold 3 t_s
      end
    in
    let t_l =
      List.fold_left
        (fun acc w ->
          Float.max acc
            (snd
               (Eval_cache.max_tt_over_opt cache cell ~fanout resp ~pos:w.wpos
                  w.window.w_tt)))
        neg_infinity wins
    in
    let t_l = Float.max t_l t_s in
    { w_arr = Interval.make a_s a_l; w_tt = Interval.make t_s t_l }

let non_window ?cache cell ~fanout wins =
  match wins with
  | [] -> invalid_arg "Vshape.non_window: no inputs"
  | _ ->
    let resp = Cellfn.Non in
    let a_s =
      List.fold_left
        (fun acc w ->
          Float.min acc
            (Interval.lo w.window.w_arr
            +. snd
                 (Eval_cache.min_delay_over_opt cache cell ~fanout resp
                    ~pos:w.wpos w.window.w_tt)))
        infinity wins
    in
    let a_l =
      List.fold_left
        (fun acc w ->
          Float.max acc
            (Interval.hi w.window.w_arr
            +. snd
                 (Eval_cache.max_delay_over_opt cache cell ~fanout resp
                    ~pos:w.wpos w.window.w_tt)))
        neg_infinity wins
    in
    let t_s =
      List.fold_left
        (fun acc w ->
          Float.min acc
            (snd
               (Eval_cache.min_tt_over_opt cache cell ~fanout resp ~pos:w.wpos
                  w.window.w_tt)))
        infinity wins
    in
    let t_l =
      List.fold_left
        (fun acc w ->
          Float.max acc
            (snd
               (Eval_cache.max_tt_over_opt cache cell ~fanout resp ~pos:w.wpos
                  w.window.w_tt)))
        neg_infinity wins
    in
    {
      w_arr = Interval.make a_s (Float.max a_s a_l);
      w_tt = Interval.make t_s (Float.max t_s t_l);
    }
