module Charlib = Ssd_cell.Charlib
module Fit = Ssd_cell.Fit
module Func1d = Ssd_util.Func1d

type response = Ctl | Non

let load_delta_delay (cell : Charlib.cell) ~fanout resp =
  let slope =
    match resp with
    | Ctl -> cell.Charlib.load_d_ctl
    | Non -> cell.Charlib.load_d_non
  in
  slope *. float_of_int (fanout - cell.Charlib.ref_fanout)

let load_delta_tt (cell : Charlib.cell) ~fanout resp =
  let slope =
    match resp with
    | Ctl -> cell.Charlib.load_t_ctl
    | Non -> cell.Charlib.load_t_non
  in
  slope *. float_of_int (fanout - cell.Charlib.ref_fanout)

let pin_edge (cell : Charlib.cell) resp ~pos =
  if pos < 0 || pos >= cell.Charlib.n then
    invalid_arg
      (Printf.sprintf "Cellfn.pin_edge: position %d out of range (n=%d)" pos
         cell.Charlib.n);
  match resp with
  | Ctl -> cell.Charlib.to_ctl.(pos)
  | Non -> cell.Charlib.to_non.(pos)

let pin_delay cell ~fanout resp ~pos ~t_in =
  Fit.eval1 (pin_edge cell resp ~pos).Charlib.delay t_in
  +. load_delta_delay cell ~fanout resp

let pin_out_tt cell ~fanout resp ~pos ~t_in =
  Fit.eval1 (pin_edge cell resp ~pos).Charlib.out_tt t_in
  +. load_delta_tt cell ~fanout resp

let tied_edge (cell : Charlib.cell) ~k =
  if k < 1 || k > cell.Charlib.n then
    invalid_arg "Cellfn.tied_edge: bad k";
  cell.Charlib.tied_ctl.(k - 1)

let tied_delay cell ~fanout ~k ~t_in =
  Fit.eval1 (tied_edge cell ~k).Charlib.delay t_in
  +. load_delta_delay cell ~fanout Ctl

let tied_out_tt cell ~fanout ~k ~t_in =
  Fit.eval1 (tied_edge cell ~k).Charlib.out_tt t_in
  +. load_delta_tt cell ~fanout Ctl

(* Extremize a fitted pin curve over a transition-time interval: the two
   endpoints plus — when the fit is bi-tonic — the interior peak (Figure 9).
   The load correction is a constant shift and cannot move the extremum, so
   it is added afterwards. *)
let extremize which sel cell resp ~pos iv =
  let fit1 = sel (pin_edge cell resp ~pos) in
  let shape = Fit.shape1 fit1 in
  let f t = Fit.eval1 fit1 t in
  match which with
  | `Min -> Func1d.min_over shape f iv
  | `Max -> Func1d.max_over shape f iv

let delay_sel e = e.Charlib.delay
let tt_sel e = e.Charlib.out_tt

let corner which curve cell resp ~pos iv =
  let sel = match curve with `Delay -> delay_sel | `Tt -> tt_sel in
  extremize which sel cell resp ~pos iv

let tied_corner curve cell ~k iv =
  let fit1 =
    match curve with
    | `Delay -> (tied_edge cell ~k).Charlib.delay
    | `Tt -> (tied_edge cell ~k).Charlib.out_tt
  in
  Func1d.min_over (Fit.shape1 fit1) (Fit.eval1 fit1) iv

let with_load_delay cell ~fanout resp (t, v) =
  (t, v +. load_delta_delay cell ~fanout resp)

let with_load_tt cell ~fanout resp (t, v) =
  (t, v +. load_delta_tt cell ~fanout resp)

let min_delay_over cell ~fanout resp ~pos iv =
  with_load_delay cell ~fanout resp (extremize `Min delay_sel cell resp ~pos iv)

let max_delay_over cell ~fanout resp ~pos iv =
  with_load_delay cell ~fanout resp (extremize `Max delay_sel cell resp ~pos iv)

let min_tt_over cell ~fanout resp ~pos iv =
  with_load_tt cell ~fanout resp (extremize `Min tt_sel cell resp ~pos iv)

let max_tt_over cell ~fanout resp ~pos iv =
  with_load_tt cell ~fanout resp (extremize `Max tt_sel cell resp ~pos iv)

let min_tied_delay_over cell ~fanout ~k iv =
  let _, v = tied_corner `Delay cell ~k iv in
  v +. load_delta_delay cell ~fanout Ctl

let min_tied_tt_over cell ~fanout ~k iv =
  let _, v = tied_corner `Tt cell ~k iv in
  v +. load_delta_tt cell ~fanout Ctl
