open Types

let single_delay cell ~fanout ~pos:_ ~t_in =
  Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos:0 ~t_in

let single_out_tt cell ~fanout ~t_in =
  Cellfn.pin_out_tt cell ~fanout Cellfn.Ctl ~pos:0 ~t_in

(* Zero-skew delay from the collapsed equivalent inverter: both switching
   transistors in parallel, driven by a ramp with the averaged transition
   time. *)
let collapsed_d0 cell ~fanout ~t_a ~t_b =
  let t_eq = 0.5 *. (t_a +. t_b) in
  if cell.Ssd_cell.Charlib.n >= 2 then
    Cellfn.tied_delay cell ~fanout ~k:2 ~t_in:t_eq
  else Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos:0 ~t_in:t_eq

let collapsed_t0 cell ~fanout ~t_a ~t_b =
  let t_eq = 0.5 *. (t_a +. t_b) in
  if cell.Ssd_cell.Charlib.n >= 2 then
    Cellfn.tied_out_tt cell ~fanout ~k:2 ~t_in:t_eq
  else Cellfn.pin_out_tt cell ~fanout Cellfn.Ctl ~pos:0 ~t_in:t_eq

(* The skew scale over which Jun's polynomial transitions between the
   overlapped and separated regimes: the averaged input transition time.
   Crucially there is no clamp at the pin-to-pin delay — the model keeps
   extrapolating linearly for large skews. *)
let pair_delay cell ~fanout ~(a : transition_in) ~(b : transition_in) =
  let skew = Float.abs (b.arrival -. a.arrival) in
  let d0 = collapsed_d0 cell ~fanout ~t_a:a.t_tr ~t_b:b.t_tr in
  let lead = if b.arrival >= a.arrival then a else b in
  let d_lead = single_delay cell ~fanout ~pos:lead.pos ~t_in:lead.t_tr in
  let sr_jun = Float.max (0.5 *. (a.t_tr +. b.t_tr)) 1e-12 in
  d0 +. (skew *. (d_lead -. d0) /. sr_jun)

let pair_out_tt cell ~fanout ~(a : transition_in) ~(b : transition_in) =
  let skew = Float.abs (b.arrival -. a.arrival) in
  let t0 = collapsed_t0 cell ~fanout ~t_a:a.t_tr ~t_b:b.t_tr in
  let lead = if b.arrival >= a.arrival then a else b in
  let t_lead = single_out_tt cell ~fanout ~t_in:lead.t_tr in
  let sr_jun = Float.max (0.5 *. (a.t_tr +. b.t_tr)) 1e-12 in
  t0 +. (skew *. (t_lead -. t0) /. sr_jun)

let ctl_event cell ~fanout transitions =
  match transitions with
  | [] -> invalid_arg "Jun.ctl_event: no transitions"
  | [ t ] ->
    {
      e_arr = t.arrival +. single_delay cell ~fanout ~pos:t.pos ~t_in:t.t_tr;
      e_tt = single_out_tt cell ~fanout ~t_in:t.t_tr;
    }
  | t1 :: t2 :: _ ->
    let base = Float.min t1.arrival t2.arrival in
    {
      e_arr = base +. pair_delay cell ~fanout ~a:t1 ~b:t2;
      e_tt = pair_out_tt cell ~fanout ~a:t1 ~b:t2;
    }

let non_event cell ~fanout transitions =
  match transitions with
  | [] -> invalid_arg "Jun.non_event: no transitions"
  | _ ->
    List.fold_left
      (fun best t ->
        let arr =
          t.arrival
          +. Cellfn.pin_delay cell ~fanout Cellfn.Non ~pos:0 ~t_in:t.t_tr
        in
        let tt = Cellfn.pin_out_tt cell ~fanout Cellfn.Non ~pos:0 ~t_in:t.t_tr in
        match best with
        | Some e when e.e_arr >= arr -> Some e
        | Some _ | None -> Some { e_arr = arr; e_tt = tt })
      None transitions
    |> Option.get
