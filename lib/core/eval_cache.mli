(** Memo table for the interval corner searches of {!Cellfn}.

    The window transfer functions re-run the same
    [min_delay_over] / [max_delay_over] / [min_tt_over] / [max_tt_over]
    (and tied-k) searches for every gate instance of the same cell: on a
    levelized netlist most gates at a given depth see the same handful of
    transition-time windows, so the corner search results repeat
    massively.  This cache keys the load-free kernel on
    (cell identity, search, response, position, tt-interval) and replays
    the stored extremum; the linear load correction — a constant shift
    that cannot move the extremum — is applied per call, which also
    keeps the table independent of each instance's fanout.

    Cell identity is physical: each distinct cell record seen by the
    cache gets its own key-space partition.  (kind, n) alone would alias
    corner-derated twins — same NAND2 shape, different coefficients —
    which one engine session walks through under {!Ssd_sta.Engine}
    [Set_model] retargets and Monte-Carlo sweeps; with identity in the
    key a retargeted session can never replay a stale corner-search hit
    from a previous model.

    The table is sharded and mutex-protected: safe to share across the
    {!Ssd_sta.Par} worker domains.  Because the cached kernel is pure and
    (at the default [quantum = 0.]) keys carry the exact float bits,
    results are bit-identical to the uncached engine regardless of
    evaluation order — sequential, parallel, cached and uncached analyses
    all agree bit for bit. *)

type t

val create : ?shards:int -> ?quantum:float -> unit -> t
(** [shards] (default 16) controls lock granularity.  [quantum]
    (default [0.] = exact keys) optionally snaps interval keys outward
    onto a grid of that pitch in seconds: nearby intervals then share an
    entry whose value is evaluated on the widened interval, trading a
    deterministic, conservative over-approximation for a higher hit
    rate.  @raise Invalid_argument on a non-positive shard count or a
    negative/non-finite quantum. *)

val hits : t -> int
val misses : t -> int
(** Lifetime counters (atomic; approximate only in their interleaving). *)

val entries : t -> int
(** Distinct memoized keys across all shards (takes each shard lock
    briefly). *)

type stats = {
  s_hits : int;
  s_misses : int;
  s_entries : int;  (** distinct memoized keys at snapshot time *)
}
(** A consistent-enough snapshot of the lifetime counters (each field is
    read atomically; the trio is not taken under one lock). *)

val stats : t -> stats
(** Snapshot the counters and the entry count. *)

val hit_ratio : stats -> float
(** Hits over total lookups, percent; [0.] before any lookup. *)

val to_string : stats -> string
(** One-line summary — hits, misses, hit ratio, entry count — used by
    the [--stats] reports and the [parsta] bench. *)

(** Cached drop-in equivalents of the {!Cellfn} searches. *)

val min_delay_over : t -> Ssd_cell.Charlib.cell -> fanout:int
  -> Cellfn.response -> pos:int -> Ssd_util.Interval.t -> float * float

val max_delay_over : t -> Ssd_cell.Charlib.cell -> fanout:int
  -> Cellfn.response -> pos:int -> Ssd_util.Interval.t -> float * float

val min_tt_over : t -> Ssd_cell.Charlib.cell -> fanout:int
  -> Cellfn.response -> pos:int -> Ssd_util.Interval.t -> float * float

val max_tt_over : t -> Ssd_cell.Charlib.cell -> fanout:int
  -> Cellfn.response -> pos:int -> Ssd_util.Interval.t -> float * float

val min_tied_delay_over : t -> Ssd_cell.Charlib.cell -> fanout:int
  -> k:int -> Ssd_util.Interval.t -> float

val min_tied_tt_over : t -> Ssd_cell.Charlib.cell -> fanout:int
  -> k:int -> Ssd_util.Interval.t -> float

(** Dispatchers for call sites that thread an optional cache: [None]
    falls through to the direct {!Cellfn} search. *)

val min_delay_over_opt : t option -> Ssd_cell.Charlib.cell -> fanout:int
  -> Cellfn.response -> pos:int -> Ssd_util.Interval.t -> float * float

val max_delay_over_opt : t option -> Ssd_cell.Charlib.cell -> fanout:int
  -> Cellfn.response -> pos:int -> Ssd_util.Interval.t -> float * float

val min_tt_over_opt : t option -> Ssd_cell.Charlib.cell -> fanout:int
  -> Cellfn.response -> pos:int -> Ssd_util.Interval.t -> float * float

val max_tt_over_opt : t option -> Ssd_cell.Charlib.cell -> fanout:int
  -> Cellfn.response -> pos:int -> Ssd_util.Interval.t -> float * float

val min_tied_delay_over_opt : t option -> Ssd_cell.Charlib.cell
  -> fanout:int -> k:int -> Ssd_util.Interval.t -> float

val min_tied_tt_over_opt : t option -> Ssd_cell.Charlib.cell
  -> fanout:int -> k:int -> Ssd_util.Interval.t -> float
