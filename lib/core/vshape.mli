(** The paper's proposed delay model (Section 3).

    The to-controlling gate delay of two δ-simultaneous transitions is a
    V-shape in the skew δ = A_b − A_a, anchored at (−SYR, D_YR),
    (0, D0R), (SR, D_R); outside the saturation skews the delay equals
    the pin-to-pin delay of the leading input alone.  The output
    transition time is an analogous V whose vertex may sit at a non-zero
    skew SK_{t,min}.

    Extension to more than two simultaneous transitions (Section 3.6 /
    [9]): the output event is the earliest over all single-input and
    pair-wise candidates, refined by the tied-k characterization when
    three or more transitions fall inside the saturation window. *)

val eps_skew : float
(** Floor applied to fitted saturation skews before dividing by them;
    shared with the batched kernel ({!Corner_batch}) so both paths
    degenerate identically. *)

val pair_delay : Ssd_cell.Charlib.cell -> fanout:int
  -> a:Types.transition_in -> b:Types.transition_in -> float
(** Delay of the to-controlling response measured from min(A_a, A_b).
    Falls back to pin-to-pin composition when the (a, b) position pair was
    not characterized. *)

val pair_out_tt : Ssd_cell.Charlib.cell -> fanout:int
  -> a:Types.transition_in -> b:Types.transition_in -> float

val v_points : Ssd_cell.Charlib.cell -> fanout:int -> pos_a:int -> pos_b:int
  -> t_a:float -> t_b:float
  -> (float * float) * (float * float) * (float * float)
(** The three anchor points ((−SYR, D_YR), (0, D0R), (SR, D_R)) of the
    delay V for the given transition times — Figure 2's annotated
    coordinates, used by benches and tests. *)

val ctl_event : Ssd_cell.Charlib.cell -> fanout:int
  -> Types.transition_in list -> Types.event
(** Output event for one or more to-controlling transitions. *)

val non_event : Ssd_cell.Charlib.cell -> fanout:int
  -> Types.transition_in list -> Types.event
(** To-non-controlling response: the paper keeps pin-to-pin composition
    (latest input + its pin delay). *)

(** {2 Window transfer functions (Section 4.2)}

    [cache] memoizes the per-cell corner searches across gate instances
    (see {!Eval_cache}); omitting it recomputes every search. *)

val ctl_window : ?cache:Eval_cache.t -> Ssd_cell.Charlib.cell -> fanout:int
  -> Types.win_in list -> Types.win

val non_window : ?cache:Eval_cache.t -> Ssd_cell.Charlib.cell -> fanout:int
  -> Types.win_in list -> Types.win
