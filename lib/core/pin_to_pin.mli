(** SDF-style pin-to-pin delay model (the paper's baseline for STA).

    Position-aware pin delays, but no simultaneous-switching speed-up: the
    to-controlling response is the earliest single-pin composition. *)

val single_delay : Ssd_cell.Charlib.cell -> fanout:int -> pos:int
  -> t_in:float -> float

val ctl_event : Ssd_cell.Charlib.cell -> fanout:int
  -> Types.transition_in list -> Types.event

val non_event : Ssd_cell.Charlib.cell -> fanout:int
  -> Types.transition_in list -> Types.event

val pair_delay : Ssd_cell.Charlib.cell -> fanout:int
  -> a:Types.transition_in -> b:Types.transition_in -> float
(** min-arrival-referenced delay ignoring the speed-up. *)

val pair_out_tt : Ssd_cell.Charlib.cell -> fanout:int
  -> a:Types.transition_in -> b:Types.transition_in -> float

val ctl_window : ?cache:Eval_cache.t -> Ssd_cell.Charlib.cell -> fanout:int
  -> Types.win_in list -> Types.win

val non_window : ?cache:Eval_cache.t -> Ssd_cell.Charlib.cell -> fanout:int
  -> Types.win_in list -> Types.win
