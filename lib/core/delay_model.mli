(** Unified delay-model interface.

    A [t] packages the point evaluations every model provides; models that
    additionally support worst-case corner identification (the paper's
    sufficient condition: all timing functions monotonic or bi-tonic in
    each variable) also carry window transfer functions and can drive
    STA/ITR. *)

type windowing = {
  ctl_window :
    ?cache:Eval_cache.t -> Ssd_cell.Charlib.cell -> fanout:int
    -> Types.win_in list -> Types.win;
  non_window :
    ?cache:Eval_cache.t -> Ssd_cell.Charlib.cell -> fanout:int
    -> Types.win_in list -> Types.win;
}
(** Window transfer functions; [cache] (optional everywhere) memoizes the
    per-cell corner searches across gate instances, see {!Eval_cache}. *)

type t = {
  name : string;
  single_delay :
    Ssd_cell.Charlib.cell -> fanout:int -> pos:int -> t_in:float -> float;
      (** to-controlling pin delay of a lone switching input *)
  pair_delay :
    Ssd_cell.Charlib.cell -> fanout:int -> a:Types.transition_in
    -> b:Types.transition_in -> float;
      (** simultaneous to-controlling delay from min(A_a, A_b) *)
  pair_out_tt :
    Ssd_cell.Charlib.cell -> fanout:int -> a:Types.transition_in
    -> b:Types.transition_in -> float;
  ctl_event :
    Ssd_cell.Charlib.cell -> fanout:int -> Types.transition_in list
    -> Types.event;
  non_event :
    Ssd_cell.Charlib.cell -> fanout:int -> Types.transition_in list
    -> Types.event;
  windowing : windowing option;
}

val proposed : t
(** The paper's V-shape model (window-capable). *)

val pin_to_pin : t
(** SDF-style baseline (window-capable). *)

val jun : t
(** Equivalent-inverter baseline [6]; point evaluation only. *)

val nabavi : t
(** Inverter-model baseline [18]; point evaluation only. *)

val remap_cells : ?name:string -> (Ssd_cell.Charlib.cell -> Ssd_cell.Charlib.cell) -> t -> t
(** [remap_cells f m] evaluates [m] through [f]-substituted cells: every
    entry point applies [f] to its cell argument first.  The corner and
    Monte-Carlo paths use it to retarget a resident session onto a
    derated twin library ([f = Corners.remap_of_library lib']) without
    rebuilding the session — the netlist keeps resolving cells against
    the nominal library.  [name] defaults to [m]'s. *)

val all : t list
val find : string -> t option
(** Lookup by [name]. *)
