(** Nabavi-Lishi-style inverter-model baseline ([18] in the paper).

    Reimplemented from the failure modes documented in the paper: the gate
    collapses into an equivalent inverter whose input is derived assuming
    all transitions share the same {e start} time.  Accurate when the
    transition times match and the starts align; degrades when transition
    times differ (Figure 11) and is insensitive to the actual skew
    (Figure 12).  Input positions are ignored (Figure 10). *)

val single_delay : Ssd_cell.Charlib.cell -> fanout:int -> pos:int
  -> t_in:float -> float
(** Position-blind: always the position-0 characterization. *)

val pair_delay : Ssd_cell.Charlib.cell -> fanout:int
  -> a:Types.transition_in -> b:Types.transition_in -> float

val pair_out_tt : Ssd_cell.Charlib.cell -> fanout:int
  -> a:Types.transition_in -> b:Types.transition_in -> float

val ctl_event : Ssd_cell.Charlib.cell -> fanout:int
  -> Types.transition_in list -> Types.event

val non_event : Ssd_cell.Charlib.cell -> fanout:int
  -> Types.transition_in list -> Types.event
