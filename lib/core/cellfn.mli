(** Shared helpers over characterized cells: pin-to-pin curve evaluation
    with load adjustment, and interval extremization of the (possibly
    bi-tonic) fitted curves — the paper's Figure 9 corner search. *)

type response = Ctl | Non
(** To-controlling vs. to-non-controlling output response. *)

val load_delta_delay : Ssd_cell.Charlib.cell -> fanout:int -> response -> float
(** Linear load correction added to every delay (paper Section 3.6:
    "delay increases linearly as load increases"). *)

val load_delta_tt : Ssd_cell.Charlib.cell -> fanout:int -> response -> float

val pin_edge : Ssd_cell.Charlib.cell -> response -> pos:int
  -> Ssd_cell.Charlib.edge_char
(** The characterized pin curves; @raise Invalid_argument on a bad
    position. *)

val pin_delay : Ssd_cell.Charlib.cell -> fanout:int -> response -> pos:int
  -> t_in:float -> float
val pin_out_tt : Ssd_cell.Charlib.cell -> fanout:int -> response -> pos:int
  -> t_in:float -> float

val tied_delay : Ssd_cell.Charlib.cell -> fanout:int -> k:int -> t_in:float
  -> float
(** Delay when the first [k] inputs switch to-controlling together. *)

val tied_out_tt : Ssd_cell.Charlib.cell -> fanout:int -> k:int -> t_in:float
  -> float

val min_tied_delay_over : Ssd_cell.Charlib.cell -> fanout:int -> k:int
  -> Ssd_util.Interval.t -> float
(** Minimum of the k-inputs-tied delay over a transition-time interval,
    honouring the fitted shape — the lower bound the window transfer
    functions need so the >2-simultaneous extension stays sound. *)

val min_tied_tt_over : Ssd_cell.Charlib.cell -> fanout:int -> k:int
  -> Ssd_util.Interval.t -> float
(** Same for the tied output transition time. *)

val corner : [ `Min | `Max ] -> [ `Delay | `Tt ]
  -> Ssd_cell.Charlib.cell -> response -> pos:int -> Ssd_util.Interval.t
  -> float * float
(** Load-free corner search over a pin curve: [(t_best, extremum)]
    without the linear load correction (a constant shift that cannot move
    the extremum).  Building block for {!Eval_cache}; the [*_over]
    functions below add the load term. *)

val tied_corner : [ `Delay | `Tt ] -> Ssd_cell.Charlib.cell -> k:int
  -> Ssd_util.Interval.t -> float * float
(** Load-free minimum of a k-inputs-tied curve over an interval. *)

val min_delay_over : Ssd_cell.Charlib.cell -> fanout:int -> response
  -> pos:int -> Ssd_util.Interval.t -> float * float
(** [(t_best, d_min)] minimizing the pin delay over a transition-time
    interval, honouring the curve's fitted shape (endpoints + interior
    peak).  Figure 9's case analysis. *)

val max_delay_over : Ssd_cell.Charlib.cell -> fanout:int -> response
  -> pos:int -> Ssd_util.Interval.t -> float * float

val min_tt_over : Ssd_cell.Charlib.cell -> fanout:int -> response
  -> pos:int -> Ssd_util.Interval.t -> float * float

val max_tt_over : Ssd_cell.Charlib.cell -> fanout:int -> response
  -> pos:int -> Ssd_util.Interval.t -> float * float
