(** Jun-style equivalent-inverter baseline ([6] in the paper).

    Reimplemented from the failure modes documented in the paper rather
    than from the original constants: the gate is collapsed into an
    equivalent inverter (parallel transistors summed — our tied-input
    characterization), the simultaneous delay grows linearly with skew from
    the zero-skew value, but the growth {e never saturates} at the
    pin-to-pin delay ("Jun's approach fails to capture the delay for large
    skew"), and input positions are ignored. *)

val single_delay : Ssd_cell.Charlib.cell -> fanout:int -> pos:int
  -> t_in:float -> float
(** Position-blind: always the position-0 characterization. *)

val pair_delay : Ssd_cell.Charlib.cell -> fanout:int
  -> a:Types.transition_in -> b:Types.transition_in -> float

val pair_out_tt : Ssd_cell.Charlib.cell -> fanout:int
  -> a:Types.transition_in -> b:Types.transition_in -> float

val ctl_event : Ssd_cell.Charlib.cell -> fanout:int
  -> Types.transition_in list -> Types.event

val non_event : Ssd_cell.Charlib.cell -> fanout:int
  -> Types.transition_in list -> Types.event
