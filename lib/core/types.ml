module Interval = Ssd_util.Interval

type transition_in = { pos : int; arrival : float; t_tr : float }

type event = { e_arr : float; e_tt : float }

type win = { w_arr : Interval.t; w_tt : Interval.t }

type win_in = { wpos : int; window : win }

let win_point e =
  { w_arr = Interval.point e.e_arr; w_tt = Interval.point e.e_tt }

let pp_event ppf e =
  Format.fprintf ppf "{A=%.1fps T=%.1fps}" (e.e_arr *. 1e12) (e.e_tt *. 1e12)

let pp_win ppf w =
  Format.fprintf ppf "{A=%a T=%a}" Interval.pp w.w_arr Interval.pp w.w_tt
