(** Batched multi-corner window kernel.

    Evaluates the proposed model's window transfer functions
    ({!Vshape.ctl_window} / {!Vshape.non_window}) for a contiguous range
    of corners of one gate in a single pass over the flat corner-major
    coefficient table of {!Ssd_cell.Corners} — no cell lookup and no
    allocation on the hot path (callers supply reusable scratch
    buffers).

    Bit-identity contract: every float operation reproduces the scalar
    path literally (clamp order, extremum candidate order, strict
    comparisons, fold shapes up to min/max re-association), so corner
    plane [c] of a batched analysis equals an independent scalar
    analysis over [Corners.library table c] bit for bit. *)

type t
(** An evaluator bound to one {!Ssd_cell.Corners.table}. *)

val create : Ssd_cell.Corners.table -> t
val table : t -> Ssd_cell.Corners.table

val refresh : t -> unit
(** Re-copy the bound table's coefficient store into the evaluator's
    flat array — call after {!Ssd_cell.Corners.refit} rewrote the
    table's coefficients in place (the Monte-Carlo chunk loop). *)

val k : t -> int
(** Corner count of the bound table. *)

val slot : t -> Ssd_cell.Sweep.gate_kind -> int -> int option
(** Table slot of a (kind, fan-in) cell shape, if characterized. *)

val eval_node :
  t ->
  slot:int ->
  fanout:int ->
  m:int ->
  c0:int ->
  c1:int ->
  inputs:float array ->
  outputs:float array ->
  unit
(** Evaluate corners [c0 .. c1-1] of one gate with [m] fan-ins.

    [inputs] holds, per corner [c] and fan-in pin [i], the pin's eight
    window bounds in {!Ssd_sta.Windows} slot order (rise arrival lo/hi,
    rise tt lo/hi, fall arrival lo/hi, fall tt lo/hi) starting at
    [((c - c0) * m + i) * 8].  [outputs] receives the gate's eight
    output bounds per corner starting at [(c - c0) * 8], same slot
    order.

    @raise Invalid_argument when [m] differs from the cell's fan-in
    count or the corner range is empty or out of bounds. *)
