module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Interval = Ssd_util.Interval

(* The key identifies a corner search up to everything the load-free
   extremum depends on.  A cell is named by a per-cache identity id
   assigned on first sight (physical equality): (kind, n) alone is NOT
   sufficient — one engine session can retarget its model mid-stream
   (Engine [Set_model]) onto corner-derated twins of the same cell, and a
   Monte-Carlo sweep walks through hundreds of such twins, all NAND2s
   with different fit coefficients.  Fanout is deliberately absent
   because the load correction is a constant shift applied outside the
   cached kernel.

   All fields are immediate ints so hashing and equality never chase
   boxed values: [k_meta] packs kind (1 bit), n (4), fn (3), resp-or-k
   (4), pos (4), the two float sign bits (16–17) and the cell id
   (bit 18 upward); [k_lo]/[k_hi] carry the low 63 bits of the interval
   endpoints' IEEE encoding.  Together with the sign bits in [k_meta]
   the key remains an exact image of the floats. *)
type key = {
  k_meta : int;
  k_lo : int;
  k_hi : int;
}

type shard = { mutex : Mutex.t; tbl : (key, float * float) Hashtbl.t }

(* Physical-identity side table mapping cell records to their per-cache
   ids.  Structural hashing ([Hashtbl.hash] bounds its traversal) gives
   stable buckets; [==] distinguishes derated twins with equal prefixes. *)
module Ident = Hashtbl.Make (struct
  type t = Charlib.cell

  let equal = ( == )
  let hash (c : Charlib.cell) = Hashtbl.hash c
end)

type t = {
  shards : shard array;
  quantum : float;
  hits : int Atomic.t;
  misses : int Atomic.t;
  ids : int Ident.t;
  ids_mutex : Mutex.t;
  mutable next_id : int;
}

let create ?(shards = 16) ?(quantum = 0.) () =
  if shards < 1 then invalid_arg "Eval_cache.create: shards < 1";
  if quantum < 0. || not (Float.is_finite quantum) then
    invalid_arg "Eval_cache.create: bad quantum";
  {
    shards =
      Array.init shards (fun _ ->
          { mutex = Mutex.create (); tbl = Hashtbl.create 256 });
    quantum;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    ids = Ident.create 64;
    ids_mutex = Mutex.create ();
    next_id = 0;
  }

(* First-seen id assignment: deterministic values are not required (the
   cached kernels are pure, so ids only partition the key space), but
   distinctness is — two different cell records must never share one. *)
let cell_id t cell =
  Mutex.lock t.ids_mutex;
  let id =
    match Ident.find_opt t.ids cell with
    | Some id -> id
    | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Ident.add t.ids cell id;
      id
  in
  Mutex.unlock t.ids_mutex;
  id

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

let entries t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mutex;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.mutex;
      acc + n)
    0 t.shards

type stats = { s_hits : int; s_misses : int; s_entries : int }

let stats t = { s_hits = hits t; s_misses = misses t; s_entries = entries t }

let hit_ratio s =
  let total = s.s_hits + s.s_misses in
  if total = 0 then 0.
  else 100. *. float_of_int s.s_hits /. float_of_int total

let to_string s =
  Printf.sprintf "eval-cache: %d hits / %d misses (%.1f%% hit ratio, %d entries)"
    s.s_hits s.s_misses (hit_ratio s) s.s_entries

(* With quantum = 0 the key carries the exact float bits and the cache is
   a pure memo: results are bit-identical to the uncached engine.  With
   quantum > 0 the interval itself is widened outward onto the grid
   before evaluation, so a cached value is a conservative bound for every
   interval sharing the key and the result stays deterministic no matter
   which gate instance populates the entry first. *)
let quantize t iv =
  if t.quantum = 0. then iv
  else
    let q = t.quantum in
    let lo = Float.of_int (int_of_float (Float.floor (Interval.lo iv /. q))) *. q in
    let hi = Float.of_int (int_of_float (Float.ceil (Interval.hi iv /. q))) *. q in
    Interval.make (Float.min lo (Interval.lo iv)) (Float.max hi (Interval.hi iv))

let kind_tag = function Sweep.Nand -> 0 | Sweep.Nor -> 1
let resp_tag = function Cellfn.Ctl -> 0 | Cellfn.Non -> 1

let lookup t (cell : Charlib.cell) ~fn ~tag ~pos iv compute =
  let iv = quantize t iv in
  let lo_bits = Int64.bits_of_float (Interval.lo iv) in
  let hi_bits = Int64.bits_of_float (Interval.hi iv) in
  let sign b = Int64.to_int (Int64.shift_right_logical b 63) in
  let key =
    {
      k_meta =
        kind_tag cell.Charlib.kind
        lor (cell.Charlib.n lsl 1)
        lor (fn lsl 5)
        lor (tag lsl 8)
        lor (pos lsl 12)
        lor (sign lo_bits lsl 16)
        lor (sign hi_bits lsl 17)
        lor (cell_id t cell lsl 18);
      k_lo = Int64.to_int lo_bits;
      k_hi = Int64.to_int hi_bits;
    }
  in
  let shard = t.shards.(Hashtbl.hash key mod Array.length t.shards) in
  Mutex.lock shard.mutex;
  match Hashtbl.find_opt shard.tbl key with
  | Some v ->
    Mutex.unlock shard.mutex;
    Atomic.incr t.hits;
    v
  | None ->
    (* compute outside the lock: the kernel is pure, so a racing domain
       at worst duplicates the work and stores the identical value *)
    Mutex.unlock shard.mutex;
    Atomic.incr t.misses;
    let v = compute iv in
    Mutex.lock shard.mutex;
    if not (Hashtbl.mem shard.tbl key) then Hashtbl.add shard.tbl key v;
    Mutex.unlock shard.mutex;
    v

let fn_tag which curve =
  match (which, curve) with
  | `Min, `Delay -> 0
  | `Max, `Delay -> 1
  | `Min, `Tt -> 2
  | `Max, `Tt -> 3

let corner t which curve cell resp ~pos iv =
  lookup t cell ~fn:(fn_tag which curve) ~tag:(resp_tag resp) ~pos iv
    (fun iv -> Cellfn.corner which curve cell resp ~pos iv)

let min_delay_over t cell ~fanout resp ~pos iv =
  let tb, v = corner t `Min `Delay cell resp ~pos iv in
  (tb, v +. Cellfn.load_delta_delay cell ~fanout resp)

let max_delay_over t cell ~fanout resp ~pos iv =
  let tb, v = corner t `Max `Delay cell resp ~pos iv in
  (tb, v +. Cellfn.load_delta_delay cell ~fanout resp)

let min_tt_over t cell ~fanout resp ~pos iv =
  let tb, v = corner t `Min `Tt cell resp ~pos iv in
  (tb, v +. Cellfn.load_delta_tt cell ~fanout resp)

let max_tt_over t cell ~fanout resp ~pos iv =
  let tb, v = corner t `Max `Tt cell resp ~pos iv in
  (tb, v +. Cellfn.load_delta_tt cell ~fanout resp)

let tied_fn = function `Delay -> 4 | `Tt -> 5

let min_tied_delay_over t cell ~fanout ~k iv =
  let _, v =
    lookup t cell ~fn:(tied_fn `Delay) ~tag:k ~pos:0 iv (fun iv ->
        Cellfn.tied_corner `Delay cell ~k iv)
  in
  v +. Cellfn.load_delta_delay cell ~fanout Cellfn.Ctl

let min_tied_tt_over t cell ~fanout ~k iv =
  let _, v =
    lookup t cell ~fn:(tied_fn `Tt) ~tag:k ~pos:0 iv (fun iv ->
        Cellfn.tied_corner `Tt cell ~k iv)
  in
  v +. Cellfn.load_delta_tt cell ~fanout Cellfn.Ctl

(* Dispatchers used by the window transfer functions: fall back to the
   direct Cellfn search when no cache is threaded through. *)

let min_delay_over_opt = function
  | None -> Cellfn.min_delay_over
  | Some t -> min_delay_over t

let max_delay_over_opt = function
  | None -> Cellfn.max_delay_over
  | Some t -> max_delay_over t

let min_tt_over_opt = function
  | None -> Cellfn.min_tt_over
  | Some t -> min_tt_over t

let max_tt_over_opt = function
  | None -> Cellfn.max_tt_over
  | Some t -> max_tt_over t

let min_tied_delay_over_opt = function
  | None -> Cellfn.min_tied_delay_over
  | Some t -> min_tied_delay_over t

let min_tied_tt_over_opt = function
  | None -> Cellfn.min_tied_tt_over
  | Some t -> min_tied_tt_over t
