module Corners = Ssd_cell.Corners
module Sweep = Ssd_cell.Sweep

(* Batched multi-corner window kernel.

   Evaluates the window transfer functions of the proposed model
   ({!Vshape.ctl_window} / {!Vshape.non_window}) for a contiguous range
   of corners of one node in a single pass, streaming coefficients from
   the flat corner-major table of {!Ssd_cell.Corners} — no cell lookup,
   no closure, tuple, list or basis-array allocation per evaluation.
   Each arithmetic expression reproduces the scalar path's float
   operations literally (same clamp order, same fold candidate order,
   same strict-comparison extremum rule), so a corner plane of the
   batched analysis is bit-identical to an independent scalar analysis
   over that corner's derated library.

   The only intentional divergences from the scalar code are
   value-preserving: min/max reductions are re-associated (fmin /
   fmax are commutative and associative, NaN-propagating in both
   shapes), and load deltas are hoisted out of the per-candidate loop
   (the scalar path recomputes the identical product).

   This file is the hot loop of the corners bench, compiled with a high
   inline threshold (see the library's [ocamlopt_flags]) so the fit
   evaluators below flatten into their call sites and the floats stay
   unboxed.  It deliberately uses unsafe array accesses: every index is
   derived from the layout record of a table slot validated once in
   {!eval_node} (m = l_n, corner range inside [0, K)), and the scratch
   arrays are sized by the caller to [corners × m × 8] / [corners × 8].
   Local [ref] accumulators never escape, so they compile to mutable
   stack variables, not heap cells. *)

let eps_skew = Vshape.eps_skew

(* Typed wrappers around the unsafe array primitives.  The type
   annotations matter: an untyped alias like [let get = Array.unsafe_get]
   binds the *generic* array primitive (runtime tag dispatch, boxed
   float results); a syntactic application at a statically-known float
   array type specializes to the flat unboxed access. *)
let[@inline] get (a : float array) i = Array.unsafe_get a i
let[@inline] set (a : float array) i (v : float) = Array.unsafe_set a i v
let[@inline] iget (a : int array) i = Array.unsafe_get a i
let[@inline] bget (a : bool array) i = Array.unsafe_get a i

(* [fmin]/[fmax] clones that produce the same value bit for
   bit but stay inline: the stdlib versions call the [caml_signbit] C
   primitive, which costs a function call (and float boxing) per min in
   the non-flambda build.  The comparison-based sign test below agrees
   with [signbit] on every non-NaN input (including -0. and -infinity);
   on NaN it may differ, but the stdlib branches are arranged so the
   returned value is the same float either way. *)
let[@inline] sbit (v : float) = v < 0. || (v = 0. && 1. /. v < 0.)

(* The [*. 1.] on every branch leaf below (and throughout this file) is
   a bit-exact identity (IEEE multiplication by one preserves -0.,
   infinities and NaN) that keeps the conditional unboxed: the classic
   compiler only unboxes a float-valued [if] when each branch is a
   syntactic float operation — a plain variable leaf forces the join,
   and transitively its operands, into heap boxes. *)
let[@inline] fmin (x : float) (y : float) =
  if y > x || ((not (sbit y)) && sbit x) then
    if y <> y then y *. 1. else x *. 1.
  else if x <> x then x *. 1.
  else y *. 1.

let[@inline] fmax (x : float) (y : float) =
  if y > x || ((not (sbit y)) && sbit x) then
    if x <> x then x *. 1. else y *. 1.
  else if y <> y then y *. 1.
  else x *. 1.

(* fit1 evaluation: clamp, then the quadratic_1d dot product in basis
   order (T², T, 1) starting from 0 — the exact [Lsq.predict] fold. *)
let[@inline] eval1 (co : float array) ~o ~lo ~hi t =
  let tc = fmax lo (fmin hi t) in
  let s = 0. +. (get co o *. (tc *. tc)) in
  let s = s +. (get co (o + 1) *. tc) in
  s +. (get co (o + 2) *. 1.)

(* fit1 extremum over [ivlo, ivhi]: candidates lo, interior peak (when
   the stored abscissa is non-NaN and contained), hi — evaluated in that
   order with a strict comparison keeping the first best, as
   [Func1d.min_over]/[max_over]. *)
let[@inline] min1 (co : float array) ~o ~lo ~hi ~ivlo ~ivhi =
  let bv = eval1 co ~o ~lo ~hi ivlo in
  let p = get co (o + 3) in
  let bv =
    if ivlo <= p && p <= ivhi then begin
      let v = eval1 co ~o ~lo ~hi p in
      if v < bv then v *. 1. else bv *. 1.
    end
    else bv *. 1.
  in
  let v = eval1 co ~o ~lo ~hi ivhi in
  if v < bv then v *. 1. else bv *. 1.

let[@inline] max1 (co : float array) ~o ~lo ~hi ~ivlo ~ivhi =
  let bv = eval1 co ~o ~lo ~hi ivlo in
  let p = get co (o + 3) in
  let bv =
    if ivlo <= p && p <= ivhi then begin
      let v = eval1 co ~o ~lo ~hi p in
      if v > bv then v *. 1. else bv *. 1.
    end
    else bv *. 1.
  in
  let v = eval1 co ~o ~lo ~hi ivhi in
  if v > bv then v *. 1. else bv *. 1.

(* fit2 evaluation: both arguments clamped to the shared pair range,
   then the tagged basis dot product in declaration order. *)
let[@inline] eval2 (co : float array) ~o ~lo ~hi ~tag x y =
  let x = fmax lo (fmin hi x)
  and y = fmax lo (fmin hi y) in
  if tag = 0 then begin
    (* Quad2: a², b², ab, a, b, 1 *)
    let s = 0. +. (get co o *. (x *. x)) in
    let s = s +. (get co (o + 1) *. (y *. y)) in
    let s = s +. (get co (o + 2) *. (x *. y)) in
    let s = s +. (get co (o + 3) *. x) in
    let s = s +. (get co (o + 4) *. y) in
    s +. (get co (o + 5) *. 1.)
  end
  else if tag = 1 then begin
    (* Cuberoot2: ∛a·∛b, ∛a, ∛b, 1 *)
    let ca = Float.pow x (1. /. 3.) and cb = Float.pow y (1. /. 3.) in
    let s = 0. +. (get co o *. (ca *. cb)) in
    let s = s +. (get co (o + 1) *. ca) in
    let s = s +. (get co (o + 2) *. cb) in
    s +. (get co (o + 3) *. 1.)
  end
  else begin
    (* Cubic2: a³, b³, a²b, ab², a², b², ab, a, b, 1 *)
    let s = 0. +. (get co o *. (x *. x *. x)) in
    let s = s +. (get co (o + 1) *. (y *. y *. y)) in
    let s = s +. (get co (o + 2) *. (x *. x *. y)) in
    let s = s +. (get co (o + 3) *. (x *. y *. y)) in
    let s = s +. (get co (o + 4) *. (x *. x)) in
    let s = s +. (get co (o + 5) *. (y *. y)) in
    let s = s +. (get co (o + 6) *. (x *. y)) in
    let s = s +. (get co (o + 7) *. x) in
    let s = s +. (get co (o + 8) *. y) in
    s +. (get co (o + 9) *. 1.)
  end

(* [Vshape.pair_delay_nocheck] for a characterized pair: the V arm
   interpolation at [skew], load excluded (the caller adds it).  [pb] is
   the pair block base (d0 at pb, sr at pb+10, syr at pb+20), [tb0] the
   slot's index into the basis-tag array. *)
let[@inline] v_arm ~d0 ~sr ~syr ~dr_right ~dr_left ~skew =
  if skew >= sr then dr_right *. 1.
  else if skew <= -.syr then dr_left *. 1.
  else if skew >= 0. then d0 +. ((dr_right -. d0) *. skew /. sr)
  else d0 +. ((dr_left -. d0) *. -.skew /. syr)

let[@inline] pair_v (co : float array) (l : Corners.layout) ~pb ~tb0 ~direct
    ~dr_right ~dr_left ~skew ta tb =
  let plo = l.Corners.l_p_lo and phi = l.Corners.l_p_hi in
  let tags = l.Corners.l_surf_basis in
  if direct then begin
    let d0 = eval2 co ~o:pb ~lo:plo ~hi:phi ~tag:(iget tags tb0) ta tb in
    let sr =
      fmax
        (eval2 co ~o:(pb + 10) ~lo:plo ~hi:phi ~tag:(iget tags (tb0 + 1)) ta tb)
        eps_skew
    in
    let syr =
      fmax
        (eval2 co ~o:(pb + 20) ~lo:plo ~hi:phi ~tag:(iget tags (tb0 + 2)) ta tb)
        eps_skew
    in
    v_arm ~d0 ~sr ~syr ~dr_right ~dr_left ~skew
  end
  else begin
    (* stored orientation is (pos_b, pos_a): arguments and arms swap *)
    let d0 = eval2 co ~o:pb ~lo:plo ~hi:phi ~tag:(iget tags tb0) tb ta in
    let syr =
      fmax
        (eval2 co ~o:(pb + 10) ~lo:plo ~hi:phi ~tag:(iget tags (tb0 + 1)) tb ta)
        eps_skew
    in
    let sr =
      fmax
        (eval2 co ~o:(pb + 20) ~lo:plo ~hi:phi ~tag:(iget tags (tb0 + 2)) tb ta)
        eps_skew
    in
    v_arm ~d0 ~sr ~syr ~dr_right ~dr_left ~skew
  end

(* The t_s_pair rule of [Vshape.ctl_window]: the tt V-shape evaluated at
   the feasible skew closest to the vertex, load included; [infinity]
   for an uncharacterized pair. *)
let[@inline] pair_tt_c (co : float array) (l : Corners.layout) ~b ~ld_t ~pos_a
    ~pos_b ~f_lo ~f_hi ~t_a ~t_b =
  let n = l.Corners.l_n in
  let s = iget l.Corners.l_pair_slot ((pos_a * n) + pos_b) in
  if s < 0 then infinity
  else begin
    let tlo = l.Corners.l_t_lo and thi = l.Corners.l_t_hi in
    let tr_right = eval1 co ~o:(b + (pos_a * 8) + 4) ~lo:tlo ~hi:thi t_a in
    let tr_left = eval1 co ~o:(b + (pos_b * 8) + 4) ~lo:tlo ~hi:thi t_b in
    let plo = l.Corners.l_p_lo and phi = l.Corners.l_p_hi in
    let direct = bget l.Corners.l_pair_direct ((pos_a * n) + pos_b) in
    let tags = l.Corners.l_surf_basis in
    let tb0 = s * 5 in
    let pb = b + (24 * n) + 4 + (s * 50) in
    let ta = if direct then t_a *. 1. else t_b *. 1. in
    let tb = if direct then t_b *. 1. else t_a *. 1. in
    let sr0 =
      fmax
        (eval2 co ~o:(pb + 10) ~lo:plo ~hi:phi ~tag:(iget tags (tb0 + 1)) ta tb)
        eps_skew
    in
    let syr0 =
      fmax
        (eval2 co ~o:(pb + 20) ~lo:plo ~hi:phi ~tag:(iget tags (tb0 + 2)) ta tb)
        eps_skew
    in
    let sk0 =
      eval2 co ~o:(pb + 30) ~lo:plo ~hi:phi ~tag:(iget tags (tb0 + 3)) ta tb
    in
    let tmin =
      eval2 co ~o:(pb + 40) ~lo:plo ~hi:phi ~tag:(iget tags (tb0 + 4)) ta tb
    in
    let sr = if direct then sr0 *. 1. else syr0 *. 1. in
    let syr = if direct then syr0 *. 1. else sr0 *. 1. in
    let sk = if direct then sk0 *. 1. else -.sk0 in
    let sk = fmax (-.syr) (fmin sr sk) in
    let skew = fmax f_lo (fmin f_hi sk) in
    let v =
      if skew >= sr then tr_right *. 1.
      else if skew <= -.syr then tr_left *. 1.
      else if skew >= sk then begin
        let span = sr -. sk in
        if span <= eps_skew then tr_right *. 1.
        else tmin +. ((tr_right -. tmin) *. (skew -. sk) /. span)
      end
      else begin
        let span = sk +. syr in
        if span <= eps_skew then tr_left *. 1.
        else tmin +. ((tr_left -. tmin) *. (sk -. skew) /. span)
      end
    in
    v +. ld_t
  end

(* [Vshape.ctl_window] for one corner.  Inputs are read from [inp] at
   [ib + pin*8 + io] (io selects the rise or fall half of the 8-slot
   window record); the four result bounds are written to [out] at
   [ob .. ob+3].  [acc] is an 8-slot accumulator scratch: the classic
   compiler boxes every assignment to a mutable float variable, so the
   running min/max folds live in a float array (unboxed stores) instead
   of refs — slots 0..3 hold a_s/a_l/t_s/t_l, 4..6 the tied-floor
   a_min/hull_lo/hull_hi. *)
let ctl_c (co : float array) (l : Corners.layout) ~b ~fd ~m
    ~(inp : float array) ~ib ~io ~(acc : float array) ~(out : float array) ~ob
    =
  let n = l.Corners.l_n in
  let tlo = l.Corners.l_t_lo and thi = l.Corners.l_t_hi in
  let lo = b + (24 * n) in
  let ld_d = get co lo *. fd in
  let ld_t = get co (lo + 1) *. fd in
  (* earliest arrival: singles, both-earliest pairs, tied-k floor *)
  set acc 0 infinity;
  for i = 0 to m - 1 do
    let oi = ib + (i * 8) + io in
    let v =
      get inp oi
      +. (min1 co ~o:(b + (i * 8)) ~lo:tlo ~hi:thi ~ivlo:(get inp (oi + 2))
            ~ivhi:(get inp (oi + 3))
         +. ld_d)
    in
    set acc 0 (fmin (get acc 0) v)
  done;
  for i = 0 to m - 1 do
    let oi = ib + (i * 8) + io in
    let arr_a = get inp oi in
    let ta_lo = get inp (oi + 2) and ta_hi = get inp (oi + 3) in
    let dro_a = b + (i * 8) in
    for j = i + 1 to m - 1 do
      let oj = ib + (j * 8) + io in
      let arr_b = get inp oj in
      let tb_lo = get inp (oj + 2) and tb_hi = get inp (oj + 3) in
      let skew = arr_b -. arr_a in
      let s = iget l.Corners.l_pair_slot ((i * n) + j) in
      let cmin =
        if s < 0 then begin
          (* uncharacterized pair: pin-to-pin composition from the
             earliest.  The four {S, L} combos reuse one candidate per
             pin per transition-time bound, hoisted here (the scalar
             path evaluates the identical expressions inside each
             combo) *)
          let a_min = fmin arr_a arr_b in
          let ca_lo =
            arr_a -. a_min +. (eval1 co ~o:dro_a ~lo:tlo ~hi:thi ta_lo +. ld_d)
          in
          let ca_hi =
            arr_a -. a_min +. (eval1 co ~o:dro_a ~lo:tlo ~hi:thi ta_hi +. ld_d)
          in
          let dro_b = b + (j * 8) in
          let cb_lo =
            arr_b -. a_min +. (eval1 co ~o:dro_b ~lo:tlo ~hi:thi tb_lo +. ld_d)
          in
          let cb_hi =
            arr_b -. a_min +. (eval1 co ~o:dro_b ~lo:tlo ~hi:thi tb_hi +. ld_d)
          in
          fmin
            (fmin (fmin ca_lo cb_lo) (fmin ca_lo cb_hi))
            (fmin (fmin ca_hi cb_lo) (fmin ca_hi cb_hi))
        end
        else begin
          let direct = bget l.Corners.l_pair_direct ((i * n) + j) in
          let pb = b + (24 * n) + 4 + (s * 50) in
          let tb0 = s * 5 in
          let dro_b = b + (j * 8) in
          let dr_a_lo = eval1 co ~o:dro_a ~lo:tlo ~hi:thi ta_lo in
          let dr_a_hi = eval1 co ~o:dro_a ~lo:tlo ~hi:thi ta_hi in
          let dr_b_lo = eval1 co ~o:dro_b ~lo:tlo ~hi:thi tb_lo in
          let dr_b_hi = eval1 co ~o:dro_b ~lo:tlo ~hi:thi tb_hi in
          let c1 =
            pair_v co l ~pb ~tb0 ~direct ~dr_right:dr_a_lo ~dr_left:dr_b_lo
              ~skew ta_lo tb_lo
          in
          let c2 =
            pair_v co l ~pb ~tb0 ~direct ~dr_right:dr_a_lo ~dr_left:dr_b_hi
              ~skew ta_lo tb_hi
          in
          let c3 =
            pair_v co l ~pb ~tb0 ~direct ~dr_right:dr_a_hi ~dr_left:dr_b_lo
              ~skew ta_hi tb_lo
          in
          let c4 =
            pair_v co l ~pb ~tb0 ~direct ~dr_right:dr_a_hi ~dr_left:dr_b_hi
              ~skew ta_hi tb_hi
          in
          fmin (fmin (c1 +. ld_d) (c2 +. ld_d))
            (fmin (c3 +. ld_d) (c4 +. ld_d))
        end
      in
      set acc 0 (fmin (get acc 0) (fmin arr_a arr_b +. cmin))
    done
  done;
  (* the hulled tt span and earliest arrival feed both tied-k floors *)
  if m >= 3 then begin
    set acc 4 infinity;
    set acc 5 infinity;
    set acc 6 neg_infinity;
    for i = 0 to m - 1 do
      let oi = ib + (i * 8) + io in
      set acc 4 (fmin (get acc 4) (get inp oi));
      set acc 5 (fmin (get acc 5) (get inp (oi + 2)));
      set acc 6 (fmax (get acc 6) (get inp (oi + 3)))
    done;
    for k = 3 to m do
      let o = b + (((2 * n) + (k - 1)) * 8) in
      let v =
        min1 co ~o ~lo:tlo ~hi:thi ~ivlo:(get acc 5) ~ivhi:(get acc 6)
        +. ld_d
      in
      set acc 0 (fmin (get acc 0) (get acc 4 +. v))
    done
  end;
  (* latest arrival: single switch, delay-maximizing transition time *)
  set acc 1 neg_infinity;
  for i = 0 to m - 1 do
    let oi = ib + (i * 8) + io in
    let v =
      get inp (oi + 1)
      +. (max1 co ~o:(b + (i * 8)) ~lo:tlo ~hi:thi ~ivlo:(get inp (oi + 2))
            ~ivhi:(get inp (oi + 3))
         +. ld_d)
    in
    set acc 1 (fmax (get acc 1) v)
  done;
  let a_l = fmax (get acc 1) (get acc 0) in
  (* output transition-time extremes *)
  set acc 2 infinity;
  for i = 0 to m - 1 do
    let oi = ib + (i * 8) + io in
    let v =
      min1 co ~o:(b + (i * 8) + 4) ~lo:tlo ~hi:thi ~ivlo:(get inp (oi + 2))
        ~ivhi:(get inp (oi + 3))
      +. ld_t
    in
    set acc 2 (fmin (get acc 2) v)
  done;
  for i = 0 to m - 1 do
    let oi = ib + (i * 8) + io in
    for j = i + 1 to m - 1 do
      let oj = ib + (j * 8) + io in
      let f_lo = get inp oj -. get inp (oi + 1) in
      let f_hi = get inp (oj + 1) -. get inp oi in
      let v =
        pair_tt_c co l ~b ~ld_t ~pos_a:i ~pos_b:j ~f_lo ~f_hi
          ~t_a:(get inp (oi + 2)) ~t_b:(get inp (oj + 2))
      in
      set acc 2 (fmin (get acc 2) v)
    done
  done;
  if m >= 3 then
    for k = 3 to m do
      let o = b + (((2 * n) + (k - 1)) * 8) + 4 in
      let v =
        min1 co ~o ~lo:tlo ~hi:thi ~ivlo:(get acc 5) ~ivhi:(get acc 6)
        +. ld_t
      in
      set acc 2 (fmin (get acc 2) v)
    done;
  set acc 3 neg_infinity;
  for i = 0 to m - 1 do
    let oi = ib + (i * 8) + io in
    let v =
      max1 co ~o:(b + (i * 8) + 4) ~lo:tlo ~hi:thi ~ivlo:(get inp (oi + 2))
        ~ivhi:(get inp (oi + 3))
      +. ld_t
    in
    set acc 3 (fmax (get acc 3) v)
  done;
  let t_l = fmax (get acc 3) (get acc 2) in
  set out ob (get acc 0);
  set out (ob + 1) a_l;
  set out (ob + 2) (get acc 2);
  set out (ob + 3) t_l

(* [Vshape.non_window] for one corner: per-pin min/max folds only.
   [acc] slots 0..3 are the a_s/a_l/t_s/t_l accumulators (same unboxing
   rationale as {!ctl_c}). *)
let non_c (co : float array) (l : Corners.layout) ~b ~fd ~m
    ~(inp : float array) ~ib ~io ~(acc : float array) ~(out : float array) ~ob
    =
  let n = l.Corners.l_n in
  let tlo = l.Corners.l_t_lo and thi = l.Corners.l_t_hi in
  let lo = b + (24 * n) in
  let ld_d = get co (lo + 2) *. fd in
  let ld_t = get co (lo + 3) *. fd in
  set acc 0 infinity;
  set acc 1 neg_infinity;
  set acc 2 infinity;
  set acc 3 neg_infinity;
  for i = 0 to m - 1 do
    let oi = ib + (i * 8) + io in
    let ivlo = get inp (oi + 2) and ivhi = get inp (oi + 3) in
    let od = b + ((n + i) * 8) in
    set acc 0
      (fmin (get acc 0)
         (get inp oi +. (min1 co ~o:od ~lo:tlo ~hi:thi ~ivlo ~ivhi +. ld_d)));
    set acc 1
      (fmax (get acc 1)
         (get inp (oi + 1)
         +. (max1 co ~o:od ~lo:tlo ~hi:thi ~ivlo ~ivhi +. ld_d)));
    set acc 2
      (fmin (get acc 2)
         (min1 co ~o:(od + 4) ~lo:tlo ~hi:thi ~ivlo ~ivhi +. ld_t));
    set acc 3
      (fmax (get acc 3)
         (max1 co ~o:(od + 4) ~lo:tlo ~hi:thi ~ivlo ~ivhi +. ld_t))
  done;
  set out ob (get acc 0);
  set out (ob + 1) (fmax (get acc 0) (get acc 1));
  set out (ob + 2) (get acc 2);
  set out (ob + 3) (fmax (get acc 2) (get acc 3))

type t = {
  bt_table : Corners.table;
  bt_co : float array;
      (* the flat corner-major coefficient store, copied out of the
         table's Bigarray once: a plain float array keeps the data
         pointer in a register inside the kernels above *)
  bt_k : int;
}

let refresh t =
  let ba = Corners.coeffs t.bt_table in
  let co = t.bt_co in
  for i = 0 to Bigarray.Array1.dim ba - 1 do
    Array.unsafe_set co i (Bigarray.Array1.unsafe_get ba i)
  done

let create table =
  let ba = Corners.coeffs table in
  let len = Bigarray.Array1.dim ba in
  let co = Array.make (max 1 len) 0. in
  let t = { bt_table = table; bt_co = co; bt_k = Corners.k table } in
  refresh t;
  t

let table t = t.bt_table
let k t = t.bt_k
let slot t kind n = Corners.cell_slot t.bt_table kind n

let eval_node t ~slot ~fanout ~m ~c0 ~c1 ~(inputs : float array)
    ~(outputs : float array) =
  let l = Corners.layout t.bt_table slot in
  if m <> l.Corners.l_n then
    invalid_arg
      (Printf.sprintf "Corner_batch.eval_node: %d inputs for a %d-input cell"
         m l.Corners.l_n);
  if c0 < 0 || c1 > t.bt_k || c0 >= c1 then
    invalid_arg "Corner_batch.eval_node: bad corner range";
  if Array.length inputs < (c1 - c0) * m * 8 || Array.length outputs < (c1 - c0) * 8
  then invalid_arg "Corner_batch.eval_node: scratch arrays too small";
  let co = t.bt_co in
  let fd = float_of_int (fanout - l.Corners.l_ref_fanout) in
  let ctl_is_fall =
    match l.Corners.l_kind with Sweep.Nand -> true | Sweep.Nor -> false
  in
  (* the to-controlling response flips the transition: falling inputs
     produce the rising output for NAND, dually for NOR *)
  let io_ctl = if ctl_is_fall then 4 else 0 in
  let io_non = if ctl_is_fall then 0 else 4 in
  let ob_ctl = if ctl_is_fall then 0 else 4 in
  let ob_non = if ctl_is_fall then 4 else 0 in
  (* one accumulator scratch per call, shared by all corners of the
     node (each window evaluation re-initializes the slots it uses) *)
  let acc = Array.make 8 0. in
  for c = c0 to c1 - 1 do
    let b = l.Corners.l_base + (c * l.Corners.l_stride) in
    let ib = (c - c0) * m * 8 in
    let ob = (c - c0) * 8 in
    ctl_c co l ~b ~fd ~m ~inp:inputs ~ib ~io:io_ctl ~acc ~out:outputs
      ~ob:(ob + ob_ctl);
    non_c co l ~b ~fd ~m ~inp:inputs ~ib ~io:io_non ~acc ~out:outputs
      ~ob:(ob + ob_non)
  done
