module Interval = Ssd_util.Interval
open Types

let single_delay cell ~fanout ~pos ~t_in =
  Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos ~t_in

let best_event ~better cell ~fanout resp transitions =
  match transitions with
  | [] -> invalid_arg "Pin_to_pin: no transitions"
  | _ ->
    List.fold_left
      (fun best t ->
        let arr =
          t.arrival
          +. Cellfn.pin_delay cell ~fanout resp ~pos:t.pos ~t_in:t.t_tr
        in
        let tt = Cellfn.pin_out_tt cell ~fanout resp ~pos:t.pos ~t_in:t.t_tr in
        match best with
        | Some e when not (better arr e.e_arr) -> Some e
        | Some _ | None -> Some { e_arr = arr; e_tt = tt })
      None transitions
    |> Option.get

let ctl_event cell ~fanout transitions =
  best_event ~better:( < ) cell ~fanout Cellfn.Ctl transitions

let non_event cell ~fanout transitions =
  best_event ~better:( > ) cell ~fanout Cellfn.Non transitions

let pair_delay cell ~fanout ~a ~b =
  let e = ctl_event cell ~fanout [ a; b ] in
  e.e_arr -. Float.min a.arrival b.arrival

let pair_out_tt cell ~fanout ~a ~b =
  (ctl_event cell ~fanout [ a; b ]).e_tt

let window_of ?cache resp cell ~fanout wins =
  match wins with
  | [] -> invalid_arg "Pin_to_pin: no inputs"
  | _ ->
    let fold f init sel =
      List.fold_left (fun acc w -> f acc (sel w)) init wins
    in
    let a_s =
      fold Float.min infinity (fun w ->
          Interval.lo w.window.w_arr
          +. snd
               (Eval_cache.min_delay_over_opt cache cell ~fanout resp
                  ~pos:w.wpos w.window.w_tt))
    in
    let a_l =
      fold Float.max neg_infinity (fun w ->
          Interval.hi w.window.w_arr
          +. snd
               (Eval_cache.max_delay_over_opt cache cell ~fanout resp
                  ~pos:w.wpos w.window.w_tt))
    in
    let t_s =
      fold Float.min infinity (fun w ->
          snd
            (Eval_cache.min_tt_over_opt cache cell ~fanout resp ~pos:w.wpos
               w.window.w_tt))
    in
    let t_l =
      fold Float.max neg_infinity (fun w ->
          snd
            (Eval_cache.max_tt_over_opt cache cell ~fanout resp ~pos:w.wpos
               w.window.w_tt))
    in
    {
      w_arr = Interval.make a_s (Float.max a_s a_l);
      w_tt = Interval.make t_s (Float.max t_s t_l);
    }

let ctl_window ?cache cell ~fanout wins =
  window_of ?cache Cellfn.Ctl cell ~fanout wins

let non_window ?cache cell ~fanout wins =
  window_of ?cache Cellfn.Non cell ~fanout wins
