open Types

let full_span t_tr = t_tr /. 0.8

let single_delay cell ~fanout ~pos:_ ~t_in =
  Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos:0 ~t_in

let single_out_tt cell ~fanout ~t_in =
  Cellfn.pin_out_tt cell ~fanout Cellfn.Ctl ~pos:0 ~t_in

(* Equivalent single ramp under the aligned-start assumption: starts at the
   earliest actual start, transition time averaged.  The predicted output
   arrival ignores how the transitions are actually skewed. *)
let equivalent_arrival (a : transition_in) (b : transition_in) =
  let start t = t.arrival -. (0.5 *. full_span t.t_tr) in
  let s_min = Float.min (start a) (start b) in
  let t_eq = 0.5 *. (a.t_tr +. b.t_tr) in
  (s_min +. (0.5 *. full_span t_eq), t_eq)

let collapsed cell ~fanout ~t_eq =
  if cell.Ssd_cell.Charlib.n >= 2 then
    ( Cellfn.tied_delay cell ~fanout ~k:2 ~t_in:t_eq,
      Cellfn.tied_out_tt cell ~fanout ~k:2 ~t_in:t_eq )
  else
    ( Cellfn.pin_delay cell ~fanout Cellfn.Ctl ~pos:0 ~t_in:t_eq,
      Cellfn.pin_out_tt cell ~fanout Cellfn.Ctl ~pos:0 ~t_in:t_eq )

let pair_delay cell ~fanout ~(a : transition_in) ~(b : transition_in) =
  let a_eq, t_eq = equivalent_arrival a b in
  let d, _ = collapsed cell ~fanout ~t_eq in
  a_eq +. d -. Float.min a.arrival b.arrival

let pair_out_tt cell ~fanout ~(a : transition_in) ~(b : transition_in) =
  let _, t_eq = equivalent_arrival a b in
  snd (collapsed cell ~fanout ~t_eq)

let ctl_event cell ~fanout transitions =
  match transitions with
  | [] -> invalid_arg "Nabavi.ctl_event: no transitions"
  | [ t ] ->
    {
      e_arr = t.arrival +. single_delay cell ~fanout ~pos:t.pos ~t_in:t.t_tr;
      e_tt = single_out_tt cell ~fanout ~t_in:t.t_tr;
    }
  | t1 :: t2 :: _ ->
    let base = Float.min t1.arrival t2.arrival in
    {
      e_arr = base +. pair_delay cell ~fanout ~a:t1 ~b:t2;
      e_tt = pair_out_tt cell ~fanout ~a:t1 ~b:t2;
    }

let non_event cell ~fanout transitions =
  match transitions with
  | [] -> invalid_arg "Nabavi.non_event: no transitions"
  | _ ->
    List.fold_left
      (fun best t ->
        let arr =
          t.arrival
          +. Cellfn.pin_delay cell ~fanout Cellfn.Non ~pos:0 ~t_in:t.t_tr
        in
        let tt = Cellfn.pin_out_tt cell ~fanout Cellfn.Non ~pos:0 ~t_in:t.t_tr in
        match best with
        | Some e when e.e_arr >= arr -> Some e
        | Some _ | None -> Some { e_arr = arr; e_tt = tt })
      None transitions
    |> Option.get
