module S = Ssd_spice
module Pwl = Ssd_util.Pwl

let tech = S.Tech.default
let vdd = tech.S.Tech.vdd

(* ---------- Device model ---------- *)

let nmos = { S.Device.kind = S.Device.Nmos; w = 2e-6; l = 0.5e-6 }
let pmos = { S.Device.kind = S.Device.Pmos; w = 2e-6; l = 0.5e-6 }

let test_device_cutoff () =
  let e = S.Device.eval tech nmos ~vg:0.3 ~vd:vdd ~vs:0. in
  Alcotest.(check (float 1e-12)) "cutoff current" 0. e.S.Device.id;
  let ep = S.Device.eval tech pmos ~vg:vdd ~vd:0. ~vs:vdd in
  Alcotest.(check (float 1e-12)) "pmos cutoff" 0. ep.S.Device.id

let test_device_signs () =
  (* NMOS with vgs > vt, vds > 0: positive drain->source current *)
  let e = S.Device.eval tech nmos ~vg:vdd ~vd:vdd ~vs:0. in
  Alcotest.(check bool) "nmos conducts" true (e.S.Device.id > 1e-5);
  (* PMOS pulling up: drain low, source at vdd: current flows source->drain,
     so nominal drain->source current is negative *)
  let ep = S.Device.eval tech pmos ~vg:0. ~vd:0. ~vs:vdd in
  Alcotest.(check bool) "pmos pulls up" true (ep.S.Device.id < -1e-5)

let test_device_derivative_sum () =
  (* currents depend only on voltage differences, so the three partials
     must sum to zero in every operating region and orientation *)
  let cases =
    [
      (nmos, 2.5, 3.0, 0.);   (* saturation *)
      (nmos, 3.3, 0.4, 0.);   (* triode *)
      (nmos, 2.5, 0., 1.5);   (* swapped *)
      (pmos, 0.5, 0.2, 3.3);  (* pmos on *)
      (pmos, 0.5, 3.3, 1.0);  (* pmos swapped *)
    ]
  in
  List.iter
    (fun (dev, vg, vd, vs) ->
      let e = S.Device.eval tech dev ~vg ~vd ~vs in
      Alcotest.(check (float 1e-9)) "partials sum to 0" 0.
        (e.S.Device.gm +. e.S.Device.gds +. e.S.Device.gms))
    cases

let test_device_derivatives_match_fd () =
  (* analytic Jacobian entries vs finite differences *)
  let h = 1e-7 in
  let cases =
    [ (nmos, 2.0, 1.0, 0.); (nmos, 2.8, 2.9, 0.3); (pmos, 1.0, 1.5, 3.3) ]
  in
  List.iter
    (fun (dev, vg, vd, vs) ->
      let id vg vd vs = (S.Device.eval tech dev ~vg ~vd ~vs).S.Device.id in
      let e = S.Device.eval tech dev ~vg ~vd ~vs in
      let fd_gm = (id (vg +. h) vd vs -. id (vg -. h) vd vs) /. (2. *. h) in
      let fd_gds = (id vg (vd +. h) vs -. id vg (vd -. h) vs) /. (2. *. h) in
      let fd_gms = (id vg vd (vs +. h) -. id vg vd (vs -. h)) /. (2. *. h) in
      let close a b =
        Float.abs (a -. b) < 1e-6 +. (1e-3 *. Float.abs b)
      in
      Alcotest.(check bool) "gm matches FD" true (close e.S.Device.gm fd_gm);
      Alcotest.(check bool) "gds matches FD" true (close e.S.Device.gds fd_gds);
      Alcotest.(check bool) "gms matches FD" true (close e.S.Device.gms fd_gms))
    cases

let test_device_continuity_at_pinchoff () =
  (* no current jump at the triode/saturation boundary *)
  let vg = 2.5 in
  let vov = vg -. tech.S.Tech.vtn in
  let below = (S.Device.eval tech nmos ~vg ~vd:(vov -. 1e-9) ~vs:0.).S.Device.id in
  let above = (S.Device.eval tech nmos ~vg ~vd:(vov +. 1e-9) ~vs:0.).S.Device.id in
  Alcotest.(check bool) "continuous at pinch-off" true
    (Float.abs (below -. above) < 1e-9)

(* ---------- DC analysis ---------- *)

let inverter_circuit vin =
  let c = S.Circuit.create tech in
  let input = S.Circuit.node c "in" and output = S.Circuit.node c "out" in
  S.Gates.inverter c ~input ~output;
  S.Circuit.drive_dc c input vin;
  (S.Circuit.freeze c, output)

let test_dc_inverter_rails () =
  let fz, out = inverter_circuit 0. in
  let v = S.Transient.dc_operating_point fz in
  Alcotest.(check (float 0.01)) "out high" vdd v.(out);
  let fz, out = inverter_circuit vdd in
  let v = S.Transient.dc_operating_point fz in
  Alcotest.(check (float 0.01)) "out low" 0. v.(out)

let test_dc_inverter_monotone () =
  let outs =
    List.map
      (fun vin ->
        let fz, out = inverter_circuit vin in
        (S.Transient.dc_operating_point fz).(out))
      [ 0.; 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 3.3 ]
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-6 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "VTC monotone decreasing" true (decreasing outs)

(* ---------- Transient analysis ---------- *)

let test_transient_rc_analytic () =
  (* R-C low-pass step response vs the analytic exponential *)
  let c = S.Circuit.create tech in
  let src = S.Circuit.node c "src" and out = S.Circuit.node c "out" in
  let r = 10e3 and cap = 50e-15 in
  S.Circuit.add_res c src out r;
  S.Circuit.add_cap c out S.Circuit.ground cap;
  S.Circuit.drive c src (Pwl.of_points [ (0., 0.); (1e-12, 1.) ]);
  let options =
    { S.Transient.default_options with S.Transient.h = 1e-12; t_stop = 3e-9;
      settle_window = -1. }
  in
  let res = S.Transient.simulate ~options (S.Circuit.freeze c) in
  let w = S.Transient.waveform res out in
  let tau = r *. cap in
  List.iter
    (fun t ->
      let expected = 1. -. exp (-.(t -. 1e-12) /. tau) in
      Alcotest.(check (float 0.02)) (Printf.sprintf "rc at %.1e" t) expected
        (Pwl.value_at w t))
    [ 0.5e-9; 1.0e-9; 2.0e-9 ]

let test_transient_inverter_switches () =
  let c = S.Circuit.create tech in
  let input = S.Circuit.node c "in" and output = S.Circuit.node c "out" in
  S.Gates.inverter c ~input ~output;
  S.Gates.attach_inverter_load c output;
  S.Circuit.drive c input
    (S.Gates.rising_input tech ~arrival:1e-9 ~t_transition:0.3e-9);
  let res = S.Transient.simulate (S.Circuit.freeze c) in
  let w = S.Transient.waveform res output in
  Alcotest.(check bool) "starts high" true (Pwl.start_value w > 0.9 *. vdd);
  Alcotest.(check bool) "ends low" true (S.Measure.swings_to tech w ~high:false);
  match S.Measure.edge tech w ~rising:false with
  | Some e ->
    Alcotest.(check bool) "positive delay" true
      (e.S.Measure.e_arrival > 1e-9);
    Alcotest.(check bool) "sane transition" true
      (e.S.Measure.e_transition > 1e-12 && e.S.Measure.e_transition < 1e-9)
  | None -> Alcotest.fail "expected falling edge"

let nand2_delay ~both ~skew =
  let c = S.Circuit.create tech in
  let g = S.Gates.nand c ~name:"g" ~n:2 in
  S.Gates.attach_inverter_load c g.S.Gates.output;
  let a = 2e-9 and t_tr = 0.5e-9 in
  S.Circuit.drive c g.S.Gates.inputs.(0)
    (S.Gates.falling_input tech ~arrival:a ~t_transition:t_tr);
  (if both then
     S.Circuit.drive c g.S.Gates.inputs.(1)
       (S.Gates.falling_input tech ~arrival:(a +. skew) ~t_transition:t_tr)
   else
     S.Circuit.drive c g.S.Gates.inputs.(1) (S.Gates.steady tech ~level:true));
  let options = { S.Transient.default_options with S.Transient.t_stop = 8e-9 } in
  let res = S.Transient.simulate ~options (S.Circuit.freeze c) in
  let e =
    S.Measure.edge_exn tech (S.Transient.waveform res g.S.Gates.output)
      ~rising:true
  in
  e.S.Measure.e_arrival -. a

let test_simultaneous_speedup () =
  let single = nand2_delay ~both:false ~skew:0. in
  let simultaneous = nand2_delay ~both:true ~skew:0. in
  Alcotest.(check bool) "simultaneous is faster" true
    (simultaneous < 0.85 *. single);
  (* large skew recovers the single-input delay (Figure 2 saturation) *)
  let saturated = nand2_delay ~both:true ~skew:1.5e-9 in
  Alcotest.(check bool) "saturates to pin-to-pin" true
    (Float.abs (saturated -. single) < 0.05 *. single)

let test_vshape_monotone_in_skew () =
  (* delay grows monotonically from zero skew to saturation (Claim 1/2) *)
  let ds = List.map (fun sk -> nand2_delay ~both:true ~skew:sk)
      [ 0.; 0.1e-9; 0.2e-9; 0.35e-9; 0.6e-9 ] in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> b >= a -. 2e-12 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "right arm monotone" true (non_decreasing ds)

let test_position_effect () =
  let delay pos =
    let c = S.Circuit.create tech in
    let g = S.Gates.nand c ~name:"g" ~n:5 in
    S.Gates.attach_inverter_load c g.S.Gates.output;
    let a = 2e-9 in
    Array.iteri
      (fun i node ->
        if i = pos then
          S.Circuit.drive c node
            (S.Gates.falling_input tech ~arrival:a ~t_transition:0.5e-9)
        else S.Circuit.drive c node (S.Gates.steady tech ~level:true))
      g.S.Gates.inputs;
    let options = { S.Transient.default_options with S.Transient.t_stop = 8e-9 } in
    let res = S.Transient.simulate ~options (S.Circuit.freeze c) in
    let e =
      S.Measure.edge_exn tech (S.Transient.waveform res g.S.Gates.output)
        ~rising:true
    in
    e.S.Measure.e_arrival -. a
  in
  let d0 = delay 0 and d4 = delay 4 in
  Alcotest.(check bool) "position 4 slower than position 0" true (d4 > 1.05 *. d0)

let test_nor_gate_function () =
  (* NOR2: simultaneous rising inputs speed up the falling output *)
  let run both =
    let c = S.Circuit.create tech in
    let g = S.Gates.nor c ~name:"g" ~n:2 in
    S.Gates.attach_inverter_load c g.S.Gates.output;
    let a = 2e-9 in
    S.Circuit.drive c g.S.Gates.inputs.(0)
      (S.Gates.rising_input tech ~arrival:a ~t_transition:0.5e-9);
    (if both then
       S.Circuit.drive c g.S.Gates.inputs.(1)
         (S.Gates.rising_input tech ~arrival:a ~t_transition:0.5e-9)
     else S.Circuit.drive c g.S.Gates.inputs.(1) (S.Gates.steady tech ~level:false));
    let options = { S.Transient.default_options with S.Transient.t_stop = 8e-9 } in
    let res = S.Transient.simulate ~options (S.Circuit.freeze c) in
    let e =
      S.Measure.edge_exn tech (S.Transient.waveform res g.S.Gates.output)
        ~rising:false
    in
    e.S.Measure.e_arrival -. a
  in
  Alcotest.(check bool) "nor simultaneous speedup" true (run true < 0.9 *. run false)

let test_gate_builders_validate () =
  let c = S.Circuit.create tech in
  Alcotest.check_raises "nand arity" (Invalid_argument "Gates.nand: need n >= 1")
    (fun () -> ignore (S.Gates.nand c ~name:"x" ~n:0));
  Alcotest.check_raises "nor arity" (Invalid_argument "Gates.nor: need n >= 1")
    (fun () -> ignore (S.Gates.nor c ~name:"y" ~n:0))

let test_ramp_arrival_definition () =
  (* the arrival of a generated input ramp is its 50 % crossing *)
  let w = S.Gates.falling_input tech ~arrival:2e-9 ~t_transition:0.4e-9 in
  match Pwl.first_crossing w ~rising:false (0.5 *. vdd) with
  | Some t -> Alcotest.(check (float 1e-13)) "arrival at 50%" 2e-9 t
  | None -> Alcotest.fail "expected crossing"

let suites =
  [
    ( "spice.device",
      [
        Alcotest.test_case "cutoff" `Quick test_device_cutoff;
        Alcotest.test_case "signs" `Quick test_device_signs;
        Alcotest.test_case "derivative sum" `Quick test_device_derivative_sum;
        Alcotest.test_case "derivatives vs FD" `Quick
          test_device_derivatives_match_fd;
        Alcotest.test_case "pinch-off continuity" `Quick
          test_device_continuity_at_pinchoff;
      ] );
    ( "spice.dc",
      [
        Alcotest.test_case "inverter rails" `Quick test_dc_inverter_rails;
        Alcotest.test_case "VTC monotone" `Quick test_dc_inverter_monotone;
      ] );
    ( "spice.transient",
      [
        Alcotest.test_case "RC analytic" `Quick test_transient_rc_analytic;
        Alcotest.test_case "inverter switches" `Quick
          test_transient_inverter_switches;
        Alcotest.test_case "simultaneous speedup" `Slow
          test_simultaneous_speedup;
        Alcotest.test_case "V right arm monotone" `Slow
          test_vshape_monotone_in_skew;
        Alcotest.test_case "position effect" `Slow test_position_effect;
        Alcotest.test_case "nor function" `Slow test_nor_gate_function;
        Alcotest.test_case "builder validation" `Quick
          test_gate_builders_validate;
        Alcotest.test_case "ramp arrival definition" `Quick
          test_ramp_arrival_definition;
      ] );
  ]
