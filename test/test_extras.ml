(* Tests for the toolkit extensions: SDF I/O, path reporting, the
   table-lookup comparator, crosstalk fault simulation and VCD export. *)

module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module Sdf = Ssd_sta.Sdf
module Path_report = Ssd_sta.Path_report
module DM = Ssd_core.Delay_model
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Lookup = Ssd_cell.Lookup
module A = Ssd_atpg
module V = Ssd_itr.Value2f
module Interval = Ssd_util.Interval
module S = Ssd_spice

let tech = S.Tech.default
let lib = lazy (Charlib.default ~profile:Charlib.coarse ())
let c17_prim () = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ())
let tt_range = Interval.make 0.2e-9 1.5e-9

(* shared lookup table for the interpolation property (built once) *)
let lut_min = ref infinity
let lut_max = ref neg_infinity

let shared_lut =
  lazy
    (let t =
       Lookup.build ~t_grid:[ 0.3e-9; 0.9e-9 ]
         ~skew_grid:[ -0.5e-9; 0.; 0.5e-9 ] tech Sweep.Nand ~n:2 ~pos_a:0
         ~pos_b:1
     in
     (* extrema by dense probing of the grid corners *)
     List.iter
       (fun ta ->
         List.iter
           (fun tb ->
             List.iter
               (fun sk ->
                 let v = Lookup.pair_delay t ~t_a:ta ~t_b:tb ~skew:sk in
                 if v < !lut_min then lut_min := v;
                 if v > !lut_max then lut_max := v)
               [ -0.5e-9; 0.; 0.5e-9 ])
           [ 0.3e-9; 0.9e-9 ])
       [ 0.3e-9; 0.9e-9 ];
     t)

(* ---------- SDF ---------- *)

let test_sdf_roundtrip () =
  let nl = c17_prim () in
  let sdf = Sdf.of_netlist ~library:(Lazy.force lib) ~tt_range nl in
  Alcotest.(check int) "one cell per gate" (Ck.Netlist.gate_count nl)
    (List.length sdf.Sdf.cells);
  let text = Sdf.to_string sdf in
  let back = Sdf.parse_string text in
  Alcotest.(check string) "design preserved" sdf.Sdf.design back.Sdf.design;
  Alcotest.(check int) "cells preserved" (List.length sdf.Sdf.cells)
    (List.length back.Sdf.cells);
  (* numeric round trip within the printed precision *)
  let first t = List.hd t.Sdf.cells in
  let p1 = List.hd (first sdf).Sdf.paths and p2 = List.hd (first back).Sdf.paths in
  Alcotest.(check (float 1e-14)) "min delay survives" p1.Sdf.rise.Sdf.d_min
    p2.Sdf.rise.Sdf.d_min

let test_sdf_triples_ordered () =
  let nl = c17_prim () in
  let sdf = Sdf.of_netlist ~library:(Lazy.force lib) ~tt_range nl in
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          let ordered t = t.Sdf.d_min <= t.Sdf.d_typ +. 1e-15 && t.Sdf.d_typ <= t.Sdf.d_max +. 1e-15 in
          Alcotest.(check bool) "rise min<=typ<=max" true (ordered p.Sdf.rise);
          Alcotest.(check bool) "fall min<=typ<=max" true (ordered p.Sdf.fall))
        c.Sdf.paths)
    sdf.Sdf.cells

let test_sdf_annotated_sta () =
  let nl = c17_prim () in
  let sdf = Sdf.of_netlist ~library:(Lazy.force lib) ~tt_range nl in
  let ann = Sdf.Annotated.create sdf nl in
  let sta =
    Sta.analyze
      ~pi_spec:{ Sta.pi_arrival = Interval.point 0.; pi_tt = tt_range }
      ~library:(Lazy.force lib) ~model:DM.pin_to_pin nl
  in
  (* the SDF-annotated sweep is the pin-to-pin STA without transition-time
     propagation, so its bounds must agree with the pin-to-pin model's
     within the fit range (here: exactly, because both extremize the same
     fitted curves over the same tt window) *)
  let a = Sdf.Annotated.max_delay ann in
  let b = Sta.max_delay sta in
  Alcotest.(check bool)
    (Printf.sprintf "annotated max %.3f ~ sta max %.3f" (a *. 1e9) (b *. 1e9))
    true
    (Float.abs (a -. b) < 0.25 *. b);
  Alcotest.(check bool) "annotated min positive" true
    (Sdf.Annotated.min_delay ann > 0.)

let test_sdf_parse_errors () =
  let bad s =
    match Sdf.parse_string s with
    | exception Sdf.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "garbage" true (bad "(DELAYFILE (CELL (WHAT)))");
  Alcotest.(check bool) "unbalanced" true (bad "(DELAYFILE");
  Alcotest.(check bool) "not sdf" true (bad "(SOMETHING)")

(* ---------- Path report ---------- *)

let test_path_report_c17 () =
  let nl = c17_prim () in
  let sta = Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed nl in
  let paths = Path_report.critical_paths sta ~k:3 in
  Alcotest.(check int) "three paths" 3 (List.length paths);
  let worst = List.hd paths in
  Alcotest.(check (float 1e-15)) "worst path = max delay" (Sta.max_delay sta)
    worst.Path_report.p_delay;
  (* stages alternate transitions (all primitives invert) and end at the
     endpoint *)
  let rec alternates = function
    | a :: (b :: _ as rest) ->
      a.Path_report.s_transition <> b.Path_report.s_transition
      && alternates rest
    | _ -> true
  in
  Alcotest.(check bool) "transitions alternate" true
    (alternates worst.Path_report.stages);
  (match List.rev worst.Path_report.stages with
  | last :: _ ->
    Alcotest.(check int) "ends at endpoint" worst.Path_report.endpoint
      last.Path_report.node
  | [] -> Alcotest.fail "empty path");
  (* arrivals are non-decreasing along the path *)
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
      b.Path_report.at >= a.Path_report.at -. 1e-15 && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "arrivals non-decreasing" true
    (nondecreasing worst.Path_report.stages)

let test_min_path_flags_speedup () =
  let nl = c17_prim () in
  let sta = Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed nl in
  let min_paths = Path_report.min_paths sta ~k:4 in
  Alcotest.(check bool) "have paths" true (min_paths <> []);
  let best = List.hd min_paths in
  Alcotest.(check (float 1e-15)) "min path = min delay" (Sta.min_delay sta)
    best.Path_report.p_delay;
  (* c17's min-delay under the proposed model involves a simultaneous
     speed-up (that is why Table 2 shows ratio > 1) *)
  Alcotest.(check bool) "speed-up stage flagged" true
    (List.exists (fun s -> s.Path_report.simultaneous) best.Path_report.stages);
  (* render *)
  let text = Path_report.to_string sta best in
  Alcotest.(check bool) "report mentions simultaneous" true
    (String.length text > 0)

(* ---------- Lookup table ---------- *)

let test_lookup_matches_simulator_on_grid () =
  let t =
    Lookup.build ~t_grid:[ 0.3e-9; 0.8e-9 ] ~skew_grid:[ -0.4e-9; 0.; 0.4e-9 ]
      tech Sweep.Nand ~n:2 ~pos_a:0 ~pos_b:1
  in
  Alcotest.(check int) "entries" 12 (Lookup.entries t);
  (* exact at grid points *)
  let sim =
    (Sweep.pair tech Sweep.Nand ~n:2 ~fanout:1 ~pos_a:0 ~pos_b:1 ~t_a:0.3e-9
       ~t_b:0.8e-9 ~skew:0.)
      .Sweep.m_delay
  in
  Alcotest.(check (float 1e-14)) "grid point exact" sim
    (Lookup.pair_delay t ~t_a:0.3e-9 ~t_b:0.8e-9 ~skew:0.)

let test_lookup_interpolates_and_clamps () =
  let t =
    Lookup.build ~t_grid:[ 0.3e-9; 0.9e-9 ] ~skew_grid:[ -0.5e-9; 0.; 0.5e-9 ]
      tech Sweep.Nand ~n:2 ~pos_a:0 ~pos_b:1
  in
  let mid = Lookup.pair_delay t ~t_a:0.6e-9 ~t_b:0.6e-9 ~skew:0.25e-9 in
  Alcotest.(check bool) "interpolation in range" true
    (mid > 10e-12 && mid < 1e-9);
  let clamped = Lookup.pair_delay t ~t_a:5e-9 ~t_b:5e-9 ~skew:10e-9 in
  let corner = Lookup.pair_delay t ~t_a:0.9e-9 ~t_b:0.9e-9 ~skew:0.5e-9 in
  Alcotest.(check (float 1e-14)) "clamps to corner" corner clamped

(* ---------- Fault simulation ---------- *)

let test_fault_sim_detects_atpg_vector () =
  let nl = c17_prim () in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let site =
    {
      A.Fault.aggressor = id "10";
      victim = id "19";
      agg_tr = V.Fall;
      vic_tr = V.Rise;
      delta = 150e-12;
      align_window = 400e-12;
    }
  in
  let sta = Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed nl in
  let cfg = A.Atpg.default_config ~clock_period:(Sta.max_delay sta) in
  let r = A.Atpg.generate cfg ~library:(Lazy.force lib) ~model:DM.proposed nl site in
  match r.A.Atpg.outcome with
  | A.Atpg.Detected vector ->
    let res =
      A.Fault_sim.simulate ~library:(Lazy.force lib) ~model:DM.proposed
        ~clock_period:(Sta.max_delay sta) nl [ site ] [ vector ]
    in
    Alcotest.(check (float 1e-9)) "100% coverage" 100. res.A.Fault_sim.coverage;
    Alcotest.(check bool) "detected by vector 0" true
      (res.A.Fault_sim.detected = [ (0, 0) ])
  | _ -> Alcotest.fail "expected a detection on c17"

let test_fault_sim_random_baseline () =
  let nl = c17_prim () in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let site =
    {
      A.Fault.aggressor = id "10";
      victim = id "19";
      agg_tr = V.Fall;
      vic_tr = V.Rise;
      delta = 150e-12;
      align_window = 400e-12;
    }
  in
  let sta = Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed nl in
  let vectors = A.Fault_sim.random_vectors ~seed:5L ~count:64 nl in
  Alcotest.(check int) "vector count" 64 (List.length vectors);
  let res =
    A.Fault_sim.simulate ~library:(Lazy.force lib) ~model:DM.proposed
      ~clock_period:(Sta.max_delay sta) nl [ site ] vectors
  in
  Alcotest.(check bool) "coverage bounded" true
    (res.A.Fault_sim.coverage >= 0. && res.A.Fault_sim.coverage <= 100.);
  Alcotest.(check bool) "bookkeeping consistent" true
    (List.length res.A.Fault_sim.detected
     + List.length res.A.Fault_sim.undetected
    = 1)

(* ---------- VCD ---------- *)

let test_vcd_export () =
  let c = S.Circuit.create tech in
  let input = S.Circuit.node c "in" and output = S.Circuit.node c "out" in
  S.Gates.inverter c ~input ~output;
  S.Circuit.drive c input
    (S.Gates.rising_input tech ~arrival:0.5e-9 ~t_transition:0.3e-9);
  let fz = S.Circuit.freeze c in
  let result =
    S.Transient.simulate
      ~options:{ S.Transient.default_options with S.Transient.t_stop = 2e-9 }
      fz
  in
  let vcd = S.Vcd.of_result fz result ~nodes:[ input; output ] in
  Alcotest.(check bool) "has header" true
    (String.length vcd > 0
    && String.sub vcd 0 5 = "$date");
  let count_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let c = ref 0 in
    for i = 0 to h - n do
      if String.sub hay i n = needle then incr c
    done;
    !c
  in
  Alcotest.(check int) "two variables declared" 2 (count_sub "$var real" vcd);
  Alcotest.(check bool) "has timesteps" true (count_sub "#" vcd > 10)

(* ---------- property tests over generated circuits ---------- *)

let prop_sdf_roundtrip_generated =
  QCheck.Test.make ~name:"SDF roundtrip on generated circuits" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let nl =
        Ck.Decompose.to_primitive
          (Ck.Generator.generate
             { Ck.Generator.default_params with
               Ck.Generator.n_inputs = 6; n_outputs = 3; n_gates = 25;
               seed = Int64.of_int seed })
      in
      let sdf = Sdf.of_netlist ~library:(Lazy.force lib) ~tt_range nl in
      let back = Sdf.parse_string (Sdf.to_string sdf) in
      List.length back.Sdf.cells = Ck.Netlist.gate_count nl
      && List.for_all2
           (fun a b ->
             a.Sdf.instance = b.Sdf.instance
             && List.length a.Sdf.paths = List.length b.Sdf.paths)
           sdf.Sdf.cells back.Sdf.cells)

let prop_paths_match_po_windows =
  QCheck.Test.make ~name:"traced path delay equals the PO window bound"
    ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let nl =
        Ck.Decompose.to_primitive
          (Ck.Generator.generate
             { Ck.Generator.default_params with
               Ck.Generator.n_inputs = 8; n_outputs = 4; n_gates = 40;
               seed = Int64.of_int seed })
      in
      let sta = Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed nl in
      List.for_all
        (fun po ->
          let lt = Sta.timing sta po in
          let p = Path_report.longest_path sta ~endpoint:po Path_report.Rise in
          let m = Path_report.shortest_path sta ~endpoint:po Path_report.Fall in
          Float.abs
            (p.Path_report.p_delay
            -. Interval.hi lt.Sta.rise.Ssd_core.Types.w_arr)
          < 1e-15
          && Float.abs
               (m.Path_report.p_delay
               -. Interval.lo lt.Sta.fall.Ssd_core.Types.w_arr)
             < 1e-15)
        (Ck.Netlist.outputs nl))

let prop_lookup_within_table_range =
  QCheck.Test.make ~name:"lookup interpolation stays within cell bounds"
    ~count:30
    QCheck.(triple (float_range 0.3e-9 0.9e-9) (float_range 0.3e-9 0.9e-9)
              (float_range (-0.5e-9) 0.5e-9))
    (fun (t_a, t_b, skew) ->
      (* shared small table: trilinear interpolation of a bounded table is
         bounded by the table's extrema *)
      let t = Lazy.force shared_lut in
      let v = Lookup.pair_delay t ~t_a ~t_b ~skew in
      v >= !lut_min -. 1e-15 && v <= !lut_max +. 1e-15)

let suites =
  [
    ( "sta.sdf",
      [
        Alcotest.test_case "roundtrip" `Slow test_sdf_roundtrip;
        Alcotest.test_case "triples ordered" `Slow test_sdf_triples_ordered;
        Alcotest.test_case "annotated sta" `Slow test_sdf_annotated_sta;
        Alcotest.test_case "parse errors" `Quick test_sdf_parse_errors;
      ] );
    ( "sta.paths",
      [
        Alcotest.test_case "critical paths" `Slow test_path_report_c17;
        Alcotest.test_case "min path speedup flag" `Slow
          test_min_path_flags_speedup;
      ] );
    ( "cell.lookup",
      [
        Alcotest.test_case "grid exact" `Slow test_lookup_matches_simulator_on_grid;
        Alcotest.test_case "interpolate & clamp" `Slow
          test_lookup_interpolates_and_clamps;
      ] );
    ( "atpg.fault_sim",
      [
        Alcotest.test_case "detects ATPG vector" `Slow
          test_fault_sim_detects_atpg_vector;
        Alcotest.test_case "random baseline" `Slow test_fault_sim_random_baseline;
      ] );
    ("spice.vcd", [ Alcotest.test_case "export" `Quick test_vcd_export ]);
    ( "extras.props",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_sdf_roundtrip_generated;
          prop_paths_match_po_windows;
          prop_lookup_within_table_range;
        ] );
  ]
