(* Cross-cutting regression and stress tests: end-to-end flows, numeric
   edge cases, and invariants that span several libraries. *)

module Ck = Ssd_circuit
module S = Ssd_spice
module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Vshape = Ssd_core.Vshape
module Cellfn = Ssd_core.Cellfn
module Sta = Ssd_sta.Sta
module TS = Ssd_sta.Timing_sim
module Interval = Ssd_util.Interval
module Rng = Ssd_util.Rng

let tech = S.Tech.default
let lib = lazy (Charlib.default ~profile:Charlib.coarse ())

let tr pos arrival t_tr = { Types.pos; arrival; t_tr }

(* ---------- cross-library end-to-end flows ---------- *)

let test_generated_circuit_full_flow () =
  (* generate -> decompose -> STA both models -> timing sim containment *)
  let nl =
    Ck.Generator.generate
      { Ck.Generator.default_params with
        Ck.Generator.n_inputs = 10; n_outputs = 4; n_gates = 60; seed = 77L }
  in
  let prim = Ck.Decompose.to_primitive nl in
  let pi_spec =
    { Sta.pi_arrival = Interval.point 0.; pi_tt = Interval.point 0.25e-9 }
  in
  let prop = Sta.analyze ~pi_spec ~library:(Lazy.force lib) ~model:DM.proposed prim in
  let p2p = Sta.analyze ~pi_spec ~library:(Lazy.force lib) ~model:DM.pin_to_pin prim in
  Alcotest.(check (float 1e-15)) "same max" (Sta.max_delay p2p) (Sta.max_delay prop);
  Alcotest.(check bool) "proposed min <= p2p min" true
    (Sta.min_delay prop <= Sta.min_delay p2p +. 1e-15);
  (* timing-sim events stay inside the proposed-model windows *)
  let rng = Rng.create 3L in
  for _ = 1 to 5 do
    let npi = List.length (Ck.Netlist.inputs prim) in
    let vec = Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)) in
    let lines =
      TS.simulate ~pi_arrival:0. ~pi_tt:0.25e-9 ~library:(Lazy.force lib)
        ~model:DM.proposed prim vec
    in
    for i = 0 to Ck.Netlist.size prim - 1 do
      match TS.event lines i with
      | None -> ()
      | Some e ->
        let lt = Sta.timing prop i in
        let w = if not (TS.v1 lines i) then lt.Sta.rise else lt.Sta.fall in
        Alcotest.(check bool)
          (Printf.sprintf "event at node %d inside window" i)
          true
          (Interval.contains w.Types.w_arr e.Types.e_arr
          && Interval.contains w.Types.w_tt e.Types.e_tt)
    done
  done

let test_nor_cells_model_accuracy () =
  (* the NOR side of the library gets the same treatment as NAND *)
  let cell = Charlib.find (Lazy.force lib) Sweep.Nor 2 in
  let t = 0.5e-9 in
  let sim skew =
    (Sweep.pair ~sim_h:4e-12 tech Sweep.Nor ~n:2 ~fanout:1 ~pos_a:0 ~pos_b:1
       ~t_a:t ~t_b:t ~skew)
      .Sweep.m_delay
  in
  List.iter
    (fun skew ->
      let m = Vshape.pair_delay cell ~fanout:1 ~a:(tr 0 0. t) ~b:(tr 1 skew t) in
      let s = sim skew in
      Alcotest.(check bool)
        (Printf.sprintf "NOR model within 45ps at %.0fps (err %.0fps)"
           (skew *. 1e12)
           (Float.abs (m -. s) *. 1e12))
        true
        (Float.abs (m -. s) < 45e-12))
    [ -0.8e-9; 0.; 0.8e-9 ];
  (* the V minimum for NOR is also at zero skew *)
  Alcotest.(check bool) "nor valley at zero" true (sim 0. < sim 0.4e-9)

let test_inverter_cell_as_nand1 () =
  let cell = Charlib.find (Lazy.force lib) Sweep.Nand 1 in
  Alcotest.(check int) "single input" 1 cell.Charlib.n;
  Alcotest.(check bool) "no pairs" true (cell.Charlib.pairs = []);
  let e = Vshape.ctl_event cell ~fanout:1 [ tr 0 1e-9 0.4e-9 ] in
  Alcotest.(check bool) "inverter event sane" true
    (e.Types.e_arr > 1e-9 && e.Types.e_arr < 1.5e-9)

(* ---------- numeric edge cases ---------- *)

let test_model_at_range_boundaries () =
  let cell = Charlib.find (Lazy.force lib) Sweep.Nand 2 in
  let lo, hi = cell.Charlib.t_range in
  (* extreme transition times clamp instead of extrapolating *)
  List.iter
    (fun t ->
      let d =
        Vshape.pair_delay cell ~fanout:1 ~a:(tr 0 0. t) ~b:(tr 1 0. t)
      in
      Alcotest.(check bool)
        (Printf.sprintf "delay finite and positive at T=%.2e" t)
        true
        (Float.is_finite d && d > -50e-12 && d < 2e-9))
    [ lo /. 10.; lo; hi; hi *. 3. ]

let test_model_extreme_skews () =
  let cell = Charlib.find (Lazy.force lib) Sweep.Nand 2 in
  let d skew =
    Vshape.pair_delay cell ~fanout:1 ~a:(tr 0 0. 0.5e-9) ~b:(tr 1 skew 0.5e-9)
  in
  (* ±1 µs skew: fully saturated, exactly the pin-to-pin delays *)
  Alcotest.(check (float 1e-15)) "huge positive skew" (d 1e-9 *. 0. +. d 1e-6)
    (d 1e-6);
  Alcotest.(check bool) "finite at huge skews" true
    (Float.is_finite (d 1e-6) && Float.is_finite (d (-1e-6)))

let test_window_functions_degenerate_inputs () =
  let cell = Charlib.find (Lazy.force lib) Sweep.Nand 2 in
  let w =
    {
      Types.w_arr = Interval.point 1e-9;
      w_tt = Interval.point 0.3e-9;
    }
  in
  let out =
    Vshape.ctl_window cell ~fanout:1
      [ { Types.wpos = 0; window = w }; { Types.wpos = 1; window = w } ]
  in
  Alcotest.(check bool) "degenerate inputs give tight output" true
    (Interval.width out.Types.w_arr < 120e-12);
  (* single-input window list also works *)
  let out1 =
    Vshape.ctl_window cell ~fanout:1 [ { Types.wpos = 0; window = w } ]
  in
  Alcotest.(check bool) "single-input window" true
    (Interval.lo out1.Types.w_arr > 1e-9)

let test_load_monotonicity_in_models () =
  let cell = Charlib.find (Lazy.force lib) Sweep.Nand 2 in
  let e fanout =
    (Vshape.ctl_event cell ~fanout [ tr 0 0. 0.5e-9; tr 1 0. 0.5e-9 ])
      .Types.e_arr
  in
  Alcotest.(check bool) "more load, later arrival" true (e 6 >= e 1)

(* ---------- bench/CLI building blocks ---------- *)

let test_fig10_cell_characterizes_without_pairs () =
  let cell =
    Charlib.characterize_cell ~with_pairs:false Charlib.coarse tech Sweep.Nand
      ~n:5
  in
  Alcotest.(check int) "five pins" 5 (Array.length cell.Charlib.to_ctl);
  Alcotest.(check bool) "no pairs" true (cell.Charlib.pairs = []);
  (* the model still answers single and (fallback) pair queries *)
  let d = DM.proposed.DM.single_delay cell ~fanout:1 ~pos:4 ~t_in:0.5e-9 in
  Alcotest.(check bool) "position-4 delay" true (d > 0. && d < 1e-9);
  let pair =
    DM.proposed.DM.pair_delay cell ~fanout:1 ~a:(tr 0 0. 0.5e-9)
      ~b:(tr 4 0. 0.5e-9)
  in
  Alcotest.(check bool) "pair falls back to pin composition" true
    (Float.is_finite pair && pair > 0.)

let test_table2_suite_decomposes_and_analyzes () =
  (* the full Table 2 pipeline runs end to end on every suite member *)
  List.iter
    (fun nl ->
      let prim = Ck.Decompose.to_primitive nl in
      let sta = Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed prim in
      Alcotest.(check bool)
        (Ck.Netlist.name nl ^ " sane window")
        true
        (Sta.min_delay sta > 0. && Sta.max_delay sta > Sta.min_delay sta))
    (Ck.Benchmarks.table2_suite ())

let suites =
  [
    ( "regression.flows",
      [
        Alcotest.test_case "generated circuit full flow" `Slow
          test_generated_circuit_full_flow;
        Alcotest.test_case "NOR cells" `Slow test_nor_cells_model_accuracy;
        Alcotest.test_case "inverter as NAND1" `Slow test_inverter_cell_as_nand1;
        Alcotest.test_case "table2 suite end-to-end" `Slow
          test_table2_suite_decomposes_and_analyzes;
      ] );
    ( "regression.edges",
      [
        Alcotest.test_case "range boundaries" `Slow test_model_at_range_boundaries;
        Alcotest.test_case "extreme skews" `Slow test_model_extreme_skews;
        Alcotest.test_case "degenerate windows" `Slow
          test_window_functions_degenerate_inputs;
        Alcotest.test_case "load monotone" `Slow test_load_monotonicity_in_models;
        Alcotest.test_case "pairless characterization" `Slow
          test_fig10_cell_characterizes_without_pairs;
      ] );
  ]
