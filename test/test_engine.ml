(* The Engine's contract (bit-identity to a fresh analysis of the edited
   circuit, across edit kinds, checkpoint/revert round-trips and lane
   counts) plus the Run_opts wrapper equivalences and the structured
   Eval_cache stats. *)

module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module E = Ssd_sta.Engine
module RO = Ssd_sta.Run_opts
module TS = Ssd_sta.Timing_sim
module A = Ssd_atpg
module DM = Ssd_core.Delay_model
module EC = Ssd_core.Eval_cache
module Types = Ssd_core.Types
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval
module Rng = Ssd_util.Rng

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())
let c17_prim () = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ())
let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let int_eq (a : Interval.t) (b : Interval.t) =
  beq (Interval.lo a) (Interval.lo b) && beq (Interval.hi a) (Interval.hi b)

let win_eq (a : Types.win) (b : Types.win) =
  int_eq a.Types.w_arr b.Types.w_arr && int_eq a.Types.w_tt b.Types.w_tt

let lt_eq (a : Sta.line_timing) (b : Sta.line_timing) =
  win_eq a.Sta.rise b.Sta.rise && win_eq a.Sta.fall b.Sta.fall

(* the oracle: engine windows vs a fresh sequential analysis of the
   edited circuit, bit for bit on every line *)
let engine_matches eng =
  let reference = E.reanalyze eng in
  let n = Ck.Netlist.size (E.netlist eng) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (lt_eq (E.timing eng i) (Sta.timing reference i)) then ok := false
  done;
  !ok

let two_input_gates nl =
  List.filter
    (fun i ->
      match Ck.Netlist.node nl i with
      | Ck.Netlist.Gate { fanin; _ } -> Array.length fanin = 2
      | Ck.Netlist.Pi -> false)
    (List.init (Ck.Netlist.size nl) Fun.id)

let random_edit rng nl =
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  match Rng.int rng 6 with
  | 0 | 1 ->
    E.Set_extra_delay
      {
        line = Rng.int rng (Ck.Netlist.size nl);
        delta = Rng.float_range rng 10e-12 200e-12;
      }
  | 2 ->
    (* removing an extra delay is also an edit *)
    E.Set_extra_delay { line = Rng.int rng (Ck.Netlist.size nl); delta = 0. }
  | 3 ->
    E.Swap_gate
      {
        node = pick (two_input_gates nl);
        kind = (if Rng.bool rng then Ck.Gate.Nand else Ck.Gate.Nor);
      }
  | 4 ->
    let a_hi = Rng.float_range rng 0. 0.2e-9 in
    let tt_lo = Rng.float_range rng 0.1e-9 0.3e-9 in
    E.Set_pi_spec
      {
        pi = pick (Ck.Netlist.inputs nl);
        spec =
          {
            RO.pi_arrival = Interval.make 0. a_hi;
            pi_tt = Interval.make tt_lo (tt_lo +. 0.2e-9);
          };
      }
  | _ -> E.Set_model (if Rng.bool rng then DM.proposed else DM.pin_to_pin)

let prop_engine_bit_identical =
  (* random edit sequences on random primitive netlists, with nested
     checkpoint/revert round-trips, at jobs 1 and 4: after every step the
     engine must equal its own reference re-analysis, and reverting to
     the opening checkpoint must land bit-exactly on the opening pass *)
  QCheck.Test.make ~name:"engine edits bit-identical to reanalyze (jobs 1, 4)"
    ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      List.for_all
        (fun jobs ->
          let rng = Rng.create (Int64.of_int (seed + (1000 * jobs))) in
          let nl =
            Ck.Decompose.to_primitive
              (Ck.Generator.generate
                 {
                   Ck.Generator.default_params with
                   Ck.Generator.g_name = "eco";
                   n_inputs = 6;
                   n_outputs = 3;
                   n_gates = 20 + Rng.int rng 30;
                   seed = Int64.of_int (seed + 1);
                 })
          in
          let opts = RO.make ~jobs () in
          E.with_engine ~opts ~library:(Lazy.force lib) ~model:DM.proposed nl
            (fun eng ->
              let base = E.reanalyze eng in
              let ok = ref (engine_matches eng) in
              let step () =
                E.apply eng (random_edit rng nl);
                if not (engine_matches eng) then ok := false
              in
              let cp0 = E.checkpoint eng in
              for _ = 1 to 3 do step () done;
              let mid = E.checkpoint eng in
              for _ = 1 to 3 do step () done;
              E.revert eng mid;
              if not (engine_matches eng) then ok := false;
              step ();
              E.revert eng cp0;
              if not (engine_matches eng) then ok := false;
              for i = 0 to Ck.Netlist.size nl - 1 do
                if not (lt_eq (E.timing eng i) (Sta.timing base i)) then
                  ok := false
              done;
              Alcotest.(check int) "depth after full revert" 0 (E.depth eng);
              !ok))
        [ 1; 4 ])

(* Containment up to accumulated rounding: the timing simulator merges
   events in a different order than the STA kernel folds window bounds,
   so a simulated event can land a few ulps-worth of accumulated error
   outside the window.  The worst case on record (qcheck input 274715,
   reproduced below as a deterministic regression) undershoots a tt
   window's lower bound by ~9e-14 s — about 1.3e-3 of that window's
   width — so the slack is relative to the window delta with margin,
   plus an absolute floor for degenerate point windows. *)
let contains_eps (w : Interval.t) v =
  let slack = 1e-13 +. (5e-3 *. (Interval.hi w -. Interval.lo w)) in
  Interval.lo w -. slack <= v && v <= Interval.hi w +. slack

let faulty_tsim_within_faulty_windows seed =
  (* soundness of the Fault_sim window screen: under the fault (a
     per-line extra delay), every timing-simulation event still falls
     inside the corresponding faulty STA window — the same containment
     the fault-free property in test_sta establishes, here with the
     extra_delay hook threaded through both engines *)
  let rng = Rng.create (Int64.of_int seed) in
  let nl = c17_prim () in
  let victim = Rng.int rng (Ck.Netlist.size nl) in
  let delta = Rng.float_range rng 10e-12 300e-12 in
  let extra_delay i = if i = victim then delta else 0. in
  let pi_spec =
    { Sta.pi_arrival = Interval.point 0.; pi_tt = Interval.point 0.25e-9 }
  in
  let sta =
    Sta.analyze_with ~extra_delay (RO.make ~pi_spec ())
      ~library:(Lazy.force lib) ~model:DM.proposed nl
  in
  let npi = List.length (Ck.Netlist.inputs nl) in
  let vec = Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)) in
  let lines =
    TS.simulate ~extra_delay ~pi_arrival:0. ~pi_tt:0.25e-9
      ~library:(Lazy.force lib) ~model:DM.proposed nl vec
  in
  Array.for_all
    (fun i ->
      match TS.event lines i with
      | None -> true
      | Some e ->
        let lt = Sta.timing sta i in
        let w = if not (TS.v1 lines i) then lt.Sta.rise else lt.Sta.fall in
        contains_eps w.Types.w_arr e.Types.e_arr
        && contains_eps w.Types.w_tt e.Types.e_tt)
    (Array.init (Ck.Netlist.size nl) Fun.id)

let prop_faulty_tsim_within_faulty_windows =
  QCheck.Test.make ~name:"faulty tsim events within faulty STA windows"
    ~count:25
    QCheck.(int_range 0 1_000_000)
    faulty_tsim_within_faulty_windows

let test_tsim_window_regression_274715 () =
  (* the historical flake: before [contains_eps], this input produced a
     tt-window undershoot of 8.97e-14 s on one line and 1.32e-14 s on
     another, failing the strict containment check *)
  Alcotest.(check bool) "input 274715 stays within epsilon" true
    (faulty_tsim_within_faulty_windows 274715)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.failf "%s: expected Invalid_argument" name

let test_apply_validation () =
  (* every rejected edit raises and leaves the engine untouched *)
  let nl = c17_prim () in
  E.with_engine ~library:(Lazy.force lib) ~model:DM.proposed nl (fun eng ->
      let n = Ck.Netlist.size nl in
      let snapshot = Array.init n (E.timing eng) in
      let some_pi = List.hd (Ck.Netlist.inputs nl) in
      let some_gate = List.hd (two_input_gates nl) in
      List.iter
        (fun (name, edit) ->
          expect_invalid name (fun () -> E.apply eng edit))
        [
          ("negative id", E.Set_extra_delay { line = -1; delta = 1e-12 });
          ("out-of-range id", E.Set_extra_delay { line = n; delta = 1e-12 });
          ( "nan delta",
            E.Set_extra_delay { line = some_gate; delta = Float.nan } );
          ( "infinite delta",
            E.Set_extra_delay { line = some_gate; delta = Float.infinity } );
          ( "pi spec on a gate output",
            E.Set_pi_spec { pi = some_gate; spec = RO.default_pi_spec } );
          ("swap on a PI", E.Swap_gate { node = some_pi; kind = Ck.Gate.Nand });
          ( "NOT on a 2-input gate",
            E.Swap_gate { node = some_gate; kind = Ck.Gate.Not } );
          ( "non-primitive kind",
            E.Swap_gate { node = some_gate; kind = Ck.Gate.Xor } );
          ("windowless model", E.Set_model DM.jun);
        ];
      Alcotest.(check int) "depth untouched" 0 (E.depth eng);
      for i = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "line %d untouched" i)
          true
          (lt_eq (E.timing eng i) snapshot.(i))
      done)

let test_commit_and_close () =
  let nl = c17_prim () in
  let eng = E.create ~library:(Lazy.force lib) ~model:DM.proposed nl in
  let some_gate = List.hd (two_input_gates nl) in
  let cp = E.checkpoint eng in
  E.apply eng (E.Set_extra_delay { line = some_gate; delta = 20e-12 });
  E.commit eng;
  expect_invalid "checkpoint predates commit" (fun () -> E.revert eng cp);
  Alcotest.(check int) "edits survive the commit" 1 (E.depth eng);
  Alcotest.(check bool) "extra delay still applied" true
    (beq (E.extra_delay_of eng some_gate) 20e-12);
  Alcotest.(check int) "stats count the edit" 1 (E.stats eng).E.edits;
  E.close eng;
  E.close eng (* idempotent *);
  expect_invalid "closed engine rejects queries" (fun () ->
      ignore (E.timing eng 0 : Sta.line_timing))

let test_cached_parallel_session () =
  (* cache:true over a session's lifetime and jobs:4 propagation must not
     move a bit relative to the fresh uncached sequential reference *)
  let nl = c17_prim () in
  let opts = RO.make ~jobs:4 ~cache:true () in
  E.with_engine ~opts ~library:(Lazy.force lib) ~model:DM.proposed nl
    (fun eng ->
      let some_gate = List.hd (two_input_gates nl) in
      List.iter
        (fun edit ->
          E.apply eng edit;
          Alcotest.(check bool) "cached engine matches reanalyze" true
            (engine_matches eng))
        [
          E.Set_extra_delay { line = some_gate; delta = 35e-12 };
          E.Swap_gate { node = some_gate; kind = Ck.Gate.Nor };
          E.Set_model DM.pin_to_pin;
        ])

let test_run_opts_wrappers () =
  (* the legacy optional-argument entry points are thin wrappers over the
     Run_opts ones: same inputs, bit-identical outputs *)
  let nl = c17_prim () in
  let lib = Lazy.force lib in
  let a = Sta.analyze ~jobs:4 ~cache:true ~library:lib ~model:DM.proposed nl in
  let b =
    Sta.analyze_with
      (RO.make ~jobs:4 ~cache:true ())
      ~library:lib ~model:DM.proposed nl
  in
  for i = 0 to Ck.Netlist.size nl - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "sta wrapper line %d" i)
      true
      (lt_eq (Sta.timing a i) (Sta.timing b i))
  done;
  let sites =
    A.Fault.extract ~count:8 ~delta:60e-12 ~align_window:2500e-12 ~seed:11L nl
  in
  let vectors = A.Fault_sim.random_vectors ~seed:5L ~count:16 nl in
  let clock_period = Sta.max_delay a in
  let r1 =
    A.Fault_sim.simulate ~jobs:1 ~library:lib ~model:DM.proposed ~clock_period
      nl sites vectors
  in
  let r2 =
    A.Fault_sim.simulate_with (RO.make ()) ~library:lib ~model:DM.proposed
      ~clock_period nl sites vectors
  in
  Alcotest.(check bool) "faultsim wrapper identical" true
    (r1.A.Fault_sim.detected = r2.A.Fault_sim.detected
    && r1.A.Fault_sim.undetected = r2.A.Fault_sim.undetected
    && r1.A.Fault_sim.coverage = r2.A.Fault_sim.coverage)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_eval_cache_stats () =
  let nl = c17_prim () in
  let uncached =
    Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed nl
  in
  Alcotest.(check bool) "no stats without a cache" true
    (Sta.cache_stats uncached = None);
  let t = Sta.analyze ~cache:true ~library:(Lazy.force lib) ~model:DM.proposed nl in
  match Sta.cache_stats t with
  | None -> Alcotest.fail "cache:true must expose stats"
  | Some st ->
    Alcotest.(check bool) "lookups happened" true
      (st.EC.s_hits + st.EC.s_misses > 0);
    Alcotest.(check bool) "one entry per miss at most" true
      (st.EC.s_entries > 0 && st.EC.s_entries <= st.EC.s_misses);
    let ratio = EC.hit_ratio st in
    Alcotest.(check bool) "hit ratio in [0, 100]" true
      (ratio >= 0. && ratio <= 100.);
    let line = EC.to_string st in
    Alcotest.(check bool) "one-liner renders the counters" true
      (contains line "hits"
      && contains line (string_of_int st.EC.s_entries))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "engine.api",
      [
        Alcotest.test_case "apply validation" `Slow test_apply_validation;
        Alcotest.test_case "commit and close" `Slow test_commit_and_close;
        Alcotest.test_case "cached parallel session" `Slow
          test_cached_parallel_session;
        Alcotest.test_case "run-opts wrappers" `Slow test_run_opts_wrappers;
        Alcotest.test_case "eval-cache stats" `Slow test_eval_cache_stats;
        Alcotest.test_case "tsim window containment, input 274715" `Quick
          test_tsim_window_regression_274715;
      ] );
    qsuite "engine.props"
      [ prop_engine_bit_identical; prop_faulty_tsim_within_faulty_windows ];
  ]
