(* The serve stack: wire-protocol golden behavior (framing, versioning,
   admission control), the session manager's lifecycle and checkpoint
   registry, cross-session batch determinism at different lane counts,
   record/replay bit-identity over a randomized session script, the
   Engine edit codec round-trip property and the Run_opts builder. *)

module Ck = Ssd_circuit
module Charlib = Ssd_cell.Charlib
module DM = Ssd_core.Delay_model
module E = Ssd_sta.Engine
module RO = Ssd_sta.Run_opts
module Session = Ssd_sta.Session
module Interval = Ssd_util.Interval
module Json = Ssd_util.Json
module P = Ssd_serve.Protocol
module Server = Ssd_serve.Server

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())
let c17_prim () = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ())

let mk_server ?(jobs = 1) ?max_frame ?record () =
  let cfg = Server.default_config ~library:(Lazy.force lib) in
  let cfg =
    {
      cfg with
      Server.sv_jobs = jobs;
      sv_record = record;
      sv_max_frame_bytes =
        Option.value ~default:cfg.Server.sv_max_frame_bytes max_frame;
    }
  in
  Server.create cfg

let with_server ?jobs ?max_frame ?record f =
  let sv = mk_server ?jobs ?max_frame ?record () in
  Fun.protect ~finally:(fun () -> Server.close sv) (fun () -> f sv)

let code_of resp =
  match Json.parse resp with
  | Ok j -> P.response_error_code j
  | Error _ -> None

let is_ok resp =
  match Json.parse resp with Ok j -> P.response_ok j | Error _ -> false

(* ---- protocol golden behavior ---- *)

let test_protocol_golden () =
  with_server (fun sv ->
      let d = Server.dispatch sv in
      (* stable envelopes are pinned byte for byte *)
      Alcotest.(check string)
        "unknown version"
        "{\"v\":1,\"id\":7,\"error\":{\"code\":\"bad-version\",\"message\":\
         \"unsupported protocol version 9 (serve speaks 1)\"}}"
        (d "{\"v\":9,\"id\":7,\"op\":\"ping\"}");
      Alcotest.(check string)
        "missing version"
        "{\"v\":1,\"id\":null,\"error\":{\"code\":\"bad-version\",\
         \"message\":\"request carries no \\\"v\\\" field\"}}"
        (d "{\"op\":\"ping\"}");
      Alcotest.(check string)
        "missing op"
        "{\"v\":1,\"id\":null,\"error\":{\"code\":\"bad-request\",\
         \"message\":\"request carries no \\\"op\\\" string\"}}"
        (d "{\"v\":1}");
      Alcotest.(check string)
        "non-object frame"
        "{\"v\":1,\"id\":null,\"error\":{\"code\":\"bad-request\",\
         \"message\":\"request is not a JSON object\"}}"
        (d "[1,2]");
      Alcotest.(check string)
        "ping"
        "{\"v\":1,\"id\":1,\"ok\":{\"pong\":true}}"
        (d "{\"v\":1,\"id\":1,\"op\":\"ping\"}");
      (* message text of parse errors belongs to the JSON parser; only
         the code is contractual *)
      Alcotest.(check (option string))
        "malformed frame" (Some "bad-frame")
        (code_of (d "{nope"));
      Alcotest.(check (option string))
        "unknown op" (Some "unknown-op")
        (code_of (d "{\"v\":1,\"op\":\"frobnicate\"}"));
      Alcotest.(check (option string))
        "engine op without session" (Some "bad-request")
        (code_of (d "{\"v\":1,\"op\":\"query\"}"));
      Alcotest.(check (option string))
        "engine op against unknown session" (Some "unknown-session")
        (code_of (d "{\"v\":1,\"op\":\"query\",\"session\":\"ghost\"}")))

let test_oversized_frame () =
  with_server ~max_frame:64 (fun sv ->
      let big =
        Printf.sprintf "{\"v\":1,\"op\":\"ping\",\"pad\":%S}"
          (String.make 100 'x')
      in
      Alcotest.(check (option string))
        "oversized frame" (Some "frame-too-large")
        (code_of (Server.dispatch sv big));
      Alcotest.(check (option string))
        "small frame still fine" None
        (code_of (Server.dispatch sv "{\"v\":1,\"op\":\"ping\"}")))

let test_code_round_trip () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (P.code_string c) true
        (P.code_of_string (P.code_string c) = Some c))
    [
      P.Bad_frame; P.Bad_version; P.Bad_request; P.Unknown_op; P.Bad_params;
      P.Unknown_session; P.Session_exists; P.Too_many_sessions;
      P.Frame_too_large; P.Unknown_signal; P.Bad_edit; P.Bad_checkpoint;
      P.Engine_error; P.Shutting_down;
    ];
  Alcotest.(check bool) "unknown spelling" true
    (P.code_of_string "no-such-code" = None)

let test_shutdown_drains () =
  with_server (fun sv ->
      let rs =
        Server.dispatch_batch sv
          [
            "{\"v\":1,\"id\":1,\"op\":\"ping\"}";
            "{\"v\":1,\"id\":2,\"op\":\"shutdown\"}";
            "{\"v\":1,\"id\":3,\"op\":\"ping\"}";
          ]
      in
      match rs with
      | [ a; b; c ] ->
        Alcotest.(check bool) "ping ok" true (is_ok a);
        Alcotest.(check bool) "shutdown ok" true (is_ok b);
        Alcotest.(check (option string))
          "post-shutdown rejected" (Some "shutting-down") (code_of c);
        Alcotest.(check bool) "flagged" true (Server.shutting_down sv)
      | _ -> Alcotest.fail "expected 3 responses")

(* ---- session lifecycle (open/edit/query/close through dispatch) ---- *)

let test_session_lifecycle () =
  with_server (fun sv ->
      let d = Server.dispatch sv in
      let r = d "{\"v\":1,\"id\":1,\"op\":\"open\",\"session\":\"s\",\"circuit\":\"c17\"}" in
      Alcotest.(check bool) "open ok" true (is_ok r);
      Alcotest.(check (option string))
        "duplicate open" (Some "session-exists")
        (code_of (d "{\"v\":1,\"op\":\"open\",\"session\":\"s\",\"circuit\":\"c17\"}"));
      Alcotest.(check (option string))
        "unknown circuit" (Some "bad-params")
        (code_of (d "{\"v\":1,\"op\":\"open\",\"session\":\"t\",\"circuit\":\"nope\"}"));
      let cp = d "{\"v\":1,\"op\":\"checkpoint\",\"session\":\"s\"}" in
      Alcotest.(check bool) "checkpoint ok" true (is_ok cp);
      let q0 = d "{\"v\":1,\"op\":\"query\",\"session\":\"s\"}" in
      let e =
        d "{\"v\":1,\"op\":\"edit\",\"session\":\"s\",\"edits\":[{\"op\":\"extra\",\"signal\":\"11\",\"delta\":5e-11}]}"
      in
      Alcotest.(check bool) "edit ok" true (is_ok e);
      let q1 = d "{\"v\":1,\"op\":\"query\",\"session\":\"s\"}" in
      Alcotest.(check bool) "edit moved the PO window" true (q0 <> q1);
      (* a failing batch rolls back atomically *)
      Alcotest.(check (option string))
        "bad edit in batch" (Some "bad-edit")
        (code_of
           (d "{\"v\":1,\"op\":\"edit\",\"session\":\"s\",\"edits\":[{\"op\":\"extra\",\"signal\":\"11\",\"delta\":1e-11},{\"op\":\"swap\",\"signal\":\"zzz\",\"kind\":\"nor\"}]}"));
      Alcotest.(check string) "rollback left timing unchanged" q1
        (d "{\"v\":1,\"op\":\"query\",\"session\":\"s\"}");
      let rv = d "{\"v\":1,\"op\":\"revert\",\"session\":\"s\",\"checkpoint\":1}" in
      Alcotest.(check bool) "revert ok" true (is_ok rv);
      Alcotest.(check string) "revert restored the pre-edit window" q0
        (d "{\"v\":1,\"op\":\"query\",\"session\":\"s\"}");
      Alcotest.(check (option string))
        "stale checkpoint after commit" (Some "bad-checkpoint")
        (code_of
           (let _ = d "{\"v\":1,\"op\":\"commit\",\"session\":\"s\"}" in
            d "{\"v\":1,\"op\":\"revert\",\"session\":\"s\",\"checkpoint\":1}"));
      let st = d "{\"v\":1,\"op\":\"stats\",\"session\":\"s\"}" in
      Alcotest.(check bool) "per-session stats ok" true (is_ok st);
      Alcotest.(check bool) "stats carry engine counters" true
        (let contains hay needle =
           let lh = String.length hay and ln = String.length needle in
           let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
           go 0
         in
         contains st "engine.edits");
      Alcotest.(check bool) "close ok" true
        (is_ok (d "{\"v\":1,\"op\":\"close\",\"session\":\"s\"}"));
      Alcotest.(check (option string))
        "query after close" (Some "unknown-session")
        (code_of (d "{\"v\":1,\"op\":\"query\",\"session\":\"s\"}")))

(* ---- session manager unit behavior ---- *)

let test_session_manager () =
  let mgr = Session.create ~max_sessions:2 ~library:(Lazy.force lib) () in
  Fun.protect
    ~finally:(fun () -> Session.close_all mgr)
    (fun () ->
      let nl = c17_prim () in
      let ok = function Ok s -> s | Error e -> Alcotest.fail (Session.error_message e) in
      let a = ok (Session.open_session mgr ~name:"a" nl) in
      let _b = ok (Session.open_session mgr ~name:"b" nl) in
      (match Session.open_session mgr ~name:"a" nl with
      | Error (Session.Duplicate_session _) -> ()
      | _ -> Alcotest.fail "duplicate admitted");
      (match Session.open_session mgr ~name:"c" nl with
      | Error (Session.Too_many_sessions 2) -> ()
      | _ -> Alcotest.fail "cap not enforced");
      Alcotest.(check (list string)) "names" [ "a"; "b" ] (Session.names mgr);
      (* dense checkpoint ids; revert invalidates the ids above it *)
      Alcotest.(check int) "cp1" 1 (Session.checkpoint a);
      Session.with_session a (fun eng ->
          E.apply eng (E.Set_extra_delay { line = 0; delta = 1e-12 }));
      Alcotest.(check int) "cp2" 2 (Session.checkpoint a);
      Alcotest.(check bool) "revert to 1" true (Session.revert a 1 = Ok ());
      Alcotest.(check bool) "id 2 dropped" true
        (match Session.revert a 2 with Error _ -> true | Ok () -> false);
      Alcotest.(check bool) "unknown id" true
        (match Session.revert a 99 with Error _ -> true | Ok () -> false);
      Alcotest.(check bool) "close b" true
        (Session.close_session mgr "b" = Ok ());
      (match Session.find mgr "b" with
      | Error (Session.Unknown_session _) -> ()
      | _ -> Alcotest.fail "closed session still found");
      (* slot freed: a new session is admitted again *)
      let _c = ok (Session.open_session mgr ~name:"c" nl) in
      Alcotest.(check int) "count" 2 (Session.count mgr))

(* ---- cross-session batch determinism ---- *)

(* one batch interleaving two sessions: lifecycle barriers, grouped
   engine runs, checkpoints and a rollback.  The full response list must
   be byte-identical whatever the lane count. *)
let interleaved_script =
  [
    "{\"v\":1,\"id\":1,\"op\":\"open\",\"session\":\"a\",\"gen\":{\"gates\":30,\"seed\":5}}";
    "{\"v\":1,\"id\":2,\"op\":\"open\",\"session\":\"b\",\"circuit\":\"c17\"}";
    "{\"v\":1,\"id\":3,\"op\":\"checkpoint\",\"session\":\"a\"}";
    "{\"v\":1,\"id\":4,\"op\":\"query\",\"session\":\"b\",\"what\":\"po_delays\"}";
    "{\"v\":1,\"id\":5,\"op\":\"edit\",\"session\":\"a\",\"edits\":[{\"op\":\"extra\",\"signal\":\"g29\",\"delta\":2e-11}]}";
    "{\"v\":1,\"id\":6,\"op\":\"edit\",\"session\":\"b\",\"edits\":[{\"op\":\"swap\",\"signal\":\"10\",\"kind\":\"nor\"}]}";
    "{\"v\":1,\"id\":7,\"op\":\"query\",\"session\":\"a\"}";
    "{\"v\":1,\"id\":8,\"op\":\"query\",\"session\":\"b\"}";
    "{\"v\":1,\"id\":9,\"op\":\"revert\",\"session\":\"a\",\"checkpoint\":1}";
    "{\"v\":1,\"id\":10,\"op\":\"query\",\"session\":\"a\",\"what\":\"path\",\"k\":2}";
    "{\"v\":1,\"id\":11,\"op\":\"query\",\"session\":\"b\",\"what\":\"timing\",\"signal\":\"22\"}";
    "{\"v\":1,\"id\":12,\"op\":\"close\",\"session\":\"a\"}";
    "{\"v\":1,\"id\":13,\"op\":\"close\",\"session\":\"b\"}";
  ]

let run_script ~jobs frames =
  with_server ~jobs (fun sv -> Server.dispatch_batch sv frames)

let test_batch_determinism () =
  let seq = run_script ~jobs:1 interleaved_script in
  let par = run_script ~jobs:4 interleaved_script in
  Alcotest.(check (list string)) "jobs 1 = jobs 4" seq par;
  List.iter
    (fun r -> Alcotest.(check bool) ("ok: " ^ r) true (is_ok r))
    seq

(* ---- record/replay bit-identity over a random session script ---- *)

let random_frame rng =
  let sess = [ "x"; "y"; "z" ] in
  let s () = List.nth sess (Random.State.int rng 3) in
  let signal () =
    [ "1"; "2"; "3"; "6"; "7"; "10"; "11"; "16"; "19"; "22"; "23" ]
    |> fun l -> List.nth l (Random.State.int rng (List.length l))
  in
  match Random.State.int rng 10 with
  | 0 ->
    Printf.sprintf
      "{\"v\":1,\"op\":\"open\",\"session\":%S,\"circuit\":\"c17\"}" (s ())
  | 1 ->
    Printf.sprintf
      "{\"v\":1,\"op\":\"edit\",\"session\":%S,\"edits\":[{\"op\":\"extra\",\"signal\":%S,\"delta\":%de-12}]}"
      (s ()) (signal ())
      (1 + Random.State.int rng 100)
  | 2 ->
    Printf.sprintf
      "{\"v\":1,\"op\":\"edit\",\"session\":%S,\"edits\":[{\"op\":\"swap\",\"signal\":%S,\"kind\":\"nor\"}]}"
      (s ()) (signal ())
  | 3 -> Printf.sprintf "{\"v\":1,\"op\":\"checkpoint\",\"session\":%S}" (s ())
  | 4 ->
    Printf.sprintf
      "{\"v\":1,\"op\":\"revert\",\"session\":%S,\"checkpoint\":%d}" (s ())
      (1 + Random.State.int rng 3)
  | 5 -> Printf.sprintf "{\"v\":1,\"op\":\"query\",\"session\":%S}" (s ())
  | 6 ->
    Printf.sprintf
      "{\"v\":1,\"op\":\"query\",\"session\":%S,\"what\":\"timing\",\"signal\":%S}"
      (s ()) (signal ())
  | 7 -> Printf.sprintf "{\"v\":1,\"op\":\"close\",\"session\":%S}" (s ())
  | 8 -> "{\"v\":1,\"op\":\"stats\"}"
  | _ -> "{\"v\":1,\"op\":\"ping\"}"

let test_record_replay () =
  let rng = Random.State.make [| 0xC0FFEE |] in
  let frames = List.init 60 (fun _ -> random_frame rng) in
  let log = Filename.temp_file "serve_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      with_server ~record:log (fun sv ->
          List.iter (fun f -> ignore (Server.dispatch sv f)) frames);
      with_server (fun sv ->
          match Server.replay sv ~path:log ~check:true with
          | Error m -> Alcotest.fail m
          | Ok (n, mismatches) ->
            Alcotest.(check int) "all requests replayed" 60 n;
            (match mismatches with
            | [] -> ()
            | (line, expected, got) :: _ ->
              Alcotest.failf "line %d diverged:\n  %s\n  %s" line expected
                got)))

(* ---- Engine edit codec round-trip (qcheck property) ---- *)

let edit_gen nl =
  let open QCheck.Gen in
  let n = Ck.Netlist.size nl in
  let node = int_bound (n - 1) in
  let iv =
    map2
      (fun lo w -> Interval.make (lo *. 1e-9) ((lo +. w) *. 1e-9))
      (float_range 0. 2.) (float_range 0. 3.)
  in
  oneof
    [
      map2
        (fun line d -> E.Set_extra_delay { line; delta = d *. 1e-12 })
        node (float_range (-50.) 300.);
      map2
        (fun nd k ->
          E.Swap_gate
            {
              node = nd;
              kind = List.nth [ Ck.Gate.Nand; Ck.Gate.Nor; Ck.Gate.Not ] k;
            })
        node (int_bound 2);
      map2
        (fun pi (a, t) ->
          E.Set_pi_spec { pi; spec = { RO.pi_arrival = a; pi_tt = t } })
        node (pair iv iv);
      map
        (fun i -> E.Set_model (List.nth DM.all i))
        (int_bound (List.length DM.all - 1));
    ]

let test_edit_codec_round_trip =
  let nl = lazy (c17_prim ()) in
  QCheck.Test.make ~name:"edit codec round-trips through JSON" ~count:300
    (QCheck.make
       (QCheck.Gen.sized (fun _ st -> (edit_gen (Lazy.force nl)) st)))
    (fun edit ->
      let nl = Lazy.force nl in
      match E.edit_of_json nl (E.edit_to_json nl edit) with
      | Ok back -> E.edit_equal edit back
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m)

let test_edit_codec_errors () =
  let nl = c17_prim () in
  let bad j =
    match E.edit_of_json nl j with Error _ -> true | Ok _ -> false
  in
  let parse s = match Json.parse s with Ok j -> j | Error m -> Alcotest.fail m in
  Alcotest.(check bool) "unknown op" true
    (bad (parse "{\"op\":\"warp\",\"signal\":\"10\"}"));
  Alcotest.(check bool) "unknown signal" true
    (bad (parse "{\"op\":\"extra\",\"signal\":\"zzz\",\"delta\":1e-12}"));
  Alcotest.(check bool) "unknown model" true
    (bad (parse "{\"op\":\"model\",\"name\":\"zzz\"}"));
  Alcotest.(check bool) "malformed interval" true
    (bad
       (parse
          "{\"op\":\"pi\",\"signal\":\"1\",\"arrival\":[1e-9],\"tt\":[0,1e-9]}"));
  Alcotest.(check bool) "not an object" true (bad (parse "[1]"))

(* ---- Run_opts builder and validation ---- *)

let test_run_opts_builder () =
  let o =
    RO.(default |> with_jobs 4 |> with_cache true |> with_corners 3
        |> with_mc_batch 8)
  in
  Alcotest.(check int) "jobs" 4 o.RO.jobs;
  Alcotest.(check bool) "cache" true o.RO.cache;
  Alcotest.(check int) "corners" 3 o.RO.corners;
  Alcotest.(check int) "mc_batch" 8 o.RO.mc_batch;
  (match RO.validate o with
  | Ok o' -> Alcotest.(check int) "validate passes it through" 4 o'.RO.jobs
  | Error m -> Alcotest.fail m);
  let bad o = match RO.validate o with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "corners < 1" true
    (bad RO.(default |> with_corners 0));
  Alcotest.(check bool) "mc_batch < 1" true
    (bad RO.(default |> with_mc_batch 0));
  Alcotest.(check bool) "negative tt window" true
    (bad
       RO.(
         default
         |> with_pi_spec
              {
                pi_arrival = Interval.point 0.;
                pi_tt = Interval.make (-1e-9) 1e-9;
              }));
  (match RO.make ~corners:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "make accepted corners = 0")

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "serve.protocol",
      [
        Alcotest.test_case "golden envelopes and codes" `Quick
          test_protocol_golden;
        Alcotest.test_case "oversized frame admission" `Quick
          test_oversized_frame;
        Alcotest.test_case "error-code wire spellings" `Quick
          test_code_round_trip;
        Alcotest.test_case "shutdown rejects later frames" `Quick
          test_shutdown_drains;
      ] );
    ( "serve.session",
      [
        Alcotest.test_case "lifecycle through dispatch" `Quick
          test_session_lifecycle;
        Alcotest.test_case "manager admission and checkpoints" `Quick
          test_session_manager;
      ] );
    ( "serve.determinism",
      [
        Alcotest.test_case "interleaved batch, jobs 1 = jobs 4" `Quick
          test_batch_determinism;
        Alcotest.test_case "record/replay bit-identity" `Quick
          test_record_replay;
      ] );
    qsuite "serve.codec" [ test_edit_codec_round_trip ];
    ( "serve.codec.errors",
      [
        Alcotest.test_case "edit decode failures" `Quick
          test_edit_codec_errors;
        Alcotest.test_case "run_opts builder and validate" `Quick
          test_run_opts_builder;
      ] );
  ]
