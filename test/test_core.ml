module Charlib = Ssd_cell.Charlib
module Sweep = Ssd_cell.Sweep
module Fit = Ssd_cell.Fit
module Types = Ssd_core.Types
module Vshape = Ssd_core.Vshape
module Cellfn = Ssd_core.Cellfn
module DM = Ssd_core.Delay_model
module Interval = Ssd_util.Interval

let tech = Ssd_spice.Tech.default
let lib = lazy (Charlib.default ~profile:Charlib.coarse ())
let nand2 () = Charlib.find (Lazy.force lib) Sweep.Nand 2
let nand3 () = Charlib.find (Lazy.force lib) Sweep.Nand 3

let tr pos arrival t_tr = { Types.pos; arrival; t_tr }

(* ---------- Cellfn ---------- *)

let test_cellfn_load_adjustment () =
  let cell = nand2 () in
  let d1 = Cellfn.pin_delay cell ~fanout:1 Cellfn.Ctl ~pos:0 ~t_in:0.5e-9 in
  let d4 = Cellfn.pin_delay cell ~fanout:4 Cellfn.Ctl ~pos:0 ~t_in:0.5e-9 in
  Alcotest.(check (float 1e-15)) "linear load model"
    (d1 +. (3. *. cell.Charlib.load_d_ctl)) d4;
  Alcotest.(check bool) "load slows" true (d4 >= d1)

let test_cellfn_extremes_vs_sampling () =
  (* the corner search (endpoints + fitted peak) matches dense sampling *)
  let cell = nand2 () in
  let iv = Interval.make 0.2e-9 2.8e-9 in
  let _, d_max = Cellfn.max_delay_over cell ~fanout:1 Cellfn.Ctl ~pos:0 iv in
  let _, d_min = Cellfn.min_delay_over cell ~fanout:1 Cellfn.Ctl ~pos:0 iv in
  let sampled =
    List.map
      (fun k ->
        let t = 0.2e-9 +. (2.6e-9 *. float_of_int k /. 100.) in
        Cellfn.pin_delay cell ~fanout:1 Cellfn.Ctl ~pos:0 ~t_in:t)
      (List.init 101 Fun.id)
  in
  let smax = List.fold_left Float.max neg_infinity sampled in
  let smin = List.fold_left Float.min infinity sampled in
  Alcotest.(check bool) "max >= sampled max" true (d_max >= smax -. 1e-13);
  Alcotest.(check bool) "min <= sampled min" true (d_min <= smin +. 1e-13)

let test_cellfn_bad_position () =
  let cell = nand2 () in
  Alcotest.(check bool) "raises" true
    (match Cellfn.pin_delay cell ~fanout:1 Cellfn.Ctl ~pos:5 ~t_in:1e-9 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Vshape point model ---------- *)

let test_vshape_saturation_arms () =
  let cell = nand2 () in
  let a = tr 0 0. 0.5e-9 and t = 0.5e-9 in
  let pin0 = Cellfn.pin_delay cell ~fanout:1 Cellfn.Ctl ~pos:0 ~t_in:t in
  let pin1 = Cellfn.pin_delay cell ~fanout:1 Cellfn.Ctl ~pos:1 ~t_in:t in
  (* far beyond saturation on both sides *)
  let right = Vshape.pair_delay cell ~fanout:1 ~a ~b:(tr 1 5e-9 t) in
  let left = Vshape.pair_delay cell ~fanout:1 ~a ~b:(tr 1 (-5e-9) t) in
  Alcotest.(check (float 1e-15)) "right arm = pin 0" pin0 right;
  Alcotest.(check (float 1e-15)) "left arm = pin 1" pin1 left

let test_vshape_minimum_at_zero () =
  let cell = nand2 () in
  let t = 0.5e-9 in
  let d skew = Vshape.pair_delay cell ~fanout:1 ~a:(tr 0 0. t) ~b:(tr 1 skew t) in
  let d0 = d 0. in
  List.iter
    (fun sk ->
      Alcotest.(check bool)
        (Printf.sprintf "d(%.0fps) >= d(0)" (sk *. 1e12))
        true
        (d sk >= d0 -. 1e-15))
    [ -0.8e-9; -0.3e-9; -0.1e-9; 0.1e-9; 0.3e-9; 0.8e-9 ]

let test_vshape_orientation_symmetry () =
  (* evaluating with swapped roles and mirrored skew gives the same delay *)
  let cell = nand2 () in
  let ta = 0.4e-9 and tb = 0.9e-9 in
  List.iter
    (fun sk ->
      let d1 = Vshape.pair_delay cell ~fanout:1 ~a:(tr 0 0. ta) ~b:(tr 1 sk tb) in
      let d2 = Vshape.pair_delay cell ~fanout:1 ~a:(tr 1 sk tb) ~b:(tr 0 0. ta) in
      Alcotest.(check (float 1e-15)) "swap symmetric" d1 d2)
    [ -0.5e-9; 0.; 0.2e-9 ]

let test_vshape_v_points () =
  let cell = nand2 () in
  let (sl, dl), (s0, d0), (sr, dr) =
    Vshape.v_points cell ~fanout:1 ~pos_a:0 ~pos_b:1 ~t_a:0.5e-9 ~t_b:0.5e-9
  in
  Alcotest.(check (float 0.)) "center at zero skew" 0. s0;
  Alcotest.(check bool) "left saturation negative" true (sl < 0.);
  Alcotest.(check bool) "right saturation positive" true (sr > 0.);
  Alcotest.(check bool) "valley below arms" true (d0 < dr && d0 < dl)

let test_vshape_against_simulator () =
  (* headline accuracy: the model tracks the analog oracle within the
     coarse-profile error budget across the V *)
  let cell = nand2 () in
  let t = 0.5e-9 in
  List.iter
    (fun sk ->
      let sim =
        (Sweep.pair ~sim_h:4e-12 tech Sweep.Nand ~n:2 ~fanout:1 ~pos_a:0
           ~pos_b:1 ~t_a:t ~t_b:t ~skew:sk)
          .Sweep.m_delay
      in
      let m = Vshape.pair_delay cell ~fanout:1 ~a:(tr 0 0. t) ~b:(tr 1 sk t) in
      let err = Float.abs (m -. sim) in
      Alcotest.(check bool)
        (Printf.sprintf "within 40ps at skew %.0fps (err %.0fps)" (sk *. 1e12)
           (err *. 1e12))
        true (err < 40e-12))
    [ -1e-9; 0.; 1e-9 ]

let test_vshape_events () =
  let cell = nand2 () in
  let t = 0.5e-9 in
  (* single transition event = pin-to-pin composition *)
  let e1 = Vshape.ctl_event cell ~fanout:1 [ tr 0 1e-9 t ] in
  Alcotest.(check (float 1e-15)) "single event arrival"
    (1e-9 +. Cellfn.pin_delay cell ~fanout:1 Cellfn.Ctl ~pos:0 ~t_in:t)
    e1.Types.e_arr;
  (* simultaneous pair beats both singles *)
  let e2 = Vshape.ctl_event cell ~fanout:1 [ tr 0 1e-9 t; tr 1 1e-9 t ] in
  Alcotest.(check bool) "pair speeds up" true (e2.Types.e_arr < e1.Types.e_arr);
  (* non-controlling response: latest input *)
  let en = Vshape.non_event cell ~fanout:1 [ tr 0 1e-9 t; tr 1 2e-9 t ] in
  Alcotest.(check bool) "non responds to latest" true (en.Types.e_arr > 2e-9)

let test_vshape_multi_input () =
  (* three simultaneous transitions are at least as fast as any pair *)
  let cell = nand3 () in
  let t = 0.5e-9 in
  let trs = [ tr 0 1e-9 t; tr 1 1e-9 t; tr 2 1e-9 t ] in
  let e3 = Vshape.ctl_event cell ~fanout:1 trs in
  let e2 = Vshape.ctl_event cell ~fanout:1 [ tr 0 1e-9 t; tr 1 1e-9 t ] in
  Alcotest.(check bool) "k=3 at least as fast as k=2" true
    (e3.Types.e_arr <= e2.Types.e_arr +. 1e-15);
  (* and against the simulator *)
  let sim =
    (Sweep.tied ~sim_h:4e-12 tech Sweep.Nand ~n:3 ~fanout:1 ~k:3 ~t_in:t)
      .Sweep.m_delay
  in
  let err = Float.abs (e3.Types.e_arr -. 1e-9 -. sim) in
  Alcotest.(check bool)
    (Printf.sprintf "3-simultaneous within 40ps (err %.0fps)" (err *. 1e12))
    true (err < 40e-12)

let prop_pair_swap_symmetric =
  (* pair_delay and pair_out_tt describe one joint event of two inputs:
     listing the transitions as (a, b) or (b, a) must not matter.  The
     implementation re-orients by position internally; a tiny absolute
     tolerance (1e-16 s on ~1e-10 s delays) absorbs the measure-zero
     corner where the V vertex coincides exactly with saturation. *)
  QCheck.Test.make ~name:"pair_delay/pair_out_tt symmetric in (a, b)"
    ~count:120
    QCheck.(triple (float_range (-1.5e-9) 1.5e-9)
              (pair (float_range 0.15e-9 2.5e-9) (float_range 0.15e-9 2.5e-9))
              (int_range 1 4))
    (fun (skew, (ta, tb), fanout) ->
      let cell = nand2 () in
      let a = tr 0 0. ta and b = tr 1 skew tb in
      let close x y = Float.abs (x -. y) <= 1e-16 in
      close
        (Vshape.pair_delay cell ~fanout ~a ~b)
        (Vshape.pair_delay cell ~fanout ~a:b ~b:a)
      && close
           (Vshape.pair_out_tt cell ~fanout ~a ~b)
           (Vshape.pair_out_tt cell ~fanout ~a:b ~b:a))

(* ---------- Eval_cache ---------- *)

module Eval_cache = Ssd_core.Eval_cache

let test_eval_cache_matches_direct () =
  let cell = nand2 () in
  let cache = Eval_cache.create () in
  let ivs =
    [ Interval.make 0.2e-9 0.2e-9; Interval.make 0.2e-9 1.4e-9;
      Interval.make 0.9e-9 2.7e-9 ]
  in
  let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
  List.iter
    (fun iv ->
      List.iter
        (fun fanout ->
          (* two passes over the same queries: the second is all hits *)
          for _ = 1 to 2 do
            List.iter
              (fun pos ->
                let (t1, d1) =
                  Cellfn.min_delay_over cell ~fanout Cellfn.Ctl ~pos iv
                and (t2, d2) =
                  Eval_cache.min_delay_over cache cell ~fanout Cellfn.Ctl ~pos iv
                in
                Alcotest.(check bool) "min delay bit-equal" true
                  (beq t1 t2 && beq d1 d2);
                let (u1, e1) =
                  Cellfn.max_delay_over cell ~fanout Cellfn.Non ~pos iv
                and (u2, e2) =
                  Eval_cache.max_delay_over cache cell ~fanout Cellfn.Non ~pos iv
                in
                Alcotest.(check bool) "max delay bit-equal" true
                  (beq u1 u2 && beq e1 e2);
                Alcotest.(check bool) "min tt bit-equal" true
                  (beq
                     (snd (Cellfn.min_tt_over cell ~fanout Cellfn.Ctl ~pos iv))
                     (snd (Eval_cache.min_tt_over cache cell ~fanout Cellfn.Ctl
                             ~pos iv)));
                Alcotest.(check bool) "max tt bit-equal" true
                  (beq
                     (snd (Cellfn.max_tt_over cell ~fanout Cellfn.Non ~pos iv))
                     (snd (Eval_cache.max_tt_over cache cell ~fanout Cellfn.Non
                             ~pos iv))))
              [ 0; 1 ]
          done)
        [ 1; 3 ])
    ivs;
  Alcotest.(check bool) "cache actually hit" true (Eval_cache.hits cache > 0);
  Alcotest.(check bool) "and missed first" true (Eval_cache.misses cache > 0)

let test_eval_cache_load_independent () =
  (* the memo key excludes the fanout: querying many loads for one interval
     costs one kernel evaluation *)
  let cell = nand2 () in
  let cache = Eval_cache.create () in
  let iv = Interval.make 0.3e-9 1.1e-9 in
  List.iter
    (fun fanout ->
      ignore (Eval_cache.min_delay_over cache cell ~fanout Cellfn.Ctl ~pos:0 iv))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "one miss" 1 (Eval_cache.misses cache);
  Alcotest.(check int) "rest hits" 4 (Eval_cache.hits cache)

(* ---------- window transfer functions ---------- *)

let win a1 a2 t1 t2 =
  { Types.w_arr = Interval.make a1 a2; w_tt = Interval.make t1 t2 }

let win_in pos w = { Types.wpos = pos; window = w }

let test_window_contains_point_events =
  (* soundness: for degenerate input windows the output window contains the
     model's point event *)
  QCheck.Test.make ~name:"ctl window contains point event" ~count:60
    QCheck.(triple (float_range 0. 2e-9) (float_range 0. 2e-9)
              (pair (float_range 0.15e-9 2.5e-9) (float_range 0.15e-9 2.5e-9)))
    (fun (a0, a1, (t0, t1)) ->
      let cell = nand2 () in
      let transitions = [ tr 0 a0 t0; tr 1 a1 t1 ] in
      let e = Vshape.ctl_event cell ~fanout:1 transitions in
      let w =
        Vshape.ctl_window cell ~fanout:1
          [
            win_in 0 (win a0 a0 t0 t0);
            win_in 1 (win a1 a1 t1 t1);
          ]
      in
      Interval.contains w.Types.w_arr e.Types.e_arr
      && Interval.contains w.Types.w_tt e.Types.e_tt)

let test_window_non_contains_point_events =
  QCheck.Test.make ~name:"non window contains point event" ~count:60
    QCheck.(triple (float_range 0. 2e-9) (float_range 0. 2e-9)
              (pair (float_range 0.15e-9 2.5e-9) (float_range 0.15e-9 2.5e-9)))
    (fun (a0, a1, (t0, t1)) ->
      let cell = nand2 () in
      let transitions = [ tr 0 a0 t0; tr 1 a1 t1 ] in
      let e = Vshape.non_event cell ~fanout:1 transitions in
      let w =
        Vshape.non_window cell ~fanout:1
          [ win_in 0 (win a0 a0 t0 t0); win_in 1 (win a1 a1 t1 t1) ]
      in
      Interval.contains w.Types.w_arr e.Types.e_arr
      && Interval.contains w.Types.w_tt e.Types.e_tt)

let test_window_monotone_in_inputs () =
  (* widening an input window can only widen (or keep) the output window *)
  let cell = nand2 () in
  let narrow =
    Vshape.ctl_window cell ~fanout:1
      [ win_in 0 (win 1e-9 1.2e-9 0.3e-9 0.4e-9);
        win_in 1 (win 1e-9 1.2e-9 0.3e-9 0.4e-9) ]
  in
  let wide =
    Vshape.ctl_window cell ~fanout:1
      [ win_in 0 (win 0.8e-9 1.5e-9 0.2e-9 0.6e-9);
        win_in 1 (win 0.8e-9 1.5e-9 0.2e-9 0.6e-9) ]
  in
  Alcotest.(check bool) "arrival window nested" true
    (Interval.subset narrow.Types.w_arr wide.Types.w_arr)

(* ---------- model relationships ---------- *)

let test_proposed_vs_pin_to_pin_windows () =
  (* same latest arrival, earlier or equal earliest arrival (Table 2) *)
  let cell = nand2 () in
  let ins =
    [ win_in 0 (win 1e-9 1.4e-9 0.2e-9 0.5e-9);
      win_in 1 (win 1.1e-9 1.5e-9 0.2e-9 0.5e-9) ]
  in
  let wp = Vshape.ctl_window cell ~fanout:1 ins in
  let w2 = Ssd_core.Pin_to_pin.ctl_window cell ~fanout:1 ins in
  Alcotest.(check (float 1e-15)) "same max"
    (Interval.hi w2.Types.w_arr) (Interval.hi wp.Types.w_arr);
  Alcotest.(check bool) "proposed min <= pin-to-pin min" true
    (Interval.lo wp.Types.w_arr <= Interval.lo w2.Types.w_arr +. 1e-15)

let test_baseline_position_blindness () =
  (* Jun and Nabavi ignore the input position; the proposed model does not *)
  let cell = nand3 () in
  let t = 0.5e-9 in
  let prop p = DM.proposed.DM.single_delay cell ~fanout:1 ~pos:p ~t_in:t in
  let jun p = DM.jun.DM.single_delay cell ~fanout:1 ~pos:p ~t_in:t in
  let nab p = DM.nabavi.DM.single_delay cell ~fanout:1 ~pos:p ~t_in:t in
  Alcotest.(check bool) "proposed sees positions" true (prop 2 > prop 0);
  Alcotest.(check (float 1e-18)) "jun blind" (jun 0) (jun 2);
  Alcotest.(check (float 1e-18)) "nabavi blind" (nab 0) (nab 2)

let test_nabavi_skew_insensitive () =
  let cell = nand2 () in
  let t = 0.5e-9 in
  let d sk =
    DM.nabavi.DM.pair_delay cell ~fanout:1 ~a:(tr 0 0. t) ~b:(tr 1 sk t)
  in
  Alcotest.(check (float 1e-15)) "flat vs skew" (d 0.) (d 0.6e-9)

let test_jun_no_saturation () =
  (* Jun's delay keeps growing past the true saturation skew *)
  let cell = nand2 () in
  let t = 0.5e-9 in
  let d sk = DM.jun.DM.pair_delay cell ~fanout:1 ~a:(tr 0 0. t) ~b:(tr 1 sk t) in
  Alcotest.(check bool) "keeps growing" true (d 3e-9 > d 1.5e-9 +. 1e-12)

let test_model_registry () =
  Alcotest.(check int) "four models" 4 (List.length DM.all);
  Alcotest.(check bool) "find proposed" true (DM.find "proposed" <> None);
  Alcotest.(check bool) "find unknown" true (DM.find "magic" = None);
  Alcotest.(check bool) "baselines lack windows" true
    (DM.jun.DM.windowing = None && DM.nabavi.DM.windowing = None);
  Alcotest.(check bool) "window-capable models" true
    (DM.proposed.DM.windowing <> None && DM.pin_to_pin.DM.windowing <> None)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "core.cellfn",
      [
        Alcotest.test_case "load adjustment" `Slow test_cellfn_load_adjustment;
        Alcotest.test_case "corner search vs sampling" `Slow
          test_cellfn_extremes_vs_sampling;
        Alcotest.test_case "bad position" `Slow test_cellfn_bad_position;
      ] );
    ( "core.vshape",
      [
        Alcotest.test_case "saturation arms" `Slow test_vshape_saturation_arms;
        Alcotest.test_case "minimum at zero skew" `Slow
          test_vshape_minimum_at_zero;
        Alcotest.test_case "orientation symmetry" `Slow
          test_vshape_orientation_symmetry;
        Alcotest.test_case "v points" `Slow test_vshape_v_points;
        Alcotest.test_case "tracks simulator" `Slow
          test_vshape_against_simulator;
        Alcotest.test_case "events" `Slow test_vshape_events;
        Alcotest.test_case "multi-input extension" `Slow
          test_vshape_multi_input;
      ] );
    qsuite "core.vshape.props" [ prop_pair_swap_symmetric ];
    ( "core.eval_cache",
      [
        Alcotest.test_case "matches direct search" `Slow
          test_eval_cache_matches_direct;
        Alcotest.test_case "load-independent keys" `Slow
          test_eval_cache_load_independent;
      ] );
    qsuite "core.windows.props"
      [ test_window_contains_point_events; test_window_non_contains_point_events ];
    ( "core.windows",
      [
        Alcotest.test_case "monotone in inputs" `Slow
          test_window_monotone_in_inputs;
        Alcotest.test_case "proposed vs pin-to-pin" `Slow
          test_proposed_vs_pin_to_pin_windows;
      ] );
    ( "core.baselines",
      [
        Alcotest.test_case "position blindness" `Slow
          test_baseline_position_blindness;
        Alcotest.test_case "nabavi skew-insensitive" `Slow
          test_nabavi_skew_insensitive;
        Alcotest.test_case "jun no saturation" `Slow test_jun_no_saturation;
        Alcotest.test_case "registry" `Slow test_model_registry;
      ] );
  ]
