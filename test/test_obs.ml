(* Telemetry (ssd_obs): exact parallel aggregation, trace integrity,
   disabled-sink freeness, and the bit-identity of instrumented engine
   runs. *)

module Obs = Ssd_obs.Obs
module Par = Ssd_sta.Par
module Sta = Ssd_sta.Sta
module Json = Ssd_util.Json
module Interval = Ssd_util.Interval
module Types = Ssd_core.Types
module DM = Ssd_core.Delay_model
module Charlib = Ssd_cell.Charlib
module Ck = Ssd_circuit
module A = Ssd_atpg

(* ---------- counters / timers / histograms ---------- *)

let test_counter_basics () =
  let obs = Obs.create () in
  let c = Obs.counter obs "c" in
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "value" 42 (Obs.counter_value c);
  Alcotest.(check bool) "same handle" true (Obs.counter obs "c" == c);
  Alcotest.(check (list (pair string int))) "listing" [ ("c", 42) ]
    (Obs.counters obs);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.timer: c is not a timer") (fun () ->
      ignore (Obs.timer obs "c"))

(* the aggregation contract of the ISSUE: one counter incremented from
   every lane of a parallel_for sums exactly, for every lane count *)
let test_counter_parallel_exact () =
  List.iter
    (fun jobs ->
      let obs = Obs.create () in
      let c = Obs.counter obs "iters" in
      let n = 10_000 in
      Par.with_pool ~obs ~jobs (fun pool ->
          Par.parallel_for pool ~n (fun _ -> Obs.incr c));
      Alcotest.(check int)
        (Printf.sprintf "exact at jobs=%d" jobs)
        n (Obs.counter_value c))
    [ 1; 4; 0 ]

let test_timer_and_histogram () =
  let obs = Obs.create () in
  let tm = Obs.timer obs "t" in
  Obs.add_ns tm 500;
  let v = Obs.time tm (fun () -> 7) in
  Alcotest.(check int) "time returns" 7 v;
  Alcotest.(check int) "calls" 2 (Obs.timer_calls tm);
  Alcotest.(check bool) "ns accumulated" true (Obs.timer_ns tm >= 500);
  let h = Obs.histogram ~bins:2 ~lo:0. ~hi:2. obs "h" in
  Obs.observe h 0.5;
  Obs.observe h 1.5;
  Obs.observe h 1.6;
  Alcotest.(check int) "count" 3 (Obs.histogram_count h);
  (match Obs.histogram_rows h with
  | [ (_, _, c0); (_, _, c1) ] ->
    Alcotest.(check int) "low bin" 1 c0;
    Alcotest.(check int) "high bin" 2 c1
  | rows -> Alcotest.failf "want 2 rows, got %d" (List.length rows));
  let contains r s =
    let nr = String.length r and ns = String.length s in
    let rec go i = i + ns <= nr && (String.sub r i ns = s || go (i + 1)) in
    go 0
  in
  let r = Obs.report obs in
  Alcotest.(check bool) "report mentions the timer" true (contains r "| t ");
  Alcotest.(check bool) "report mentions the histogram" true
    (contains r "| h ")

(* histogram samples recorded concurrently from many domains all land *)
let test_histogram_parallel () =
  let obs = Obs.create () in
  let h = Obs.histogram ~bins:4 ~lo:0. ~hi:4. obs "lanes" in
  let n = 4_000 in
  Par.with_pool ~obs ~jobs:4 (fun pool ->
      Par.parallel_for pool ~n (fun i ->
          Obs.observe h (float_of_int (i mod 4))));
  Alcotest.(check int) "all samples" n (Obs.histogram_count h);
  List.iter
    (fun (_, _, c) -> Alcotest.(check int) "uniform bins" (n / 4) c)
    (Obs.histogram_rows h)

(* ---------- disabled sink ---------- *)

let test_disabled_sink_free () =
  let obs = Obs.disabled in
  Alcotest.(check bool) "disabled" false (Obs.enabled obs);
  let c = Obs.counter obs "x" in
  let tm = Obs.timer obs "y" in
  let h = Obs.histogram obs "z" in
  (* no-op instruments are physically shared: creation allocates nothing *)
  Alcotest.(check bool) "counter shared" true (c == Obs.counter obs "other");
  Alcotest.(check bool) "timer shared" true (tm == Obs.timer obs "other");
  Alcotest.(check bool) "histogram shared" true (h == Obs.histogram obs "w");
  (* updates do not allocate: minor words stay flat across 10k calls *)
  let m0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.incr c;
    Obs.add c 3;
    Obs.add_ns tm 5;
    Obs.observe h 1.
  done;
  let dm = Gc.minor_words () -. m0 in
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on disabled path (%.0f words)" dm)
    true
    (dm < 256.);
  Alcotest.(check int) "counter stays 0" 0 (Obs.counter_value c);
  Alcotest.(check string) "report empty" "" (Obs.report obs);
  Alcotest.(check bool) "no events" true (Obs.trace_events obs = []);
  (* span on the disabled sink is exactly the thunk *)
  Alcotest.(check int) "span passthrough" 9 (Obs.span obs tm (fun () -> 9))

(* ---------- tracing ---------- *)

let test_trace_json_valid_and_monotone () =
  let obs = Obs.create ~trace:true () in
  let tm = Obs.timer obs "work" in
  for _ = 1 to 5 do
    Obs.span obs tm (fun () -> ignore (Sys.opaque_identity (ref 0)))
  done;
  Obs.span obs ~event:"named" tm (fun () -> ());
  Obs.set_track_name obs ~tid:(Domain.self () :> int) "main";
  let events = Obs.trace_events obs in
  Alcotest.(check int) "6 events" 6 (List.length events);
  (* per-track timestamps are monotone non-decreasing *)
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun (e : Obs.event) ->
      let prev =
        Option.value ~default:neg_infinity (Hashtbl.find_opt by_tid e.ev_tid)
      in
      Alcotest.(check bool) "monotone in track" true (e.ev_ts >= prev);
      Alcotest.(check bool) "nonneg duration" true (e.ev_dur >= 0.);
      Hashtbl.replace by_tid e.ev_tid e.ev_ts)
    events;
  (* export parses back and carries the metadata *)
  match Json.parse (Obs.trace_json obs) with
  | Error e -> Alcotest.failf "invalid trace JSON: %s" e
  | Ok json ->
    let evs =
      match Json.member "traceEvents" json with
      | Some l -> Json.to_list l
      | None -> Alcotest.fail "no traceEvents"
    in
    let phases =
      List.filter_map
        (fun e -> Option.bind (Json.member "ph" e) Json.string_value)
        evs
    in
    Alcotest.(check int) "complete events" 6
      (List.length (List.filter (( = ) "X") phases));
    Alcotest.(check bool) "has thread_name metadata" true
      (List.exists
         (fun e ->
           Option.bind (Json.member "name" e) Json.string_value
           = Some "thread_name")
         evs);
    Alcotest.(check bool) "has the named span" true
      (List.exists
         (fun e ->
           Option.bind (Json.member "name" e) Json.string_value
           = Some "named")
         evs)

let test_write_file_atomic () =
  let path = Filename.temp_file "ssd_obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.write_file_atomic path ~contents:"hello";
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "contents" "hello" s;
      (* no temp litter left next to the target *)
      let dir = Filename.dirname path in
      let base = Filename.basename path in
      Alcotest.(check bool) "no temp files" true
        (Array.for_all
           (fun f ->
             not
               (String.length f > String.length base
               && String.sub f 0 (String.length base) = base))
           (Sys.readdir dir)))

(* ---------- instrumented engines stay bit-identical ---------- *)

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())

let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let wins_equal nl a b =
  let ok = ref true in
  for i = 0 to Ck.Netlist.size nl - 1 do
    let x = Sta.timing a i and y = Sta.timing b i in
    let w (lt : Sta.line_timing) =
      [ lt.Sta.rise.Types.w_arr; lt.Sta.rise.Types.w_tt;
        lt.Sta.fall.Types.w_arr; lt.Sta.fall.Types.w_tt ]
    in
    List.iter2
      (fun u v ->
        if not (beq (Interval.lo u) (Interval.lo v)
                && beq (Interval.hi u) (Interval.hi v))
        then ok := false)
      (w x) (w y)
  done;
  !ok

let test_sta_instrumented_identical () =
  let library = Lazy.force lib in
  let nl = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let base = Sta.analyze ~library ~model:DM.proposed nl in
  List.iter
    (fun (tag, jobs, trace) ->
      let obs = Obs.create ~trace () in
      let t = Sta.analyze ~jobs ~obs ~library ~model:DM.proposed nl in
      Alcotest.(check bool) (tag ^ " identical") true (wins_equal nl base t);
      Alcotest.(check int)
        (tag ^ " counted every gate")
        (Array.fold_left
           (fun acc level ->
             Array.fold_left
               (fun acc i ->
                 match Ck.Netlist.node nl i with
                 | Ck.Netlist.Gate _ -> acc + 1
                 | Ck.Netlist.Pi -> acc)
               acc level)
           0 (Ck.Netlist.levels nl))
        (Obs.counter_value (Obs.counter obs "sta.gates")))
    [ ("instr j1", 1, false); ("instr j4", 4, false);
      ("instr j4 traced", 4, true) ]

let test_fault_sim_instrumented_identical () =
  let library = Lazy.force lib in
  let nl = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let sta = Sta.analyze ~library ~model:DM.proposed nl in
  let clock = Sta.max_delay sta in
  let sites =
    A.Fault.extract ~count:12 ~delta:60e-12 ~align_window:2500e-12 ~seed:5L nl
  in
  let vectors = A.Fault_sim.random_vectors ~seed:2L ~count:24 nl in
  let run ?(obs = Obs.disabled) ~jobs () =
    A.Fault_sim.simulate ~jobs ~obs ~library ~model:DM.proposed
      ~clock_period:clock nl sites vectors
  in
  let base = run ~jobs:1 () in
  let obs = Obs.create () in
  let instr = run ~obs ~jobs:4 () in
  Alcotest.(check bool) "detected identical" true
    (instr.A.Fault_sim.detected = base.A.Fault_sim.detected);
  Alcotest.(check bool) "undetected identical" true
    (instr.A.Fault_sim.undetected = base.A.Fault_sim.undetected);
  Alcotest.(check bool) "coverage identical" true
    (beq instr.A.Fault_sim.coverage base.A.Fault_sim.coverage);
  (* the screening economics are consistent: detected + undetected =
     sites, and every fault-free simulation covered every vector once *)
  let cv n = Obs.counter_value (Obs.counter obs n) in
  Alcotest.(check int) "ff sims = vectors" (List.length vectors)
    (cv "faultsim.ff_sims");
  Alcotest.(check int) "outcome split"
    (List.length sites)
    (cv "faultsim.detected" + cv "faultsim.undetected")

(* ---------- monotonic clock ---------- *)

let test_monotonic_now () =
  let prev = ref (Obs.now ()) in
  for _ = 1 to 1_000 do
    let t = Obs.now () in
    Alcotest.(check bool) "now non-decreasing" true (t >= !prev);
    prev := t
  done;
  let n0 = Obs.monotonic_ns () in
  let n1 = Obs.monotonic_ns () in
  Alcotest.(check bool) "ns non-decreasing" true (Int64.compare n1 n0 >= 0)

(* ---------- gauges ---------- *)

let test_gauge_basics () =
  let obs = Obs.create () in
  let g = Obs.gauge obs "g" in
  Alcotest.(check (float 0.)) "initial" 0. (Obs.gauge_value g);
  Obs.set_gauge g 4.5;
  Obs.set_gauge g 2.5;
  Alcotest.(check (float 0.)) "last write wins" 2.5 (Obs.gauge_value g);
  Alcotest.(check bool) "same handle" true (Obs.gauge obs "g" == g);
  Alcotest.(check (list (pair string (float 0.)))) "listing" [ ("g", 2.5) ]
    (Obs.gauges obs);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.counter: g is not a counter") (fun () ->
      ignore (Obs.counter obs "g"))

let test_disabled_gauge_and_snapshot_free () =
  let obs = Obs.disabled in
  let g = Obs.gauge obs "x" in
  Alcotest.(check bool) "gauge shared" true (g == Obs.gauge obs "other");
  (* the empty snapshot of the disabled sink is one shared value *)
  Alcotest.(check bool) "snapshot shared" true
    (Obs.snapshot obs == Obs.snapshot obs);
  let m0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.set_gauge g 1.;
    ignore (Sys.opaque_identity (Obs.snapshot obs))
  done;
  let dm = Gc.minor_words () -. m0 in
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on disabled path (%.0f words)" dm)
    true (dm < 256.);
  Alcotest.(check (float 0.)) "gauge stays 0" 0. (Obs.gauge_value g)

(* ---------- spans: hierarchy, self time, GC attribution ---------- *)

let test_span_hierarchy () =
  let obs = Obs.create ~trace:true () in
  let tm = Obs.timer obs "outer" in
  let tmi = Obs.timer obs "inner" in
  Obs.span obs tm (fun () ->
      Obs.span obs ~event:"a" tmi (fun () ->
          (* 129 words: comfortably a minor-heap allocation *)
          ignore (Sys.opaque_identity (Array.make 128 0.)));
      Obs.span obs ~event:"b" tmi (fun () -> ()));
  let sn = Obs.snapshot obs in
  match sn.Obs.sn_spans with
  | [ root ] ->
    Alcotest.(check string) "root name" "outer" root.Obs.sp_name;
    Alcotest.(check (list string))
      "children in start order" [ "a"; "b" ]
      (List.map (fun n -> n.Obs.sp_name) root.Obs.sp_children);
    List.iter
      (fun c ->
        Alcotest.(check bool) "child interval within parent" true
          (c.Obs.sp_start_s >= root.Obs.sp_start_s -. 1e-9
          && c.Obs.sp_start_s +. c.Obs.sp_total_s
             <= root.Obs.sp_start_s +. root.Obs.sp_total_s +. 1e-9))
      root.Obs.sp_children;
    let child_total =
      List.fold_left
        (fun acc c -> acc +. c.Obs.sp_total_s)
        0. root.Obs.sp_children
    in
    Alcotest.(check bool) "self = total - children" true
      (Float.abs (root.Obs.sp_self_s -. (root.Obs.sp_total_s -. child_total))
      < 1e-6);
    (* the array allocated inside span "a" is attributed to it, not to
       the enclosing span's self allocation *)
    let a = List.hd root.Obs.sp_children in
    Alcotest.(check bool) "child allocation attributed" true
      (a.Obs.sp_minor_words >= 129.);
    Alcotest.(check bool) "parent self excludes child allocation" true
      (root.Obs.sp_self_minor_words
      <= root.Obs.sp_minor_words -. a.Obs.sp_minor_words);
    Alcotest.(check bool) "timer self <= total" true
      (Obs.timer_self_ns tm <= Obs.timer_ns tm)
  | l -> Alcotest.failf "want 1 root span, got %d roots" (List.length l)

(* span forests produced under the worker pool are structurally valid
   at every lane count: intervals nest, tracks agree, self and child
   times decompose the total, GC attribution is non-negative *)
let rec nest obs tm depth =
  if depth > 0 then
    Obs.span obs ~event:(Printf.sprintf "d%d" depth) tm (fun () ->
        ignore (Sys.opaque_identity (ref 0));
        nest obs tm (depth - 1))

let rec valid_node ?parent (n : Obs.span_node) =
  let ok_parent =
    match parent with
    | None -> true
    | Some (p : Obs.span_node) ->
      n.Obs.sp_tid = p.Obs.sp_tid
      && n.Obs.sp_start_s >= p.Obs.sp_start_s -. 1e-9
      && n.Obs.sp_start_s +. n.Obs.sp_total_s
         <= p.Obs.sp_start_s +. p.Obs.sp_total_s +. 1e-9
  in
  let child_total =
    List.fold_left (fun a c -> a +. c.Obs.sp_total_s) 0. n.Obs.sp_children
  in
  ok_parent
  && n.Obs.sp_total_s >= 0.
  && n.Obs.sp_self_s >= 0.
  && n.Obs.sp_self_s <= n.Obs.sp_total_s +. 1e-9
  && child_total <= n.Obs.sp_total_s +. 1e-6
  && n.Obs.sp_minor_words >= 0.
  && n.Obs.sp_self_minor_words >= 0.
  && n.Obs.sp_promoted_words >= 0.
  && List.for_all (fun c -> valid_node ~parent:n c) n.Obs.sp_children

let prop_span_forest_valid_under_pool =
  QCheck.Test.make ~name:"span forest valid under pool (jobs 1 and 4)"
    ~count:15
    QCheck.(small_list (int_range 0 3))
    (fun depths ->
      List.for_all
        (fun jobs ->
          let obs = Obs.create ~trace:true () in
          let tm = Obs.timer obs "nest" in
          let d = Array.of_list depths in
          Par.with_pool ~obs ~jobs (fun pool ->
              Par.parallel_for pool ~n:(Array.length d) (fun i ->
                  nest obs tm d.(i)));
          let sn = Obs.snapshot obs in
          let rec count_nest (n : Obs.span_node) =
            (if String.length n.Obs.sp_name > 0 && n.Obs.sp_name.[0] = 'd'
             then 1
             else 0)
            + List.fold_left (fun a c -> a + count_nest c) 0 n.Obs.sp_children
          in
          let got =
            List.fold_left (fun a r -> a + count_nest r) 0 sn.Obs.sn_spans
          in
          got = List.fold_left ( + ) 0 depths
          && List.for_all (fun r -> valid_node r) sn.Obs.sn_spans)
        [ 1; 4 ])

(* ---------- snapshot export ---------- *)

let test_prometheus_golden () =
  let sn =
    {
      Obs.sn_counters = [ ("mc.chunks", 3); ("a\\b", 1) ];
      sn_gauges = [ ("par.lane0.busy_ns", 12.) ];
      sn_timers =
        [ ("engine.edit",
           { Obs.st_calls = 2; st_total_s = 0.5; st_self_s = 0.25 }) ];
      sn_histograms =
        [ ("h-x",
           { Obs.hs_count = 3;
             hs_sum = 3.5;
             hs_rows = [ (0., 1., 1); (1., 2., 2) ];
           }) ];
      sn_spans = [];
    }
  in
  let expected =
    String.concat "\n"
      [
        "# HELP ssd_mc_chunks_total counter mc.chunks";
        "# TYPE ssd_mc_chunks_total counter";
        "ssd_mc_chunks_total 3";
        "# HELP ssd_a_b_total counter a\\\\b";
        "# TYPE ssd_a_b_total counter";
        "ssd_a_b_total 1";
        "# HELP ssd_par_lane0_busy_ns gauge par.lane0.busy_ns";
        "# TYPE ssd_par_lane0_busy_ns gauge";
        "ssd_par_lane0_busy_ns 12";
        "# HELP ssd_engine_edit_calls_total timer engine.edit calls";
        "# TYPE ssd_engine_edit_calls_total counter";
        "ssd_engine_edit_calls_total 2";
        "# HELP ssd_engine_edit_seconds_total timer engine.edit total seconds";
        "# TYPE ssd_engine_edit_seconds_total counter";
        "ssd_engine_edit_seconds_total 0.5";
        "# HELP ssd_engine_edit_self_seconds_total timer engine.edit self \
         seconds";
        "# TYPE ssd_engine_edit_self_seconds_total counter";
        "ssd_engine_edit_self_seconds_total 0.25";
        "# HELP ssd_h_x histogram h-x";
        "# TYPE ssd_h_x histogram";
        "ssd_h_x_bucket{le=\"1\"} 1";
        "ssd_h_x_bucket{le=\"2\"} 3";
        "ssd_h_x_bucket{le=\"+Inf\"} 3";
        "ssd_h_x_sum 3.5";
        "ssd_h_x_count 3";
        "";
      ]
  in
  Alcotest.(check string) "exposition" expected (Obs.to_prometheus sn)

let test_snapshot_json_roundtrip () =
  let obs = Obs.create ~trace:true () in
  let c = Obs.counter obs "c" in
  Obs.add c 5;
  let g = Obs.gauge obs "g" in
  Obs.set_gauge g 1.25;
  let tm = Obs.timer obs "t" in
  Obs.span obs tm (fun () -> Obs.span obs ~event:"inner" tm (fun () -> ()));
  let h = Obs.histogram ~bins:2 ~lo:0. ~hi:2. obs "h" in
  Obs.observe h 0.5;
  Obs.observe h 1.5;
  let j = Obs.snapshot_to_json (Obs.snapshot obs) in
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "snapshot JSON does not parse: %s" e
  | Ok j' ->
    Alcotest.(check bool) "round-trips structurally" true (j = j');
    let counters = Option.get (Json.member "counters" j') in
    Alcotest.(check (option (float 0.))) "counter value" (Some 5.)
      (Option.bind (Json.member "c" counters) Json.number_value);
    let spans = Json.to_list (Option.get (Json.member "spans" j')) in
    Alcotest.(check int) "one root span" 1 (List.length spans);
    let kids =
      Json.to_list (Option.get (Json.member "children" (List.hd spans)))
    in
    Alcotest.(check int) "one child span" 1 (List.length kids)

(* ---------- instrumented Monte-Carlo stays bit-identical ---------- *)

module CS = Ssd_sta.Corner_sta
module RO = Ssd_sta.Run_opts

let test_mc_instrumented_identical () =
  let library = Lazy.force lib in
  let nl = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let run ~jobs ~obs =
    CS.monte_carlo
      ~opts:(RO.make ~jobs ~obs ~mc_batch:2 ())
      ~samples:6 ~seed:7L ~library nl
  in
  let base = run ~jobs:1 ~obs:Obs.disabled in
  List.iter
    (fun jobs ->
      let obs = Obs.create ~trace:true () in
      let r = run ~jobs ~obs in
      Alcotest.(check bool)
        (Printf.sprintf "mc_max identical at jobs=%d" jobs)
        true
        (Array.for_all2 beq base.CS.mc_max r.CS.mc_max);
      Alcotest.(check bool)
        (Printf.sprintf "mc_delays identical at jobs=%d" jobs)
        true
        (Array.for_all2
           (fun a b -> Array.for_all2 beq a b)
           base.CS.mc_delays r.CS.mc_delays);
      (* instrumented runs go through the pool: lane-0 busy gauge exists *)
      Alcotest.(check bool)
        (Printf.sprintf "lane0 busy gauge at jobs=%d" jobs)
        true
        (List.exists
           (fun (n, v) -> n = "par.lane0.busy_ns" && v > 0.)
           (Obs.gauges obs));
      (* chunk spans landed: ceil (6 / 2) chunks *)
      Alcotest.(check int)
        (Printf.sprintf "chunk spans at jobs=%d" jobs)
        3
        (Obs.timer_calls (Obs.timer obs "mc.chunk")))
    [ 1; 4 ]

let suites =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "parallel counters exact" `Quick
          test_counter_parallel_exact;
        Alcotest.test_case "timer and histogram" `Quick
          test_timer_and_histogram;
        Alcotest.test_case "parallel histogram" `Quick
          test_histogram_parallel;
        Alcotest.test_case "monotonic clock" `Quick test_monotonic_now;
        Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
      ] );
    ( "obs.disabled",
      [
        Alcotest.test_case "near-zero cost" `Quick test_disabled_sink_free;
        Alcotest.test_case "gauge and snapshot free" `Quick
          test_disabled_gauge_and_snapshot_free;
      ] );
    ( "obs.spans",
      [
        Alcotest.test_case "hierarchy, self time, GC attribution" `Quick
          test_span_hierarchy;
        QCheck_alcotest.to_alcotest prop_span_forest_valid_under_pool;
      ] );
    ( "obs.snapshot",
      [
        Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
        Alcotest.test_case "snapshot JSON round-trip" `Quick
          test_snapshot_json_roundtrip;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "valid JSON, monotone tracks" `Quick
          test_trace_json_valid_and_monotone;
        Alcotest.test_case "atomic write" `Quick test_write_file_atomic;
      ] );
    ( "obs.engines",
      [
        Alcotest.test_case "instrumented STA bit-identical" `Quick
          test_sta_instrumented_identical;
        Alcotest.test_case "instrumented fault-sim bit-identical" `Quick
          test_fault_sim_instrumented_identical;
        Alcotest.test_case "instrumented Monte-Carlo bit-identical" `Quick
          test_mc_instrumented_identical;
      ] );
  ]
