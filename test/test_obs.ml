(* Telemetry (ssd_obs): exact parallel aggregation, trace integrity,
   disabled-sink freeness, and the bit-identity of instrumented engine
   runs. *)

module Obs = Ssd_obs.Obs
module Par = Ssd_sta.Par
module Sta = Ssd_sta.Sta
module Json = Ssd_util.Json
module Interval = Ssd_util.Interval
module Types = Ssd_core.Types
module DM = Ssd_core.Delay_model
module Charlib = Ssd_cell.Charlib
module Ck = Ssd_circuit
module A = Ssd_atpg

(* ---------- counters / timers / histograms ---------- *)

let test_counter_basics () =
  let obs = Obs.create () in
  let c = Obs.counter obs "c" in
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "value" 42 (Obs.counter_value c);
  Alcotest.(check bool) "same handle" true (Obs.counter obs "c" == c);
  Alcotest.(check (list (pair string int))) "listing" [ ("c", 42) ]
    (Obs.counters obs);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs.timer: c is not a timer") (fun () ->
      ignore (Obs.timer obs "c"))

(* the aggregation contract of the ISSUE: one counter incremented from
   every lane of a parallel_for sums exactly, for every lane count *)
let test_counter_parallel_exact () =
  List.iter
    (fun jobs ->
      let obs = Obs.create () in
      let c = Obs.counter obs "iters" in
      let n = 10_000 in
      Par.with_pool ~obs ~jobs (fun pool ->
          Par.parallel_for pool ~n (fun _ -> Obs.incr c));
      Alcotest.(check int)
        (Printf.sprintf "exact at jobs=%d" jobs)
        n (Obs.counter_value c))
    [ 1; 4; 0 ]

let test_timer_and_histogram () =
  let obs = Obs.create () in
  let tm = Obs.timer obs "t" in
  Obs.add_ns tm 500;
  let v = Obs.time tm (fun () -> 7) in
  Alcotest.(check int) "time returns" 7 v;
  Alcotest.(check int) "calls" 2 (Obs.timer_calls tm);
  Alcotest.(check bool) "ns accumulated" true (Obs.timer_ns tm >= 500);
  let h = Obs.histogram ~bins:2 ~lo:0. ~hi:2. obs "h" in
  Obs.observe h 0.5;
  Obs.observe h 1.5;
  Obs.observe h 1.6;
  Alcotest.(check int) "count" 3 (Obs.histogram_count h);
  (match Obs.histogram_rows h with
  | [ (_, _, c0); (_, _, c1) ] ->
    Alcotest.(check int) "low bin" 1 c0;
    Alcotest.(check int) "high bin" 2 c1
  | rows -> Alcotest.failf "want 2 rows, got %d" (List.length rows));
  let contains r s =
    let nr = String.length r and ns = String.length s in
    let rec go i = i + ns <= nr && (String.sub r i ns = s || go (i + 1)) in
    go 0
  in
  let r = Obs.report obs in
  Alcotest.(check bool) "report mentions the timer" true (contains r "| t ");
  Alcotest.(check bool) "report mentions the histogram" true
    (contains r "| h ")

(* histogram samples recorded concurrently from many domains all land *)
let test_histogram_parallel () =
  let obs = Obs.create () in
  let h = Obs.histogram ~bins:4 ~lo:0. ~hi:4. obs "lanes" in
  let n = 4_000 in
  Par.with_pool ~obs ~jobs:4 (fun pool ->
      Par.parallel_for pool ~n (fun i ->
          Obs.observe h (float_of_int (i mod 4))));
  Alcotest.(check int) "all samples" n (Obs.histogram_count h);
  List.iter
    (fun (_, _, c) -> Alcotest.(check int) "uniform bins" (n / 4) c)
    (Obs.histogram_rows h)

(* ---------- disabled sink ---------- *)

let test_disabled_sink_free () =
  let obs = Obs.disabled in
  Alcotest.(check bool) "disabled" false (Obs.enabled obs);
  let c = Obs.counter obs "x" in
  let tm = Obs.timer obs "y" in
  let h = Obs.histogram obs "z" in
  (* no-op instruments are physically shared: creation allocates nothing *)
  Alcotest.(check bool) "counter shared" true (c == Obs.counter obs "other");
  Alcotest.(check bool) "timer shared" true (tm == Obs.timer obs "other");
  Alcotest.(check bool) "histogram shared" true (h == Obs.histogram obs "w");
  (* updates do not allocate: minor words stay flat across 10k calls *)
  let m0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.incr c;
    Obs.add c 3;
    Obs.add_ns tm 5;
    Obs.observe h 1.
  done;
  let dm = Gc.minor_words () -. m0 in
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on disabled path (%.0f words)" dm)
    true
    (dm < 256.);
  Alcotest.(check int) "counter stays 0" 0 (Obs.counter_value c);
  Alcotest.(check string) "report empty" "" (Obs.report obs);
  Alcotest.(check bool) "no events" true (Obs.trace_events obs = []);
  (* span on the disabled sink is exactly the thunk *)
  Alcotest.(check int) "span passthrough" 9 (Obs.span obs tm (fun () -> 9))

(* ---------- tracing ---------- *)

let test_trace_json_valid_and_monotone () =
  let obs = Obs.create ~trace:true () in
  let tm = Obs.timer obs "work" in
  for _ = 1 to 5 do
    Obs.span obs tm (fun () -> ignore (Sys.opaque_identity (ref 0)))
  done;
  Obs.span obs ~event:"named" tm (fun () -> ());
  Obs.set_track_name obs ~tid:(Domain.self () :> int) "main";
  let events = Obs.trace_events obs in
  Alcotest.(check int) "6 events" 6 (List.length events);
  (* per-track timestamps are monotone non-decreasing *)
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun (e : Obs.event) ->
      let prev =
        Option.value ~default:neg_infinity (Hashtbl.find_opt by_tid e.ev_tid)
      in
      Alcotest.(check bool) "monotone in track" true (e.ev_ts >= prev);
      Alcotest.(check bool) "nonneg duration" true (e.ev_dur >= 0.);
      Hashtbl.replace by_tid e.ev_tid e.ev_ts)
    events;
  (* export parses back and carries the metadata *)
  match Json.parse (Obs.trace_json obs) with
  | Error e -> Alcotest.failf "invalid trace JSON: %s" e
  | Ok json ->
    let evs =
      match Json.member "traceEvents" json with
      | Some l -> Json.to_list l
      | None -> Alcotest.fail "no traceEvents"
    in
    let phases =
      List.filter_map
        (fun e -> Option.bind (Json.member "ph" e) Json.string_value)
        evs
    in
    Alcotest.(check int) "complete events" 6
      (List.length (List.filter (( = ) "X") phases));
    Alcotest.(check bool) "has thread_name metadata" true
      (List.exists
         (fun e ->
           Option.bind (Json.member "name" e) Json.string_value
           = Some "thread_name")
         evs);
    Alcotest.(check bool) "has the named span" true
      (List.exists
         (fun e ->
           Option.bind (Json.member "name" e) Json.string_value
           = Some "named")
         evs)

let test_write_file_atomic () =
  let path = Filename.temp_file "ssd_obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.write_file_atomic path ~contents:"hello";
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "contents" "hello" s;
      (* no temp litter left next to the target *)
      let dir = Filename.dirname path in
      let base = Filename.basename path in
      Alcotest.(check bool) "no temp files" true
        (Array.for_all
           (fun f ->
             not
               (String.length f > String.length base
               && String.sub f 0 (String.length base) = base))
           (Sys.readdir dir)))

(* ---------- instrumented engines stay bit-identical ---------- *)

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())

let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let wins_equal nl a b =
  let ok = ref true in
  for i = 0 to Ck.Netlist.size nl - 1 do
    let x = Sta.timing a i and y = Sta.timing b i in
    let w (lt : Sta.line_timing) =
      [ lt.Sta.rise.Types.w_arr; lt.Sta.rise.Types.w_tt;
        lt.Sta.fall.Types.w_arr; lt.Sta.fall.Types.w_tt ]
    in
    List.iter2
      (fun u v ->
        if not (beq (Interval.lo u) (Interval.lo v)
                && beq (Interval.hi u) (Interval.hi v))
        then ok := false)
      (w x) (w y)
  done;
  !ok

let test_sta_instrumented_identical () =
  let library = Lazy.force lib in
  let nl = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let base = Sta.analyze ~library ~model:DM.proposed nl in
  List.iter
    (fun (tag, jobs, trace) ->
      let obs = Obs.create ~trace () in
      let t = Sta.analyze ~jobs ~obs ~library ~model:DM.proposed nl in
      Alcotest.(check bool) (tag ^ " identical") true (wins_equal nl base t);
      Alcotest.(check int)
        (tag ^ " counted every gate")
        (Array.fold_left
           (fun acc level ->
             Array.fold_left
               (fun acc i ->
                 match Ck.Netlist.node nl i with
                 | Ck.Netlist.Gate _ -> acc + 1
                 | Ck.Netlist.Pi -> acc)
               acc level)
           0 (Ck.Netlist.levels nl))
        (Obs.counter_value (Obs.counter obs "sta.gates")))
    [ ("instr j1", 1, false); ("instr j4", 4, false);
      ("instr j4 traced", 4, true) ]

let test_fault_sim_instrumented_identical () =
  let library = Lazy.force lib in
  let nl = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ()) in
  let sta = Sta.analyze ~library ~model:DM.proposed nl in
  let clock = Sta.max_delay sta in
  let sites =
    A.Fault.extract ~count:12 ~delta:60e-12 ~align_window:2500e-12 ~seed:5L nl
  in
  let vectors = A.Fault_sim.random_vectors ~seed:2L ~count:24 nl in
  let run ?(obs = Obs.disabled) ~jobs () =
    A.Fault_sim.simulate ~jobs ~obs ~library ~model:DM.proposed
      ~clock_period:clock nl sites vectors
  in
  let base = run ~jobs:1 () in
  let obs = Obs.create () in
  let instr = run ~obs ~jobs:4 () in
  Alcotest.(check bool) "detected identical" true
    (instr.A.Fault_sim.detected = base.A.Fault_sim.detected);
  Alcotest.(check bool) "undetected identical" true
    (instr.A.Fault_sim.undetected = base.A.Fault_sim.undetected);
  Alcotest.(check bool) "coverage identical" true
    (beq instr.A.Fault_sim.coverage base.A.Fault_sim.coverage);
  (* the screening economics are consistent: detected + undetected =
     sites, and every fault-free simulation covered every vector once *)
  let cv n = Obs.counter_value (Obs.counter obs n) in
  Alcotest.(check int) "ff sims = vectors" (List.length vectors)
    (cv "faultsim.ff_sims");
  Alcotest.(check int) "outcome split"
    (List.length sites)
    (cv "faultsim.detected" + cv "faultsim.undetected")

let suites =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "parallel counters exact" `Quick
          test_counter_parallel_exact;
        Alcotest.test_case "timer and histogram" `Quick
          test_timer_and_histogram;
        Alcotest.test_case "parallel histogram" `Quick
          test_histogram_parallel;
      ] );
    ( "obs.disabled",
      [ Alcotest.test_case "near-zero cost" `Quick test_disabled_sink_free ] );
    ( "obs.trace",
      [
        Alcotest.test_case "valid JSON, monotone tracks" `Quick
          test_trace_json_valid_and_monotone;
        Alcotest.test_case "atomic write" `Quick test_write_file_atomic;
      ] );
    ( "obs.engines",
      [
        Alcotest.test_case "instrumented STA bit-identical" `Quick
          test_sta_instrumented_identical;
        Alcotest.test_case "instrumented fault-sim bit-identical" `Quick
          test_fault_sim_instrumented_identical;
      ] );
  ]
