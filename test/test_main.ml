(* Entry point: one Alcotest run covering every library.  The
   characterization-heavy suites share the coarse cached library via
   SSD_FAST (set here so a bare `dune runtest` stays fast). *)

let () =
  (match Sys.getenv_opt "SSD_FAST" with
  | None -> Unix.putenv "SSD_FAST" "1"
  | Some _ -> ());
  Alcotest.run "ssd"
    (Test_util.suites @ Test_spice.suites @ Test_cell.suites
   @ Test_core.suites @ Test_circuit.suites @ Test_sta.suites
   @ Test_engine.suites @ Test_itr.suites @ Test_atpg.suites @ Test_obs.suites
   @ Test_extras.suites @ Test_regression.suites @ Test_scale.suites
   @ Test_corners.suites @ Test_serve.suites)
