module Ck = Ssd_circuit
module I = Ssd_itr
module V = I.Value2f
module Impl = I.Implication
module Itr = I.Itr
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval
module Rng = Ssd_util.Rng
module TS = Ssd_sta.Timing_sim

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())
let v s = Option.get (V.of_string s)
let c17_prim () = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ())

(* ---------- Value2f ---------- *)

let test_value_parsing () =
  List.iter
    (fun s ->
      match V.of_string s with
      | Some x -> Alcotest.(check string) "roundtrip" s (V.to_string x)
      | None -> Alcotest.fail ("parse " ^ s))
    [ "00"; "01"; "0x"; "10"; "11"; "1x"; "x0"; "x1"; "xx" ];
  Alcotest.(check bool) "reject" true (V.of_string "2x" = None);
  Alcotest.(check bool) "reject length" true (V.of_string "011" = None)

let test_value_states () =
  Alcotest.(check int) "01 rises definitely" 1 (V.state (v "01") V.Rise);
  Alcotest.(check int) "xx rises potentially" 0 (V.state (v "xx") V.Rise);
  Alcotest.(check int) "0x rises potentially" 0 (V.state (v "0x") V.Rise);
  Alcotest.(check int) "11 never rises" (-1) (V.state (v "11") V.Rise);
  Alcotest.(check int) "10 never rises" (-1) (V.state (v "10") V.Rise);
  Alcotest.(check int) "10 falls definitely" 1 (V.state (v "10") V.Fall);
  Alcotest.(check int) "x0 falls potentially" 0 (V.state (v "x0") V.Fall)

let test_value_meet () =
  Alcotest.(check bool) "xx meets all" true (V.meet (v "xx") (v "01") = Some (v "01"));
  Alcotest.(check bool) "0x ∧ x1 = 01" true (V.meet (v "0x") (v "x1") = Some (v "01"));
  Alcotest.(check bool) "conflict" true (V.meet (v "00") (v "10") = None);
  Alcotest.(check bool) "narrower" true (V.narrower_or_equal (v "01") (v "0x"));
  Alcotest.(check bool) "not narrower" false (V.narrower_or_equal (v "0x") (v "01"))

let test_value_forward () =
  let nand = Ck.Gate.Nand in
  Alcotest.(check string) "nand 01,01" "10"
    (V.to_string (V.forward nand [ v "01"; v "01" ]));
  Alcotest.(check string) "nand 0x,11" "1x"
    (V.to_string (V.forward nand [ v "0x"; v "11" ]));
  Alcotest.(check string) "nand x both" "1x"
    (V.to_string (V.forward nand [ v "0x"; v "1x" ]));
  Alcotest.(check string) "not 01" "10"
    (V.to_string (V.forward Ck.Gate.Not [ v "01" ]))

let test_value_backward () =
  (* NAND out = 0 forces all inputs to 1 in that frame *)
  (match V.backward Ck.Gate.Nand ~out:(v "0x") [ v "xx"; v "xx" ] with
  | Some [ a; b ] ->
    Alcotest.(check string) "a" "1x" (V.to_string a);
    Alcotest.(check string) "b" "1x" (V.to_string b)
  | _ -> Alcotest.fail "expected narrowing");
  (* NAND out = 1 with one input already 1 forces the other to 0 *)
  (match V.backward Ck.Gate.Nand ~out:(v "x1") [ v "x1"; v "xx" ] with
  | Some [ _; b ] -> Alcotest.(check string) "forced" "x0" (V.to_string b)
  | _ -> Alcotest.fail "expected forcing");
  (* conflict: NAND out = 1 with all inputs at 1 *)
  Alcotest.(check bool) "conflict" true
    (V.backward Ck.Gate.Nand ~out:(v "x1") [ v "x1"; v "x1" ] = None);
  (* NOT inverts through *)
  (match V.backward Ck.Gate.Not ~out:(v "01") [ v "xx" ] with
  | Some [ a ] -> Alcotest.(check string) "not backward" "10" (V.to_string a)
  | _ -> Alcotest.fail "not backward failed")

(* ---------- Implication ---------- *)

let test_implication_c17 () =
  let nl = Ck.Benchmarks.c17 () in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let impl = Impl.create nl in
  (* force gate 10 = NAND(1,3) to rise: frame1 out=0 needs 1=3=1 *)
  (match Impl.assign_opt impl (id "10") (v "01") with
  | Some _ ->
    Alcotest.(check string) "input 1 narrowed" "1x"
      (V.to_string (Impl.value impl (id "1")));
    Alcotest.(check string) "input 3 narrowed" "1x"
      (V.to_string (Impl.value impl (id "3")))
  | None -> Alcotest.fail "assign failed");
  (* now fixing input 1 steady-1 forces input 3 to fall *)
  (match Impl.assign_opt impl (id "1") (v "11") with
  | Some _ ->
    Alcotest.(check string) "sibling forced" "10"
      (V.to_string (Impl.value impl (id "3")))
  | None -> Alcotest.fail "second assign failed")

let test_implication_conflict_restores_via_copy () =
  let nl = Ck.Benchmarks.c17 () in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let impl = Impl.create nl in
  ignore (Impl.assign_opt impl (id "10") (v "01"));
  let snapshot = Impl.copy impl in
  Alcotest.(check bool) "conflicting assign fails" true
    (Impl.assign_opt snapshot (id "10") (v "10") = None);
  (* original untouched *)
  Alcotest.(check string) "original intact" "01"
    (V.to_string (Impl.value impl (id "10")))

let test_implication_full_specification () =
  let nl = c17_prim () in
  let impl = Impl.create nl in
  let rng = Rng.create 5L in
  List.iter
    (fun pi ->
      let choice = if Rng.bool rng then v "01" else v "10" in
      match Impl.assign_opt impl pi choice with
      | Some _ -> ()
      | None -> Alcotest.fail "PI assignment cannot conflict from scratch")
    (Ck.Netlist.inputs nl);
  Alcotest.(check int) "everything specified" (Ck.Netlist.size nl)
    (Impl.specified_count impl)

let test_implication_agrees_with_simulation () =
  let nl = c17_prim () in
  let rng = Rng.create 6L in
  for _ = 1 to 10 do
    let impl = Impl.create nl in
    let vec =
      List.map (fun pi ->
          let b1 = Rng.bool rng and b2 = Rng.bool rng in
          ignore (Impl.assign_opt impl pi (V.of_bools b1 b2));
          (b1, b2))
        (Ck.Netlist.inputs nl)
    in
    let v1 = Ck.Logic.simulate nl (Array.of_list (List.map fst vec)) in
    let v2 = Ck.Logic.simulate nl (Array.of_list (List.map snd vec)) in
    Array.iteri
      (fun i _ ->
        Alcotest.(check string) "implied value matches simulation"
          (V.to_string (V.of_bools v1.(i) v2.(i)))
          (V.to_string (Impl.value impl i)))
      v1
  done

(* ---------- ITR ---------- *)

let make_itr nl = Itr.create ~library:(Lazy.force lib) ~model:DM.proposed nl

let test_itr_initial_equals_sta () =
  let nl = c17_prim () in
  let itr = make_itr nl in
  let sta = Ssd_sta.Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed nl in
  for i = 0 to Ck.Netlist.size nl - 1 do
    let st = Ssd_sta.Sta.timing sta i in
    (match Itr.rise_window itr i with
    | Some w ->
      Alcotest.(check bool) "rise equal to STA" true
        (Interval.equal ~eps:1e-15 w.Types.w_arr st.Ssd_sta.Sta.rise.Types.w_arr)
    | None -> Alcotest.fail "initial window missing");
    match Itr.fall_window itr i with
    | Some w ->
      Alcotest.(check bool) "fall equal to STA" true
        (Interval.equal ~eps:1e-15 w.Types.w_arr st.Ssd_sta.Sta.fall.Types.w_arr)
    | None -> Alcotest.fail "initial fall window missing"
  done

let test_itr_shrinks_monotonically () =
  let nl = c17_prim () in
  let itr = make_itr nl in
  let rng = Rng.create 8L in
  let before = ref (Itr.window_width_sum itr) in
  List.iter
    (fun pi ->
      let choice = if Rng.bool rng then v "01" else v "11" in
      if Itr.assign itr pi choice then begin
        let now = Itr.window_width_sum itr in
        Alcotest.(check bool) "width never grows" true (now <= !before +. 1e-15);
        before := now
      end)
    (Ck.Netlist.inputs nl)

let test_itr_impossible_transition_drops_window () =
  let nl = c17_prim () in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let itr = make_itr nl in
  Alcotest.(check bool) "assign steady" true (Itr.assign itr (id "1") (v "11"));
  Alcotest.(check bool) "assign steady 3" true (Itr.assign itr (id "3") (v "11"));
  (* 10 = NAND(1,3) = steady 0: no transitions at all *)
  Alcotest.(check bool) "no rise window" true (Itr.rise_window itr (id "10") = None);
  Alcotest.(check bool) "no fall window" true (Itr.fall_window itr (id "10") = None);
  Alcotest.(check int) "state is -1" (-1) (Itr.state itr (id "10") V.Rise)

let test_itr_definite_refines_latest () =
  (* with a definite falling input the latest to-controlling response is
     bounded by that input's own pin-to-pin worst case *)
  let nl = c17_prim () in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let itr = make_itr nl in
  let before =
    match Itr.rise_window itr (id "10") with
    | Some w -> Interval.hi w.Types.w_arr
    | None -> Alcotest.fail "missing window"
  in
  Alcotest.(check bool) "assign falling input" true
    (Itr.assign itr (id "1") (v "10"));
  (match Itr.rise_window itr (id "10") with
  | Some w ->
    Alcotest.(check bool) "latest refined or kept" true
      (Interval.hi w.Types.w_arr <= before +. 1e-15)
  | None -> Alcotest.fail "window should survive");
  ()

let prop_itr_windows_sound =
  (* the windows remain sound along any prefix of a full random assignment:
     the final timing-simulation event always lies inside every prefix's
     window for its line *)
  QCheck.Test.make ~name:"ITR windows contain final timing events" ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let nl = c17_prim () in
      let rng = Rng.create (Int64.of_int seed) in
      let npi = List.length (Ck.Netlist.inputs nl) in
      let vec = Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)) in
      let pi_spec =
        { Ssd_sta.Sta.pi_arrival = Interval.point 0.;
          pi_tt = Interval.point 0.25e-9 }
      in
      let lines =
        TS.simulate ~pi_arrival:0. ~pi_tt:0.25e-9 ~library:(Lazy.force lib)
          ~model:DM.proposed nl vec
      in
      let itr =
        Itr.create ~pi_spec ~library:(Lazy.force lib) ~model:DM.proposed nl
      in
      let sound () =
        Array.for_all
          (fun i ->
            match TS.event lines i with
            | None -> true
            | Some e ->
              let w =
                if not (TS.v1 lines i) then Itr.rise_window itr i
                else Itr.fall_window itr i
              in
              (match w with
              | None -> false
              | Some w ->
                Interval.contains w.Types.w_arr e.Types.e_arr))
          (Array.init (Ck.Netlist.size nl) Fun.id)
      in
      let ok = ref (sound ()) in
      List.iteri
        (fun rank pi ->
          if !ok then begin
            let b1, b2 = vec.(rank) in
            if not (Itr.assign itr pi (V.of_bools b1 b2)) then ok := false
            else ok := sound ()
          end)
        (Ck.Netlist.inputs nl);
      !ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "itr.value2f",
      [
        Alcotest.test_case "parsing" `Quick test_value_parsing;
        Alcotest.test_case "states" `Quick test_value_states;
        Alcotest.test_case "meet" `Quick test_value_meet;
        Alcotest.test_case "forward" `Quick test_value_forward;
        Alcotest.test_case "backward" `Quick test_value_backward;
      ] );
    ( "itr.implication",
      [
        Alcotest.test_case "c17 deductions" `Quick test_implication_c17;
        Alcotest.test_case "conflict isolation" `Quick
          test_implication_conflict_restores_via_copy;
        Alcotest.test_case "full specification" `Quick
          test_implication_full_specification;
        Alcotest.test_case "agrees with simulation" `Quick
          test_implication_agrees_with_simulation;
      ] );
    ( "itr.refinement",
      [
        Alcotest.test_case "initial equals STA" `Slow test_itr_initial_equals_sta;
        Alcotest.test_case "shrinks monotonically" `Slow
          test_itr_shrinks_monotonically;
        Alcotest.test_case "impossible transition" `Slow
          test_itr_impossible_transition_drops_window;
        Alcotest.test_case "definite refines latest" `Slow
          test_itr_definite_refines_latest;
      ] );
    qsuite "itr.soundness.props" [ prop_itr_windows_sound ];
  ]
