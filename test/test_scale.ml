(* Scale-substrate properties: the packed structure-of-arrays STA path
   against the seed record-array oracle at >= 10k gates, determinism of
   the parallel schedule, and the generator's structural invariants
   (exact PO count, honored fan-in cap — including caps beyond 4 — and
   acyclicity, which Netlist.build enforces). *)

module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module Windows = Ssd_sta.Windows
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())

let beq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let win_beq (a : Types.win) (b : Types.win) =
  beq (Interval.lo a.Types.w_arr) (Interval.lo b.Types.w_arr)
  && beq (Interval.hi a.Types.w_arr) (Interval.hi b.Types.w_arr)
  && beq (Interval.lo a.Types.w_tt) (Interval.lo b.Types.w_tt)
  && beq (Interval.hi a.Types.w_tt) (Interval.hi b.Types.w_tt)

let lt_beq (a : Sta.line_timing) (b : Sta.line_timing) =
  win_beq a.Sta.rise b.Sta.rise && win_beq a.Sta.fall b.Sta.fall

(* a >= 10k-gate primitive circuit per seed; layered so the level widths
   stay wide enough to exercise the level CSR and the parallel schedule *)
let big_prim seed =
  Ck.Decompose.to_primitive
    (Ck.Generator.generate
       {
         Ck.Generator.default_params with
         Ck.Generator.g_name = Printf.sprintf "scale%d" seed;
         n_inputs = 64;
         n_outputs = 32;
         n_gates = 10_000;
         locality = 256;
         seed = Int64.of_int (seed + 101);
         shape = Ck.Generator.Layered { layers = 40 };
       })

let prop_soa_matches_ref =
  QCheck.Test.make ~name:"packed STA bit-identical to record-array oracle"
    ~count:3
    QCheck.(int_range 0 1000)
    (fun seed ->
      let nl = big_prim seed in
      let lib = Lazy.force lib in
      let oracle = Sta.analyze_ref ~library:lib ~model:DM.proposed nl in
      let t = Sta.analyze ~library:lib ~model:DM.proposed nl in
      let w = Sta.windows t in
      let ok = ref true in
      for i = 0 to Ck.Netlist.size nl - 1 do
        (* both through the materializing accessor and the packed
           bitwise comparison *)
        if not (lt_beq oracle.(i) (Sta.timing t i)) then ok := false;
        if not (Windows.eq w i ~rise:oracle.(i).Sta.rise ~fall:oracle.(i).Sta.fall)
        then ok := false
      done;
      !ok)

let prop_jobs_deterministic =
  QCheck.Test.make ~name:"analyze bit-identical across jobs 1/4/8" ~count:2
    QCheck.(int_range 0 1000)
    (fun seed ->
      let nl = big_prim seed in
      let lib = Lazy.force lib in
      let base = Sta.analyze ~jobs:1 ~library:lib ~model:DM.proposed nl in
      List.for_all
        (fun jobs ->
          let t = Sta.analyze ~jobs ~library:lib ~model:DM.proposed nl in
          let ok = ref true in
          for i = 0 to Ck.Netlist.size nl - 1 do
            if not (lt_beq (Sta.timing base i) (Sta.timing t i)) then
              ok := false
          done;
          !ok)
        [ 4; 8 ])

let gen_invariants ~shape ~max_fanin seed =
  let p =
    {
      Ck.Generator.default_params with
      Ck.Generator.g_name = "inv";
      n_inputs = 32;
      n_outputs = 17;
      n_gates = 2_000;
      max_fanin;
      seed = Int64.of_int (seed + 7);
      shape;
    }
  in
  (* Netlist.build validates acyclicity, so generate succeeding is the
     acyclicity check *)
  let nl = Ck.Generator.generate p in
  let po_count_ok =
    List.length (Ck.Netlist.outputs nl) = p.Ck.Generator.n_outputs
  in
  let fanin_ok = ref true in
  let wide_seen = ref 0 in
  for i = 0 to Ck.Netlist.size nl - 1 do
    if not (Ck.Netlist.is_pi nl i) then begin
      let a = Ck.Netlist.fanin_count nl i in
      if a < 1 || a > max_fanin then fanin_ok := false;
      if a > 4 then incr wide_seen
    end
  done;
  (* with a cap beyond 4, the wide tail must actually be used *)
  let wide_ok = max_fanin <= 4 || !wide_seen > 0 in
  po_count_ok && !fanin_ok && wide_ok

let prop_generator_invariants =
  QCheck.Test.make
    ~name:"generator: exact PO count, fan-in cap honored, acyclic" ~count:6
    QCheck.(pair (int_range 0 1000) (int_range 2 8))
    (fun (seed, max_fanin) ->
      gen_invariants ~shape:Ck.Generator.Organic ~max_fanin seed
      && gen_invariants
           ~shape:(Ck.Generator.Layered { layers = 25 })
           ~max_fanin seed)

let test_layered_levels () =
  (* the layered shape pins depth = layers and non-trivial level widths *)
  let layers = 40 in
  let nl =
    Ck.Generator.generate
      {
        Ck.Generator.default_params with
        Ck.Generator.g_name = "layered";
        n_inputs = 64;
        n_outputs = 32;
        n_gates = 4_000;
        seed = 5L;
        shape = Ck.Generator.Layered { layers };
      }
  in
  Alcotest.(check int) "depth = layers" layers (Ck.Netlist.depth nl);
  for l = 1 to Ck.Netlist.level_count nl - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "level %d populated" l)
      true
      (Ck.Netlist.level_width nl l > 0)
  done

let test_cone_bitset_footprint () =
  (* a cached cone stores membership as one bit per node: size/8 bytes
     (+ constant header), not the seed's one byte per node *)
  let nl = big_prim 0 in
  let n = Ck.Netlist.size nl in
  let before = Ck.Netlist.cone_cache_bytes nl in
  Alcotest.(check int) "no cones cached yet" 0 before;
  let root = List.hd (Ck.Netlist.inputs nl) in
  let cone = Ck.Netlist.fanout_cone nl root in
  let per_cone = Ck.Netlist.cone_cache_bytes nl in
  let member_budget = (n / 8) + 64 in
  let nodes_bytes = 8 * Array.length cone.Ck.Netlist.cone_nodes in
  Alcotest.(check bool)
    (Printf.sprintf "cone footprint %d <= bitset budget %d" per_cone
       (member_budget + nodes_bytes + 64))
    true
    (per_cone <= member_budget + nodes_bytes + 64);
  (* and membership agrees with the node list *)
  let listed = Hashtbl.create 64 in
  Array.iter (fun j -> Hashtbl.replace listed j ()) cone.Ck.Netlist.cone_nodes;
  for j = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "membership bit %d" j)
      (Hashtbl.mem listed j)
      (Ck.Netlist.in_cone cone j)
  done

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "scale.substrate",
      [
        Alcotest.test_case "layered levels" `Slow test_layered_levels;
        Alcotest.test_case "cone bitset footprint" `Slow
          test_cone_bitset_footprint;
      ] );
    qsuite "scale.props"
      [ prop_soa_matches_ref; prop_jobs_deterministic;
        prop_generator_invariants ];
  ]
