module Interval = Ssd_util.Interval
module Linalg = Ssd_util.Linalg
module Lsq = Ssd_util.Lsq
module Func1d = Ssd_util.Func1d
module Pwl = Ssd_util.Pwl
module Rng = Ssd_util.Rng
module Stats = Ssd_util.Stats
module Texttab = Ssd_util.Texttab
module Json = Ssd_util.Json

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Interval ---------- *)

let test_interval_basics () =
  let i = Interval.make 1. 3. in
  check_float "lo" 1. (Interval.lo i);
  check_float "hi" 3. (Interval.hi i);
  check_float "width" 2. (Interval.width i);
  check_float "mid" 2. (Interval.mid i);
  Alcotest.(check bool) "contains" true (Interval.contains i 2.);
  Alcotest.(check bool) "not contains" false (Interval.contains i 3.5);
  Alcotest.check_raises "bad bounds" (Invalid_argument "Interval.make: lo (2) > hi (1)")
    (fun () -> ignore (Interval.make 2. 1.))

let test_interval_ops () =
  let a = Interval.make 0. 2. and b = Interval.make 1. 4. in
  Alcotest.(check bool) "overlaps" true (Interval.overlaps a b);
  (match Interval.intersect a b with
  | Some i ->
    check_float "inter lo" 1. (Interval.lo i);
    check_float "inter hi" 2. (Interval.hi i)
  | None -> Alcotest.fail "expected intersection");
  let h = Interval.hull a b in
  check_float "hull lo" 0. (Interval.lo h);
  check_float "hull hi" 4. (Interval.hi h);
  let s = Interval.add a b in
  check_float "sum lo" 1. (Interval.lo s);
  check_float "sum hi" 6. (Interval.hi s);
  let d = Interval.sub a b in
  check_float "diff lo" (-4.) (Interval.lo d);
  check_float "diff hi" 1. (Interval.hi d);
  let disjoint = Interval.make 10. 11. in
  Alcotest.(check bool) "disjoint" false (Interval.overlaps a disjoint);
  Alcotest.(check bool) "no intersection" true
    (Interval.intersect a disjoint = None)

let test_interval_clamp_subset () =
  let i = Interval.make (-1.) 1. in
  check_float "clamp below" (-1.) (Interval.clamp i (-5.));
  check_float "clamp above" 1. (Interval.clamp i 5.);
  check_float "clamp inside" 0.5 (Interval.clamp i 0.5);
  Alcotest.(check bool) "subset" true
    (Interval.subset (Interval.make 0. 0.5) i);
  Alcotest.(check bool) "not subset" false
    (Interval.subset (Interval.make 0. 2.) i)

let prop_interval_hull_contains =
  QCheck.Test.make ~name:"hull contains both operands" ~count:200
    QCheck.(quad (float_range (-100.) 100.) (float_range 0. 50.)
              (float_range (-100.) 100.) (float_range 0. 50.))
    (fun (a, wa, b, wb) ->
      let ia = Interval.make a (a +. wa) and ib = Interval.make b (b +. wb) in
      let h = Interval.hull ia ib in
      Interval.subset ia h && Interval.subset ib h)

let prop_interval_add_sound =
  QCheck.Test.make ~name:"interval sum contains pointwise sums" ~count:200
    QCheck.(quad (float_range (-10.) 10.) (float_range 0. 5.)
              (float_range (-10.) 10.) (float_range 0. 5.))
    (fun (a, wa, b, wb) ->
      let ia = Interval.make a (a +. wa) and ib = Interval.make b (b +. wb) in
      let s = Interval.add ia ib in
      (* sample a few points *)
      List.for_all
        (fun (fa, fb) ->
          let x = a +. (fa *. wa) and y = b +. (fb *. wb) in
          Interval.contains s (x +. y))
        [ (0., 0.); (1., 1.); (0.5, 0.25); (0., 1.) ])

(* ---------- Linalg ---------- *)

let test_linalg_solve () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 5.; 10. |] in
  let x = Linalg.solve a b in
  check_float "x0" 1. x.(0);
  check_float "x1" 3. x.(1);
  (* original not clobbered *)
  check_float "a intact" 2. a.(0).(0)

let test_linalg_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Linalg.Singular (fun () ->
      ignore (Linalg.solve a [| 1.; 1. |]))

let test_linalg_matvec () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let y = Linalg.mat_vec a [| 1.; 1. |] in
  check_float "y0" 3. y.(0);
  check_float "y1" 7. y.(1);
  let at = Linalg.transpose a in
  check_float "t01" 3. at.(0).(1);
  let m = Linalg.mat_mul a (Linalg.identity 2) in
  check_float "mul id" 4. m.(1).(1)

let prop_linalg_solve_random =
  QCheck.Test.make ~name:"solve recovers random solutions" ~count:100
    QCheck.(list_of_size (Gen.return 9) (float_range (-5.) 5.))
    (fun vals ->
      (* build a diagonally-dominated 3x3 system and a random solution *)
      match vals with
      | [ a; b; c; d; e; f; x0; x1; x2 ] ->
        let m =
          [|
            [| 10. +. abs_float a; b; c |];
            [| d; 10. +. abs_float e; f |];
            [| a; f; 10. +. abs_float b |];
          |]
        in
        let x = [| x0; x1; x2 |] in
        let rhs = Linalg.mat_vec m x in
        let x' = Linalg.solve m rhs in
        Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-8) x x'
      | _ -> QCheck.assume_fail ())

(* ---------- Lsq ---------- *)

let test_lsq_exact_quadratic () =
  (* samples from 3x² − 2x + 1 must be reproduced exactly *)
  let samples =
    List.map
      (fun x -> ([| x |], (3. *. x *. x) -. (2. *. x) +. 1.))
      [ -2.; -1.; 0.; 1.; 2.; 3. ]
  in
  let k = Lsq.fit Lsq.quadratic_1d samples in
  Alcotest.(check (float 1e-6)) "k0" 3. k.(0);
  Alcotest.(check (float 1e-6)) "k1" (-2.) k.(1);
  Alcotest.(check (float 1e-6)) "k2" 1. k.(2);
  Alcotest.(check (float 1e-6)) "rms" 0. (Lsq.rms_error Lsq.quadratic_1d k samples)

let test_lsq_nano_scale () =
  (* the regression that motivated column normalization: T ~ 1e-9 *)
  let f t = (1e7 *. t *. t) +. (0.1 *. t) +. 1e-10 in
  let samples = List.map (fun t -> ([| t |], f t)) [ 1e-10; 5e-10; 1e-9; 2e-9; 3e-9 ] in
  let k = Lsq.fit Lsq.quadratic_1d samples in
  let rel_err =
    Float.abs (Lsq.predict Lsq.quadratic_1d k [| 1.5e-9 |] -. f 1.5e-9)
    /. f 1.5e-9
  in
  Alcotest.(check bool) "interpolates at nano scale" true (rel_err < 1e-6)

let test_lsq_2d_bases () =
  let f x y = (2. *. x *. x) +. (3. *. y) -. 1. in
  let grid = [ 0.5; 1.0; 1.5; 2.0 ] in
  let samples =
    List.concat_map (fun x -> List.map (fun y -> ([| x; y |], f x y)) grid) grid
  in
  let k = Lsq.fit Lsq.quadratic_2d samples in
  Alcotest.(check (float 1e-6)) "recovers 2d quadratic" (f 0.7 1.2)
    (Lsq.predict Lsq.quadratic_2d k [| 0.7; 1.2 |]);
  let kc = Lsq.fit Lsq.cubic_2d samples in
  Alcotest.(check (float 1e-5)) "cubic superset fits too" (f 0.7 1.2)
    (Lsq.predict Lsq.cubic_2d kc [| 0.7; 1.2 |])

let test_lsq_cuberoot_basis () =
  let b = Lsq.bilinear_cuberoot_2d [| 8.; 27. |] in
  Alcotest.(check (float 1e-9)) "xy term" 6. b.(0);
  Alcotest.(check (float 1e-9)) "x term" 2. b.(1);
  Alcotest.(check (float 1e-9)) "y term" 3. b.(2);
  Alcotest.(check (float 1e-9)) "const" 1. b.(3)

let test_lsq_singular_raises () =
  (* a fit poisoned by non-finite data must raise a message naming the
     basis and sample count, not hand back NaN coefficients *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let expect_fail samples =
    match Lsq.fit Lsq.quadratic_1d samples with
    | _ -> Alcotest.fail "expected Invalid_argument from Lsq.fit"
    | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the basis" true
        (contains msg (Lsq.basis_name Lsq.quadratic_1d));
      Alcotest.(check bool) "names the sample count" true
        (contains msg "3 sample(s)")
  in
  expect_fail [ ([| Float.nan |], 1.); ([| 1. |], 2.); ([| 2. |], 3.) ];
  expect_fail [ ([| 1. |], Float.infinity); ([| 2. |], 2.); ([| 3. |], 3.) ];
  Alcotest.check_raises "empty" (Invalid_argument "Lsq.fit: empty sample list")
    (fun () -> ignore (Lsq.fit Lsq.quadratic_1d []))

(* ---------- Stats.quantile ---------- *)

let test_stats_quantile () =
  let xs = [ 3.; 1.; 4.; 2. ] in
  (* type-7 estimator on the sorted samples [1;2;3;4] *)
  Alcotest.(check (float 1e-12)) "q0 = min" 1. (Stats.quantile 0. xs);
  Alcotest.(check (float 1e-12)) "q1 = max" 4. (Stats.quantile 1. xs);
  Alcotest.(check (float 1e-12)) "median" 2.5 (Stats.quantile 0.5 xs);
  Alcotest.(check (float 1e-12)) "q25 interpolates" 1.75 (Stats.quantile 0.25 xs);
  Alcotest.(check (float 1e-12)) "singleton" 7. (Stats.quantile 0.5 [ 7. ]);
  (match Stats.quantiles [ 0.; 0.5; 1. ] xs with
  | [ (0., a); (0.5, b); (1., c) ] ->
    Alcotest.(check (float 1e-12)) "qs min" 1. a;
    Alcotest.(check (float 1e-12)) "qs median" 2.5 b;
    Alcotest.(check (float 1e-12)) "qs max" 4. c
  | _ -> Alcotest.fail "quantiles shape");
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty sample list")
    (fun () -> ignore (Stats.quantile 0.5 []));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.quantile: q = 1.5 outside [0, 1]")
    (fun () -> ignore (Stats.quantile 1.5 xs))

(* ---------- Func1d ---------- *)

let test_func1d_corner_search () =
  let f x = -.((x -. 2.) ** 2.) +. 5. in
  (* bitonic with peak at 2 *)
  let iv = Interval.make 0. 5. in
  let x, v = Func1d.max_over (Func1d.Bitonic 2.) f iv in
  check_float "peak x" 2. x;
  check_float "peak v" 5. v;
  (* peak outside the interval: endpoints only *)
  let iv2 = Interval.make 3. 5. in
  let x2, _ = Func1d.max_over (Func1d.Bitonic 2.) f iv2 in
  check_float "clipped peak" 3. x2;
  let x3, _ = Func1d.min_over Func1d.Monotonic (fun x -> x) iv in
  check_float "monotonic min at lo" 0. x3

let test_func1d_golden () =
  let f x = ((x -. 1.3) ** 2.) +. 0.7 in
  let x, v = Func1d.golden_min ~tol:1e-9 f (-10.) 10. in
  Alcotest.(check (float 1e-5)) "argmin" 1.3 x;
  Alcotest.(check (float 1e-5)) "min" 0.7 v;
  let xm, _ = Func1d.golden_max ~tol:1e-9 (fun x -> -.f x) (-10.) 10. in
  Alcotest.(check (float 1e-5)) "argmax" 1.3 xm

let test_func1d_bisect () =
  let root = Func1d.bisect ~tol:1e-12 (fun x -> (x *. x) -. 2.) 0. 2. in
  Alcotest.(check (float 1e-9)) "sqrt 2" (sqrt 2.) root;
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Func1d.bisect: no sign change on the bracket")
    (fun () -> ignore (Func1d.bisect (fun x -> x +. 10.) 0. 1.))

let test_func1d_shape_checks () =
  Alcotest.(check bool) "monotone" true
    (Func1d.is_monotonic_nondecreasing [ (0., 1.); (1., 2.); (2., 2.); (3., 5.) ]);
  Alcotest.(check bool) "not monotone" false
    (Func1d.is_monotonic_nondecreasing [ (0., 1.); (1., 0.5) ]);
  Alcotest.(check bool) "bitonic" true
    (Func1d.is_bitonic_up_down [ (0., 1.); (1., 3.); (2., 2.); (3., 0.) ]);
  Alcotest.(check bool) "not bitonic" false
    (Func1d.is_bitonic_up_down [ (0., 1.); (1., 0.); (2., 2.) ])

let prop_golden_min_quadratics =
  QCheck.Test.make ~name:"golden section finds quadratic minima" ~count:100
    QCheck.(pair (float_range (-3.) 3.) (float_range 0.1 5.))
    (fun (c, a) ->
      let f x = (a *. (x -. c) ** 2.) +. 1. in
      let x, _ = Func1d.golden_min ~tol:1e-10 f (-5.) 5. in
      Float.abs (x -. c) < 1e-4)

(* ---------- Pwl ---------- *)

let test_pwl_interp () =
  let w = Pwl.of_points [ (0., 0.); (1., 2.); (3., 0.) ] in
  check_float "before" 0. (Pwl.value_at w (-1.));
  check_float "mid seg1" 1. (Pwl.value_at w 0.5);
  check_float "breakpoint" 2. (Pwl.value_at w 1.);
  check_float "mid seg2" 1. (Pwl.value_at w 2.);
  check_float "after" 0. (Pwl.value_at w 10.)

let test_pwl_crossings () =
  let w = Pwl.of_points [ (0., 0.); (1., 2.); (3., 0.) ] in
  (match Pwl.first_crossing w ~rising:true 1. with
  | Some t -> check_float "rising crossing" 0.5 t
  | None -> Alcotest.fail "expected rising crossing");
  (match Pwl.first_crossing w ~rising:false 1. with
  | Some t -> check_float "falling crossing" 2. t
  | None -> Alcotest.fail "expected falling crossing");
  Alcotest.(check bool) "no crossing above range" true
    (Pwl.first_crossing w ~rising:true 3. = None)

let test_pwl_ramps () =
  let w = Pwl.rising_ramp ~t0:1e-9 ~t_transition:0.8e-9 ~v_lo:0. ~v_hi:1. in
  (* full span = 0.8 / 0.8 = 1 ns *)
  check_float "start" 0. (Pwl.value_at w 1e-9);
  check_float "end" 1. (Pwl.value_at w 2e-9);
  (match
     Pwl.crossing_pair w ~rising:true ~low_frac:0.1 ~high_frac:0.9 ~v_lo:0.
       ~v_hi:1.
   with
  | Some (t10, t90) ->
    Alcotest.(check (float 1e-12)) "transition time" 0.8e-9 (t90 -. t10)
  | None -> Alcotest.fail "expected crossings");
  Alcotest.check_raises "bad transition"
    (Invalid_argument "Pwl.rising_ramp: t_transition <= 0") (fun () ->
      ignore (Pwl.rising_ramp ~t0:0. ~t_transition:0. ~v_lo:0. ~v_hi:1.))

let test_pwl_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Pwl.of_points: empty")
    (fun () -> ignore (Pwl.of_points []));
  Alcotest.check_raises "unordered"
    (Invalid_argument "Pwl.of_points: times must be strictly increasing")
    (fun () -> ignore (Pwl.of_points [ (1., 0.); (1., 1.) ]))

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_ranges () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let f = Rng.float r 10. in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 10.);
    let i = Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 17)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 3L in
  let arr = Array.init 30 Fun.id in
  let orig = Array.copy arr in
  Rng.shuffle r arr;
  Array.sort compare arr;
  Alcotest.(check bool) "same multiset" true (arr = orig)

(* ---------- Stats ---------- *)

let test_stats () =
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_float "mean empty" 0. (Stats.mean []);
  check_float "rms" (sqrt 2.) (Stats.rms [ 1.; -1.; 2.; 0. ] |> fun x -> x *. x |> sqrt |> fun _ -> Stats.rms [ sqrt 2.; sqrt 2. ]);
  check_float "max_abs" 3. (Stats.max_abs [ 1.; -3.; 2. ]);
  (match Stats.min_max [ 3.; 1.; 2. ] with
  | Some (lo, hi) ->
    check_float "min" 1. lo;
    check_float "max" 3. hi
  | None -> Alcotest.fail "expected min_max");
  check_float "pct error" 10.
    (Stats.mean_abs_pct_error ~reference:[ 10.; 20. ] [ 11.; 22. ])

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.; 1.; 2.; 3. ] in
  Alcotest.(check int) "bins" 2 (List.length h);
  let total = List.fold_left (fun a (_, _, c) -> a + c) 0 h in
  Alcotest.(check int) "all counted" 4 total

let test_stats_histogram_range () =
  (* pinned edges are data-independent, so histograms built from
     different sample subsets (e.g. per-lane shards) add bin-by-bin *)
  let edges h = List.map (fun (lo, hi, _) -> (lo, hi)) h in
  let counts h = List.map (fun (_, _, c) -> c) h in
  let a = [ 0.5; 1.5 ] and b = [ 2.5; 3.5; 0.6 ] in
  let bins = 4 and lo = 0. and hi = 4. in
  let ha = Stats.histogram ~bins ~lo ~hi a in
  let hb = Stats.histogram ~bins ~lo ~hi b in
  let hall = Stats.histogram ~bins ~lo ~hi (a @ b) in
  Alcotest.(check bool) "same edges" true
    (edges ha = edges hb && edges ha = edges hall);
  Alcotest.(check (list int)) "shards merge"
    (counts hall)
    (List.map2 ( + ) (counts ha) (counts hb));
  (* out-of-range samples clamp into the edge bins *)
  let hc = Stats.histogram ~bins:2 ~lo:0. ~hi:2. [ -5.; 0.5; 99. ] in
  Alcotest.(check (list int)) "clamped" [ 2; 1 ] (counts hc);
  (* both ends pinned: even an empty input renders the fixed bins *)
  let he = Stats.histogram ~bins:3 ~lo:0. ~hi:3. [] in
  Alcotest.(check (list int)) "empty fixed range" [ 0; 0; 0 ] (counts he);
  Alcotest.check_raises "bad range"
    (Invalid_argument "Stats.histogram: hi <= lo") (fun () ->
      ignore (Stats.histogram ~bins:2 ~lo:1. ~hi:1. [ 0. ]))

(* ---------- Json ---------- *)

let test_json_print () =
  let j =
    Json.Obj
      [
        ("a", Json.Num 1.);
        ("b", Json.Str "x\"y\n");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Num 2.5 ]);
      ]
  in
  Alcotest.(check string) "render"
    {|{"a":1,"b":"x\"y\n","c":[true,null,2.5]}|}
    (Json.to_string j);
  Alcotest.(check string) "integral floats stay integral" {|[42,-3]|}
    (Json.to_string (Json.List [ Json.Num 42.; Json.Num (-3.) ]));
  Alcotest.(check string) "non-finite becomes null" "null"
    (Json.to_string (Json.Num nan))

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("name", Json.Str "trace");
        ("xs", Json.List [ Json.Num 0.; Json.Num 1.5; Json.Num (-2e-3) ]);
        ("ok", Json.Bool false);
        ("nested", Json.Obj [ ("u", Json.Str "caf\xc3\xa9") ]);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "truncated" true (bad "{\"a\": [1, 2");
  Alcotest.(check bool) "trailing" true (bad "{} x");
  Alcotest.(check bool) "bare word" true (bad "nope");
  (match Json.parse {|{"t": "a\u00e9\ud83d\ude00"}|} with
  | Ok (Json.Obj [ ("t", Json.Str s) ]) ->
    Alcotest.(check string) "unicode escapes decode to UTF-8"
      "a\xc3\xa9\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected unicode string");
  match Json.parse "[1, 2.5e2, -0.25]" with
  | Ok (Json.List [ Json.Num a; Json.Num b; Json.Num c ]) ->
    check_float "int" 1. a;
    check_float "exp" 250. b;
    check_float "neg frac" (-0.25) c
  | _ -> Alcotest.fail "expected number list"

(* ---------- Texttab ---------- *)

let test_texttab () =
  let t = Texttab.create ~header:[ "name"; "v" ] in
  Texttab.add_row t [ "a"; "1" ];
  Texttab.add_row_f ~prec:2 t "b" [ 3.14159 ];
  let s = Texttab.render t in
  Alcotest.(check bool) "mentions rows" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length = 4);
  Alcotest.check_raises "arity" (Invalid_argument "Texttab.add_row: arity mismatch with header")
    (fun () -> Texttab.add_row t [ "only-one" ])

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "util.interval",
      [
        Alcotest.test_case "basics" `Quick test_interval_basics;
        Alcotest.test_case "ops" `Quick test_interval_ops;
        Alcotest.test_case "clamp/subset" `Quick test_interval_clamp_subset;
      ] );
    qsuite "util.interval.props"
      [ prop_interval_hull_contains; prop_interval_add_sound ];
    ( "util.linalg",
      [
        Alcotest.test_case "solve" `Quick test_linalg_solve;
        Alcotest.test_case "singular" `Quick test_linalg_singular;
        Alcotest.test_case "matvec" `Quick test_linalg_matvec;
      ] );
    qsuite "util.linalg.props" [ prop_linalg_solve_random ];
    ( "util.lsq",
      [
        Alcotest.test_case "exact quadratic" `Quick test_lsq_exact_quadratic;
        Alcotest.test_case "nano scale" `Quick test_lsq_nano_scale;
        Alcotest.test_case "2d bases" `Quick test_lsq_2d_bases;
        Alcotest.test_case "cuberoot basis" `Quick test_lsq_cuberoot_basis;
        Alcotest.test_case "singular raises" `Quick test_lsq_singular_raises;
      ] );
    ( "util.func1d",
      [
        Alcotest.test_case "corner search" `Quick test_func1d_corner_search;
        Alcotest.test_case "golden" `Quick test_func1d_golden;
        Alcotest.test_case "bisect" `Quick test_func1d_bisect;
        Alcotest.test_case "shape checks" `Quick test_func1d_shape_checks;
      ] );
    qsuite "util.func1d.props" [ prop_golden_min_quadratics ];
    ( "util.pwl",
      [
        Alcotest.test_case "interp" `Quick test_pwl_interp;
        Alcotest.test_case "crossings" `Quick test_pwl_crossings;
        Alcotest.test_case "ramps" `Quick test_pwl_ramps;
        Alcotest.test_case "validation" `Quick test_pwl_validation;
      ] );
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "ranges" `Quick test_rng_ranges;
        Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "descriptive" `Quick test_stats;
        Alcotest.test_case "histogram" `Quick test_stats_histogram;
        Alcotest.test_case "histogram fixed range" `Quick
          test_stats_histogram_range;
        Alcotest.test_case "quantile" `Quick test_stats_quantile;
      ] );
    ( "util.json",
      [
        Alcotest.test_case "print" `Quick test_json_print;
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
      ] );
    ("util.texttab", [ Alcotest.test_case "render" `Quick test_texttab ]);
  ]
