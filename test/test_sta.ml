module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module TS = Ssd_sta.Timing_sim
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval
module Rng = Ssd_util.Rng

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())

let c17_prim () = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ())

let analyze ?pi_spec model nl =
  Sta.analyze ?pi_spec ~library:(Lazy.force lib) ~model nl

(* ---------- forward analysis ---------- *)

let test_sta_c17_basic () =
  let nl = c17_prim () in
  let t = analyze DM.proposed nl in
  let w = Sta.po_window t in
  Alcotest.(check bool) "positive min delay" true (Interval.lo w > 10e-12);
  Alcotest.(check bool) "max > min" true (Interval.hi w > Interval.lo w);
  Alcotest.(check bool) "below 2ns for c17" true (Interval.hi w < 2e-9);
  (* every line window well-formed and later than its fan-ins *)
  for i = 0 to Ck.Netlist.size nl - 1 do
    let lt = Sta.timing t i in
    Alcotest.(check bool) "rise lo<=hi" true
      (Interval.lo lt.Sta.rise.Types.w_arr <= Interval.hi lt.Sta.rise.Types.w_arr);
    Alcotest.(check bool) "tt positive" true
      (Interval.lo lt.Sta.rise.Types.w_tt > 0.)
  done

let test_sta_models_agree_on_max () =
  (* Table 2: identical max-delay, proposed min-delay <= pin-to-pin's *)
  List.iter
    (fun name ->
      let nl =
        Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name name))
      in
      let p = analyze DM.proposed nl in
      let b = analyze DM.pin_to_pin nl in
      Alcotest.(check (float 1e-15)) (name ^ " same max") (Sta.max_delay b)
        (Sta.max_delay p);
      Alcotest.(check bool) (name ^ " min not larger") true
        (Sta.min_delay p <= Sta.min_delay b +. 1e-15))
    [ "c17"; "c880s" ]

let test_sta_rejects_non_primitive () =
  let nl =
    Ck.Bench_io.parse_string ~name:"np" "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n"
  in
  Alcotest.(check bool) "raises Unsupported_gate" true
    (match analyze DM.proposed nl with
    | exception Sta.Unsupported_gate _ -> true
    | _ -> false)

let test_sta_rejects_windowless_model () =
  let nl = c17_prim () in
  Alcotest.(check bool) "jun cannot drive STA" true
    (match analyze DM.jun nl with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sta_pi_spec_effect () =
  let nl = c17_prim () in
  let tight =
    {
      Sta.pi_arrival = Interval.point 0.;
      pi_tt = Interval.point 0.3e-9;
    }
  in
  let wide =
    {
      Sta.pi_arrival = Interval.make 0. 0.4e-9;
      pi_tt = Interval.make 0.15e-9 0.6e-9;
    }
  in
  let a = analyze ~pi_spec:tight DM.proposed nl in
  let b = analyze ~pi_spec:wide DM.proposed nl in
  Alcotest.(check bool) "wider PI spec widens PO window" true
    (Interval.width (Sta.po_window b) > Interval.width (Sta.po_window a))

(* ---------- parallel / cached evaluation ---------- *)

let exact_win label (a : Types.win) (b : Types.win) =
  (* bit-identical, not approximately equal: the parallel engine and the
     memo cache both promise exact replay of the sequential arithmetic *)
  let eq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  Alcotest.(check bool) label true
    (eq (Interval.lo a.Types.w_arr) (Interval.lo b.Types.w_arr)
    && eq (Interval.hi a.Types.w_arr) (Interval.hi b.Types.w_arr)
    && eq (Interval.lo a.Types.w_tt) (Interval.lo b.Types.w_tt)
    && eq (Interval.hi a.Types.w_tt) (Interval.hi b.Types.w_tt))

let check_deterministic name nl =
  let nl = Ck.Decompose.to_primitive nl in
  let lib = Lazy.force lib in
  let base = Sta.analyze ~jobs:1 ~cache:false ~library:lib ~model:DM.proposed nl in
  let runs =
    [
      ("cached", Sta.analyze ~jobs:1 ~cache:true ~library:lib ~model:DM.proposed nl);
      ("par", Sta.analyze ~jobs:4 ~cache:false ~library:lib ~model:DM.proposed nl);
      ("par+cached", Sta.analyze ~jobs:4 ~cache:true ~library:lib ~model:DM.proposed nl);
    ]
  in
  for i = 0 to Ck.Netlist.size nl - 1 do
    let b = Sta.timing base i in
    List.iter
      (fun (tag, t) ->
        let x = Sta.timing t i in
        exact_win (Printf.sprintf "%s %s rise @%d" name tag i) b.Sta.rise x.Sta.rise;
        exact_win (Printf.sprintf "%s %s fall @%d" name tag i) b.Sta.fall x.Sta.fall)
      runs
  done

let test_sta_parallel_deterministic () =
  check_deterministic "c17" (Ck.Benchmarks.c17 ());
  check_deterministic "c880s" (Option.get (Ck.Benchmarks.by_name "c880s"))

let test_sta_jobs_auto () =
  (* jobs <= 0 selects the domain count; result must still match *)
  let nl = c17_prim () in
  let lib = Lazy.force lib in
  let a = Sta.analyze ~jobs:1 ~library:lib ~model:DM.proposed nl in
  let b = Sta.analyze ~jobs:0 ~library:lib ~model:DM.proposed nl in
  for i = 0 to Ck.Netlist.size nl - 1 do
    exact_win "auto rise" (Sta.timing a i).Sta.rise (Sta.timing b i).Sta.rise;
    exact_win "auto fall" (Sta.timing a i).Sta.fall (Sta.timing b i).Sta.fall
  done

let test_par_pool_basics () =
  let module Par = Ssd_sta.Par in
  Par.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "lanes" 4 (Par.jobs pool);
      (* sums every index exactly once, over several jobs on one pool *)
      for round = 1 to 3 do
        let n = 1000 * round in
        let hits = Array.make n 0 in
        Par.parallel_for pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
        Alcotest.(check bool)
          (Printf.sprintf "each index once (n=%d)" n)
          true
          (Array.for_all (fun c -> c = 1) hits)
      done;
      (* an exception in a worker chunk reaches the caller *)
      Alcotest.(check bool) "exception propagates" true
        (match
           Par.parallel_for pool ~n:100 (fun i ->
               if i = 57 then failwith "boom")
         with
        | exception Failure _ -> true
        | () -> false);
      (* the pool survives a failed job *)
      let total = Atomic.make 0 in
      Par.parallel_for pool ~n:100 (fun i ->
          ignore (Atomic.fetch_and_add total i));
      Alcotest.(check int) "pool usable after failure" 4950 (Atomic.get total))

(* ---------- required times / violations ---------- *)

let test_sta_required_and_violations () =
  let nl = c17_prim () in
  let t = analyze DM.proposed nl in
  let relaxed = Sta.compute_required t ~clock_period:(2. *. Sta.max_delay t) in
  Alcotest.(check int) "no violations at relaxed clock" 0
    (List.length (Sta.violations t relaxed));
  let tight = Sta.compute_required t ~clock_period:(0.5 *. Sta.max_delay t) in
  Alcotest.(check bool) "violations at tight clock" true
    (List.length (Sta.violations t tight) > 0)

let test_sta_required_monotone_backward () =
  let nl = c17_prim () in
  let t = analyze DM.proposed nl in
  let clock = Sta.max_delay t in
  let q = Sta.compute_required t ~clock_period:clock in
  (* a PI's latest-allowed must be no later than a PO's *)
  let po = List.hd (Ck.Netlist.outputs nl) in
  let pi = List.hd (Ck.Netlist.inputs nl) in
  Alcotest.(check bool) "requirements tighten backward" true
    (Interval.hi q.(pi).Sta.q_rise <= Interval.hi q.(po).Sta.q_rise +. 1e-15)

(* ---------- timing simulation ---------- *)

let test_tsim_logic_matches_boolean () =
  let nl = c17_prim () in
  let rng = Rng.create 17L in
  for _ = 1 to 20 do
    let npi = List.length (Ck.Netlist.inputs nl) in
    let vec = Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)) in
    let lines = TS.simulate ~library:(Lazy.force lib) ~model:DM.proposed nl vec in
    let v1 = Ck.Logic.simulate nl (Array.map fst vec) in
    let v2 = Ck.Logic.simulate nl (Array.map snd vec) in
    for i = 0 to Ck.Netlist.size nl - 1 do
      Alcotest.(check bool) "frame1 matches" (TS.v1 lines i) v1.(i);
      Alcotest.(check bool) "frame2 matches" (TS.v2 lines i) v2.(i);
      Alcotest.(check bool) "event iff changed"
        (TS.v1 lines i <> TS.v2 lines i)
        (TS.has_event lines i)
    done
  done

let prop_tsim_within_sta_windows =
  (* the central soundness property: every timing-simulation event falls
     inside the corresponding STA window *)
  QCheck.Test.make ~name:"timing simulation within STA windows" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let nl = c17_prim () in
      let pi_spec =
        { Sta.pi_arrival = Interval.point 0.; pi_tt = Interval.point 0.25e-9 }
      in
      let sta = analyze ~pi_spec DM.proposed nl in
      let rng = Rng.create (Int64.of_int seed) in
      let npi = List.length (Ck.Netlist.inputs nl) in
      let vec = Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)) in
      let lines =
        TS.simulate ~pi_arrival:0. ~pi_tt:0.25e-9 ~library:(Lazy.force lib)
          ~model:DM.proposed nl vec
      in
      Array.for_all
        (fun i ->
          match TS.event lines i with
          | None -> true
          | Some e ->
            let lt = Sta.timing sta i in
            let w = if not (TS.v1 lines i) then lt.Sta.rise else lt.Sta.fall in
            Interval.contains w.Types.w_arr e.Types.e_arr
            && Interval.contains w.Types.w_tt e.Types.e_tt)
        (Array.init (Ck.Netlist.size nl) Fun.id))

let test_tsim_extra_delay_propagates () =
  let nl = c17_prim () in
  (* input 1 falls with 3 and 6 steady-1 and 2 steady-1: 11 = NAND(3,6) = 0
     makes 16 = 1, so 22 = NAND(10, 16) responds to 10's rise *)
  let vec = [| (true, false); (true, true); (true, true); (true, true); (false, false) |] in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let base = TS.simulate ~library:(Lazy.force lib) ~model:DM.proposed nl vec in
  let shifted =
    TS.simulate
      ~extra_delay:(fun i -> if i = id "10" then 100e-12 else 0.)
      ~library:(Lazy.force lib) ~model:DM.proposed nl vec
  in
  match (TS.event base (id "22"), TS.event shifted (id "22")) with
  | Some b, Some s ->
    Alcotest.(check bool) "delay propagates downstream" true
      (s.Types.e_arr -. b.Types.e_arr > 50e-12)
  | _ -> Alcotest.fail "expected events at output 22"

let test_tsim_po_latest () =
  let nl = c17_prim () in
  let vec = [| (true, false); (true, true); (true, true); (true, true); (false, false) |] in
  let lines = TS.simulate ~library:(Lazy.force lib) ~model:DM.proposed nl vec in
  (match TS.po_latest nl lines with
  | Some t -> Alcotest.(check bool) "positive" true (t > 0.)
  | None -> Alcotest.fail "expected a switching PO");
  (* all-steady vector: no PO event *)
  let steady = Array.map (fun (a, _) -> (a, a)) vec in
  let lines2 = TS.simulate ~library:(Lazy.force lib) ~model:DM.proposed nl steady in
  Alcotest.(check bool) "no events" true (TS.po_latest nl lines2 = None)

let prop_resim_cone_bit_identical =
  (* the incremental engine's whole contract: re-timing only the victim's
     fanout cone on top of the fault-free baseline reproduces the full
     simulation bit for bit, on random primitive netlists, victims,
     deltas and vector pairs *)
  QCheck.Test.make ~name:"resimulate_cone bit-identical to full simulate"
    ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let nl =
        Ck.Decompose.to_primitive
          (Ck.Generator.generate
             {
               Ck.Generator.default_params with
               Ck.Generator.g_name = "resim";
               n_inputs = 6;
               n_outputs = 3;
               n_gates = 20 + Rng.int rng 30;
               seed = Int64.of_int (seed + 1);
             })
      in
      let lib = Lazy.force lib in
      let victim = Rng.int rng (Ck.Netlist.size nl) in
      let delta = Rng.float_range rng 10e-12 200e-12 in
      let extra_delay i = if i = victim then delta else 0. in
      let npi = List.length (Ck.Netlist.inputs nl) in
      let vec = Array.init npi (fun _ -> (Rng.bool rng, Rng.bool rng)) in
      let base = TS.simulate ~library:lib ~model:DM.proposed nl vec in
      let full =
        TS.simulate ~extra_delay ~library:lib ~model:DM.proposed nl vec
      in
      let cone = Ck.Netlist.fanout_cone nl victim in
      let inc = TS.resimulate_cone ~library:lib ~model:DM.proposed nl
          ~base ~cone ~extra_delay
      in
      let beq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
      let n = Ck.Netlist.size nl in
      let lines_eq a b =
        let ok = ref true in
        for i = 0 to n - 1 do
          if TS.v1 a i <> TS.v1 b i || TS.v2 a i <> TS.v2 b i then ok := false
          else
            match (TS.event a i, TS.event b i) with
            | None, None -> ()
            | Some ea, Some eb ->
              if
                not
                  (beq ea.Types.e_arr eb.Types.e_arr
                  && beq ea.Types.e_tt eb.Types.e_tt)
              then ok := false
            | _, _ -> ok := false
        done;
        !ok
      in
      lines_eq full inc
      && (* and the fault-free baseline was never mutated *)
      lines_eq base (TS.simulate ~library:lib ~model:DM.proposed nl vec))

let test_resim_cone_out_of_cone_preserved () =
  (* lines outside the cone must keep the fault-free values verbatim, and
     the scratch store must be fresh (the baseline stays unmutated) *)
  let nl = c17_prim () in
  let lib = Lazy.force lib in
  let vec = [| (true, false); (true, true); (true, true); (true, true); (false, false) |] in
  let base = TS.simulate ~library:lib ~model:DM.proposed nl vec in
  let victim = Option.get (Ck.Netlist.find nl "10") in
  let cone = Ck.Netlist.fanout_cone nl victim in
  let inc =
    TS.resimulate_cone ~library:lib ~model:DM.proposed nl ~base ~cone
      ~extra_delay:(fun i -> if i = victim then 100e-12 else 0.)
  in
  Alcotest.(check bool) "fresh store" true (inc != base);
  for i = 0 to Ck.Netlist.size nl - 1 do
    if not (Ck.Netlist.in_cone cone i) then
      Alcotest.(check bool)
        (Printf.sprintf "line %d keeps the fault-free record" i)
        true
        (TS.get inc i = TS.get base i)
  done

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "sta.forward",
      [
        Alcotest.test_case "c17 windows" `Slow test_sta_c17_basic;
        Alcotest.test_case "models agree on max" `Slow
          test_sta_models_agree_on_max;
        Alcotest.test_case "rejects non-primitive" `Slow
          test_sta_rejects_non_primitive;
        Alcotest.test_case "rejects windowless model" `Slow
          test_sta_rejects_windowless_model;
        Alcotest.test_case "pi spec effect" `Slow test_sta_pi_spec_effect;
      ] );
    ( "sta.parallel",
      [
        Alcotest.test_case "bit-identical" `Slow test_sta_parallel_deterministic;
        Alcotest.test_case "jobs auto" `Slow test_sta_jobs_auto;
        Alcotest.test_case "pool basics" `Quick test_par_pool_basics;
      ] );
    ( "sta.required",
      [
        Alcotest.test_case "violations" `Slow test_sta_required_and_violations;
        Alcotest.test_case "backward monotone" `Slow
          test_sta_required_monotone_backward;
      ] );
    ( "sta.tsim",
      [
        Alcotest.test_case "logic matches" `Slow test_tsim_logic_matches_boolean;
        Alcotest.test_case "extra delay propagates" `Slow
          test_tsim_extra_delay_propagates;
        Alcotest.test_case "po latest" `Slow test_tsim_po_latest;
      ] );
    ( "sta.tsim.cone",
      [
        Alcotest.test_case "out-of-cone lines keep baseline" `Slow
          test_resim_cone_out_of_cone_preserved;
      ] );
    qsuite "sta.tsim.props"
      [ prop_tsim_within_sta_windows; prop_resim_cone_bit_identical ];
  ]
