(* The corner-batched sweep's contract: every plane of
   Corner_sta.analyze is bit-identical to an independent scalar analysis
   over that corner's derated library, at jobs 1 and 4 and for a corner
   count that leaves a partial chunk in the parallel schedule.  The same
   windows must come out of Engine.retarget_corner — including through
   edits and checkpoint/revert round-trips — and out of a cached session
   flipping models mid-stream.  Monte-Carlo sampling must be
   seed-deterministic and agree with fresh per-sample analyses. *)

module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module CS = Ssd_sta.Corner_sta
module E = Ssd_sta.Engine
module RO = Ssd_sta.Run_opts
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Corners = Ssd_cell.Corners
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())
let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let int_beq (a : Interval.t) (b : Interval.t) =
  beq (Interval.lo a) (Interval.lo b) && beq (Interval.hi a) (Interval.hi b)

let win_beq (a : Types.win) (b : Types.win) =
  int_beq a.Types.w_arr b.Types.w_arr && int_beq a.Types.w_tt b.Types.w_tt

let lt_beq (a : Sta.line_timing) (b : Sta.line_timing) =
  win_beq a.Sta.rise b.Sta.rise && win_beq a.Sta.fall b.Sta.fall

(* a mid-size layered primitive circuit: wide enough levels to exercise
   the (level slot × corner chunk) schedule, small enough to re-analyze
   once per corner inside a property *)
let mid_prim ?(gates = 1_200) seed =
  Ck.Decompose.to_primitive
    (Ck.Generator.generate
       {
         Ck.Generator.default_params with
         Ck.Generator.g_name = Printf.sprintf "corner%d" seed;
         n_inputs = 24;
         n_outputs = 12;
         n_gates = gates;
         locality = 64;
         seed = Int64.of_int (seed + 7001);
         shape = Ck.Generator.Layered { layers = 12 };
       })

(* the scalar oracle for one corner: an independent single-corner
   analysis over the derated library *)
let scalar_corner table c nl =
  Sta.analyze_with (RO.make ()) ~library:(Corners.library table c)
    ~model:DM.proposed nl

let prop_batched_matches_scalar =
  QCheck.Test.make
    ~name:"batched K-corner == K scalar single-corner analyses (jobs 1, 4)"
    ~count:2
    QCheck.(int_range 0 1000)
    (fun seed ->
      let nl = mid_prim seed in
      let lib = Lazy.force lib in
      (* K = 5 leaves a partial corner chunk (4 + 1) in the parallel
         schedule; K = 4 is the single-chunk streaming case *)
      List.for_all
        (fun k ->
          let table = Corners.build ~specs:(Corners.default_specs k) lib in
          let oracles = Array.init k (fun c -> scalar_corner table c nl) in
          List.for_all
            (fun jobs ->
              let t =
                CS.analyze ~opts:(RO.make ~jobs ~corners:k ()) ~table nl
              in
              let ok = ref true in
              for c = 0 to k - 1 do
                if not (CS.plane_matches t ~corner:c oracles.(c)) then
                  ok := false;
                (* the materializing accessors agree with the oracle's *)
                List.iter
                  (fun po ->
                    if not (lt_beq (CS.timing t ~corner:c po)
                              (Sta.timing oracles.(c) po))
                    then ok := false)
                  (Ck.Netlist.outputs nl);
                if not (beq (CS.max_delay t ~corner:c)
                          (Sta.max_delay oracles.(c)))
                then ok := false
              done;
              !ok)
            [ 1; 4 ])
        [ 4; 5 ])

let engine_matches_plane eng batched c =
  let n = Ck.Netlist.size (E.netlist eng) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (lt_beq (E.timing eng i) (CS.timing batched ~corner:c i)) then
      ok := false
  done;
  !ok

let prop_retarget_through_edits =
  QCheck.Test.make
    ~name:"Engine.retarget_corner matches planes through edits and revert"
    ~count:2
    QCheck.(int_range 0 1000)
    (fun seed ->
      let nl = mid_prim ~gates:500 seed in
      let lib = Lazy.force lib in
      let table = Corners.build ~specs:(Corners.default_specs 3) lib in
      let batched = CS.analyze ~table nl in
      let nominal = Sta.analyze_with (RO.make ()) ~library:lib
          ~model:DM.proposed nl in
      E.with_engine ~library:lib ~model:DM.proposed nl (fun eng ->
          let ok = ref true in
          let ck0 = E.checkpoint eng in
          (* retargets replace (not chain): each corner in turn must
             land exactly on its batched plane *)
          for c = 0 to 2 do
            E.retarget_corner eng (Corners.spec table c);
            if not (engine_matches_plane eng batched c) then ok := false
          done;
          (* an edit under a corner, then revert back to that corner *)
          E.retarget_corner eng (Corners.spec table 1);
          let ck1 = E.checkpoint eng in
          let line = List.hd (Ck.Netlist.outputs nl) in
          E.apply eng (E.Set_extra_delay { line; delta = 3e-11 });
          E.apply eng
            (E.Set_pi_spec { pi = 0; spec = RO.default_pi_spec });
          E.revert eng ck1;
          if not (engine_matches_plane eng batched 1) then ok := false;
          (* full unwind: back to the nominal library bit for bit *)
          E.revert eng ck0;
          let n = Ck.Netlist.size nl in
          for i = 0 to n - 1 do
            if not (lt_beq (E.timing eng i) (Sta.timing nominal i)) then
              ok := false
          done;
          !ok))

(* The Eval_cache regression: a cached session flipping models
   mid-stream (corner retargets both ways, plus a different model
   family) must stay bit-identical to an uncached session applying the
   same sequence.  Before the cache keyed on cell identity, entries
   memoized under one corner's cells poisoned the next. *)
let test_cache_across_retargets () =
  let nl = mid_prim ~gates:400 11 in
  let lib = Lazy.force lib in
  let table = Corners.build ~specs:(Corners.default_specs 3) lib in
  let edits eng =
    [
      (fun () -> E.retarget_corner eng (Corners.spec table 0));
      (fun () -> E.retarget_corner eng (Corners.spec table 2));
      (fun () -> E.apply eng (E.Set_model DM.pin_to_pin));
      (fun () -> E.retarget_corner eng (Corners.spec table 0));
      (fun () -> E.apply eng (E.Set_model DM.proposed));
    ]
  in
  E.with_engine ~opts:(RO.make ~cache:true ()) ~library:lib
    ~model:DM.proposed nl (fun cached ->
      E.with_engine ~library:lib ~model:DM.proposed nl (fun plain ->
          let n = Ck.Netlist.size nl in
          List.iteri
            (fun step (ec, ep) ->
              ec ();
              ep ();
              for i = 0 to n - 1 do
                if not (lt_beq (E.timing cached i) (E.timing plain i)) then
                  Alcotest.failf
                    "cached/uncached windows diverge at node %d after step %d"
                    i step
              done)
            (List.combine (edits cached) (edits plain))))

let test_mc_deterministic () =
  let nl = mid_prim ~gates:400 5 in
  let lib = Lazy.force lib in
  let run () =
    CS.monte_carlo ~opts:(RO.make ~cache:true ()) ~samples:8 ~seed:42L
      ~library:lib nl
  in
  let a = run () and b = run () in
  Alcotest.(check int) "samples" 8 (Array.length a.CS.mc_max);
  Array.iteri
    (fun s x ->
      if not (beq x b.CS.mc_max.(s)) then
        Alcotest.failf "mc_max diverges between identical runs at sample %d" s)
    a.CS.mc_max;
  (* each sample agrees with a fresh scalar analysis of its derated
     library: the resident-session retarget is an optimization, not an
     approximation *)
  List.iter
    (fun s ->
      let dlib = Corners.derate_library a.CS.mc_specs.(s) lib in
      let sta =
        Sta.analyze_with (RO.make ()) ~library:dlib ~model:DM.proposed nl
      in
      if not (beq a.CS.mc_max.(s) (Sta.max_delay sta)) then
        Alcotest.failf "mc_max.(%d) differs from a fresh derated analysis" s;
      Array.iteri
        (fun pi po ->
          let lt = Sta.timing sta po in
          let want =
            Float.max
              (Interval.hi lt.Sta.rise.Types.w_arr)
              (Interval.hi lt.Sta.fall.Types.w_arr)
          in
          if not (beq a.CS.mc_delays.(pi).(s) want) then
            Alcotest.failf "mc_delays.(%d).(%d) differs from fresh analysis"
              pi s)
        a.CS.mc_pos)
    [ 0; 7 ];
  (* quantiles: monotone in q, endpoints are the sample extremes *)
  let qs = [ 0.; 0.5; 0.95; 1. ] in
  let mx = CS.mc_max_quantiles a qs in
  let values = List.map snd mx in
  let sorted = List.sort Float.compare values in
  Alcotest.(check (list (float 0.))) "monotone quantiles" sorted values;
  let lo = Array.fold_left Float.min infinity a.CS.mc_max in
  let hi = Array.fold_left Float.max neg_infinity a.CS.mc_max in
  Alcotest.(check bool) "q0 = min" true (beq (List.assoc 0. mx) lo);
  Alcotest.(check bool) "q1 = max" true (beq (List.assoc 1. mx) hi);
  let per_po = CS.mc_po_quantiles a qs in
  Alcotest.(check int) "one quantile list per PO"
    (Array.length a.CS.mc_pos) (Array.length per_po)

let test_corner_count_mismatch () =
  let nl = mid_prim ~gates:200 1 in
  let table = Corners.build ~specs:(Corners.default_specs 3) (Lazy.force lib) in
  (match CS.analyze ~opts:(RO.make ~corners:3 ()) ~table nl with
  | t -> Alcotest.(check int) "corners" 3 (CS.corners t));
  Alcotest.check_raises "corner-count mismatch"
    (Invalid_argument
       "Corner_sta.analyze: opts.corners = 2 but the table has 3 corners")
    (fun () -> ignore (CS.analyze ~opts:(RO.make ~corners:2 ()) ~table nl))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    qsuite "corners.prop"
      [ prop_batched_matches_scalar; prop_retarget_through_edits ];
    ( "corners.unit",
      [
        Alcotest.test_case "cache across model retargets" `Quick
          test_cache_across_retargets;
        Alcotest.test_case "monte-carlo determinism + oracle" `Quick
          test_mc_deterministic;
        Alcotest.test_case "corner-count validation" `Quick
          test_corner_count_mismatch;
      ] );
  ]
