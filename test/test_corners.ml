(* The corner-batched sweep's contract: every plane of
   Corner_sta.analyze is bit-identical to an independent scalar analysis
   over that corner's derated library, at jobs 1 and 4 and for a corner
   count that leaves a partial chunk in the parallel schedule.  The same
   windows must come out of Engine.retarget_corner — including through
   edits and checkpoint/revert round-trips — and out of a cached session
   flipping models mid-stream.  Monte-Carlo sampling must be
   seed-deterministic and agree with fresh per-sample analyses. *)

module Ck = Ssd_circuit
module Sta = Ssd_sta.Sta
module CS = Ssd_sta.Corner_sta
module E = Ssd_sta.Engine
module RO = Ssd_sta.Run_opts
module DM = Ssd_core.Delay_model
module Types = Ssd_core.Types
module Corners = Ssd_cell.Corners
module Charlib = Ssd_cell.Charlib
module Interval = Ssd_util.Interval

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())
let beq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let int_beq (a : Interval.t) (b : Interval.t) =
  beq (Interval.lo a) (Interval.lo b) && beq (Interval.hi a) (Interval.hi b)

let win_beq (a : Types.win) (b : Types.win) =
  int_beq a.Types.w_arr b.Types.w_arr && int_beq a.Types.w_tt b.Types.w_tt

let lt_beq (a : Sta.line_timing) (b : Sta.line_timing) =
  win_beq a.Sta.rise b.Sta.rise && win_beq a.Sta.fall b.Sta.fall

(* a mid-size layered primitive circuit: wide enough levels to exercise
   the (level slot × corner chunk) schedule, small enough to re-analyze
   once per corner inside a property *)
let mid_prim ?(gates = 1_200) seed =
  Ck.Decompose.to_primitive
    (Ck.Generator.generate
       {
         Ck.Generator.default_params with
         Ck.Generator.g_name = Printf.sprintf "corner%d" seed;
         n_inputs = 24;
         n_outputs = 12;
         n_gates = gates;
         locality = 64;
         seed = Int64.of_int (seed + 7001);
         shape = Ck.Generator.Layered { layers = 12 };
       })

(* the scalar oracle for one corner: an independent single-corner
   analysis over the derated library *)
let scalar_corner table c nl =
  Sta.analyze_with (RO.make ()) ~library:(Corners.library table c)
    ~model:DM.proposed nl

let prop_batched_matches_scalar =
  QCheck.Test.make
    ~name:"batched K-corner == K scalar single-corner analyses (jobs 1, 4)"
    ~count:2
    QCheck.(int_range 0 1000)
    (fun seed ->
      let nl = mid_prim seed in
      let lib = Lazy.force lib in
      (* K = 5 leaves a partial corner chunk (4 + 1) in the parallel
         schedule; K = 4 is the single-chunk streaming case *)
      List.for_all
        (fun k ->
          let table = Corners.build ~specs:(Corners.default_specs k) lib in
          let oracles = Array.init k (fun c -> scalar_corner table c nl) in
          List.for_all
            (fun jobs ->
              let t =
                CS.analyze ~opts:(RO.make ~jobs ~corners:k ()) ~table nl
              in
              let ok = ref true in
              for c = 0 to k - 1 do
                if not (CS.plane_matches t ~corner:c oracles.(c)) then
                  ok := false;
                (* the materializing accessors agree with the oracle's *)
                List.iter
                  (fun po ->
                    if not (lt_beq (CS.timing t ~corner:c po)
                              (Sta.timing oracles.(c) po))
                    then ok := false)
                  (Ck.Netlist.outputs nl);
                if not (beq (CS.max_delay t ~corner:c)
                          (Sta.max_delay oracles.(c)))
                then ok := false
              done;
              !ok)
            [ 1; 4 ])
        [ 4; 5 ])

let engine_matches_plane eng batched c =
  let n = Ck.Netlist.size (E.netlist eng) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (lt_beq (E.timing eng i) (CS.timing batched ~corner:c i)) then
      ok := false
  done;
  !ok

let prop_retarget_through_edits =
  QCheck.Test.make
    ~name:"Engine.retarget_corner matches planes through edits and revert"
    ~count:2
    QCheck.(int_range 0 1000)
    (fun seed ->
      let nl = mid_prim ~gates:500 seed in
      let lib = Lazy.force lib in
      let table = Corners.build ~specs:(Corners.default_specs 3) lib in
      let batched = CS.analyze ~table nl in
      let nominal = Sta.analyze_with (RO.make ()) ~library:lib
          ~model:DM.proposed nl in
      E.with_engine ~library:lib ~model:DM.proposed nl (fun eng ->
          let ok = ref true in
          let ck0 = E.checkpoint eng in
          (* retargets replace (not chain): each corner in turn must
             land exactly on its batched plane *)
          for c = 0 to 2 do
            E.retarget_corner eng (Corners.spec table c);
            if not (engine_matches_plane eng batched c) then ok := false
          done;
          (* an edit under a corner, then revert back to that corner *)
          E.retarget_corner eng (Corners.spec table 1);
          let ck1 = E.checkpoint eng in
          let line = List.hd (Ck.Netlist.outputs nl) in
          E.apply eng (E.Set_extra_delay { line; delta = 3e-11 });
          E.apply eng
            (E.Set_pi_spec { pi = 0; spec = RO.default_pi_spec });
          E.revert eng ck1;
          if not (engine_matches_plane eng batched 1) then ok := false;
          (* full unwind: back to the nominal library bit for bit *)
          E.revert eng ck0;
          let n = Ck.Netlist.size nl in
          for i = 0 to n - 1 do
            if not (lt_beq (E.timing eng i) (Sta.timing nominal i)) then
              ok := false
          done;
          !ok))

(* The Eval_cache regression: a cached session flipping models
   mid-stream (corner retargets both ways, plus a different model
   family) must stay bit-identical to an uncached session applying the
   same sequence.  Before the cache keyed on cell identity, entries
   memoized under one corner's cells poisoned the next. *)
let test_cache_across_retargets () =
  let nl = mid_prim ~gates:400 11 in
  let lib = Lazy.force lib in
  let table = Corners.build ~specs:(Corners.default_specs 3) lib in
  let edits eng =
    [
      (fun () -> E.retarget_corner eng (Corners.spec table 0));
      (fun () -> E.retarget_corner eng (Corners.spec table 2));
      (fun () -> E.apply eng (E.Set_model DM.pin_to_pin));
      (fun () -> E.retarget_corner eng (Corners.spec table 0));
      (fun () -> E.apply eng (E.Set_model DM.proposed));
    ]
  in
  E.with_engine ~opts:(RO.make ~cache:true ()) ~library:lib
    ~model:DM.proposed nl (fun cached ->
      E.with_engine ~library:lib ~model:DM.proposed nl (fun plain ->
          let n = Ck.Netlist.size nl in
          List.iteri
            (fun step (ec, ep) ->
              ec ();
              ep ();
              for i = 0 to n - 1 do
                if not (lt_beq (E.timing cached i) (E.timing plain i)) then
                  Alcotest.failf
                    "cached/uncached windows diverge at node %d after step %d"
                    i step
              done)
            (List.combine (edits cached) (edits plain))))

let test_mc_deterministic () =
  let nl = mid_prim ~gates:400 5 in
  let lib = Lazy.force lib in
  let run () =
    CS.monte_carlo ~opts:(RO.make ~cache:true ()) ~samples:8 ~seed:42L
      ~library:lib nl
  in
  let a = run () and b = run () in
  Alcotest.(check int) "samples" 8 (Array.length a.CS.mc_max);
  Array.iteri
    (fun s x ->
      if not (beq x b.CS.mc_max.(s)) then
        Alcotest.failf "mc_max diverges between identical runs at sample %d" s)
    a.CS.mc_max;
  (* each sample agrees with a fresh scalar analysis of its derated
     library: the resident-session retarget is an optimization, not an
     approximation *)
  List.iter
    (fun s ->
      let dlib = Corners.derate_library a.CS.mc_specs.(s) lib in
      let sta =
        Sta.analyze_with (RO.make ()) ~library:dlib ~model:DM.proposed nl
      in
      if not (beq a.CS.mc_max.(s) (Sta.max_delay sta)) then
        Alcotest.failf "mc_max.(%d) differs from a fresh derated analysis" s;
      Array.iteri
        (fun pi po ->
          let lt = Sta.timing sta po in
          let want =
            Float.max
              (Interval.hi lt.Sta.rise.Types.w_arr)
              (Interval.hi lt.Sta.fall.Types.w_arr)
          in
          if not (beq a.CS.mc_delays.(pi).(s) want) then
            Alcotest.failf "mc_delays.(%d).(%d) differs from fresh analysis"
              pi s)
        a.CS.mc_pos)
    [ 0; 7 ];
  (* quantiles: monotone in q, endpoints are the sample extremes *)
  let qs = [ 0.; 0.5; 0.95; 1. ] in
  let mx = CS.mc_max_quantiles a qs in
  let values = List.map snd mx in
  let sorted = List.sort Float.compare values in
  Alcotest.(check (list (float 0.))) "monotone quantiles" sorted values;
  let lo = Array.fold_left Float.min infinity a.CS.mc_max in
  let hi = Array.fold_left Float.max neg_infinity a.CS.mc_max in
  Alcotest.(check bool) "q0 = min" true (beq (List.assoc 0. mx) lo);
  Alcotest.(check bool) "q1 = max" true (beq (List.assoc 1. mx) hi);
  let per_po = CS.mc_po_quantiles a qs in
  Alcotest.(check int) "one quantile list per PO"
    (Array.length a.CS.mc_pos) (Array.length per_po)

(* ----- batched Monte-Carlo ------------------------------------------- *)

let spec_eq (a : Corners.spec) (b : Corners.spec) =
  String.equal a.Corners.c_name b.Corners.c_name
  && beq a.Corners.c_delay b.Corners.c_delay
  && beq a.Corners.c_tt b.Corners.c_tt

let mc_eq ~what a b =
  if Array.length a.CS.mc_specs <> Array.length b.CS.mc_specs then
    Alcotest.failf "%s: sample counts differ" what;
  Array.iteri
    (fun s sa ->
      if not (spec_eq sa b.CS.mc_specs.(s)) then
        Alcotest.failf "%s: spec %d differs" what s)
    a.CS.mc_specs;
  Array.iteri
    (fun pi d ->
      Array.iteri
        (fun s v ->
          if not (beq v b.CS.mc_delays.(pi).(s)) then
            Alcotest.failf "%s: PO delay (%d, %d) differs" what pi s)
        d)
    a.CS.mc_delays;
  Array.iteri
    (fun s v ->
      if not (beq v b.CS.mc_max.(s)) then
        Alcotest.failf "%s: circuit max at sample %d differs" what s)
    a.CS.mc_max

(* the tentpole contract: the chunked batched-kernel Monte-Carlo is
   bit-identical to the scalar resident-engine oracle for every (jobs,
   batch) combination — including batch 1 (a chunk per sample), a
   samples-not-divisible-by-K tail chunk (10 = 3+3+3+1) and a batch
   larger than the sample count (clamped) *)
let prop_mc_batched_matches_scalar =
  QCheck.Test.make
    ~name:"batched monte_carlo == scalar oracle (jobs {1,4} x K {1,3,16})"
    ~count:2
    QCheck.(int_range 0 1000)
    (fun seed ->
      let nl = mid_prim ~gates:400 seed in
      let lib = Lazy.force lib in
      let samples = 10 and mc_seed = Int64.of_int (seed + 99) in
      let oracle =
        CS.monte_carlo_scalar ~opts:(RO.make ~cache:true ()) ~samples
          ~seed:mc_seed ~library:lib nl
      in
      List.iter
        (fun jobs ->
          List.iter
            (fun k ->
              let res =
                CS.monte_carlo
                  ~opts:(RO.make ~jobs ~mc_batch:k ())
                  ~samples ~seed:mc_seed ~library:lib nl
              in
              mc_eq ~what:(Printf.sprintf "jobs %d batch %d" jobs k) res
                oracle)
            [ 1; 3; 16 ])
        [ 1; 4 ];
      true)

(* chunking invariance of the sampled spec stream: all specs are drawn
   from one splitmix stream before any chunking, so the batch size can
   never perturb them *)
let prop_mc_chunking_invariant_specs =
  QCheck.Test.make
    ~name:"sampled spec stream is invariant under batch K {1,4,7,64}"
    ~count:4
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let nl = mid_prim ~gates:200 1 in
      let lib = Lazy.force lib in
      let samples = 13 and mc_seed = Int64.of_int seed in
      let direct = Array.of_list (Corners.sample_specs ~seed:mc_seed samples) in
      List.for_all
        (fun k ->
          let res =
            CS.monte_carlo
              ~opts:(RO.make ~mc_batch:k ())
              ~samples ~seed:mc_seed ~library:lib nl
          in
          Array.length res.CS.mc_specs = samples
          && Array.for_all2 spec_eq res.CS.mc_specs direct)
        [ 1; 4; 7; 64 ])

let test_mc_batch_validation () =
  let nl = mid_prim ~gates:200 3 in
  let lib = Lazy.force lib in
  Alcotest.check_raises "Run_opts.make rejects mc_batch < 1"
    (Invalid_argument "Run_opts.make: mc_batch < 1") (fun () ->
      ignore (RO.make ~mc_batch:0 ()));
  Alcotest.check_raises "monte_carlo rejects a hand-built mc_batch < 1"
    (Invalid_argument "Corner_sta.monte_carlo: opts.mc_batch < 1") (fun () ->
      ignore
        (CS.monte_carlo
           ~opts:{ RO.default with RO.mc_batch = 0 }
           ~samples:2 ~seed:1L ~library:lib nl));
  (* a batch wider than the sample count is clamped, not an error *)
  let a =
    CS.monte_carlo ~opts:(RO.make ~mc_batch:64 ()) ~samples:5 ~seed:5L
      ~library:lib nl
  in
  let b =
    CS.monte_carlo ~opts:(RO.make ~mc_batch:5 ()) ~samples:5 ~seed:5L
      ~library:lib nl
  in
  Alcotest.(check int) "clamped run samples" 5 (Array.length a.CS.mc_max);
  mc_eq ~what:"batch 64 clamped to 5" a b

(* refit retargets a table in place: coefficients, specs and the lazily
   rebuilt derated libraries must all match a fresh build *)
let test_refit_matches_fresh_build () =
  let lib = Lazy.force lib in
  let coeffs_eq what (a : Corners.table) (b : Corners.table) =
    let ca = Corners.coeffs a and cb = Corners.coeffs b in
    let n = Bigarray.Array1.dim ca in
    if n <> Bigarray.Array1.dim cb then Alcotest.failf "%s: sizes differ" what;
    for i = 0 to n - 1 do
      if not (beq (Bigarray.Array1.get ca i) (Bigarray.Array1.get cb i)) then
        Alcotest.failf "%s: coefficient %d differs" what i
    done
  in
  let sa = Array.of_list (Corners.default_specs 3) in
  let sb = Array.of_list (Corners.sample_specs ~seed:77L 3) in
  let t = Corners.build ~specs:(Array.to_list sa) lib in
  let fresh_b = Corners.build ~specs:(Array.to_list sb) lib in
  Corners.refit t sb;
  coeffs_eq "full refit" t fresh_b;
  Alcotest.(check string) "spec renamed" (sb.(1)).Corners.c_name
    (Corners.spec t 1).Corners.c_name;
  (* the derated-library cache was invalidated: corner 1's library now
     derives from the refitted spec *)
  let dlib = Corners.library t 1 in
  Alcotest.(check string) "library tag tracks the refitted spec"
    (lib.Charlib.tag ^ "@" ^ (sb.(1)).Corners.c_name)
    dlib.Charlib.tag;
  (* partial refit: only the leading corners move, the tail keeps its
     previous coefficients (the Monte-Carlo tail-chunk case) *)
  let sc = Array.of_list (Corners.sample_specs ~seed:88L 2) in
  Corners.refit t sc;
  let fresh_c =
    Corners.build ~specs:[ sc.(0); sc.(1); sb.(2) ] lib
  in
  coeffs_eq "partial refit" t fresh_c;
  Alcotest.check_raises "refit rejects more specs than corners"
    (Invalid_argument "Corners.refit: 4 specs for a 3-corner table")
    (fun () -> Corners.refit t (Array.of_list (Corners.default_specs 4)));
  Alcotest.check_raises "refit rejects zero specs"
    (Invalid_argument "Corners.refit: 0 specs for a 3-corner table")
    (fun () -> Corners.refit t [||])

let test_corner_count_mismatch () =
  let nl = mid_prim ~gates:200 1 in
  let table = Corners.build ~specs:(Corners.default_specs 3) (Lazy.force lib) in
  (match CS.analyze ~opts:(RO.make ~corners:3 ()) ~table nl with
  | t -> Alcotest.(check int) "corners" 3 (CS.corners t));
  Alcotest.check_raises "corner-count mismatch"
    (Invalid_argument
       "Corner_sta.analyze: opts.corners = 2 but the table has 3 corners")
    (fun () -> ignore (CS.analyze ~opts:(RO.make ~corners:2 ()) ~table nl))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    qsuite "corners.prop"
      [
        prop_batched_matches_scalar;
        prop_retarget_through_edits;
        prop_mc_batched_matches_scalar;
        prop_mc_chunking_invariant_specs;
      ];
    ( "corners.unit",
      [
        Alcotest.test_case "cache across model retargets" `Quick
          test_cache_across_retargets;
        Alcotest.test_case "monte-carlo determinism + oracle" `Quick
          test_mc_deterministic;
        Alcotest.test_case "batch validation and clamping" `Quick
          test_mc_batch_validation;
        Alcotest.test_case "refit matches a fresh build" `Quick
          test_refit_matches_fresh_build;
        Alcotest.test_case "corner-count validation" `Quick
          test_corner_count_mismatch;
      ] );
  ]
