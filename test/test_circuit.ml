module Ck = Ssd_circuit
module Gate = Ck.Gate
module Netlist = Ck.Netlist
module Rng = Ssd_util.Rng

(* ---------- Gate ---------- *)

let test_gate_truth_tables () =
  let t = true and f = false in
  Alcotest.(check bool) "nand 11" f (Gate.eval Gate.Nand [ t; t ]);
  Alcotest.(check bool) "nand 01" t (Gate.eval Gate.Nand [ f; t ]);
  Alcotest.(check bool) "nor 00" t (Gate.eval Gate.Nor [ f; f ]);
  Alcotest.(check bool) "nor 01" f (Gate.eval Gate.Nor [ f; t ]);
  Alcotest.(check bool) "and" t (Gate.eval Gate.And [ t; t; t ]);
  Alcotest.(check bool) "or" t (Gate.eval Gate.Or [ f; f; t ]);
  Alcotest.(check bool) "xor odd" t (Gate.eval Gate.Xor [ t; t; t ]);
  Alcotest.(check bool) "xor even" f (Gate.eval Gate.Xor [ t; t ]);
  Alcotest.(check bool) "xnor" t (Gate.eval Gate.Xnor [ t; t ]);
  Alcotest.(check bool) "not" f (Gate.eval Gate.Not [ t ]);
  Alcotest.(check bool) "buf" t (Gate.eval Gate.Buf [ t ])

let test_gate_arity_checks () =
  Alcotest.(check bool) "not arity" true
    (match Gate.eval Gate.Not [ true; false ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty and" true
    (match Gate.eval Gate.And [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_gate_names () =
  List.iter
    (fun k ->
      match Gate.of_string (Gate.to_string k) with
      | Some k' -> Alcotest.(check bool) "roundtrip" true (k = k')
      | None -> Alcotest.fail "name roundtrip failed")
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Not;
      Gate.Buf ];
  Alcotest.(check bool) "BUFF accepted" true (Gate.of_string "buff" = Some Gate.Buf);
  Alcotest.(check bool) "unknown" true (Gate.of_string "MUX" = None)

let test_gate_metadata () =
  Alcotest.(check bool) "nand cv" true
    (Gate.controlling_value Gate.Nand = Some false);
  Alcotest.(check bool) "nor cv" true
    (Gate.controlling_value Gate.Nor = Some true);
  Alcotest.(check bool) "xor no cv" true (Gate.controlling_value Gate.Xor = None);
  Alcotest.(check bool) "primitives" true
    (Gate.is_primitive Gate.Nand && Gate.is_primitive Gate.Not
   && not (Gate.is_primitive Gate.And))

let test_gate_eval_fanin () =
  (* the allocation-free entry point: same truth tables through an index
     accessor, and consistent with the list-based eval on random inputs *)
  let of_list l kind = Gate.eval_fanin kind (List.nth l) (List.length l) in
  Alcotest.(check bool) "nand 11" false (of_list [ true; true ] Gate.Nand);
  Alcotest.(check bool) "xor odd" true
    (of_list [ true; true; true ] Gate.Xor);
  Alcotest.(check bool) "not" false (of_list [ true ] Gate.Not);
  Alcotest.(check bool) "not arity" true
    (match Gate.eval_fanin Gate.Not (fun _ -> true) 2 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty or" true
    (match Gate.eval_fanin Gate.Or (fun _ -> true) 0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let rng = Rng.create 77L in
  List.iter
    (fun kind ->
      for _ = 1 to 50 do
        let n =
          match kind with Gate.Not | Gate.Buf -> 1 | _ -> 1 + Rng.int rng 4
        in
        let inputs = List.init n (fun _ -> Rng.bool rng) in
        let a = Array.of_list inputs in
        Alcotest.(check bool)
          (Gate.to_string kind ^ " agrees with eval")
          (Gate.eval kind inputs)
          (Gate.eval_fanin kind (Array.get a) n)
      done)
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Not;
      Gate.Buf ]

(* ---------- Netlist ---------- *)

let tiny () =
  Netlist.build ~name:"tiny"
    ~signals:
      [
        ("a", Netlist.Pi);
        ("b", Netlist.Pi);
        ("n1", Netlist.Gate { kind = Gate.Nand; fanin = [| 0; 1 |] });
        ("z", Netlist.Gate { kind = Gate.Not; fanin = [| 2 |] });
      ]
    ~outputs:[ "z" ]

let test_netlist_build_and_accessors () =
  let nl = tiny () in
  Alcotest.(check int) "size" 4 (Netlist.size nl);
  Alcotest.(check int) "gates" 2 (Netlist.gate_count nl);
  Alcotest.(check int) "pis" 2 (Netlist.pi_count nl);
  Alcotest.(check int) "depth" 2 (Netlist.depth nl);
  Alcotest.(check int) "level z" 2 (Netlist.level nl 3);
  Alcotest.(check bool) "find" true (Netlist.find nl "n1" = Some 2);
  Alcotest.(check bool) "fanout of n1" true (Netlist.fanout nl 2 = [| 3 |]);
  Alcotest.(check int) "load has floor 1" 1 (Netlist.load_of nl 3);
  Alcotest.(check bool) "tf of z" true
    (List.sort compare (Netlist.transitive_fanin nl 3) = [ 0; 1; 2 ])

let test_netlist_levels () =
  let check_partition nl =
    let lv = Netlist.levels nl in
    Alcotest.(check int) "group count" (Netlist.depth nl + 1) (Array.length lv);
    (* a partition of all node ids, each in its own level's group *)
    let seen = Array.make (Netlist.size nl) false in
    Array.iteri
      (fun l group ->
        Array.iter
          (fun i ->
            Alcotest.(check int) "group matches level" l (Netlist.level nl i);
            Alcotest.(check bool) "no duplicates" false seen.(i);
            seen.(i) <- true)
          group)
      lv;
    Alcotest.(check bool) "covers all nodes" true (Array.for_all Fun.id seen);
    (* no fan-in edge inside a group: levels are an independence partition *)
    Array.iter
      (fun group ->
        Array.iter
          (fun i ->
            match Netlist.node nl i with
            | Netlist.Pi -> ()
            | Netlist.Gate { fanin; _ } ->
              Array.iter
                (fun j ->
                  Alcotest.(check bool) "fan-in at strictly lower level" true
                    (Netlist.level nl j < Netlist.level nl i))
                fanin)
          group)
      lv
  in
  check_partition (tiny ());
  check_partition (Ck.Benchmarks.c17 ());
  check_partition (Option.get (Ck.Benchmarks.by_name "c880s"))

let test_netlist_validation () =
  let dup () =
    Netlist.build ~name:"d"
      ~signals:[ ("a", Netlist.Pi); ("a", Netlist.Pi) ]
      ~outputs:[ "a" ]
  in
  Alcotest.(check bool) "duplicate" true
    (match dup () with exception Netlist.Invalid _ -> true | _ -> false);
  let cyc () =
    Netlist.build ~name:"c"
      ~signals:
        [
          ("a", Netlist.Pi);
          ("x", Netlist.Gate { kind = Gate.Nand; fanin = [| 0; 2 |] });
          ("y", Netlist.Gate { kind = Gate.Not; fanin = [| 1 |] });
        ]
      ~outputs:[ "y" ]
  in
  Alcotest.(check bool) "cycle" true
    (match cyc () with exception Netlist.Invalid _ -> true | _ -> false);
  let bad_out () =
    Netlist.build ~name:"o" ~signals:[ ("a", Netlist.Pi) ] ~outputs:[ "zz" ]
  in
  Alcotest.(check bool) "unknown output" true
    (match bad_out () with exception Netlist.Invalid _ -> true | _ -> false)

let test_netlist_fanout_cone () =
  let check nl =
    let n = Netlist.size nl in
    for i = 0 to n - 1 do
      let cone = Netlist.fanout_cone nl i in
      (* membership = the root plus its transitive fanout, exactly *)
      let expect = Array.make n false in
      expect.(i) <- true;
      List.iter
        (fun j -> expect.(j) <- true)
        (Netlist.transitive_fanout nl i);
      let members_match = ref true in
      Array.iteri
        (fun j e -> if Netlist.in_cone cone j <> e then members_match := false)
        expect;
      Alcotest.(check bool)
        (Printf.sprintf "members of cone %d" i)
        true !members_match;
      Alcotest.(check int)
        (Printf.sprintf "node count of cone %d" i)
        (Array.fold_left (fun a b -> if b then a + 1 else a) 0 expect)
        (Array.length cone.Netlist.cone_nodes);
      (* nodes listed in topological order: every gate's in-cone fan-ins
         appear before it *)
      let pos = Array.make n (-1) in
      Array.iteri (fun p j -> pos.(j) <- p) cone.Netlist.cone_nodes;
      Array.iter
        (fun j ->
          match Netlist.node nl j with
          | Netlist.Pi -> ()
          | Netlist.Gate { fanin; _ } ->
            Array.iter
              (fun k ->
                if Netlist.in_cone cone k then
                  Alcotest.(check bool)
                    (Printf.sprintf "fan-in %d before %d" k j)
                    true (pos.(k) < pos.(j)))
              fanin)
        cone.Netlist.cone_nodes;
      (* cached: the second lookup returns the same physical record *)
      Alcotest.(check bool)
        (Printf.sprintf "cone %d cached" i)
        true
        (Netlist.fanout_cone nl i == cone)
    done
  in
  check (tiny ());
  check (Ck.Benchmarks.c17 ());
  Alcotest.(check bool) "out of range" true
    (match Netlist.fanout_cone (tiny ()) 99 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Bench I/O ---------- *)

let test_bench_parse_c17 () =
  let nl = Ck.Benchmarks.c17 () in
  Alcotest.(check int) "pis" 5 (Netlist.pi_count nl);
  Alcotest.(check int) "gates" 6 (Netlist.gate_count nl);
  Alcotest.(check int) "outputs" 2 (List.length (Netlist.outputs nl));
  Alcotest.(check int) "depth" 3 (Netlist.depth nl)

let test_bench_roundtrip () =
  let nl = Ck.Benchmarks.c17 () in
  let text = Ck.Bench_io.to_string nl in
  let nl2 = Ck.Bench_io.parse_string ~name:"c17rt" text in
  Alcotest.(check bool) "equivalent after roundtrip" true
    (Ck.Logic.equivalent (Rng.create 5L) nl nl2)

let test_bench_parse_errors () =
  let bad s =
    match Ck.Bench_io.parse_string ~name:"bad" s with
    | exception Ck.Bench_io.Parse_error _ -> true
    | exception Netlist.Invalid _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown gate" true (bad "INPUT(a)\nz = FROB(a)\n");
  Alcotest.(check bool) "missing paren" true (bad "INPUT a\n");
  Alcotest.(check bool) "undefined signal" true (bad "z = NAND(a, b)\n");
  Alcotest.(check bool) "comment-only ok" true
    (not (bad "# nothing\nINPUT(a)\nOUTPUT(a)\n"))

let parse_error_line s =
  match Ck.Bench_io.parse_string ~name:"bad" s with
  | exception Ck.Bench_io.Parse_error { line; _ } -> Some line
  | _ -> None

let test_bench_undefined_signal_line () =
  (* the gate's own line must be reported, not a placeholder 0 *)
  Alcotest.(check (option int)) "line of offending gate" (Some 4)
    (parse_error_line "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, ghost)\n");
  Alcotest.(check (option int)) "later gate, later line" (Some 5)
    (parse_error_line
       "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nw = NOT(a)\nz = NAND(w, ghost)\n")

let test_bench_duplicate_definition () =
  (* redefining a signal is a parse error at the second definition *)
  Alcotest.(check (option int)) "duplicate gate def" (Some 5)
    (parse_error_line
       "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\nz = NOT(a)\n");
  Alcotest.(check (option int)) "gate shadowing a PI" (Some 4)
    (parse_error_line "INPUT(a)\nINPUT(b)\nOUTPUT(a)\na = NOT(b)\n");
  Alcotest.(check (option int)) "duplicate INPUT" (Some 2)
    (parse_error_line "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n")

let test_bench_comments_and_case () =
  let nl =
    Ck.Bench_io.parse_string ~name:"cc"
      "# header\nINPUT(a)  # trailing\ninput(b)\nOUTPUT(z)\nz = nand(a, b)\n"
  in
  Alcotest.(check int) "parsed gates" 1 (Netlist.gate_count nl)

(* ---------- Logic ---------- *)

let test_logic_c17_vectors () =
  let nl = Ck.Benchmarks.c17 () in
  (* c17 truth samples (inputs 1,2,3,6,7) computed by hand *)
  let check_vec inputs expected =
    Alcotest.(check (list bool)) "outputs" expected
      (Ck.Logic.outputs_of nl (Array.of_list inputs))
  in
  check_vec [ false; false; false; false; false ] [ false; false ];
  (* 1=1 3=1: 10=NAND(1,1)=0 -> 22=NAND(0,16)=1 *)
  check_vec [ true; false; true; false; false ] [ true; false ]

let test_logic_equivalence_detects_difference () =
  let a =
    Ck.Bench_io.parse_string ~name:"a" "INPUT(x)\nOUTPUT(z)\nz = NOT(x)\n"
  in
  let b =
    Ck.Bench_io.parse_string ~name:"b" "INPUT(x)\nOUTPUT(z)\nz = BUFF(x)\n"
  in
  Alcotest.(check bool) "different functions" false
    (Ck.Logic.equivalent (Rng.create 1L) a b)

let test_logic_equivalence_mismatched_pis () =
  (* a PI of one circuit missing from the other: inequivalent, not
     Not_found *)
  let a =
    Ck.Bench_io.parse_string ~name:"a"
      "INPUT(x)\nINPUT(y)\nOUTPUT(z)\nz = NAND(x, y)\n"
  in
  let b =
    Ck.Bench_io.parse_string ~name:"b"
      "INPUT(x)\nINPUT(w)\nOUTPUT(z)\nz = NAND(x, w)\n"
  in
  Alcotest.(check bool) "mismatched PI names" false
    (Ck.Logic.equivalent (Rng.create 1L) a b);
  (* same names in a different declaration order still compare by name *)
  let c =
    Ck.Bench_io.parse_string ~name:"c"
      "INPUT(y)\nINPUT(x)\nOUTPUT(z)\nz = NAND(x, y)\n"
  in
  Alcotest.(check bool) "reordered PI names equivalent" true
    (Ck.Logic.equivalent (Rng.create 1L) a c)

(* ---------- Decompose ---------- *)

let test_decompose_primitive_only () =
  let nl =
    Ck.Bench_io.parse_string ~name:"mix"
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z)\n\
       w = AND(a, b, c)\nx = XOR(w, d)\ny = OR(x, e)\nz = XNOR(y, a)\n"
  in
  let prim = Ck.Decompose.to_primitive nl in
  Alcotest.(check bool) "is primitive" true (Ck.Decompose.is_primitive prim);
  Alcotest.(check bool) "still equivalent" true
    (Ck.Logic.equivalent (Rng.create 2L) nl prim)

let test_decompose_wide_gates () =
  let wide =
    Ck.Bench_io.parse_string ~name:"wide"
      ("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n\
        INPUT(g)\nINPUT(h)\nINPUT(i)\nOUTPUT(z)\n"
      ^ "z = NAND(a, b, c, d, e, f, g, h, i)\n")
  in
  let prim = Ck.Decompose.to_primitive ~max_fanin:4 wide in
  Alcotest.(check bool) "fanin capped" true
    (Ck.Decompose.is_primitive ~max_fanin:4 prim);
  Alcotest.(check bool) "wide nand equivalent" true
    (Ck.Logic.equivalent (Rng.create 3L) wide prim)

let prop_decompose_preserves_function =
  QCheck.Test.make ~name:"decompose preserves random circuits" ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let nl =
        Ck.Generator.generate
          {
            Ck.Generator.default_params with
            Ck.Generator.g_name = "q";
            n_inputs = 8;
            n_outputs = 4;
            n_gates = 40;
            seed = Int64.of_int seed;
          }
      in
      let prim = Ck.Decompose.to_primitive nl in
      Ck.Decompose.is_primitive prim
      && Ck.Logic.equivalent ~vectors:64 (Rng.create 11L) nl prim)

(* ---------- Generator / Benchmarks ---------- *)

let test_generator_counts () =
  let p =
    { Ck.Generator.default_params with Ck.Generator.n_inputs = 12;
      n_outputs = 5; n_gates = 77; seed = 4L }
  in
  let nl = Ck.Generator.generate p in
  Alcotest.(check int) "pis" 12 (Netlist.pi_count nl);
  Alcotest.(check int) "gates" 77 (Netlist.gate_count nl);
  Alcotest.(check int) "outputs" 5 (List.length (Netlist.outputs nl))

let test_generator_deterministic () =
  let gen () = Ck.Generator.generate Ck.Generator.default_params in
  Alcotest.(check string) "same text" (Ck.Bench_io.to_string (gen ()))
    (Ck.Bench_io.to_string (gen ()))

let test_generator_no_constant_lines () =
  (* the signature guard: every line must be able to take both values *)
  let nl =
    Ck.Generator.generate
      { Ck.Generator.default_params with Ck.Generator.n_gates = 200; seed = 9L }
  in
  let rng = Rng.create 123L in
  let n = Netlist.size nl in
  let seen0 = Array.make n false and seen1 = Array.make n false in
  for _ = 1 to 600 do
    let v = Ck.Logic.random_vector rng nl in
    let res = Ck.Logic.simulate nl v in
    Array.iteri
      (fun i b -> if b then seen1.(i) <- true else seen0.(i) <- true)
      res
  done;
  let stuck = ref 0 in
  for i = 0 to n - 1 do
    if not (seen0.(i) && seen1.(i)) then incr stuck
  done;
  (* a few rare-sensitization lines may not toggle in 600 vectors, but the
     pre-fix generator had ~50% stuck lines *)
  Alcotest.(check bool)
    (Printf.sprintf "almost no stuck lines (%d)" !stuck)
    true
    (!stuck * 20 < n)

let test_benchmark_suite_shapes () =
  List.iter2
    (fun nl (pis, pos, gates) ->
      Alcotest.(check int) "pis" pis (Netlist.pi_count nl);
      Alcotest.(check int) "pos" pos (List.length (Netlist.outputs nl));
      Alcotest.(check int) "gates" gates (Netlist.gate_count nl))
    (Ck.Benchmarks.table2_suite ())
    [
      (5, 2, 6); (60, 26, 383); (41, 32, 546); (33, 25, 880); (50, 22, 1669);
      (207, 108, 3512);
    ]

let test_benchmark_lookup () =
  Alcotest.(check bool) "c17" true (Ck.Benchmarks.by_name "c17" <> None);
  Alcotest.(check bool) "c880s" true (Ck.Benchmarks.by_name "c880s" <> None);
  Alcotest.(check bool) "missing" true (Ck.Benchmarks.by_name "c6288" = None);
  Alcotest.(check int) "names" 6 (List.length Ck.Benchmarks.names)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let suites =
  [
    ( "circuit.gate",
      [
        Alcotest.test_case "truth tables" `Quick test_gate_truth_tables;
        Alcotest.test_case "arity" `Quick test_gate_arity_checks;
        Alcotest.test_case "names" `Quick test_gate_names;
        Alcotest.test_case "metadata" `Quick test_gate_metadata;
        Alcotest.test_case "eval_fanin" `Quick test_gate_eval_fanin;
      ] );
    ( "circuit.netlist",
      [
        Alcotest.test_case "build & accessors" `Quick
          test_netlist_build_and_accessors;
        Alcotest.test_case "validation" `Quick test_netlist_validation;
        Alcotest.test_case "levels" `Quick test_netlist_levels;
        Alcotest.test_case "fanout cone" `Quick test_netlist_fanout_cone;
      ] );
    ( "circuit.bench_io",
      [
        Alcotest.test_case "parse c17" `Quick test_bench_parse_c17;
        Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_bench_parse_errors;
        Alcotest.test_case "undefined signal line" `Quick
          test_bench_undefined_signal_line;
        Alcotest.test_case "duplicate definition" `Quick
          test_bench_duplicate_definition;
        Alcotest.test_case "comments/case" `Quick test_bench_comments_and_case;
      ] );
    ( "circuit.logic",
      [
        Alcotest.test_case "c17 vectors" `Quick test_logic_c17_vectors;
        Alcotest.test_case "detects inequivalence" `Quick
          test_logic_equivalence_detects_difference;
        Alcotest.test_case "mismatched PIs" `Quick
          test_logic_equivalence_mismatched_pis;
      ] );
    ( "circuit.decompose",
      [
        Alcotest.test_case "primitive only" `Quick test_decompose_primitive_only;
        Alcotest.test_case "wide gates" `Quick test_decompose_wide_gates;
      ] );
    qsuite "circuit.decompose.props" [ prop_decompose_preserves_function ];
    ( "circuit.generator",
      [
        Alcotest.test_case "counts" `Quick test_generator_counts;
        Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
        Alcotest.test_case "no constant lines" `Quick
          test_generator_no_constant_lines;
      ] );
    ( "circuit.benchmarks",
      [
        Alcotest.test_case "suite shapes" `Quick test_benchmark_suite_shapes;
        Alcotest.test_case "lookup" `Quick test_benchmark_lookup;
      ] );
  ]
