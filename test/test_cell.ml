module C = Ssd_cell
module Fit = C.Fit
module Charlib = C.Charlib
module Sweep = C.Sweep

let tech = Ssd_spice.Tech.default

(* shared coarse library (cached on disk after the first run) *)
let lib = lazy (Charlib.default ~profile:Charlib.coarse ())

let nand2 () = Charlib.find (Lazy.force lib) Sweep.Nand 2

(* ---------- Fit ---------- *)

let test_fit1_eval_and_peak () =
  (* samples of a downward parabola peaking at 2e-9 *)
  let f t = -.(1e16 *. (t -. 2e-9) ** 2.) +. 1e-10 in
  let samples = List.map (fun t -> (t, f t)) [ 0.5e-9; 1e-9; 2e-9; 3e-9; 3.5e-9 ] in
  let fit = Fit.fit1_of_samples ~range:(0.5e-9, 3.5e-9) samples in
  (match fit.Fit.peak with
  | Some p -> Alcotest.(check (float 1e-11)) "peak location" 2e-9 p
  | None -> Alcotest.fail "expected an interior peak");
  Alcotest.(check (float 1e-8)) "evaluates" (f 1.5e-9) (Fit.eval1 fit 1.5e-9);
  (* clamped evaluation: outside the range uses the boundary *)
  Alcotest.(check (float 1e-8)) "clamped" (f 3.5e-9) (Fit.eval1 fit 10e-9);
  match Fit.shape1 fit with
  | Ssd_util.Func1d.Bitonic _ -> ()
  | Ssd_util.Func1d.Monotonic -> Alcotest.fail "expected bitonic shape"

let test_fit1_monotonic_no_peak () =
  let samples = List.map (fun t -> (t, 2e8 *. t)) [ 0.1e-9; 1e-9; 2e-9 ] in
  let fit = Fit.fit1_of_samples ~range:(0.1e-9, 2e-9) samples in
  Alcotest.(check bool) "no interior peak" true (fit.Fit.peak = None)

let test_fit2_best_picks_lower_rms () =
  (* a saddle-ish surface the cube-root product cannot express *)
  let f x y = (x *. 1e8) -. (1e17 *. (x -. 1e-9) *. (y -. 1e-9)) in
  let grid = [ 0.2e-9; 0.8e-9; 1.5e-9; 2.2e-9 ] in
  let samples =
    List.concat_map (fun x -> List.map (fun y -> ((x, y), f x y)) grid) grid
  in
  let best = Fit.fit2_best ~range:(0.2e-9, 2.2e-9) samples in
  let cr = Fit.fit2_of_samples ~basis:Fit.Cuberoot2 ~range:(0.2e-9, 2.2e-9) samples in
  Alcotest.(check bool) "best is at least as good as cube-root" true
    (best.Fit.rms2 <= cr.Fit.rms2 +. 1e-18)

(* ---------- Sweep ---------- *)

let test_sweep_controlling_conventions () =
  Alcotest.(check bool) "nand cv" false (Sweep.controlling_value Sweep.Nand);
  Alcotest.(check bool) "nor cv" true (Sweep.controlling_value Sweep.Nor);
  Alcotest.(check bool) "nand rises" true
    (Sweep.output_rises_on_controlling Sweep.Nand);
  Alcotest.(check bool) "nor falls" false
    (Sweep.output_rises_on_controlling Sweep.Nor)

let test_sweep_single_measures () =
  let m =
    Sweep.single ~sim_h:4e-12 tech Sweep.Nand ~n:2 ~fanout:1 ~pos:0
      ~to_controlling:true ~t_in:0.5e-9
  in
  Alcotest.(check bool) "positive delay" true
    (m.Sweep.m_delay > 10e-12 && m.Sweep.m_delay < 1e-9);
  Alcotest.(check bool) "positive transition" true (m.Sweep.m_out_tt > 10e-12)

let test_sweep_pair_skew_reference () =
  (* delay is measured from the earliest arrival on both sides of the V *)
  let d skew =
    (Sweep.pair ~sim_h:4e-12 tech Sweep.Nand ~n:2 ~fanout:1 ~pos_a:0 ~pos_b:1
       ~t_a:0.4e-9 ~t_b:0.4e-9 ~skew).Sweep.m_delay
  in
  let d0 = d 0. and dr = d 1.2e-9 and dl = d (-1.2e-9) in
  Alcotest.(check bool) "zero skew fastest" true (d0 < dr && d0 < dl);
  Alcotest.(check bool) "arms are positive and bounded" true
    (dr > 0. && dr < 1e-9 && dl > 0. && dl < 1e-9)

let test_sweep_rejects_bad_stimuli () =
  Alcotest.check_raises "no transitions"
    (Invalid_argument "Sweep.run: no transition in stimulus") (fun () ->
      ignore
        (Sweep.run tech Sweep.Nand ~n:2 ~fanout:1
           [| Sweep.Steady true; Sweep.Steady true |]));
  Alcotest.check_raises "mixed directions"
    (Invalid_argument "Sweep.run: mixed transition directions are not supported")
    (fun () ->
      ignore
        (Sweep.run tech Sweep.Nand ~n:2 ~fanout:1
           [|
             Sweep.To_controlling { arrival = 0.; t_tr = 0.3e-9 };
             Sweep.To_non_controlling { arrival = 0.; t_tr = 0.3e-9 };
           |]))

(* ---------- Charlib ---------- *)

let test_charlib_default_contents () =
  let l = Lazy.force lib in
  List.iter
    (fun (kind, n) ->
      match Charlib.find l kind n with
      | cell ->
        Alcotest.(check int) "n matches" n cell.Charlib.n;
        Alcotest.(check int) "pin chars" n (Array.length cell.Charlib.to_ctl);
        Alcotest.(check int) "tied chars" n (Array.length cell.Charlib.tied_ctl);
        let expected_pairs = n * (n - 1) / 2 in
        Alcotest.(check int) "pair chars" expected_pairs
          (List.length cell.Charlib.pairs)
      | exception Not_found -> Alcotest.fail "missing default cell")
    Charlib.default_spec

let test_charlib_find_missing () =
  let l = Lazy.force lib in
  Alcotest.check_raises "missing cell" Not_found (fun () ->
      ignore (Charlib.find l Sweep.Nand 7))

let test_charlib_pin_fit_accuracy () =
  let cell = nand2 () in
  (* the fitted pin-to-pin delay matches a fresh simulation within the
     quadratic-form error budget *)
  List.iter
    (fun t_in ->
      let m =
        Sweep.single ~sim_h:4e-12 tech Sweep.Nand ~n:2 ~fanout:1 ~pos:0
          ~to_controlling:true ~t_in
      in
      let p = Fit.eval1 cell.Charlib.to_ctl.(0).Charlib.delay t_in in
      let rel = Float.abs (p -. m.Sweep.m_delay) /. m.Sweep.m_delay in
      Alcotest.(check bool)
        (Printf.sprintf "fit within 15%% at %.1fns" (t_in *. 1e9))
        true (rel < 0.15))
    [ 0.3e-9; 0.9e-9; 2.0e-9 ]

let test_charlib_pair_surfaces_positive () =
  let cell = nand2 () in
  match cell.Charlib.pairs with
  | [ pc ] ->
    List.iter
      (fun (ta, tb) ->
        let sr = Fit.eval2 pc.Charlib.sr ta tb in
        let syr = Fit.eval2 pc.Charlib.syr ta tb in
        Alcotest.(check bool) "SR sane" true (sr > -1e-11 && sr < 3e-9);
        Alcotest.(check bool) "SYR sane" true (syr > -1e-11 && syr < 3e-9))
      [ (0.3e-9, 0.3e-9); (0.5e-9, 1.0e-9); (1.5e-9, 1.5e-9) ]
  | l -> Alcotest.fail (Printf.sprintf "expected 1 pair, got %d" (List.length l))

let test_charlib_d0_below_arms () =
  (* the zero-skew delay is below both pin-to-pin arms (the speed-up) *)
  let cell = nand2 () in
  match cell.Charlib.pairs with
  | [ pc ] ->
    List.iter
      (fun t ->
        let d0 = Fit.eval2 pc.Charlib.d0 t t in
        let dr = Fit.eval1 cell.Charlib.to_ctl.(0).Charlib.delay t in
        let dl = Fit.eval1 cell.Charlib.to_ctl.(1).Charlib.delay t in
        Alcotest.(check bool) "D0R below DR" true (d0 < dr);
        Alcotest.(check bool) "D0R below DYR" true (d0 < dl))
      [ 0.3e-9; 0.8e-9 ]
  | _ -> Alcotest.fail "expected 1 pair"

let test_charlib_load_slopes_nonneg () =
  let l = Lazy.force lib in
  List.iter
    (fun cell ->
      Alcotest.(check bool) "ctl delay slope >= 0" true
        (cell.Charlib.load_d_ctl >= 0.);
      Alcotest.(check bool) "non delay slope >= 0" true
        (cell.Charlib.load_d_non >= 0.))
    l.Charlib.cells

let test_charlib_position_ordering () =
  (* deeper stack positions have larger to-controlling delay (Section 3.1.2) *)
  let l = Lazy.force lib in
  let cell = Charlib.find l Sweep.Nand 4 in
  let d pos = Fit.eval1 cell.Charlib.to_ctl.(pos).Charlib.delay 0.5e-9 in
  Alcotest.(check bool) "monotone with position" true (d 3 > d 0)

let test_charlib_cache_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ssd-test-cache" in
  let spec = [ (Sweep.Nand, 1) ] in
  let l1 = Charlib.load_or_characterize ~cache_dir:dir Charlib.coarse tech spec in
  let l2 = Charlib.load_or_characterize ~cache_dir:dir Charlib.coarse tech spec in
  let d l = Fit.eval1 ((Charlib.find l Sweep.Nand 1).Charlib.to_ctl.(0)).Charlib.delay 0.5e-9 in
  Alcotest.(check (float 1e-18)) "cache reproduces fits" (d l1) (d l2)

let test_find_pair_orientation () =
  let l = Lazy.force lib in
  let cell = Charlib.find l Sweep.Nand 3 in
  (match Charlib.find_pair cell 0 2 with
  | Some (_, true) -> ()
  | Some (_, false) -> Alcotest.fail "expected direct orientation for (0,2)"
  | None -> Alcotest.fail "missing pair (0,2)");
  (match Charlib.find_pair cell 2 0 with
  | Some (_, false) -> ()
  | Some (_, true) -> Alcotest.fail "expected mirrored orientation for (2,0)"
  | None -> Alcotest.fail "missing pair (2,0)");
  Alcotest.(check bool) "identical positions" true
    (Charlib.find_pair cell 1 1 = None)

let suites =
  [
    ( "cell.fit",
      [
        Alcotest.test_case "fit1 peak & eval" `Quick test_fit1_eval_and_peak;
        Alcotest.test_case "fit1 monotonic" `Quick test_fit1_monotonic_no_peak;
        Alcotest.test_case "fit2 best-of" `Quick test_fit2_best_picks_lower_rms;
      ] );
    ( "cell.sweep",
      [
        Alcotest.test_case "conventions" `Quick test_sweep_controlling_conventions;
        Alcotest.test_case "single" `Slow test_sweep_single_measures;
        Alcotest.test_case "pair reference" `Slow test_sweep_pair_skew_reference;
        Alcotest.test_case "stimulus validation" `Quick
          test_sweep_rejects_bad_stimuli;
      ] );
    ( "cell.charlib",
      [
        Alcotest.test_case "default contents" `Slow test_charlib_default_contents;
        Alcotest.test_case "find missing" `Slow test_charlib_find_missing;
        Alcotest.test_case "pin fit accuracy" `Slow test_charlib_pin_fit_accuracy;
        Alcotest.test_case "pair surfaces" `Slow
          test_charlib_pair_surfaces_positive;
        Alcotest.test_case "D0 below arms" `Slow test_charlib_d0_below_arms;
        Alcotest.test_case "load slopes" `Slow test_charlib_load_slopes_nonneg;
        Alcotest.test_case "position ordering" `Slow
          test_charlib_position_ordering;
        Alcotest.test_case "cache roundtrip" `Slow test_charlib_cache_roundtrip;
        Alcotest.test_case "pair orientation" `Slow test_find_pair_orientation;
      ] );
  ]
