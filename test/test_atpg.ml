module Ck = Ssd_circuit
module A = Ssd_atpg
module Fault = A.Fault
module Atpg = A.Atpg
module V = Ssd_itr.Value2f
module DM = Ssd_core.Delay_model
module Charlib = Ssd_cell.Charlib
module Sta = Ssd_sta.Sta

let lib = lazy (Charlib.default ~profile:Charlib.coarse ())
let c17_prim () = Ck.Decompose.to_primitive (Ck.Benchmarks.c17 ())

let clock_of nl =
  Sta.max_delay (Sta.analyze ~library:(Lazy.force lib) ~model:DM.proposed nl)

(* ---------- Fault extraction ---------- *)

let test_extract_valid_sites () =
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let sites = Fault.extract ~count:12 ~seed:1L nl in
  Alcotest.(check bool) "some sites" true (List.length sites > 0);
  List.iter
    (fun s ->
      Alcotest.(check bool) "distinct lines" true (s.Fault.aggressor <> s.Fault.victim);
      Alcotest.(check bool) "opposite directions" true
        (s.Fault.agg_tr <> s.Fault.vic_tr);
      Alcotest.(check bool) "positive delta" true (s.Fault.delta > 0.);
      (* the aggressor is never in the victim's cone or fanout *)
      let tf = Ck.Netlist.transitive_fanin nl s.Fault.victim in
      let tfo = Ck.Netlist.transitive_fanout nl s.Fault.victim in
      Alcotest.(check bool) "no structural dependence" false
        (List.mem s.Fault.aggressor tf || List.mem s.Fault.aggressor tfo))
    sites

let test_extract_deterministic () =
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let a = Fault.extract ~count:8 ~seed:5L nl in
  let b = Fault.extract ~count:8 ~seed:5L nl in
  Alcotest.(check bool) "same sites" true (a = b)

let test_extract_screened_sites () =
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let sites =
    Fault.extract_screened ~count:6 ~samples:40 ~seed:42L
      ~library:(Lazy.force lib) ~model:DM.proposed nl
  in
  Alcotest.(check bool) "screening returns sites" true (List.length sites > 0)

(* ---------- generation on c17 ---------- *)

let c17_site nl =
  let id s = Option.get (Ck.Netlist.find nl s) in
  {
    Fault.aggressor = id "10";
    victim = id "19";
    agg_tr = V.Fall;
    vic_tr = V.Rise;
    delta = 150e-12;
    align_window = 400e-12;
  }

let test_atpg_detects_on_c17 () =
  let nl = c17_prim () in
  let site = c17_site nl in
  let cfg = Atpg.default_config ~clock_period:(clock_of nl) in
  List.iter
    (fun use_itr ->
      let cfg = { cfg with Atpg.use_itr } in
      let r = Atpg.generate cfg ~library:(Lazy.force lib) ~model:DM.proposed nl site in
      match r.Atpg.outcome with
      | Atpg.Detected vector ->
        Alcotest.(check bool)
          (Printf.sprintf "verified (itr=%b)" use_itr)
          true
          (Atpg.verify_detection cfg ~library:(Lazy.force lib)
             ~model:DM.proposed nl site vector)
      | Atpg.Undetectable -> Alcotest.fail "expected detection, got undetectable"
      | Atpg.Aborted -> Alcotest.fail "expected detection, got abort")
    [ false; true ]

let test_atpg_undetectable_impossible_transition () =
  (* a victim that is constant cannot be excited: z = NAND(a, a') is
     constant 1, so a falling victim transition is impossible *)
  let nl =
    Ck.Bench_io.parse_string ~name:"red"
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(w)\nan = NOT(a)\n\
       z = NAND(a, an)\nw = NAND(a, b)\n"
  in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let site =
    {
      Fault.aggressor = id "w";
      victim = id "z";
      agg_tr = V.Rise;
      vic_tr = V.Fall;
      delta = 150e-12;
      align_window = 400e-12;
    }
  in
  let cfg = Atpg.default_config ~clock_period:(clock_of nl) in
  let r = Atpg.generate cfg ~library:(Lazy.force lib) ~model:DM.proposed nl site in
  Alcotest.(check bool) "proven undetectable" true (r.Atpg.outcome = Atpg.Undetectable)

let test_atpg_undetectable_unobservable_victim () =
  (* the victim drives no primary output: trivially undetectable *)
  let nl =
    Ck.Bench_io.parse_string ~name:"dead"
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\ndeadend = NAND(a, b)\n\
       sink = NOT(deadend)\nz = NOT(a)\n"
  in
  let id s = Option.get (Ck.Netlist.find nl s) in
  let site =
    {
      Fault.aggressor = id "z";
      victim = id "sink";
      agg_tr = V.Fall;
      vic_tr = V.Rise;
      delta = 150e-12;
      align_window = 400e-12;
    }
  in
  let cfg = Atpg.default_config ~clock_period:(clock_of nl) in
  let r = Atpg.generate cfg ~library:(Lazy.force lib) ~model:DM.proposed nl site in
  Alcotest.(check bool) "unobservable is undetectable" true
    (r.Atpg.outcome = Atpg.Undetectable)

let test_atpg_run_and_stats () =
  let nl = c17_prim () in
  let sites = [ c17_site nl ] in
  let cfg = Atpg.default_config ~clock_period:(clock_of nl) in
  let results, stats = Atpg.run cfg ~library:(Lazy.force lib) ~model:DM.proposed nl sites in
  Alcotest.(check int) "results per site" 1 (List.length results);
  Alcotest.(check int) "total" 1 stats.Atpg.total;
  Alcotest.(check int) "accounted" 1
    (stats.Atpg.detected + stats.Atpg.undetectable + stats.Atpg.aborted);
  let e = Atpg.efficiency stats in
  Alcotest.(check bool) "efficiency in range" true (e >= 0. && e <= 100.)

let test_atpg_budget_respected () =
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let sites = Fault.extract ~count:2 ~align_window:20e-12 ~seed:3L nl in
  let cfg =
    { (Atpg.default_config ~clock_period:(clock_of nl)) with
      Atpg.max_expansions = 40 }
  in
  List.iter
    (fun site ->
      let r = Atpg.generate cfg ~library:(Lazy.force lib) ~model:DM.proposed nl site in
      Alcotest.(check bool) "expansions bounded" true
        (r.Atpg.expansions <= 41))
    sites

let test_verify_rejects_bad_vector () =
  let nl = c17_prim () in
  let site = c17_site nl in
  let cfg = Atpg.default_config ~clock_period:(clock_of nl) in
  (* an all-steady vector excites nothing *)
  let npi = List.length (Ck.Netlist.inputs nl) in
  let steady = Array.make npi (true, true) in
  Alcotest.(check bool) "steady vector rejected" false
    (Atpg.verify_detection cfg ~library:(Lazy.force lib) ~model:DM.proposed nl
       site steady)

(* ---------- fault simulation ---------- *)

let test_faultsim_detects_atpg_vector () =
  (* a vector the ATPG generated and verified for a site must also be
     reported by the fault simulator, with both engines *)
  let nl = c17_prim () in
  let site = c17_site nl in
  let cfg = Atpg.default_config ~clock_period:(clock_of nl) in
  let r = Atpg.generate cfg ~library:(Lazy.force lib) ~model:DM.proposed nl site in
  match r.Atpg.outcome with
  | Atpg.Detected vector ->
    List.iter
      (fun engine ->
        let res =
          A.Fault_sim.simulate ~engine ~library:(Lazy.force lib)
            ~model:DM.proposed ~clock_period:(clock_of nl) nl [ site ]
            [ vector ]
        in
        Alcotest.(check (list (pair int int))) "site 0 detected by vector 0"
          [ (0, 0) ] res.A.Fault_sim.detected;
        Alcotest.(check (list int)) "nothing undetected" []
          res.A.Fault_sim.undetected)
      [ A.Fault_sim.Full; A.Fault_sim.Cone ]
  | _ -> Alcotest.fail "expected the ATPG to detect the c17 site"

let test_faultsim_deterministic_c880s () =
  (* the ISSUE's determinism contract: identical detected / coverage /
     undetected across engines and lane counts on c880s *)
  let nl = Ck.Decompose.to_primitive (Option.get (Ck.Benchmarks.by_name "c880s")) in
  let clock = clock_of nl in
  let sites =
    Fault.extract ~count:64 ~delta:60e-12 ~align_window:2500e-12 ~seed:2L nl
  in
  let vectors = A.Fault_sim.random_vectors ~seed:6L ~count:24 nl in
  let run ~jobs ~engine =
    A.Fault_sim.simulate ~jobs ~engine ~library:(Lazy.force lib)
      ~model:DM.proposed ~clock_period:clock nl sites vectors
  in
  let base = run ~jobs:1 ~engine:A.Fault_sim.Full in
  Alcotest.(check bool) "some sites detected (non-vacuous)" true
    (base.A.Fault_sim.detected <> []);
  List.iter
    (fun (tag, jobs, engine) ->
      let r = run ~jobs ~engine in
      Alcotest.(check (list (pair int int))) (tag ^ " detected") base.A.Fault_sim.detected
        r.A.Fault_sim.detected;
      Alcotest.(check (list int)) (tag ^ " undetected") base.A.Fault_sim.undetected
        r.A.Fault_sim.undetected;
      Alcotest.(check (float 0.)) (tag ^ " coverage") base.A.Fault_sim.coverage
        r.A.Fault_sim.coverage)
    [
      ("cone j1", 1, A.Fault_sim.Cone);
      ("cone j4", 4, A.Fault_sim.Cone);
      ("full j4", 4, A.Fault_sim.Full);
      ("cone auto", 0, A.Fault_sim.Cone);
    ]

let test_faultsim_empty_inputs () =
  let nl = c17_prim () in
  let clock = clock_of nl in
  let vectors = A.Fault_sim.random_vectors ~seed:1L ~count:4 nl in
  let no_sites =
    A.Fault_sim.simulate ~library:(Lazy.force lib) ~model:DM.proposed
      ~clock_period:clock nl [] vectors
  in
  Alcotest.(check (float 0.)) "no sites: 0 coverage" 0. no_sites.A.Fault_sim.coverage;
  let no_vectors =
    A.Fault_sim.simulate ~library:(Lazy.force lib) ~model:DM.proposed
      ~clock_period:clock nl [ c17_site nl ] []
  in
  Alcotest.(check (list int)) "no vectors: site undetected" [ 0 ]
    no_vectors.A.Fault_sim.undetected

let suites =
  [
    ( "atpg.fault",
      [
        Alcotest.test_case "valid sites" `Slow test_extract_valid_sites;
        Alcotest.test_case "deterministic" `Slow test_extract_deterministic;
        Alcotest.test_case "screened" `Slow test_extract_screened_sites;
      ] );
    ( "atpg.generate",
      [
        Alcotest.test_case "detects on c17" `Slow test_atpg_detects_on_c17;
        Alcotest.test_case "undetectable: constant victim" `Slow
          test_atpg_undetectable_impossible_transition;
        Alcotest.test_case "undetectable: unobservable victim" `Slow
          test_atpg_undetectable_unobservable_victim;
        Alcotest.test_case "run & stats" `Slow test_atpg_run_and_stats;
        Alcotest.test_case "budget respected" `Slow test_atpg_budget_respected;
        Alcotest.test_case "verify rejects" `Slow test_verify_rejects_bad_vector;
      ] );
    ( "atpg.faultsim",
      [
        Alcotest.test_case "detects atpg vector" `Slow
          test_faultsim_detects_atpg_vector;
        Alcotest.test_case "deterministic on c880s" `Slow
          test_faultsim_deterministic_c880s;
        Alcotest.test_case "empty inputs" `Quick test_faultsim_empty_inputs;
      ] );
  ]
