(* Command-line front end:

     ssd characterize [--fine]              # dump the cell library
     ssd sta FILE.bench [--model NAME] [--clock NS]
     ssd atpg FILE.bench [--faults N] [--no-itr] [--budget N]
     ssd eco FILE.bench SCRIPT [--model NAME] [--check]
     ssd gen --gates N [--inputs N] [--outputs N] [--seed N] -o FILE.bench
     ssd delay --skew PS [--tx NS] [--ty NS]  # query all models on a NAND2
     ssd corners FILE.bench [--corners K] [--check]
     ssd mc FILE.bench [--samples N] [--seed N]
     ssd serve [--port P | --stdio] [--record FILE] [--replay FILE --check]

   Everything lives in the Ssd_cli library (one module per subcommand,
   one shared option table in Cli_common); this entry point only
   evaluates the command group. *)

let () = exit (Ssd_cli.Main.main ())
